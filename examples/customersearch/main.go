// Customersearch: the Section IV.A use case at landscape scale. A
// business user who does not know the warehouse terminology searches for
// "client" across a generated bank IT landscape, first literally, then
// with the filters of the Figure 6 frontend, and finally with the
// DBpedia-backed semantic expansion of Section V.
//
// Run with:
//
//	go run ./examples/customersearch
package main

import (
	"fmt"
	"log"

	"mdw/internal/core"
	"mdw/internal/dbpedia"
	"mdw/internal/landscape"
	"mdw/internal/rdf"
	"mdw/internal/search"
)

func main() {
	// Generate a synthetic bank IT landscape (deterministic) and load it.
	l := landscape.Generate(landscape.Small())
	w := core.New("")
	if _, err := w.LoadOntology(l.Ontology); err != nil {
		log.Fatal(err)
	}
	if _, err := w.LoadExports(l.Exports); err != nil {
		log.Fatal(err)
	}
	w.IntegrateDBpedia(dbpedia.Banking())

	show := func(title string, res *search.Result) {
		fmt.Println("== " + title + " ==")
		fmt.Print(search.FormatResult(res))
		fmt.Println()
	}

	// Plain keyword search: only items literally named "client".
	res, err := w.Search("client", search.Options{MaxHitsPerGroup: 2})
	if err != nil {
		log.Fatal(err)
	}
	show("plain keyword search", res)

	// Filtered to attributes in the data-mart stage — the "Area" filter
	// of the search frontend ("users may direct their search to a
	// specific area of the meta-data warehouse").
	res, err = w.Search("client", search.Options{
		FilterClasses:   []string{rdf.DMNS + "Attribute"},
		Area:            "mart",
		MaxHitsPerGroup: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	show("attributes in the data-mart stage only", res)

	// Semantic search: "client" expands to customer/patron/account holder
	// via the integrated DBpedia synonyms, finding the items a business
	// user actually meant.
	res, err = w.Search("client", search.Options{Semantic: true, MaxHitsPerGroup: 2})
	if err != nil {
		log.Fatal(err)
	}
	show("semantic search with DBpedia synonyms", res)

	// Search matching descriptions, which keeps cryptic legacy columns
	// like TCD100_COL7 findable.
	res, err = w.Search("customer", search.Options{MatchDescriptions: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with descriptions matched, %q reaches %d instances (name-only: ", "customer", res.Instances)
	res2, err := w.Search("customer", search.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d)\n", res2.Instances)
}
