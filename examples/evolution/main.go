// Evolution: the Section III design argument, demonstrated. A new kind
// of meta-data — business concepts from a glossary — arrives after the
// warehouse is in production. The graph-based warehouse absorbs it by
// just adding triples and one ontology class; the textbook relational
// catalog needs a schema migration (DDL plus a full-table rewrite)
// before a single row can land. The example also shows the release
// historization that makes the change auditable.
//
// Run with:
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"
	"time"

	"mdw/internal/core"
	"mdw/internal/landscape"
	"mdw/internal/rdf"
	"mdw/internal/relstore"
	"mdw/internal/search"
	"mdw/internal/staging"
)

func main() {
	l := landscape.Generate(landscape.Small())

	// Strip the concepts out of the exports: both stores start without
	// any notion of "business concept".
	var withoutConcepts []*staging.Export
	var conceptExports []*staging.Export
	for _, e := range l.Exports {
		if len(e.Concepts) > 0 {
			stripped := *e
			stripped.Concepts = nil
			withoutConcepts = append(withoutConcepts, &stripped)
			conceptExports = append(conceptExports, &staging.Export{
				Source: e.Source, Concepts: e.Concepts,
			})
		} else {
			withoutConcepts = append(withoutConcepts, e)
		}
	}

	// ---- Graph warehouse ----
	w := core.New("")
	if _, err := w.LoadOntology(l.Ontology); err != nil {
		log.Fatal(err)
	}
	if _, err := w.LoadExports(withoutConcepts); err != nil {
		log.Fatal(err)
	}
	if _, err := w.Snapshot("R1-before-concepts", time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		log.Fatal(err)
	}

	// The new meta-data kind arrives: no schema work, just load it.
	t0 := time.Now()
	stats, err := w.LoadExports(conceptExports)
	if err != nil {
		log.Fatal(err)
	}
	graphTime := time.Since(t0)
	if _, err := w.Snapshot("R2-with-concepts", time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph warehouse:  absorbed the new meta-data kind with %d triples in %s, zero schema changes\n",
		stats.Loaded, graphTime.Round(time.Microsecond))

	// The new kind is immediately searchable, grouped under its classes.
	res, err := w.Search("customer", search.Options{FilterClasses: []string{rdf.DMNS + "Business_Concept"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph warehouse:  %d business-concept hits for \"customer\" right after the load\n", res.Instances)

	// The release diff documents exactly what the new meta-data added.
	d, err := w.History().DiffVersions(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph warehouse:  release diff R1→R2: +%d / -%d triples\n\n", len(d.Added), len(d.Removed))

	// ---- Textbook relational catalog ----
	c, err := relstore.NewTextbook()
	if err != nil {
		log.Fatal(err)
	}
	dropped, err := c.LoadExports(withoutConcepts)
	if err != nil {
		log.Fatal(err)
	}
	_ = dropped

	// The same concepts cannot be inserted without DDL.
	if err := c.LoadConcepts(conceptExports); err != nil {
		fmt.Printf("relational:       initial load of concepts fails: %v\n", err)
	}
	t0 = time.Now()
	ddl, err := c.MigrateForConcepts()
	if err != nil {
		log.Fatal(err)
	}
	if err := c.LoadConcepts(conceptExports); err != nil {
		log.Fatal(err)
	}
	relTime := time.Since(t0)
	fmt.Printf("relational:       needed %d DDL statements and %d rewritten rows (%s) before the concepts fit\n",
		ddl, c.RowsRewritten, relTime.Round(time.Microsecond))

	n, err := c.Count("concepts", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relational:       %d concepts stored — but search remains a flat LIKE over column names\n", n)
}
