// Governance: the data-governance use case Section II sketches — "the
// assignment of owners and consumers of data to meta-data" plus the
// physical-level meta-data (technologies, log files). A data-protection
// officer answers three questions against the warehouse:
//
//  1. where does personally identifying information (PII) live, and
//     where does it flow?
//  2. who can access it, including through downstream copies?
//  3. which applications run on a technology that is being phased out?
//
// Run with:
//
//	go run ./examples/governance
package main

import (
	"fmt"
	"log"
	"strings"

	"mdw/internal/audit"
	"mdw/internal/core"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/rdf"
	"mdw/internal/search"
	"mdw/internal/staging"
)

func main() {
	l := landscape.Generate(landscape.Small())
	w := core.New("")
	if _, err := w.LoadOntology(l.Ontology); err != nil {
		log.Fatal(err)
	}
	if _, err := w.LoadExports(l.Exports); err != nil {
		log.Fatal(err)
	}

	// 1. Find the PII-tagged items (the instance-to-value tag facts).
	// The "_" term matches every generated column name (they all use
	// snake_case), so the tag filter does the actual selection.
	res, err := w.Search("_", search.Options{Tag: "pii"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PII inventory: %d tagged items across the landscape\n", res.Instances)

	// Every PII column's data flows are lineage questions: does PII
	// reach the data marts?
	svc := w.LineageService()
	martColumns := map[rdf.Term]bool{}
	var witness string
	for _, g := range res.Groups {
		for _, h := range g.Hits {
			fwd, err := svc.Trace(h.IRI, lineage.Forward, lineage.Options{})
			if err != nil {
				continue
			}
			for term := range fwd.Nodes {
				if strings.Contains(term.Value, "/mart/") && !martColumns[term] {
					martColumns[term] = true
					witness = h.Name
				}
			}
		}
	}
	fmt.Printf("PII flow: %d distinct mart columns carry PII (e.g. via %s)\n\n", len(martColumns), witness)

	// 2. Who can access one PII item, across its whole data flow?
	var piiItem rdf.Term
	for _, g := range res.Groups {
		for _, h := range g.Hits {
			if strings.Contains(h.IRI.Value, "/mart/") {
				piiItem = h.IRI
			}
		}
	}
	if piiItem.IsZero() && res.Instances > 0 {
		piiItem = res.Groups[0].Hits[0].IRI
	}
	if !piiItem.IsZero() {
		rep, err := w.Audit(piiItem, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(audit.Format(rep))
		fmt.Println()
	}

	// 3. Technology phase-out impact: which applications still use Java 6?
	qr, err := w.Query(`
		PREFIX dm: <` + rdf.DMNS + `>
		SELECT ?app ?v WHERE {
			?a dm:usesTechnology <` + staging.InstanceIRI("tech", "java").Value + `> .
			<` + staging.InstanceIRI("tech", "java").Value + `> dm:hasVersion ?v .
			?a dm:hasName ?app .
		} ORDER BY ?app`)
	if err != nil {
		log.Fatal(err)
	}
	version := ""
	if len(qr.Rows) > 0 {
		version = qr.Rows[0]["v"].Value
	}
	fmt.Printf("technology phase-out: %d applications still assembled with java %s\n",
		len(qr.Rows), version)
	for _, row := range qr.Rows {
		fmt.Println("  " + row["app"].Value)
	}
}
