// Lineageaudit: the Section IV.B use case. An auditor needs to know
// where the figures of a data-mart report come from and which
// applications would be affected if a source application changes — the
// two questions the provenance tool answers. The example also shows the
// Section V extension: rule-condition filters that keep the number of
// lineage paths small.
//
// Run with:
//
//	go run ./examples/lineageaudit
package main

import (
	"fmt"
	"log"
	"strings"

	"mdw/internal/core"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/staging"
)

func main() {
	l := landscape.Generate(landscape.Small())
	w := core.New("")
	if _, err := w.LoadOntology(l.Ontology); err != nil {
		log.Fatal(err)
	}
	if _, err := w.LoadExports(l.Exports); err != nil {
		log.Fatal(err)
	}
	svc := w.LineageService()

	// Pick a data-mart column (the kind of item behind a report figure).
	martPath := l.MartColumns[0]
	item := staging.InstanceIRI(strings.Split(martPath, "/")...)
	fmt.Printf("auditing: %s\n\n", martPath)

	// 1. Provenance: the full backward chain, attribute level.
	g, err := svc.Trace(item, lineage.Backward, lineage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(lineage.Format(g))

	// 2. The auditor drills up to application granularity to see which
	//    systems are involved (the Figure 7 scope adjustment).
	apps, err := svc.Rollup(g, lineage.LevelApplication)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(lineage.Format(apps))

	// 3. Ultimate sources: which application columns originally produce
	//    this figure.
	srcs, err := svc.Sources(item, lineage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nultimate sources:")
	for _, s := range srcs {
		fmt.Println("  " + s.Value)
	}

	// 4. Impact analysis: if the ORIGIN changes, what is affected
	//    downstream? (Critical when an application or interface evolves.)
	chain := l.Chains[0]
	origin := staging.InstanceIRI(strings.Split(chain[0], "/")...)
	impact, err := svc.Impact(origin, lineage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nif %s changes, %d downstream items are affected\n",
		chain[0], len(impact))

	// 5. Rule-condition filters (Section V): only follow mappings whose
	//    rule restricts to Swiss bookings, pruning the path space.
	all, err := svc.CountPaths(item, lineage.Backward, lineage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	filtered, err := svc.CountPaths(item, lineage.Backward, lineage.Options{
		RuleFilter: func(rule string) bool { return rule == "" || strings.Contains(rule, "CH") },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlineage paths: %d unfiltered, %d with the country-rule filter\n", all, filtered)
}
