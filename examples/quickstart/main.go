// Quickstart: build a warehouse from the paper's Figure 3 example, run
// the Listing 1 search and the Listing 2 lineage, and print the results.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"mdw/internal/core"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/ontology"
	"mdw/internal/search"
	"mdw/internal/staging"
)

func main() {
	// 1. Create a warehouse. The default model name DWH_CURR matches the
	//    SEM_MODELS('DWH_CURR') of the paper's listings.
	w := core.New("")

	// 2. Load the hierarchy (the Protégé-export path of Figure 4) …
	if _, err := w.LoadOntology(ontology.DWH()); err != nil {
		log.Fatal(err)
	}
	// … and the meta-data facts (the XML-export path): here the paper's
	// own customer-identification example.
	stats, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d triples, derived %d index triples\n\n", stats.Loaded, stats.Derived)

	// 3. Search for "customer" (Section IV.A). Hits group under every
	//    class they inherit, like the Figure 6 screenshot.
	res, err := w.Search("customer", search.Options{MaxHitsPerGroup: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(search.FormatResult(res))

	// 4. Trace the lineage of the data-mart customer_id (Section IV.B):
	//    the (isMappedTo)* chain back to the source application.
	item := staging.InstanceIRI(strings.Split(landscape.Figure3Paths()[3], "/")...)
	g, err := w.Lineage(item, lineage.Backward, lineage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(lineage.Format(g))

	// 5. Ask the graph directly with SPARQL, using the OWLPRIME index.
	q := `PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
	      SELECT ?name WHERE { ?x a dm:Attribute . ?x dm:hasName ?name } ORDER BY ?name`
	qr, err := w.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall attributes in the graph:")
	for _, row := range qr.Rows {
		fmt.Println("  " + row["name"].Value)
	}

	// 6. Historize the release (Section III.A).
	v, err := w.Snapshot("2009-R1", time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhistorized release %s with %d triples\n", v.Tag, v.Triples)
}
