package search

import (
	"strings"
	"testing"

	"mdw/internal/dbpedia"
	"mdw/internal/landscape"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/staging"
	"mdw/internal/store"
)

// fixture loads the Figure 3 customer-identification snippet plus the
// DWH ontology into a store.
func fixture(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	_, err := staging.Pipeline{Store: st, Model: "DWH_CURR"}.Run(
		[]*staging.Export{landscape.Figure3Export()},
		ontology.DWH().Triples(),
	)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func groupByLabel(r *Result, label string) *Group {
	for i := range r.Groups {
		if r.Groups[i].Label == label {
			return &r.Groups[i]
		}
	}
	return nil
}

func TestSearchCustomerFigure6Shape(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)
	res, err := svc.Search("customer", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances == 0 {
		t.Fatal("no instances found")
	}
	// customer_id (an Application1_View_Column) must be grouped under its
	// own class AND its inherited classes — the multi-group behaviour of
	// Figure 6.
	for _, label := range []string{"Application1 View Column", "View Column", "Column", "Attribute"} {
		g := groupByLabel(res, label)
		if g == nil {
			t.Errorf("missing group %q (have %v)", label, labels(res))
			continue
		}
		if g.Count < 1 {
			t.Errorf("group %q count = %d", label, g.Count)
		}
	}
	// The concept node named "customer" should appear under Customer.
	if g := groupByLabel(res, "Customer"); g == nil {
		t.Errorf("missing Customer group: %v", labels(res))
	}
	// Groups are sorted by label.
	for i := 1; i < len(res.Groups); i++ {
		if res.Groups[i-1].Label > res.Groups[i].Label {
			t.Error("groups not sorted")
		}
	}
}

func labels(r *Result) []string {
	var out []string
	for _, g := range r.Groups {
		out = append(out, g.Label)
	}
	return out
}

func TestSearchFilterIntersection(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)
	// Listing 1 restricts to the intersection of Application1_Item and
	// Interface_Item; only customer_id (the Application1_View_Column)
	// satisfies both.
	res, err := svc.Search("customer", Options{
		FilterClasses: []string{rdf.DMNS + "Application1_Item", rdf.DMNS + "Interface_Item"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 1 {
		t.Fatalf("instances = %d, want 1 (only customer_id)", res.Instances)
	}
	g := groupByLabel(res, "Application1 View Column")
	if g == nil || g.Count != 1 || g.Hits[0].Name != "customer_id" {
		t.Errorf("groups = %+v", res.Groups)
	}
}

func TestSearchUnknownFilterClass(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)
	res, err := svc.Search("customer", Options{FilterClasses: []string{rdf.DMNS + "NoSuchClass"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 0 {
		t.Errorf("instances = %d, want 0", res.Instances)
	}
}

func TestSearchAreaFilter(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)
	// Restrict to the mart stage: source_customer_id (inbound) must not
	// appear; customer_id (mart view) must.
	res, err := svc.Search("customer", Options{Area: "mart"})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		for _, h := range g.Hits {
			if h.Name == "source_customer_id" {
				t.Error("inbound column leaked through mart filter")
			}
		}
	}
	found := false
	for _, g := range res.Groups {
		for _, h := range g.Hits {
			if h.Name == "customer_id" {
				found = true
			}
		}
	}
	if !found {
		t.Error("mart column missing under mart filter")
	}
}

func TestSearchLayerFilter(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)
	// Business users search the conceptual layer; only the mart schema is
	// conceptual in the fixture.
	res, err := svc.Search("customer", Options{Layer: "conceptual"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances == 0 {
		t.Fatal("no conceptual-layer hits")
	}
	for _, g := range res.Groups {
		for _, h := range g.Hits {
			if h.Name == "source_customer_id" {
				t.Error("physical-layer column leaked through conceptual filter")
			}
		}
	}
}

func TestSemanticExpansion(t *testing.T) {
	st := fixture(t)
	th := dbpedia.FromTriples(dbpedia.Banking())

	plain := New(st, "DWH_CURR", nil)
	semantic := New(st, "DWH_CURR", th)

	// "client" matches client_information_id literally; with synonyms it
	// must additionally match customer-named items.
	p, err := plain.Search("client", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := semantic.Search("client", Options{Semantic: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Instances <= p.Instances {
		t.Errorf("semantic search found %d, plain %d — expansion had no effect", s.Instances, p.Instances)
	}
	if len(s.Expanded) < 2 {
		t.Errorf("Expanded = %v", s.Expanded)
	}
	// The matched term is recorded per hit.
	foundViaSynonym := false
	for _, g := range s.Groups {
		for _, h := range g.Hits {
			if h.Matched != "client" {
				foundViaSynonym = true
			}
		}
	}
	if !foundViaSynonym {
		t.Error("no hit recorded a synonym match")
	}
}

func TestSemanticWithoutThesaurusFallsBack(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)
	res, err := svc.Search("client", Options{Semantic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expanded) != 1 {
		t.Errorf("Expanded = %v", res.Expanded)
	}
}

func TestMatchDescriptions(t *testing.T) {
	st := store.New()
	exp := &staging.Export{
		Applications: []staging.ApplicationDoc{{
			Name: "legacy",
			Databases: []staging.DatabaseDoc{{
				Name: "db",
				Schemas: []staging.SchemaDoc{{
					Name: "s",
					Tables: []staging.TableDoc{{
						Name: "TCD100",
						Columns: []staging.ColumnDoc{{
							Name:        "tcd100_col7",
							Description: "customer segment marker",
						}},
					}},
				}},
			}},
		}},
	}
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(
		[]*staging.Export{exp}, ontology.DWH().Triples()); err != nil {
		t.Fatal(err)
	}
	svc := New(st, "m", nil)

	plain, err := svc.Search("customer", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Instances != 0 {
		t.Errorf("plain search matched cryptic column by name: %d", plain.Instances)
	}
	desc, err := svc.Search("customer", Options{MatchDescriptions: true})
	if err != nil {
		t.Fatal(err)
	}
	if desc.Instances != 1 {
		t.Fatalf("description search instances = %d, want 1", desc.Instances)
	}
	// The hit reports the column's real (cryptic) name.
	for _, g := range desc.Groups {
		for _, h := range g.Hits {
			if h.Name != "tcd100_col7" {
				t.Errorf("hit name = %q", h.Name)
			}
		}
	}
}

func TestMaxHitsPerGroupCapsListsNotCounts(t *testing.T) {
	l := landscape.Generate(landscape.Small())
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	svc := New(st, "m", nil)
	res, err := svc.Search("customer", Options{MaxHitsPerGroup: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		if len(g.Hits) > 1 {
			t.Errorf("group %s lists %d hits, cap 1", g.Label, len(g.Hits))
		}
		if g.Count < len(g.Hits) {
			t.Errorf("group %s count %d < hits %d", g.Label, g.Count, len(g.Hits))
		}
	}
}

func TestEmptyTermRejected(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)
	if _, err := svc.Search("  ", Options{}); err == nil {
		t.Error("empty term should error")
	}
}

func TestMissingModelRejected(t *testing.T) {
	svc := New(store.New(), "nope", nil)
	if _, err := svc.Search("x", Options{}); err == nil {
		t.Error("missing model should error")
	}
}

func TestFormatResult(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)
	res, err := svc.Search("customer", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(res)
	if !strings.Contains(out, `Search Results for "customer"`) {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "Attribute") {
		t.Errorf("groups missing:\n%s", out)
	}
}

func TestRegexMetaCharactersAreQuoted(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)
	// A term with regex metacharacters must not crash or over-match.
	res, err := svc.Search("cust.*id", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 0 {
		t.Errorf("metacharacter term matched %d instances", res.Instances)
	}
}

func TestHomonymHints(t *testing.T) {
	st := fixture(t)
	th := dbpedia.FromTriples(dbpedia.Banking())
	svc := New(st, "DWH_CURR", th)
	res, err := svc.Search("interest", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Homonyms) != 2 {
		t.Fatalf("Homonyms = %v", res.Homonyms)
	}
	out := FormatResult(res)
	if !strings.Contains(out, "ambiguous") {
		t.Errorf("format missing homonym note:\n%s", out)
	}
	// Unambiguous terms carry no hint.
	res, err = svc.Search("customer", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Homonyms) != 0 {
		t.Errorf("customer homonyms = %v", res.Homonyms)
	}
}

func TestGovernanceTagFilter(t *testing.T) {
	l := landscape.Generate(landscape.Small())
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	svc := New(st, "m", nil)
	all, err := svc.Search("customer", Options{})
	if err != nil {
		t.Fatal(err)
	}
	pii, err := svc.Search("customer", Options{Tag: "pii"})
	if err != nil {
		t.Fatal(err)
	}
	if pii.Instances == 0 {
		t.Fatal("no pii-tagged customer items (generator tags them)")
	}
	if pii.Instances > all.Instances {
		t.Errorf("tag filter increased hits: %d > %d", pii.Instances, all.Instances)
	}
	// A tag nobody uses filters everything out.
	none, err := svc.Search("customer", Options{Tag: "no_such_tag"})
	if err != nil {
		t.Fatal(err)
	}
	if none.Instances != 0 {
		t.Errorf("unknown tag matched %d items", none.Instances)
	}
}
