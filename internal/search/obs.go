package search

import "mdw/internal/obs"

// Metric handles, resolved once at package init.
var (
	obsSearchHist   = obs.Default().Histogram("mdw_search_seconds", nil)
	obsSearchIdx    = obs.Default().Counter("mdw_search_path_total", "path", "index")
	obsSearchScan   = obs.Default().Counter("mdw_search_path_total", "path", "scan")
	obsSearchSPARQL = obs.Default().Counter("mdw_search_path_total", "path", "sparql")
	obsScanFallback = obs.Default().Counter("mdw_search_scan_fallbacks_total")
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_search_seconds", "Search service latency (full three-step algorithm).")
	r.SetHelp("mdw_search_path_total", "Searches answered by the inverted index, the literal scan, or the SPARQL candidate path.")
	r.SetHelp("mdw_search_scan_fallbacks_total", "Searches that wanted the index but fell back to scanning (index cold, mid-build, or outrun by writers).")
}
