package search

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mdw/internal/landscape"
	"mdw/internal/rdf"
	"mdw/internal/staging"
	"mdw/internal/store"
)

// TestConcurrentSearchAndWrite runs indexed and scan searches against
// concurrent AddTriple-style writes and Evolve/reload cycles. It is a
// race-detector test: run with -race it proves the snapshot/ReadView
// protocol keeps the index, the entailment materializer, and the dict
// free of data races; without -race it is a cheap smoke test.
func TestConcurrentSearchAndWrite(t *testing.T) {
	l := landscape.Generate(landscape.Small())
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	svc := New(st, "m", nil)

	var wg sync.WaitGroup

	// Searchers: half indexed, half forced onto the scan oracle.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opt := Options{ForceScan: g%2 == 1, Semantic: g%3 == 0}
			terms := []string{"customer", "id", "zz_hot_row", "account"}
			for i := 0; i < 12; i++ {
				if _, err := svc.Search(terms[i%len(terms)], opt); err != nil {
					t.Errorf("searcher %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	// Writer: single-triple adds, hammering Dict.Intern and the
	// generation counter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			s := rdf.IRI(fmt.Sprintf("%shot/%d", rdf.InstNS, i))
			st.Add("m", rdf.T(s, rdf.Type, rdf.IRI(rdf.DMNS+"Column")))
			st.Add("m", rdf.T(s, rdf.HasName, rdf.Literal(fmt.Sprintf("zz_hot_row_%d", i))))
			if i%10 == 9 {
				st.Remove("m", rdf.T(s, rdf.HasName, rdf.Literal(fmt.Sprintf("zz_hot_row_%d", i))))
			}
		}
	}()

	// Evolver: whole-landscape releases re-running the staging pipeline,
	// which bulk-loads and re-materializes the entailment index.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 2; r <= 4; r++ {
			if _, err := landscape.Evolve(l, r, 0.03); err != nil {
				t.Errorf("evolve %d: %v", r, err)
				return
			}
			if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, nil); err != nil {
				t.Errorf("reload %d: %v", r, err)
				return
			}
		}
	}()

	wg.Wait()

	// At quiescence the two paths must agree again.
	for _, term := range []string{"customer", "zz_hot_row", "id"} {
		indexed, err := svc.Search(term, Options{})
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := svc.Search(term, Options{ForceScan: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(canon(indexed), canon(scanned)) {
			t.Errorf("post-race parity broken for %q", term)
		}
	}
}
