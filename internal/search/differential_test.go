package search

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"mdw/internal/dbpedia"
	"mdw/internal/landscape"
	"mdw/internal/rdf"
	"mdw/internal/staging"
	"mdw/internal/store"
)

// canon normalizes a result for comparison: hits are sorted by the full
// (Name, IRI, Matched) key so ties in the user-facing by-Name order
// cannot make two equal results compare unequal.
func canon(r *Result) *Result {
	for gi := range r.Groups {
		hits := r.Groups[gi].Hits
		sort.Slice(hits, func(i, j int) bool {
			a, b := hits[i], hits[j]
			if a.Name != b.Name {
				return a.Name < b.Name
			}
			if a.IRI.Value != b.IRI.Value {
				return a.IRI.Value < b.IRI.Value
			}
			return a.Matched < b.Matched
		})
	}
	return r
}

// TestIndexedScanParity is the differential test of the inverted-index
// search path: on a generated landscape, the indexed path and the
// retained literal-scan oracle must return identical results for a
// corpus of terms — exact, prefix, substring, synonym-expanded,
// description-matching — across the Figure 6 filter combinations.
func TestIndexedScanParity(t *testing.T) {
	l := landscape.Generate(landscape.Small())
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	st.AddAll("m", l.ExtraTriples())
	th := dbpedia.FromTriples(dbpedia.Banking())
	svc := New(st, "m", th)

	terms := []string{
		"customer",    // exact word
		"CUSTOMER",    // case folding
		"cust",        // prefix
		"stome",       // infix substring
		"customer_id", // multi-token with separator
		"client",      // has synonyms in the thesaurus
		"interest",    // homonym hints
		"id",          // high-frequency token
		"e",           // single letter, huge candidate set
		"zz_nothing",  // no matches
	}
	opts := []Options{
		{},
		{Semantic: true},
		{MatchDescriptions: true},
		{Semantic: true, MatchDescriptions: true},
		{FilterClasses: []string{rdf.DMNS + "Attribute"}},
		{Area: "mart"},
		{Layer: "conceptual"},
		{Tag: "pii"},
	}
	for _, term := range terms {
		for i, opt := range opts {
			indexed, err := svc.Search(term, opt)
			if err != nil {
				t.Fatalf("indexed %q/%d: %v", term, i, err)
			}
			scanOpt := opt
			scanOpt.ForceScan = true
			scanned, err := svc.Search(term, scanOpt)
			if err != nil {
				t.Fatalf("scan %q/%d: %v", term, i, err)
			}
			if !reflect.DeepEqual(canon(indexed), canon(scanned)) {
				t.Errorf("term %q opts %+v: indexed and scan results differ\nindexed: %+v\nscan:    %+v",
					term, opt, indexed, scanned)
			}
			sparqlOpt := opt
			sparqlOpt.ViaSPARQL = true
			viaSparql, err := svc.Search(term, sparqlOpt)
			if err != nil {
				t.Fatalf("via-sparql %q/%d: %v", term, i, err)
			}
			if !reflect.DeepEqual(canon(indexed), canon(viaSparql)) {
				t.Errorf("term %q opts %+v: indexed and SPARQL-path results differ\nindexed: %+v\nsparql:  %+v",
					term, opt, indexed, viaSparql)
			}
		}
	}
}

// TestSearchSeesLaterWrites is the stale-entailment regression test: a
// triple added after the first search must be visible — including its
// *inherited* class groups, which only exist in the re-materialized
// OWLPRIME index — on the next search, on both matching paths.
func TestSearchSeesLaterWrites(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)

	for _, forceScan := range []bool{false, true} {
		opt := Options{ForceScan: forceScan}
		res, err := svc.Search("zz_late_column", opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Instances != 0 {
			t.Fatalf("forceScan=%v: phantom hit before the write", forceScan)
		}
	}

	// Write to the base model after the service has already built its
	// entailment index and full-text index.
	col := rdf.IRI(rdf.InstNS + "late/zz_late_column")
	st.Add("DWH_CURR", rdf.T(col, rdf.Type, rdf.IRI(rdf.DMNS+"Application1_View_Column")))
	st.Add("DWH_CURR", rdf.T(col, rdf.HasName, rdf.Literal("zz_late_column")))

	for _, forceScan := range []bool{false, true} {
		res, err := svc.Search("zz_late_column", Options{ForceScan: forceScan})
		if err != nil {
			t.Fatal(err)
		}
		if res.Instances != 1 {
			t.Fatalf("forceScan=%v: instances = %d after write, want 1", forceScan, res.Instances)
		}
		// The hit must group under its superclasses too — proof that the
		// entailment was re-materialized, not just the base re-scanned.
		if g := groupByLabel(res, "Attribute"); g == nil || g.Count != 1 {
			t.Errorf("forceScan=%v: inherited Attribute group missing: %v", forceScan, labels(res))
		}
	}

	// Removal is noticed as well.
	st.Remove("DWH_CURR", rdf.T(col, rdf.HasName, rdf.Literal("zz_late_column")))
	res, err := svc.Search("zz_late_column", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 0 {
		t.Errorf("instances = %d after removal, want 0", res.Instances)
	}
}

// TestLateDescriptionPredicateIndexed reproduces the frozen-field-map
// bug end to end: the full-text index is built while no rdfs:comment
// triple exists anywhere (so the predicate is not interned yet), then
// the first description is written. The delta-updated index must find
// it — previously the indexed path silently returned 0 while the scan
// oracle found 1.
func TestLateDescriptionPredicateIndexed(t *testing.T) {
	st := store.New()
	col := rdf.IRI(rdf.InstNS + "late/c1")
	st.Add("DWH_CURR", rdf.T(col, rdf.Type, rdf.IRI(rdf.DMNS+"Column")))
	st.Add("DWH_CURR", rdf.T(col, rdf.HasName, rdf.Literal("tcd100")))
	svc := New(st, "DWH_CURR", nil)

	opt := Options{MatchDescriptions: true}
	if res, err := svc.Search("tcd100", opt); err != nil || res.Instances != 1 {
		t.Fatalf("prime search: %v, %+v", err, res)
	}

	st.Add("DWH_CURR", rdf.T(col, rdf.IRI(rdf.RDFSComment), rdf.Literal("customer segment marker")))

	indexed, err := svc.Search("segment", opt)
	if err != nil {
		t.Fatal(err)
	}
	if indexed.Instances != 1 {
		t.Errorf("indexed search missed the late description: %d instances, want 1", indexed.Instances)
	}
	scanOpt := opt
	scanOpt.ForceScan = true
	scanned, err := svc.Search("segment", scanOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canon(indexed), canon(scanned)) {
		t.Errorf("indexed and scan disagree on late description\nindexed: %+v\nscan:    %+v", indexed, scanned)
	}
}

// TestMultiNameHitAttributionDeterministic pins the tie-break for
// subjects carrying several matching name literals: the lowest object ID
// (the first-interned literal) supplies Hit.Name on BOTH paths, every
// run — triple-map iteration order must not leak into results.
func TestMultiNameHitAttributionDeterministic(t *testing.T) {
	st := store.New()
	col := rdf.IRI(rdf.InstNS + "dup/c1")
	st.Add("DWH_CURR", rdf.T(col, rdf.Type, rdf.IRI(rdf.DMNS+"Column")))
	st.Add("DWH_CURR", rdf.T(col, rdf.HasName, rdf.Literal("customer_beta")))
	st.Add("DWH_CURR", rdf.T(col, rdf.HasName, rdf.Literal("customer_alpha")))
	svc := New(st, "DWH_CURR", nil)

	for run := 0; run < 8; run++ {
		for _, forceScan := range []bool{false, true} {
			res, err := svc.Search("customer", Options{ForceScan: forceScan})
			if err != nil {
				t.Fatal(err)
			}
			g := groupByLabel(res, "Column")
			if g == nil || len(g.Hits) != 1 {
				t.Fatalf("forceScan=%v: unexpected result %+v", forceScan, res)
			}
			if g.Hits[0].Name != "customer_beta" {
				t.Errorf("forceScan=%v run %d: Hit.Name = %q, want first-interned \"customer_beta\"",
					forceScan, run, g.Hits[0].Name)
			}
		}
	}
}

// TestEnsureIndexTracksGenerations covers the exported index-building
// entry point the warehouse uses for build-on-load.
func TestEnsureIndexTracksGenerations(t *testing.T) {
	st := fixture(t)
	svc := New(st, "DWH_CURR", nil)

	ix, err := EnsureIndex(st, "DWH_CURR", svc.IndexManager())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Gen() != st.Generation("DWH_CURR") {
		t.Fatalf("index gen %d != model gen %d", ix.Gen(), st.Generation("DWH_CURR"))
	}
	st.Add("DWH_CURR", rdf.T(rdf.IRI(rdf.InstNS+"x"), rdf.HasName, rdf.Literal("xname")))
	ix2, err := EnsureIndex(st, "DWH_CURR", svc.IndexManager())
	if err != nil {
		t.Fatal(err)
	}
	if ix2 == ix || ix2.Gen() != st.Generation("DWH_CURR") {
		t.Error("EnsureIndex did not refresh after a write")
	}
	if _, err := EnsureIndex(st, "no_such_model", svc.IndexManager()); err == nil {
		t.Error("EnsureIndex accepted a missing model")
	}
}

// TestManyModelsOneManager checks that one manager serves several models
// independently — the historized-release scenario.
func TestManyModelsOneManager(t *testing.T) {
	st := store.New()
	for i := 0; i < 3; i++ {
		model := fmt.Sprintf("rel%d", i)
		st.Add(model, rdf.T(rdf.IRI(rdf.InstNS+"c"), rdf.Type, rdf.IRI(rdf.DMNS+"Column")))
		st.Add(model, rdf.T(rdf.IRI(rdf.InstNS+"c"), rdf.HasName, rdf.Literal(fmt.Sprintf("col_v%d", i))))
	}
	shared := New(st, "rel0", nil).IndexManager()
	for i := 0; i < 3; i++ {
		model := fmt.Sprintf("rel%d", i)
		svc := New(st, model, nil).WithIndexManager(shared)
		res, err := svc.Search(fmt.Sprintf("col_v%d", i), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Instances != 1 {
			t.Errorf("model %s: instances = %d", model, res.Instances)
		}
	}
	if stats := shared.StatsAll(); len(stats) != 3 {
		t.Errorf("manager caches %d indexes, want 3", len(stats))
	}
}
