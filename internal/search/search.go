// Package search implements the search facility of Section IV.A: the
// generic entry point through which business and IT users find meta-data
// items without knowing the warehouse's terminology.
//
// The algorithm follows the paper's three steps:
//
//  1. find the hierarchy classes relevant for the search (the user's
//     filter classes and everything below them);
//  2. intersect them to the valid meta-data schema result classes, which
//     also group the results (Figure 6);
//  3. find the instances of those classes — via rdf:type over the
//     OWLPRIME index, so class membership inherited through the
//     hierarchy counts — whose name matches the search term, exactly as
//     Listing 1 does with regexp_like(term, 'customer', 'i').
//
// The semantic extension of Section V is included: with a thesaurus the
// term is expanded by its DBpedia-derived synonyms before matching.
//
// Step 3 has two implementations with identical results:
//
//   - the default path looks candidates up in the inverted full-text
//     index of internal/textindex (O(matching tokens) per term);
//   - the scan path (Options.ForceScan) walks every name literal and
//     matches by case-folded substring — the paper's regexp_like
//     semantics verbatim, retained as the correctness oracle the
//     differential tests compare the index against.
//
// Either way a search runs against a consistent snapshot: the service
// checks that the OWLPRIME entailment index still reflects the base
// model (via the store's generation counters), re-materializes it when
// the model has moved, and evaluates the query under the store's read
// lock so concurrent writers cannot tear the view.
//
// Index maintenance is kept off the store's read lock: only the cheap
// posting collection runs under it, while the O(all literals)
// tokenization of a build or delta update happens outside, so a cold
// index never stalls writers. Builds are single-flighted per model;
// a search arriving while another goroutine is building serves its
// query from the scan path instead of waiting.
package search

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"mdw/internal/dbpedia"
	"mdw/internal/obs"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/sparql"
	"mdw/internal/store"
	"mdw/internal/textindex"
)

// Service answers meta-data searches over one model of a store.
type Service struct {
	st        *store.Store
	model     string
	thesaurus *dbpedia.Thesaurus
	tix       *textindex.Manager
}

// New returns a search service for the named model. The thesaurus is
// optional; without it Semantic searches fall back to plain matching.
// The service maintains its own full-text index; callers that share one
// warehouse across services should inject a shared manager with
// WithIndexManager so the index is built once.
func New(st *store.Store, model string, th *dbpedia.Thesaurus) *Service {
	return &Service{
		st:        st,
		model:     model,
		thesaurus: th,
		tix:       textindex.NewManager(textindex.Config{}),
	}
}

// WithIndexManager makes the service use the given (shared) full-text
// index manager instead of its private one and returns the service.
func (s *Service) WithIndexManager(m *textindex.Manager) *Service {
	if m != nil {
		s.tix = m
	}
	return s
}

// IndexManager returns the full-text index manager the service queries.
func (s *Service) IndexManager() *textindex.Manager { return s.tix }

// Options refine a search, mirroring the filters of the Figure 6
// frontend.
type Options struct {
	// FilterClasses restricts results to instances belonging to ALL of
	// the given classes (IRIs) — the intersection semantics the paper
	// describes for multiple inheritance.
	FilterClasses []string
	// Area restricts results to items contained (via dm:partOf) in a
	// container named Area — e.g. "inbound", "integration", "mart", the
	// stages of the data integration pipeline.
	Area string
	// Layer restricts results to items whose schema is on the given
	// abstraction level ("conceptual" or "physical").
	Layer string
	// Semantic expands the term with DBpedia synonyms (Section V).
	Semantic bool
	// MatchDescriptions also matches rdfs:comment texts, keeping
	// cryptic legacy names like "TCD100" findable.
	MatchDescriptions bool
	// Tag restricts results to items carrying the given governance tag
	// (the instance-to-value tag facts of Section III.B, e.g. "pii").
	Tag string
	// MaxHitsPerGroup caps the instances listed per class group
	// (0 = unlimited). Counts are always exact.
	MaxHitsPerGroup int
	// ForceScan bypasses the inverted full-text index and matches by
	// scanning every literal of the view — the paper's Listing 1
	// executed naively, kept as the correctness oracle for the indexed
	// path.
	ForceScan bool
	// ViaSPARQL generates match candidates by issuing Listing-1-shaped
	// SPARQL queries (CONTAINS(LCASE(?text), term)) against the same
	// consistent view instead of probing the full-text index or scanning
	// literals directly. Filtering and grouping are shared with the
	// other paths, so results are identical (up to exotic-Unicode case
	// folding); the point is observability: under a traced request the
	// whole search nests as http → search → sparql parse/plan/exec, and
	// the queries aggregate in the statement table.
	ViaSPARQL bool
}

// Hit is one matching instance.
type Hit struct {
	IRI  rdf.Term
	Name string
	// Matched is the expanded term that matched (equals the search term
	// unless synonym expansion kicked in).
	Matched string
}

// Group is one class bucket of the Figure 6 result list.
type Group struct {
	Class rdf.Term
	Label string
	Count int
	Hits  []Hit
}

// Result is a full search outcome.
type Result struct {
	Term string
	// Expanded lists the matched terms (the search term plus synonyms
	// when Semantic was requested).
	Expanded []string
	// Homonyms lists alternative meanings of the term from the DBpedia
	// disambiguation links — a "did you mean" hint the frontend shows so
	// users can disentangle ambiguous terms like "interest".
	Homonyms []string
	// Groups are the class buckets, sorted by label — the shape of the
	// Figure 6 screenshot.
	Groups []Group
	// Instances is the number of distinct matching instances.
	Instances int
}

// maxFreshAttempts bounds how often Search chases a base model that
// keeps mutating under it before serving from a consistent-but-stale
// snapshot (scan path, so no stale index is cached).
const maxFreshAttempts = 3

// Search runs the three-step algorithm for term.
func (s *Service) Search(term string, opt Options) (*Result, error) {
	return s.SearchCtx(context.Background(), term, opt)
}

// SearchCtx is Search carrying a request context: the search runs under
// a "search" span — nested in the request's trace when ctx carries one
// (obs.ContextWithSpan), the root of a new trace otherwise — and any
// SPARQL work below it (Options.ViaSPARQL) attaches to the same trace.
func (s *Service) SearchCtx(ctx context.Context, term string, opt Options) (*Result, error) {
	if strings.TrimSpace(term) == "" {
		return nil, fmt.Errorf("search: empty term")
	}
	sp, ctx := obs.StartChildCtx(ctx, "search")
	sp.SetLabel("term", term)
	defer sp.Finish()
	defer obsSearchHist.ObserveSince(time.Now())

	// Term expansion (semantic search) and homonym hints.
	expanded := []string{strings.ToLower(term)}
	var homonyms []string
	if s.thesaurus != nil {
		homonyms = s.thesaurus.Homonyms(term)
		if opt.Semantic {
			expanded = s.thesaurus.Expand(term)
		}
	}

	idxName := reason.IndexModelName(s.model, reason.RulebaseOWLPrime)
	for attempt := 0; ; attempt++ {
		if !s.st.HasModel(s.model) {
			return nil, fmt.Errorf("search: no such model %q", s.model)
		}
		// Bring the entailment up to date outside the read lock
		// (Materialize snapshots the base and swaps the index model in
		// atomically).
		if !s.st.Current(s.model, idxName) {
			if _, _, err := reason.NewEngine(s.st).Materialize(s.model); err != nil {
				return nil, err
			}
		}
		if !opt.ForceScan && !opt.ViaSPARQL {
			// Bring the full-text index up to date before taking the read
			// lock, so its tokenization never runs under it. Best-effort:
			// on failure (another goroutine is mid-build, or writers keep
			// racing) this query falls back to the scan path below.
			ensureFresh(s.st, s.model, idxName, s.tix, false)
		}
		var res *Result
		var err error
		done := false
		s.st.ReadView(func(v *store.View, infos []store.ModelInfo) {
			if !infos[0].Exists {
				err = fmt.Errorf("search: no such model %q", s.model)
				done = true
				return
			}
			fresh := infos[1].Exists && infos[1].Basis == infos[0].Gen
			if !fresh && attempt < maxFreshAttempts {
				return // base moved since Materialize; retry
			}
			// Use the prebuilt index only when it describes exactly this
			// snapshot's generation; otherwise (writers outran us, or the
			// build was skipped) serve this consistent snapshot via the
			// scan path. Never build under the read lock.
			var ix *textindex.Index
			if !opt.ForceScan && !opt.ViaSPARQL && fresh {
				ix, _ = s.tix.Get(s.model, infos[0].Gen)
			}
			switch {
			case opt.ViaSPARQL:
				obsSearchSPARQL.Inc()
			case ix != nil:
				obsSearchIdx.Inc()
			default:
				obsSearchScan.Inc()
				if !opt.ForceScan {
					obsScanFallback.Inc()
				}
			}
			res, err = s.searchView(ctx, v, ix, term, expanded, homonyms, opt)
			done = true
		}, s.model, idxName)
		if done {
			return res, err
		}
	}
}

// EnsureIndex returns an up-to-date full-text index over model ∪ its
// OWLPRIME entailment, materializing the entailment and refreshing the
// index as needed. It fails only when the model is missing or keeps
// mutating faster than it can be indexed.
func EnsureIndex(st *store.Store, model string, mgr *textindex.Manager) (*textindex.Index, error) {
	idxName := reason.IndexModelName(model, reason.RulebaseOWLPrime)
	for attempt := 0; attempt <= maxFreshAttempts; attempt++ {
		if !st.HasModel(model) {
			return nil, fmt.Errorf("search: no such model %q", model)
		}
		if !st.Current(model, idxName) {
			if _, _, err := reason.NewEngine(st).Materialize(model); err != nil {
				return nil, err
			}
		}
		if ix := ensureFresh(st, model, idxName, mgr, true); ix != nil {
			return ix, nil
		}
	}
	return nil, fmt.Errorf("search: model %q kept changing while indexing", model)
}

// ensureFresh brings the manager's index for model up to date with the
// store's present generation, keeping the expensive tokenization off the
// store's read lock: only textindex.Collect (a cheap scan of the indexed
// predicates) runs under ReadView; the build or delta update works from
// the collected postings afterwards. Builds are single-flighted through
// the manager's per-model build lock. When block is false and another
// goroutine already holds it, ensureFresh returns nil immediately and
// the caller serves its query from the scan path instead of stalling.
// It also returns nil when the entailment index is stale relative to the
// base (a writer raced the caller's Materialize); callers retry.
func ensureFresh(st *store.Store, model, idxName string, mgr *textindex.Manager, block bool) *textindex.Index {
	if ix, ok := mgr.Get(model, st.Generation(model)); ok {
		return ix
	}
	bmu := mgr.BuildLock(model)
	if block {
		bmu.Lock()
	} else if !bmu.TryLock() {
		return nil
	}
	defer bmu.Unlock()
	// Re-check under the build lock: the previous holder may have built
	// exactly the generation we need.
	if ix, ok := mgr.Get(model, st.Generation(model)); ok {
		return ix
	}
	field := mgr.Fields(st.Dict())
	var posts []textindex.Posting
	var gen uint64
	consistent := false
	st.ReadView(func(v *store.View, infos []store.ModelInfo) {
		if !infos[0].Exists || !infos[1].Exists || infos[1].Basis != infos[0].Gen {
			return
		}
		gen = infos[0].Gen
		posts = textindex.Collect(v, field)
		consistent = true
	}, model, idxName)
	if !consistent {
		return nil
	}
	var ix *textindex.Index
	if prev := mgr.Cached(model); prev != nil {
		ix, _, _ = prev.UpdateWith(gen, field, posts)
	} else {
		ix = textindex.BuildPostings(model, gen, st.Dict(), field, posts)
	}
	return mgr.Install(ix)
}

// searchView evaluates the query against one consistent view (held under
// the store's read lock by the caller). ix is a full-text index over
// exactly that view's generation, or nil to take the literal-scan path
// (or, with Options.ViaSPARQL, the SPARQL candidate path). The SPARQL
// path queries v directly — a lock-free snapshot handle — so it honours
// the ReadView contract of never calling locking Store methods.
func (s *Service) searchView(ctx context.Context, v *store.View, ix *textindex.Index,
	term string, expanded, homonyms []string, opt Options) (*Result, error) {
	dict := s.st.Dict()

	// Steps 1+2: resolve the filter classes. Because instance membership
	// in superclasses is materialized in the index, requiring
	// (x rdf:type C) for every filter class IS the hierarchy-intersection
	// of Figure 5.
	var filterIDs []store.ID
	for _, c := range opt.FilterClasses {
		id, ok := dict.Lookup(rdf.IRI(c))
		if !ok {
			// Unknown class: nothing can match.
			return &Result{Term: term, Expanded: expanded, Homonyms: homonyms}, nil
		}
		filterIDs = append(filterIDs, id)
	}

	typeID, _ := dict.Lookup(rdf.Type)
	nameID, _ := dict.Lookup(rdf.HasName)
	commentID, _ := dict.Lookup(rdf.IRI(rdf.RDFSComment))

	// Step 3: match named instances, names first, then (optionally)
	// descriptions. Both paths process the expanded terms in order, so a
	// hit is attributed to the first term that matches it; an instance
	// that fails the (term-independent) filters once is rejected for
	// good. Candidate generation differs, the accepted set does not.
	matched := map[store.ID]Hit{}
	rejected := map[store.ID]bool{}
	folded := make([]string, len(expanded))
	for i, t := range expanded {
		folded[i] = textindex.Fold(t)
	}

	admit := func(subj store.ID, text string, isName bool, termIdx int) {
		if _, done := matched[subj]; done || rejected[subj] {
			return
		}
		if !s.passesFilters(v, dict, subj, filterIDs, typeID, opt) {
			rejected[subj] = true
			return
		}
		name := text
		if !isName {
			name = s.nameOf(v, dict, subj, nameID)
		}
		matched[subj] = Hit{IRI: dict.Term(subj), Name: name, Matched: expanded[termIdx]}
	}

	var sparqlErr error
	match := func(predID store.ID, field textindex.Field, isName bool) {
		if predID == store.Wildcard || sparqlErr != nil {
			return
		}
		if opt.ViaSPARQL {
			// SPARQL path: per term, a Listing-1-shaped query — match the
			// predicate's literals by case-insensitive substring — executed
			// by the query engine against this same snapshot. Among a
			// subject's several matching literals the lowest object ID
			// wins, the shared tie-break of the other two paths.
			predIRI := dict.Term(predID).Value
			for i := range expanded {
				qtext := fmt.Sprintf(
					`SELECT ?x ?text WHERE { ?x <%s> ?text . FILTER CONTAINS(LCASE(?text), "%s") }`,
					predIRI, rdf.EscapeLiteral(strings.ToLower(expanded[i])))
				q, err := sparql.ParseCtx(ctx, qtext)
				if err != nil {
					sparqlErr = fmt.Errorf("search: via-sparql parse: %w", err)
					return
				}
				res, err := q.ExecCtx(ctx, v, dict)
				if err != nil {
					sparqlErr = fmt.Errorf("search: via-sparql exec: %w", err)
					return
				}
				best := map[store.ID]store.ID{}
				for _, row := range res.Rows {
					subjTerm, okS := row["x"]
					textTerm, okT := row["text"]
					if !okS || !okT {
						continue
					}
					subj, okS := dict.Lookup(subjTerm)
					obj, okT := dict.Lookup(textTerm)
					if !okS || !okT {
						continue
					}
					if _, done := matched[subj]; done || rejected[subj] {
						continue
					}
					if prev, seen := best[subj]; !seen || obj < prev {
						best[subj] = obj
					}
				}
				for subj, obj := range best {
					admit(subj, dict.Term(obj).Value, isName, i)
				}
			}
			return
		}
		if ix != nil {
			// Indexed path: per term, the index returns exactly the
			// postings whose folded text contains the folded term. The
			// index also covers rdfs:label literals, so keep only the
			// predicate this pass matches (parity with the scan). Postings
			// arrive sorted by (Subject, Pred, Object), so when a subject
			// has several matching literals the lowest object ID supplies
			// Hit.Name — the scan path applies the same tie-break.
			for i := range expanded {
				for _, p := range ix.Search(expanded[i], field) {
					if p.Pred == predID {
						admit(p.Subject, dict.Term(p.Object).Value, isName, i)
					}
				}
			}
			return
		}
		// Scan path: the paper's regexp_like(text, term, 'i') — the
		// patterns are always quoted literals, so case-folded substring
		// matching is equivalent and skips the regex machinery. Among a
		// subject's several matching literals the lowest object ID wins,
		// deterministically and in parity with the indexed path's sorted
		// postings (triple iteration order is not deterministic).
		for i := range folded {
			best := map[store.ID]store.ID{}
			v.ForEach(store.Wildcard, predID, store.Wildcard, func(t store.ETriple) bool {
				if _, done := matched[t.S]; done || rejected[t.S] {
					return true
				}
				if o, ok := best[t.S]; ok && o <= t.O {
					return true
				}
				if strings.Contains(textindex.Fold(dict.Term(t.O).Value), folded[i]) {
					best[t.S] = t.O
				}
				return true
			})
			for subj, obj := range best {
				admit(subj, dict.Term(obj).Value, isName, i)
			}
		}
	}
	match(nameID, textindex.FieldName, true)
	if opt.MatchDescriptions {
		match(commentID, textindex.FieldDescription, false)
	}
	if sparqlErr != nil {
		return nil, sparqlErr
	}

	// Group by every class the instance belongs to (via the index, so an
	// Application1_View_Column hit also appears under Attribute, Column,
	// etc. — exactly the multi-group behaviour of Figure 6). Hits are
	// sorted by name once up front, so appending in that order leaves
	// every group pre-sorted — cheaper than a per-group sort when one
	// instance lands in many inherited-class groups.
	type hitRef struct {
		id  store.ID
		hit Hit
	}
	order := make([]hitRef, 0, len(matched))
	for id, hit := range matched {
		order = append(order, hitRef{id, hit})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].hit.Name < order[j].hit.Name })

	// Accumulate int indexes into order rather than Hit values: a hit
	// lands in every inherited-class group, and regrowing []Hit (several
	// strings each) per group is the single hottest spot at paper scale.
	type protoGroup struct {
		group Group
		refs  []int32
	}
	labelID, _ := dict.Lookup(rdf.Label)
	groups := map[store.ID]*protoGroup{}
	skip := map[store.ID]bool{} // owl:Class and friends
	for hi, hr := range order {
		v.ForEach(hr.id, typeID, store.Wildcard, func(t store.ETriple) bool {
			cls := t.O
			if skip[cls] {
				return true
			}
			g, ok := groups[cls]
			if !ok {
				clsTerm := dict.Term(cls)
				if !strings.HasPrefix(clsTerm.Value, rdf.DMNS) {
					skip[cls] = true
					return true
				}
				g = &protoGroup{group: Group{Class: clsTerm, Label: s.labelOf(v, dict, cls, labelID)}}
				groups[cls] = g
			}
			g.group.Count++
			if opt.MaxHitsPerGroup == 0 || len(g.refs) < opt.MaxHitsPerGroup {
				g.refs = append(g.refs, int32(hi))
			}
			return true
		})
	}

	res := &Result{Term: term, Expanded: expanded, Homonyms: homonyms, Instances: len(matched)}
	for _, g := range groups {
		g.group.Hits = make([]Hit, len(g.refs))
		for i, hi := range g.refs {
			g.group.Hits[i] = order[hi].hit
		}
		res.Groups = append(res.Groups, g.group)
	}
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Label < res.Groups[j].Label })
	return res, nil
}

// passesFilters applies the class-intersection, area, and layer filters.
func (s *Service) passesFilters(view *store.View, dict *store.Dict, inst store.ID,
	filterIDs []store.ID, typeID store.ID, opt Options) bool {
	for _, cls := range filterIDs {
		if !view.Contains(store.ETriple{S: inst, P: typeID, O: cls}) {
			return false
		}
	}
	if opt.Area != "" && !s.hasAncestorNamed(view, dict, inst, opt.Area) {
		return false
	}
	if opt.Layer != "" && !s.onLayer(view, dict, inst, opt.Layer) {
		return false
	}
	if opt.Tag != "" && !s.hasTag(view, dict, inst, opt.Tag) {
		return false
	}
	return true
}

// hasTag reports whether the instance carries the governance tag.
func (s *Service) hasTag(view *store.View, dict *store.Dict, inst store.ID, tag string) bool {
	tagID, ok := dict.Lookup(rdf.IRI(rdf.MDWTaggedWith))
	if !ok {
		return false
	}
	want := strings.ToLower(tag)
	for _, v := range view.Objects(inst, tagID) {
		if strings.ToLower(dict.Term(v).Value) == want {
			return true
		}
	}
	return false
}

// hasAncestorNamed walks the dm:partOf containment (materialized
// transitively by the index) looking for a container named name.
func (s *Service) hasAncestorNamed(view *store.View, dict *store.Dict, inst store.ID, name string) bool {
	partOfID, ok := dict.Lookup(rdf.IRI(rdf.MDWPartOf))
	if !ok {
		return false
	}
	nameID, ok := dict.Lookup(rdf.HasName)
	if !ok {
		return false
	}
	want := strings.ToLower(name)
	check := func(node store.ID) bool {
		for _, v := range view.Objects(node, nameID) {
			if strings.ToLower(dict.Term(v).Value) == want {
				return true
			}
		}
		return false
	}
	if check(inst) {
		return true
	}
	for _, anc := range view.Objects(inst, partOfID) {
		if check(anc) {
			return true
		}
	}
	return false
}

// onLayer reports whether inst sits under a container with
// dm:inLayer = layer.
func (s *Service) onLayer(view *store.View, dict *store.Dict, inst store.ID, layer string) bool {
	partOfID, ok := dict.Lookup(rdf.IRI(rdf.MDWPartOf))
	if !ok {
		return false
	}
	layerID, ok := dict.Lookup(rdf.IRI(rdf.MDWInLayer))
	if !ok {
		return false
	}
	want := strings.ToLower(layer)
	check := func(node store.ID) bool {
		for _, v := range view.Objects(node, layerID) {
			if strings.ToLower(dict.Term(v).Value) == want {
				return true
			}
		}
		return false
	}
	if check(inst) {
		return true
	}
	for _, anc := range view.Objects(inst, partOfID) {
		if check(anc) {
			return true
		}
	}
	return false
}

func (s *Service) nameOf(view *store.View, dict *store.Dict, inst store.ID, nameID store.ID) string {
	if nameID != store.Wildcard {
		for _, v := range view.Objects(inst, nameID) {
			return dict.Term(v).Value
		}
	}
	return rdf.LocalName(dict.Term(inst).Value)
}

func (s *Service) labelOf(view *store.View, dict *store.Dict, cls store.ID, labelID store.ID) string {
	if labelID != store.Wildcard {
		for _, v := range view.Objects(cls, labelID) {
			return dict.Term(v).Value
		}
	}
	return rdf.LocalName(dict.Term(cls).Value)
}

// FormatResult renders the result like the Figure 6 frontend: the class
// list with per-class counts.
func FormatResult(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Search Results for %q", r.Term)
	if len(r.Expanded) > 1 {
		fmt.Fprintf(&b, " (expanded: %s)", strings.Join(r.Expanded, ", "))
	}
	b.WriteByte('\n')
	if len(r.Homonyms) > 0 {
		fmt.Fprintf(&b, "  note: %q is ambiguous — other meanings: %s\n", r.Term, strings.Join(r.Homonyms, ", "))
	}
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "  %-28s (%d)\n", g.Label, g.Count)
	}
	fmt.Fprintf(&b, "  %d matching instances\n", r.Instances)
	return b.String()
}
