// Package search implements the search facility of Section IV.A: the
// generic entry point through which business and IT users find meta-data
// items without knowing the warehouse's terminology.
//
// The algorithm follows the paper's three steps:
//
//  1. find the hierarchy classes relevant for the search (the user's
//     filter classes and everything below them);
//  2. intersect them to the valid meta-data schema result classes, which
//     also group the results (Figure 6);
//  3. find the instances of those classes — via rdf:type over the
//     OWLPRIME index, so class membership inherited through the
//     hierarchy counts — whose name matches the search term, exactly as
//     Listing 1 does with regexp_like(term, 'customer', 'i').
//
// The semantic extension of Section V is included: with a thesaurus the
// term is expanded by its DBpedia-derived synonyms before matching.
package search

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"mdw/internal/dbpedia"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/store"
)

// Service answers meta-data searches over one model of a store.
type Service struct {
	st        *store.Store
	model     string
	thesaurus *dbpedia.Thesaurus
}

// New returns a search service for the named model. The thesaurus is
// optional; without it Semantic searches fall back to plain matching.
func New(st *store.Store, model string, th *dbpedia.Thesaurus) *Service {
	return &Service{st: st, model: model, thesaurus: th}
}

// Options refine a search, mirroring the filters of the Figure 6
// frontend.
type Options struct {
	// FilterClasses restricts results to instances belonging to ALL of
	// the given classes (IRIs) — the intersection semantics the paper
	// describes for multiple inheritance.
	FilterClasses []string
	// Area restricts results to items contained (via dm:partOf) in a
	// container named Area — e.g. "inbound", "integration", "mart", the
	// stages of the data integration pipeline.
	Area string
	// Layer restricts results to items whose schema is on the given
	// abstraction level ("conceptual" or "physical").
	Layer string
	// Semantic expands the term with DBpedia synonyms (Section V).
	Semantic bool
	// MatchDescriptions also matches rdfs:comment texts, keeping
	// cryptic legacy names like "TCD100" findable.
	MatchDescriptions bool
	// Tag restricts results to items carrying the given governance tag
	// (the instance-to-value tag facts of Section III.B, e.g. "pii").
	Tag string
	// MaxHitsPerGroup caps the instances listed per class group
	// (0 = unlimited). Counts are always exact.
	MaxHitsPerGroup int
}

// Hit is one matching instance.
type Hit struct {
	IRI  rdf.Term
	Name string
	// Matched is the expanded term that matched (equals the search term
	// unless synonym expansion kicked in).
	Matched string
}

// Group is one class bucket of the Figure 6 result list.
type Group struct {
	Class rdf.Term
	Label string
	Count int
	Hits  []Hit
}

// Result is a full search outcome.
type Result struct {
	Term string
	// Expanded lists the matched terms (the search term plus synonyms
	// when Semantic was requested).
	Expanded []string
	// Homonyms lists alternative meanings of the term from the DBpedia
	// disambiguation links — a "did you mean" hint the frontend shows so
	// users can disentangle ambiguous terms like "interest".
	Homonyms []string
	// Groups are the class buckets, sorted by label — the shape of the
	// Figure 6 screenshot.
	Groups []Group
	// Instances is the number of distinct matching instances.
	Instances int
}

// Search runs the three-step algorithm for term.
func (s *Service) Search(term string, opt Options) (*Result, error) {
	if strings.TrimSpace(term) == "" {
		return nil, fmt.Errorf("search: empty term")
	}
	view, err := s.indexedView()
	if err != nil {
		return nil, err
	}
	dict := s.st.Dict()

	// Term expansion (semantic search) and homonym hints.
	expanded := []string{strings.ToLower(term)}
	var homonyms []string
	if s.thesaurus != nil {
		homonyms = s.thesaurus.Homonyms(term)
		if opt.Semantic {
			expanded = s.thesaurus.Expand(term)
		}
	}
	regexes := make([]*regexp.Regexp, len(expanded))
	for i, t := range expanded {
		re, err := regexp.Compile("(?i)" + regexp.QuoteMeta(t))
		if err != nil {
			return nil, fmt.Errorf("search: term %q: %w", t, err)
		}
		regexes[i] = re
	}

	// Steps 1+2: resolve the filter classes. Because instance membership
	// in superclasses is materialized in the index, requiring
	// (x rdf:type C) for every filter class IS the hierarchy-intersection
	// of Figure 5.
	var filterIDs []store.ID
	for _, c := range opt.FilterClasses {
		id, ok := dict.Lookup(rdf.IRI(c))
		if !ok {
			// Unknown class: nothing can match.
			return &Result{Term: term, Expanded: expanded, Homonyms: homonyms}, nil
		}
		filterIDs = append(filterIDs, id)
	}

	typeID, _ := dict.Lookup(rdf.Type)
	nameID, _ := dict.Lookup(rdf.HasName)
	commentID, _ := dict.Lookup(rdf.IRI(rdf.RDFSComment))

	// Step 3: scan named instances and match.
	matched := map[store.ID]Hit{}
	scan := func(predID store.ID) {
		if predID == store.Wildcard {
			return
		}
		view.ForEach(store.Wildcard, predID, store.Wildcard, func(t store.ETriple) bool {
			if _, done := matched[t.S]; done {
				return true
			}
			text := dict.Term(t.O).Value
			for i, re := range regexes {
				if !re.MatchString(text) {
					continue
				}
				if !s.passesFilters(view, dict, t.S, filterIDs, typeID, opt) {
					break
				}
				name := text
				if predID != nameID {
					name = s.nameOf(view, dict, t.S, nameID)
				}
				matched[t.S] = Hit{IRI: dict.Term(t.S), Name: name, Matched: expanded[i]}
				break
			}
			return true
		})
	}
	scan(nameID)
	if opt.MatchDescriptions {
		scan(commentID)
	}

	// Group by every class the instance belongs to (via the index, so an
	// Application1_View_Column hit also appears under Attribute, Column,
	// etc. — exactly the multi-group behaviour of Figure 6).
	labelID, _ := dict.Lookup(rdf.Label)
	groups := map[store.ID]*Group{}
	for id, hit := range matched {
		for _, cls := range view.Objects(id, typeID) {
			clsTerm := dict.Term(cls)
			if !strings.HasPrefix(clsTerm.Value, rdf.DMNS) {
				continue // skip owl:Class and friends
			}
			g, ok := groups[cls]
			if !ok {
				g = &Group{Class: clsTerm, Label: s.labelOf(view, dict, cls, labelID)}
				groups[cls] = g
			}
			g.Count++
			if opt.MaxHitsPerGroup == 0 || len(g.Hits) < opt.MaxHitsPerGroup {
				g.Hits = append(g.Hits, hit)
			}
		}
	}

	res := &Result{Term: term, Expanded: expanded, Homonyms: homonyms, Instances: len(matched)}
	for _, g := range groups {
		sort.Slice(g.Hits, func(i, j int) bool { return g.Hits[i].Name < g.Hits[j].Name })
		res.Groups = append(res.Groups, *g)
	}
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Label < res.Groups[j].Label })
	return res, nil
}

// passesFilters applies the class-intersection, area, and layer filters.
func (s *Service) passesFilters(view *store.View, dict *store.Dict, inst store.ID,
	filterIDs []store.ID, typeID store.ID, opt Options) bool {
	for _, cls := range filterIDs {
		if !view.Contains(store.ETriple{S: inst, P: typeID, O: cls}) {
			return false
		}
	}
	if opt.Area != "" && !s.hasAncestorNamed(view, dict, inst, opt.Area) {
		return false
	}
	if opt.Layer != "" && !s.onLayer(view, dict, inst, opt.Layer) {
		return false
	}
	if opt.Tag != "" && !s.hasTag(view, dict, inst, opt.Tag) {
		return false
	}
	return true
}

// hasTag reports whether the instance carries the governance tag.
func (s *Service) hasTag(view *store.View, dict *store.Dict, inst store.ID, tag string) bool {
	tagID, ok := dict.Lookup(rdf.IRI(rdf.MDWTaggedWith))
	if !ok {
		return false
	}
	want := strings.ToLower(tag)
	for _, v := range view.Objects(inst, tagID) {
		if strings.ToLower(dict.Term(v).Value) == want {
			return true
		}
	}
	return false
}

// hasAncestorNamed walks the dm:partOf containment (materialized
// transitively by the index) looking for a container named name.
func (s *Service) hasAncestorNamed(view *store.View, dict *store.Dict, inst store.ID, name string) bool {
	partOfID, ok := dict.Lookup(rdf.IRI(rdf.MDWPartOf))
	if !ok {
		return false
	}
	nameID, ok := dict.Lookup(rdf.HasName)
	if !ok {
		return false
	}
	want := strings.ToLower(name)
	check := func(node store.ID) bool {
		for _, v := range view.Objects(node, nameID) {
			if strings.ToLower(dict.Term(v).Value) == want {
				return true
			}
		}
		return false
	}
	if check(inst) {
		return true
	}
	for _, anc := range view.Objects(inst, partOfID) {
		if check(anc) {
			return true
		}
	}
	return false
}

// onLayer reports whether inst sits under a container with
// dm:inLayer = layer.
func (s *Service) onLayer(view *store.View, dict *store.Dict, inst store.ID, layer string) bool {
	partOfID, ok := dict.Lookup(rdf.IRI(rdf.MDWPartOf))
	if !ok {
		return false
	}
	layerID, ok := dict.Lookup(rdf.IRI(rdf.MDWInLayer))
	if !ok {
		return false
	}
	want := strings.ToLower(layer)
	check := func(node store.ID) bool {
		for _, v := range view.Objects(node, layerID) {
			if strings.ToLower(dict.Term(v).Value) == want {
				return true
			}
		}
		return false
	}
	if check(inst) {
		return true
	}
	for _, anc := range view.Objects(inst, partOfID) {
		if check(anc) {
			return true
		}
	}
	return false
}

func (s *Service) nameOf(view *store.View, dict *store.Dict, inst store.ID, nameID store.ID) string {
	if nameID != store.Wildcard {
		for _, v := range view.Objects(inst, nameID) {
			return dict.Term(v).Value
		}
	}
	return rdf.LocalName(dict.Term(inst).Value)
}

func (s *Service) labelOf(view *store.View, dict *store.Dict, cls store.ID, labelID store.ID) string {
	if labelID != store.Wildcard {
		for _, v := range view.Objects(cls, labelID) {
			return dict.Term(v).Value
		}
	}
	return rdf.LocalName(dict.Term(cls).Value)
}

// indexedView returns base ∪ OWLPRIME index, materializing the index on
// first use.
func (s *Service) indexedView() (*store.View, error) {
	idx := reason.IndexModelName(s.model, reason.RulebaseOWLPrime)
	if !s.st.HasModel(idx) {
		if !s.st.HasModel(s.model) {
			return nil, fmt.Errorf("search: no such model %q", s.model)
		}
		if _, _, err := reason.NewEngine(s.st).Materialize(s.model); err != nil {
			return nil, err
		}
	}
	return s.st.ViewOf(s.model, idx), nil
}

// FormatResult renders the result like the Figure 6 frontend: the class
// list with per-class counts.
func FormatResult(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Search Results for %q", r.Term)
	if len(r.Expanded) > 1 {
		fmt.Fprintf(&b, " (expanded: %s)", strings.Join(r.Expanded, ", "))
	}
	b.WriteByte('\n')
	if len(r.Homonyms) > 0 {
		fmt.Fprintf(&b, "  note: %q is ambiguous — other meanings: %s\n", r.Term, strings.Join(r.Homonyms, ", "))
	}
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "  %-28s (%d)\n", g.Label, g.Count)
	}
	fmt.Fprintf(&b, "  %d matching instances\n", r.Instances)
	return b.String()
}
