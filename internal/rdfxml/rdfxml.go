// Package rdfxml writes and reads a constrained RDF/XML serialization.
// The Figure 4 pipeline transforms source meta-data XML into RDF; this
// package provides the RDF/XML wire format used between the transform and
// the staging tables.
//
// The subset handled is the "striped" form produced by Marshal itself:
// an rdf:RDF root containing rdf:Description elements with rdf:about,
// property child elements carrying either an rdf:resource attribute
// (object properties) or character data (literals, with optional
// rdf:datatype or xml:lang attributes).
package rdfxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"mdw/internal/rdf"
)

// Marshal renders triples as an RDF/XML document. Subjects must be IRIs
// or blank nodes; blank nodes are encoded with rdf:nodeID.
func Marshal(ts []rdf.Triple) (string, error) {
	var b strings.Builder
	if err := Write(&b, ts); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Write serializes triples as RDF/XML to w.
func Write(w io.Writer, ts []rdf.Triple) error {
	sorted := make([]rdf.Triple, len(ts))
	copy(sorted, ts)
	rdf.SortTriples(sorted)
	sorted = rdf.DedupTriples(sorted)

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "<rdf:RDF xmlns:rdf=%q>\n", rdf.RDFNS); err != nil {
		return err
	}
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].S == sorted[i].S {
			j++
		}
		if err := writeDescription(w, sorted[i:j]); err != nil {
			return err
		}
		i = j
	}
	_, err := io.WriteString(w, "</rdf:RDF>\n")
	return err
}

func writeDescription(w io.Writer, group []rdf.Triple) error {
	s := group[0].S
	switch s.Kind {
	case rdf.IRIKind:
		if _, err := fmt.Fprintf(w, "  <rdf:Description rdf:about=%q>\n", s.Value); err != nil {
			return err
		}
	case rdf.BlankKind:
		if _, err := fmt.Fprintf(w, "  <rdf:Description rdf:nodeID=%q>\n", s.Value); err != nil {
			return err
		}
	default:
		return fmt.Errorf("rdfxml: literal subject %s", s)
	}
	for _, t := range group {
		if !t.P.IsIRI() {
			return fmt.Errorf("rdfxml: non-IRI predicate %s", t.P)
		}
		ns, local := rdf.Namespace(t.P.Value), rdf.LocalName(t.P.Value)
		if ns == "" || local == "" {
			return fmt.Errorf("rdfxml: predicate %q is not splittable into namespace and local name", t.P.Value)
		}
		switch t.O.Kind {
		case rdf.IRIKind:
			if _, err := fmt.Fprintf(w, "    <p:%s xmlns:p=%q rdf:resource=%q/>\n", local, ns, t.O.Value); err != nil {
				return err
			}
		case rdf.BlankKind:
			if _, err := fmt.Fprintf(w, "    <p:%s xmlns:p=%q rdf:nodeID=%q/>\n", local, ns, t.O.Value); err != nil {
				return err
			}
		case rdf.LiteralKind:
			attrs := ""
			if t.O.Datatype != "" {
				attrs = fmt.Sprintf(" rdf:datatype=%q", t.O.Datatype)
			} else if t.O.Lang != "" {
				attrs = fmt.Sprintf(" xml:lang=%q", t.O.Lang)
			}
			var esc strings.Builder
			if err := xml.EscapeText(&esc, []byte(t.O.Value)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "    <p:%s xmlns:p=%q%s>%s</p:%s>\n", local, ns, attrs, esc.String(), local); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "  </rdf:Description>\n")
	return err
}

// Unmarshal parses an RDF/XML document in the striped subset produced by
// Marshal.
func Unmarshal(doc string) ([]rdf.Triple, error) {
	return Read(strings.NewReader(doc))
}

// Read parses RDF/XML from r.
func Read(r io.Reader) ([]rdf.Triple, error) {
	dec := xml.NewDecoder(r)
	var out []rdf.Triple
	var subject rdf.Term
	sawRoot := false
	depth := 0
	var propName xml.Name
	var propAttrs []xml.Attr
	var charData strings.Builder
	inProp := false

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("rdfxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			switch depth {
			case 1:
				if t.Name.Local != "RDF" {
					return nil, fmt.Errorf("rdfxml: unexpected root element %s", t.Name.Local)
				}
				sawRoot = true
			case 2:
				subject = rdf.Term{}
				for _, a := range t.Attr {
					if isRDFAttr(a.Name, "about") {
						subject = rdf.IRI(a.Value)
					} else if isRDFAttr(a.Name, "nodeID") {
						subject = rdf.Blank(a.Value)
					}
				}
				if subject.IsZero() {
					return nil, fmt.Errorf("rdfxml: rdf:Description without rdf:about or rdf:nodeID")
				}
			case 3:
				propName = t.Name
				propAttrs = t.Attr
				charData.Reset()
				inProp = true
			default:
				return nil, fmt.Errorf("rdfxml: nesting deeper than the striped subset allows")
			}
		case xml.CharData:
			if inProp {
				charData.Write(t)
			}
		case xml.EndElement:
			if depth == 3 && inProp {
				pred := rdf.IRI(joinName(propName))
				obj, err := objectFromProp(propAttrs, charData.String())
				if err != nil {
					return nil, err
				}
				out = append(out, rdf.Triple{S: subject, P: pred, O: obj})
				inProp = false
			}
			depth--
		}
	}
	if !sawRoot {
		return nil, fmt.Errorf("rdfxml: no rdf:RDF root element found")
	}
	return out, nil
}

func isRDFAttr(n xml.Name, local string) bool {
	ns := strings.TrimSuffix(rdf.RDFNS, "#")
	return (n.Space == ns || n.Space == rdf.RDFNS) && n.Local == local
}

func joinName(n xml.Name) string {
	space := n.Space
	if space != "" && !strings.HasSuffix(space, "#") && !strings.HasSuffix(space, "/") {
		// encoding/xml strips the trailing '#' of namespace URIs that end
		// in it only when the document declared them without; re-add a '#'
		// to recover the conventional RDF namespace form.
		space += "#"
	}
	return space + n.Local
}

func objectFromProp(attrs []xml.Attr, text string) (rdf.Term, error) {
	var datatype, lang string
	for _, a := range attrs {
		switch {
		case isRDFAttr(a.Name, "resource"):
			return rdf.IRI(a.Value), nil
		case isRDFAttr(a.Name, "nodeID"):
			return rdf.Blank(a.Value), nil
		case isRDFAttr(a.Name, "datatype"):
			datatype = a.Value
		case (a.Name.Space == "xml" || a.Name.Space == "http://www.w3.org/XML/1998/namespace") && a.Name.Local == "lang":
			lang = a.Value
		}
	}
	switch {
	case datatype != "":
		return rdf.TypedLiteral(text, datatype), nil
	case lang != "":
		return rdf.LangLiteral(text, lang), nil
	default:
		return rdf.Literal(text), nil
	}
}

// Prefixes returns the sorted distinct namespaces used by the triples;
// exposed for diagnostic reports about incoming documents.
func Prefixes(ts []rdf.Triple) []string {
	set := map[string]bool{}
	for _, t := range ts {
		if t.P.IsIRI() {
			set[rdf.Namespace(t.P.Value)] = true
		}
	}
	out := make([]string, 0, len(set))
	for ns := range set {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}
