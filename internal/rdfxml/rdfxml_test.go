package rdfxml

import (
	"strings"
	"testing"

	"mdw/internal/rdf"
)

func sample() []rdf.Triple {
	return []rdf.Triple{
		rdf.T(rdf.IRI(rdf.InstNS+"customer_id"), rdf.Type, rdf.IRI(rdf.DMNS+"Application1_View_Column")),
		rdf.T(rdf.IRI(rdf.InstNS+"customer_id"), rdf.HasName, rdf.Literal("customer_id")),
		rdf.T(rdf.IRI(rdf.InstNS+"customer_id"), rdf.IRI(rdf.DMNS+"length"), rdf.TypedLiteral("10", rdf.XSDInteger)),
		rdf.T(rdf.IRI(rdf.InstNS+"partner_id"), rdf.IRI(rdf.RDFSComment), rdf.LangLiteral("Partneridentifikation", "de")),
		rdf.T(rdf.Blank("n1"), rdf.Label, rdf.Literal("blank subject")),
		rdf.T(rdf.IRI(rdf.InstNS+"x"), rdf.IRI(rdf.DMNS+"ref"), rdf.Blank("n1")),
	}
}

func TestRoundTrip(t *testing.T) {
	ts := sample()
	doc, err := Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(doc)
	if err != nil {
		t.Fatalf("Unmarshal: %v\ndoc:\n%s", err, doc)
	}
	rdf.SortTriples(ts)
	rdf.SortTriples(got)
	got = rdf.DedupTriples(got)
	if len(got) != len(ts) {
		t.Fatalf("got %d triples, want %d\ndoc:\n%s", len(got), len(ts), doc)
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Errorf("triple %d:\n got %v\nwant %v", i, got[i], ts[i])
		}
	}
}

func TestMarshalEscapesText(t *testing.T) {
	ts := []rdf.Triple{
		rdf.T(rdf.IRI("http://a/s"), rdf.IRI("http://a/p"), rdf.Literal("a < b & c")),
	}
	doc, err := Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(doc, "a < b & c") {
		t.Errorf("unescaped text in XML:\n%s", doc)
	}
	got, err := Unmarshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].O.Value != "a < b & c" {
		t.Errorf("round trip = %v", got)
	}
}

func TestMarshalRejectsLiteralSubject(t *testing.T) {
	ts := []rdf.Triple{rdf.T(rdf.Literal("bad"), rdf.IRI("http://a/p"), rdf.Literal("v"))}
	if _, err := Marshal(ts); err == nil {
		t.Error("expected error for literal subject")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		`not xml at all`,
		`<rdf:RDF xmlns:rdf="` + rdf.RDFNS + `"><rdf:Description/></rdf:RDF>`, // no rdf:about
	}
	for _, doc := range bad {
		if _, err := Unmarshal(doc); err == nil {
			t.Errorf("expected error for %q", doc)
		}
	}
}

func TestPrefixes(t *testing.T) {
	ps := Prefixes(sample())
	if len(ps) == 0 {
		t.Fatal("no prefixes")
	}
	foundDM := false
	for _, p := range ps {
		if p == rdf.DMNS {
			foundDM = true
		}
	}
	if !foundDM {
		t.Errorf("dm namespace missing from %v", ps)
	}
}
