// Package durable is the persistence layer of the warehouse store: a
// write-ahead log of every committed mutation, compact binary snapshots
// of the whole store, background checkpointing, and crash recovery.
//
// The paper's warehouse sits on a durable Oracle substrate — loads
// survive failures and the historized release chain (Section III) is
// persistent. This package gives the in-memory store the same property:
// a Manager attaches to the store's commit hook, appends a
// length-prefixed CRC32-checksummed binary record for every mutation to
// a segmented log, periodically spills a consistent binary snapshot, and
// on restart rebuilds the exact pre-crash state from the latest valid
// snapshot plus the log tail.
package durable

import (
	"encoding/binary"
	"fmt"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// Record is one decoded WAL record: a committed store mutation stamped
// with its log sequence number. Triples are carried as full terms, not
// dictionary IDs, so replay does not depend on reconstructing the
// dictionary in the same order.
type Record struct {
	LSN     uint64
	Op      store.Op
	Model   string
	Src     string // OpClone source
	Gen     uint64 // model generation after the mutation
	Basis   uint64 // OpInstall derivation basis
	Triples []rdf.Triple
}

// Term kind tags in the binary encoding. Literal sub-kinds are split out
// so plain literals cost a single tag byte.
const (
	tagIRI = iota
	tagBlank
	tagLiteral
	tagTypedLiteral
	tagLangLiteral
)

// maxRecordBytes bounds a record frame's declared payload length. A
// length field beyond it is unconditionally invalid (the biggest real
// records — full index-model installs — stay far below).
const maxRecordBytes = 1 << 30

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendTerm(b []byte, t rdf.Term) []byte {
	switch t.Kind {
	case rdf.IRIKind:
		b = append(b, tagIRI)
		return appendString(b, t.Value)
	case rdf.BlankKind:
		b = append(b, tagBlank)
		return appendString(b, t.Value)
	default: // literal
		switch {
		case t.Lang != "":
			b = append(b, tagLangLiteral)
			b = appendString(b, t.Value)
			return appendString(b, t.Lang)
		case t.Datatype != "":
			b = append(b, tagTypedLiteral)
			b = appendString(b, t.Value)
			return appendString(b, t.Datatype)
		default:
			b = append(b, tagLiteral)
			return appendString(b, t.Value)
		}
	}
}

// appendPayload serializes rec (everything inside a frame, excluding the
// length/CRC header) onto b.
func appendPayload(b []byte, rec *Record) []byte {
	b = appendU64(b, rec.LSN)
	b = append(b, byte(rec.Op))
	b = appendString(b, rec.Model)
	switch rec.Op {
	case store.OpAdd, store.OpRemove:
		b = appendU64(b, rec.Gen)
		b = appendUvarint(b, uint64(len(rec.Triples)))
		for _, t := range rec.Triples {
			b = appendTerm(b, t.S)
			b = appendTerm(b, t.P)
			b = appendTerm(b, t.O)
		}
	case store.OpDrop:
	case store.OpClone:
		b = appendString(b, rec.Src)
		b = appendU64(b, rec.Gen)
	case store.OpInstall:
		b = appendU64(b, rec.Gen)
		b = appendU64(b, rec.Basis)
		b = appendUvarint(b, uint64(len(rec.Triples)))
		for _, t := range rec.Triples {
			b = appendTerm(b, t.S)
			b = appendTerm(b, t.P)
			b = appendTerm(b, t.O)
		}
	}
	return b
}

// cursor decodes from a byte slice, tracking the offset for error
// reporting. Every read is bounds-checked; a failed read poisons the
// cursor so callers can check once at the end of a decode group.
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("byte %d: %s", c.off, fmt.Sprintf(format, args...))
	}
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.remaining() < 8 {
		c.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v
}

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.remaining() < 1 {
		c.fail("truncated byte")
		return 0
	}
	v := c.data[c.off]
	c.off++
	return v
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.fail("bad uvarint")
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) string() string {
	if c.err != nil {
		return ""
	}
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > uint64(c.remaining()) {
		c.fail("string length %d exceeds %d remaining bytes", n, c.remaining())
		return ""
	}
	s := string(c.data[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

func (c *cursor) term() rdf.Term {
	tag := c.byte()
	if c.err != nil {
		return rdf.Term{}
	}
	switch tag {
	case tagIRI:
		return rdf.IRI(c.string())
	case tagBlank:
		return rdf.Blank(c.string())
	case tagLiteral:
		return rdf.Literal(c.string())
	case tagTypedLiteral:
		v := c.string()
		return rdf.TypedLiteral(v, c.string())
	case tagLangLiteral:
		v := c.string()
		return rdf.LangLiteral(v, c.string())
	default:
		c.fail("unknown term tag %d", tag)
		return rdf.Term{}
	}
}

func (c *cursor) triples() []rdf.Triple {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	// Each triple costs at least 6 bytes (three one-byte tags plus three
	// zero-length strings), so a count beyond remaining/6 is structurally
	// impossible — reject it before allocating.
	if n > uint64(c.remaining())/6+1 {
		c.fail("triple count %d exceeds remaining bytes", n)
		return nil
	}
	out := make([]rdf.Triple, 0, n)
	for i := uint64(0); i < n; i++ {
		s := c.term()
		p := c.term()
		o := c.term()
		if c.err != nil {
			return nil
		}
		out = append(out, rdf.Triple{S: s, P: p, O: o})
	}
	return out
}

// DecodePayload decodes one record payload (the frame contents after the
// length/CRC header). Exported for the fuzzer.
func DecodePayload(data []byte) (*Record, error) {
	c := &cursor{data: data}
	rec := &Record{}
	rec.LSN = c.u64()
	if c.err == nil && rec.LSN == 0 {
		c.fail("LSN 0 is invalid (LSNs start at 1)")
	}
	rec.Op = store.Op(c.byte())
	rec.Model = c.string()
	switch rec.Op {
	case store.OpAdd, store.OpRemove:
		rec.Gen = c.u64()
		rec.Triples = c.triples()
	case store.OpDrop:
	case store.OpClone:
		rec.Src = c.string()
		rec.Gen = c.u64()
	case store.OpInstall:
		rec.Gen = c.u64()
		rec.Basis = c.u64()
		rec.Triples = c.triples()
	default:
		if c.err == nil {
			c.fail("unknown op %d", rec.Op)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("byte %d: %d trailing bytes after record", c.off, c.remaining())
	}
	return rec, nil
}
