package durable_test

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"mdw/internal/durable"
	"mdw/internal/rdf"
	"mdw/internal/store"
)

// realWALPayloads produces genuine encoded record payloads by running
// mutations through a live manager and slicing the frames back out of
// the segment file.
func realWALPayloads(f *testing.F) [][]byte {
	f.Helper()
	dir := f.TempDir()
	mgr, st, err := durable.Open(durable.Options{Dir: dir, Fsync: durable.FsyncNone})
	if err != nil {
		f.Fatal(err)
	}
	st.Add("m", rdf.T(rdf.IRI("http://a"), rdf.IRI("http://p"), rdf.IRI("http://b")))
	st.AddAll("m", []rdf.Triple{
		rdf.T(rdf.Blank("bn"), rdf.IRI("http://p"), rdf.Literal("plain")),
		rdf.T(rdf.IRI("http://a"), rdf.IRI("http://p"), rdf.LangLiteral("hi", "en")),
		rdf.T(rdf.IRI("http://a"), rdf.IRI("http://q"), rdf.TypedLiteral("1", rdf.XSDInteger)),
	})
	st.Remove("m", rdf.T(rdf.IRI("http://a"), rdf.IRI("http://p"), rdf.IRI("http://b")))
	st.CloneModel("m", "m2")
	st.DropModel("m2")
	mgr.Close()

	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) == 0 {
		f.Fatalf("no WAL segment written: %v", err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		f.Fatal(err)
	}
	var payloads [][]byte
	for off := 16; off+8 <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+8+n > len(data) {
			break
		}
		payloads = append(payloads, data[off+8:off+8+n])
		off += 8 + n
	}
	if len(payloads) == 0 {
		f.Fatal("no frames extracted from the WAL segment")
	}
	return payloads
}

// FuzzWALRecord asserts DecodePayload never panics and never accepts a
// payload with trailing or structurally invalid bytes.
func FuzzWALRecord(f *testing.F) {
	for _, p := range realWALPayloads(f) {
		f.Add(p)
		// Seed common damage shapes too: truncation and bit flips.
		if len(p) > 2 {
			f.Add(p[:len(p)/2])
			bad := append([]byte(nil), p...)
			bad[len(bad)-1] ^= 0x80
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := durable.DecodePayload(data)
		if err != nil {
			return
		}
		if rec.LSN == 0 {
			t.Fatalf("accepted record with LSN 0 from % x", data)
		}
		if rec.Op.String() == "" {
			t.Fatalf("accepted record with unnamed op %d", rec.Op)
		}
	})
}

// FuzzSnapshot asserts DecodeSnapshot never panics, and that everything
// it accepts can be installed into a fresh store without a count
// mismatch — i.e. validation is strong enough that loading cannot fail
// on structural grounds.
func FuzzSnapshot(f *testing.F) {
	src := store.New()
	src.Add("m", rdf.T(rdf.IRI("http://a"), rdf.IRI("http://p"), rdf.IRI("http://b")))
	src.Add("m", rdf.T(rdf.IRI("http://a"), rdf.IRI("http://p"), rdf.Literal("x")))
	src.Add("n", rdf.T(rdf.Blank("b"), rdf.IRI("http://p"), rdf.LangLiteral("y", "de")))
	states, terms := src.CaptureState(nil)
	dir := f.TempDir()
	path, _, err := durable.WriteSnapshot(dir, 7, states, terms)
	if err != nil {
		f.Fatal(err)
	}
	real, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)
	f.Add(real[:len(real)/2])
	bad := append([]byte(nil), real...)
	bad[len(bad)/3] ^= 0x01
	f.Add(bad)
	f.Add([]byte("MDWSNAP1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := durable.DecodeSnapshot(data)
		if err != nil {
			return
		}
		st := store.New()
		if err := durable.LoadSnapshot(st, snap); err != nil {
			t.Fatalf("validated snapshot failed to load: %v", err)
		}
		for _, ms := range snap.Models {
			if st.Len(ms.Name) != len(ms.Triples) {
				t.Fatalf("model %q: loaded %d triples, snapshot declared %d", ms.Name, st.Len(ms.Name), len(ms.Triples))
			}
		}
	})
}
