package durable_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdw/internal/durable"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/store"
)

// fingerprint renders the complete observable state of a store — model
// names, generations, bases, and every triple in canonical order — as
// one string, so two stores can be compared for exact equality.
func fingerprint(st *store.Store) string {
	var b strings.Builder
	names := st.ModelNames()
	st.ReadView(func(_ *store.View, infos []store.ModelInfo) {
		for _, in := range infos {
			fmt.Fprintf(&b, "@model %s gen=%d basis=%d n=%d\n", in.Name, in.Gen, in.Basis, in.Triples)
		}
	}, names...)
	for _, name := range names {
		for _, t := range st.Triples(name) {
			b.WriteString(name)
			b.WriteByte('|')
			b.WriteString(t.NTriple())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func openTest(t *testing.T, dir string, mod func(*durable.Options)) (*durable.Manager, *store.Store) {
	t.Helper()
	opts := durable.Options{Dir: dir, Fsync: durable.FsyncNone, Logf: t.Logf}
	if mod != nil {
		mod(&opts)
	}
	mgr, st, err := durable.Open(opts)
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	return mgr, st
}

func iri(n string) rdf.Term { return rdf.IRI("http://example.com/" + n) }

// scriptedMutations drives every logged mutation kind through the store.
func scriptedMutations(t *testing.T, st *store.Store) {
	t.Helper()
	if !st.Add("m1", rdf.T(iri("a"), iri("p"), iri("b"))) {
		t.Fatal("Add returned false")
	}
	st.AddAll("m1", []rdf.Triple{
		rdf.T(iri("b"), iri("p"), iri("c")),
		rdf.T(iri("c"), iri("p"), rdf.Literal("lit with \"quotes\" and\nnewline")),
		rdf.T(iri("c"), iri("q"), rdf.LangLiteral("grüezi", "de-CH")),
		rdf.T(iri("c"), iri("q"), rdf.TypedLiteral("42", rdf.XSDInteger)),
		rdf.T(iri("a"), iri("p"), iri("b")), // duplicate: must not be logged
	})
	st.Add("m2", rdf.T(rdf.Blank("bn1"), iri("p"), rdf.Literal("")))
	if !st.Remove("m1", rdf.T(iri("b"), iri("p"), iri("c"))) {
		t.Fatal("Remove returned false")
	}
	if err := st.CloneModel("m1", "m1_clone"); err != nil {
		t.Fatalf("CloneModel: %v", err)
	}
	st.Add("m3", rdf.T(iri("x"), iri("p"), iri("y")))
	if !st.DropModel("m3") {
		t.Fatal("DropModel returned false")
	}
	// InstallModel via the real reasoner path (what reason.Materialize
	// does after every staging load).
	st.AddAll("m1", []rdf.Triple{
		rdf.T(iri("Sub"), rdf.IRI(rdf.RDFSSubClassOf), iri("Super")),
		rdf.T(iri("inst"), rdf.Type, iri("Sub")),
	})
	if _, _, err := reason.NewEngine(st).Materialize("m1"); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
}

func TestLogAndReopenRestoresExactState(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, nil)
	scriptedMutations(t, st)
	want := fingerprint(st)
	if err := mgr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	mgr2, st2 := openTest(t, dir, nil)
	defer mgr2.Close()
	if got := fingerprint(st2); got != want {
		t.Errorf("state after WAL-only recovery diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	rec := mgr2.Recovery()
	if rec.SnapshotPath != "" {
		t.Errorf("unexpected snapshot used: %q", rec.SnapshotPath)
	}
	if rec.ReplayedRecords == 0 {
		t.Error("no records replayed")
	}
	// The index model must still be current w.r.t. its base after
	// recovery — otherwise every restart would re-run entailment.
	idx := reason.IndexModelName("m1", reason.RulebaseOWLPrime)
	if !st2.Current("m1", idx) {
		t.Error("entailment index not current after recovery")
	}
}

func TestCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, nil)
	scriptedMutations(t, st)
	cp, err := mgr.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if cp.Bytes <= 0 || cp.Models == 0 || cp.Triples == 0 {
		t.Errorf("implausible checkpoint stats: %+v", cp)
	}
	if cp.LSN != mgr.LastLSN() {
		t.Errorf("checkpoint LSN %d != last LSN %d (no concurrent writers)", cp.LSN, mgr.LastLSN())
	}
	// Post-checkpoint writes land in the WAL tail.
	st.Add("m1", rdf.T(iri("post"), iri("p"), iri("checkpoint")))
	want := fingerprint(st)
	if err := mgr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	mgr2, st2 := openTest(t, dir, nil)
	defer mgr2.Close()
	if got := fingerprint(st2); got != want {
		t.Errorf("state after snapshot+tail recovery diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	rec := mgr2.Recovery()
	if rec.SnapshotPath == "" {
		t.Error("recovery did not use the snapshot")
	}
	if rec.SnapshotLSN != cp.LSN {
		t.Errorf("recovered from snapshot LSN %d, want %d", rec.SnapshotLSN, cp.LSN)
	}
	if rec.ReplayedRecords != 1 {
		t.Errorf("replayed %d records, want exactly the 1 post-checkpoint add", rec.ReplayedRecords)
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	mgr, st := openTest(t, dir, func(o *durable.Options) { o.SegmentBytes = 256 })
	for i := 0; i < 50; i++ {
		st.Add("m", rdf.T(iri(fmt.Sprintf("s%d", i)), iri("p"), iri(fmt.Sprintf("o%d", i))))
	}
	before := countFiles(t, dir, "wal-")
	if before < 3 {
		t.Fatalf("expected several segments before checkpoint, got %d", before)
	}
	cp, err := mgr.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if cp.SegmentsRemoved == 0 {
		t.Error("checkpoint removed no segments")
	}
	after := countFiles(t, dir, "wal-")
	if after != 1 {
		t.Errorf("%d segments left after checkpoint, want 1 (the fresh active one)", after)
	}
	want := fingerprint(st)
	mgr.Close()
	mgr2, st2 := openTest(t, dir, nil)
	defer mgr2.Close()
	if got := fingerprint(st2); got != want {
		t.Error("state diverged after checkpoint truncation + reopen")
	}
}

func TestSnapshotRetention(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, func(o *durable.Options) { o.KeepSnapshots = 1 })
	for i := 0; i < 4; i++ {
		st.Add("m", rdf.T(iri(fmt.Sprintf("s%d", i)), iri("p"), iri("o")))
		if _, err := mgr.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	defer mgr.Close()
	if n := countFiles(t, dir, "snap-"); n != 2 {
		t.Errorf("%d snapshots retained, want 2 (newest + 1 kept)", n)
	}
}

// TestRecoveryPrefersNewestValidSnapshot corrupts the newest snapshot and
// expects recovery to fall back to the previous one plus a longer WAL
// replay — never to fail outright.
func TestRecoveryPrefersNewestValidSnapshot(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, func(o *durable.Options) { o.KeepSnapshots = 2 })
	st.Add("m", rdf.T(iri("a"), iri("p"), iri("b")))
	if _, err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Add("m", rdf.T(iri("c"), iri("p"), iri("d")))
	cp2, err := mgr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(st)
	mgr.Close()

	// Flip a byte in the newest snapshot's body.
	data, err := os.ReadFile(cp2.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(cp2.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	mgr2, st2 := openTest(t, dir, nil)
	defer mgr2.Close()
	rec := mgr2.Recovery()
	if rec.SkippedSnapshots != 1 {
		t.Errorf("skipped %d snapshots, want 1", rec.SkippedSnapshots)
	}
	if got := fingerprint(st2); got != want {
		t.Error("state diverged after falling back to older snapshot")
	}
}

func TestFreshDirIsEmptyStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	mgr, st := openTest(t, dir, nil)
	defer mgr.Close()
	if names := st.ModelNames(); len(names) != 0 {
		t.Errorf("fresh store has models %v", names)
	}
	if mgr.LastLSN() != 0 {
		t.Errorf("fresh LastLSN = %d", mgr.LastLSN())
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []durable.FsyncPolicy{durable.FsyncAlways, durable.FsyncInterval, durable.FsyncNone} {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			mgr, st := openTest(t, dir, func(o *durable.Options) {
				o.Fsync = pol
				o.FsyncInterval = time.Millisecond
			})
			st.Add("m", rdf.T(iri("a"), iri("p"), iri("b")))
			want := fingerprint(st)
			if err := mgr.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			mgr.Close()
			mgr2, st2 := openTest(t, dir, nil)
			defer mgr2.Close()
			if fingerprint(st2) != want {
				t.Error("state diverged")
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	if _, err := durable.ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
	if p, err := durable.ParseFsyncPolicy("Always"); err != nil || p != durable.FsyncAlways {
		t.Errorf("Always: %v %v", p, err)
	}
}

func countFiles(t *testing.T, dir, prefix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			n++
		}
	}
	return n
}

// TestCloneReplayParity: OpClone records the clone's freshly salted
// generation, and replay reinstates exactly that generation — even after
// source and clone diverged, the first clone was dropped, and a second
// clone took a higher salt. The fingerprint comparison covers gens and
// bases, so any aliasing or salt reuse after recovery shows up here.
func TestCloneReplayParity(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, nil)
	st.AddAll("src", []rdf.Triple{
		rdf.T(iri("a"), iri("p"), iri("b")),
		rdf.T(iri("b"), iri("p"), iri("c")),
	})
	if err := st.CloneModel("src", "work"); err != nil {
		t.Fatalf("CloneModel: %v", err)
	}
	// Diverge both sides of the copy-on-write pair.
	st.Add("src", rdf.T(iri("a"), iri("q"), iri("z")))
	if !st.Remove("work", rdf.T(iri("a"), iri("p"), iri("b"))) {
		t.Fatal("Remove on clone returned false")
	}
	// Drop the clone and clone again: the second clone must take a
	// higher salt even though the first is gone, and replay has to
	// land on the same generation sequence.
	if !st.DropModel("work") {
		t.Fatal("DropModel returned false")
	}
	if err := st.CloneModel("src", "work2"); err != nil {
		t.Fatalf("second CloneModel: %v", err)
	}
	st.Add("work2", rdf.T(iri("w2"), iri("p"), iri("only")))
	if st.Generation("work2") == st.Generation("src") {
		t.Fatal("clone generation aliases its source before recovery")
	}
	want := fingerprint(st)
	if err := mgr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// WAL-only replay.
	mgr2, st2 := openTest(t, dir, nil)
	if got := fingerprint(st2); got != want {
		t.Errorf("clone state diverged after WAL replay:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	// Snapshot-covering-clone path: checkpoint, reopen, compare again.
	if _, err := mgr2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := mgr2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	mgr3, st3 := openTest(t, dir, nil)
	defer mgr3.Close()
	if mgr3.Recovery().SnapshotPath == "" {
		t.Error("third open did not recover from the snapshot")
	}
	if got := fingerprint(st3); got != want {
		t.Errorf("clone state diverged after snapshot recovery:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	// Fresh clones after recovery keep allocating unique generations.
	if err := st3.CloneModel("src", "work3"); err != nil {
		t.Fatalf("post-recovery CloneModel: %v", err)
	}
	gens := map[uint64]bool{}
	for _, m := range []string{"src", "work2", "work3"} {
		g := st3.Generation(m)
		if gens[g] {
			t.Errorf("generation %d reused across models after recovery", g)
		}
		gens[g] = true
	}
}
