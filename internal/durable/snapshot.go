package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// Snapshot on-disk layout (snap-<lsn%016x>.snap):
//
//	8-byte magic "MDWSNAP1"
//	u64 LSN — the last WAL record the snapshot covers
//	dictionary block: uvarint term count, then each term (ID order)
//	uvarint model count, then per model:
//	    name, u64 gen, u64 basis, uvarint triple count,
//	    delta-encoded sorted ID triples
//	u32 CRC32-IEEE of every preceding byte
//	8-byte tail magic "MDWSNAPF"
//
// Triples are sorted ascending by (S, P, O) and encoded as deltas: a
// zero subject delta means "same subject as the previous triple" (then
// the predicate is delta-encoded the same way), so dense subject runs
// cost one or two bytes per triple. Compared to the N-Triples text dump,
// which repeats every term lexically on every line, the snapshot stores
// each term once and each triple as a few varint bytes — orders of
// magnitude denser and with no parsing on the way back in.
const (
	snapMagic     = "MDWSNAP1"
	snapTailMagic = "MDWSNAPF"
)

func snapshotName(lsn uint64) string {
	return fmt.Sprintf("snap-%016x.snap", lsn)
}

func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Snapshot is a decoded store image.
type Snapshot struct {
	LSN    uint64
	Terms  []rdf.Term // Terms[i] is the term with dictionary ID i+1
	Models []store.ModelState
}

// snapWriter streams bytes to a buffered file while maintaining the
// running checksum. The first write error sticks.
type snapWriter struct {
	bw  *bufio.Writer
	crc uint32
	err error
	buf []byte
}

func (w *snapWriter) write(p []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, p)
	_, w.err = w.bw.Write(p)
}

func (w *snapWriter) scratch() []byte { return w.buf[:0] }

// EncodeSnapshot writes the snapshot body (everything incl. checksum and
// tail magic) to w.
func encodeSnapshot(w *snapWriter, lsn uint64, states []store.ModelState, terms []rdf.Term) {
	w.write([]byte(snapMagic))
	w.write(appendU64(w.scratch(), lsn))
	w.write(appendUvarint(w.scratch(), uint64(len(terms))))
	for _, t := range terms {
		w.buf = appendTerm(w.scratch(), t)
		w.write(w.buf)
	}
	w.write(appendUvarint(w.scratch(), uint64(len(states))))
	for _, ms := range states {
		b := appendString(w.scratch(), ms.Name)
		b = appendU64(b, ms.Gen)
		b = appendU64(b, ms.Basis)
		b = appendUvarint(b, uint64(len(ms.Triples)))
		w.buf = b
		w.write(w.buf)
		var prev store.ETriple
		for _, t := range ms.Triples {
			b := w.scratch()
			switch {
			case t.S != prev.S:
				b = appendUvarint(b, uint64(t.S-prev.S))
				b = appendUvarint(b, uint64(t.P))
				b = appendUvarint(b, uint64(t.O))
			case t.P != prev.P:
				b = append(b, 0)
				b = appendUvarint(b, uint64(t.P-prev.P))
				b = appendUvarint(b, uint64(t.O))
			default:
				b = append(b, 0, 0)
				b = appendUvarint(b, uint64(t.O-prev.O))
			}
			w.buf = b
			w.write(w.buf)
			prev = t
		}
	}
	crc := w.crc // capture before the trailer writes update it
	w.write(binary.LittleEndian.AppendUint32(w.scratch(), crc))
	w.write([]byte(snapTailMagic))
}

// WriteSnapshot atomically writes a snapshot file covering WAL position
// lsn: the image is written to a temp file in the same directory, synced,
// and renamed into place, so a crash mid-write can never damage or
// shadow an existing snapshot. It returns the final path and file size.
func WriteSnapshot(dir string, lsn uint64, states []store.ModelState, terms []rdf.Term) (string, int64, error) {
	f, err := os.CreateTemp(dir, ".snap-tmp-*")
	if err != nil {
		return "", 0, err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := &snapWriter{bw: bufio.NewWriterSize(f, 1<<16), buf: make([]byte, 0, 256)}
	encodeSnapshot(w, lsn, states, terms)
	if w.err != nil {
		return "", 0, w.err
	}
	if err := w.bw.Flush(); err != nil {
		return "", 0, err
	}
	if err := f.Sync(); err != nil {
		return "", 0, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		return "", 0, err
	}
	path := filepath.Join(dir, snapshotName(lsn))
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		tmp = ""
		return "", 0, err
	}
	tmp = "" // renamed away; nothing to clean up
	if err := syncDir(dir); err != nil {
		return "", 0, err
	}
	return path, size, nil
}

// DecodeSnapshot parses and fully validates a snapshot image: tail
// magic, footer checksum, structural bounds, and strict triple ordering.
// Exported for the fuzzer.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+8+4+len(snapTailMagic) {
		return nil, fmt.Errorf("durable: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("durable: not a snapshot (bad magic)")
	}
	if string(data[len(data)-len(snapTailMagic):]) != snapTailMagic {
		return nil, fmt.Errorf("durable: snapshot truncated (missing tail magic)")
	}
	body := data[:len(data)-len(snapTailMagic)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(body):])
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, fmt.Errorf("durable: snapshot checksum mismatch (%08x != %08x)", got, wantCRC)
	}
	c := &cursor{data: body, off: len(snapMagic)}
	snap := &Snapshot{LSN: c.u64()}
	nTerms := c.uvarint()
	if c.err == nil && nTerms > uint64(c.remaining())/2+1 {
		c.fail("term count %d exceeds remaining bytes", nTerms)
	}
	if c.err != nil {
		return nil, c.err
	}
	snap.Terms = make([]rdf.Term, 0, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		t := c.term()
		if c.err != nil {
			return nil, c.err
		}
		snap.Terms = append(snap.Terms, t)
	}
	maxID := uint64(len(snap.Terms))
	nModels := c.uvarint()
	if c.err == nil && nModels > uint64(c.remaining())+1 {
		c.fail("model count %d exceeds remaining bytes", nModels)
	}
	if c.err != nil {
		return nil, c.err
	}
	seen := make(map[string]bool, nModels)
	snap.Models = make([]store.ModelState, 0, nModels)
	for i := uint64(0); i < nModels; i++ {
		ms := store.ModelState{Name: c.string()}
		ms.Gen = c.u64()
		ms.Basis = c.u64()
		nTriples := c.uvarint()
		if c.err != nil {
			return nil, c.err
		}
		if seen[ms.Name] {
			return nil, fmt.Errorf("durable: byte %d: duplicate model %q in snapshot", c.off, ms.Name)
		}
		seen[ms.Name] = true
		if nTriples > uint64(c.remaining())/3+1 {
			c.fail("triple count %d for model %q exceeds remaining bytes", nTriples, ms.Name)
			return nil, c.err
		}
		ms.Triples = make([]store.ETriple, 0, nTriples)
		var prev store.ETriple
		for j := uint64(0); j < nTriples; j++ {
			t, ok := decodeDeltaTriple(c, prev, maxID)
			if !ok {
				return nil, c.err
			}
			ms.Triples = append(ms.Triples, t)
			prev = t
		}
		snap.Models = append(snap.Models, ms)
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("durable: byte %d: %d trailing bytes in snapshot body", c.off, c.remaining())
	}
	return snap, nil
}

// decodeDeltaTriple decodes one delta-encoded triple, enforcing strict
// (S, P, O) ascending order and ID range [1, maxID].
func decodeDeltaTriple(c *cursor, prev store.ETriple, maxID uint64) (store.ETriple, bool) {
	checkID := func(v uint64, pos string) (store.ID, bool) {
		if v == 0 || v > maxID || v > math.MaxUint32 {
			c.fail("%s ID %d out of dictionary range [1, %d]", pos, v, maxID)
			return 0, false
		}
		return store.ID(v), true
	}
	dS := c.uvarint()
	if c.err != nil {
		return store.ETriple{}, false
	}
	var t store.ETriple
	switch {
	case dS != 0:
		s, ok := checkID(uint64(prev.S)+dS, "subject")
		if !ok {
			return store.ETriple{}, false
		}
		p, ok := checkID(c.uvarint(), "predicate")
		if !ok {
			return store.ETriple{}, false
		}
		o, ok := checkID(c.uvarint(), "object")
		if !ok {
			return store.ETriple{}, false
		}
		t = store.ETriple{S: s, P: p, O: o}
	default:
		dP := c.uvarint()
		if c.err != nil {
			return store.ETriple{}, false
		}
		if dP != 0 {
			p, ok := checkID(uint64(prev.P)+dP, "predicate")
			if !ok {
				return store.ETriple{}, false
			}
			o, ok := checkID(c.uvarint(), "object")
			if !ok {
				return store.ETriple{}, false
			}
			t = store.ETriple{S: prev.S, P: p, O: o}
		} else {
			dO := c.uvarint()
			if c.err != nil {
				return store.ETriple{}, false
			}
			if dO == 0 {
				c.fail("duplicate triple (zero delta)")
				return store.ETriple{}, false
			}
			o, ok := checkID(uint64(prev.O)+dO, "object")
			if !ok {
				return store.ETriple{}, false
			}
			t = store.ETriple{S: prev.S, P: prev.P, O: o}
		}
	}
	// Strict ascending order is a consequence of the encoding itself:
	// every taken delta is non-zero and positive.
	return t, true
}

// ReadSnapshot loads and validates the snapshot at path.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if lsn, ok := parseSnapshotName(filepath.Base(path)); ok && lsn != snap.LSN {
		return nil, fmt.Errorf("%s: snapshot LSN %d disagrees with filename", filepath.Base(path), snap.LSN)
	}
	return snap, nil
}

// listSnapshots returns snapshot filenames in dir sorted by LSN
// ascending.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSnapshotName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, _ := parseSnapshotName(names[i])
		b, _ := parseSnapshotName(names[j])
		return a < b
	})
	return names, nil
}
