package durable

import "mdw/internal/obs"

// Metric handles, resolved once at package init so the append hot path
// pays a single atomic add each.
var (
	obsAppends      = obs.Default().Counter("mdw_wal_appends_total")
	obsWALBytes     = obs.Default().Counter("mdw_wal_bytes_total")
	obsWALErrors    = obs.Default().Counter("mdw_wal_errors_total")
	obsRotations    = obs.Default().Counter("mdw_wal_segment_rotations_total")
	obsFsyncHist    = obs.Default().Histogram("mdw_wal_fsync_seconds", nil)
	obsCheckpoints  = obs.Default().Counter("mdw_checkpoints_total")
	obsCkptHist     = obs.Default().Histogram("mdw_checkpoint_seconds", nil)
	obsCkptBytes    = obs.Default().Gauge("mdw_checkpoint_last_bytes")
	obsCkptDurMs    = obs.Default().Gauge("mdw_checkpoint_last_duration_ms")
	obsCkptLSN      = obs.Default().Gauge("mdw_checkpoint_last_lsn")
	obsReplayed     = obs.Default().Counter("mdw_recovery_replayed_records_total")
	obsReplayedTrip = obs.Default().Counter("mdw_recovery_replayed_triples_total")
	obsTornTails    = obs.Default().Counter("mdw_recovery_torn_tails_total")
	obsBadSnapshots = obs.Default().Counter("mdw_recovery_bad_snapshots_total")
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_wal_appends_total", "Records appended to the write-ahead log.")
	r.SetHelp("mdw_wal_bytes_total", "Bytes appended to the write-ahead log (frames included).")
	r.SetHelp("mdw_wal_errors_total", "WAL append/sync failures; the store keeps running but durability is degraded.")
	r.SetHelp("mdw_wal_segment_rotations_total", "WAL segment rotations (size threshold or checkpoint).")
	r.SetHelp("mdw_wal_fsync_seconds", "Latency of WAL fsync calls, by policy.")
	r.SetHelp("mdw_checkpoints_total", "Completed checkpoints.")
	r.SetHelp("mdw_checkpoint_seconds", "End-to-end checkpoint latency (capture, write, truncate).")
	r.SetHelp("mdw_checkpoint_last_bytes", "Size of the most recent snapshot file.")
	r.SetHelp("mdw_checkpoint_last_duration_ms", "Duration of the most recent checkpoint in milliseconds.")
	r.SetHelp("mdw_checkpoint_last_lsn", "WAL position covered by the most recent checkpoint.")
	r.SetHelp("mdw_recovery_replayed_records_total", "WAL records replayed during recovery.")
	r.SetHelp("mdw_recovery_replayed_triples_total", "Triples re-applied from replayed WAL records.")
	r.SetHelp("mdw_recovery_torn_tails_total", "Torn WAL tails truncated during recovery.")
	r.SetHelp("mdw_recovery_bad_snapshots_total", "Snapshot files that failed validation and were skipped during recovery.")
}
