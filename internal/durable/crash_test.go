package durable_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdw/internal/durable"
	"mdw/internal/rdf"
	"mdw/internal/store"
)

// copyDir clones a data directory so a destructive experiment can run on
// a throwaway copy.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestTruncateAtEveryByte is the crash harness the issue asks for: it
// records a WAL of known mutations, notes the store fingerprint after
// every commit (the oracle), then simulates a crash at EVERY byte offset
// of the log by truncating a copy and recovering. Each recovery must
// either succeed with a state exactly matching some committed prefix, and
// the prefix length must grow monotonically with the truncation point —
// a torn final record never surfaces partial effects.
func TestTruncateAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, nil)

	oracle := []string{fingerprint(st)} // oracle[i] = state after i commits
	commit := func(f func()) {
		f()
		oracle = append(oracle, fingerprint(st))
	}
	commit(func() { st.Add("m", rdf.T(iri("a"), iri("p"), iri("b"))) })
	commit(func() {
		st.AddAll("m", []rdf.Triple{
			rdf.T(iri("b"), iri("p"), iri("c")),
			rdf.T(iri("b"), iri("p"), rdf.Literal("x")),
		})
	})
	commit(func() { st.Add("m2", rdf.T(rdf.Blank("n"), iri("p"), rdf.LangLiteral("hi", "en"))) })
	commit(func() { st.Remove("m", rdf.T(iri("a"), iri("p"), iri("b"))) })
	commit(func() {
		if err := st.CloneModel("m", "m_clone"); err != nil {
			t.Fatal(err)
		}
	})
	commit(func() { st.DropModel("m_clone") })
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	segs := walFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("expected a single WAL segment, got %v", segs)
	}
	walPath := filepath.Join(dir, segs[0])
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	prevPrefix := -1
	for n := 0; n <= len(full); n++ {
		crash := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(crash, segs[0]), full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		rst, stats, err := durable.Recover(crash, nil)
		if n < 16 && err == nil && stats.LastLSN > 0 {
			t.Fatalf("truncate@%d: header missing but records recovered", n)
		}
		if err != nil {
			// A truncated *header* is the only acceptable failure; once the
			// header is intact every prefix must recover.
			if n >= 16 {
				t.Fatalf("truncate@%d: recovery failed: %v", n, err)
			}
			continue
		}
		// States can repeat across the history (e.g. clone then drop), so
		// the recovered LSN identifies which prefix the state must equal.
		prefix := int(stats.LastLSN)
		if prefix >= len(oracle) {
			t.Fatalf("truncate@%d: recovered LSN %d beyond the %d committed records", n, stats.LastLSN, len(oracle)-1)
		}
		if got := fingerprint(rst); got != oracle[prefix] {
			t.Fatalf("truncate@%d: recovered state does not match committed prefix %d:\n--- want ---\n%s--- got ---\n%s", n, prefix, oracle[prefix], got)
		}
		if prefix < prevPrefix {
			t.Fatalf("truncate@%d: recovered prefix %d < previous %d (lost a committed record)", n, prefix, prevPrefix)
		}
		prevPrefix = prefix
	}
	if prevPrefix != len(oracle)-1 {
		t.Errorf("full-length recovery reached prefix %d, want %d", prevPrefix, len(oracle)-1)
	}
}

// TestTornTailTruncatedOnce verifies a torn tail is reported, physically
// truncated, and that a second recovery of the same directory is clean.
func TestTornTailTruncatedOnce(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, nil)
	st.Add("m", rdf.T(iri("a"), iri("p"), iri("b")))
	st.Add("m", rdf.T(iri("c"), iri("p"), iri("d")))
	mgr.Close()

	segs := walFiles(t, dir)
	walPath := filepath.Join(dir, segs[0])
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last 3 bytes: the final record is torn mid-payload.
	if err := os.Truncate(walPath, int64(len(full)-3)); err != nil {
		t.Fatal(err)
	}

	rst, stats, err := durable.Recover(dir, nil)
	if err != nil {
		t.Fatalf("recovery with torn tail failed: %v", err)
	}
	if stats.TornTail == "" {
		t.Error("torn tail not reported")
	}
	if stats.LastLSN != 1 || rst.Len("m") != 1 {
		t.Errorf("LastLSN=%d Len=%d, want 1/1", stats.LastLSN, rst.Len("m"))
	}
	if fi, err := os.Stat(walPath); err != nil || fi.Size() >= int64(len(full)-3) {
		t.Errorf("torn tail not truncated: size %d", fi.Size())
	}

	_, stats2, err := durable.Recover(dir, nil)
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	if stats2.TornTail != "" {
		t.Error("second recovery still reports a torn tail")
	}
}

// TestCrashAfterRotationLeavesEmptySegment reproduces a kill -9 right
// after a checkpoint rotated the WAL: the fresh segment's header still
// sat in the write buffer, so the file on disk is zero bytes. Recovery
// must treat that as a torn creation, not corruption.
func TestCrashAfterRotationLeavesEmptySegment(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, nil)
	st.Add("m", rdf.T(iri("a"), iri("p"), iri("b")))
	if _, err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	segs := walFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 active segment after checkpoint, got %v", segs)
	}
	hdr, err := os.ReadFile(filepath.Join(dir, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the unflushed header: empty the file, and also try a
	// half-written header.
	for _, keep := range []int{0, 7} {
		if err := os.WriteFile(filepath.Join(dir, segs[0]), hdr[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		rst, stats, err := durable.Recover(dir, nil)
		if err != nil {
			t.Fatalf("header truncated to %d bytes: recovery failed: %v", keep, err)
		}
		if stats.TornTail == "" {
			t.Errorf("header truncated to %d bytes: torn tail not reported", keep)
		}
		if rst.Len("m") != 1 {
			t.Errorf("header truncated to %d bytes: lost the checkpointed triple", keep)
		}
		// The stub must be gone so the next Open can recreate it cleanly.
		if _, err := os.Stat(filepath.Join(dir, segs[0])); !os.IsNotExist(err) {
			t.Errorf("header truncated to %d bytes: torn segment stub not removed", keep)
		}
	}
}

// TestMidLogCorruptionIsFatal flips one payload byte of a non-final
// record: valid frames follow, so this is damage, not a crash tail, and
// recovery must refuse rather than silently drop committed records.
func TestMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, nil)
	st.Add("m", rdf.T(iri("a"), iri("p"), iri("b")))
	st.Add("m", rdf.T(iri("c"), iri("p"), iri("d")))
	mgr.Close()

	segs := walFiles(t, dir)
	walPath := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[16+8+4] ^= 0xff // first payload byte of record 1
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := durable.Recover(dir, nil); err == nil {
		t.Fatal("mid-log corruption not detected")
	} else if !strings.Contains(err.Error(), "corruption") {
		t.Errorf("error does not name corruption: %v", err)
	}
}

// TestWALGapIsFatal deletes the oldest segment while no snapshot covers
// it: the LSN discontinuity must be a hard error.
func TestWALGapIsFatal(t *testing.T) {
	dir := t.TempDir()
	mgr, st := openTest(t, dir, func(o *durable.Options) { o.SegmentBytes = 128 })
	for i := 0; i < 20; i++ {
		st.Add("m", rdf.T(iri(fmt.Sprintf("s%d", i)), iri("p"), iri("o")))
	}
	mgr.Close()

	segs := walFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %v", segs)
	}
	if err := os.Remove(filepath.Join(dir, segs[0])); err != nil {
		t.Fatal(err)
	}
	if _, _, err := durable.Recover(dir, nil); err == nil {
		t.Fatal("WAL gap not detected")
	} else if !strings.Contains(err.Error(), "gap") {
		t.Errorf("error does not name the gap: %v", err)
	}
}

// TestSnapshotRoundTripProperty generates random stores, captures them,
// writes and re-reads a snapshot, and requires term-exact equality of the
// reloaded store — triples, generations, and bases alike.
func TestSnapshotRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 25; round++ {
		src := store.New()
		nModels := 1 + rng.Intn(4)
		for mi := 0; mi < nModels; mi++ {
			model := fmt.Sprintf("model_%d", mi)
			n := rng.Intn(200)
			for i := 0; i < n; i++ {
				s := iri(fmt.Sprintf("s%d", rng.Intn(40)))
				p := iri(fmt.Sprintf("p%d", rng.Intn(8)))
				var o rdf.Term
				switch rng.Intn(4) {
				case 0:
					o = iri(fmt.Sprintf("o%d", rng.Intn(40)))
				case 1:
					o = rdf.Literal(fmt.Sprintf("lit %d \n\"", rng.Intn(1000)))
				case 2:
					o = rdf.TypedLiteral(fmt.Sprintf("%d", rng.Intn(1000)), rdf.XSDInteger)
				default:
					o = rdf.Blank(fmt.Sprintf("b%d", rng.Intn(10)))
				}
				src.Add(model, rdf.T(s, p, o))
			}
			// Random extra mutations so generations aren't just the add count.
			for i := 0; i < rng.Intn(5); i++ {
				ts := src.Triples(model)
				if len(ts) > 0 {
					src.Remove(model, ts[rng.Intn(len(ts))])
				}
			}
		}
		states, terms := src.CaptureState(nil)
		dir := t.TempDir()
		lsn := uint64(rng.Intn(1000) + 1)
		path, size, err := durable.WriteSnapshot(dir, lsn, states, terms)
		if err != nil {
			t.Fatalf("round %d: WriteSnapshot: %v", round, err)
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() != size {
			t.Fatalf("round %d: reported size %d, on disk %v", round, size, fi)
		}
		snap, err := durable.ReadSnapshot(path)
		if err != nil {
			t.Fatalf("round %d: ReadSnapshot: %v", round, err)
		}
		if snap.LSN != lsn {
			t.Fatalf("round %d: LSN %d != %d", round, snap.LSN, lsn)
		}
		dst := store.New()
		if err := durable.LoadSnapshot(dst, snap); err != nil {
			t.Fatalf("round %d: LoadSnapshot: %v", round, err)
		}
		if got, want := fingerprint(dst), fingerprint(src); got != want {
			t.Fatalf("round %d: snapshot round trip diverged:\n--- want ---\n%s--- got ---\n%s", round, want, got)
		}
	}
}
