package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WAL on-disk layout: the log is a sequence of segment files named
// wal-<firstLSN%016x>.log. Each segment starts with a 16-byte header
// (8-byte magic + the first LSN as a little-endian u64) followed by
// record frames:
//
//	u32 payload length | u32 CRC32-IEEE(payload) | payload
//
// LSNs are assigned densely starting at 1; a record's payload embeds its
// LSN, so recovery can verify contiguity across segment boundaries.
const (
	segMagic        = "MDWWAL1\n"
	segHeaderSize   = len(segMagic) + 8
	frameHeaderSize = 8
)

func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstLSN)
}

// parseSegmentName extracts the first LSN from a segment filename.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// segmentWriter appends framed records to one open segment file through
// a buffered writer. It is not itself locked; the Manager serializes
// access.
type segmentWriter struct {
	f        *os.File
	bw       *bufio.Writer
	path     string
	firstLSN uint64
	size     int64 // bytes written including header
	dirty    bool  // bytes written since the last successful sync
	frame    []byte
}

// createSegment creates (truncating any leftover file of the same name —
// a collision is only possible when the previous incarnation held no
// valid records) and syncs the containing directory so the new file
// itself survives a crash.
func createSegment(dir string, firstLSN uint64) (*segmentWriter, error) {
	path := filepath.Join(dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &segmentWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path, firstLSN: firstLSN}
	hdr := make([]byte, 0, segHeaderSize)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, firstLSN)
	if _, err := w.bw.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	w.size = int64(segHeaderSize)
	w.dirty = true
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// append frames payload and writes it to the buffer.
func (w *segmentWriter) append(payload []byte) error {
	w.frame = w.frame[:0]
	w.frame = binary.LittleEndian.AppendUint32(w.frame, uint32(len(payload)))
	w.frame = binary.LittleEndian.AppendUint32(w.frame, crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(w.frame); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.size += int64(frameHeaderSize + len(payload))
	w.dirty = true
	return nil
}

// sync flushes the buffer and fsyncs the file. No-op when nothing was
// written since the last sync.
func (w *segmentWriter) sync() (time.Duration, error) {
	if !w.dirty {
		return 0, nil
	}
	t0 := time.Now()
	if err := w.bw.Flush(); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	w.dirty = false
	return time.Since(t0), nil
}

// close syncs and closes the file.
func (w *segmentWriter) close() error {
	_, err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// segmentScan is the result of reading one segment file.
type segmentScan struct {
	path     string
	firstLSN uint64
	records  []*Record
	// validLen is the byte offset just past the last cleanly decoded
	// record — the truncation point when the tail is torn.
	validLen int64
	// torn describes a tail that ends mid-record (tolerated in the final
	// segment: the crash interrupted the last append).
	torn error
	// corrupt describes damage that is NOT a torn tail: a record whose
	// checksum fails with further bytes behind it, a structurally invalid
	// payload, or an LSN discontinuity. Recovery refuses to proceed past
	// it.
	corrupt error
}

// scanSegment reads and validates one segment file. Hard errors (I/O,
// unreadable or mismatched header) are returned as err; frame-level
// problems are classified into scan.torn / scan.corrupt so the caller
// can decide based on the segment's position in the log.
func scanSegment(path string) (*segmentScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	scan := &segmentScan{path: path}
	if len(data) < segHeaderSize {
		// A crash between segment creation and the first sync leaves the
		// header short (possibly zero bytes: the header sits in the write
		// buffer until the first flush). If what IS on disk is a prefix of
		// the header this file would carry, that's a torn creation — only
		// tolerable as the final segment, like any other torn tail. Any
		// other short content is damage.
		fromName, ok := parseSegmentName(filepath.Base(path))
		want := append([]byte(segMagic), make([]byte, 8)...)
		binary.LittleEndian.PutUint64(want[len(segMagic):], fromName)
		if ok && string(data) == string(want[:len(data)]) {
			scan.firstLSN = fromName
			scan.torn = fmt.Errorf("durable: %s: segment header incomplete (%d of %d bytes)", filepath.Base(path), len(data), segHeaderSize)
			return scan, nil
		}
		return nil, fmt.Errorf("durable: %s: not a WAL segment (bad header)", filepath.Base(path))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("durable: %s: not a WAL segment (bad header)", filepath.Base(path))
	}
	scan.firstLSN = binary.LittleEndian.Uint64(data[len(segMagic):])
	if fromName, ok := parseSegmentName(filepath.Base(path)); !ok || fromName != scan.firstLSN {
		return nil, fmt.Errorf("durable: %s: segment header LSN %d disagrees with filename", filepath.Base(path), scan.firstLSN)
	}
	off := int64(segHeaderSize)
	scan.validLen = off
	expect := scan.firstLSN
	for off < int64(len(data)) {
		rest := int64(len(data)) - off
		if rest < frameHeaderSize {
			scan.torn = fmt.Errorf("durable: %s: torn frame header at byte %d (%d trailing bytes)", filepath.Base(path), off, rest)
			return scan, nil
		}
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxRecordBytes || off+frameHeaderSize+plen > int64(len(data)) {
			// The frame extends past EOF (or its length field is garbage,
			// indistinguishable from a partially written length): the
			// classic torn final append.
			scan.torn = fmt.Errorf("durable: %s: torn record at byte %d (declared %d bytes, %d available)", filepath.Base(path), off, plen, rest-frameHeaderSize)
			return scan, nil
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+plen]
		end := off + frameHeaderSize + plen
		if crc32.ChecksumIEEE(payload) != crc {
			if end == int64(len(data)) {
				// Checksum failure on the very last record: a torn write
				// inside the final sector.
				scan.torn = fmt.Errorf("durable: %s: checksum mismatch on final record at byte %d", filepath.Base(path), off)
				return scan, nil
			}
			// Valid-looking frames follow the damage: this is mid-log
			// corruption, not an interrupted append.
			scan.corrupt = fmt.Errorf("durable: %s: checksum mismatch at byte %d with %d bytes following", filepath.Base(path), off, int64(len(data))-end)
			return scan, nil
		}
		rec, derr := DecodePayload(payload)
		if derr != nil {
			scan.corrupt = fmt.Errorf("durable: %s: invalid record at byte %d: %w", filepath.Base(path), off, derr)
			return scan, nil
		}
		if rec.LSN != expect {
			scan.corrupt = fmt.Errorf("durable: %s: LSN discontinuity at byte %d: record %d, expected %d", filepath.Base(path), off, rec.LSN, expect)
			return scan, nil
		}
		scan.records = append(scan.records, rec)
		scan.validLen = end
		off = end
		expect++
	}
	return scan, nil
}

// listSegments returns the segment filenames in dir sorted by first LSN.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, _ := parseSegmentName(names[i])
		b, _ := parseSegmentName(names[j])
		return a < b
	})
	return names, nil
}
