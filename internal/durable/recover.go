package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mdw/internal/store"
)

// RecoveryStats summarizes one recovery pass.
type RecoveryStats struct {
	SnapshotPath     string        `json:"snapshotPath,omitempty"`
	SnapshotLSN      uint64        `json:"snapshotLSN"`
	SkippedSnapshots int           `json:"skippedSnapshots,omitempty"`
	ReplayedRecords  int           `json:"replayedRecords"`
	ReplayedTriples  int           `json:"replayedTriples"`
	LastLSN          uint64        `json:"lastLSN"`
	TornTail         string        `json:"tornTail,omitempty"`
	Models           int           `json:"models"`
	Triples          int           `json:"triples"`
	Duration         time.Duration `json:"duration"`
}

// Recover rebuilds a store from the data directory: it loads the newest
// snapshot that validates (invalid ones are skipped with a warning),
// replays the WAL tail above the snapshot's LSN, truncates a torn final
// record if the last append was interrupted, and fails loudly on mid-log
// corruption or LSN gaps. Every replayed record's post-state generation
// is checked against the generation the record logged at commit time, so
// replay divergence cannot pass silently.
func Recover(dir string, logf func(string, ...any)) (*store.Store, *RecoveryStats, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t0 := time.Now()
	st := store.New()
	stats := &RecoveryStats{}

	snap, err := loadLatestSnapshot(dir, st, stats, logf)
	if err != nil {
		return nil, stats, err
	}
	snapLSN := uint64(0)
	if snap != nil {
		snapLSN = snap.LSN
	}
	stats.LastLSN = snapLSN

	if err := replayWAL(dir, st, snapLSN, stats, logf); err != nil {
		return nil, stats, err
	}

	for _, name := range st.ModelNames() {
		stats.Models++
		stats.Triples += st.Len(name)
	}
	stats.Duration = time.Since(t0)
	return st, stats, nil
}

// loadLatestSnapshot finds the newest valid snapshot, loads it into st,
// and verifies per-model triple counts.
func loadLatestSnapshot(dir string, st *store.Store, stats *RecoveryStats, logf func(string, ...any)) (*Snapshot, error) {
	names, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		snap, err := ReadSnapshot(path)
		if err != nil {
			logf("durable: skipping invalid snapshot %s: %v", names[i], err)
			stats.SkippedSnapshots++
			obsBadSnapshots.Inc()
			continue
		}
		if err := LoadSnapshot(st, snap); err != nil {
			return nil, fmt.Errorf("durable: %s: %w", names[i], err)
		}
		stats.SnapshotPath = path
		stats.SnapshotLSN = snap.LSN
		return snap, nil
	}
	return nil, nil
}

// LoadSnapshot installs a decoded snapshot into a fresh store. The
// dictionary is rebuilt in ID order, so every encoded triple keeps its
// IDs; per-model triple counts are verified against the decoded count.
func LoadSnapshot(st *store.Store, snap *Snapshot) error {
	dict := st.Dict()
	for i, t := range snap.Terms {
		if id := dict.Intern(t); id != store.ID(i+1) {
			return fmt.Errorf("dictionary not reconstructible: term %d interned as ID %d (duplicate term in snapshot?)", i+1, id)
		}
	}
	for _, ms := range snap.Models {
		m := store.NewModel(ms.Name)
		for _, et := range ms.Triples {
			m.Add(et)
		}
		if m.Len() != len(ms.Triples) {
			return fmt.Errorf("model %q: %d distinct triples loaded, snapshot declared %d", ms.Name, m.Len(), len(ms.Triples))
		}
		m.SetGen(ms.Gen)
		m.SetBasis(ms.Basis)
		st.InstallModel(m)
	}
	return nil
}

// replayWAL applies every WAL record above snapLSN to st, enforcing
// cross-segment LSN contiguity, tolerating (and truncating) a torn tail
// in the final segment, and reporting mid-log corruption as a hard
// error.
func replayWAL(dir string, st *store.Store, snapLSN uint64, stats *RecoveryStats, logf func(string, ...any)) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	// Drop segments the snapshot fully covers without reading them: a
	// segment's records all lie below the next segment's first LSN, so if
	// that bound is at or below the snapshot position the segment is
	// redundant (it survives only until the next checkpoint truncation).
	for len(segs) > 1 {
		next, _ := parseSegmentName(segs[1])
		if next > snapLSN+1 {
			break
		}
		segs = segs[1:]
	}
	applied := snapLSN
	for i, name := range segs {
		last := i == len(segs)-1
		path := filepath.Join(dir, name)
		scan, err := scanSegment(path)
		if err != nil {
			return err
		}
		if scan.firstLSN > applied+1 {
			return fmt.Errorf("durable: WAL gap: %s starts at LSN %d but only LSN %d is accounted for", name, scan.firstLSN, applied)
		}
		if scan.corrupt != nil {
			return fmt.Errorf("durable: mid-log corruption: %w", scan.corrupt)
		}
		if scan.torn != nil && !last {
			return fmt.Errorf("durable: mid-log corruption: non-final segment ends mid-record: %w", scan.torn)
		}
		for _, rec := range scan.records {
			if rec.LSN <= applied {
				continue // covered by the snapshot
			}
			if err := applyRecord(st, rec); err != nil {
				return fmt.Errorf("durable: %s: replay LSN %d: %w", name, rec.LSN, err)
			}
			applied = rec.LSN
			stats.ReplayedRecords++
			stats.ReplayedTriples += len(rec.Triples)
			obsReplayed.Inc()
			obsReplayedTrip.Add(int64(len(rec.Triples)))
		}
		if scan.torn != nil {
			// The crash interrupted the final append: everything before it
			// is applied, the partial record never committed. Truncate so
			// the garbage can't shadow future appends or be misread as
			// mid-log corruption on the next recovery.
			logf("durable: truncating torn WAL tail: %v", scan.torn)
			stats.TornTail = scan.torn.Error()
			obsTornTails.Inc()
			if scan.validLen < int64(segHeaderSize) {
				// Not even the header survived: drop the file instead of
				// leaving a headerless stub behind.
				if err := os.Remove(path); err != nil {
					return fmt.Errorf("durable: removing torn segment %s: %w", name, err)
				}
			} else if err := os.Truncate(path, scan.validLen); err != nil {
				return fmt.Errorf("durable: truncating torn tail of %s: %w", name, err)
			}
			if err := syncDir(dir); err != nil {
				return err
			}
		}
	}
	stats.LastLSN = applied
	return nil
}

// applyRecord replays one mutation and verifies the resulting model
// generation matches the one logged at commit time.
func applyRecord(st *store.Store, rec *Record) error {
	switch rec.Op {
	case store.OpAdd:
		if n := st.AddAll(rec.Model, rec.Triples); n != len(rec.Triples) {
			return fmt.Errorf("add: %d of %d triples were duplicates (replay divergence)", len(rec.Triples)-n, len(rec.Triples))
		}
		return verifyGen(st, rec.Model, rec.Gen)
	case store.OpRemove:
		for _, t := range rec.Triples {
			if !st.Remove(rec.Model, t) {
				return fmt.Errorf("remove: triple absent (replay divergence)")
			}
		}
		return verifyGen(st, rec.Model, rec.Gen)
	case store.OpDrop:
		if !st.DropModel(rec.Model) {
			return fmt.Errorf("drop: model %q absent (replay divergence)", rec.Model)
		}
		return nil
	case store.OpClone:
		// Replay with the generation the original CloneModel allocated:
		// clone generations are salted store-wide (the salt depends on
		// models that may since have been dropped), so the record — not a
		// fresh allocation — is authoritative. verifyGen still guards the
		// clone path itself against divergence.
		if err := st.CloneModelAt(rec.Src, rec.Model, rec.Gen); err != nil {
			return err
		}
		return verifyGen(st, rec.Model, rec.Gen)
	case store.OpInstall:
		m := store.NewModel(rec.Model)
		dict := st.Dict()
		for _, t := range rec.Triples {
			m.Add(store.ETriple{S: dict.Intern(t.S), P: dict.Intern(t.P), O: dict.Intern(t.O)})
		}
		if m.Len() != len(rec.Triples) {
			return fmt.Errorf("install: %d distinct triples, record declared %d", m.Len(), len(rec.Triples))
		}
		m.SetGen(rec.Gen)
		m.SetBasis(rec.Basis)
		st.InstallModel(m)
		return nil
	default:
		return fmt.Errorf("unknown op %d", rec.Op)
	}
}

func verifyGen(st *store.Store, model string, want uint64) error {
	if got := st.Generation(model); got != want {
		return fmt.Errorf("model %q at generation %d after replay, record expected %d (replay divergence)", model, got, want)
	}
	return nil
}
