package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdw/internal/store"
)

// FsyncPolicy controls when WAL appends are forced to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every committed mutation. Strongest
	// guarantee, slowest writes (the sync happens inside the commit path).
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on a background ticker (Options.FsyncInterval).
	// A crash loses at most one interval of committed writes; the log
	// itself stays prefix-consistent. The default.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNone never syncs explicitly; the OS flushes at its leisure.
	FsyncNone FsyncPolicy = "none"
)

// ParseFsyncPolicy validates a policy name from a flag.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch p := FsyncPolicy(strings.ToLower(s)); p {
	case FsyncAlways, FsyncInterval, FsyncNone:
		return p, nil
	default:
		return "", fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or none)", s)
	}
}

// Options configures a durable Manager.
type Options struct {
	// Dir is the data directory holding WAL segments and snapshots.
	Dir string
	// Fsync selects the sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the active WAL segment past this size
	// (default 64 MiB).
	SegmentBytes int64
	// CheckpointEvery starts a background checkpoint loop with this
	// period (0 disables; checkpoints can still be forced via
	// Checkpoint).
	CheckpointEvery time.Duration
	// KeepSnapshots retains this many snapshots beyond the newest
	// (default 1, so two total).
	KeepSnapshots int
	// Logf receives operational messages (recovery summary, degraded
	// mode, checkpoint failures). Nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Fsync == "" {
		o.Fsync = FsyncInterval
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.KeepSnapshots < 0 {
		o.KeepSnapshots = 0
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// CheckpointStats summarizes one completed checkpoint.
type CheckpointStats struct {
	Path            string        `json:"path"`
	LSN             uint64        `json:"lsn"`
	Bytes           int64         `json:"bytes"`
	Models          int           `json:"models"`
	Triples         int           `json:"triples"`
	SegmentsRemoved int           `json:"segmentsRemoved"`
	Duration        time.Duration `json:"duration"`
}

// Manager owns the durability state of one store: the active WAL segment
// writer, the background fsync and checkpoint loops, and the recovery
// statistics of the Open that produced it.
//
// Lock order: the store's lock is always taken before m.mu (the commit
// hook runs under the store's write lock and acquires m.mu; nothing that
// holds m.mu may call a locking store method).
type Manager struct {
	opts Options
	st   *store.Store
	dict *store.Dict

	// lastLSN is the LSN of the most recently appended record. It is only
	// advanced under both the store's write lock (the hook) and m.mu, so
	// reading it inside a store read-lock critical section gives the exact
	// WAL position of the observed state.
	lastLSN atomic.Uint64

	mu     sync.Mutex // serializes writer access: hook, fsync loop, rotation
	w      *segmentWriter
	walErr error  // sticky: first append/sync failure flips to degraded mode
	buf    []byte // payload scratch

	cpMu sync.Mutex // one checkpoint at a time

	rec RecoveryStats

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// Open recovers the store persisted in opts.Dir (creating the directory
// if needed), attaches the write-ahead log to it, and starts the
// configured background loops. The returned store is fully recovered:
// latest valid snapshot loaded, WAL tail replayed, per-model counts and
// generations verified.
func Open(opts Options) (*Manager, *store.Store, error) {
	opts.setDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("durable: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	removeStaleTemp(opts.Dir)
	st, rec, err := Recover(opts.Dir, opts.Logf)
	if err != nil {
		return nil, nil, err
	}
	w, err := createSegment(opts.Dir, rec.LastLSN+1)
	if err != nil {
		return nil, nil, err
	}
	m := &Manager{opts: opts, st: st, dict: st.Dict(), w: w, rec: *rec, stop: make(chan struct{}), buf: make([]byte, 0, 4096)}
	m.lastLSN.Store(rec.LastLSN)
	st.SetCommitHook(m.committed)
	if opts.Fsync == FsyncInterval {
		m.wg.Add(1)
		go m.fsyncLoop()
	}
	if opts.CheckpointEvery > 0 {
		m.wg.Add(1)
		go m.checkpointLoop()
	}
	return m, st, nil
}

// removeStaleTemp deletes snapshot temp files left behind by a crash
// mid-checkpoint. They were never renamed into place, so they are dead
// weight.
func removeStaleTemp(dir string) {
	matches, _ := filepath.Glob(filepath.Join(dir, ".snap-tmp-*"))
	for _, p := range matches {
		os.Remove(p)
	}
}

// Store returns the recovered store the manager is attached to.
func (m *Manager) Store() *store.Store { return m.st }

// Recovery returns the statistics of the Open that produced the manager.
func (m *Manager) Recovery() RecoveryStats { return m.rec }

// LastLSN returns the LSN of the most recently logged mutation.
func (m *Manager) LastLSN() uint64 { return m.lastLSN.Load() }

// Err returns the sticky WAL error, if the manager has entered degraded
// mode (appends failing; the in-memory store keeps serving).
func (m *Manager) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.walErr
}

// committed is the store commit hook: it runs under the store's write
// lock, so records are framed and appended in exactly the store's
// serialization order.
func (m *Manager) committed(mut store.Mutation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.walErr != nil {
		return
	}
	lsn := m.lastLSN.Load() + 1
	m.buf = m.appendMutation(m.buf[:0], lsn, mut)
	if err := m.w.append(m.buf); err != nil {
		m.degradeLocked(fmt.Errorf("append LSN %d: %w", lsn, err))
		return
	}
	m.lastLSN.Store(lsn)
	obsAppends.Inc()
	obsWALBytes.Add(int64(frameHeaderSize + len(m.buf)))
	if m.opts.Fsync == FsyncAlways {
		d, err := m.w.sync()
		if err != nil {
			m.degradeLocked(fmt.Errorf("fsync LSN %d: %w", lsn, err))
			return
		}
		obsFsyncHist.Observe(d)
	}
	if m.w.size >= m.opts.SegmentBytes {
		m.rotateLocked()
	}
}

// appendMutation encodes mut as the payload of the record with the given
// LSN, decoding dictionary IDs to full terms (the dictionary has its own
// lock and is append-only, so this is safe under the store's write
// lock).
func (m *Manager) appendMutation(b []byte, lsn uint64, mut store.Mutation) []byte {
	b = appendU64(b, lsn)
	b = append(b, byte(mut.Op))
	b = appendString(b, mut.Model)
	switch mut.Op {
	case store.OpAdd, store.OpRemove:
		b = appendU64(b, mut.Gen)
		b = appendUvarint(b, uint64(len(mut.Triples)))
		for _, et := range mut.Triples {
			b = appendTerm(b, m.dict.Term(et.S))
			b = appendTerm(b, m.dict.Term(et.P))
			b = appendTerm(b, m.dict.Term(et.O))
		}
	case store.OpDrop:
	case store.OpClone:
		b = appendString(b, mut.Src)
		b = appendU64(b, mut.Gen)
	case store.OpInstall:
		b = appendU64(b, mut.Gen)
		b = appendU64(b, mut.Basis)
		b = appendUvarint(b, uint64(mut.Installed.Len()))
		mut.Installed.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(et store.ETriple) bool {
			b = appendTerm(b, m.dict.Term(et.S))
			b = appendTerm(b, m.dict.Term(et.P))
			b = appendTerm(b, m.dict.Term(et.O))
			return true
		})
	}
	return b
}

// degradeLocked flips the manager into degraded mode: the error sticks,
// further appends are dropped, and the operator is told once. The
// in-memory store keeps serving — losing durability is strictly better
// than losing availability.
func (m *Manager) degradeLocked(err error) {
	m.walErr = fmt.Errorf("durable: WAL degraded: %w", err)
	obsWALErrors.Inc()
	m.opts.Logf("durable: WAL degraded, further mutations are NOT logged: %v", err)
}

// rotateLocked closes the active segment and opens a fresh one starting
// at the next LSN. Caller holds m.mu.
func (m *Manager) rotateLocked() {
	if err := m.w.close(); err != nil {
		m.degradeLocked(fmt.Errorf("rotate close: %w", err))
		return
	}
	w, err := createSegment(m.opts.Dir, m.lastLSN.Load()+1)
	if err != nil {
		m.degradeLocked(fmt.Errorf("rotate create: %w", err))
		return
	}
	m.w = w
	obsRotations.Inc()
}

func (m *Manager) fsyncLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Sync() //mdwlint:allow syncerr Sync records failures in the sticky m.walErr degraded mode; the ticker has no caller to propagate to
		}
	}
}

// Sync flushes and fsyncs the active WAL segment.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.walErr != nil {
		return m.walErr
	}
	d, err := m.w.sync()
	if err != nil {
		m.degradeLocked(fmt.Errorf("fsync: %w", err))
		return m.walErr
	}
	if d > 0 {
		obsFsyncHist.Observe(d)
	}
	return nil
}

func (m *Manager) checkpointLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.opts.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			if _, err := m.Checkpoint(); err != nil {
				m.opts.Logf("durable: background checkpoint failed: %v", err)
			}
		}
	}
}

// Checkpoint captures a consistent image of the whole store, writes it
// as a snapshot covering the exact WAL position of the capture, rotates
// the active segment, and removes WAL segments and old snapshots the new
// snapshot makes redundant. Concurrent mutations keep committing
// throughout; only the in-memory capture holds the store's read lock.
func (m *Manager) Checkpoint() (CheckpointStats, error) {
	m.cpMu.Lock()
	defer m.cpMu.Unlock()
	t0 := time.Now()
	var lsn uint64
	states, terms := m.st.CaptureState(func() { lsn = m.lastLSN.Load() })
	stats := CheckpointStats{LSN: lsn, Models: len(states)}
	for i := range states {
		stats.Triples += len(states[i].Triples)
	}
	path, size, err := WriteSnapshot(m.opts.Dir, lsn, states, terms)
	if err != nil {
		return stats, fmt.Errorf("durable: checkpoint: %w", err)
	}
	stats.Path = path
	stats.Bytes = size
	// Rotate so the active segment starts past the checkpoint and the
	// pre-checkpoint segments become removable.
	m.mu.Lock()
	if m.walErr == nil {
		m.rotateLocked()
	}
	m.mu.Unlock()
	m.pruneSnapshots()
	// Truncate the WAL only below the *oldest retained* snapshot, not the
	// new one: if the newest snapshot is later found corrupt, recovery can
	// still fall back to an older one and replay forward from its LSN.
	truncLSN := lsn
	if snaps, err := listSnapshots(m.opts.Dir); err == nil && len(snaps) > 0 {
		if oldest, ok := parseSnapshotName(snaps[0]); ok && oldest < truncLSN {
			truncLSN = oldest
		}
	}
	removed, err := m.removeCoveredSegments(truncLSN)
	stats.SegmentsRemoved = removed
	if err != nil {
		m.opts.Logf("durable: checkpoint: segment truncation incomplete: %v", err)
	}
	stats.Duration = time.Since(t0)
	obsCheckpoints.Inc()
	obsCkptHist.Observe(stats.Duration)
	obsCkptBytes.Set(size)
	obsCkptDurMs.Set(stats.Duration.Milliseconds())
	obsCkptLSN.Set(int64(lsn))
	return stats, nil
}

// removeCoveredSegments deletes every WAL segment whose records all lie
// at or below cpLSN — provable from the *next* segment's first LSN, so
// the active segment (always last) is never considered.
func (m *Manager) removeCoveredSegments(cpLSN uint64) (int, error) {
	segs, err := listSegments(m.opts.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	var firstErr error
	for i := 0; i+1 < len(segs); i++ {
		next, _ := parseSegmentName(segs[i+1])
		if next > cpLSN+1 {
			break
		}
		if err := os.Remove(filepath.Join(m.opts.Dir, segs[i])); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(m.opts.Dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return removed, firstErr
}

// pruneSnapshots removes old snapshots beyond the retention count.
func (m *Manager) pruneSnapshots() {
	snaps, err := listSnapshots(m.opts.Dir)
	if err != nil {
		return
	}
	keep := m.opts.KeepSnapshots + 1
	if keep < 1 {
		keep = 1
	}
	for len(snaps) > keep {
		os.Remove(filepath.Join(m.opts.Dir, snaps[0]))
		snaps = snaps[1:]
	}
}

// Close detaches the manager from the store, stops the background loops,
// and syncs and closes the active segment. The store remains usable
// in-memory; further mutations are simply no longer logged.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		m.st.SetCommitHook(nil)
		close(m.stop)
		m.wg.Wait()
		m.mu.Lock()
		defer m.mu.Unlock()
		if err := m.w.close(); err != nil && m.walErr == nil {
			m.closeErr = err
		}
	})
	return m.closeErr
}
