package durable_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"mdw/internal/durable"
	"mdw/internal/landscape"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/staging"
)

// benchDir lazily builds one durable data directory per landscape scale:
// full staging load + entailment through the WAL, then one checkpoint so
// both a snapshot and a WAL tail exist.
type benchEnv struct {
	dir     string
	cp      durable.CheckpointStats
	triples int
}

var (
	benchMu   sync.Mutex
	benchEnvs = map[string]*benchEnv{}
)

// TestMain removes the shared benchmark fixtures, which outlive any one
// benchmark and so cannot live in b.TempDir.
func TestMain(m *testing.M) {
	code := m.Run()
	for _, env := range benchEnvs {
		os.RemoveAll(env.dir)
	}
	os.Exit(code)
}

func benchFixture(b *testing.B, scale string) *benchEnv {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if env, ok := benchEnvs[scale]; ok {
		return env
	}
	cfg := landscape.Small()
	if scale == "paper" {
		cfg = landscape.PaperScale()
	}
	dir, err := os.MkdirTemp("", "mdw-durable-bench-")
	if err != nil {
		b.Fatal(err)
	}
	mgr, st, err := durable.Open(durable.Options{Dir: dir, Fsync: durable.FsyncNone})
	if err != nil {
		b.Fatal(err)
	}
	l := landscape.Generate(cfg)
	if _, err := (staging.Pipeline{Store: st, Model: "DWH_CURR"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		b.Fatal(err)
	}
	st.AddAll("DWH_CURR", l.ExtraTriples())
	if _, _, err := reason.NewEngine(st).Materialize("DWH_CURR"); err != nil {
		b.Fatal(err)
	}
	cp, err := mgr.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	// Leave a WAL tail on top of the snapshot so recovery exercises both
	// paths, as it would in production.
	for i := 0; i < 100; i++ {
		st.Add("DWH_CURR", rdf.T(
			staging.InstanceIRI("bench", fmt.Sprintf("tail%d", i)),
			rdf.IRI(rdf.MDWHasName),
			rdf.Literal(fmt.Sprintf("t%d", i))))
	}
	if err := mgr.Close(); err != nil {
		b.Fatal(err)
	}
	env := &benchEnv{dir: dir, cp: cp}
	for _, name := range st.ModelNames() {
		env.triples += st.Len(name)
	}
	benchEnvs[scale] = env
	return env
}

// BenchmarkWALAppend measures the commit-hook overhead of logging one
// three-triple add, the dominant durable cost on the write path.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	mgr, st, err := durable.Open(durable.Options{Dir: dir, Fsync: durable.FsyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Add("bench", rdf.T(
			staging.InstanceIRI("bench", fmt.Sprintf("s%d", i)),
			rdf.IRI(rdf.MDWHasName),
			rdf.Literal(fmt.Sprintf("v%d", i))))
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	for _, scale := range []string{"small", "paper"} {
		b.Run(scale, func(b *testing.B) {
			env := benchFixture(b, scale)
			mgr, _, err := durable.Open(durable.Options{Dir: env.dir, Fsync: durable.FsyncNone})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			b.ResetTimer()
			var cp durable.CheckpointStats
			for i := 0; i < b.N; i++ {
				if cp, err = mgr.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cp.Bytes), "snapshot-bytes")
			b.ReportMetric(float64(cp.Triples), "triples")
		})
	}
}

func BenchmarkRecovery(b *testing.B) {
	for _, scale := range []string{"small", "paper"} {
		b.Run(scale, func(b *testing.B) {
			env := benchFixture(b, scale)
			b.ResetTimer()
			var triples int
			for i := 0; i < b.N; i++ {
				st, stats, err := durable.Recover(env.dir, nil)
				if err != nil {
					b.Fatal(err)
				}
				triples = stats.Triples
				_ = st
			}
			if triples != env.triples {
				b.Fatalf("recovered %d triples, fixture has %d", triples, env.triples)
			}
			b.ReportMetric(float64(triples), "triples")
		})
	}
}
