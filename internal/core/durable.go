package core

import (
	"mdw/internal/durable"
	"mdw/internal/history"
	"mdw/internal/textindex"
)

// OpenDurable recovers (or initializes) a warehouse backed by a durable
// data directory: every mutation is write-ahead logged, checkpoints
// condense the log into binary snapshots, and a restart resumes from the
// newest snapshot plus the WAL tail. The caller owns the returned
// manager and must Close it to flush the log on shutdown; release
// history survives restarts because Snapshot mirrors the historian's
// records into the store (and hence the WAL).
func OpenDurable(model string, opts durable.Options) (*Warehouse, *durable.Manager, error) {
	if model == "" {
		model = DefaultModel
	}
	mgr, st, err := durable.Open(opts)
	if err != nil {
		return nil, nil, err
	}
	st.Model(model) // ensure the base model exists even on a fresh directory
	w := &Warehouse{
		st:    st,
		model: model,
		hist:  history.NewHistorian(st, model),
		tix:   textindex.NewManager(textindex.Config{}),
	}
	if err := w.restoreMeta(); err != nil {
		mgr.Close()
		return nil, nil, err
	}
	w.restoreThesaurus()
	// Build-on-load, as in ReadFrom — but only when there is a graph to
	// index; a fresh directory starts instantly.
	if st.Len(model) > 0 {
		if _, err := w.TextIndex(); err != nil {
			mgr.Close()
			return nil, nil, err
		}
	}
	return w, mgr, nil
}
