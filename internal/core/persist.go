package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"mdw/internal/dbpedia"
	"mdw/internal/history"
	"mdw/internal/rdf"
	"mdw/internal/store"
	"mdw/internal/textindex"
)

// metaModel holds warehouse bookkeeping (release history records) so a
// dump is self-describing.
const metaModel = "MDW$META"

// Save writes the whole warehouse — every model including historization
// snapshots, entailment indexes, and the release metadata — to path. The
// dump is written to a temp file in the target directory, synced, and
// renamed into place, so a crash mid-save can never leave a truncated
// dump where a good one (or nothing) used to be.
func (w *Warehouse) Save(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".mdw-save-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err := w.WriteDump(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	tmp = "" // renamed away; nothing to clean up
	if d, err := os.Open(dir); err == nil {
		err = d.Sync()
		d.Close()
		return err
	}
	return nil
}

// WriteDump streams the warehouse dump to wr.
func (w *Warehouse) WriteDump(wr io.Writer) error {
	w.syncMeta()
	return w.st.WriteDump(wr)
}

// syncMeta rewrites the meta model from the historian's records.
func (w *Warehouse) syncMeta() {
	w.st.DropModel(metaModel)
	for _, v := range w.hist.Versions() {
		subj := rdf.IRI(fmt.Sprintf("%sversions/%d", rdf.MDWNS, v.Number))
		w.st.Add(metaModel, rdf.T(subj, rdf.Type, rdf.IRI(rdf.MDWVersion)))
		w.st.Add(metaModel, rdf.T(subj, rdf.IRI(rdf.MDWVersionNumber), rdf.Integer(int64(v.Number))))
		w.st.Add(metaModel, rdf.T(subj, rdf.IRI(rdf.MDWVersionTag), rdf.Literal(v.Tag)))
		w.st.Add(metaModel, rdf.T(subj, rdf.IRI(rdf.MDWVersionAt), rdf.TypedLiteral(v.At.UTC().Format(time.RFC3339), rdf.XSDDate)))
		w.st.Add(metaModel, rdf.T(subj, rdf.IRI(rdf.MDWVersionModel), rdf.Literal(v.Model)))
		w.st.Add(metaModel, rdf.T(subj, rdf.IRI(rdf.MDWVersionTriples), rdf.Integer(int64(v.Triples))))
		if v.Pruned {
			w.st.Add(metaModel, rdf.T(subj, rdf.IRI(rdf.MDWVersionPruned), rdf.Literal("true")))
		}
	}
}

// Open loads a warehouse previously written by Save. The model name must
// match the one the warehouse was created with ("" = DefaultModel).
func Open(path, model string) (*Warehouse, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f, model)
}

// ReadFrom reconstructs a warehouse from a dump stream.
func ReadFrom(r io.Reader, model string) (*Warehouse, error) {
	if model == "" {
		model = DefaultModel
	}
	st, err := store.ReadDump(r)
	if err != nil {
		return nil, err
	}
	if !st.HasModel(model) {
		return nil, fmt.Errorf("core: dump has no model %q (models: %v)", model, st.ModelNames())
	}
	w := &Warehouse{
		st:    st,
		model: model,
		hist:  history.NewHistorian(st, model),
		tix:   textindex.NewManager(textindex.Config{}),
	}
	if err := w.restoreMeta(); err != nil {
		return nil, err
	}
	w.restoreThesaurus()
	// Build-on-load: a dump carries its entailment index (adopted as
	// current by ReadDump), so this only constructs the full-text index.
	if _, err := w.TextIndex(); err != nil {
		return nil, err
	}
	return w, nil
}

// restoreMeta rebuilds the historian's version records from the meta
// model.
func (w *Warehouse) restoreMeta() error {
	if !w.st.HasModel(metaModel) {
		return nil
	}
	var versions []history.Version
	for _, t := range w.st.Match(metaModel, rdf.Term{}, rdf.Type, rdf.IRI(rdf.MDWVersion)) {
		v := history.Version{}
		get := func(pred string) (string, bool) {
			for _, m := range w.st.Match(metaModel, t.S, rdf.IRI(pred), rdf.Term{}) {
				return m.O.Value, true
			}
			return "", false
		}
		if s, ok := get(rdf.MDWVersionNumber); ok {
			n, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("core: bad version number %q", s)
			}
			v.Number = n
		}
		v.Tag, _ = get(rdf.MDWVersionTag)
		if s, ok := get(rdf.MDWVersionAt); ok {
			at, err := time.Parse(time.RFC3339, s)
			if err != nil {
				return fmt.Errorf("core: bad version timestamp %q", s)
			}
			v.At = at
		}
		v.Model, _ = get(rdf.MDWVersionModel)
		if s, ok := get(rdf.MDWVersionPruned); ok && s == "true" {
			v.Pruned = true
		}
		if s, ok := get(rdf.MDWVersionTriples); ok {
			n, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("core: bad version size %q", s)
			}
			v.Triples = n
		}
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i].Number < versions[j].Number })
	if len(versions) == 0 {
		return nil
	}
	return w.hist.Restore(versions)
}

// restoreThesaurus rebuilds synonym expansion from the DBpedia-style
// triples present in the base model.
func (w *Warehouse) restoreThesaurus() {
	var extract []rdf.Triple
	for _, p := range []string{dbpedia.Redirects, dbpedia.Disambiguates} {
		extract = append(extract, w.st.Match(w.model, rdf.Term{}, rdf.IRI(p), rdf.Term{})...)
	}
	if len(extract) > 0 {
		w.thesaurus = dbpedia.FromTriples(extract)
	}
}
