package core_test

import (
	"fmt"
	"log"
	"strings"

	"mdw/internal/core"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/ontology"
	"mdw/internal/search"
	"mdw/internal/staging"
)

// Example loads the paper's Figure 3 snippet and runs the two flagship
// use cases: search (Section IV.A) and lineage (Section IV.B).
func Example() {
	w := core.New("") // model DWH_CURR, as in SEM_MODELS('DWH_CURR')
	if _, err := w.LoadOntology(ontology.DWH()); err != nil {
		log.Fatal(err)
	}
	if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
		log.Fatal(err)
	}

	// Search for "customer" restricted to Listing 1's class intersection.
	res, err := w.Search("customer", search.Options{
		FilterClasses: []string{
			"http://www.credit-suisse.com/dwh/mdm/data_modeling#Application1_Item",
			"http://www.credit-suisse.com/dwh/mdm/data_modeling#Interface_Item",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search hits: %d\n", res.Instances)

	// Trace the mart column back to its source.
	item := staging.InstanceIRI("application1", "dwhdb", "mart", "v_customer", "customer_id")
	g, err := w.Lineage(item, lineage.Backward, lineage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage: %d nodes, %d hops\n", len(g.Nodes), len(g.Edges))

	srcs, err := w.Sources(item)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("origin: %s\n", srcs[0].Value[strings.LastIndex(srcs[0].Value, "/")+1:])

	// Output:
	// search hits: 1
	// lineage: 4 nodes, 3 hops
	// origin: client_information_id
}

// ExampleWarehouse_Query shows direct SPARQL access with and without the
// OWLPRIME entailment index.
func ExampleWarehouse_Query() {
	w := core.New("")
	if _, err := w.LoadOntology(ontology.DWH()); err != nil {
		log.Fatal(err)
	}
	if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
		log.Fatal(err)
	}
	q := `PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
	      SELECT (COUNT(?x) AS ?n) WHERE { ?x a dm:Attribute }`

	with, err := w.Query(q) // base facts ∪ OWLPRIME index
	if err != nil {
		log.Fatal(err)
	}
	without, err := w.QueryFacts(q) // base facts only
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attributes with index: %s, facts only: %s\n",
		with.Rows[0]["n"].Value, without.Rows[0]["n"].Value)

	// Output:
	// attributes with index: 5, facts only: 0
}
