package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdw/internal/dbpedia"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/search"
	"mdw/internal/staging"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	w := buildWarehouse(t)
	w.IntegrateDBpedia(dbpedia.Banking())
	if _, err := w.Reindex(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Snapshot("2009-R1", time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "wh.mdw")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Open(path, "")
	if err != nil {
		t.Fatal(err)
	}

	// Same triple counts.
	if back.Stats().Triples != w.Stats().Triples {
		t.Errorf("triples: %d vs %d", back.Stats().Triples, w.Stats().Triples)
	}
	// Search still works (index was persisted).
	res, err := back.Search("customer", search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances == 0 {
		t.Error("no hits after restore")
	}
	// Semantic expansion survives (thesaurus rebuilt from the model).
	res, err = back.Search("client", search.Options{Semantic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expanded) < 2 {
		t.Errorf("thesaurus not restored: %v", res.Expanded)
	}
	// Lineage still works.
	item := staging.InstanceIRI(strings.Split(landscape.Figure3Paths()[3], "/")...)
	g, err := back.Lineage(item, lineage.Backward, lineage.Options{})
	if err != nil || len(g.Nodes) != 4 {
		t.Errorf("lineage after restore: %v, %v", g, err)
	}
	// Release history survives.
	vs := back.History().Versions()
	if len(vs) != 1 || vs[0].Tag != "2009-R1" || vs[0].Number != 1 {
		t.Errorf("versions = %+v", vs)
	}
	if vs[0].At != time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("timestamp = %v", vs[0].At)
	}
	// And new snapshots continue the numbering.
	v2, err := back.Snapshot("2009-R2", time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Number != 2 {
		t.Errorf("v2.Number = %d", v2.Number)
	}
}

func TestReadFromErrors(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader(nil), ""); err == nil {
		t.Error("empty dump accepted")
	}
	if _, err := ReadFrom(strings.NewReader("garbage\n"), ""); err == nil {
		t.Error("garbage dump accepted")
	}
	// A valid dump without the requested model.
	w := New("other")
	var buf bytes.Buffer
	if err := w.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes()), "DWH_CURR"); err == nil {
		t.Error("missing model accepted")
	}
}

func TestWriteDumpIsDeterministic(t *testing.T) {
	w := buildWarehouse(t)
	var a, b bytes.Buffer
	if err := w.WriteDump(&a); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteDump(&b); err != nil {
		t.Fatal(err)
	}
	// Model iteration order is sorted, but triples within a model follow
	// map order — so compare parsed content, not bytes.
	w1, err := ReadFrom(bytes.NewReader(a.Bytes()), "")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ReadFrom(bytes.NewReader(b.Bytes()), "")
	if err != nil {
		t.Fatal(err)
	}
	if w1.Stats().Triples != w2.Stats().Triples {
		t.Error("dumps disagree")
	}
}
