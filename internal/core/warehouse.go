// Package core is the public face of the meta-data warehouse: a
// Warehouse value wires together the storage, load pipeline, entailment,
// historization, and the search and lineage services, exposing the
// operations the paper's users perform — load meta-data, search for
// concepts, trace lineage, snapshot releases, and query the graph
// directly with SPARQL or SEM_MATCH calls.
package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"mdw/internal/audit"
	"mdw/internal/dbpedia"
	"mdw/internal/history"
	"mdw/internal/impact"
	"mdw/internal/lineage"
	"mdw/internal/metamodel"
	"mdw/internal/obs"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/search"
	"mdw/internal/semmatch"
	"mdw/internal/sparql"
	"mdw/internal/staging"
	"mdw/internal/store"
	"mdw/internal/textindex"
)

// DefaultModel is the model name used when none is given; it matches the
// SEM_MODELS('DWH_CURR') of the paper's listings.
const DefaultModel = "DWH_CURR"

// Warehouse is one meta-data warehouse instance.
type Warehouse struct {
	st        *store.Store
	model     string
	hist      *history.Historian
	thesaurus *dbpedia.Thesaurus
	ontology  *ontology.Ontology
	// tix caches the full-text indexes (Section IV.A search) per model
	// generation; it is shared by every search service the warehouse
	// hands out so an index is built once and delta-updated thereafter.
	tix *textindex.Manager
}

// New returns an empty warehouse storing its graph in the named model
// ("" selects DefaultModel).
func New(model string) *Warehouse {
	if model == "" {
		model = DefaultModel
	}
	st := store.New()
	st.Model(model) // ensure the base model exists even before any load
	return &Warehouse{
		st:    st,
		model: model,
		hist:  history.NewHistorian(st, model),
		tix:   textindex.NewManager(textindex.Config{}),
	}
}

// Store exposes the underlying triple store.
func (w *Warehouse) Store() *store.Store { return w.st }

// Model returns the base model name.
func (w *Warehouse) Model() string { return w.model }

// Ontology returns the last loaded ontology (nil before LoadOntology).
func (w *Warehouse) Ontology() *ontology.Ontology { return w.ontology }

// Thesaurus returns the integrated thesaurus (nil before
// IntegrateDBpedia).
func (w *Warehouse) Thesaurus() *dbpedia.Thesaurus { return w.thesaurus }

// LoadOntology stages and loads an ontology (the Protégé export path of
// Figure 4) and remembers it for hierarchy queries.
func (w *Warehouse) LoadOntology(o *ontology.Ontology) (staging.LoadStats, error) {
	if errs := o.Validate(); len(errs) > 0 {
		return staging.LoadStats{}, fmt.Errorf("core: ontology invalid: %v", errs[0])
	}
	tbl := staging.NewTable()
	tbl.InsertTriples(o.Triples())
	stats, err := tbl.BulkLoad(w.st, w.model, true)
	if err != nil {
		return stats, err
	}
	w.ontology = o
	return stats, nil
}

// LoadExports runs the Figure 4 pipeline for the given XML meta-data
// exports, rebuilding the entailment index and the full-text search
// index afterwards so the first search after a load is already fast.
func (w *Warehouse) LoadExports(exports []*staging.Export) (staging.LoadStats, error) {
	stats, err := staging.Pipeline{Store: w.st, Model: w.model}.Run(exports, nil)
	if err != nil {
		return stats, err
	}
	_, err = w.TextIndex()
	return stats, err
}

// LoadTriples adds raw triples (e.g. auxiliary relatedness edges). The
// entailment and full-text indexes notice the new base generation and
// are refreshed on the next query or search.
func (w *Warehouse) LoadTriples(ts []rdf.Triple) int {
	return w.st.AddAll(w.model, ts)
}

// IntegrateDBpedia loads a DBpedia-style extract (Section III.B),
// derives synonym/homonym edges, and enables semantic search expansion.
// The new labels are folded into the full-text index immediately.
func (w *Warehouse) IntegrateDBpedia(extract []rdf.Triple) int {
	n := dbpedia.Integrate(w.st, w.model, extract)
	w.thesaurus = dbpedia.FromTriples(extract)
	_, _ = w.TextIndex() // build-on-load; next search verifies freshness anyway
	return n
}

// Reindex forces rematerialization of the OWLPRIME index and returns the
// number of derived triples.
func (w *Warehouse) Reindex() (int, error) {
	_, n, err := reason.NewEngine(w.st).Materialize(w.model)
	return n, err
}

// TextIndex returns the full-text index over the current graph (base
// model ∪ OWLPRIME entailment), materializing the entailment and
// building or delta-updating the index as needed.
func (w *Warehouse) TextIndex() (*textindex.Index, error) {
	return search.EnsureIndex(w.st, w.model, w.tix)
}

// TextIndexStats reports the size counters of every cached full-text
// index (the current model plus any historized releases searched so
// far).
func (w *Warehouse) TextIndexStats() []textindex.Stats {
	return w.tix.StatsAll()
}

// Search runs the Section IV.A search service over the warehouse's
// shared full-text index.
func (w *Warehouse) Search(term string, opt search.Options) (*search.Result, error) {
	return w.SearchCtx(context.Background(), term, opt)
}

// SearchCtx is Search carrying a request context: under a traced request
// (obs.ContextWithSpan) the search — and, with opt.ViaSPARQL, the SPARQL
// work inside it — nests in the request's trace.
func (w *Warehouse) SearchCtx(ctx context.Context, term string, opt search.Options) (*search.Result, error) {
	return search.New(w.st, w.model, w.thesaurus).WithIndexManager(w.tix).SearchCtx(ctx, term, opt)
}

// Lineage runs the Section IV.B provenance service.
func (w *Warehouse) Lineage(item rdf.Term, dir lineage.Direction, opt lineage.Options) (*lineage.Graph, error) {
	return w.LineageCtx(context.Background(), item, dir, opt)
}

// LineageCtx is Lineage carrying a request context.
func (w *Warehouse) LineageCtx(ctx context.Context, item rdf.Term, dir lineage.Direction, opt lineage.Options) (*lineage.Graph, error) {
	return lineage.New(w.st, w.model).TraceCtx(ctx, item, dir, opt)
}

// LineageService exposes the full lineage API (roll-ups, path counting).
func (w *Warehouse) LineageService() *lineage.Service {
	return lineage.New(w.st, w.model)
}

// Sources returns the ultimate origins of an information item.
func (w *Warehouse) Sources(item rdf.Term) ([]rdf.Term, error) {
	return lineage.New(w.st, w.model).Sources(item, lineage.Options{})
}

// Impact returns everything transitively derived from an item.
func (w *Warehouse) Impact(item rdf.Term) ([]rdf.Term, error) {
	return lineage.New(w.st, w.model).Impact(item, lineage.Options{})
}

// Audit runs the access audit of the roles use case: which users and
// roles can reach the item, optionally extended across its lineage.
func (w *Warehouse) Audit(item rdf.Term, includeLineage bool) (*audit.Report, error) {
	return audit.New(w.st, w.model).WhoCanAccess(item, includeLineage)
}

// ImpactOfRelease analyzes the meta-data changes between two historized
// releases and follows them forward to the affected applications and
// reports — the change-management use case.
func (w *Warehouse) ImpactOfRelease(from, to int) (*impact.Analysis, error) {
	return impact.New(w.st, w.hist).Analyze(from, to)
}

// Query parses and executes a SPARQL query against the base model plus
// its OWLPRIME index (materializing it if needed).
func (w *Warehouse) Query(query string) (*sparql.Result, error) {
	return w.QueryCtx(context.Background(), query)
}

// QueryCtx is Query carrying a request context: the call runs under a
// "warehouse.query" span — nested in the request's trace when ctx
// carries one, the root of a new trace otherwise — with the "sparql
// parse"/"sparql plan"/"sparql exec" spans of the engine (and a
// "reindex" span when the entailment was stale) below it.
func (w *Warehouse) QueryCtx(ctx context.Context, query string) (*sparql.Result, error) {
	root, ctx := obs.StartChildCtx(ctx, "warehouse.query")
	defer root.Finish()
	q, err := sparql.ParseCtx(ctx, query)
	if err != nil {
		root.SetLabel("error", "parse")
		return nil, err
	}
	idx := reason.IndexModelName(w.model, reason.RulebaseOWLPrime)
	// Re-materialize when the base model has mutated since the index was
	// derived (the generation check catches both a missing and a stale
	// index).
	if !w.st.Current(w.model, idx) {
		sp := root.Child("reindex")
		_, err := w.Reindex()
		sp.Finish()
		if err != nil {
			root.SetLabel("error", "reindex")
			return nil, err
		}
	}
	res, err := q.ExecCtx(ctx, w.st.ViewOf(w.model, idx), w.st.Dict())
	if err == nil {
		root.SetLabel("rows", strconv.Itoa(len(res.Rows)))
	}
	return res, err
}

// QueryAnalyze is QueryAnalyzeCtx with a background context.
func (w *Warehouse) QueryAnalyze(query string) (*sparql.Result, *sparql.ExecStats, error) {
	return w.QueryAnalyzeCtx(context.Background(), query)
}

// QueryAnalyzeCtx is QueryCtx with operator-level instrumentation
// (EXPLAIN ANALYZE): the returned ExecStats mirrors the executed plan
// with actual rows, loops, and wall time per operator, plus query-wide
// resource accounting. It always executes — analyzed statistics never
// come from the results cache.
func (w *Warehouse) QueryAnalyzeCtx(ctx context.Context, query string) (*sparql.Result, *sparql.ExecStats, error) {
	root, ctx := obs.StartChildCtx(ctx, "warehouse.query")
	defer root.Finish()
	q, err := sparql.ParseCtx(ctx, query)
	if err != nil {
		root.SetLabel("error", "parse")
		return nil, nil, err
	}
	idx := reason.IndexModelName(w.model, reason.RulebaseOWLPrime)
	if !w.st.Current(w.model, idx) {
		sp := root.Child("reindex")
		_, err := w.Reindex()
		sp.Finish()
		if err != nil {
			root.SetLabel("error", "reindex")
			return nil, nil, err
		}
	}
	res, stats, err := q.ExecAnalyzeCtx(ctx, w.st.ViewOf(w.model, idx), w.st.Dict())
	if err == nil {
		root.SetLabel("rows", strconv.Itoa(len(res.Rows)))
	}
	return res, stats, err
}

// QueryFacts executes a SPARQL query against the base facts only — the
// paper's default when no rulebase is named.
func (w *Warehouse) QueryFacts(query string) (*sparql.Result, error) {
	return w.QueryFactsCtx(context.Background(), query)
}

// QueryFactsCtx is QueryFacts carrying a request context.
func (w *Warehouse) QueryFactsCtx(ctx context.Context, query string) (*sparql.Result, error) {
	q, err := sparql.ParseCtx(ctx, query)
	if err != nil {
		return nil, err
	}
	return q.ExecCtx(ctx, w.st.ViewOf(w.model), w.st.Dict())
}

// QueryFactsAnalyzeCtx is QueryFactsCtx with operator-level
// instrumentation (see QueryAnalyzeCtx).
func (w *Warehouse) QueryFactsAnalyzeCtx(ctx context.Context, query string) (*sparql.Result, *sparql.ExecStats, error) {
	q, err := sparql.ParseCtx(ctx, query)
	if err != nil {
		return nil, nil, err
	}
	return q.ExecAnalyzeCtx(ctx, w.st.ViewOf(w.model), w.st.Dict())
}

// SemMatch executes an Oracle-style SEM_MATCH call (Listings 1 and 2).
func (w *Warehouse) SemMatch(call string) (*sparql.Result, error) {
	return semmatch.Exec(w.st, call)
}

// SemMatchCtx is SemMatch carrying a request context.
func (w *Warehouse) SemMatchCtx(ctx context.Context, call string) (*sparql.Result, error) {
	return semmatch.ExecCtx(ctx, w.st, call)
}

// SemMatchAnalyzeCtx is SemMatchCtx with operator-level instrumentation
// (see QueryAnalyzeCtx).
func (w *Warehouse) SemMatchAnalyzeCtx(ctx context.Context, call string) (*sparql.Result, *sparql.ExecStats, error) {
	return semmatch.ExecAnalyzeCtx(ctx, w.st, call)
}

// Explain renders the evaluation plan Query would execute: the
// statistics-driven join order with estimated cardinalities against the
// base-plus-index view. The index is (re)materialized first so the plan
// sees the same statistics execution would.
func (w *Warehouse) Explain(query string) (string, error) {
	return w.ExplainCtx(context.Background(), query)
}

// ExplainCtx is Explain carrying a request context.
func (w *Warehouse) ExplainCtx(ctx context.Context, query string) (string, error) {
	q, err := sparql.ParseCtx(ctx, query)
	if err != nil {
		return "", err
	}
	idx := reason.IndexModelName(w.model, reason.RulebaseOWLPrime)
	if !w.st.Current(w.model, idx) {
		if _, err := w.Reindex(); err != nil {
			return "", err
		}
	}
	return q.ExplainOn(w.st.ViewOf(w.model, idx), w.st.Dict()), nil
}

// ExplainSemMatch renders the evaluation plan of an Oracle-style
// SEM_MATCH call with the model/rulebase view the call names.
func (w *Warehouse) ExplainSemMatch(call string) (string, error) {
	req, err := semmatch.ParseCall(call)
	if err != nil {
		return "", err
	}
	return req.Explain(w.st)
}

// CloneModel clones model src ("" selects the base model) into dst via
// the store's zero-copy clone path: the two models share index nodes
// copy-on-write and the clone starts at a fresh salted generation, so
// cached query results and entailment-currency checks can never alias
// source and clone. On a durable warehouse the clone is one WAL record,
// not a triple-by-triple copy, and survives recovery.
func (w *Warehouse) CloneModel(src, dst string) (int, error) {
	if src == "" {
		src = w.model
	}
	if err := w.st.CloneModel(src, dst); err != nil {
		return 0, err
	}
	return w.st.Len(dst), nil
}

// Snapshot historizes the current graph as a new release version. The
// historian's record is mirrored into the meta model immediately, so it
// reaches the write-ahead log of a durable warehouse and survives a
// restart — not just an explicit Save.
func (w *Warehouse) Snapshot(tag string, at time.Time) (history.Version, error) {
	v, err := w.hist.Snapshot(tag, at)
	if err == nil {
		w.syncMeta()
	}
	return v, err
}

// History exposes the historian for diffs, as-of access, and pruning.
func (w *Warehouse) History() *history.Historian { return w.hist }

// Census computes the Table I population counts of the base graph.
func (w *Warehouse) Census() *metamodel.Census {
	cs, _ := metamodel.TakeCensus(w.st.ViewOf(w.model), w.st.Dict())
	return cs
}

// Validate checks the graph against the warehouse conventions.
func (w *Warehouse) Validate() []metamodel.Issue {
	return metamodel.Validate(w.st.ViewOf(w.model), w.st.Dict())
}

// Stats summarizes the warehouse state.
type Stats struct {
	Model    string
	Triples  int
	Derived  int
	Nodes    int
	Versions int
	// IndexCurrent reports whether the OWLPRIME entailment index still
	// reflects the base model's present generation.
	IndexCurrent bool
	// TextIndex lists the cached full-text indexes (one per indexed
	// model).
	TextIndex []textindex.Stats
}

// Stats reports the current graph and version sizes.
func (w *Warehouse) Stats() Stats {
	cs := w.Census()
	idx := reason.IndexModelName(w.model, reason.RulebaseOWLPrime)
	return Stats{
		Model:        w.model,
		Triples:      w.st.Len(w.model),
		Derived:      w.st.Len(idx),
		Nodes:        cs.NodeTotal(),
		Versions:     len(w.hist.Versions()),
		IndexCurrent: w.st.Current(w.model, idx),
		TextIndex:    w.tix.StatsAll(),
	}
}
