package core

import (
	"os"
	"path/filepath"
	"testing"

	"mdw/internal/dbpedia"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/ntriples"
	"mdw/internal/rdf"
	"mdw/internal/search"
	"mdw/internal/staging"
)

// writeDataDir lays out a directory in the `mdw generate` format.
func writeDataDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l := landscape.Generate(landscape.Small())
	for _, e := range l.Exports {
		doc, err := e.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, staging.Slug(e.Source)+".xml"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "ontology.ttl"), []byte(l.Ontology.Turtle()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dbpedia.nt"), []byte(ntriples.Marshal(dbpedia.Banking())), 0o644); err != nil {
		t.Fatal(err)
	}
	if extra := l.ExtraTriples(); len(extra) > 0 {
		if err := os.WriteFile(filepath.Join(dir, "auxiliary.nt"), []byte(ntriples.Marshal(extra)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadDir(t *testing.T) {
	dir := writeDataDir(t)
	w, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Triples < 1000 {
		t.Errorf("triples = %d", w.Stats().Triples)
	}
	if w.Ontology() == nil {
		t.Error("ontology not loaded")
	}
	if w.Thesaurus() == nil {
		t.Error("thesaurus not integrated")
	}
	// Full behaviour: search and lineage on the loaded warehouse.
	res, err := w.Search("customer", search.Options{Semantic: true})
	if err != nil || res.Instances == 0 {
		t.Errorf("search = %v, %v", res, err)
	}
	if _, err := w.Lineage(rdf.IRI("http://nowhere/x"), lineage.Backward, lineage.Options{}); err == nil {
		t.Error("unknown item lineage should error")
	}
	// Accessors exercised.
	if w.Store() == nil {
		t.Error("Store() nil")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("/no/such/dir"); err == nil {
		t.Error("missing dir should error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.xml"), []byte("<not-xml"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("broken XML should error")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "broken.ttl"), []byte("not turtle ."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir2); err == nil {
		t.Error("broken Turtle should error")
	}
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, "broken.nt"), []byte("junk line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir3); err == nil {
		t.Error("broken N-Triples should error")
	}
	dir4 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir4, "dbpedia.nt"), []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir4); err == nil {
		t.Error("broken dbpedia.nt should error")
	}
}

func TestAuditThroughFacade(t *testing.T) {
	w := buildWarehouse(t)
	item := staging.InstanceIRI("application1", "dwhdb", "mart", "v_customer", "customer_id")
	rep, err := w.Audit(item, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Users()) == 0 {
		t.Error("no users in audit")
	}
}

func TestSaveErrorPath(t *testing.T) {
	w := New("")
	if err := w.Save("/no/such/dir/wh.mdw"); err == nil {
		t.Error("save into missing directory should error")
	}
}
