package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mdw/internal/ntriples"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/staging"
	"mdw/internal/turtle"
)

// LoadDir builds a warehouse from a data directory in the layout written
// by `mdw generate`: *.xml meta-data exports, *.ttl ontology documents,
// dbpedia.nt synonym/homonym extract, and any other *.nt raw triples.
func LoadDir(dir string) (*Warehouse, error) {
	w := New("")
	if err := LoadDirInto(w, dir); err != nil {
		return nil, err
	}
	return w, nil
}

// LoadDirInto loads the same directory layout into an existing warehouse
// — typically one opened with OpenDurable whose recovered store turned
// out to be empty and needs seeding.
func LoadDirInto(w *Warehouse, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var exports []*staging.Export
	var ontTriples []rdf.Triple
	var raw []rdf.Triple
	var dbp []rdf.Triple
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		switch {
		case strings.HasSuffix(ent.Name(), ".xml"):
			e, err := staging.Decode(string(data))
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			exports = append(exports, e)
		case strings.HasSuffix(ent.Name(), ".ttl"):
			ts, err := turtle.Unmarshal(string(data))
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			ontTriples = append(ontTriples, ts...)
		case ent.Name() == "dbpedia.nt":
			ts, err := ntriples.Unmarshal(string(data))
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			dbp = ts
		case strings.HasSuffix(ent.Name(), ".nt"):
			ts, err := ntriples.Unmarshal(string(data))
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			raw = append(raw, ts...)
		}
	}
	if len(ontTriples) > 0 {
		if _, err := w.LoadOntology(ontology.FromTriples("loaded", ontTriples)); err != nil {
			return err
		}
	}
	if len(exports) > 0 {
		if _, err := w.LoadExports(exports); err != nil {
			return err
		}
	}
	if len(raw) > 0 {
		w.LoadTriples(raw)
	}
	if len(dbp) > 0 {
		w.IntegrateDBpedia(dbp)
	}
	return nil
}
