package core

import (
	"testing"

	"mdw/internal/landscape"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/rescache"
	"mdw/internal/staging"
)

// listing1 is the paper's Listing 1 SEM_MATCH call (classify objects
// named "customer" by ontology class), the query the results cache is
// sized for: read-heavy, repeated verbatim by the frontend.
const listing1Fragment = `SEM_MATCH(
	{?object rdf:type ?c .
	 ?c rdfs:label ?class .
	 ?object dm:hasName ?term},
	SEM_MODELS('DWH_CURR'),
	SEM_RULEBASES('OWLPRIME'),
	SEM_ALIASES(SEM_ALIAS('dm', '`

func listing1() string {
	return listing1Fragment + rdf.DMNS + `')), null)`
}

func benchWarehouse(b *testing.B) *Warehouse {
	b.Helper()
	w := New("")
	if _, err := w.LoadOntology(ontology.DWH()); err != nil {
		b.Fatal(err)
	}
	if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
		b.Fatal(err)
	}
	if _, err := w.Reindex(); err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkListing1Repeat measures the steady-state cost of re-running
// Listing 1 against an unchanged warehouse, cache on vs off. With the
// cache on, every iteration after the first is a fingerprint+generation
// key lookup; with it off, every iteration plans and executes.
func BenchmarkListing1Repeat(b *testing.B) {
	for _, mode := range []string{"uncached", "cached"} {
		b.Run(mode, func(b *testing.B) {
			if mode == "cached" {
				rescache.Enable(0, 0)
			} else {
				rescache.Disable()
			}
			defer rescache.Enable(0, 0)
			w := benchWarehouse(b)
			call := listing1()
			if _, err := w.SemMatch(call); err != nil { // warm: plan + (maybe) cache fill
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.SemMatch(call); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkListing1Invalidated is the worst case for the cache: a
// mutation between every repetition, so each execution misses and
// re-caches under the new generation. The delta against "uncached" above
// is the cache's overhead on a churning store.
func BenchmarkListing1Invalidated(b *testing.B) {
	rescache.Enable(0, 0)
	defer rescache.Enable(0, 0)
	w := benchWarehouse(b)
	call := listing1()
	if _, err := w.SemMatch(call); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.LoadTriples([]rdf.Triple{rdf.T(
			rdf.IRI("http://bench/churn"),
			rdf.IRI(rdf.MDWHasName),
			rdf.Integer(int64(i)))})
		if _, err := w.SemMatch(call); err != nil {
			b.Fatal(err)
		}
	}
}
