package core_test

import (
	"testing"
	"time"

	"mdw/internal/core"
	"mdw/internal/durable"
	"mdw/internal/landscape"
	"mdw/internal/staging"
)

// TestOpenDurableFullLifecycle drives a warehouse through load, query,
// release snapshot, and search across a close/reopen cycle — the
// operational story of `mdwd -data-dir`.
func TestOpenDurableFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := durable.Options{Dir: dir, Fsync: durable.FsyncNone}

	w, mgr, err := core.OpenDurable("", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Snapshot("release-1", time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	res, err := w.Query(`SELECT ?s WHERE { ?s ?p ?o } LIMIT 1`)
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("query before close: %v (%d rows)", err, len(res.Rows))
	}
	before := w.Stats()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	w2, mgr2, err := core.OpenDurable("", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	after := w2.Stats()
	if after.Triples != before.Triples || after.Derived != before.Derived {
		t.Errorf("recovered %d+%d triples, want %d+%d", after.Triples, after.Derived, before.Triples, before.Derived)
	}
	if !after.IndexCurrent {
		t.Error("entailment index not current after recovery")
	}
	if after.Versions != 1 {
		t.Errorf("recovered %d release versions, want 1 (snapshot metadata lost)", after.Versions)
	}
	vs := w2.History().Versions()
	if len(vs) != 1 || vs[0].Tag != "release-1" {
		t.Errorf("recovered versions %+v, want the release-1 snapshot", vs)
	}
	res, err = w2.Query(`SELECT ?s WHERE { ?s ?p ?o } LIMIT 1`)
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("query after reopen: %v", err)
	}
}
