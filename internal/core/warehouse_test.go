package core

import (
	"strings"
	"testing"
	"time"

	"mdw/internal/dbpedia"
	"mdw/internal/landscape"
	"mdw/internal/lineage"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/search"
	"mdw/internal/staging"
)

func buildWarehouse(t *testing.T) *Warehouse {
	t.Helper()
	w := New("")
	if _, err := w.LoadOntology(ontology.DWH()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDefaultModelName(t *testing.T) {
	w := New("")
	if w.Model() != "DWH_CURR" {
		t.Errorf("model = %q", w.Model())
	}
	if New("other").Model() != "other" {
		t.Error("explicit model name ignored")
	}
}

func TestLoadAndStats(t *testing.T) {
	w := buildWarehouse(t)
	s := w.Stats()
	if s.Triples == 0 || s.Nodes == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if _, err := w.Reindex(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Derived == 0 {
		t.Error("no derived triples after reindex")
	}
}

func TestLoadOntologyRejectsInvalid(t *testing.T) {
	w := New("")
	o := ontology.New("bad")
	o.AddClass("http://x/A", "A", "http://x/B")
	o.AddClass("http://x/B", "B", "http://x/A")
	if _, err := w.LoadOntology(o); err == nil {
		t.Error("cyclic ontology accepted")
	}
}

func TestEndToEndSearch(t *testing.T) {
	w := buildWarehouse(t)
	res, err := w.Search("customer", search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances == 0 {
		t.Fatal("no search hits")
	}
}

func TestEndToEndLineage(t *testing.T) {
	w := buildWarehouse(t)
	paths := landscape.Figure3Paths()
	item := staging.InstanceIRI(strings.Split(paths[3], "/")...)
	g, err := w.Lineage(item, lineage.Backward, lineage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 4 {
		t.Errorf("lineage nodes = %d", len(g.Nodes))
	}
	srcs, err := w.Sources(item)
	if err != nil || len(srcs) != 1 {
		t.Errorf("sources = %v, %v", srcs, err)
	}
	origin := staging.InstanceIRI(strings.Split(paths[0], "/")...)
	impact, err := w.Impact(origin)
	if err != nil || len(impact) != 3 {
		t.Errorf("impact = %v, %v", impact, err)
	}
	if w.LineageService() == nil {
		t.Error("LineageService nil")
	}
}

func TestQueryWithAndWithoutIndex(t *testing.T) {
	w := buildWarehouse(t)
	q := `PREFIX dm: <` + rdf.DMNS + `> SELECT ?x WHERE { ?x a dm:Attribute }`
	withIdx, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	factsOnly, err := w.QueryFacts(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(withIdx.Rows) == 0 {
		t.Error("indexed query found nothing")
	}
	if len(factsOnly.Rows) != 0 {
		t.Errorf("facts-only query saw %d inferred rows", len(factsOnly.Rows))
	}
	if _, err := w.Query("NOT SPARQL"); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := w.QueryFacts("NOT SPARQL"); err == nil {
		t.Error("bad facts query accepted")
	}
}

func TestSemMatchListing(t *testing.T) {
	w := buildWarehouse(t)
	res, err := w.SemMatch(`SEM_MATCH(
		{?object rdf:type dm:Application1_View_Column .
		 ?object dm:hasName ?term},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(SEM_ALIAS('dm', '` + rdf.DMNS + `')),
		null)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["term"].Value != "customer_id" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSnapshotAndHistory(t *testing.T) {
	w := buildWarehouse(t)
	v1, err := w.Snapshot("2009-R1", time.Date(2009, 3, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	w.LoadTriples([]rdf.Triple{
		rdf.T(rdf.IRI(rdf.InstNS+"new_item"), rdf.Type, rdf.IRI(rdf.DMNS+"Table")),
	})
	v2, err := w.Snapshot("2009-R2", time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Triples != v1.Triples+1 {
		t.Errorf("v2 = %d triples, v1 = %d", v2.Triples, v1.Triples)
	}
	d, err := w.History().DiffVersions(1, 2)
	if err != nil || len(d.Added) != 1 {
		t.Errorf("diff = %+v, %v", d, err)
	}
	if w.Stats().Versions != 2 {
		t.Error("version count wrong")
	}
}

func TestIntegrateDBpediaEnablesSemanticSearch(t *testing.T) {
	w := buildWarehouse(t)
	if w.Thesaurus() != nil {
		t.Error("thesaurus should be nil before integration")
	}
	n := w.IntegrateDBpedia(dbpedia.Banking())
	if n == 0 {
		t.Fatal("nothing integrated")
	}
	if w.Thesaurus() == nil {
		t.Fatal("thesaurus missing after integration")
	}
	res, err := w.Search("client", search.Options{Semantic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expanded) < 2 {
		t.Errorf("expanded = %v", res.Expanded)
	}
}

func TestCensusAndValidate(t *testing.T) {
	w := buildWarehouse(t)
	cs := w.Census()
	if cs.Nodes[0] < 0 || cs.Total == 0 {
		t.Error("census empty")
	}
	// The curated fixture should produce no untyped instances.
	for _, issue := range w.Validate() {
		if issue.Code == "untyped-instance" {
			t.Errorf("unexpected issue: %v", issue)
		}
	}
}

func TestLoadInvalidatesIndex(t *testing.T) {
	w := buildWarehouse(t)
	if _, err := w.Reindex(); err != nil {
		t.Fatal(err)
	}
	// A new subclass plus instance loaded AFTER indexing must still be
	// visible to Query (the facade drops the stale index).
	w.LoadTriples([]rdf.Triple{
		rdf.T(rdf.IRI(rdf.DMNS+"Fresh"), rdf.SubClassOf, rdf.IRI(rdf.DMNS+"Attribute")),
		rdf.T(rdf.IRI(rdf.InstNS+"fresh1"), rdf.Type, rdf.IRI(rdf.DMNS+"Fresh")),
	})
	res, err := w.Query(`PREFIX dm: <` + rdf.DMNS + `> PREFIX inst: <` + rdf.InstNS + `>
		ASK { inst:fresh1 a dm:Attribute }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ask {
		t.Error("stale index served after load")
	}
}

func TestWarehouseCloneModel(t *testing.T) {
	w := buildWarehouse(t)
	n, err := w.CloneModel("", "SANDBOX")
	if err != nil {
		t.Fatal(err)
	}
	if n != w.Stats().Triples {
		t.Errorf("clone has %d triples, base has %d", n, w.Stats().Triples)
	}
	// Fresh generation: clone and source must never alias.
	if w.Store().Generation("SANDBOX") == w.Store().Generation(w.Model()) {
		t.Error("clone generation aliases the base model")
	}
	// Duplicate destination and unknown source are errors.
	if _, err := w.CloneModel("", "SANDBOX"); err == nil {
		t.Error("duplicate dst accepted")
	}
	if _, err := w.CloneModel("no-such-model", "OTHER"); err == nil {
		t.Error("unknown src accepted")
	}
	// The clone diverges independently of the base.
	w.Store().Add("SANDBOX", rdf.T(rdf.IRI("http://x/s"), rdf.IRI(rdf.MDWHasName), rdf.Literal("only-in-clone")))
	if w.Store().Len("SANDBOX") != n+1 || w.Stats().Triples != n {
		t.Errorf("clone mutation leaked: clone=%d base=%d", w.Store().Len("SANDBOX"), w.Stats().Triples)
	}
}
