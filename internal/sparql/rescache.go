package sparql

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"time"

	"mdw/internal/obs"
	"mdw/internal/store"
)

// Results caching: before planning, Exec consults the process-wide
// rescache keyed by (fingerprint, query text, sorted per-model
// generations of the source). Any mutation bumps a model generation, so
// a stale key simply never matches again — invalidation is implicit.
//
// The fingerprint alone cannot be the key (it collapses constants, so
// "everything about dwh:Client" and "... dwh:Branch" share one), which
// is why the raw text rides along; the fingerprint stays in the key so
// the statement table and the cache agree on statement identity.

// resultsCacheable reports whether the query may be served from / stored
// into the results cache. SELECT and ASK results are cacheable when the
// query is deterministic: LIMIT/OFFSET without a full ORDER BY may
// return any valid subset, so those are bypassed rather than pinned to
// whichever subset ran first. Hand-constructed queries (no source text)
// have no reliable identity and are bypassed too.
func (q *Query) resultsCacheable() bool {
	if q.Kind != SelectQuery && q.Kind != AskQuery {
		return false
	}
	if q.Text == "" {
		return false
	}
	if (q.Limit >= 0 || q.Offset > 0) && len(q.OrderBy) == 0 {
		return false
	}
	return true
}

// sourceGenKey renders the (model instance, generation) pairs of src in
// sorted order — the part of the cache key that ties an entry to the
// exact store state it was computed from. The model UID (unique per
// construction, so it distinguishes recreated models, reinstalled
// indexes, and separate Store instances) pairs with the generation
// (unique per mutation within a UID); together they can never alias two
// different states. Only Model/View sources (everything the warehouse
// executes against) are keyed; exotic Source implementations are never
// cached.
func sourceGenKey(src store.Source) (string, bool) {
	var models []*store.Model
	switch s := src.(type) {
	case *store.Model:
		models = []*store.Model{s}
	case *store.View:
		models = s.Models()
	default:
		return "", false
	}
	parts := make([]string, len(models))
	for i, m := range models {
		parts[i] = m.Name() + "@" + strconv.FormatUint(m.UID(), 10) +
			":" + strconv.FormatUint(m.Gen(), 10)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|"), true
}

// resultCacheKey assembles the full cache key from the query identity
// and the source's generation vector.
func (q *Query) resultCacheKey(genKey string) string {
	return q.Fingerprint() + "\x00" + q.Text + "\x00" + genKey
}

// estimateResultSize approximates the retained footprint of a result for
// the cache's byte accounting: string payloads plus a fixed per-binding
// overhead for map and header costs. Exactness is not the point —
// keeping the cache's memory roughly bounded is.
func estimateResultSize(res *Result) int64 {
	const overhead = 48 // map entry + term header, approximate
	n := int64(64)
	for _, v := range res.Vars {
		n += int64(len(v)) + 16
	}
	for _, row := range res.Rows {
		n += 48 // map header
		for k, t := range row {
			n += int64(len(k)+len(t.Value)+len(t.Datatype)+len(t.Lang)) + overhead
		}
	}
	return n
}

// serveCachedResult emits the observability evidence of a cache hit —
// an exec span labelled rescache=hit, the statement-table record, row
// counters — and returns a shallow copy of the cached result (callers
// own the Result struct; the row data is shared and treated as
// immutable by every read path).
func (q *Query) serveCachedResult(ctx context.Context, res *Result, d time.Duration) (*Result, error) {
	sp, _ := obs.ChildCtx(ctx, "sparql exec")
	rows := len(res.Rows)
	if q.Kind == AskQuery {
		rows = 1
	}
	sp.SetLabel("rescache", "hit").SetLabel("rows", strconv.Itoa(rows)).Finish()
	obsRows.Add(int64(rows))
	obs.DefaultStatements().Record(q.Fingerprint(), q.Text, rows, d, nil)
	out := *res
	return &out, nil
}
