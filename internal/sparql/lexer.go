package sparql

import (
	"fmt"
	"strings"

	"mdw/internal/rdf"
)

type tokKind int

const (
	tkEOF     tokKind = iota
	tkKeyword         // SELECT, WHERE, FILTER, ... (uppercased)
	tkVar             // ?x or $x (text holds the bare name)
	tkIRI             // <...> (text holds the IRI)
	tkPName           // prefix:local or prefix: (text verbatim)
	tkLiteral         // "..." (text holds the unescaped lexical form)
	tkInteger         // 123
	tkLBrace
	tkRBrace
	tkLParen
	tkRParen
	tkDot
	tkSemi
	tkComma
	tkStar
	tkPlus
	tkQuestion
	tkSlash
	tkPipe
	tkCaret
	tkBang
	tkEq
	tkNeq
	tkLt
	tkGt
	tkLe
	tkGe
	tkAnd // &&
	tkOr  // ||
	tkA   // the keyword 'a'
	tkLangTag
	tkDTSep // ^^
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "WHERE": true, "FILTER": true,
	"OPTIONAL": true, "UNION": true, "PREFIX": true, "DISTINCT": true,
	"GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "AS": true,
	"COUNT": true, "REGEX": true, "BOUND": true, "STR": true,
	"LCASE": true, "UCASE": true, "CONTAINS": true, "STRSTARTS": true,
	"STRENDS": true, "TRUE": true, "FALSE": true,
	"EXISTS": true, "NOT": true, "CONSTRUCT": true,
}

type lexer struct {
	in   string
	pos  int
	toks []token
}

func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	if err := l.run(); err != nil {
		return nil, err
	}
	l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) run() error {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		start := l.pos
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
		case c == '{':
			l.emit(tkLBrace, "{", start)
			l.pos++
		case c == '}':
			l.emit(tkRBrace, "}", start)
			l.pos++
		case c == '(':
			l.emit(tkLParen, "(", start)
			l.pos++
		case c == ')':
			l.emit(tkRParen, ")", start)
			l.pos++
		case c == '.':
			l.emit(tkDot, ".", start)
			l.pos++
		case c == ';':
			l.emit(tkSemi, ";", start)
			l.pos++
		case c == ',':
			l.emit(tkComma, ",", start)
			l.pos++
		case c == '*':
			l.emit(tkStar, "*", start)
			l.pos++
		case c == '+':
			l.emit(tkPlus, "+", start)
			l.pos++
		case c == '/':
			l.emit(tkSlash, "/", start)
			l.pos++
		case c == '^':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '^' {
				l.emit(tkDTSep, "^^", start)
				l.pos += 2
			} else {
				l.emit(tkCaret, "^", start)
				l.pos++
			}
		case c == '|':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '|' {
				l.emit(tkOr, "||", start)
				l.pos += 2
			} else {
				l.emit(tkPipe, "|", start)
				l.pos++
			}
		case c == '&':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '&' {
				l.emit(tkAnd, "&&", start)
				l.pos += 2
			} else {
				return fmt.Errorf("sparql: offset %d: stray '&'", start)
			}
		case c == '!':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
				l.emit(tkNeq, "!=", start)
				l.pos += 2
			} else {
				l.emit(tkBang, "!", start)
				l.pos++
			}
		case c == '=':
			l.emit(tkEq, "=", start)
			l.pos++
		case c == '<':
			// Either an IRI or a comparison operator. An IRI never
			// contains whitespace and must close with '>'.
			if iri, n, ok := scanIRI(l.in[l.pos:]); ok {
				l.emit(tkIRI, iri, start)
				l.pos += n
			} else if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
				l.emit(tkLe, "<=", start)
				l.pos += 2
			} else {
				l.emit(tkLt, "<", start)
				l.pos++
			}
		case c == '>':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
				l.emit(tkGe, ">=", start)
				l.pos += 2
			} else {
				l.emit(tkGt, ">", start)
				l.pos++
			}
		case c == '?' || c == '$':
			j := l.pos + 1
			for j < len(l.in) && isNameChar(l.in[j]) {
				j++
			}
			if j == l.pos+1 {
				if c == '$' {
					// '$' introduces a variable only; it is not an
					// alias for the '?' path modifier.
					return fmt.Errorf("sparql: offset %d: '$' must be followed by a variable name", start)
				}
				// Bare '?' — the optional path modifier.
				l.emit(tkQuestion, "?", start)
				l.pos++
			} else {
				l.emit(tkVar, l.in[l.pos+1:j], start)
				l.pos = j
			}
		case c == '"':
			j := l.pos + 1
			for j < len(l.in) {
				if l.in[j] == '\\' {
					j += 2
					continue
				}
				if l.in[j] == '"' {
					break
				}
				j++
			}
			if j >= len(l.in) {
				return fmt.Errorf("sparql: offset %d: unterminated string literal", start)
			}
			l.emit(tkLiteral, rdf.UnescapeLiteral(l.in[l.pos+1:j]), start)
			l.pos = j + 1
		case c == '\'':
			j := l.pos + 1
			for j < len(l.in) {
				if l.in[j] == '\\' {
					j += 2
					continue
				}
				if l.in[j] == '\'' {
					break
				}
				j++
			}
			if j >= len(l.in) {
				return fmt.Errorf("sparql: offset %d: unterminated string literal", start)
			}
			l.emit(tkLiteral, rdf.UnescapeLiteral(l.in[l.pos+1:j]), start)
			l.pos = j + 1
		case c == '@':
			j := l.pos + 1
			for j < len(l.in) && (isNameChar(l.in[j]) || l.in[j] == '-') {
				j++
			}
			l.emit(tkLangTag, l.in[l.pos+1:j], start)
			l.pos = j
		case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9'):
			j := l.pos + 1
			for j < len(l.in) && l.in[j] >= '0' && l.in[j] <= '9' {
				j++
			}
			l.emit(tkInteger, l.in[l.pos:j], start)
			l.pos = j
		case isNameStart(c):
			j := l.pos
			hasColon := false
			for j < len(l.in) && (isNameChar(l.in[j]) || l.in[j] == ':') {
				if l.in[j] == ':' {
					hasColon = true
				}
				j++
			}
			word := l.in[l.pos:j]
			switch {
			case hasColon:
				l.emit(tkPName, word, start)
			case word == "a":
				l.emit(tkA, word, start)
			case keywords[strings.ToUpper(word)]:
				l.emit(tkKeyword, strings.ToUpper(word), start)
			default:
				return fmt.Errorf("sparql: offset %d: unexpected identifier %q", start, word)
			}
			l.pos = j
		default:
			return fmt.Errorf("sparql: offset %d: unexpected character %q", start, c)
		}
	}
	return nil
}

// scanIRI attempts to read "<...>" at the start of s; it fails when the
// content contains whitespace (which means '<' was a comparison).
func scanIRI(s string) (iri string, n int, ok bool) {
	end := strings.IndexByte(s, '>')
	if end < 0 {
		return "", 0, false
	}
	body := s[1:end]
	if strings.ContainsAny(body, " \t\n\r<") {
		return "", 0, false
	}
	return body, end + 1, true
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9'
}
