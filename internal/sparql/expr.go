package sparql

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"mdw/internal/rdf"
)

// Binding maps variable names to bound terms.
type Binding map[string]rdf.Term

// Expr is a filter expression evaluated against one binding.
type Expr interface {
	// Eval returns the expression value. An unbound variable yields an
	// error, which FILTER treats as false (SPARQL error semantics).
	Eval(b Binding) (Value, error)
}

// Value is an expression result: a term or a plain boolean.
type Value struct {
	Term   rdf.Term
	Bool   bool
	IsBool bool
}

func boolVal(v bool) Value     { return Value{Bool: v, IsBool: true} }
func termVal(t rdf.Term) Value { return Value{Term: t} }

// Truth converts the value to its effective boolean value.
func (v Value) Truth() (bool, error) {
	if v.IsBool {
		return v.Bool, nil
	}
	t := v.Term
	if t.IsLiteral() {
		switch t.Datatype {
		case rdf.XSDBoolean:
			return t.Value == "true" || t.Value == "1", nil
		case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
			f, err := strconv.ParseFloat(t.Value, 64)
			if err != nil {
				return false, fmt.Errorf("sparql: not a number: %q", t.Value)
			}
			return f != 0, nil
		default:
			return t.Value != "", nil
		}
	}
	return false, fmt.Errorf("sparql: no effective boolean value for %s", t)
}

// varExpr references a variable.
type varExpr struct{ name string }

func (e varExpr) Eval(b Binding) (Value, error) {
	t, ok := b[e.name]
	if !ok {
		return Value{}, fmt.Errorf("sparql: unbound variable ?%s", e.name)
	}
	return termVal(t), nil
}

// constExpr is a literal/IRI constant.
type constExpr struct{ term rdf.Term }

func (e constExpr) Eval(Binding) (Value, error) { return termVal(e.term), nil }

// notExpr negates its operand.
type notExpr struct{ e Expr }

func (e notExpr) Eval(b Binding) (Value, error) {
	v, err := e.e.Eval(b)
	if err != nil {
		return Value{}, err
	}
	t, err := v.Truth()
	if err != nil {
		return Value{}, err
	}
	return boolVal(!t), nil
}

// andExpr / orExpr implement SPARQL's three-valued logic: an error on one
// side can still produce a definite result from the other.
type andExpr struct{ l, r Expr }

func (e andExpr) Eval(b Binding) (Value, error) {
	lv, lerr := evalTruth(e.l, b)
	rv, rerr := evalTruth(e.r, b)
	switch {
	case lerr == nil && rerr == nil:
		return boolVal(lv && rv), nil
	case lerr == nil && !lv:
		return boolVal(false), nil
	case rerr == nil && !rv:
		return boolVal(false), nil
	case lerr != nil:
		return Value{}, lerr
	default:
		return Value{}, rerr
	}
}

type orExpr struct{ l, r Expr }

func (e orExpr) Eval(b Binding) (Value, error) {
	lv, lerr := evalTruth(e.l, b)
	rv, rerr := evalTruth(e.r, b)
	switch {
	case lerr == nil && rerr == nil:
		return boolVal(lv || rv), nil
	case lerr == nil && lv:
		return boolVal(true), nil
	case rerr == nil && rv:
		return boolVal(true), nil
	case lerr != nil:
		return Value{}, lerr
	default:
		return Value{}, rerr
	}
}

func evalTruth(e Expr, b Binding) (bool, error) {
	v, err := e.Eval(b)
	if err != nil {
		return false, err
	}
	return v.Truth()
}

// cmpExpr is a comparison: = != < <= > >=.
type cmpExpr struct {
	op   string
	l, r Expr
}

func (e cmpExpr) Eval(b Binding) (Value, error) {
	lv, err := e.l.Eval(b)
	if err != nil {
		return Value{}, err
	}
	rv, err := e.r.Eval(b)
	if err != nil {
		return Value{}, err
	}
	if lv.IsBool || rv.IsBool {
		lt, err1 := lv.Truth()
		rt, err2 := rv.Truth()
		if err1 != nil || err2 != nil {
			return Value{}, fmt.Errorf("sparql: cannot compare booleans with non-booleans")
		}
		switch e.op {
		case "=":
			return boolVal(lt == rt), nil
		case "!=":
			return boolVal(lt != rt), nil
		default:
			return Value{}, fmt.Errorf("sparql: operator %s undefined for booleans", e.op)
		}
	}
	c, err := compareTerms(lv.Term, rv.Term)
	if err != nil {
		if e.op == "=" {
			return boolVal(lv.Term == rv.Term), nil
		}
		if e.op == "!=" {
			return boolVal(lv.Term != rv.Term), nil
		}
		return Value{}, err
	}
	switch e.op {
	case "=":
		return boolVal(c == 0), nil
	case "!=":
		return boolVal(c != 0), nil
	case "<":
		return boolVal(c < 0), nil
	case "<=":
		return boolVal(c <= 0), nil
	case ">":
		return boolVal(c > 0), nil
	case ">=":
		return boolVal(c >= 0), nil
	default:
		return Value{}, fmt.Errorf("sparql: unknown operator %q", e.op)
	}
}

// compareTerms orders two terms: numerically when both are numeric
// literals, lexically for other literals, by IRI for IRIs.
func compareTerms(a, b rdf.Term) (int, error) {
	if isNumeric(a) && isNumeric(b) {
		fa, _ := strconv.ParseFloat(a.Value, 64)
		fb, _ := strconv.ParseFloat(b.Value, 64)
		switch {
		case fa < fb:
			return -1, nil
		case fa > fb:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("sparql: type mismatch comparing %s and %s", a, b)
	}
	return strings.Compare(a.Value, b.Value), nil
}

func isNumeric(t rdf.Term) bool {
	if !t.IsLiteral() {
		return false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		return true
	}
	return false
}

// regexExpr implements REGEX(text, pattern[, flags]); the pattern and
// flags are compile-time constants in the supported subset, so the regexp
// compiles once at parse time.
type regexExpr struct {
	text Expr
	re   *regexp.Regexp
}

func (e regexExpr) Eval(b Binding) (Value, error) {
	v, err := e.text.Eval(b)
	if err != nil {
		return Value{}, err
	}
	return boolVal(e.re.MatchString(stringValue(v.Term))), nil
}

// boundExpr implements BOUND(?v).
type boundExpr struct{ name string }

func (e boundExpr) Eval(b Binding) (Value, error) {
	_, ok := b[e.name]
	return boolVal(ok), nil
}

// strFuncExpr implements the unary string builtins STR, LCASE, UCASE.
type strFuncExpr struct {
	fn  string
	arg Expr
}

func (e strFuncExpr) Eval(b Binding) (Value, error) {
	v, err := e.arg.Eval(b)
	if err != nil {
		return Value{}, err
	}
	s := stringValue(v.Term)
	switch e.fn {
	case "STR":
		return termVal(rdf.Literal(s)), nil
	case "LCASE":
		return termVal(rdf.Literal(strings.ToLower(s))), nil
	case "UCASE":
		return termVal(rdf.Literal(strings.ToUpper(s))), nil
	default:
		return Value{}, fmt.Errorf("sparql: unknown function %q", e.fn)
	}
}

// binStrFuncExpr implements CONTAINS, STRSTARTS, STRENDS.
type binStrFuncExpr struct {
	fn   string
	a, b Expr
}

func (e binStrFuncExpr) Eval(bind Binding) (Value, error) {
	av, err := e.a.Eval(bind)
	if err != nil {
		return Value{}, err
	}
	bv, err := e.b.Eval(bind)
	if err != nil {
		return Value{}, err
	}
	s, sub := stringValue(av.Term), stringValue(bv.Term)
	switch e.fn {
	case "CONTAINS":
		return boolVal(strings.Contains(s, sub)), nil
	case "STRSTARTS":
		return boolVal(strings.HasPrefix(s, sub)), nil
	case "STRENDS":
		return boolVal(strings.HasSuffix(s, sub)), nil
	default:
		return Value{}, fmt.Errorf("sparql: unknown function %q", e.fn)
	}
}

func stringValue(t rdf.Term) string { return t.Value }

// ---- expression parsing (continues the qparser) ----

// filterExpr parses the constraint of a FILTER clause: either a
// parenthesized expression or a builtin call.
func (p *qparser) filterExpr() (Expr, error) {
	return p.orExpr()
}

func (p *qparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tkOr {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *qparser) andExpr() (Expr, error) {
	l, err := p.cmpOperand()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tkAnd {
		p.next()
		r, err := p.cmpOperand()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *qparser) cmpOperand() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.peek().kind {
	case tkEq:
		op = "="
	case tkNeq:
		op = "!="
	case tkLt:
		op = "<"
	case tkLe:
		op = "<="
	case tkGt:
		op = ">"
	case tkGe:
		op = ">="
	default:
		return l, nil
	}
	p.next()
	r, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	return cmpExpr{op: op, l: l, r: r}, nil
}

func (p *qparser) unaryExpr() (Expr, error) {
	if p.peek().kind == tkBang {
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return notExpr{e}, nil
	}
	return p.primaryExpr()
}

func (p *qparser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkLParen:
		p.next()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tkVar:
		p.next()
		return varExpr{t.text}, nil
	case tkInteger:
		p.next()
		return constExpr{rdf.TypedLiteral(t.text, rdf.XSDInteger)}, nil
	case tkLiteral:
		p.next()
		lex := t.text
		if p.peek().kind == tkLangTag {
			return constExpr{rdf.LangLiteral(lex, p.next().text)}, nil
		}
		return constExpr{rdf.Literal(lex)}, nil
	case tkIRI:
		p.next()
		return constExpr{rdf.IRI(t.text)}, nil
	case tkPName:
		p.next()
		iri, ok := rdf.ExpandQName(t.text, p.prefixes)
		if !ok {
			return nil, p.errf("unknown prefix in %q", t.text)
		}
		return constExpr{rdf.IRI(iri)}, nil
	case tkKeyword:
		return p.builtinCall()
	default:
		return nil, p.errf("expected expression, got %q", t.text)
	}
}

func (p *qparser) builtinCall() (Expr, error) {
	kw := p.next().text
	switch kw {
	case "TRUE":
		return constExpr{rdf.TypedLiteral("true", rdf.XSDBoolean)}, nil
	case "FALSE":
		return constExpr{rdf.TypedLiteral("false", rdf.XSDBoolean)}, nil
	}
	if _, err := p.expect(tkLParen, "'(' after builtin"); err != nil {
		return nil, err
	}
	switch kw {
	case "REGEX":
		text, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkComma, "','"); err != nil {
			return nil, err
		}
		pat, err := p.expect(tkLiteral, "pattern literal")
		if err != nil {
			return nil, err
		}
		flags := ""
		if p.peek().kind == tkComma {
			p.next()
			f, err := p.expect(tkLiteral, "flags literal")
			if err != nil {
				return nil, err
			}
			flags = f.text
		}
		expr := pat.text
		if strings.Contains(flags, "i") {
			expr = "(?i)" + expr
		}
		re, err := regexp.Compile(expr)
		if err != nil {
			return nil, p.errf("invalid regex %q: %v", pat.text, err)
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return regexExpr{text: text, re: re}, nil
	case "BOUND":
		v, err := p.expect(tkVar, "variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return boundExpr{v.text}, nil
	case "STR", "LCASE", "UCASE":
		arg, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return strFuncExpr{fn: kw, arg: arg}, nil
	case "CONTAINS", "STRSTARTS", "STRENDS":
		a, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkComma, "','"); err != nil {
			return nil, err
		}
		b, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return binStrFuncExpr{fn: kw, a: a, b: b}, nil
	default:
		return nil, p.errf("unsupported builtin %q", kw)
	}
}
