package sparql

import (
	"testing"

	"mdw/internal/rdf"
)

func TestFilterNotExists(t *testing.T) {
	st, src := fixture()
	// Terminal mappings: targets with no outgoing isMappedTo edge.
	q := MustParse(`PREFIX dt: <` + rdf.DTNS + `>
		SELECT ?t WHERE {
			?s dt:isMappedTo ?t .
			FILTER NOT EXISTS { ?t dt:isMappedTo ?next }
		}`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || rdf.LocalName(res.Rows[0]["t"].Value) != "customer_id" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFilterExists(t *testing.T) {
	st, src := fixture()
	// Items that both have a name and participate in a mapping.
	q := MustParse(`PREFIX dm: <` + rdf.DMNS + `> PREFIX dt: <` + rdf.DTNS + `>
		SELECT ?x WHERE {
			?x dm:hasName ?n .
			FILTER EXISTS { ?x dt:isMappedTo ?y }
		}`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	// client_information_id and partner_id map onward; customer_id does
	// not.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNotExistsUsesOuterBindings(t *testing.T) {
	st, src := fixture()
	// NOT EXISTS with a constant that never matches keeps everything.
	q := MustParse(`PREFIX dm: <` + rdf.DMNS + `>
		SELECT ?x WHERE {
			?x dm:hasName ?n .
			FILTER NOT EXISTS { ?x dm:hasName "no_such_name" }
		}`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// And with a matching constant it removes exactly that binding.
	q = MustParse(`PREFIX dm: <` + rdf.DMNS + `>
		SELECT ?x WHERE {
			?x dm:hasName ?n .
			FILTER NOT EXISTS { ?x dm:hasName "partner_id" }
		}`)
	res, err = q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExistsParseErrors(t *testing.T) {
	bad := []string{
		`SELECT ?x WHERE { ?x <p> ?y . FILTER NOT { ?x <p> ?z } }`,
		`SELECT ?x WHERE { ?x <p> ?y . FILTER EXISTS ?z }`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}
