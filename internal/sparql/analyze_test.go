package sparql

import (
	"strings"
	"testing"

	"mdw/internal/obs"
	"mdw/internal/rdf"
	"mdw/internal/rescache"
	"mdw/internal/store"
)

// analyzeFixture: a small graph with enough shape variety (fan-out on p,
// a type edge, names) that multi-operator queries produce non-trivial
// per-operator counts.
func analyzeFixture(t *testing.T) (*store.Store, store.Source) {
	t.Helper()
	st := store.New()
	var ts []rdf.Triple
	for i := 0; i < 6; i++ {
		s := rdf.IRI(iriN("s", i))
		ts = append(ts, rdf.T(s, rdf.Type, rdf.IRI("http://x/Table")))
		ts = append(ts, rdf.T(s, rdf.HasName, rdf.Literal("n"+string(rune('a'+i%2)))))
		if i > 0 {
			ts = append(ts, rdf.T(rdf.IRI(iriN("s", i-1)), rdf.IsMappedTo, s))
		}
	}
	st.AddAll("m", ts)
	return st, st.ViewOf("m")
}

func iriN(prefix string, i int) string {
	return "http://x/" + prefix + string(rune('0'+i))
}

// countOps walks an ExecStats tree counting operator nodes (the synthetic
// root excluded).
func countOps(ops []*OpStats) int {
	n := 0
	for _, op := range ops {
		n += 1 + countOps(op.Children)
	}
	return n
}

// TestAnalyzeTreeShape checks that the stats tree mirrors the plan: one
// node per assigned stat slot, patterns carrying estimates, and sane
// query-wide accounting.
func TestAnalyzeTreeShape(t *testing.T) {
	st, src := analyzeFixture(t)
	q, err := Parse(`SELECT ?s ?n WHERE {
		?s <` + rdf.RDFType + `> <http://x/Table> .
		?s <` + rdf.MDWHasName + `> ?n .
		OPTIONAL { ?s <` + rdf.MDWIsMappedTo + `> ?t }
		FILTER (?n != "zzz")
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p := q.Plan(src, st.Dict())
	res, stats, err := p.ExecAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || stats.Root == nil {
		t.Fatal("ExecAnalyze returned no stats tree")
	}
	if got := countOps(stats.Root.Children); got != p.nstats {
		t.Errorf("tree has %d operator nodes, plan assigned %d stat slots", got, p.nstats)
	}
	if stats.Rows != len(res.Rows) {
		t.Errorf("stats.Rows = %d, result has %d rows", stats.Rows, len(res.Rows))
	}
	if int64(stats.Root.Rows) != int64(len(res.Rows)) {
		t.Errorf("root Rows = %d, want %d", stats.Root.Rows, len(res.Rows))
	}
	if stats.Strategy != "serial" {
		t.Errorf("strategy = %q, want serial for an un-forced tiny plan", stats.Strategy)
	}
	if stats.RowsScanned == 0 {
		t.Error("RowsScanned = 0; pattern probes should have counted triples")
	}
	if stats.TermDecodes == 0 {
		t.Error("TermDecodes = 0; projecting ?s ?n must decode terms")
	}
	var kinds = map[string]int{}
	var walk func(ops []*OpStats)
	walk = func(ops []*OpStats) {
		for _, op := range ops {
			kinds[op.Op]++
			if op.Loops < 0 || op.Rows < 0 {
				t.Errorf("negative counters on %s %s", op.Op, op.Detail)
			}
			if op.Op == "pattern" {
				if op.Estimate < 0 {
					t.Errorf("pattern %q lost its estimate", op.Detail)
				}
				if op.Loops > 0 && op.Ratio < 1 {
					t.Errorf("pattern %q ran but Ratio = %v (< 1)", op.Detail, op.Ratio)
				}
			}
			walk(op.Children)
		}
	}
	walk(stats.Root.Children)
	if kinds["pattern"] != 3 {
		t.Errorf("tree has %d pattern nodes, want 3 (two BGP + one OPTIONAL)", kinds["pattern"])
	}
	if kinds["optional"] != 1 || kinds["filter"] != 1 {
		t.Errorf("tree kinds = %v, want one optional and one filter", kinds)
	}
}

// TestAnalyzeRendering checks the EXPLAIN ANALYZE text: per-operator
// estimated=/actual= annotations and the execution summary line.
func TestAnalyzeRendering(t *testing.T) {
	st, src := analyzeFixture(t)
	q, err := Parse(`SELECT ?s WHERE { ?s <` + rdf.RDFType + `> <http://x/Table> . ?s <` + rdf.MDWHasName + `> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := q.ExecAnalyze(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	out := stats.String()
	for _, want := range []string{"estimated=", "actual=", "loops=", "time=", "ACTUAL:", "scanned"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyzed rendering missing %q:\n%s", want, out)
		}
	}
	// Analyzed rendering must still be the EXPLAIN rendering underneath.
	if !strings.Contains(out, "PLAN") && !strings.Contains(out, "pattern") {
		t.Errorf("analyzed rendering does not resemble the plan:\n%s", out)
	}
}

// TestAnalyzeNeverExecuted: an operator starved by an empty upstream must
// render as never executed, not as a misestimation.
func TestAnalyzeNeverExecuted(t *testing.T) {
	st, src := analyzeFixture(t)
	q, err := Parse(`SELECT ?s WHERE { ?s <http://x/absent> ?o . ?s <` + rdf.MDWHasName + `> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := q.ExecAnalyze(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("expected empty result, got %d rows", len(res.Rows))
	}
	if !strings.Contains(stats.String(), "never executed") {
		t.Errorf("starved operator not marked never executed:\n%s", stats.String())
	}
	var walk func(ops []*OpStats)
	walk = func(ops []*OpStats) {
		for _, op := range ops {
			if op.Loops == 0 && op.Ratio != 0 {
				t.Errorf("never-executed %s %q got Ratio %v", op.Op, op.Detail, op.Ratio)
			}
			walk(op.Children)
		}
	}
	walk(stats.Root.Children)
}

// TestAnalyzeDistinctLimit covers the merger-side counters: streaming
// DISTINCT drops and the stopped-at-LIMIT marker.
func TestAnalyzeDistinctLimit(t *testing.T) {
	st, src := analyzeFixture(t)
	q, err := Parse(`SELECT DISTINCT ?n WHERE { ?s <` + rdf.MDWHasName + `> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := q.ExecAnalyze(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if stats.DistinctDropped == 0 {
		t.Errorf("six names over two values: expected DISTINCT drops, got %d", stats.DistinctDropped)
	}
	lq, err := Parse(`SELECT ?s WHERE { ?s <` + rdf.RDFType + `> <http://x/Table> } LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	res, lstats, err := lq.ExecAnalyze(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || !lstats.LimitStopped {
		t.Errorf("LIMIT 2 over 6 tables: rows=%d limitStopped=%v", len(res.Rows), lstats.LimitStopped)
	}
	if !strings.Contains(lstats.String(), "stopped at LIMIT") {
		t.Errorf("rendering missing LIMIT marker:\n%s", lstats.String())
	}
}

// TestMisestimateReporting checks the feedback channel end to end: with
// the threshold floored every analyzed execution reports (any ratio is
// >= 1), with it maxed none do.
func TestMisestimateReporting(t *testing.T) {
	defer SetMisestimateThreshold(DefaultMisestimateThreshold)
	log := obs.DefaultMisestimates()
	log.Reset()
	defer log.Reset()

	st, src := analyzeFixture(t)
	q, err := Parse(`SELECT ?s WHERE { ?s <` + rdf.RDFType + `> <http://x/Table> }`)
	if err != nil {
		t.Fatal(err)
	}

	SetMisestimateThreshold(1)
	before := obsMisestimate.Value()
	if _, stats, err := q.ExecAnalyze(src, st.Dict()); err != nil {
		t.Fatal(err)
	} else if stats.MaxRatio < 1 || stats.WorstOp == "" {
		t.Fatalf("analyzed execution found no worst operator: ratio=%v op=%q", stats.MaxRatio, stats.WorstOp)
	}
	if got := obsMisestimate.Value(); got != before+1 {
		t.Errorf("mdw_sparql_misestimate_total: got %d, want %d", got, before+1)
	}
	entries := log.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("misestimation log has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Fingerprint != q.Fingerprint() || e.WorstOp == "" || e.Count != 1 {
		t.Errorf("bad log entry: %+v", e)
	}
	if !strings.Contains(e.Plan, "actual=") {
		t.Errorf("log entry plan is not analyzed:\n%s", e.Plan)
	}

	// Re-report: the entry folds, count climbs.
	if _, _, err := q.ExecAnalyze(src, st.Dict()); err != nil {
		t.Fatal(err)
	}
	if got := log.Snapshot()[0].Count; got != 2 {
		t.Errorf("folded entry count = %d, want 2", got)
	}

	// A threshold nothing can reach stays silent.
	SetMisestimateThreshold(1e12)
	log.Reset()
	before = obsMisestimate.Value()
	if _, _, err := q.ExecAnalyze(src, st.Dict()); err != nil {
		t.Fatal(err)
	}
	if obsMisestimate.Value() != before || log.Len() != 0 {
		t.Error("misestimation reported despite unreachable threshold")
	}
}

// TestSlowQueryAutoAnalyze: a slow un-analyzed execution arms its
// fingerprint; the next execution collects stats and ships an analyzed
// plan to the slow log — exactly once.
func TestSlowQueryAutoAnalyze(t *testing.T) {
	// Every execution must actually execute (the results cache would
	// serve the repeat from memory and never hit the armed path).
	rescache.Disable()
	defer rescache.Enable(0, 0)
	sl := obs.DefaultSlowLog()
	prev := sl.Threshold()
	sl.SetThreshold(0) // log everything
	defer sl.SetThreshold(prev)

	st, src := analyzeFixture(t)
	q, err := Parse(`SELECT ?s WHERE { ?s <` + rdf.RDFType + `> <http://x/Table> . ?s <` + rdf.MDWIsMappedTo + `> ?t }`)
	if err != nil {
		t.Fatal(err)
	}
	fp := q.Fingerprint()
	defer disarmAnalyze(fp)

	if _, err := q.Exec(src, st.Dict()); err != nil {
		t.Fatal(err)
	}
	if e := sl.Entries()[0]; e.Analyzed {
		t.Fatal("first execution should not be analyzed")
	}
	if !analyzeArmed(fp) {
		t.Fatal("slow execution did not arm its fingerprint")
	}

	if _, err := q.Exec(src, st.Dict()); err != nil {
		t.Fatal(err)
	}
	e := sl.Entries()[0]
	if !e.Analyzed || !strings.Contains(e.Plan, "actual=") {
		t.Fatalf("second execution should carry an analyzed plan, got analyzed=%v plan:\n%s", e.Analyzed, e.Plan)
	}
	if analyzeArmed(fp) {
		t.Error("arming is one-shot; fingerprint still armed after analyzed run")
	}

	if _, err := q.Exec(src, st.Dict()); err != nil {
		t.Fatal(err)
	}
	// The third run re-arms (it was slow and un-analyzed again, by the
	// zero threshold) but must itself be un-analyzed.
	if e := sl.Entries()[0]; e.Analyzed {
		t.Error("third execution analyzed; arming leaked past one execution")
	}
}

// TestAnalyzeResourceAccounting: analyzed executions fold scanned/decoded
// counters into the statement table.
func TestAnalyzeResourceAccounting(t *testing.T) {
	st, src := analyzeFixture(t)
	q, err := Parse(`SELECT ?s ?n WHERE { ?s <` + rdf.MDWHasName + `> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := q.ExecAnalyze(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	var row *obs.StatementStat
	for _, s := range obs.DefaultStatements().Snapshot() {
		if s.Fingerprint == q.Fingerprint() {
			row = &s
			break
		}
	}
	if row == nil {
		t.Fatal("analyzed execution missing from statement table")
	}
	if row.AnalyzedCalls == 0 {
		t.Error("AnalyzedCalls = 0 after an analyzed execution")
	}
	if row.RowsScanned < stats.RowsScanned || row.TermDecodes < stats.TermDecodes {
		t.Errorf("statement resources (%d scanned, %d decodes) below this execution's (%d, %d)",
			row.RowsScanned, row.TermDecodes, stats.RowsScanned, stats.TermDecodes)
	}
}
