package sparql

import "strings"

// Fingerprint returns a normalized rendering of the query that
// identifies its shape rather than its exact text — the identity the
// statement-statistics table (obs.Statements, GET /api/statements,
// `mdw top`) aggregates under, in the spirit of pg_stat_statements.
//
// Normalization keeps what determines the access pattern and erases
// what varies per invocation:
//
//   - predicates and property paths are kept verbatim (QName-rendered);
//   - constant subjects and objects collapse to the placeholder '$',
//     so "everything about dwh:Client" and "everything about
//     dwh:Branch" share one row;
//   - literals in FILTER expressions — comparison operands, REGEX
//     patterns, CONTAINS/STRSTARTS/STRENDS needles — collapse to '$',
//     so the same search query over different terms aggregates;
//   - LIMIT and OFFSET values collapse to '$' (their presence is kept:
//     a bounded query plans differently from an unbounded one);
//   - structure — group nesting, OPTIONAL, UNION, EXISTS, projection,
//     DISTINCT, GROUP BY, ORDER BY — is kept, since structurally
//     different queries execute differently.
//
// The rendering is memoized on the Query: the AST is immutable after
// parsing, so repeated executions pay one atomic load.
func (q *Query) Fingerprint() string {
	if fp := q.cachedFp.Load(); fp != nil {
		return *fp
	}
	fp := fingerprintQuery(q)
	q.cachedFp.Store(&fp)
	return fp
}

func fingerprintQuery(q *Query) string {
	var b strings.Builder
	switch q.Kind {
	case AskQuery:
		b.WriteString("ASK")
	case ConstructQuery:
		b.WriteString("CONSTRUCT {")
		for i, t := range q.Template {
			if i > 0 {
				b.WriteString(" .")
			}
			b.WriteByte(' ')
			fpTriple(&b, &t)
		}
		b.WriteString(" }")
	default:
		b.WriteString("SELECT")
		if q.Distinct {
			b.WriteString(" DISTINCT")
		}
		if len(q.Select) == 0 {
			b.WriteString(" *")
		}
		for _, it := range q.Select {
			b.WriteByte(' ')
			if it.Agg == nil {
				b.WriteString("?" + it.Var)
				continue
			}
			b.WriteString("(" + it.Agg.Func + "(")
			if it.Agg.Distinct {
				b.WriteString("DISTINCT ")
			}
			if it.Agg.Var == "" {
				b.WriteByte('*')
			} else {
				b.WriteString("?" + it.Agg.Var)
			}
			b.WriteString(") AS ?" + it.Agg.As + ")")
		}
	}
	b.WriteString(" WHERE ")
	fpGroup(&b, q.Where)
	for i, v := range q.GroupBy {
		if i == 0 {
			b.WriteString(" GROUP BY")
		}
		b.WriteString(" ?" + v)
	}
	for i, oc := range q.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY")
		}
		if oc.Desc {
			b.WriteString(" DESC(?" + oc.Var + ")")
		} else {
			b.WriteString(" ?" + oc.Var)
		}
	}
	if q.Limit >= 0 {
		b.WriteString(" LIMIT $")
	}
	if q.Offset > 0 {
		b.WriteString(" OFFSET $")
	}
	return b.String()
}

func fpGroup(b *strings.Builder, g *GroupPattern) {
	b.WriteByte('{')
	if g != nil {
		for i, el := range g.Elements {
			if i > 0 {
				b.WriteString(" .")
			}
			b.WriteByte(' ')
			fpElement(b, el)
		}
	}
	b.WriteString(" }")
}

func fpElement(b *strings.Builder, el Element) {
	switch e := el.(type) {
	case *TriplePattern:
		fpTriple(b, e)
	case *Filter:
		b.WriteString("FILTER ")
		fpExpr(b, e.Expr)
	case *ExistsFilter:
		if e.Negated {
			b.WriteString("FILTER NOT EXISTS ")
		} else {
			b.WriteString("FILTER EXISTS ")
		}
		fpGroup(b, e.Pattern)
	case *Optional:
		b.WriteString("OPTIONAL ")
		fpGroup(b, e.Pattern)
	case *Union:
		fpGroup(b, e.Left)
		b.WriteString(" UNION ")
		fpGroup(b, e.Right)
	case *GroupPattern:
		fpGroup(b, e)
	default:
		b.WriteString("<element>")
	}
}

func fpTriple(b *strings.Builder, t *TriplePattern) {
	fpNode(b, t.S)
	b.WriteByte(' ')
	b.WriteString(explainPath(t.P))
	b.WriteByte(' ')
	fpNode(b, t.O)
}

// fpNode renders a triple-pattern node: variables keep their name,
// constants — IRIs and literals alike — collapse to the placeholder.
func fpNode(b *strings.Builder, n NodePattern) {
	if n.IsVar() {
		b.WriteString("?" + n.Var)
		return
	}
	b.WriteByte('$')
}

// fpExpr renders a filter expression with every constant operand
// normalized away. It mirrors the shape cases of exprString (and
// WalkExprVars): extending the expression language without extending
// this switch yields the "<expr>" marker, which keeps fingerprints
// stable rather than wrong.
func fpExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case varExpr:
		b.WriteString("?" + x.name)
	case constExpr:
		b.WriteByte('$')
	case notExpr:
		b.WriteByte('!')
		fpExpr(b, x.e)
	case andExpr:
		b.WriteByte('(')
		fpExpr(b, x.l)
		b.WriteString(" && ")
		fpExpr(b, x.r)
		b.WriteByte(')')
	case orExpr:
		b.WriteByte('(')
		fpExpr(b, x.l)
		b.WriteString(" || ")
		fpExpr(b, x.r)
		b.WriteByte(')')
	case cmpExpr:
		fpExpr(b, x.l)
		b.WriteString(" " + x.op + " ")
		fpExpr(b, x.r)
	case regexExpr:
		b.WriteString("REGEX(")
		fpExpr(b, x.text)
		b.WriteString(", $)")
	case boundExpr:
		b.WriteString("BOUND(?" + x.name + ")")
	case strFuncExpr:
		b.WriteString(x.fn + "(")
		fpExpr(b, x.arg)
		b.WriteByte(')')
	case binStrFuncExpr:
		b.WriteString(x.fn + "(")
		fpExpr(b, x.a)
		b.WriteString(", ")
		fpExpr(b, x.b)
		b.WriteByte(')')
	default:
		b.WriteString("<expr>")
	}
}
