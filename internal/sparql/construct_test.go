package sparql

import (
	"testing"

	"mdw/internal/rdf"
)

func TestConstructBasic(t *testing.T) {
	st, src := fixture()
	// Rewrite the mapping chain as a flattened dt:feeds relation.
	q := MustParse(`PREFIX dt: <` + rdf.DTNS + `>
		CONSTRUCT { ?s dt:feeds ?t }
		WHERE { ?s dt:isMappedTo+ ?t }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	// 3 transitive pairs: c→p, c→cu, p→cu.
	if len(res.Triples) != 3 {
		t.Fatalf("triples = %v", res.Triples)
	}
	for _, tr := range res.Triples {
		if tr.P.Value != rdf.MDWFeeds {
			t.Errorf("predicate = %s", tr.P)
		}
	}
}

func TestConstructMultiTemplate(t *testing.T) {
	st, src := fixture()
	q := MustParse(`PREFIX dm: <` + rdf.DMNS + `> PREFIX mdw: <` + rdf.MDWNS + `>
		CONSTRUCT {
			?x a mdw:Exported .
			?x mdw:exportName ?n .
		}
		WHERE { ?x dm:hasName ?n }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 6 { // 3 instances × 2 template triples
		t.Fatalf("triples = %d: %v", len(res.Triples), res.Triples)
	}
}

func TestConstructConstantsAndDedup(t *testing.T) {
	st, src := fixture()
	q := MustParse(`PREFIX dm: <` + rdf.DMNS + `> PREFIX mdw: <` + rdf.MDWNS + `>
		CONSTRUCT { mdw:summary mdw:hasItem ?x }
		WHERE { ?x dm:hasName ?n }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 3 {
		t.Fatalf("triples = %v", res.Triples)
	}
}

func TestConstructSkipsLiteralSubjects(t *testing.T) {
	st, src := fixture()
	// ?n binds to literals; using it as subject must silently skip.
	q := MustParse(`PREFIX dm: <` + rdf.DMNS + `> PREFIX mdw: <` + rdf.MDWNS + `>
		CONSTRUCT { ?n mdw:isNameOf ?x }
		WHERE { ?x dm:hasName ?n }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 0 {
		t.Fatalf("triples = %v", res.Triples)
	}
}

func TestConstructVariablePredicate(t *testing.T) {
	st, src := fixture()
	// Copy every statement about customer_id (a poor man's DESCRIBE).
	q := MustParse(`PREFIX inst: <` + rdf.InstNS + `>
		CONSTRUCT { inst:customer_id ?p ?o }
		WHERE { inst:customer_id ?p ?o }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 3 {
		t.Fatalf("triples = %v", res.Triples)
	}
}

func TestConstructParseErrors(t *testing.T) {
	bad := []string{
		`CONSTRUCT { } WHERE { ?s ?p ?o }`,
		`CONSTRUCT { ?s <p>* ?o } WHERE { ?s ?p ?o }`,
		`CONSTRUCT { FILTER (?x > 1) } WHERE { ?s ?p ?o }`,
		`CONSTRUCT ?x WHERE { ?s ?p ?o }`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}
