package sparql

import (
	"fmt"
	"sort"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// This file retains the original set-at-a-time evaluator as a reference
// implementation. It predates the cost-based planner: join order is a
// static per-pattern heuristic, FILTERs apply at group end, and every
// intermediate solution set is materialized. It is deliberately simple —
// simple enough to trust — and the differential harness executes every
// generated query through both ExecNaive and the planner to assert they
// agree.

// ExecNaive runs the query with the reference evaluator: no statistics,
// no filter pushdown, no streaming. Production callers want Exec; this
// exists as the correctness oracle for differential testing.
func (q *Query) ExecNaive(src store.Source, dict *store.Dict) (*Result, error) {
	ev := &evaluator{src: src, dict: dict}
	sols, err := ev.group(q.Where, []env{{}})
	if err != nil {
		return nil, err
	}
	if q.Kind == AskQuery {
		return &Result{Ask: len(sols) > 0}, nil
	}
	if q.Kind == ConstructQuery {
		return ev.construct(q, sols)
	}
	return ev.project(q, sols)
}

// group evaluates a group pattern against the given input solutions.
// Per SPARQL semantics, FILTERs constrain the whole group regardless of
// their position inside it.
func (ev *evaluator) group(g *GroupPattern, input []env) ([]env, error) {
	sols := input
	var filters []*Filter
	var existsFilters []*ExistsFilter
	i := 0
	for i < len(g.Elements) {
		switch el := g.Elements[i].(type) {
		case *TriplePattern:
			// Gather the contiguous run of triple patterns into one
			// basic graph pattern so it can be join-ordered.
			var block []*TriplePattern
			for i < len(g.Elements) {
				tp, ok := g.Elements[i].(*TriplePattern)
				if !ok {
					break
				}
				block = append(block, tp)
				i++
			}
			var err error
			sols, err = ev.bgp(block, sols)
			if err != nil {
				return nil, err
			}
			continue
		case *Filter:
			filters = append(filters, el)
		case *ExistsFilter:
			existsFilters = append(existsFilters, el)
		case *Optional:
			var out []env
			for _, s := range sols {
				extended, err := ev.group(el.Pattern, []env{s})
				if err != nil {
					return nil, err
				}
				if len(extended) == 0 {
					out = append(out, s)
				} else {
					out = append(out, extended...)
				}
			}
			sols = out
		case *Union:
			left, err := ev.group(el.Left, sols)
			if err != nil {
				return nil, err
			}
			right, err := ev.group(el.Right, sols)
			if err != nil {
				return nil, err
			}
			sols = append(left, right...)
		case *GroupPattern:
			var err error
			sols, err = ev.group(el, sols)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sparql: unknown group element %T", el)
		}
		i++
	}
	for _, f := range filters {
		var kept []env
		for _, s := range sols {
			ok, err := ev.filterHolds(f.Expr, s)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, s)
			}
		}
		sols = kept
	}
	for _, ef := range existsFilters {
		var kept []env
		for _, s := range sols {
			matches, err := ev.group(ef.Pattern, []env{s})
			if err != nil {
				return nil, err
			}
			if (len(matches) > 0) != ef.Negated {
				kept = append(kept, s)
			}
		}
		sols = kept
	}
	return sols, nil
}

// filterHolds evaluates a filter under SPARQL error semantics: an
// evaluation error (e.g. unbound variable) makes the filter false.
func (ev *evaluator) filterHolds(e Expr, s env) (bool, error) {
	b := ev.decodeEnv(s)
	v, err := e.Eval(b)
	if err != nil {
		return false, nil
	}
	t, err := v.Truth()
	if err != nil {
		return false, nil
	}
	return t, nil
}

func (ev *evaluator) decodeEnv(s env) Binding {
	b := make(Binding, len(s))
	for k, id := range s {
		b[k] = ev.dict.Term(id)
	}
	return b
}

// bgp evaluates a basic graph pattern with greedy join ordering: patterns
// with more constant positions run first, and complex property paths run
// last so their endpoints are as bound as possible.
func (ev *evaluator) bgp(block []*TriplePattern, sols []env) ([]env, error) {
	ordered := make([]*TriplePattern, len(block))
	copy(ordered, block)
	sort.SliceStable(ordered, func(i, j int) bool {
		return patternScore(ordered[i]) > patternScore(ordered[j])
	})
	var err error
	for _, tp := range ordered {
		sols, err = ev.triple(tp, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			return nil, nil
		}
	}
	return sols, nil
}

func patternScore(tp *TriplePattern) int {
	score := 0
	if !tp.S.IsVar() {
		score += 4
	}
	if !tp.O.IsVar() {
		score += 3
	}
	switch tp.P.(type) {
	case PathIRI:
		score += 2
	case PathVar:
		// neutral: cheaper than a closure, less selective than a constant
	default:
		score -= 4 // paths are expensive; defer them
	}
	return score
}

func (ev *evaluator) triple(tp *TriplePattern, sols []env) ([]env, error) {
	if iri, ok := IsSimple(tp.P); ok {
		return ev.simpleTriple(tp, iri, sols)
	}
	if pv, ok := tp.P.(PathVar); ok {
		return ev.varPredTriple(tp, pv.Name, sols)
	}
	return ev.pathTriple(tp, sols)
}

// varPredTriple matches a pattern whose predicate is a variable.
func (ev *evaluator) varPredTriple(tp *TriplePattern, pvar string, sols []env) ([]env, error) {
	var out []env
	for _, s := range sols {
		sid, svar, ok := ev.resolveNode(tp.S, s)
		if !ok {
			continue
		}
		oid, ovar, ok := ev.resolveNode(tp.O, s)
		if !ok {
			continue
		}
		pid := store.Wildcard
		if bound, isBound := s[pvar]; isBound {
			pid = bound
		}
		ev.src.ForEach(sid, pid, oid, func(t store.ETriple) bool {
			ns := s.clone()
			if svar != "" {
				ns[svar] = t.S
			}
			ns[pvar] = t.P
			if ovar != "" {
				if prev, exists := ns[ovar]; exists && prev != t.O {
					return true
				}
				ns[ovar] = t.O
			}
			// Shared variables across positions must agree.
			if svar != "" && svar == pvar && t.S != t.P {
				return true
			}
			if ovar != "" && ovar == pvar && t.O != t.P {
				return true
			}
			out = append(out, ns)
			return true
		})
	}
	return out, nil
}

func (ev *evaluator) simpleTriple(tp *TriplePattern, predIRI string, sols []env) ([]env, error) {
	pid, found := ev.dict.Lookup(rdf.IRI(predIRI))
	if !found {
		return nil, nil
	}
	var out []env
	for _, s := range sols {
		sid, svar, ok := ev.resolveNode(tp.S, s)
		if !ok {
			continue
		}
		oid, ovar, ok := ev.resolveNode(tp.O, s)
		if !ok {
			continue
		}
		ev.src.ForEach(sid, pid, oid, func(t store.ETriple) bool {
			ns := s
			if svar != "" || ovar != "" {
				ns = s.clone()
				if svar != "" {
					ns[svar] = t.S
				}
				if ovar != "" {
					// Same variable in subject and object positions must
					// agree.
					if svar == ovar && ns[svar] != t.O {
						return true
					}
					ns[ovar] = t.O
				}
			}
			out = append(out, ns)
			return true
		})
	}
	return out, nil
}

func (ev *evaluator) pathTriple(tp *TriplePattern, sols []env) ([]env, error) {
	var out []env
	for _, s := range sols {
		sid, svar, ok := ev.resolveNode(tp.S, s)
		if !ok {
			continue
		}
		oid, ovar, ok := ev.resolveNode(tp.O, s)
		if !ok {
			continue
		}
		pairs := ev.evalPath(tp.P, sid, oid)
		for _, pr := range pairs {
			ns := s
			if svar != "" || ovar != "" {
				ns = s.clone()
				if svar != "" {
					ns[svar] = pr[0]
				}
				if ovar != "" {
					if svar == ovar && pr[0] != pr[1] {
						continue
					}
					ns[ovar] = pr[1]
				}
			}
			out = append(out, ns)
		}
	}
	return out, nil
}
