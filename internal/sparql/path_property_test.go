package sparql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// randomEdgeGraph builds a random directed graph over n nodes with the
// given number of edges under one predicate.
func randomEdgeGraph(r *rand.Rand, n, edges int) (*store.Store, []rdf.Term) {
	st := store.New()
	nodes := make([]rdf.Term, n)
	for i := range nodes {
		nodes[i] = rdf.IRI(fmt.Sprintf("http://t/n%d", i))
	}
	pred := rdf.IRI("http://t/edge")
	for i := 0; i < edges; i++ {
		st.Add("m", rdf.T(nodes[r.Intn(n)], pred, nodes[r.Intn(n)]))
	}
	// Guarantee every node exists in the graph (self-describing label) so
	// the closure semantics over "nodes in the graph" are well-defined.
	for _, nd := range nodes {
		st.Add("m", rdf.T(nd, rdf.Label, rdf.Literal(rdf.LocalName(nd.Value))))
	}
	return st, nodes
}

// referenceReach computes reachability via plain BFS over the stored
// edges.
func referenceReach(st *store.Store, start rdf.Term, includeSelf bool) map[rdf.Term]bool {
	adj := map[rdf.Term][]rdf.Term{}
	st.ForEach("m", rdf.Term{}, rdf.IRI("http://t/edge"), rdf.Term{}, func(t rdf.Triple) bool {
		adj[t.S] = append(adj[t.S], t.O)
		return true
	})
	out := map[rdf.Term]bool{}
	if includeSelf {
		out[start] = true
	}
	frontier := []rdf.Term{start}
	visited := map[rdf.Term]bool{start: true}
	for len(frontier) > 0 {
		var next []rdf.Term
		for _, n := range frontier {
			for _, m := range adj[n] {
				if !visited[m] {
					visited[m] = true
					out[m] = true
					next = append(next, m)
				}
			}
		}
		frontier = next
	}
	return out
}

// Property: the '+' closure through the SPARQL engine equals BFS
// reachability, and '*' additionally includes the start node — even on
// random graphs with cycles.
func TestPathClosureMatchesBFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		st, nodes := randomEdgeGraph(r, n, r.Intn(3*n))
		start := nodes[r.Intn(n)]

		for _, tc := range []struct {
			op          string
			includeSelf bool
		}{{"+", false}, {"*", true}} {
			q, err := Parse(fmt.Sprintf(
				`SELECT ?x WHERE { <%s> <http://t/edge>%s ?x }`, start.Value, tc.op))
			if err != nil {
				return false
			}
			res, err := q.Exec(st.ViewOf("m"), st.Dict())
			if err != nil {
				return false
			}
			got := map[rdf.Term]bool{}
			for _, row := range res.Rows {
				got[row["x"]] = true
			}
			want := referenceReach(st, start, tc.includeSelf)
			// '+' may also revisit the start through a cycle, which BFS
			// reachability covers (start reachable from itself).
			if len(got) != len(want) {
				return false
			}
			for k := range want {
				if !got[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: forward and inverse closures agree — x reaches y via p+ iff
// y reaches x via ^p+ ... iff y is a solution of { x p+ ?y } and x of
// { ?x p+ y }.
func TestPathForwardBackwardAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		st, nodes := randomEdgeGraph(r, n, r.Intn(3*n))
		x := nodes[r.Intn(n)]
		y := nodes[r.Intn(n)]

		ask := func(query string) bool {
			q, err := Parse(query)
			if err != nil {
				return false
			}
			res, err := q.Exec(st.ViewOf("m"), st.Dict())
			if err != nil {
				return false
			}
			return res.Ask
		}
		forward := ask(fmt.Sprintf(`ASK { <%s> <http://t/edge>+ <%s> }`, x.Value, y.Value))
		backward := ask(fmt.Sprintf(`ASK { <%s> ^<http://t/edge>+ <%s> }`, y.Value, x.Value))
		return forward == backward
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a sequence path p/p matches exactly the two-hop pairs.
func TestPathSequenceEqualsTwoHopsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		st, nodes := randomEdgeGraph(r, n, r.Intn(2*n))
		start := nodes[r.Intn(n)]

		q := MustParse(fmt.Sprintf(
			`SELECT DISTINCT ?x WHERE { <%s> <http://t/edge>/<http://t/edge> ?x }`, start.Value))
		res, err := q.Exec(st.ViewOf("m"), st.Dict())
		if err != nil {
			return false
		}
		got := map[rdf.Term]bool{}
		for _, row := range res.Rows {
			got[row["x"]] = true
		}
		// Reference: join the edge relation with itself.
		want := map[rdf.Term]bool{}
		pred := rdf.IRI("http://t/edge")
		for _, mid := range st.Match("m", start, pred, rdf.Term{}) {
			for _, end := range st.Match("m", mid.O, pred, rdf.Term{}) {
				want[end.O] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
