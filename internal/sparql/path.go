package sparql

import (
	"mdw/internal/rdf"
	"mdw/internal/store"
)

// evalPath returns the (start, end) node pairs connected by the property
// path. sid/oid are the bound endpoints or store.Wildcard when unbound.
//
// The lineage use case of the paper (Section IV.B, Figure 8) is exactly a
// path query — "the path used can be described by the regular expression
// (isMappedTo)* rdf:type" — so closures are first-class here.
func (ev *evaluator) evalPath(p Path, sid, oid store.ID) [][2]store.ID {
	switch {
	case sid != store.Wildcard && oid != store.Wildcard:
		if ev.pathConnects(p, sid, oid) {
			return [][2]store.ID{{sid, oid}}
		}
		return nil
	case sid != store.Wildcard:
		ends := ev.pathReach(p, sid, true)
		out := make([][2]store.ID, 0, len(ends))
		for _, e := range ends {
			out = append(out, [2]store.ID{sid, e})
		}
		return out
	case oid != store.Wildcard:
		starts := ev.pathReach(p, oid, false)
		out := make([][2]store.ID, 0, len(starts))
		for _, s := range starts {
			out = append(out, [2]store.ID{s, oid})
		}
		return out
	default:
		// Both ends unbound: evaluate from every node in the graph.
		var out [][2]store.ID
		for _, n := range ev.allNodes() {
			for _, e := range ev.pathReach(p, n, true) {
				out = append(out, [2]store.ID{n, e})
			}
		}
		return out
	}
}

// step returns the nodes reachable from 'from' by one application of the
// path (closures handle their own iteration via pathReach).
func (ev *evaluator) step(p Path, from store.ID, forward bool) []store.ID {
	switch pp := p.(type) {
	case PathIRI:
		pid, ok := ev.dict.Lookup(rdf.IRI(pp.IRI))
		if !ok {
			return nil
		}
		if forward {
			return ev.src.Objects(from, pid)
		}
		return ev.src.Subjects(pid, from)
	case PathInverse:
		return ev.step(pp.P, from, !forward)
	case PathAlt:
		var out []store.ID
		seen := map[store.ID]bool{}
		for _, part := range pp.Parts {
			for _, n := range ev.step(part, from, forward) {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
		return out
	case PathSeq:
		frontier := []store.ID{from}
		parts := pp.Parts
		if !forward {
			parts = reversePaths(parts)
		}
		for _, part := range parts {
			next := map[store.ID]bool{}
			var nf []store.ID
			for _, n := range frontier {
				for _, m := range ev.step(part, n, forward) {
					if !next[m] {
						next[m] = true
						nf = append(nf, m)
					}
				}
			}
			frontier = nf
			if len(frontier) == 0 {
				return nil
			}
		}
		return frontier
	case PathRepeat:
		return ev.repeatReach(pp, from, forward)
	default:
		return nil
	}
}

func reversePaths(ps []Path) []Path {
	out := make([]Path, len(ps))
	for i, p := range ps {
		out[len(ps)-1-i] = p
	}
	return out
}

// pathReach returns all nodes reachable from 'from' via the whole path.
func (ev *evaluator) pathReach(p Path, from store.ID, forward bool) []store.ID {
	return ev.step(p, from, forward)
}

// repeatReach performs a breadth-first closure of the repeated sub-path.
func (ev *evaluator) repeatReach(pp PathRepeat, from store.ID, forward bool) []store.ID {
	visited := map[store.ID]int{from: 0}
	frontier := []store.ID{from}
	depth := 0
	var out []store.ID
	if pp.Min == 0 {
		out = append(out, from)
	}
	for len(frontier) > 0 {
		if pp.Max >= 0 && depth >= pp.Max {
			break
		}
		depth++
		var next []store.ID
		for _, n := range frontier {
			for _, m := range ev.step(pp.P, n, forward) {
				if _, seen := visited[m]; seen {
					continue
				}
				visited[m] = depth
				next = append(next, m)
				if depth >= pp.Min {
					out = append(out, m)
				}
			}
		}
		frontier = next
	}
	return out
}

// pathConnects reports whether the path links start to end.
func (ev *evaluator) pathConnects(p Path, start, end store.ID) bool {
	for _, n := range ev.pathReach(p, start, true) {
		if n == end {
			return true
		}
	}
	return false
}

// allNodes returns every distinct subject and non-literal object in the
// source; it is the node universe used when both path endpoints are
// unbound.
func (ev *evaluator) allNodes() []store.ID {
	seen := map[store.ID]bool{}
	var out []store.ID
	ev.src.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t store.ETriple) bool {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		if !seen[t.O] && !ev.dict.Term(t.O).IsLiteral() {
			seen[t.O] = true
			out = append(out, t.O)
		}
		return true
	})
	return out
}
