package sparql

import (
	"sort"
	"sync"
	"sync/atomic"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// evalPath returns the (start, end) node pairs connected by the property
// path. sid/oid are the bound endpoints or store.Wildcard when unbound.
//
// The lineage use case of the paper (Section IV.B, Figure 8) is exactly a
// path query — "the path used can be described by the regular expression
// (isMappedTo)* rdf:type" — so closures are first-class here.
func (ev *evaluator) evalPath(p Path, sid, oid store.ID) [][2]store.ID {
	switch {
	case sid != store.Wildcard && oid != store.Wildcard:
		if ev.pathConnects(p, sid, oid) {
			return [][2]store.ID{{sid, oid}}
		}
		return nil
	case sid != store.Wildcard:
		ends := ev.pathReach(p, sid, true)
		out := make([][2]store.ID, 0, len(ends))
		for _, e := range ends {
			out = append(out, [2]store.ID{sid, e})
		}
		return out
	case oid != store.Wildcard:
		starts := ev.pathReach(p, oid, false)
		out := make([][2]store.ID, 0, len(starts))
		for _, s := range starts {
			out = append(out, [2]store.ID{s, oid})
		}
		return out
	default:
		// Both ends unbound: evaluate from every node in the graph.
		nodes := ev.allNodes()
		if ev.pathWorkers > 1 && len(nodes) >= ev.frontierMin {
			return ev.allPairsParallel(p, nodes)
		}
		var out [][2]store.ID
		for _, n := range nodes {
			if ev.cancelled() {
				return out
			}
			for _, e := range ev.pathReach(p, n, true) {
				out = append(out, [2]store.ID{n, e})
			}
		}
		return out
	}
}

// allPairsParallel partitions the node universe across workers, each
// running the ordinary serial reachability from its nodes, and merges the
// per-chunk pair lists in node order — the same order the serial loop
// would produce over the (sorted) universe.
func (ev *evaluator) allPairsParallel(p Path, nodes []store.ID) [][2]store.ID {
	workers := ev.pathWorkers
	chunk := max(ev.frontierMin/2, (len(nodes)+workers*4-1)/(workers*4))
	nchunks := (len(nodes) + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}
	obsParExecPath.Inc()
	obsParWorkers.Add(int64(workers))
	ev.parStrategy, ev.parWorkers = "path", workers
	ev.parTasks += nchunks
	results := make([][][2]store.ID, nchunks)
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wev := &evaluator{src: ev.src, dict: ev.dict, ctx: ev.ctx, parStop: ev.parStop, stats: ev.stats}
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nchunks || cancelled.Load() {
					return
				}
				lo := ci * chunk
				hi := min(lo+chunk, len(nodes))
				var out [][2]store.ID
				for _, n := range nodes[lo:hi] {
					if wev.cancelled() || wev.stopped() {
						cancelled.Store(true)
						return
					}
					for _, e := range wev.pathReach(p, n, true) {
						out = append(out, [2]store.ID{n, e})
					}
				}
				results[ci] = out
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		if ev.err == nil && ev.ctx != nil {
			ev.err = ev.ctx.Err()
		}
		return nil
	}
	var out [][2]store.ID
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// step returns the nodes reachable from 'from' by one application of the
// path (closures handle their own iteration via pathReach).
func (ev *evaluator) step(p Path, from store.ID, forward bool) []store.ID {
	switch pp := p.(type) {
	case PathIRI:
		pid, ok := ev.dict.Lookup(rdf.IRI(pp.IRI))
		if !ok {
			return nil
		}
		var ns []store.ID
		if forward {
			ns = ev.src.Objects(from, pid)
		} else {
			ns = ev.src.Subjects(pid, from)
		}
		if st := ev.stats; st != nil {
			st.scanned.Add(int64(len(ns)))
		}
		return ns
	case PathInverse:
		return ev.step(pp.P, from, !forward)
	case PathAlt:
		var out []store.ID
		seen := map[store.ID]bool{}
		for _, part := range pp.Parts {
			for _, n := range ev.step(part, from, forward) {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
		return out
	case PathSeq:
		frontier := []store.ID{from}
		parts := pp.Parts
		if !forward {
			parts = reversePaths(parts)
		}
		for _, part := range parts {
			next := map[store.ID]bool{}
			var nf []store.ID
			for _, n := range frontier {
				for _, m := range ev.step(part, n, forward) {
					if !next[m] {
						next[m] = true
						nf = append(nf, m)
					}
				}
			}
			frontier = nf
			if len(frontier) == 0 {
				return nil
			}
		}
		return frontier
	case PathRepeat:
		return ev.repeatReach(pp, from, forward)
	default:
		return nil
	}
}

func reversePaths(ps []Path) []Path {
	out := make([]Path, len(ps))
	for i, p := range ps {
		out[len(ps)-1-i] = p
	}
	return out
}

// pathReach returns all nodes reachable from 'from' via the whole path.
func (ev *evaluator) pathReach(p Path, from store.ID, forward bool) []store.ID {
	return ev.step(p, from, forward)
}

// repeatReach performs a breadth-first closure of the repeated sub-path.
// When the evaluator is armed for parallel paths and a frontier level is
// wide enough, the level's neighbor lists are computed across workers and
// merged sequentially — exactly the serial discovery order.
func (ev *evaluator) repeatReach(pp PathRepeat, from store.ID, forward bool) []store.ID {
	visited := map[store.ID]int{from: 0}
	frontier := []store.ID{from}
	depth := 0
	var out []store.ID
	if pp.Min == 0 {
		out = append(out, from)
	}
	for len(frontier) > 0 {
		if pp.Max >= 0 && depth >= pp.Max {
			break
		}
		if ev.cancelled() || ev.stopped() {
			return out
		}
		depth++
		var next []store.ID
		if ev.pathWorkers > 1 && len(frontier) >= ev.frontierMin {
			next = ev.expandFrontier(pp.P, frontier, visited, depth, pp.Min, &out, forward)
		} else {
			for _, n := range frontier {
				for _, m := range ev.step(pp.P, n, forward) {
					if _, seen := visited[m]; seen {
						continue
					}
					visited[m] = depth
					next = append(next, m)
					if depth >= pp.Min {
						out = append(out, m)
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// expandFrontier computes one BFS level in parallel. Workers claim
// frontier chunks, compute each node's neighbor list, and pre-filter it
// against the visited set — frozen for the duration of the level, so the
// reads are race-free. The sequential merge then applies the within-level
// dedup in frontier order, reproducing the serial BFS discovery order
// bit for bit (the pre-filter only drops nodes the merge would drop too).
func (ev *evaluator) expandFrontier(p Path, frontier []store.ID, visited map[store.ID]int, depth, minDepth int, out *[]store.ID, forward bool) []store.ID {
	workers := ev.pathWorkers
	chunk := max(8, (len(frontier)+workers*4-1)/(workers*4))
	nchunks := (len(frontier) + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}
	obsParPathLevels.Inc()
	if ev.parStrategy == "" {
		obsParExecPath.Inc()
		obsParWorkers.Add(int64(workers))
		ev.parStrategy, ev.parWorkers = "path", workers
	}
	ev.parTasks++
	neigh := make([][]store.ID, len(frontier))
	var nextChunk atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wev := &evaluator{src: ev.src, dict: ev.dict, ctx: ev.ctx, parStop: ev.parStop, stats: ev.stats}
			for {
				ci := int(nextChunk.Add(1)) - 1
				if ci >= nchunks || cancelled.Load() {
					return
				}
				lo := ci * chunk
				hi := min(lo+chunk, len(frontier))
				for i := lo; i < hi; i++ {
					if wev.cancelled() || wev.stopped() {
						cancelled.Store(true)
						return
					}
					ns := wev.step(p, frontier[i], forward)
					kept := ns[:0] // step returns caller-owned slices
					for _, m := range ns {
						if _, seen := visited[m]; !seen {
							kept = append(kept, m)
						}
					}
					neigh[i] = kept
				}
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		if ev.err == nil && ev.ctx != nil {
			ev.err = ev.ctx.Err()
		}
		return nil
	}
	var next []store.ID
	for _, ns := range neigh {
		for _, m := range ns {
			if _, seen := visited[m]; seen {
				continue
			}
			visited[m] = depth
			next = append(next, m)
			if depth >= minDepth {
				*out = append(*out, m)
			}
		}
	}
	return next
}

// pathConnects reports whether the path links start to end.
func (ev *evaluator) pathConnects(p Path, start, end store.ID) bool {
	for _, n := range ev.pathReach(p, start, true) {
		if n == end {
			return true
		}
	}
	return false
}

// allNodes returns every distinct subject and non-literal object in the
// source; it is the node universe used when both path endpoints are
// unbound. The result is sorted: the full scan walks index maps, whose
// order varies per call, and both the serial per-node loop and the
// parallel partitioning want a stable universe so `?s p* ?o` answers in
// the same order every run.
func (ev *evaluator) allNodes() []store.ID {
	seen := map[store.ID]bool{}
	var out []store.ID
	ev.src.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t store.ETriple) bool {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		if !seen[t.O] && !ev.dict.Term(t.O).IsLiteral() {
			seen[t.O] = true
			out = append(out, t.O)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
