package sparql

import (
	"sort"
	"strings"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// fixture builds the Figure 3 meta-data snippet: the customer
// identification mapping chain plus hierarchy and names.
func fixture() (*store.Store, store.Source) {
	st := store.New()
	inst := func(s string) rdf.Term { return rdf.IRI(rdf.InstNS + s) }
	dm := func(s string) rdf.Term { return rdf.IRI(rdf.DMNS + s) }
	ts := []rdf.Triple{
		// Facts: the mapping chain of Figure 3.
		rdf.T(inst("client_information_id"), rdf.IsMappedTo, inst("partner_id")),
		rdf.T(inst("partner_id"), rdf.IsMappedTo, inst("customer_id")),
		rdf.T(inst("client_information_id"), rdf.Type, dm("Source_File_Column")),
		rdf.T(inst("partner_id"), rdf.Type, dm("Application1_Table_Column")),
		rdf.T(inst("customer_id"), rdf.Type, dm("Application1_View_Column")),
		rdf.T(inst("client_information_id"), rdf.HasName, rdf.Literal("client_information_id")),
		rdf.T(inst("partner_id"), rdf.HasName, rdf.Literal("partner_id")),
		rdf.T(inst("customer_id"), rdf.HasName, rdf.Literal("customer_id")),
		// Meta-data schema / hierarchy.
		rdf.T(dm("Application1_View_Column"), rdf.SubClassOf, dm("View_Column")),
		rdf.T(dm("View_Column"), rdf.SubClassOf, dm("Attribute")),
		rdf.T(dm("Application1_View_Column"), rdf.Label, rdf.Literal("Application1 View Column")),
		// Extra data for filters and ordering.
		rdf.T(inst("customer_id"), dm("length"), rdf.Integer(10)),
		rdf.T(inst("partner_id"), dm("length"), rdf.Integer(8)),
	}
	st.AddAll("m", ts)
	return st, st.ViewOf("m")
}

func exec(t *testing.T, q string) *Result {
	t.Helper()
	st, src := fixture()
	parsed, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	res, err := parsed.Exec(src, st.Dict())
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func TestSimpleBGP(t *testing.T) {
	res := exec(t, `PREFIX dt: <`+rdf.DTNS+`>
		SELECT ?s ?o WHERE { ?s dt:isMappedTo ?o }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestJoin(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`> PREFIX dt: <`+rdf.DTNS+`>
		SELECT ?name WHERE {
			?x dt:isMappedTo ?y .
			?y dm:hasName ?name .
		}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		names[r["name"].Value] = true
	}
	if !names["partner_id"] || !names["customer_id"] {
		t.Errorf("names = %v", names)
	}
}

func TestConstantSubject(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?name WHERE { inst:customer_id dm:hasName ?name }`)
	if len(res.Rows) != 1 || res.Rows[0]["name"].Value != "customer_id" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFilterRegex(t *testing.T) {
	// The WHERE regexp_like(term, 'customer', 'i') of Listing 1.
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { ?x dm:hasName ?term . FILTER regex(?term, "CUSTOMER", "i") }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if rdf.LocalName(res.Rows[0]["x"].Value) != "customer_id" {
		t.Errorf("x = %v", res.Rows[0]["x"])
	}
}

func TestFilterComparison(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { ?x dm:length ?l . FILTER (?l > 9) }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestFilterBooleanOps(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { ?x dm:length ?l . FILTER (?l >= 8 && ?l <= 9) }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	res = exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { ?x dm:length ?l . FILTER (?l = 8 || ?l = 10) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	res = exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { ?x dm:length ?l . FILTER (!(?l = 8)) }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestFilterStringBuiltins(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { ?x dm:hasName ?n . FILTER CONTAINS(?n, "partner") }`)
	if len(res.Rows) != 1 {
		t.Fatalf("CONTAINS rows = %d", len(res.Rows))
	}
	res = exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { ?x dm:hasName ?n . FILTER STRSTARTS(LCASE(?n), "client") }`)
	if len(res.Rows) != 1 {
		t.Fatalf("STRSTARTS rows = %d", len(res.Rows))
	}
	res = exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { ?x dm:hasName ?n . FILTER STRENDS(?n, "_id") }`)
	if len(res.Rows) != 3 {
		t.Fatalf("STRENDS rows = %d", len(res.Rows))
	}
}

func TestOptional(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x ?l WHERE {
			?x dm:hasName ?n .
			OPTIONAL { ?x dm:length ?l }
		}`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	withL := 0
	for _, r := range res.Rows {
		if _, ok := r["l"]; ok {
			withL++
		}
	}
	if withL != 2 {
		t.Errorf("rows with optional binding = %d, want 2", withL)
	}
}

func TestOptionalWithBound(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE {
			?x dm:hasName ?n .
			OPTIONAL { ?x dm:length ?l }
			FILTER (!BOUND(?l))
		}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only client_information_id lacks length)", len(res.Rows))
	}
}

func TestUnion(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?x WHERE {
			{ ?x a dm:Source_File_Column } UNION { ?x a dm:Application1_View_Column }
		}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestPathStar(t *testing.T) {
	// Figure 8: (isMappedTo)* from client_information_id.
	res := exec(t, `PREFIX dt: <`+rdf.DTNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?t WHERE { inst:client_information_id dt:isMappedTo* ?t }`)
	if len(res.Rows) != 3 { // itself, partner_id, customer_id
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestPathPlus(t *testing.T) {
	res := exec(t, `PREFIX dt: <`+rdf.DTNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?t WHERE { inst:client_information_id dt:isMappedTo+ ?t }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestPathSequence(t *testing.T) {
	// (isMappedTo)* followed by rdf:type — the exact lineage path of the
	// paper.
	res := exec(t, `PREFIX dt: <`+rdf.DTNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?c WHERE { inst:client_information_id dt:isMappedTo*/a ?c }`)
	classes := map[string]bool{}
	for _, r := range res.Rows {
		classes[rdf.LocalName(r["c"].Value)] = true
	}
	for _, want := range []string{"Source_File_Column", "Application1_Table_Column", "Application1_View_Column"} {
		if !classes[want] {
			t.Errorf("missing class %s in %v", want, classes)
		}
	}
}

func TestPathInverse(t *testing.T) {
	res := exec(t, `PREFIX dt: <`+rdf.DTNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?s WHERE { inst:customer_id ^dt:isMappedTo ?s }`)
	if len(res.Rows) != 1 || rdf.LocalName(res.Rows[0]["s"].Value) != "partner_id" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestPathInverseStarBackward(t *testing.T) {
	// Lineage backwards: everything that maps (transitively) into
	// customer_id.
	res := exec(t, `PREFIX dt: <`+rdf.DTNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?s WHERE { ?s dt:isMappedTo+ inst:customer_id }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestPathAlternative(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?v WHERE { inst:customer_id (dm:hasName|dm:length) ?v }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestPathOptionalModifier(t *testing.T) {
	res := exec(t, `PREFIX dt: <`+rdf.DTNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?t WHERE { inst:partner_id dt:isMappedTo? ?t }`)
	if len(res.Rows) != 2 { // itself + customer_id
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestDistinct(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT DISTINCT ?c WHERE { ?x a ?c . ?x dm:hasName ?n }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestGroupByCount(t *testing.T) {
	// The Figure 6 shape: count results per class.
	res := exec(t, `SELECT ?c (COUNT(?x) AS ?n) WHERE { ?x a ?c } GROUP BY ?c`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r["n"].Value != "1" {
			t.Errorf("count for %v = %v, want 1", r["c"], r["n"])
		}
	}
}

func TestCountStarAndDistinct(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT (COUNT(*) AS ?n) WHERE { ?x dm:hasName ?name }`)
	if len(res.Rows) != 1 || res.Rows[0]["n"].Value != "3" {
		t.Fatalf("COUNT(*) = %v", res.Rows)
	}
	res = exec(t, `SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?x a ?c }`)
	if len(res.Rows) != 1 || res.Rows[0]["n"].Value != "3" {
		t.Fatalf("COUNT(DISTINCT) = %v", res.Rows)
	}
}

func TestCountOnEmptyMatch(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT (COUNT(*) AS ?n) WHERE { ?x dm:noSuchPredicate ?y }`)
	if len(res.Rows) != 1 || res.Rows[0]["n"].Value != "0" {
		t.Fatalf("COUNT over empty = %v", res.Rows)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?n WHERE { ?x dm:hasName ?n } ORDER BY ?n`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	got := []string{res.Rows[0]["n"].Value, res.Rows[1]["n"].Value, res.Rows[2]["n"].Value}
	want := []string{"client_information_id", "customer_id", "partner_id"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	res = exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?n WHERE { ?x dm:hasName ?n } ORDER BY DESC(?n) LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0]["n"].Value != "partner_id" {
		t.Fatalf("DESC LIMIT = %v", res.Rows)
	}
	res = exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?n WHERE { ?x dm:hasName ?n } ORDER BY ?n LIMIT 1 OFFSET 1`)
	if len(res.Rows) != 1 || res.Rows[0]["n"].Value != "customer_id" {
		t.Fatalf("OFFSET = %v", res.Rows)
	}
}

func TestOrderByNumeric(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?l WHERE { ?x dm:length ?l } ORDER BY DESC(?l)`)
	if res.Rows[0]["l"].Value != "10" {
		t.Fatalf("numeric DESC order = %v", res.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	res := exec(t, `PREFIX dt: <`+rdf.DTNS+`> SELECT * WHERE { ?s dt:isMappedTo ?o }`)
	if len(res.Vars) != 2 {
		t.Fatalf("vars = %v", res.Vars)
	}
	sort.Strings(res.Vars)
	if res.Vars[0] != "o" || res.Vars[1] != "s" {
		t.Errorf("vars = %v", res.Vars)
	}
}

func TestAsk(t *testing.T) {
	st, src := fixture()
	q := MustParse(`PREFIX dt: <` + rdf.DTNS + `> PREFIX inst: <` + rdf.InstNS + `>
		ASK { inst:client_information_id dt:isMappedTo+ inst:customer_id }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ask {
		t.Error("ASK should be true")
	}
	q = MustParse(`PREFIX dt: <` + rdf.DTNS + `> PREFIX inst: <` + rdf.InstNS + `>
		ASK { inst:customer_id dt:isMappedTo inst:partner_id }`)
	res, err = q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ask {
		t.Error("ASK should be false (mapping is directional)")
	}
}

func TestSemicolonCommaSyntax(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`> PREFIX inst: <`+rdf.InstNS+`>
		SELECT ?n ?l WHERE {
			inst:customer_id dm:hasName ?n ; dm:length ?l .
		}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSharedVariableInSubjectAndObject(t *testing.T) {
	st := store.New()
	st.Add("m", rdf.T(rdf.IRI("http://t/self"), rdf.IRI("http://t/p"), rdf.IRI("http://t/self")))
	st.Add("m", rdf.T(rdf.IRI("http://t/a"), rdf.IRI("http://t/p"), rdf.IRI("http://t/b")))
	q := MustParse(`SELECT ?x WHERE { ?x <http://t/p> ?x }`)
	res, err := q.Exec(st.ViewOf("m"), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || rdf.LocalName(res.Rows[0]["x"].Value) != "self" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnknownTermsYieldEmpty(t *testing.T) {
	res := exec(t, `SELECT ?o WHERE { <http://nowhere/x> <http://nowhere/p> ?o }`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?x`,
		`SELECT ?x WHERE { ?x }`,
		`SELECT ?x WHERE { ?x <p> }`,
		`SELECT ?x WHERE { ?x <p> ?y`,
		`FROB ?x WHERE { ?x <p> ?y }`,
		`SELECT ?x WHERE { ?x <p> ?y } LIMIT -1`,
		`SELECT ?x WHERE { ?x <p> ?y } GROUP`,
		`SELECT ?x WHERE { FILTER }`,
		`SELECT ?x WHERE { ?x <p> ?y . FILTER regex(?y, "[") }`,
		`SELECT (SUM(?x) AS ?s) WHERE { ?x <p> ?y }`,
		`SELECT ?x WHERE { ?x <p> ?y } trailing`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestListing1Shape(t *testing.T) {
	// The SPARQL pattern inside Listing 1's SEM_MATCH, adapted to pure
	// SPARQL: find objects typed under classes with labels, restricted by
	// the hierarchy, matching 'customer'.
	st, src := fixture()
	q := MustParse(`
		PREFIX dm: <` + rdf.DMNS + `>
		SELECT ?class ?object WHERE {
			?object a ?c .
			?c rdfs:label ?class .
			?object dm:hasName ?term .
			FILTER regex(?term, "customer", "i")
		}
		GROUP BY ?class ?object`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0]["class"].Value != "Application1 View Column" {
		t.Errorf("class = %v", res.Rows[0]["class"])
	}
}

func TestFilterAppliesToWholeGroup(t *testing.T) {
	// A FILTER placed before the pattern it constrains must still apply.
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE {
			FILTER (?l > 9)
			?x dm:length ?l .
		}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestNestedGroup(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { { ?x dm:length ?l } FILTER (?l > 9) }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestLexerEdgeCases(t *testing.T) {
	// Single-quoted strings (Oracle listings use them).
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?x WHERE { ?x dm:hasName ?n . FILTER regex(?n, 'customer', 'i') }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestResultVarsOrder(t *testing.T) {
	res := exec(t, `PREFIX dm: <`+rdf.DMNS+`>
		SELECT ?n ?x WHERE { ?x dm:hasName ?n }`)
	if strings.Join(res.Vars, ",") != "n,x" {
		t.Errorf("vars = %v", res.Vars)
	}
}
