package sparql

import (
	"strings"
	"testing"

	"mdw/internal/rdf"
)

func TestExplainJoinOrder(t *testing.T) {
	q := MustParse(`PREFIX dm: <` + rdf.DMNS + `> PREFIX dt: <` + rdf.DTNS + `> PREFIX inst: <` + rdf.InstNS + `>
		SELECT ?name WHERE {
			?x dt:isMappedTo* ?y .
			?y dm:hasName ?name .
			inst:customer_id dm:hasName ?cn .
		}`)
	out := q.Explain()
	// The constant-subject pattern must be ordered first, the closure
	// path last.
	first := strings.Index(out, "inst:customer_id")
	path := strings.Index(out, "dt:isMappedTo*")
	middle := strings.Index(out, "?y dm:hasName ?name")
	if first < 0 || path < 0 || middle < 0 {
		t.Fatalf("explain output incomplete:\n%s", out)
	}
	if !(first < middle && middle < path) {
		t.Errorf("join order wrong:\n%s", out)
	}
	if !strings.Contains(out, "BGP (3 patterns, join order):") {
		t.Errorf("missing BGP header:\n%s", out)
	}
}

func TestExplainStructures(t *testing.T) {
	q := MustParse(`SELECT DISTINCT ?x (COUNT(?y) AS ?n) WHERE {
		{ ?x <http://t/a> ?y } UNION { ?x <http://t/b> ?y }
		OPTIONAL { ?x <http://t/c> ?z }
		FILTER (?x != ?y)
		FILTER NOT EXISTS { ?x <http://t/d> ?w }
	} GROUP BY ?x ORDER BY DESC(?n) LIMIT 5 OFFSET 2`)
	out := q.Explain()
	for _, want := range []string{
		"SELECT DISTINCT ?x (COUNT(...) AS ?n)",
		"UNION left:", "UNION right:",
		"OPTIONAL (left join):",
		// ?x and ?y are certain once the UNION closes (both branches
		// bind them), so both constraints are pushed ahead of OPTIONAL.
		"FILTER ?x != ?y (pushed down)",
		"FILTER NOT EXISTS (pushed down, per-solution subquery):",
		"GROUP BY ?x",
		"ORDER BY DESC(?n)",
		"LIMIT 5",
		"OFFSET 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExplainAskAndConstruct(t *testing.T) {
	ask := MustParse(`ASK { ?s ?p ?o }`)
	if !strings.Contains(ask.Explain(), "ASK") {
		t.Error("ASK header missing")
	}
	con := MustParse(`CONSTRUCT { ?s <http://t/p> ?o } WHERE { ?s ?p ?o }`)
	if !strings.Contains(con.Explain(), "CONSTRUCT (1 template triples)") {
		t.Errorf("CONSTRUCT header missing:\n%s", con.Explain())
	}
}

func TestExplainPathSyntax(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE {
		?x (^<http://t/a>/<http://t/b>|<http://t/c>+) ?y .
		?y <http://t/d>? ?z .
	}`)
	out := q.Explain()
	if !strings.Contains(out, "(^<http://t/a>/<http://t/b>|<http://t/c>+)") {
		t.Errorf("composite path rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, "<http://t/d>?") {
		t.Errorf("optional path rendering wrong:\n%s", out)
	}
}
