package sparql

import (
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

func TestVariablePredicate(t *testing.T) {
	st, src := fixture()
	q := MustParse(`PREFIX inst: <` + rdf.InstNS + `>
		SELECT ?p ?o WHERE { inst:customer_id ?p ?o }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	// customer_id has: rdf:type, hasName, length = 3 statements.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d: %v", len(res.Rows), res.Rows)
	}
}

func TestFullWildcardPattern(t *testing.T) {
	st, src := fixture()
	q := MustParse(`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["n"].Value != "13" {
		t.Fatalf("n = %v, want 13 (fixture size)", res.Rows[0]["n"])
	}
}

func TestAskWildcard(t *testing.T) {
	st, src := fixture()
	q := MustParse(`ASK { ?s ?p ?o }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ask {
		t.Error("ASK over non-empty graph should be true")
	}
}

func TestVariablePredicateJoin(t *testing.T) {
	st, src := fixture()
	// Which predicates link two named nodes?
	q := MustParse(`PREFIX inst: <` + rdf.InstNS + `>
		SELECT ?p WHERE { inst:partner_id ?p inst:customer_id }`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["p"].Value != rdf.MDWIsMappedTo {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestVariablePredicateBoundByJoin(t *testing.T) {
	st, src := fixture()
	// ?p is bound by the first pattern and reused as a predicate in the
	// second: find pairs connected by the SAME predicate.
	q := MustParse(`PREFIX inst: <` + rdf.InstNS + `>
		SELECT ?b WHERE {
			inst:client_information_id ?p inst:partner_id .
			inst:partner_id ?p ?b .
		}`)
	res, err := q.Exec(src, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || rdf.LocalName(res.Rows[0]["b"].Value) != "customer_id" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSharedSubjectPredicateVariable(t *testing.T) {
	st := fixtureStore(t, []rdf.Triple{
		rdf.T(rdf.IRI("http://t/x"), rdf.IRI("http://t/x"), rdf.IRI("http://t/y")),
		rdf.T(rdf.IRI("http://t/a"), rdf.IRI("http://t/b"), rdf.IRI("http://t/c")),
	})
	q := MustParse(`SELECT ?s WHERE { ?s ?s ?o }`)
	res, err := q.Exec(st.ViewOf("m"), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || rdf.LocalName(res.Rows[0]["s"].Value) != "x" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestVariablePredicateRejectsPathOperators(t *testing.T) {
	for _, q := range []string{
		`SELECT ?s WHERE { ?s ?p* ?o }`,
		`SELECT ?s WHERE { ?s ?p/?q ?o }`,
		`SELECT ?s WHERE { ?s ?p|<http://x> ?o }`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

// fixtureStore builds a one-model store for ad-hoc tests.
func fixtureStore(t *testing.T, ts []rdf.Triple) *store.Store {
	t.Helper()
	st := store.New()
	st.AddAll("m", ts)
	return st
}
