package sparql_test

// Tests for intra-query parallelism: strategy selection, the
// deterministic-order guarantee (parallel execution returns the exact
// row sequence serial execution does, not just the same multiset),
// cancellation (no goroutine outlives ExecCtx), and early termination.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"mdw/internal/rdf"
	"mdw/internal/sparql"
	"mdw/internal/store"
)

// forcedPar returns options that parallelize aggressively: any estimate
// triggers fan-out and morsels are tiny, so even test-sized fixtures
// exercise the worker pool.
func forcedPar(workers int) sparql.ParOptions {
	return sparql.ParOptions{
		MaxWorkers:        workers,
		MorselSize:        8,
		SerialThreshold:   1,
		FrontierThreshold: 1,
	}
}

// serialPar forces serial execution for the baseline runs.
func serialPar() sparql.ParOptions {
	return sparql.ParOptions{MaxWorkers: 1}
}

// parLevels is the worker-count sweep the satellites require: 1, 2, and
// GOMAXPROCS, padded with 4 so multi-worker merging is exercised even on
// small machines.
func parLevels() []int {
	levels := []int{1, 2, 4}
	n := runtime.GOMAXPROCS(0)
	for _, l := range levels {
		if l == n {
			return levels
		}
	}
	return append(levels, n)
}

// typedFixture builds a model whose first join step is answered from an
// index slice ((?s, type, C) probes pos[type][C]), so the serial
// enumeration order is deterministic and parallel runs must reproduce it
// exactly.
func typedFixture(t testing.TB, n int) (store.Source, *store.Dict) {
	t.Helper()
	st := store.New()
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		s := rdf.IRI(fmt.Sprintf("http://d/s%05d", i))
		ts = append(ts, rdf.T(s, rdf.Type, rdf.IRI("http://d/C")))
		ts = append(ts, rdf.T(s, rdf.HasName, rdf.Literal(fmt.Sprintf("n%d", i%17))))
		if i%2 == 0 {
			ts = append(ts, rdf.T(s, rdf.Type, rdf.IRI("http://d/C2")))
		}
	}
	st.AddAll("m", ts)
	return st.ViewOf("m"), st.Dict()
}

// rowStrings renders result rows in order, for exact-sequence comparison.
func rowStrings(res *sparql.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var b strings.Builder
		for _, v := range res.Vars {
			if tm, ok := row[v]; ok {
				fmt.Fprintf(&b, "%s=%s;", v, tm.String())
			}
		}
		out = append(out, b.String())
	}
	return out
}

func mustExec(t *testing.T, q *sparql.Query, src store.Source, dict *store.Dict, opts sparql.ParOptions) *sparql.Result {
	t.Helper()
	res, err := q.PlanOpts(src, dict, opts).Exec()
	if err != nil {
		t.Fatalf("exec failed: %v", err)
	}
	return res
}

// TestParallelDeterministicOrder is the satellite regression test: an
// ORDER BY-free SELECT must return identically ordered rows at
// parallelism 1 and N, matching the serial order.
func TestParallelDeterministicOrder(t *testing.T) {
	src, dict := typedFixture(t, 3000)
	queries := []string{
		`SELECT ?s ?n WHERE { ?s <` + rdf.RDFType + `> <http://d/C> . ?s <` + rdf.MDWHasName + `> ?n }`,
		`SELECT ?s WHERE { ?s <` + rdf.RDFType + `> <http://d/C> }`,
		`SELECT DISTINCT ?n WHERE { ?s <` + rdf.RDFType + `> <http://d/C> . ?s <` + rdf.MDWHasName + `> ?n }`,
		`SELECT ?s ?n WHERE { ?s <` + rdf.RDFType + `> <http://d/C> . ?s <` + rdf.MDWHasName + `> ?n } LIMIT 100`,
	}
	for _, text := range queries {
		q := sparql.MustParse(text)
		serial := rowStrings(mustExec(t, q, src, dict, serialPar()))
		for _, par := range parLevels()[1:] {
			p := q.PlanOpts(src, dict, forcedPar(par))
			if p.Parallelism() < 2 {
				t.Fatalf("parallelism %d not selected for %q (got %d)", par, text, p.Parallelism())
			}
			res, err := p.Exec()
			if err != nil {
				t.Fatalf("parallel exec (%d workers) failed: %v", par, err)
			}
			got := rowStrings(res)
			if len(got) != len(serial) {
				t.Fatalf("row count at %d workers: got %d, want %d (%q)", par, len(got), len(serial), text)
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("row order diverges at %d workers, row %d: got %q, want %q (%q)",
						par, i, got[i], serial[i], text)
				}
			}
		}
	}
}

// TestParallelUnionOrder: both UNION branches are slice-backed scans, so
// the parallel left-then-right merge must reproduce the serial sequence.
func TestParallelUnionOrder(t *testing.T) {
	src, dict := typedFixture(t, 2000)
	text := `SELECT ?s WHERE { { ?s <` + rdf.RDFType + `> <http://d/C> } UNION { ?s <` + rdf.RDFType + `> <http://d/C2> } }`
	q := sparql.MustParse(text)
	serial := rowStrings(mustExec(t, q, src, dict, serialPar()))
	p := q.PlanOpts(src, dict, forcedPar(4))
	if got := p.Parallelism(); got != 2 {
		t.Fatalf("UNION parallelism = %d, want 2", got)
	}
	if !strings.Contains(p.String(), "PARALLEL UNION") {
		t.Fatalf("plan rendering lacks PARALLEL UNION line:\n%s", p)
	}
	res, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(res)
	if len(got) != len(serial) {
		t.Fatalf("row count: got %d, want %d", len(got), len(serial))
	}
	for i := range got {
		if got[i] != serial[i] {
			t.Fatalf("UNION order diverges at row %d: got %q, want %q", i, got[i], serial[i])
		}
	}
}

// chainFixture builds a graph of e-edges with enough branching that BFS
// frontiers grow wide: 60 roots each starting a chain, plus skip edges.
func chainFixture(t testing.TB, n int) (store.Source, *store.Dict) {
	t.Helper()
	st := store.New()
	node := func(i int) rdf.Term { return rdf.IRI(fmt.Sprintf("http://d/n%05d", i)) }
	edge := rdf.IRI("http://d/e")
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		if i+60 < n {
			ts = append(ts, rdf.T(node(i), edge, node(i+60)))
		}
		if i%3 == 0 && i+61 < n {
			ts = append(ts, rdf.T(node(i), edge, node(i+61)))
		}
	}
	st.AddAll("g", ts)
	return st.ViewOf("g"), st.Dict()
}

// TestParallelPathOrder: closures run level-synchronously, so forward,
// backward, and both-unbound path queries must return the serial BFS
// discovery order at any worker count.
func TestParallelPathOrder(t *testing.T) {
	src, dict := chainFixture(t, 1500)
	smallSrc, smallDict := chainFixture(t, 250) // all-pairs closure: keep the universe small
	queries := []string{
		`SELECT ?o WHERE { <http://d/n00000> <http://d/e>+ ?o }`,
		`SELECT ?o WHERE { <http://d/n00003> <http://d/e>* ?o }`,
		`SELECT ?s WHERE { ?s <http://d/e>* <http://d/n01490> }`,
		`SELECT ?s ?o WHERE { ?s <http://d/e>+ ?o }`,
	}
	for qi, text := range queries {
		src, dict := src, dict
		if qi == len(queries)-1 {
			src, dict = smallSrc, smallDict
		}
		q := sparql.MustParse(text)
		serial := rowStrings(mustExec(t, q, src, dict, serialPar()))
		for _, par := range parLevels()[1:] {
			res, err := q.PlanOpts(src, dict, forcedPar(par)).Exec()
			if err != nil {
				t.Fatalf("parallel path exec (%d workers) failed: %v", par, err)
			}
			got := rowStrings(res)
			if len(got) != len(serial) {
				t.Fatalf("path rows at %d workers: got %d, want %d (%q)", par, len(got), len(serial), text)
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("path order diverges at %d workers, row %d (%q)", par, i, text)
				}
			}
		}
	}
}

// TestParallelAggregateParity: aggregation consumes the ordered merge on
// the caller goroutine, so grouped results must match serial exactly.
func TestParallelAggregateParity(t *testing.T) {
	src, dict := typedFixture(t, 3000)
	text := `SELECT ?n (COUNT(?s) AS ?c) WHERE { ?s <` + rdf.RDFType + `> <http://d/C> . ?s <` + rdf.MDWHasName + `> ?n } GROUP BY ?n`
	q := sparql.MustParse(text)
	serial := rowStrings(mustExec(t, q, src, dict, serialPar()))
	for _, par := range parLevels()[1:] {
		got := rowStrings(mustExec(t, q, src, dict, forcedPar(par)))
		if len(got) != len(serial) {
			t.Fatalf("group count at %d workers: got %d, want %d", par, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("aggregate rows diverge at %d workers, row %d: got %q want %q", par, i, got[i], serial[i])
			}
		}
	}
}

// TestParallelSelection checks the planner's thresholds: big scans pick
// the morsel strategy under default options, small ones stay serial, and
// the decision is visible in the plan rendering and Parallelism().
func TestParallelSelection(t *testing.T) {
	big, bigDict := typedFixture(t, 6000)
	small, smallDict := typedFixture(t, 20)
	q := sparql.MustParse(`SELECT ?s WHERE { ?s <` + rdf.RDFType + `> <http://d/C> }`)

	p := q.PlanOpts(big, bigDict, sparql.ParOptions{MaxWorkers: 4})
	if p.Parallelism() < 2 {
		t.Fatalf("big scan not parallel under default thresholds: parallelism=%d", p.Parallelism())
	}
	if !strings.Contains(p.String(), "PARALLEL morsel scan") {
		t.Fatalf("plan rendering lacks PARALLEL morsel line:\n%s", p)
	}

	ps := q.PlanOpts(small, smallDict, sparql.ParOptions{MaxWorkers: 4})
	if ps.Parallelism() != 1 {
		t.Fatalf("small scan parallelized: parallelism=%d", ps.Parallelism())
	}
	if strings.Contains(ps.String(), "PARALLEL") {
		t.Fatalf("serial plan rendering mentions PARALLEL:\n%s", ps)
	}

	// Worker cap 1 disables fan-out regardless of size.
	if got := q.PlanOpts(big, bigDict, serialPar()).Parallelism(); got != 1 {
		t.Fatalf("MaxWorkers 1 still parallel: %d", got)
	}
}

// TestParallelEarlyTermination: ASK and streamed LIMIT must stop the
// pool, return promptly, and leave no workers behind.
func TestParallelEarlyTermination(t *testing.T) {
	src, dict := typedFixture(t, 4000)
	base := runtime.NumGoroutine()
	for _, text := range []string{
		`ASK { ?s <` + rdf.RDFType + `> <http://d/C> }`,
		`SELECT ?s WHERE { ?s <` + rdf.RDFType + `> <http://d/C> } LIMIT 1`,
	} {
		q := sparql.MustParse(text)
		res, err := q.PlanOpts(src, dict, forcedPar(4)).Exec()
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if q.Kind == sparql.AskQuery && !res.Ask {
			t.Fatalf("%q returned false", text)
		}
		if q.Kind == sparql.SelectQuery && len(res.Rows) != 1 {
			t.Fatalf("%q returned %d rows, want 1", text, len(res.Rows))
		}
	}
	waitForGoroutines(t, base)
}

// TestParallelCancellation is the satellite coverage: a context
// cancelled mid-execution stops every worker promptly, ExecCtx returns
// ctx.Err(), and the goroutine count settles back to the baseline.
func TestParallelCancellation(t *testing.T) {
	// A wide cross-ish join: 700 subjects each probing 700 candidates
	// through the shared object keeps execution busy for tens of
	// milliseconds, far longer than the cancellation delay.
	st := store.New()
	var ts []rdf.Triple
	for i := 0; i < 700; i++ {
		ts = append(ts, rdf.T(rdf.IRI(fmt.Sprintf("http://d/a%04d", i)), rdf.IRI("http://d/p1"), rdf.IRI("http://d/hub")))
		ts = append(ts, rdf.T(rdf.IRI(fmt.Sprintf("http://d/b%04d", i)), rdf.IRI("http://d/p2"), rdf.IRI("http://d/hub")))
	}
	st.AddAll("m", ts)
	src, dict := st.ViewOf("m"), st.Dict()
	q := sparql.MustParse(`SELECT ?x ?z WHERE { ?x <http://d/p1> ?y . ?z <http://d/p2> ?y }`)

	base := runtime.NumGoroutine()

	// Cancelled before execution starts: the error surfaces immediately.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := q.PlanOpts(src, dict, forcedPar(4)).ExecCtx(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled exec returned %v, want context.Canceled", err)
	}

	// Cancelled mid-execution: workers notice via the amortized probe.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Microsecond)
		cancel()
	}()
	_, err := q.PlanOpts(src, dict, forcedPar(4)).ExecCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-execution cancel returned %v, want context.Canceled", err)
	}
	waitForGoroutines(t, base)

	// The serial pipeline honors cancellation too.
	sctx, scancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Microsecond)
		scancel()
	}()
	if _, err := q.PlanOpts(src, dict, serialPar()).ExecCtx(sctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial cancel returned %v, want context.Canceled", err)
	}
}

// TestParallelPathCancellation cancels a parallel all-pairs closure.
func TestParallelPathCancellation(t *testing.T) {
	src, dict := chainFixture(t, 4000)
	q := sparql.MustParse(`SELECT ?s ?o WHERE { ?s <http://d/e>+ ?o }`)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Microsecond)
		cancel()
	}()
	if _, err := q.PlanOpts(src, dict, forcedPar(4)).ExecCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("path cancel returned %v, want context.Canceled", err)
	}
	waitForGoroutines(t, base)
}

// waitForGoroutines asserts the goroutine count returns to (near) the
// baseline: the pool's WaitGroup guarantees no worker outlives Exec, so
// anything persistently above the baseline is a leak.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
