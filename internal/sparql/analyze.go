package sparql

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdw/internal/obs"
)

// EXPLAIN ANALYZE: operator-level runtime statistics.
//
// Every plan operator — triple pattern, FILTER/(NOT) EXISTS constraint,
// OPTIONAL, UNION, nested group — is assigned a stat slot index at plan
// time (assignStatSlots, construction-only, so the Plan immutability
// contract holds). An analyzed execution carries one execStatsRec whose
// flat ops slice is indexed by those slots; the evaluator updates it
// through atomic adds, so morsel/union/path workers can share the record
// race-free. When no analysis was requested the record pointer is nil
// and every instrumentation site costs exactly one pointer check.
//
// After execution the flat record is folded back into an ExecStats tree
// that mirrors the plan shape, rendered through the same code path as
// EXPLAIN with `estimated=N actual=M (×ratio)` annotations, and scanned
// for the worst per-operator misestimation (see misest reporting below).

// opStats accumulates runtime evidence for one plan operator. All fields
// are atomics because parallel strategies update them from worker
// goroutines sharing one record.
type opStats struct {
	// loops counts how often the operator started (for a triple pattern:
	// how many upstream solutions probed it; for a constraint: how many
	// solutions it tested).
	loops atomic.Int64
	// rows counts the solutions the operator produced (for a constraint:
	// the solutions that passed).
	rows atomic.Int64
	// durNs is the inclusive wall time spent at or below the operator.
	// Only triple patterns and constraints are timed; structural steps
	// (OPTIONAL/UNION/group) inherit their children's time.
	durNs atomic.Int64
}

// execStatsRec is the per-execution accumulator: one opStats per plan
// slot plus query-wide resource counters.
type execStatsRec struct {
	ops []opStats
	// scanned counts triples examined (index probes streamed through
	// onTriple plus path-engine edge expansions).
	scanned atomic.Int64
	// decodes counts dictionary ID→term decodes (the engine's dominant
	// allocation source; a ReadMemStats-free allocation proxy).
	decodes atomic.Int64

	// Merger-side summary fields; written on the calling goroutine only.
	distinctDropped int64
	groups          int64
	limitStopped    bool
}

func newExecStatsRec(p *Plan) *execStatsRec {
	return &execStatsRec{ops: make([]opStats, p.nstats)}
}

// assignStatSlots walks the plan exactly like the executor will and gives
// every operator its index into the per-execution stats slice. Called
// once at the end of PlanOpts; the indices are construction-time fields
// covered by the Plan immutability contract.
func (p *Plan) assignStatSlots() {
	n := 0
	var walkGroup func(g *planGroup)
	var walkConstraint func(c *plannedConstraint)
	walkConstraint = func(c *plannedConstraint) {
		c.si = n
		n++
		walkGroup(c.group) // EXISTS body, nil for plain filters
	}
	walkGroup = func(g *planGroup) {
		if g == nil {
			return
		}
		for _, st := range g.steps {
			switch s := st.(type) {
			case *bgpStep:
				for _, pp := range s.patterns {
					pp.si = n
					n++
					for _, c := range pp.pushed {
						walkConstraint(c)
					}
				}
			case *filterStep:
				walkConstraint(s.c)
			case *optionalStep:
				s.si = n
				n++
				walkGroup(s.group)
			case *unionStep:
				s.si = n
				n++
				walkGroup(s.left)
				walkGroup(s.right)
			case *groupStep:
				s.si = n
				n++
				walkGroup(s.group)
			}
		}
	}
	walkGroup(p.root)
	p.nstats = n
}

// OpStats is the runtime evidence of one plan operator, arranged as a
// tree mirroring the plan shape (GET /api/query?...&analyze=1 returns it
// as JSON).
type OpStats struct {
	// Op names the operator kind: pattern, filter, exists, optional,
	// union, group.
	Op string `json:"op"`
	// Detail is the operator's rendered form (the pattern or expression).
	Detail string `json:"detail,omitempty"`
	// Estimate is the planner's per-loop cardinality estimate; -1 when
	// the operator carries none (constraints, structural steps, plans
	// built without a source).
	Estimate float64 `json:"estimate"`
	// Rows is the total number of solutions produced across all loops.
	Rows int64 `json:"rows"`
	// Loops is how many times the operator ran (0 = never executed).
	Loops int64 `json:"loops"`
	// Time is the inclusive wall time (patterns and constraints only).
	Time time.Duration `json:"timeNs"`
	// Ratio is the symmetric misestimation factor between Estimate and
	// per-loop actual rows (>= 1; 0 when no estimate applies).
	Ratio    float64    `json:"ratio,omitempty"`
	Children []*OpStats `json:"children,omitempty"`
}

// ExecStats is the result of one analyzed execution: the operator tree,
// query-wide resource accounting, the parallel evidence, and the worst
// planner misestimation found. String renders the plan with per-operator
// actuals through the same code that renders EXPLAIN.
type ExecStats struct {
	Root     *OpStats      `json:"root"`
	Rows     int           `json:"rows"`
	Duration time.Duration `json:"durationNs"`
	// Strategy is the parallel strategy actually used ("serial" when the
	// execution never fanned out), with the workers and tasks launched.
	Strategy string `json:"strategy"`
	Workers  int    `json:"workers,omitempty"`
	Tasks    int    `json:"tasks,omitempty"`
	// Resource accounting: triples examined and terms decoded.
	RowsScanned int64 `json:"rowsScanned"`
	TermDecodes int64 `json:"termDecodes"`
	// DistinctDropped counts solutions removed by streaming DISTINCT;
	// Groups the aggregation groups built; LimitStopped whether a
	// streamed LIMIT cut execution short.
	DistinctDropped int64 `json:"distinctDropped,omitempty"`
	Groups          int64 `json:"groups,omitempty"`
	LimitStopped    bool  `json:"limitStopped,omitempty"`
	// MaxRatio is the largest per-operator misestimation factor observed
	// (over operators that actually ran); WorstOp names the operator.
	MaxRatio float64 `json:"maxRatio,omitempty"`
	WorstOp  string  `json:"worstOp,omitempty"`

	plan *Plan
	rec  *execStatsRec
}

// misestRatio is the symmetric estimate-vs-actual factor, +1-smoothed so
// zero estimates and empty results stay finite: ×1 is a perfect
// estimate, ×10 means off by an order of magnitude either way.
func misestRatio(est, actual float64) float64 {
	return math.Max((est+1)/(actual+1), (actual+1)/(est+1))
}

// finishAnalyze folds the flat record into the public tree and reports
// a crossing of the misestimation threshold.
func (p *Plan) finishAnalyze(rec *execStatsRec, info execInfo, d time.Duration, rows int) *ExecStats {
	st := &ExecStats{
		Rows:            rows,
		Duration:        d,
		Strategy:        info.strategy,
		Workers:         info.workers,
		Tasks:           info.tasks,
		RowsScanned:     rec.scanned.Load(),
		TermDecodes:     rec.decodes.Load(),
		DistinctDropped: rec.distinctDropped,
		Groups:          rec.groups,
		LimitStopped:    rec.limitStopped,
		plan:            p,
		rec:             rec,
	}
	if st.Strategy == "" {
		st.Strategy = "serial"
	}
	st.Root = &OpStats{Op: "plan", Estimate: -1, Rows: int64(rows), Loops: 1, Time: d}
	st.Root.Children = p.buildOpTree(p.root, rec)
	// The worst misestimation: only triple patterns carry estimates, and
	// only operators that actually ran are evidence (an operator with
	// zero loops was starved by its upstream, not misestimated).
	if p.src != nil {
		var scan func(ops []*OpStats)
		scan = func(ops []*OpStats) {
			for _, op := range ops {
				if op.Ratio > st.MaxRatio {
					st.MaxRatio = op.Ratio
					st.WorstOp = op.Detail
				}
				scan(op.Children)
			}
		}
		scan(st.Root.Children)
	}
	// Early-terminated executions (streamed LIMIT reached, ASK satisfied)
	// are excluded from the feedback channel: their actual row counts are
	// truncated by the stop, so the gap against the estimate says nothing
	// about the planner's statistics.
	earlyStop := rec.limitStopped || p.query.Kind == AskQuery
	if st.MaxRatio >= MisestimateThreshold() && !earlyStop {
		obsMisestimate.Inc()
		obs.DefaultMisestimates().Record(obs.Misestimate{
			Fingerprint: p.query.Fingerprint(),
			Query:       p.query.Text,
			Ratio:       st.MaxRatio,
			WorstOp:     st.WorstOp,
			Plan:        st.String(),
		})
	}
	return st
}

// buildOpTree mirrors assignStatSlots over the same plan walk, pairing
// each operator with its slot.
func (p *Plan) buildOpTree(g *planGroup, rec *execStatsRec) []*OpStats {
	if g == nil {
		return nil
	}
	var out []*OpStats
	constraintNode := func(c *plannedConstraint) *OpStats {
		op := &rec.ops[c.si]
		kind, detail := "filter", ""
		if c.exists != nil {
			kind = "exists"
			detail = "FILTER EXISTS"
			if c.exists.Negated {
				detail = "FILTER NOT EXISTS"
			}
		} else {
			detail = exprString(c.filter.Expr)
		}
		return &OpStats{
			Op: kind, Detail: detail, Estimate: -1,
			Rows: op.rows.Load(), Loops: op.loops.Load(),
			Time:     time.Duration(op.durNs.Load()),
			Children: p.buildOpTree(c.group, rec),
		}
	}
	for _, st := range g.steps {
		switch s := st.(type) {
		case *bgpStep:
			for _, pp := range s.patterns {
				op := &rec.ops[pp.si]
				node := &OpStats{
					Op: "pattern",
					Detail: fmt.Sprintf("%s %s %s",
						explainNode(pp.tp.S), explainPath(pp.tp.P), explainNode(pp.tp.O)),
					Estimate: -1,
					Rows:     op.rows.Load(),
					Loops:    op.loops.Load(),
					Time:     time.Duration(op.durNs.Load()),
				}
				if p.src != nil {
					node.Estimate = pp.est
					if node.Loops > 0 {
						node.Ratio = misestRatio(pp.est, float64(node.Rows)/float64(node.Loops))
					}
				}
				for _, c := range pp.pushed {
					node.Children = append(node.Children, constraintNode(c))
				}
				out = append(out, node)
			}
		case *filterStep:
			out = append(out, constraintNode(s.c))
		case *optionalStep:
			op := &rec.ops[s.si]
			out = append(out, &OpStats{
				Op: "optional", Estimate: -1,
				Rows: op.rows.Load(), Loops: op.loops.Load(),
				Children: p.buildOpTree(s.group, rec),
			})
		case *unionStep:
			op := &rec.ops[s.si]
			node := &OpStats{
				Op: "union", Estimate: -1,
				Rows: op.rows.Load(), Loops: op.loops.Load(),
			}
			node.Children = append(p.buildOpTree(s.left, rec), p.buildOpTree(s.right, rec)...)
			out = append(out, node)
		case *groupStep:
			op := &rec.ops[s.si]
			out = append(out, &OpStats{
				Op: "group", Estimate: -1,
				Rows: op.rows.Load(), Loops: op.loops.Load(),
				Children: p.buildOpTree(s.group, rec),
			})
		}
	}
	return out
}

// String renders the analyzed plan: the ordinary EXPLAIN rendering with
// per-operator `estimated=N actual=M (×ratio)` annotations, followed by
// the execution summary.
func (st *ExecStats) String() string {
	var b strings.Builder
	b.WriteString(st.plan.render(st.rec))
	fmt.Fprintf(&b, "ACTUAL: %d rows in %s", st.Rows, fmtDur(st.Duration))
	if st.Strategy != "serial" && st.Strategy != "" {
		fmt.Fprintf(&b, ", %s x%d workers (%d tasks)", st.Strategy, st.Workers, st.Tasks)
	}
	fmt.Fprintf(&b, "; scanned %d triples, decoded %d terms", st.RowsScanned, st.TermDecodes)
	if st.DistinctDropped > 0 {
		fmt.Fprintf(&b, ", DISTINCT dropped %d", st.DistinctDropped)
	}
	if st.Groups > 0 {
		fmt.Fprintf(&b, ", %d groups", st.Groups)
	}
	if st.LimitStopped {
		b.WriteString(", stopped at LIMIT")
	}
	b.WriteByte('\n')
	if st.MaxRatio >= MisestimateThreshold() {
		fmt.Fprintf(&b, "MISESTIMATE: worst operator %s off by x%.1f (threshold x%.0f)\n",
			st.WorstOp, st.MaxRatio, MisestimateThreshold())
	}
	return b.String()
}

// fmtDur rounds a duration for plan annotations: enough precision to
// compare operators, not enough to churn golden output width.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(10 * time.Nanosecond).String()
	}
}

// fmtCount renders a (possibly per-loop averaged) row count: whole
// numbers without a fraction, averages with one decimal.
func fmtCount(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.1f", f)
}

// ---------------------------------------------------------------------
// Misestimation threshold and slow-query auto-analyze arming.

// misestThreshold holds the float64 bits of the misestimation reporting
// threshold: analyzed executions whose worst per-operator ratio reaches
// it increment mdw_sparql_misestimate_total and land in the bounded
// misestimation log.
var misestThreshold atomic.Uint64

// DefaultMisestimateThreshold is the factor by which an estimate must be
// off (in either direction, +1-smoothed) before the execution counts as
// misestimated: one order of magnitude minus headroom for honest
// rounding.
const DefaultMisestimateThreshold = 8.0

func init() {
	misestThreshold.Store(math.Float64bits(DefaultMisestimateThreshold))
}

// MisestimateThreshold returns the current reporting threshold.
func MisestimateThreshold() float64 {
	return math.Float64frombits(misestThreshold.Load())
}

// SetMisestimateThreshold replaces the reporting threshold (mdwd's
// -misest-threshold flag); values below 1 clamp to 1.
func SetMisestimateThreshold(x float64) {
	if x < 1 || math.IsNaN(x) {
		x = 1
	}
	misestThreshold.Store(math.Float64bits(x))
}

// Slow-query auto-analyze: when a slow execution had no stats to ship,
// its fingerprint is armed and the statement's next execution collects
// them — so every slow statement's log entry gains an analyzed plan one
// execution later, while the steady-state hot path pays one atomic load
// (armedCount == 0) per execution.
var (
	armedMu    sync.Mutex
	armedFps   = map[string]bool{}
	armedCount atomic.Int32
)

// armedCap bounds the armed set; a workload slow enough to arm hundreds
// of distinct fingerprints before any re-executes gets the analysis on
// the statements that do recur, which is the point.
const armedCap = 128

func armAnalyze(fp string) {
	armedMu.Lock()
	defer armedMu.Unlock()
	if armedFps[fp] {
		return
	}
	if len(armedFps) >= armedCap {
		return
	}
	armedFps[fp] = true
	armedCount.Store(int32(len(armedFps)))
}

func analyzeArmed(fp string) bool {
	if armedCount.Load() == 0 {
		return false
	}
	armedMu.Lock()
	defer armedMu.Unlock()
	return armedFps[fp]
}

func disarmAnalyze(fp string) {
	armedMu.Lock()
	defer armedMu.Unlock()
	delete(armedFps, fp)
	armedCount.Store(int32(len(armedFps)))
}
