package sparql_test

// Differential harness for the results cache: the same seeded random
// query mix as the planner sweep, but every query executes three ways —
// the naive reference (never cached), a first planned execution (cache
// miss, populates), and an immediate repeat (served from the cache for
// cacheable shapes). All three must agree. Mutations are interleaved
// every few queries so generation-keyed invalidation is exercised under
// the sweep: a stale entry served after a mutation would diverge from
// the naive reference, which always sees current data.

import (
	"fmt"
	"math/rand"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/rescache"
	"mdw/internal/sparql"
)

func TestDifferentialResultsCache(t *testing.T) {
	c := rescache.Enable(0, 0)
	defer rescache.Enable(0, 0)

	rng := rand.New(rand.NewSource(99))
	fixtures := []diffFixture{simpleFixture(rng), entailedFixture(rng)}
	const perFixture = 150 // 300 queries total, each executed thrice
	const mutateEvery = 25

	var cacheable int // repeats that must have been served by the cache
	for _, fx := range fixtures {
		g := &queryGen{rng: rng, fx: fx}
		var lastFull string // last cacheable query, re-checked after mutations
		for i := 0; i < perFixture; i++ {
			if i > 0 && i%mutateEvery == 0 {
				// Bump the member model's generation: every cached entry
				// over this view is now unreachable. The fresh object IRI
				// also grows the dictionary, churning plan revalidation.
				fx.st.Add(fx.mutModel, rdf.T(
					rdf.IRI(fx.subjects[rng.Intn(len(fx.subjects))]),
					rdf.IRI(fx.preds[rng.Intn(len(fx.preds))]),
					rdf.IRI(fmt.Sprintf("http://d/mut-%s-%d", fx.name, i))))
				if lastFull != "" {
					// The previously cached query must recompute against
					// the mutated data, not serve its stale entry.
					q, err := sparql.Parse(lastFull)
					if err != nil {
						t.Fatalf("[%s #%d] reparse failed: %v", fx.name, i, err)
					}
					checkCacheDiff(t, fx, q, lastFull, "", &cacheable)
				}
			}
			full, unlimited := g.query()
			q, err := sparql.Parse(full)
			if err != nil {
				t.Fatalf("[%s #%d] generator emitted unparsable query %q: %v", fx.name, i, full, err)
			}
			checkCacheDiff(t, fx, q, full, unlimited, &cacheable)
			if unlimited == "" {
				lastFull = full
			}
		}
	}

	st := c.Stats()
	if st.Hits < int64(cacheable) {
		t.Errorf("cache hits = %d, want >= %d (one per cacheable repeat)", st.Hits, cacheable)
	}
	if st.Misses == 0 {
		t.Error("sweep recorded no cache misses; cache was never consulted")
	}
}

// checkCacheDiff executes q three ways against fx and asserts agreement:
// naive reference, planned first run, planned repeat. For cacheable
// shapes (everything the generator emits except LIMIT without ORDER BY)
// the repeat is a cache hit and cacheable is incremented.
func checkCacheDiff(t *testing.T, fx diffFixture, q *sparql.Query, full, unlimited string, cacheable *int) {
	t.Helper()
	naive, err := q.ExecNaive(fx.src, fx.dict)
	if err != nil {
		t.Fatalf("[%s] naive exec failed for %q: %v", fx.name, full, err)
	}
	r1, err := q.Exec(fx.src, fx.dict)
	if err != nil {
		t.Fatalf("[%s] first exec failed for %q: %v", fx.name, full, err)
	}
	r2, err := q.Exec(fx.src, fx.dict)
	if err != nil {
		t.Fatalf("[%s] repeat exec failed for %q: %v", fx.name, full, err)
	}
	if q.Kind == sparql.AskQuery {
		if r1.Ask != naive.Ask || r2.Ask != naive.Ask {
			t.Errorf("[%s] ASK divergence on %q: naive=%v first=%v repeat=%v",
				fx.name, full, naive.Ask, r1.Ask, r2.Ask)
		}
		*cacheable++
		return
	}
	nk, k1, k2 := rowKeys(naive), rowKeys(r1), rowKeys(r2)
	if unlimited == "" {
		if !sameMultiset(k1, nk) {
			t.Errorf("[%s] first exec diverged on %q:\nplanned (%d): %v\nnaive   (%d): %v",
				fx.name, full, len(k1), k1, len(nk), nk)
		}
		if !sameMultiset(k2, nk) {
			t.Errorf("[%s] cached repeat diverged on %q:\ncached (%d): %v\nnaive  (%d): %v",
				fx.name, full, len(k2), k2, len(nk), nk)
		}
		*cacheable++
		return
	}
	// LIMIT without ORDER BY bypasses the cache (non-deterministic row
	// subset); both runs still must return a right-sized subset of the
	// full solution multiset.
	uq, err := sparql.Parse(unlimited)
	if err != nil {
		t.Fatalf("[%s] unlimited variant unparsable: %v", fx.name, err)
	}
	fullRes, err := uq.ExecNaive(fx.src, fx.dict)
	if err != nil {
		t.Fatalf("[%s] unlimited naive exec failed: %v", fx.name, err)
	}
	fk := rowKeys(fullRes)
	want := len(fk)
	if q.Limit < want {
		want = q.Limit
	}
	if len(k1) != want || len(k2) != want {
		t.Errorf("[%s] LIMIT row count wrong on %q: first=%d repeat=%d want=%d",
			fx.name, full, len(k1), len(k2), want)
	}
	if !subsetOf(k1, fk) || !subsetOf(k2, fk) {
		t.Errorf("[%s] LIMIT rows not drawn from full solutions on %q", fx.name, full)
	}
}
