package sparql

import (
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// Intra-query parallelism. The planner picks one of three strategies from
// its existing cardinality estimates; execution then fans work out to a
// bounded pool while preserving the engine's contracts:
//
//   - morsel-driven BGP scans: the first join step's candidate triples are
//     materialized once (store.Matcher), split into fixed-size morsels, and
//     each worker runs the ordinary streaming depth-first pipeline over its
//     morsel with a private binding env. A merger emits buffered solutions
//     in morsel order, so downstream consumers (DISTINCT, LIMIT,
//     aggregation) observe exactly the serial solution order.
//   - parallel UNION branches: each branch streams into its own buffer;
//     the merger emits left-then-right, the serial order.
//   - parallel frontier BFS for p*/p+ property paths: each frontier level
//     is expanded across workers against the frozen visited set of the
//     previous levels, then merged sequentially in frontier order —
//     reproducing the serial BFS discovery order exactly.
//
// Streaming semantics survive: ASK stops all workers at the first emitted
// solution, LIMIT-without-ORDER-BY stops after N merged rows, and context
// cancellation propagates through every worker. Small queries stay serial
// (SerialThreshold), so plan-cache-hot point lookups pay zero overhead —
// the decision is taken once at plan time, not per execution.

// ParOptions tunes intra-query parallelism for one plan. The zero value
// of any field means "use the default"; DefaultParOptions is what
// Query.Plan applies.
type ParOptions struct {
	// MaxWorkers caps the worker pool (default: MaxParallelism(), itself
	// defaulting to GOMAXPROCS). 1 disables parallel execution.
	MaxWorkers int
	// MorselSize is the number of first-step candidate triples per morsel
	// (default 256): large enough that per-morsel overhead (one buffer,
	// one channel send) is noise against hundreds of index probes, small
	// enough that a skewed candidate's work spreads across workers.
	MorselSize int
	// SerialThreshold is the estimated row count below which execution
	// stays serial (default 4096): fan-out costs two goroutine wakeups
	// and a buffer per morsel, which only pays off when the scan is at
	// least thousands of probes.
	SerialThreshold int
	// FrontierThreshold is the BFS frontier width below which a level is
	// expanded serially (default 64): a narrow frontier — the common case
	// for the paper's linear lineage chains — has too little work per
	// level to amortize a barrier.
	FrontierThreshold int
}

const (
	defaultMorselSize        = 256
	defaultSerialThreshold   = 4096
	defaultFrontierThreshold = 64
)

// DefaultParOptions returns the options Query.Plan uses: everything at
// its default, capped by the process-wide MaxParallelism.
func DefaultParOptions() ParOptions {
	return ParOptions{MaxWorkers: MaxParallelism()}
}

func (o ParOptions) normalized() ParOptions {
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = MaxParallelism()
	}
	if o.MorselSize <= 0 {
		o.MorselSize = defaultMorselSize
	}
	if o.SerialThreshold <= 0 {
		o.SerialThreshold = defaultSerialThreshold
	}
	if o.FrontierThreshold <= 0 {
		o.FrontierThreshold = defaultFrontierThreshold
	}
	return o
}

// maxPar is the process-wide worker cap: GOMAXPROCS, overridden by the
// MDW_PARALLELISM environment variable at init and by SetMaxParallelism
// (the mdwd -parallelism flag) at runtime. Plans snapshot it when built,
// so changing it does not retune already-cached plans.
var maxPar atomic.Int32

func init() {
	n := runtime.GOMAXPROCS(0)
	if s := os.Getenv("MDW_PARALLELISM"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			n = v
		}
	}
	maxPar.Store(int32(n))
}

// MaxParallelism returns the process-wide cap on workers per query.
func MaxParallelism() int { return int(maxPar.Load()) }

// SetMaxParallelism sets the process-wide cap on workers per query;
// values below 1 clamp to 1 (serial execution).
func SetMaxParallelism(n int) {
	if n < 1 {
		n = 1
	}
	maxPar.Store(int32(n))
}

type parStrategy int

const (
	parNone parStrategy = iota
	parMorsel
	parUnion
	parPath
)

// parDecision is the plan-time parallelism choice, rendered by
// Plan.String and acted on by the evaluator's runRoot.
type parDecision struct {
	strategy    parStrategy
	workers     int
	morsel      int
	frontierMin int
	est         float64 // estimate that justified the choice
}

// decidePar picks the execution strategy for the plan's root group. Only
// executable plans (src and dict present) with a worker budget of at
// least 2 parallelize; everything else — including every Explain-only
// plan — keeps the zero-value decision, parNone.
func (p *Plan) decidePar(o ParOptions) {
	o = o.normalized()
	if p.src == nil || p.dict == nil || o.MaxWorkers < 2 || len(p.root.steps) == 0 {
		return
	}
	switch st := p.root.steps[0].(type) {
	case *bgpStep:
		pp := st.patterns[0]
		if pp.pk == pkPath {
			// The first step is a property path: morsels cannot partition
			// it (the path engine materializes endpoint pairs itself), but
			// a closure over a large edge set parallelizes level by level.
			est := p.pathEdgeEstimate(pp.tp.P)
			if hasRepeat(pp.tp.P) && est >= float64(o.SerialThreshold) {
				p.par = parDecision{strategy: parPath, workers: o.MaxWorkers,
					morsel: o.MorselSize, frontierMin: o.FrontierThreshold, est: est}
			}
			return
		}
		if pp.est < float64(o.SerialThreshold) {
			return
		}
		w := int(math.Ceil(pp.est / float64(o.MorselSize)))
		if w > o.MaxWorkers {
			w = o.MaxWorkers
		}
		if w >= 2 {
			p.par = parDecision{strategy: parMorsel, workers: w,
				morsel: o.MorselSize, frontierMin: o.FrontierThreshold, est: pp.est}
		}
	case *unionStep:
		est := branchEstimate(st.left) + branchEstimate(st.right)
		if est >= float64(o.SerialThreshold) {
			p.par = parDecision{strategy: parUnion, workers: 2,
				morsel: o.MorselSize, frontierMin: o.FrontierThreshold, est: est}
		}
	}
}

// Parallelism returns the degree of parallelism the plan may use: 1 for
// serial plans, the worker cap otherwise. Statement statistics record it
// per fingerprint (obs.ParallelPlan).
func (p *Plan) Parallelism() int {
	if p.par.strategy == parNone {
		return 1
	}
	return p.par.workers
}

// branchEstimate is the estimated cardinality of a UNION branch's first
// join step — the work a branch worker would own.
func branchEstimate(g *planGroup) float64 {
	for _, st := range g.steps {
		if b, ok := st.(*bgpStep); ok && len(b.patterns) > 0 {
			return b.patterns[0].est
		}
	}
	return 0
}

// pathEdgeEstimate estimates the number of edges a path traversal can
// touch: the triple count of every predicate the path mentions.
func (p *Plan) pathEdgeEstimate(pt Path) float64 {
	switch pp := pt.(type) {
	case PathIRI:
		pid, ok := p.dict.Lookup(rdf.IRI(pp.IRI))
		if !ok {
			return 0
		}
		return float64(estCountOn(p.src, store.Wildcard, pid, store.Wildcard))
	case PathInverse:
		return p.pathEdgeEstimate(pp.P)
	case PathAlt:
		var n float64
		for _, part := range pp.Parts {
			n += p.pathEdgeEstimate(part)
		}
		return n
	case PathSeq:
		var n float64
		for _, part := range pp.Parts {
			n += p.pathEdgeEstimate(part)
		}
		return n
	case PathRepeat:
		return p.pathEdgeEstimate(pp.P)
	default:
		return 0
	}
}

// hasRepeat reports whether the path contains a closure (p* / p+ / p{n,m}).
func hasRepeat(pt Path) bool {
	switch pp := pt.(type) {
	case PathRepeat:
		return true
	case PathInverse:
		return hasRepeat(pp.P)
	case PathAlt:
		for _, part := range pp.Parts {
			if hasRepeat(part) {
				return true
			}
		}
	case PathSeq:
		for _, part := range pp.Parts {
			if hasRepeat(part) {
				return true
			}
		}
	}
	return false
}

func estCountOn(src store.Source, s, p, o store.ID) int {
	if ce, ok := src.(store.CardEstimator); ok {
		return ce.EstCount(s, p, o)
	}
	return src.Count(s, p, o)
}

// ---------------------------------------------------------------------
// Evaluator integration.

// runRoot streams the root group's solutions into emit, dispatching to
// the plan's parallel strategy when one was chosen. Every solution passed
// to emit is already cloned when it crossed a worker boundary; emit runs
// exclusively on the calling goroutine, so downstream state (DISTINCT
// sets, LIMIT counters, aggregation maps) needs no locking.
func (ev *evaluator) runRoot(emit func(env) bool) {
	p := ev.plan
	switch p.par.strategy {
	case parMorsel:
		ev.runMorselRoot(emit)
	case parUnion:
		ev.runUnionRoot(emit)
	case parPath:
		ev.pathWorkers = p.par.workers
		ev.frontierMin = p.par.frontierMin
		ev.runGroup(p.root, env{}, emit)
		if ev.parStrategy == "" {
			// Eligible but the traversal never grew a frontier wide
			// enough to fan out.
			obsParFallback.Inc()
		}
	default: // parNone
		ev.runGroup(p.root, env{}, emit)
	}
}

// runMorselRoot partitions the first join step's candidates into morsels
// and fans them out. When the live candidate count undershoots the
// plan-time estimate (stale statistics), it falls back to the serial
// pipeline — correctness never depends on the estimate.
func (ev *evaluator) runMorselRoot(emit func(env) bool) {
	p := ev.plan
	bgp := p.root.steps[0].(*bgpStep)
	pp := bgp.patterns[0]
	sid, svar, ok := derefNode(pp.s, nil)
	if !ok {
		return // constant unknown to the dictionary: zero matches
	}
	oid, ovar, ok := derefNode(pp.o, nil)
	if !ok {
		return
	}
	pid := store.Wildcard
	if pp.pk == pkSimple {
		if pp.pid == store.Wildcard {
			return // predicate IRI unknown to the dictionary
		}
		pid = pp.pid
	}
	cands := collectMatches(ev.src, sid, pid, oid)
	if st := ev.stats; st != nil {
		// The first pattern runs as one logical scan over the candidate
		// set; its matches are counted per morsel as workers replay them.
		st.ops[pp.si].loops.Add(1)
	}
	msize := p.par.morsel
	if len(cands) < 2*msize {
		obsParFallback.Inc()
		ev.runMorsel(bgp, p.root, cands, svar, ovar, emit)
		return
	}
	ntasks := (len(cands) + msize - 1) / msize
	workers := p.par.workers
	if workers > ntasks {
		workers = ntasks
	}
	obsParExecMorsel.Inc()
	obsParMorsels.Add(int64(ntasks))
	obsParWorkers.Add(int64(workers))
	ev.parStrategy, ev.parWorkers, ev.parTasks = "morsel", workers, ntasks
	ev.orderedRun(workers, ntasks, func(wev *evaluator, task int, bufEmit func(env) bool) {
		lo := task * msize
		hi := min(lo+msize, len(cands))
		wev.runMorsel(bgp, p.root, cands[lo:hi], svar, ovar, bufEmit)
	}, emit)
}

// runMorsel runs the ordinary streaming pipeline over one slice of the
// first pattern's candidate triples: it reproduces exactly what next(0)
// does, except that the index enumeration is replaced by the slice.
func (ev *evaluator) runMorsel(b *bgpStep, root *planGroup, cands []store.ETriple, svar, ovar string, emit func(env) bool) {
	if len(cands) == 0 {
		return
	}
	r := &bgpRun{ev: ev, b: b, s: env{}, emit: func(s env) bool {
		return ev.runSteps(root.steps, 1, s, emit)
	}, frames: make([]bgpFrame, len(b.patterns))}
	for i := range r.frames {
		idx := i
		r.frames[i].cb = func(t store.ETriple) bool { return r.onTriple(idx, t) }
	}
	f := &r.frames[0]
	f.svar, f.ovar, f.cont = svar, ovar, true
	f.pvarBound = false // a variable predicate is never bound at the root
	for _, t := range cands {
		if ev.err != nil || ev.stopped() {
			return
		}
		if !r.onTriple(0, t) {
			return
		}
	}
}

// runUnionRoot evaluates the two branches of a root-level UNION
// concurrently, then emits left-buffer solutions before right-buffer
// ones — the serial order.
func (ev *evaluator) runUnionRoot(emit func(env) bool) {
	p := ev.plan
	u := p.root.steps[0].(*unionStep)
	branches := [2]*planGroup{u.left, u.right}
	obsParExecUnion.Inc()
	obsParWorkers.Add(2)
	ev.parStrategy, ev.parWorkers, ev.parTasks = "union", 2, 2
	if st := ev.stats; st != nil {
		st.ops[u.si].loops.Add(1)
	}
	ev.orderedRun(2, 2, func(wev *evaluator, task int, bufEmit func(env) bool) {
		wev.runGroup(branches[task], env{}, func(s env) bool {
			if st := wev.stats; st != nil {
				st.ops[u.si].rows.Add(1)
			}
			return wev.runSteps(p.root.steps, 1, s, bufEmit)
		})
	}, emit)
}

// collectMatches materializes the candidate triples of one pattern.
// Sources implementing store.Matcher enumerate deterministically (index
// order for slice-backed access paths, sorted-key order for map walks);
// anything else falls back to one ForEach pass.
func collectMatches(src store.Source, s, p, o store.ID) []store.ETriple {
	if m, ok := src.(store.Matcher); ok {
		return m.Matches(s, p, o)
	}
	out := make([]store.ETriple, 0, src.Count(s, p, o))
	src.ForEach(s, p, o, func(t store.ETriple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ---------------------------------------------------------------------
// The ordered worker pool.

// parRun is the shared state of one parallel execution: a stop flag the
// merger raises on early termination, an abort channel that wakes
// blocked workers, and the first worker error. The sync.Once guarantees
// the channel closes exactly once whether the run ends by completion,
// early stop, or error.
type parRun struct {
	stop  atomic.Bool
	abort chan struct{}
	once  sync.Once
	err   error
}

func (pr *parRun) fail(err error) {
	pr.once.Do(func() {
		pr.err = err
		pr.stop.Store(true)
		close(pr.abort)
	})
}

func (pr *parRun) finish() {
	pr.once.Do(func() {
		pr.stop.Store(true)
		close(pr.abort)
	})
}

// stopped reports whether a parallel merger asked this (worker)
// evaluator to stop producing.
func (ev *evaluator) stopped() bool {
	return ev.parStop != nil && ev.parStop.Load()
}

// orderedRun executes ntasks task bodies on a pool of workers and emits
// their buffered solutions strictly in task order on the calling
// goroutine. Tasks are claimed from an atomic counter; a semaphore keeps
// at most 2×workers tasks materialized ahead of the merger, bounding
// memory on large scans while keeping every worker busy. The function
// returns only after every worker has exited (the cancellation
// guarantee: no goroutine outlives the call).
func (ev *evaluator) orderedRun(workers, ntasks int, task func(wev *evaluator, task int, emit func(env) bool), emit func(env) bool) {
	pr := &parRun{abort: make(chan struct{})}
	inflight := min(workers*2, ntasks)
	sem := make(chan struct{}, inflight)
	for i := 0; i < inflight; i++ {
		sem <- struct{}{}
	}
	results := make([]chan []env, ntasks)
	for i := range results {
		results[i] = make(chan []env, 1)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wev := &evaluator{src: ev.src, dict: ev.dict, ctx: ev.ctx, parStop: &pr.stop, stats: ev.stats}
			for {
				select {
				case <-sem:
				case <-pr.abort:
					return
				}
				if pr.stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= ntasks {
					return
				}
				var buf []env
				task(wev, i, func(s env) bool {
					if pr.stop.Load() {
						return false
					}
					buf = append(buf, s.clone())
					return true
				})
				if wev.err != nil {
					pr.fail(wev.err)
					return
				}
				results[i] <- buf
			}
		}()
	}
merge:
	for i := 0; i < ntasks; i++ {
		var buf []env
		select {
		case buf = <-results[i]:
		case <-pr.abort:
			break merge
		}
		sem <- struct{}{}
		for _, s := range buf {
			if !emit(s) {
				break merge
			}
		}
	}
	pr.finish()
	wg.Wait()
	if pr.err != nil && ev.err == nil {
		ev.err = pr.err
	}
}

// cancelled reports whether the execution's context was cancelled. The
// check is amortized: the context is probed once every cancelTick calls,
// so the per-triple cost on the match hot path is one branch and one
// increment. Once cancelled (or any error is set), it stays true and the
// pipeline unwinds.
const cancelTick = 1024

func (ev *evaluator) cancelled() bool {
	if ev.err != nil {
		return true
	}
	if ev.ctx == nil {
		return false
	}
	ev.tick++
	if ev.tick%cancelTick != 0 {
		return false
	}
	if err := ev.ctx.Err(); err != nil {
		ev.err = err
		return true
	}
	return false
}
