package sparql

import (
	"testing"

	"mdw/internal/rdf"
)

// evalExpr parses and evaluates a standalone filter expression against a
// binding.
func evalExpr(t *testing.T, expr string, b Binding) (Value, error) {
	t.Helper()
	toks, err := lex(expr)
	if err != nil {
		t.Fatalf("lex %q: %v", expr, err)
	}
	p := &qparser{toks: toks, prefixes: map[string]string{}}
	e, err := p.filterExpr()
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return e.Eval(b)
}

func truth(t *testing.T, expr string, b Binding) bool {
	t.Helper()
	v, err := evalExpr(t, expr, b)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	out, err := v.Truth()
	if err != nil {
		t.Fatalf("truth %q: %v", expr, err)
	}
	return out
}

func TestTruthConversions(t *testing.T) {
	cases := []struct {
		term rdf.Term
		want bool
	}{
		{rdf.TypedLiteral("true", rdf.XSDBoolean), true},
		{rdf.TypedLiteral("false", rdf.XSDBoolean), false},
		{rdf.TypedLiteral("1", rdf.XSDBoolean), true},
		{rdf.Integer(0), false},
		{rdf.Integer(7), true},
		{rdf.TypedLiteral("0.0", rdf.XSDDouble), false},
		{rdf.TypedLiteral("2.5", rdf.XSDDecimal), true},
		{rdf.Literal(""), false},
		{rdf.Literal("x"), true},
	}
	for _, tc := range cases {
		got, err := Value{Term: tc.term}.Truth()
		if err != nil {
			t.Errorf("Truth(%v): %v", tc.term, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Truth(%v) = %v, want %v", tc.term, got, tc.want)
		}
	}
	// No EBV for IRIs, non-numeric typed literals.
	if _, err := (Value{Term: rdf.IRI("http://x")}).Truth(); err == nil {
		t.Error("IRI should have no EBV")
	}
	if _, err := (Value{Term: rdf.TypedLiteral("zzz", rdf.XSDInteger)}).Truth(); err == nil {
		t.Error("malformed number should error")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	b := Binding{"x": rdf.Integer(1)}
	// An error on one side of || is absorbed when the other side is true.
	if !truth(t, "?x = 1 || ?unbound = 2", b) {
		t.Error("true || error should be true")
	}
	if !truth(t, "?unbound = 2 || ?x = 1", b) {
		t.Error("error || true should be true")
	}
	// An error on one side of && is absorbed when the other side is false.
	if truth(t, "?x = 2 && ?unbound = 1", b) {
		t.Error("false && error should be false")
	}
	if truth(t, "?unbound = 1 && ?x = 2", b) {
		t.Error("error && false should be false")
	}
	// error && true stays an error.
	if _, err := evalExpr(t, "?unbound = 1 && ?x = 1", b); err == nil {
		t.Error("error && true should propagate the error")
	}
	if _, err := evalExpr(t, "?unbound = 1 || ?x = 2", b); err == nil {
		t.Error("error || false should propagate the error")
	}
}

func TestComparisonOperators(t *testing.T) {
	b := Binding{
		"i": rdf.Integer(10),
		"j": rdf.Integer(3),
		"s": rdf.Literal("abc"),
		"t": rdf.Literal("abd"),
		"u": rdf.IRI("http://t/a"),
		"v": rdf.IRI("http://t/a"),
	}
	checks := map[string]bool{
		"?i > ?j":   true,
		"?i >= ?j":  true,
		"?i < ?j":   false,
		"?i <= ?j":  false,
		"?i != ?j":  true,
		"?i = 10":   true,
		"?s < ?t":   true,
		"?s != ?t":  true,
		"?u = ?v":   true,
		"!(?i > 5)": false,
		"TRUE":      true,
		"FALSE":     false,
	}
	for expr, want := range checks {
		if got := truth(t, expr, b); got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
	// Mixed-kind comparison with ordering operators errors.
	if _, err := evalExpr(t, "?s < ?u", b); err == nil {
		t.Error("ordering literal vs IRI should error")
	}
	// Equality across kinds falls back to term identity.
	if truth(t, "?s = ?u", b) {
		t.Error("literal should not equal IRI")
	}
	if !truth(t, "?s != ?u", b) {
		t.Error("literal != IRI should hold")
	}
}

func TestBooleanComparison(t *testing.T) {
	b := Binding{"x": rdf.Integer(1)}
	if !truth(t, "BOUND(?x) = TRUE", b) {
		t.Error("BOUND comparison failed")
	}
	if truth(t, "BOUND(?y) = TRUE", b) {
		t.Error("unbound should compare false")
	}
	if _, err := evalExpr(t, "BOUND(?x) > TRUE", b); err == nil {
		t.Error("ordering booleans should error")
	}
}

func TestStringBuiltins(t *testing.T) {
	b := Binding{"n": rdf.Literal("Customer_ID")}
	checks := map[string]bool{
		`LCASE(?n) = "customer_id"`:      true,
		`UCASE(?n) = "CUSTOMER_ID"`:      true,
		`STR(?n) = "Customer_ID"`:        true,
		`CONTAINS(?n, "tomer")`:          true,
		`STRSTARTS(?n, "Cust")`:          true,
		`STRENDS(?n, "_ID")`:             true,
		`STRENDS(LCASE(?n), "_id")`:      true,
		`CONTAINS(UCASE(?n), "missing")`: false,
	}
	for expr, want := range checks {
		if got := truth(t, expr, b); got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestRegexFlags(t *testing.T) {
	b := Binding{"n": rdf.Literal("Customer")}
	if !truth(t, `regex(?n, "^cust", "i")`, b) {
		t.Error("case-insensitive flag ignored")
	}
	if truth(t, `regex(?n, "^cust")`, b) {
		t.Error("case-sensitive regex matched wrongly")
	}
}

func TestLangTagLiteralInExpr(t *testing.T) {
	b := Binding{"n": rdf.LangLiteral("Kunde", "de")}
	if !truth(t, `STR(?n) = "Kunde"`, b) {
		t.Error("lang literal STR failed")
	}
}
