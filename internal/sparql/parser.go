package sparql

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"mdw/internal/obs"
	"mdw/internal/rdf"
)

// ParseCtx is Parse carrying a request context: a traced context gets a
// "sparql parse" child span (obs.ChildCtx), an untraced one pays only
// the context lookup.
func ParseCtx(ctx context.Context, query string) (*Query, error) {
	sp, _ := obs.ChildCtx(ctx, "sparql parse")
	defer sp.Finish()
	return Parse(query)
}

// Parse parses a SPARQL query in the supported subset.
func Parse(query string) (*Query, error) {
	t0 := time.Now()
	toks, err := lex(query)
	if err != nil {
		obsParseErrors.Inc()
		return nil, err
	}
	p := &qparser{toks: toks, prefixes: map[string]string{}}
	q, err := p.query()
	if err != nil {
		obsParseErrors.Inc()
		return nil, err
	}
	q.Text = query
	obsParseHist.ObserveSince(t0)
	return q, nil
}

// MustParse parses a query and panics on error; intended for statically
// known queries in services and tests.
func MustParse(query string) *Query {
	q, err := Parse(query)
	if err != nil {
		panic(err)
	}
	return q
}

type qparser struct {
	toks     []token
	pos      int
	prefixes map[string]string
}

func (p *qparser) peek() token { return p.toks[p.pos] }
func (p *qparser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *qparser) atEOF() bool { return p.peek().kind == tkEOF }

func (p *qparser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *qparser) expect(k tokKind, what string) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, got %q", what, p.peek().text)
	}
	return p.next(), nil
}

func (p *qparser) keyword(kw string) bool {
	if p.peek().kind == tkKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *qparser) query() (*Query, error) {
	q := &Query{Limit: -1, Prefixes: p.prefixes}
	for p.keyword("PREFIX") {
		if err := p.prefixDecl(); err != nil {
			return nil, err
		}
	}
	switch {
	case p.keyword("SELECT"):
		q.Kind = SelectQuery
		if p.keyword("DISTINCT") {
			q.Distinct = true
		}
		if err := p.selectItems(q); err != nil {
			return nil, err
		}
	case p.keyword("ASK"):
		q.Kind = AskQuery
	case p.keyword("CONSTRUCT"):
		q.Kind = ConstructQuery
		tmpl, err := p.constructTemplate()
		if err != nil {
			return nil, err
		}
		q.Template = tmpl
	default:
		return nil, p.errf("expected SELECT, ASK, or CONSTRUCT")
	}
	p.keyword("WHERE") // optional
	g, err := p.groupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = g
	if err := p.modifiers(q); err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing token %q", p.peek().text)
	}
	return q, nil
}

func (p *qparser) prefixDecl() error {
	t, err := p.expect(tkPName, "prefix name")
	if err != nil {
		return err
	}
	name := t.text
	if name == "" || name[len(name)-1] != ':' {
		return p.errf("prefix name must end with ':'")
	}
	iri, err := p.expect(tkIRI, "IRI")
	if err != nil {
		return err
	}
	p.prefixes[name[:len(name)-1]] = iri.text
	return nil
}

func (p *qparser) selectItems(q *Query) error {
	if p.peek().kind == tkStar {
		p.next()
		return nil
	}
	for {
		switch p.peek().kind {
		case tkVar:
			q.Select = append(q.Select, SelectItem{Var: p.next().text})
		case tkLParen:
			p.next()
			agg, err := p.aggregate()
			if err != nil {
				return err
			}
			q.Select = append(q.Select, SelectItem{Agg: agg})
		default:
			if len(q.Select) == 0 {
				return p.errf("expected projection variable")
			}
			return nil
		}
	}
}

func (p *qparser) aggregate() (*Aggregate, error) {
	kw, err := p.expect(tkKeyword, "aggregate function")
	if err != nil {
		return nil, err
	}
	if kw.text != "COUNT" {
		return nil, p.errf("unsupported aggregate %q", kw.text)
	}
	if _, err := p.expect(tkLParen, "'('"); err != nil {
		return nil, err
	}
	agg := &Aggregate{Func: "COUNT"}
	if p.keyword("DISTINCT") {
		agg.Distinct = true
	}
	switch p.peek().kind {
	case tkStar:
		p.next()
	case tkVar:
		agg.Var = p.next().text
	default:
		return nil, p.errf("expected '*' or variable in COUNT")
	}
	if _, err := p.expect(tkRParen, "')'"); err != nil {
		return nil, err
	}
	if !p.keyword("AS") {
		return nil, p.errf("expected AS in aggregate projection")
	}
	v, err := p.expect(tkVar, "alias variable")
	if err != nil {
		return nil, err
	}
	agg.As = v.text
	if _, err := p.expect(tkRParen, "')'"); err != nil {
		return nil, err
	}
	return agg, nil
}

func (p *qparser) modifiers(q *Query) error {
	for {
		switch {
		case p.keyword("GROUP"):
			if !p.keyword("BY") {
				return p.errf("expected BY after GROUP")
			}
			for p.peek().kind == tkVar {
				q.GroupBy = append(q.GroupBy, p.next().text)
			}
			if len(q.GroupBy) == 0 {
				return p.errf("expected grouping variable")
			}
		case p.keyword("ORDER"):
			if !p.keyword("BY") {
				return p.errf("expected BY after ORDER")
			}
			for more := true; more; {
				switch {
				case p.keyword("ASC"):
					v, err := p.parenVar()
					if err != nil {
						return err
					}
					q.OrderBy = append(q.OrderBy, OrderCond{Var: v})
				case p.keyword("DESC"):
					v, err := p.parenVar()
					if err != nil {
						return err
					}
					q.OrderBy = append(q.OrderBy, OrderCond{Var: v, Desc: true})
				case p.peek().kind == tkVar:
					q.OrderBy = append(q.OrderBy, OrderCond{Var: p.next().text})
				default:
					if len(q.OrderBy) == 0 {
						return p.errf("expected ordering condition")
					}
					more = false
				}
			}
		case p.keyword("LIMIT"):
			t, err := p.expect(tkInteger, "integer")
			if err != nil {
				return err
			}
			n, err := strconv.Atoi(t.text)
			if err != nil || n < 0 {
				return p.errf("invalid LIMIT %q", t.text)
			}
			q.Limit = n
		case p.keyword("OFFSET"):
			t, err := p.expect(tkInteger, "integer")
			if err != nil {
				return err
			}
			n, err := strconv.Atoi(t.text)
			if err != nil || n < 0 {
				return p.errf("invalid OFFSET %q", t.text)
			}
			q.Offset = n
		default:
			return nil
		}
	}
}

func (p *qparser) parenVar() (string, error) {
	if _, err := p.expect(tkLParen, "'('"); err != nil {
		return "", err
	}
	v, err := p.expect(tkVar, "variable")
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tkRParen, "')'"); err != nil {
		return "", err
	}
	return v.text, nil
}

func (p *qparser) groupPattern() (*GroupPattern, error) {
	if _, err := p.expect(tkLBrace, "'{'"); err != nil {
		return nil, err
	}
	g := &GroupPattern{}
	for {
		switch p.peek().kind {
		case tkRBrace:
			p.next()
			return g, nil
		case tkEOF:
			return nil, p.errf("unterminated group pattern")
		case tkDot:
			p.next()
		case tkKeyword:
			switch p.peek().text {
			case "FILTER":
				p.next()
				// FILTER EXISTS { … } / FILTER NOT EXISTS { … } are
				// pattern-level constraints, not value expressions.
				if p.peek().kind == tkKeyword && (p.peek().text == "EXISTS" || p.peek().text == "NOT") {
					ef, err := p.existsFilter()
					if err != nil {
						return nil, err
					}
					g.Elements = append(g.Elements, ef)
					continue
				}
				e, err := p.filterExpr()
				if err != nil {
					return nil, err
				}
				g.Elements = append(g.Elements, &Filter{Expr: e})
			case "OPTIONAL":
				p.next()
				inner, err := p.groupPattern()
				if err != nil {
					return nil, err
				}
				g.Elements = append(g.Elements, &Optional{Pattern: inner})
			default:
				return nil, p.errf("unexpected keyword %q in group", p.peek().text)
			}
		case tkLBrace:
			inner, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			// A nested group may be the left side of a UNION chain.
			for p.keyword("UNION") {
				right, err := p.groupPattern()
				if err != nil {
					return nil, err
				}
				left := inner
				inner = &GroupPattern{Elements: []Element{&Union{
					Left:  left,
					Right: right,
				}}}
			}
			if len(inner.Elements) == 1 {
				g.Elements = append(g.Elements, inner.Elements[0])
			} else {
				g.Elements = append(g.Elements, inner)
			}
		default:
			ts, err := p.triplesSameSubject()
			if err != nil {
				return nil, err
			}
			for _, t := range ts {
				tc := t
				g.Elements = append(g.Elements, &tc)
			}
		}
	}
}

// constructTemplate parses the CONSTRUCT template: a brace-delimited
// block of plain triple patterns (constant predicates only).
func (p *qparser) constructTemplate() ([]TriplePattern, error) {
	g, err := p.groupPattern()
	if err != nil {
		return nil, err
	}
	var out []TriplePattern
	for _, el := range g.Elements {
		tp, ok := el.(*TriplePattern)
		if !ok {
			return nil, p.errf("CONSTRUCT template allows only triple patterns")
		}
		switch tp.P.(type) {
		case PathIRI, PathVar:
		default:
			return nil, p.errf("CONSTRUCT template predicates must be IRIs or variables")
		}
		out = append(out, *tp)
	}
	if len(out) == 0 {
		return nil, p.errf("empty CONSTRUCT template")
	}
	return out, nil
}

// existsFilter parses EXISTS { … } or NOT EXISTS { … } after FILTER.
func (p *qparser) existsFilter() (*ExistsFilter, error) {
	negated := false
	if p.keyword("NOT") {
		negated = true
	}
	if !p.keyword("EXISTS") {
		return nil, p.errf("expected EXISTS")
	}
	inner, err := p.groupPattern()
	if err != nil {
		return nil, err
	}
	return &ExistsFilter{Pattern: inner, Negated: negated}, nil
}

func (p *qparser) triplesSameSubject() ([]TriplePattern, error) {
	subj, err := p.nodePattern("subject")
	if err != nil {
		return nil, err
	}
	var out []TriplePattern
	for {
		path, err := p.path()
		if err != nil {
			return nil, err
		}
		for {
			obj, err := p.nodePattern("object")
			if err != nil {
				return nil, err
			}
			out = append(out, TriplePattern{S: subj, P: path, O: obj})
			if p.peek().kind == tkComma {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind == tkSemi {
			p.next()
			// Permit a dangling ';' before '.' or '}'.
			if p.peek().kind == tkDot || p.peek().kind == tkRBrace {
				break
			}
			continue
		}
		break
	}
	return out, nil
}

func (p *qparser) nodePattern(what string) (NodePattern, error) {
	t := p.peek()
	switch t.kind {
	case tkVar:
		p.next()
		return VarNode(t.text), nil
	case tkIRI:
		p.next()
		return TermNode(rdf.IRI(t.text)), nil
	case tkPName:
		p.next()
		iri, ok := rdf.ExpandQName(t.text, p.prefixes)
		if !ok {
			return NodePattern{}, p.errf("unknown prefix in %q", t.text)
		}
		return TermNode(rdf.IRI(iri)), nil
	case tkLiteral:
		p.next()
		lex := t.text
		switch p.peek().kind {
		case tkLangTag:
			return TermNode(rdf.LangLiteral(lex, p.next().text)), nil
		case tkDTSep:
			p.next()
			dt := p.peek()
			switch dt.kind {
			case tkIRI:
				p.next()
				return TermNode(rdf.TypedLiteral(lex, dt.text)), nil
			case tkPName:
				p.next()
				iri, ok := rdf.ExpandQName(dt.text, p.prefixes)
				if !ok {
					return NodePattern{}, p.errf("unknown prefix in %q", dt.text)
				}
				return TermNode(rdf.TypedLiteral(lex, iri)), nil
			default:
				return NodePattern{}, p.errf("expected datatype after '^^'")
			}
		}
		return TermNode(rdf.Literal(lex)), nil
	case tkInteger:
		p.next()
		return TermNode(rdf.TypedLiteral(t.text, rdf.XSDInteger)), nil
	default:
		return NodePattern{}, p.errf("expected %s, got %q", what, t.text)
	}
}

// path parses a property path with precedence: alternatives < sequences <
// unary (inverse, closures) < primary. A variable verb stands alone.
func (p *qparser) path() (Path, error) {
	if p.peek().kind == tkVar {
		v := p.next()
		switch p.peek().kind {
		case tkSlash, tkPipe, tkStar, tkPlus, tkCaret:
			return nil, p.errf("variable predicate ?%s cannot be combined with path operators", v.text)
		}
		return PathVar{Name: v.text}, nil
	}
	return p.pathAlt()
}

func (p *qparser) pathAlt() (Path, error) {
	first, err := p.pathSeq()
	if err != nil {
		return nil, err
	}
	parts := []Path{first}
	for p.peek().kind == tkPipe {
		p.next()
		next, err := p.pathSeq()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return PathAlt{Parts: parts}, nil
}

func (p *qparser) pathSeq() (Path, error) {
	first, err := p.pathElt()
	if err != nil {
		return nil, err
	}
	parts := []Path{first}
	for p.peek().kind == tkSlash {
		p.next()
		next, err := p.pathElt()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return PathSeq{Parts: parts}, nil
}

func (p *qparser) pathElt() (Path, error) {
	var base Path
	if p.peek().kind == tkCaret {
		p.next()
		inner, err := p.pathPrimary()
		if err != nil {
			return nil, err
		}
		base = PathInverse{P: inner}
	} else {
		var err error
		base, err = p.pathPrimary()
		if err != nil {
			return nil, err
		}
	}
	switch p.peek().kind {
	case tkStar:
		p.next()
		return PathRepeat{P: base, Min: 0, Max: -1}, nil
	case tkPlus:
		p.next()
		return PathRepeat{P: base, Min: 1, Max: -1}, nil
	case tkQuestion:
		p.next()
		return PathRepeat{P: base, Min: 0, Max: 1}, nil
	}
	return base, nil
}

func (p *qparser) pathPrimary() (Path, error) {
	t := p.peek()
	switch t.kind {
	case tkA:
		p.next()
		return PathIRI{IRI: rdf.RDFType}, nil
	case tkIRI:
		p.next()
		return PathIRI{IRI: t.text}, nil
	case tkPName:
		p.next()
		iri, ok := rdf.ExpandQName(t.text, p.prefixes)
		if !ok {
			return nil, p.errf("unknown prefix in %q", t.text)
		}
		return PathIRI{IRI: iri}, nil
	case tkLParen:
		p.next()
		inner, err := p.pathAlt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, p.errf("expected property path, got %q", t.text)
	}
}
