package sparql

import (
	"strings"
	"testing"
)

// Seed queries: the paper's Listing 1 (search) and Listing 2 (lineage)
// graph patterns as full SPARQL, plus the syntactic corners the parser
// accepts (paths, OPTIONAL, UNION, FILTER EXISTS, CONSTRUCT) and a few
// deliberately broken inputs to push the corpus toward error paths.
var fuzzSeeds = []string{
	`PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?class ?object WHERE {
  ?object a ?c .
  ?c rdfs:label ?class .
  ?object dm:hasName ?term .
  FILTER regex(?term, "customer", "i")
}`,
	`PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
PREFIX dt: <http://www.credit-suisse.com/dwh/mdm/data_transfer#>
SELECT ?source_id ?target_name WHERE {
  ?source_id dt:isMappedTo+ ?target_id .
  ?target_id a dm:Application1_View_Column .
  ?target_id dm:hasName ?target_name .
}`,
	`SELECT * WHERE { ?s ?p ?o }`,
	`SELECT ?s WHERE { ?s a/rdfs:subClassOf* ?c . OPTIONAL { ?s <p> ?v } }`,
	`SELECT ?s WHERE { { ?s a <A> } UNION { ?s a <B> } FILTER EXISTS { ?s <q> ?w } }`,
	`CONSTRUCT { ?s <p> ?o } WHERE { ?o <p> ?s }`,
	`SELECT ?s WHERE { ?s <p> "lit"@en ; <q> "42"^^<http://www.w3.org/2001/XMLSchema#int> . }`,
	`SELECT ?s WHERE { ?s (<p>|^<q>)? ?o }`,
	"SELECT ?s WHERE { ?s <p> 'unterminated",
	`SELECT ?s WHERE { ?s <p ?o }`,
	`PREFIX dm: SELECT ?s WHERE { ?s dm:x ?o }`,
	`SELECT ?s WHERE { ?s foo:bar ?o }`,
	`SELECTT ?s WHERE { ?s ?p ?o }`,
	`SELECT ?s WHERE { ?s ?p ?o`,
	"",
	"\x00\\\"<>{}()?.;,a",
}

// FuzzParse asserts the parser's no-panic contract: any input either
// yields a query or an error, and a successful parse yields an AST
// whose IRI walk terminates without panicking.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		q, err := Parse(in)
		if err != nil {
			if q != nil {
				t.Fatalf("Parse returned both a query and an error: %v", err)
			}
			return
		}
		if q == nil {
			t.Fatal("Parse returned nil query and nil error")
		}
		n := 0
		WalkIRIs(q, func(iri string) { n++ })
		_ = n
	})
}

// FuzzLexer asserts the lexer terminates on arbitrary input and that
// every produced token actually came from the input (no fabricated
// text, no unbounded token stream).
func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		toks, err := lex(in)
		if err != nil {
			return
		}
		if len(toks) > len(in)+1 {
			t.Fatalf("lexer produced %d tokens from %d bytes", len(toks), len(in))
		}
		for _, tok := range toks {
			// Literal text is unescaped and keywords are case-folded,
			// so their text may differ from the raw input; everything
			// else must appear in it.
			if tok.kind == tkLiteral || tok.kind == tkKeyword {
				continue
			}
			if tok.text != "" && !strings.Contains(in, tok.text) {
				t.Fatalf("token %q (kind %d) not found in input", tok.text, tok.kind)
			}
		}
	})
}
