package sparql

import "mdw/internal/obs"

// Metric handles, resolved once at package init. Exec-path updates are
// single atomic operations; the slow-query log's plan rendering is only
// paid for queries that cross the threshold (see Plan.Exec).
var (
	obsParseHist     = obs.Default().Histogram("mdw_sparql_parse_seconds", nil)
	obsParseErrors   = obs.Default().Counter("mdw_sparql_parse_errors_total")
	obsPlanHist      = obs.Default().Histogram("mdw_sparql_plan_seconds", nil)
	obsExecHist      = obs.Default().Histogram("mdw_sparql_exec_seconds", nil)
	obsPlanCacheHit  = obs.Default().Counter("mdw_sparql_plancache_total", "result", "hit")
	obsPlanCacheMiss = obs.Default().Counter("mdw_sparql_plancache_total", "result", "miss")
	obsRows          = obs.Default().Counter("mdw_sparql_rows_total")
	obsEarlyAsk      = obs.Default().Counter("mdw_sparql_early_terminations_total", "kind", "ask")
	obsEarlyLimit    = obs.Default().Counter("mdw_sparql_early_terminations_total", "kind", "limit")

	// Intra-query parallelism: executions per strategy, executions whose
	// plan chose a strategy but fell back to serial at runtime (stale
	// estimates, narrow frontiers), and the fan-out volumes.
	obsParExecMorsel = obs.Default().Counter("mdw_sparql_parallel_execs_total", "strategy", "morsel")
	obsParExecUnion  = obs.Default().Counter("mdw_sparql_parallel_execs_total", "strategy", "union")
	obsParExecPath   = obs.Default().Counter("mdw_sparql_parallel_execs_total", "strategy", "path")
	obsParFallback   = obs.Default().Counter("mdw_sparql_parallel_fallbacks_total")
	obsParWorkers    = obs.Default().Counter("mdw_sparql_parallel_workers_total")
	obsParMorsels    = obs.Default().Counter("mdw_sparql_parallel_morsels_total")
	obsParPathLevels = obs.Default().Counter("mdw_sparql_parallel_path_levels_total")

	// Misestimation feedback: analyzed executions whose worst operator
	// estimate was off by at least the threshold factor.
	obsMisestimate = obs.Default().Counter("mdw_sparql_misestimate_total")
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_sparql_parse_seconds", "SPARQL parse latency.")
	r.SetHelp("mdw_sparql_parse_errors_total", "SPARQL parses rejected with an error.")
	r.SetHelp("mdw_sparql_plan_seconds", "Query planning latency (cache misses only).")
	r.SetHelp("mdw_sparql_exec_seconds", "Plan execution latency.")
	r.SetHelp("mdw_sparql_plancache_total", "Memoized-plan lookups in Query.Exec by result.")
	r.SetHelp("mdw_sparql_rows_total", "Solutions streamed to clients (rows, or triples for CONSTRUCT).")
	r.SetHelp("mdw_sparql_early_terminations_total", "Executions stopped before exhausting the search space (ASK first solution, LIMIT reached).")
	r.SetHelp("mdw_sparql_parallel_execs_total", "Executions that fanned out to the parallel strategy.")
	r.SetHelp("mdw_sparql_parallel_fallbacks_total", "Executions whose plan chose a parallel strategy but ran serially (live data under the threshold).")
	r.SetHelp("mdw_sparql_parallel_workers_total", "Workers launched by parallel executions.")
	r.SetHelp("mdw_sparql_parallel_morsels_total", "Candidate morsels dispatched by parallel BGP scans.")
	r.SetHelp("mdw_sparql_parallel_path_levels_total", "BFS frontier levels expanded in parallel by path closures.")
	r.SetHelp("mdw_sparql_misestimate_total", "Analyzed executions whose worst per-operator estimate/actual ratio reached the misestimation threshold.")
}
