package sparql

import "mdw/internal/obs"

// Metric handles, resolved once at package init. Exec-path updates are
// single atomic operations; the slow-query log's plan rendering is only
// paid for queries that cross the threshold (see Plan.Exec).
var (
	obsParseHist     = obs.Default().Histogram("mdw_sparql_parse_seconds", nil)
	obsParseErrors   = obs.Default().Counter("mdw_sparql_parse_errors_total")
	obsPlanHist      = obs.Default().Histogram("mdw_sparql_plan_seconds", nil)
	obsExecHist      = obs.Default().Histogram("mdw_sparql_exec_seconds", nil)
	obsPlanCacheHit  = obs.Default().Counter("mdw_sparql_plancache_total", "result", "hit")
	obsPlanCacheMiss = obs.Default().Counter("mdw_sparql_plancache_total", "result", "miss")
	obsRows          = obs.Default().Counter("mdw_sparql_rows_total")
	obsEarlyAsk      = obs.Default().Counter("mdw_sparql_early_terminations_total", "kind", "ask")
	obsEarlyLimit    = obs.Default().Counter("mdw_sparql_early_terminations_total", "kind", "limit")
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_sparql_parse_seconds", "SPARQL parse latency.")
	r.SetHelp("mdw_sparql_parse_errors_total", "SPARQL parses rejected with an error.")
	r.SetHelp("mdw_sparql_plan_seconds", "Query planning latency (cache misses only).")
	r.SetHelp("mdw_sparql_exec_seconds", "Plan execution latency.")
	r.SetHelp("mdw_sparql_plancache_total", "Memoized-plan lookups in Query.Exec by result.")
	r.SetHelp("mdw_sparql_rows_total", "Solutions streamed to clients (rows, or triples for CONSTRUCT).")
	r.SetHelp("mdw_sparql_early_terminations_total", "Executions stopped before exhausting the search space (ASK first solution, LIMIT reached).")
}
