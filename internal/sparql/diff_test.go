package sparql_test

// Differential correctness harness for the cost-based planner: seeded
// random queries run through both the planned evaluator (Query.Exec)
// and the retained naive reference evaluator (Query.ExecNaive), and
// their solution multisets must agree. The naive evaluator performs no
// join reordering, no filter pushdown, and no early termination, so any
// planner bug that changes semantics — an unsafe pushdown, a broken
// join order, an overeager LIMIT cut — shows up as a divergence.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/sparql"
	"mdw/internal/store"
)

// diffFixture is one data set both evaluators run against.
type diffFixture struct {
	name string
	src  store.Source
	dict *store.Dict
	// Pools the generator draws from. Constants overlap with the data so
	// joins and filters actually select.
	subjects, preds, objects []string
	// The owning store and a member model of src, retained so sweeps can
	// interleave mutations (the results-cache differential does).
	st       *store.Store
	mutModel string
}

// simpleFixture: one model of dense random triples over small pools, so
// multi-pattern joins produce non-trivial intermediate results.
func simpleFixture(rng *rand.Rand) diffFixture {
	st := store.New()
	var subjects, preds, objects []string
	for i := 0; i < 8; i++ {
		subjects = append(subjects, fmt.Sprintf("http://d/s%d", i))
	}
	for i := 0; i < 4; i++ {
		preds = append(preds, fmt.Sprintf("http://d/p%d", i))
	}
	// Objects include the subjects so paths can chain.
	objects = append(objects, subjects...)
	for i := 0; i < 4; i++ {
		objects = append(objects, fmt.Sprintf("http://d/o%d", i))
	}
	var ts []rdf.Triple
	for i := 0; i < 120; i++ {
		ts = append(ts, rdf.T(
			rdf.IRI(subjects[rng.Intn(len(subjects))]),
			rdf.IRI(preds[rng.Intn(len(preds))]),
			rdf.IRI(objects[rng.Intn(len(objects))])))
	}
	st.AddAll("m", ts)
	return diffFixture{
		name: "simple", src: st.ViewOf("m"), dict: st.Dict(),
		subjects: subjects, preds: preds, objects: objects,
		st: st, mutModel: "m",
	}
}

// entailedFixture: a base model plus its OWLPRIME index model, queried
// through a two-model union view — the configuration Listings 1 and 2
// use. Inferred rdf:type and rdfs:subClassOf triples are part of the
// solution space.
func entailedFixture(rng *rand.Rand) diffFixture {
	st := store.New()
	class := func(i int) string { return fmt.Sprintf("http://d/C%d", i) }
	inst := func(i int) string { return fmt.Sprintf("http://d/i%d", i) }
	var ts []rdf.Triple
	// A subclass chain C0 ⊂ C1 ⊂ C2 ⊂ C3 plus a side branch.
	for i := 0; i < 3; i++ {
		ts = append(ts, rdf.T(rdf.IRI(class(i)), rdf.SubClassOf, rdf.IRI(class(i+1))))
	}
	ts = append(ts, rdf.T(rdf.IRI(class(4)), rdf.SubClassOf, rdf.IRI(class(2))))
	var subjects, objects []string
	for i := 0; i < 8; i++ {
		s := inst(i)
		subjects = append(subjects, s)
		ts = append(ts, rdf.T(rdf.IRI(s), rdf.Type, rdf.IRI(class(rng.Intn(5)))))
		ts = append(ts, rdf.T(rdf.IRI(s), rdf.HasName, rdf.Literal(fmt.Sprintf("name%d", i%3))))
		if i > 0 {
			ts = append(ts, rdf.T(rdf.IRI(inst(i-1)), rdf.IsMappedTo, rdf.IRI(s)))
		}
	}
	for i := 0; i < 5; i++ {
		objects = append(objects, class(i))
	}
	st.AddAll("DWH", ts)
	if _, _, err := reason.NewEngine(st).Materialize("DWH"); err != nil {
		panic(err)
	}
	idx := reason.IndexModelName("DWH", reason.RulebaseOWLPrime)
	return diffFixture{
		name:     "entailed",
		src:      st.ViewOf("DWH", idx),
		dict:     st.Dict(),
		subjects: subjects,
		preds: []string{
			rdf.RDFType, rdf.RDFSSubClassOf, rdf.MDWIsMappedTo, rdf.MDWHasName,
		},
		objects:  objects,
		st:       st,
		mutModel: "DWH",
	}
}

// queryGen builds random query strings from a fixture's vocabulary.
type queryGen struct {
	rng *rand.Rand
	fx  diffFixture
	// paths makes pattern() occasionally emit <p>* / <p>+ property paths,
	// exercising the parallel frontier BFS in the parallel sweep.
	paths bool
}

var diffVars = []string{"a", "b", "c", "d"}

func (g *queryGen) variable() string { return diffVars[g.rng.Intn(len(diffVars))] }

func (g *queryGen) pattern() string {
	s := "?" + g.variable()
	if g.rng.Intn(5) == 0 {
		s = "<" + g.fx.subjects[g.rng.Intn(len(g.fx.subjects))] + ">"
	}
	p := "<" + g.fx.preds[g.rng.Intn(len(g.fx.preds))] + ">"
	if g.paths && g.rng.Intn(4) == 0 {
		if g.rng.Intn(2) == 0 {
			p += "*"
		} else {
			p += "+"
		}
	} else if g.rng.Intn(10) == 0 {
		p = "?" + g.variable()
	}
	o := "?" + g.variable()
	if g.rng.Intn(4) == 0 {
		o = "<" + g.fx.objects[g.rng.Intn(len(g.fx.objects))] + ">"
	}
	return s + " " + p + " " + o + " ."
}

func (g *queryGen) bgp(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(g.pattern())
		b.WriteString(" ")
	}
	return b.String()
}

func (g *queryGen) filter() string {
	v := "?" + g.variable()
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("FILTER (%s = <%s>) ", v, g.fx.objects[g.rng.Intn(len(g.fx.objects))])
	case 1:
		return fmt.Sprintf("FILTER (%s != <%s>) ", v, g.fx.objects[g.rng.Intn(len(g.fx.objects))])
	case 2:
		return fmt.Sprintf("FILTER (BOUND(%s)) ", v)
	default:
		w := "?" + g.variable()
		return fmt.Sprintf("FILTER (%s != %s) ", v, w)
	}
}

// where builds a group: a BGP optionally decorated with UNION, OPTIONAL,
// and FILTER elements.
func (g *queryGen) where() string {
	var b strings.Builder
	if g.rng.Intn(4) == 0 {
		fmt.Fprintf(&b, "{ %s} UNION { %s} ", g.bgp(1+g.rng.Intn(2)), g.bgp(1+g.rng.Intn(2)))
	} else {
		b.WriteString(g.bgp(1 + g.rng.Intn(3)))
	}
	if g.rng.Intn(3) == 0 {
		fmt.Fprintf(&b, "OPTIONAL { %s} ", g.bgp(1+g.rng.Intn(2)))
	}
	if g.rng.Intn(3) == 0 {
		b.WriteString(g.filter())
	}
	return b.String()
}

// query returns the full query text and, when a streamed LIMIT was
// attached, the same query without the LIMIT for subset checking.
func (g *queryGen) query() (full, unlimited string) {
	where := g.where()
	switch g.rng.Intn(10) {
	case 0:
		q := "ASK { " + where + "}"
		return q, ""
	case 1:
		v := g.variable()
		q := fmt.Sprintf("SELECT (COUNT(?%s) AS ?n) WHERE { %s}", v, where)
		return q, ""
	}
	sel := "*"
	if g.rng.Intn(2) == 0 {
		n := 1 + g.rng.Intn(2)
		var vs []string
		for i := 0; i < n; i++ {
			vs = append(vs, "?"+diffVars[i])
		}
		sel = strings.Join(vs, " ")
	}
	distinct := ""
	if g.rng.Intn(3) == 0 {
		distinct = "DISTINCT "
	}
	q := fmt.Sprintf("SELECT %s%s WHERE { %s}", distinct, sel, where)
	if sel != "*" && g.rng.Intn(4) == 0 {
		limit := 1 + g.rng.Intn(5)
		return fmt.Sprintf("%s LIMIT %d", q, limit), q
	}
	return q, ""
}

// rowKeys canonicalizes a result into a sorted multiset of row strings.
func rowKeys(res *sparql.Result) []string {
	keys := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		vars := make([]string, 0, len(row))
		for v := range row {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		var b strings.Builder
		for _, v := range vars {
			fmt.Fprintf(&b, "%s=%s;", v, row[v].String())
		}
		keys = append(keys, b.String())
	}
	sort.Strings(keys)
	return keys
}

func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetOf reports whether multiset a is contained in multiset b.
func subsetOf(a, b []string) bool {
	counts := map[string]int{}
	for _, k := range b {
		counts[k]++
	}
	for _, k := range a {
		if counts[k] == 0 {
			return false
		}
		counts[k]--
	}
	return true
}

// TestDifferentialParallel is the parallel twin of the harness below:
// the same class of random queries (plus property paths), executed
// through plans forced into parallel strategies at several worker
// counts, must agree with the naive reference at every level. The
// thresholds are floored to 1 so even these tiny fixtures take the
// morsel / parallel-UNION / frontier-BFS code paths; run it with -race
// to make it a data-race hunt as well as a semantics check.
func TestDifferentialParallel(t *testing.T) {
	levels := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		levels = append(levels, n)
	}
	rng := rand.New(rand.NewSource(77))
	fixtures := []diffFixture{simpleFixture(rng), entailedFixture(rng)}
	const perFixture = 150 // 300 queries, each at every parallelism level
	for _, fx := range fixtures {
		g := &queryGen{rng: rng, fx: fx, paths: true}
		for i := 0; i < perFixture; i++ {
			full, unlimited := g.query()
			q, err := sparql.Parse(full)
			if err != nil {
				t.Fatalf("[%s #%d] generator emitted unparsable query %q: %v", fx.name, i, full, err)
			}
			naive, err := q.ExecNaive(fx.src, fx.dict)
			if err != nil {
				t.Fatalf("[%s #%d] naive exec failed for %q: %v", fx.name, i, full, err)
			}
			// For LIMIT-without-ORDER-BY, precompute the full solution
			// multiset once: any right-sized subset of it is correct.
			var fk []string
			if unlimited != "" {
				uq, err := sparql.Parse(unlimited)
				if err != nil {
					t.Fatalf("[%s #%d] unlimited variant unparsable: %v", fx.name, i, err)
				}
				fullRes, err := uq.ExecNaive(fx.src, fx.dict)
				if err != nil {
					t.Fatalf("[%s #%d] unlimited naive exec failed: %v", fx.name, i, err)
				}
				fk = rowKeys(fullRes)
			}
			nk := rowKeys(naive)
			for _, workers := range levels {
				p := q.PlanOpts(fx.src, fx.dict, sparql.ParOptions{
					MaxWorkers:        workers,
					MorselSize:        4,
					SerialThreshold:   1,
					FrontierThreshold: 1,
				})
				res, err := p.Exec()
				if err != nil {
					t.Fatalf("[%s #%d w=%d] parallel exec failed for %q: %v", fx.name, i, workers, full, err)
				}
				if q.Kind == sparql.AskQuery {
					if res.Ask != naive.Ask {
						t.Errorf("[%s #%d w=%d] ASK divergence on %q: parallel=%v naive=%v",
							fx.name, i, workers, full, res.Ask, naive.Ask)
					}
					continue
				}
				pk := rowKeys(res)
				if unlimited == "" {
					if !sameMultiset(pk, nk) {
						t.Errorf("[%s #%d w=%d] divergence on %q:\nparallel (%d): %v\nnaive    (%d): %v",
							fx.name, i, workers, full, len(pk), pk, len(nk), nk)
					}
					continue
				}
				want := len(fk)
				if q.Limit < want {
					want = q.Limit
				}
				if len(pk) != want {
					t.Errorf("[%s #%d w=%d] LIMIT row count wrong on %q: got %d want %d",
						fx.name, i, workers, full, len(pk), want)
				}
				if !subsetOf(pk, fk) {
					t.Errorf("[%s #%d w=%d] LIMIT rows not drawn from full solutions on %q",
						fx.name, i, workers, full)
				}
			}
		}
	}
}

func TestDifferentialPlannerVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fixtures := []diffFixture{simpleFixture(rng), entailedFixture(rng)}
	const perFixture = 150 // 300 total, spec floor is 200
	for _, fx := range fixtures {
		g := &queryGen{rng: rng, fx: fx}
		for i := 0; i < perFixture; i++ {
			full, unlimited := g.query()
			q, err := sparql.Parse(full)
			if err != nil {
				t.Fatalf("[%s #%d] generator emitted unparsable query %q: %v", fx.name, i, full, err)
			}
			planned, err := q.Exec(fx.src, fx.dict)
			if err != nil {
				t.Fatalf("[%s #%d] planned exec failed for %q: %v", fx.name, i, full, err)
			}
			naive, err := q.ExecNaive(fx.src, fx.dict)
			if err != nil {
				t.Fatalf("[%s #%d] naive exec failed for %q: %v", fx.name, i, full, err)
			}
			if q.Kind == sparql.AskQuery {
				if planned.Ask != naive.Ask {
					t.Errorf("[%s #%d] ASK divergence on %q: planned=%v naive=%v",
						fx.name, i, full, planned.Ask, naive.Ask)
				}
				continue
			}
			pk, nk := rowKeys(planned), rowKeys(naive)
			if unlimited == "" {
				if !sameMultiset(pk, nk) {
					t.Errorf("[%s #%d] divergence on %q:\nplanned (%d): %v\nnaive   (%d): %v",
						fx.name, i, full, len(pk), pk, len(nk), nk)
				}
				continue
			}
			// LIMIT without ORDER BY: any subset of the full solution
			// multiset of the right size is a correct answer, and the two
			// evaluators may legitimately pick different rows.
			uq, err := sparql.Parse(unlimited)
			if err != nil {
				t.Fatalf("[%s #%d] unlimited variant unparsable: %v", fx.name, i, err)
			}
			fullRes, err := uq.ExecNaive(fx.src, fx.dict)
			if err != nil {
				t.Fatalf("[%s #%d] unlimited naive exec failed: %v", fx.name, i, err)
			}
			fk := rowKeys(fullRes)
			want := len(fk)
			if q.Limit < want {
				want = q.Limit
			}
			if len(pk) != want || len(nk) != want {
				t.Errorf("[%s #%d] LIMIT row count wrong on %q: planned=%d naive=%d want=%d",
					fx.name, i, full, len(pk), len(nk), want)
			}
			if !subsetOf(pk, fk) {
				t.Errorf("[%s #%d] planned LIMIT rows not drawn from full solutions on %q", fx.name, i, full)
			}
		}
	}
}
