package sparql

import (
	"strings"
	"testing"
)

func fpOf(t *testing.T, query string) string {
	t.Helper()
	q, err := Parse(query)
	if err != nil {
		t.Fatalf("Parse(%q): %v", query, err)
	}
	return q.Fingerprint()
}

func TestFingerprintNormalizesConstants(t *testing.T) {
	// Different constant subjects/objects, same shape: one fingerprint.
	a := fpOf(t, `PREFIX dwh: <https://mdw.example/dwh#> SELECT ?p ?o WHERE { dwh:Client ?p ?o }`)
	b := fpOf(t, `PREFIX dwh: <https://mdw.example/dwh#> SELECT ?p ?o WHERE { dwh:Branch ?p ?o }`)
	if a != b {
		t.Fatalf("constant subjects not normalized:\n%s\n%s", a, b)
	}
	if strings.Contains(a, "Client") {
		t.Fatalf("fingerprint leaks the constant: %s", a)
	}

	// Different FILTER literals (the per-search-term case): one fingerprint.
	c := fpOf(t, `SELECT ?x ?t WHERE { ?x <p> ?t . FILTER CONTAINS(LCASE(?t), "customer") }`)
	d := fpOf(t, `SELECT ?x ?t WHERE { ?x <p> ?t . FILTER CONTAINS(LCASE(?t), "branch") }`)
	if c != d {
		t.Fatalf("filter literals not normalized:\n%s\n%s", c, d)
	}

	// Different REGEX patterns: one fingerprint.
	e := fpOf(t, `SELECT ?x WHERE { ?x <p> ?t . FILTER REGEX(?t, "foo.*") }`)
	f := fpOf(t, `SELECT ?x WHERE { ?x <p> ?t . FILTER REGEX(?t, "bar+") }`)
	if e != f {
		t.Fatalf("regex patterns not normalized:\n%s\n%s", e, f)
	}

	// Different LIMIT values: one fingerprint; LIMIT presence still splits.
	g := fpOf(t, `SELECT ?x WHERE { ?x <p> ?o } LIMIT 5`)
	h := fpOf(t, `SELECT ?x WHERE { ?x <p> ?o } LIMIT 50`)
	i := fpOf(t, `SELECT ?x WHERE { ?x <p> ?o }`)
	if g != h {
		t.Fatalf("limit values not normalized:\n%s\n%s", g, h)
	}
	if g == i {
		t.Fatal("bounded and unbounded queries share a fingerprint")
	}
}

func TestFingerprintKeepsStructure(t *testing.T) {
	// Predicates are identity: different predicate, different fingerprint.
	a := fpOf(t, `SELECT ?x WHERE { ?x <https://mdw.example/dwh#feeds> ?y }`)
	b := fpOf(t, `SELECT ?x WHERE { ?x <https://mdw.example/dwh#isMappedTo> ?y }`)
	if a == b {
		t.Fatal("different predicates share a fingerprint")
	}

	// Structure is identity: OPTIONAL vs plain, UNION arms, DISTINCT.
	plain := fpOf(t, `SELECT ?x ?y WHERE { ?x <p> ?y }`)
	opt := fpOf(t, `SELECT ?x ?y WHERE { OPTIONAL { ?x <p> ?y } }`)
	if plain == opt {
		t.Fatal("OPTIONAL did not change the fingerprint")
	}
	distinct := fpOf(t, `SELECT DISTINCT ?x ?y WHERE { ?x <p> ?y }`)
	if plain == distinct {
		t.Fatal("DISTINCT did not change the fingerprint")
	}

	// Query forms render distinctly.
	ask := fpOf(t, `ASK WHERE { ?x <p> ?y }`)
	if !strings.HasPrefix(ask, "ASK") {
		t.Fatalf("ASK fingerprint = %s", ask)
	}
	con := fpOf(t, `CONSTRUCT { ?x <q> ?y } WHERE { ?x <p> ?y }`)
	if !strings.HasPrefix(con, "CONSTRUCT") {
		t.Fatalf("CONSTRUCT fingerprint = %s", con)
	}

	// Aggregates and modifiers appear.
	agg := fpOf(t, `SELECT (COUNT(?x) AS ?n) WHERE { ?x <p> ?y } GROUP BY ?y ORDER BY DESC(?n) LIMIT 3`)
	for _, want := range []string{"COUNT(?x)", "GROUP BY ?y", "ORDER BY DESC(?n)", "LIMIT $"} {
		if !strings.Contains(agg, want) {
			t.Fatalf("fingerprint %q missing %q", agg, want)
		}
	}
}

func TestFingerprintIsMemoized(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { ?x <p> ?o }`)
	if q.cachedFp.Load() != nil {
		t.Fatal("fingerprint cached before first call")
	}
	fp := q.Fingerprint()
	cached := q.cachedFp.Load()
	if cached == nil || *cached != fp {
		t.Fatal("fingerprint not memoized")
	}
	if again := q.Fingerprint(); again != fp {
		t.Fatalf("memoized fingerprint changed: %q vs %q", again, fp)
	}
}
