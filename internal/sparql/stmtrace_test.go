package sparql

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"mdw/internal/obs"
	"mdw/internal/rdf"
	"mdw/internal/rescache"
	"mdw/internal/store"
)

// TestConcurrentRecordSnapshotReplan is the -race proof for the
// statement table's lazy plan rendering: Snapshot copies the memoized
// fmt.Stringer under the lock and renders it outside, while executions
// keep recording plans and the append-only dictionary keeps growing —
// which revalidates plans with unresolved constants by dictionary
// length and replaces them with freshly built ones. The invariant under
// test: revalidation never mutates a published plan (it builds a new
// one), so rendering outside the lock cannot race. See Plan.String.
func TestConcurrentRecordSnapshotReplan(t *testing.T) {
	// The results cache would serve repeats without replanning; this
	// test needs every execution to reach the plan-cache revalidation.
	rescache.Disable()
	defer rescache.Enable(0, 0)

	st := store.New()
	st.Add("m", rdf.T(rdf.IRI("http://x/s"), rdf.IRI("http://x/p"), rdf.IRI("http://x/o")))
	// Detached snapshot: the executing source must not be mutated while
	// queries stream over it (load-then-query discipline); the shared
	// dictionary, which has its own lock, is what churns.
	src := st.SnapshotModel("m")

	// The constant <http://x/never-interned> never enters the dictionary,
	// so the plan stays unresolved and every dictionary growth forces a
	// replan on the next execution.
	q, err := Parse(`SELECT ?s WHERE { ?s <http://x/p> ?o . ?s <http://x/never-interned> ?z }`)
	if err != nil {
		t.Fatal(err)
	}

	stmts := obs.DefaultStatements()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() { // executor: Record + revalidation/replan churn
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if _, err := q.Exec(src, st.Dict()); err != nil {
				t.Errorf("exec: %v", err)
				return
			}
		}
		close(stop)
	}()
	go func() { // snapshotter: renders memoized plans outside the lock
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range stmts.Snapshot() {
				if s.Fingerprint == "" {
					t.Error("empty fingerprint in snapshot")
					return
				}
			}
		}
	}()
	go func() { // dictionary growth: invalidates the unresolved plan
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st.Add("other", rdf.T(
				rdf.IRI("http://x/grow"+strconv.Itoa(i)),
				rdf.IRI("http://x/p"),
				rdf.IRI("http://x/o")))
		}
	}()
	wg.Wait()

	// The plan the table memoized must still render.
	for _, s := range stmts.Snapshot() {
		if strings.Contains(s.Query, "never-interned") && s.LastPlan == "" {
			t.Error("recorded plan did not render")
		}
	}
}
