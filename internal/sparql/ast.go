// Package sparql implements the query substrate of the meta-data
// warehouse: a SPARQL subset sufficient for every query the paper issues
// (Listings 1 and 2) plus the search and lineage services built on top.
//
// Supported language: SELECT, ASK, and CONSTRUCT queries, PREFIX
// prologues, basic graph patterns with ';'/',' continuation and variable
// predicates, FILTER with the usual boolean/comparison operators, the
// REGEX/BOUND/STR/LCASE/UCASE/CONTAINS/STRSTARTS/STRENDS builtins and
// (NOT) EXISTS constraints, OPTIONAL, UNION, property paths (sequence
// '/', alternative '|', inverse '^', and the '*', '+', '?' closures),
// DISTINCT, GROUP BY with COUNT aggregates, ORDER BY, LIMIT/OFFSET.
package sparql

import (
	"sync/atomic"

	"mdw/internal/rdf"
)

// QueryKind discriminates query forms.
type QueryKind int

const (
	// SelectQuery is the SELECT form.
	SelectQuery QueryKind = iota
	// AskQuery is the ASK form.
	AskQuery
	// ConstructQuery is the CONSTRUCT form: it instantiates a triple
	// template once per solution and returns a graph.
	ConstructQuery
)

// Query is a parsed SPARQL query.
type Query struct {
	Kind     QueryKind
	Prefixes map[string]string
	// Text is the source text the query was parsed from (empty for
	// hand-constructed queries); the slow-query log captures it.
	Text     string
	Distinct bool
	// Select holds the projection; empty means '*' (all visible variables).
	Select []SelectItem
	// Template holds the CONSTRUCT triple templates.
	Template []TriplePattern
	Where    *GroupPattern
	GroupBy  []string
	OrderBy  []OrderCond
	Limit    int // -1 when absent
	Offset   int

	// cachedPlan memoizes the last plan Exec built, so a parsed query
	// executed repeatedly against the same source (the prepared-query
	// pattern every warehouse service uses) pays the planning cost once.
	// See Query.Exec for the revalidation rule.
	cachedPlan atomic.Pointer[Plan]

	// cachedFp memoizes Fingerprint(): the AST never mutates after
	// parsing, so the normalized rendering is computed at most once.
	cachedFp atomic.Pointer[string]
}

// SelectItem is one projection entry: either a plain variable or an
// aggregate with an alias, e.g. (COUNT(?x) AS ?n).
type SelectItem struct {
	Var string
	Agg *Aggregate
}

// Aggregate is an aggregate function application.
type Aggregate struct {
	Func     string // "COUNT" (others may be added)
	Distinct bool
	Var      string // "" means COUNT(*)
	As       string
}

// OrderCond is one ORDER BY condition.
type OrderCond struct {
	Var  string
	Desc bool
}

// GroupPattern is a brace-delimited group of pattern elements.
type GroupPattern struct {
	Elements []Element
}

// Element is a group member: *TriplePattern, *Filter, *Optional, *Union,
// or a nested *GroupPattern.
type Element interface{ element() }

// TriplePattern is one subject–path–object pattern.
type TriplePattern struct {
	S, O NodePattern
	P    Path
}

func (*TriplePattern) element() {}

// NodePattern is a variable or a constant term in a triple pattern.
type NodePattern struct {
	Var  string
	Term rdf.Term
}

// IsVar reports whether the node is a variable.
func (n NodePattern) IsVar() bool { return n.Var != "" }

// Var returns a variable node pattern.
func VarNode(name string) NodePattern { return NodePattern{Var: name} }

// TermNode returns a constant node pattern.
func TermNode(t rdf.Term) NodePattern { return NodePattern{Term: t} }

// Filter wraps a boolean constraint expression.
type Filter struct {
	Expr Expr
}

func (*Filter) element() {}

// ExistsFilter is a FILTER EXISTS { … } or FILTER NOT EXISTS { … }
// constraint: a solution survives iff the pattern has (no) match under
// the solution's bindings.
type ExistsFilter struct {
	Pattern *GroupPattern
	Negated bool
}

func (*ExistsFilter) element() {}

// Optional is an OPTIONAL group (left join).
type Optional struct {
	Pattern *GroupPattern
}

func (*Optional) element() {}

// Union is a UNION of two groups.
type Union struct {
	Left, Right *GroupPattern
}

func (*Union) element() {}

func (*GroupPattern) element() {}

// Path is a property path expression.
type Path interface{ path() }

// PathIRI is a single predicate step.
type PathIRI struct {
	IRI string
}

// PathVar is a variable in predicate position (e.g. ?p in "?s ?p ?o").
// Per the SPARQL grammar a variable verb stands alone: it cannot be
// combined with path operators.
type PathVar struct {
	Name string
}

// PathSeq is a sequence path p1/p2/....
type PathSeq struct {
	Parts []Path
}

// PathAlt is an alternative path p1|p2|....
type PathAlt struct {
	Parts []Path
}

// PathInverse is an inverse step ^p.
type PathInverse struct {
	P Path
}

// PathRepeat applies a closure to a path: Min=0/Max=-1 for '*',
// Min=1/Max=-1 for '+', Min=0/Max=1 for '?'.
type PathRepeat struct {
	P   Path
	Min int
	Max int // -1 = unbounded
}

func (PathIRI) path()     {}
func (PathVar) path()     {}
func (PathSeq) path()     {}
func (PathAlt) path()     {}
func (PathInverse) path() {}
func (PathRepeat) path()  {}

// IsSimple reports whether p is a single forward predicate step, and if
// so returns its IRI.
func IsSimple(p Path) (string, bool) {
	pi, ok := p.(PathIRI)
	if !ok {
		return "", false
	}
	return pi.IRI, true
}
