package sparql

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mdw/internal/obs"
	"mdw/internal/rdf"
	"mdw/internal/rescache"
	"mdw/internal/store"
)

// Result is the outcome of query execution.
type Result struct {
	// Vars lists the projected variable names in order.
	Vars []string
	// Rows holds one binding per solution. Unbound projected variables
	// (possible under OPTIONAL) are absent from the map.
	Rows []Binding
	// Ask holds the result of an ASK query.
	Ask bool
	// Triples holds the graph produced by a CONSTRUCT query, sorted and
	// deduplicated.
	Triples []rdf.Triple
}

// Exec runs the query against a triple source. The dict must be the
// dictionary underlying the source's models. Exec plans and executes:
// it is exactly Plan followed by Plan.Exec, except that the plan is
// memoized on the query. A cached plan is reused when it was built for
// the same source and dictionary and its constant resolution cannot
// have gone stale: the dictionary only grows, so a fully resolved plan
// stays valid, and one with unresolved constants is revalidated by
// dictionary length. Join-order statistics may age with the data — that
// only costs speed, never correctness — and new data is always visible
// because the plan probes the live indexes.
func (q *Query) Exec(src store.Source, dict *store.Dict) (*Result, error) {
	return q.ExecCtx(context.Background(), src, dict)
}

// ExecCtx is Exec carrying a request context: when ctx holds a trace
// span (obs.ContextWithSpan), planning and execution attach "sparql
// plan" and "sparql exec" child spans to it. Untraced contexts pay one
// context lookup and no span allocation.
func (q *Query) ExecCtx(ctx context.Context, src store.Source, dict *store.Dict) (*Result, error) {
	// Results cache first: a hit skips planning and execution entirely.
	// The key embeds every model generation of the source, so it can only
	// match a result computed from the exact store state being queried.
	rc := rescache.Default()
	var genKey string
	if rc != nil && q.resultsCacheable() {
		if gk, ok := sourceGenKey(src); ok {
			genKey = gk
			t0 := time.Now()
			if v, ok := rc.Get(q.resultCacheKey(genKey)); ok {
				return q.serveCachedResult(ctx, v.(*Result), time.Since(t0))
			}
		}
	}
	res, err := q.execUncached(ctx, src, dict)
	if genKey != "" && err == nil && res != nil {
		// Store only if no model mutated while we executed: a result
		// computed from a moving source under a pre-move key would be
		// served as current forever.
		if gk, ok := sourceGenKey(src); ok && gk == genKey {
			rc.Put(q.resultCacheKey(genKey), res, estimateResultSize(res))
		}
	}
	return res, err
}

// execUncached is the pre-results-cache execution path: plan-cache
// probe, (re)planning, execution.
func (q *Query) execUncached(ctx context.Context, src store.Source, dict *store.Dict) (*Result, error) {
	p, ctx := q.planFor(ctx, src, dict)
	return p.ExecCtx(ctx)
}

// ExecAnalyze is ExecAnalyzeCtx with a background context.
func (q *Query) ExecAnalyze(src store.Source, dict *store.Dict) (*Result, *ExecStats, error) {
	return q.ExecAnalyzeCtx(context.Background(), src, dict)
}

// ExecAnalyzeCtx executes the query with operator-level instrumentation
// and returns the runtime statistics next to the result (EXPLAIN
// ANALYZE). It reuses the memoized plan exactly like ExecCtx but always
// bypasses the results cache: analyzed statistics must come from a real
// execution, never from a cached result that executed nothing.
func (q *Query) ExecAnalyzeCtx(ctx context.Context, src store.Source, dict *store.Dict) (*Result, *ExecStats, error) {
	p, ctx := q.planFor(ctx, src, dict)
	return p.ExecAnalyzeCtx(ctx)
}

// planFor returns the plan to execute — the memoized one when it is
// still valid for (src, dict), a fresh one otherwise — plus the context
// to execute under (carrying the planning span on a replan).
func (q *Query) planFor(ctx context.Context, src store.Source, dict *store.Dict) (*Plan, context.Context) {
	if p := q.cachedPlan.Load(); p != nil && p.dict == dict && sameSource(p.src, src) &&
		(!p.unresolved || p.dictLen == dict.Len()) {
		obsPlanCacheHit.Inc()
		return p, ctx
	}
	obsPlanCacheMiss.Inc()
	sp, ctx := obs.ChildCtx(ctx, "sparql plan")
	p := q.Plan(src, dict)
	sp.Finish()
	if cacheableSource(src) {
		q.cachedPlan.Store(p)
	}
	return p, ctx
}

// cacheableSource limits plan memoization to pointer-shaped sources,
// whose identity comparison is cheap and panic-free. Exotic Source
// implementations simply replan per Exec.
func cacheableSource(src store.Source) bool {
	switch src.(type) {
	case *store.Model, *store.View:
		return true
	}
	return false
}

// sameSource compares the cached plan's source to the incoming one.
// Only cacheable (pointer-shaped) sources are ever stored, so the
// interface comparison cannot panic on a non-comparable dynamic type.
func sameSource(cached, src store.Source) bool {
	if !cacheableSource(src) {
		return false
	}
	return cached == src
}

// Exec executes the plan with a streaming, depth-first pipeline: one
// solution flows through join steps, pushed filters, and the projection
// before the next is produced, so ASK stops at the first solution and a
// streamable LIMIT stops at row N. It also feeds the observability
// layer: execution latency and streamed-row counts go to the default
// metrics registry, and any execution at or over the slow-query
// threshold is captured — with the query text and the rendered plan —
// in the default slow-query log. The plan string is only rendered on
// that slow path.
func (p *Plan) Exec() (*Result, error) {
	return p.ExecCtx(context.Background())
}

// ExecCtx is Exec carrying a request context: a traced context gets a
// "sparql exec" child span labelled with the row count. Every
// successful execution — traced or not — also folds into the default
// statement-statistics table under the query's fingerprint.
func (p *Plan) ExecCtx(ctx context.Context) (*Result, error) {
	res, _, err := p.execMeasured(ctx, nil)
	return res, err
}

// ExecAnalyze is ExecAnalyzeCtx with a background context.
func (p *Plan) ExecAnalyze() (*Result, *ExecStats, error) {
	return p.ExecAnalyzeCtx(context.Background())
}

// ExecAnalyzeCtx executes the plan with an operator stats record armed
// (EXPLAIN ANALYZE): every operator counts its loops, rows, and wall
// time into the returned ExecStats tree.
func (p *Plan) ExecAnalyzeCtx(ctx context.Context) (*Result, *ExecStats, error) {
	return p.execMeasured(ctx, newExecStatsRec(p))
}

// execMeasured is the observed execution path shared by ExecCtx and
// ExecAnalyzeCtx: tracing, metrics, statement statistics, and the
// slow-query log. rec is nil for plain execution — unless the query's
// fingerprint was armed by an earlier slow execution, in which case this
// execution collects stats once so its slow-log entry (and the
// misestimation channel) gets an analyzed plan.
func (p *Plan) execMeasured(ctx context.Context, rec *execStatsRec) (*Result, *ExecStats, error) {
	fp := p.query.Fingerprint()
	armed := false
	if rec == nil && analyzeArmed(fp) {
		rec, armed = newExecStatsRec(p), true
	}
	sp, _ := obs.ChildCtx(ctx, "sparql exec")
	t0 := time.Now()
	res, info, err := p.exec(ctx, rec)
	d := obsExecHist.ObserveSince(t0)
	if err != nil || res == nil {
		sp.Finish()
		return res, nil, err
	}
	rows := len(res.Rows)
	if p.query.Kind == ConstructQuery {
		rows = len(res.Triples)
	} else if p.query.Kind == AskQuery {
		rows = 1
	}
	if info.workers > 1 {
		sp.SetLabel("parallel", info.strategy)
		sp.SetLabel("workers", strconv.Itoa(info.workers))
		sp.SetLabel("morsels", strconv.Itoa(info.tasks))
	}
	sp.SetLabel("rows", strconv.Itoa(rows)).Finish()
	obsRows.Add(int64(rows))
	var stats *ExecStats
	if rec != nil {
		stats = p.finishAnalyze(rec, info, d, rows)
	}
	obs.DefaultStatements().Record(fp, p.query.Text, rows, d, p)
	if stats != nil {
		obs.DefaultStatements().AddResources(fp, stats.RowsScanned, stats.TermDecodes)
	}
	if sl := obs.DefaultSlowLog(); sl.ShouldLog(d) {
		e := obs.SlowQuery{
			Query: p.query.Text,
			Plan:  p.String(),
			Rows:  rows,
			Total: d,
			Stages: []obs.Stage{
				{Name: "plan", D: p.planDur},
				{Name: "exec", D: d},
			},
		}
		if stats != nil {
			e.Plan, e.Analyzed = stats.String(), true
		} else {
			armAnalyze(fp)
		}
		sl.Record(e)
	}
	if armed {
		disarmAnalyze(fp)
	}
	return res, stats, err
}

// execInfo is the parallel-execution evidence one exec produced, fed to
// the trace span labels.
type execInfo struct {
	strategy string
	workers  int
	tasks    int
}

func (p *Plan) exec(ctx context.Context, rec *execStatsRec) (*Result, execInfo, error) {
	if p.src == nil || p.dict == nil {
		return nil, execInfo{}, errors.New("sparql: plan was built without a source; use Query.Plan(src, dict)")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, execInfo{}, err
		}
	}
	q := p.query
	ev := &evaluator{src: p.src, dict: p.dict, ctx: ctx, plan: p, stats: rec}
	res, err := ev.execKind(q)
	return res, execInfo{strategy: ev.parStrategy, workers: ev.parWorkers, tasks: ev.parTasks}, err
}

func (ev *evaluator) execKind(q *Query) (*Result, error) {
	if q.Kind == AskQuery {
		found := false
		ev.runRoot(func(env) bool {
			found = true
			return false
		})
		if ev.err != nil {
			return nil, ev.err
		}
		if found {
			obsEarlyAsk.Inc()
		}
		return &Result{Ask: found}, nil
	}
	if q.Kind == SelectQuery && len(q.Select) > 0 {
		if hasAggregates(q) || len(q.GroupBy) > 0 {
			return ev.aggregateRows(q)
		}
		return ev.selectRows(q)
	}
	var sols []env
	ev.runRoot(func(s env) bool {
		sols = append(sols, s.clone())
		return true
	})
	if ev.err != nil {
		return nil, ev.err
	}
	if q.Kind == ConstructQuery {
		return ev.construct(q, sols)
	}
	return ev.project(q, sols)
}

// env is a variable assignment at the dictionary-ID level. The executor
// mutates one env in place along each depth-first probe and backtracks
// by deleting, cloning only when a solution is materialized.
type env map[string]store.ID

func (e env) clone() env {
	c := make(env, len(e)+2)
	for k, v := range e {
		c[k] = v
	}
	return c
}

type evaluator struct {
	src  store.Source
	dict *store.Dict
	// terms caches decoded terms per dictionary ID for filter
	// evaluation, where the same value is decoded once per solution per
	// filter; projection decodes straight from the dictionary since its
	// values rarely repeat.
	terms map[store.ID]rdf.Term
	// err records the first execution error; recursion unwinds by
	// returning false once it is set.
	err error
	// ctx is the execution's request context; cancelled() probes it
	// every cancelTick match callbacks. nil means uncancellable.
	ctx context.Context
	// tick counts cancellation probes (see cancelled).
	tick uint32
	// plan is the executing plan; runRoot reads its parallel decision.
	// nil for worker evaluators and the naive reference evaluator, whose
	// pipelines are always serial.
	plan *Plan
	// parStop, when set, is the merger's early-termination flag of the
	// parallel run this (worker) evaluator belongs to.
	parStop *atomic.Bool
	// stats, when set, is the EXPLAIN ANALYZE record this execution
	// accumulates operator statistics into. Worker evaluators share the
	// parent's record (its counters are atomic); nil means no analysis —
	// every instrumentation site pays one pointer check and nothing else.
	stats *execStatsRec
	// pathWorkers/frontierMin arm parallel frontier BFS in the path
	// engine (0 = serial traversal).
	pathWorkers int
	frontierMin int
	// Parallel execution evidence, reported on trace spans: the strategy
	// actually used, the workers launched, and the tasks (morsels,
	// branches, or BFS levels) processed.
	parStrategy string
	parWorkers  int
	parTasks    int
}

// term decodes an ID through the per-execution filter decode cache.
func (ev *evaluator) term(id store.ID) rdf.Term {
	if t, ok := ev.terms[id]; ok {
		return t
	}
	if st := ev.stats; st != nil {
		st.decodes.Add(1)
	}
	t := ev.dict.Term(id)
	if ev.terms == nil {
		ev.terms = make(map[store.ID]rdf.Term)
	}
	ev.terms[id] = t
	return t
}

// runGroup streams every solution of the planned group that extends s
// into emit. It returns false when emit (or an error) asked to stop.
func (ev *evaluator) runGroup(g *planGroup, s env, emit func(env) bool) bool {
	return ev.runSteps(g.steps, 0, s, emit)
}

func (ev *evaluator) runSteps(steps []planStep, i int, s env, emit func(env) bool) bool {
	if ev.err != nil {
		return false
	}
	if i == len(steps) {
		return emit(s)
	}
	next := func(s2 env) bool { return ev.runSteps(steps, i+1, s2, emit) }
	switch st := steps[i].(type) {
	case *bgpStep:
		return ev.runBGP(st, s, next)
	case *filterStep:
		if !ev.constraintHolds(st.c, s) {
			return ev.err == nil // drop this solution, keep streaming
		}
		return next(s)
	case *optionalStep:
		if rec := ev.stats; rec != nil {
			op := &rec.ops[st.si]
			op.loops.Add(1)
			inner := next
			next = func(s2 env) bool { op.rows.Add(1); return inner(s2) }
		}
		matched := false
		if !ev.runGroup(st.group, s, func(s2 env) bool {
			matched = true
			return next(s2)
		}) {
			return false
		}
		if !matched {
			return next(s)
		}
		return true
	case *unionStep:
		if rec := ev.stats; rec != nil {
			op := &rec.ops[st.si]
			op.loops.Add(1)
			inner := next
			next = func(s2 env) bool { op.rows.Add(1); return inner(s2) }
		}
		if !ev.runGroup(st.left, s, next) {
			return false
		}
		return ev.runGroup(st.right, s, next)
	case *groupStep:
		if rec := ev.stats; rec != nil {
			op := &rec.ops[st.si]
			op.loops.Add(1)
			inner := next
			next = func(s2 env) bool { op.rows.Add(1); return inner(s2) }
		}
		return ev.runGroup(st.group, s, next)
	default:
		ev.err = fmt.Errorf("sparql: unknown plan step %T", st)
		return false
	}
}

// bgpRun is the per-execution state of one basic graph pattern: one
// frame per pattern plus a ForEach callback created once per pattern, so
// matching allocates O(patterns), not O(matches).
type bgpRun struct {
	ev     *evaluator
	b      *bgpStep
	s      env
	emit   func(env) bool
	frames []bgpFrame
}

// bgpFrame holds the loop-variant state of one pattern position while
// its matches are enumerated. Frames are never re-entered concurrently:
// the depth-first walk visits each position at most once per probe.
type bgpFrame struct {
	svar, ovar string // variables to bind ("" when constant or already bound)
	pvarBound  bool   // variable predicate was already bound
	cont       bool   // false once a deeper level asked to stop
	cb         func(store.ETriple) bool
}

// runBGP extends s through the BGP's patterns in planned order, applying
// each pattern's pushed constraints the moment its variables bind, and
// emits every full match.
func (ev *evaluator) runBGP(b *bgpStep, s env, emit func(env) bool) bool {
	r := &bgpRun{ev: ev, b: b, s: s, emit: emit, frames: make([]bgpFrame, len(b.patterns))}
	for i := range r.frames {
		idx := i
		r.frames[i].cb = func(t store.ETriple) bool { return r.onTriple(idx, t) }
	}
	return r.next(0)
}

// next enumerates the matches of pattern idx (or emits the solution when
// every pattern matched). It returns false when the consumer asked to
// stop. Constants were already resolved at plan time.
func (r *bgpRun) next(idx int) bool {
	if idx == len(r.b.patterns) {
		return r.emit(r.s)
	}
	pp := r.b.patterns[idx]
	if st := r.ev.stats; st != nil {
		op := &st.ops[pp.si]
		op.loops.Add(1)
		start := time.Now()
		// Inclusive timing (deeper patterns run inside this window), the
		// EXPLAIN ANALYZE convention.
		defer func() { op.durNs.Add(int64(time.Since(start))) }()
	}
	sid, svar, ok := derefNode(pp.s, r.s)
	if !ok {
		return true // constant unknown to the dictionary: zero matches
	}
	oid, ovar, ok := derefNode(pp.o, r.s)
	if !ok {
		return true
	}
	f := &r.frames[idx]
	f.svar, f.ovar, f.cont = svar, ovar, true
	switch pp.pk {
	case pkSimple:
		if pp.pid == store.Wildcard {
			return true // predicate IRI unknown to the dictionary
		}
		r.ev.src.ForEach(sid, pp.pid, oid, f.cb)
		return f.cont
	case pkVar:
		pid := store.Wildcard
		f.pvarBound = false
		if bound, isBound := r.s[pp.pvar]; isBound {
			pid, f.pvarBound = bound, true
		}
		r.ev.src.ForEach(sid, pid, oid, f.cb)
		return f.cont
	default:
		// Composite property path: delegate to the path engine, which
		// returns the endpoint pairs reachable under the (possibly
		// bound) endpoints.
		for _, pr := range r.ev.evalPath(pp.tp.P, sid, oid) {
			if svar != "" && svar == ovar && pr[0] != pr[1] {
				continue
			}
			if svar != "" {
				r.s[svar] = pr[0]
			}
			if ovar != "" {
				r.s[ovar] = pr[1]
			}
			cont := r.matched(idx)
			if svar != "" {
				delete(r.s, svar)
			}
			if ovar != "" {
				delete(r.s, ovar)
			}
			if !cont {
				return false
			}
		}
		return true
	}
}

// onTriple handles one index match for pattern idx: bind the pattern's
// variables in place, run the deeper levels, then restore the bindings.
func (r *bgpRun) onTriple(idx int, t store.ETriple) bool {
	if r.ev.cancelled() || r.ev.stopped() {
		r.frames[idx].cont = false
		return false
	}
	if st := r.ev.stats; st != nil {
		st.scanned.Add(1)
	}
	pp := r.b.patterns[idx]
	f := &r.frames[idx]
	s := r.s
	svar, ovar := f.svar, f.ovar
	if pp.pk == pkVar {
		// Shared variables across positions must agree.
		pvar := pp.pvar
		if svar != "" && svar == pvar && t.S != t.P {
			return true
		}
		if ovar != "" && ovar == pvar && t.O != t.P {
			return true
		}
		if svar != "" && svar == ovar && t.S != t.O {
			return true
		}
		if svar != "" {
			s[svar] = t.S
		}
		if !f.pvarBound {
			s[pvar] = t.P
		}
		if ovar != "" {
			s[ovar] = t.O
		}
		cont := r.matched(idx)
		if svar != "" {
			delete(s, svar)
		}
		if !f.pvarBound {
			delete(s, pvar)
		}
		if ovar != "" {
			delete(s, ovar)
		}
		f.cont = cont
		return cont
	}
	if svar != "" {
		if svar == ovar && t.S != t.O {
			return true
		}
		s[svar] = t.S
	}
	if ovar != "" {
		s[ovar] = t.O
	}
	cont := r.matched(idx)
	if svar != "" {
		delete(s, svar)
	}
	if ovar != "" {
		delete(s, ovar)
	}
	f.cont = cont
	return cont
}

// matched applies pattern idx's pushed constraints to the extended
// solution, then advances to the next pattern.
func (r *bgpRun) matched(idx int) bool {
	pp := r.b.patterns[idx]
	if st := r.ev.stats; st != nil {
		st.ops[pp.si].rows.Add(1)
	}
	for _, c := range pp.pushed {
		if !r.ev.constraintHolds(c, r.s) {
			return r.ev.err == nil // reject this extension, continue matching
		}
	}
	return r.next(idx + 1)
}

// constraintHolds applies a planned FILTER or (NOT) EXISTS constraint to
// the current solution, counting tested/passed solutions and wall time
// when an analyze record is armed.
func (ev *evaluator) constraintHolds(c *plannedConstraint, s env) bool {
	st := ev.stats
	if st == nil {
		return ev.constraintEval(c, s)
	}
	op := &st.ops[c.si]
	op.loops.Add(1)
	start := time.Now()
	ok := ev.constraintEval(c, s)
	op.durNs.Add(int64(time.Since(start)))
	if ok {
		op.rows.Add(1)
	}
	return ok
}

// constraintEval evaluates the constraint under SPARQL error semantics
// (evaluation error → false).
func (ev *evaluator) constraintEval(c *plannedConstraint, s env) bool {
	if c.exists != nil {
		found := false
		ev.runGroup(c.group, s, func(env) bool {
			found = true
			return false // first match settles EXISTS
		})
		if ev.err != nil {
			return false
		}
		return found != c.exists.Negated
	}
	if c.fastVar != "" {
		// ID-level fast path: compare dictionary IDs, no term decoding.
		id, bound := s[c.fastVar]
		if !bound {
			return false
		}
		eq := c.fastKnown && id == c.fastID
		if c.fastNeg {
			return !eq
		}
		return eq
	}
	b := make(Binding, len(c.vars))
	for _, v := range c.vars {
		if id, ok := s[v]; ok {
			b[v] = ev.term(id)
		}
	}
	v, err := c.filter.Expr.Eval(b)
	if err != nil {
		return false
	}
	t, err := v.Truth()
	if err != nil {
		return false
	}
	return t
}

// hasAggregates reports whether any projection item is an aggregate.
func hasAggregates(q *Query) bool {
	for _, it := range q.Select {
		if it.Agg != nil {
			return true
		}
	}
	return false
}

// selectRows handles every plain SELECT with an explicit projection by
// building result rows directly from the streamed solutions — no
// intermediate env clone per solution. When the query has a LIMIT and no
// ORDER BY it also stops the pipeline as soon as enough rows exist.
func (ev *evaluator) selectRows(q *Query) (*Result, error) {
	vars := make([]string, len(q.Select))
	for i, it := range q.Select {
		vars[i] = it.Var
	}
	needed := -1 // unlimited
	if len(q.OrderBy) == 0 && q.Limit >= 0 {
		needed = q.Limit + q.Offset
	}
	var rows []Binding
	var seen map[string]bool
	if q.Distinct {
		seen = make(map[string]bool)
	}
	if needed != 0 {
		ev.runRoot(func(s env) bool {
			b := make(Binding, len(vars))
			decoded := int64(0)
			for _, v := range vars {
				if id, ok := s[v]; ok {
					b[v] = ev.dict.Term(id)
					decoded++
				}
			}
			if st := ev.stats; st != nil {
				st.decodes.Add(decoded)
			}
			if q.Distinct {
				key := rowKey(vars, b)
				if seen[key] {
					if st := ev.stats; st != nil {
						st.distinctDropped++
					}
					return true
				}
				seen[key] = true
			}
			rows = append(rows, b)
			return needed < 0 || len(rows) < needed
		})
		if ev.err != nil {
			return nil, ev.err
		}
		if needed >= 0 && len(rows) >= needed {
			obsEarlyLimit.Inc()
			if st := ev.stats; st != nil {
				st.limitStopped = true
			}
		}
	}
	if len(q.OrderBy) > 0 {
		sortRows(q.OrderBy, rows)
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Result{Vars: vars, Rows: rows}, nil
}

// aggregateRows streams solutions straight into per-group aggregate
// state — group key, COUNT counters, and the handful of IDs the
// projection needs — instead of materializing a cloned env per solution.
func (ev *evaluator) aggregateRows(q *Query) (*Result, error) {
	items := q.Select
	vars := make([]string, len(items))
	for i, it := range items {
		if it.Agg != nil {
			vars[i] = it.Agg.As
		} else {
			vars[i] = it.Var
		}
	}
	type aggState struct {
		rep   []store.ID // captured value per plain projection item
		repOK []bool
		n     []int               // per-item COUNT
		seen  []map[store.ID]bool // per-item COUNT(DISTINCT ...) dedup
	}
	newState := func() *aggState {
		return &aggState{
			rep:   make([]store.ID, len(items)),
			repOK: make([]bool, len(items)),
			n:     make([]int, len(items)),
			seen:  make([]map[store.ID]bool, len(items)),
		}
	}
	groups := map[string]*aggState{}
	var order []string
	var keyBuf []byte
	ev.runRoot(func(s env) bool {
		keyBuf = keyBuf[:0]
		for _, gv := range q.GroupBy {
			keyBuf = strconv.AppendUint(keyBuf, uint64(s[gv]), 10)
			keyBuf = append(keyBuf, '|')
		}
		k := string(keyBuf)
		g := groups[k]
		if g == nil {
			g = newState()
			for i, it := range items {
				if it.Agg == nil {
					if id, ok := s[it.Var]; ok {
						g.rep[i], g.repOK[i] = id, true
					}
				}
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, it := range items {
			if it.Agg == nil {
				continue
			}
			switch {
			case it.Agg.Var == "":
				g.n[i]++
			case it.Agg.Distinct:
				if id, ok := s[it.Agg.Var]; ok {
					if g.seen[i] == nil {
						g.seen[i] = make(map[store.ID]bool)
					}
					if !g.seen[i][id] {
						g.seen[i][id] = true
						g.n[i]++
					}
				}
			default:
				if _, ok := s[it.Agg.Var]; ok {
					g.n[i]++
				}
			}
		}
		return true
	})
	if ev.err != nil {
		return nil, ev.err
	}
	if st := ev.stats; st != nil {
		st.groups = int64(len(order))
	}
	// With no solutions and no GROUP BY, aggregates still yield one row.
	if len(order) == 0 && len(q.GroupBy) == 0 {
		groups[""] = newState()
		order = append(order, "")
	}
	rows := make([]Binding, 0, len(order))
	for _, k := range order {
		g := groups[k]
		b := Binding{}
		for i, it := range items {
			if it.Agg == nil {
				if g.repOK[i] {
					b[it.Var] = ev.dict.Term(g.rep[i])
				}
				continue
			}
			b[it.Agg.As] = rdf.Integer(int64(g.n[i]))
		}
		rows = append(rows, b)
	}
	if q.Distinct {
		rows = distinctRows(vars, rows)
	}
	if len(q.OrderBy) > 0 {
		sortRows(q.OrderBy, rows)
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Result{Vars: vars, Rows: rows}, nil
}

// derefNode turns a plan-time node reference into (boundID, varName)
// under the current solution. boundID is Wildcard when the node is an
// unbound variable; ok is false when the node is a constant unknown to
// the dictionary (no match possible).
func derefNode(r nodeRef, s env) (id store.ID, varName string, ok bool) {
	if r.name != "" {
		if v, bound := s[r.name]; bound {
			return v, "", true
		}
		return store.Wildcard, r.name, true
	}
	if !r.known {
		return 0, "", false
	}
	return r.id, "", true
}

// resolveNode turns a node pattern into (boundID, varName). boundID is
// Wildcard when the node is an unbound variable; ok is false when the
// node is a constant unknown to the dictionary (no match possible).
func (ev *evaluator) resolveNode(n NodePattern, s env) (id store.ID, varName string, ok bool) {
	if n.IsVar() {
		if v, bound := s[n.Var]; bound {
			return v, "", true
		}
		return store.Wildcard, n.Var, true
	}
	id, found := ev.dict.Lookup(n.Term)
	if !found {
		return 0, "", false
	}
	return id, "", true
}

// construct instantiates the CONSTRUCT template once per solution.
// Instantiations with unbound variables or a literal subject are skipped,
// per the SPARQL specification.
func (ev *evaluator) construct(q *Query, sols []env) (*Result, error) {
	var out []rdf.Triple
	for _, s := range sols {
		for _, tp := range q.Template {
			subj, ok := ev.instantiateNode(tp.S, s)
			if !ok || subj.IsLiteral() {
				continue
			}
			var pred rdf.Term
			switch p := tp.P.(type) {
			case PathIRI:
				pred = rdf.IRI(p.IRI)
			case PathVar:
				id, bound := s[p.Name]
				if !bound {
					continue
				}
				pred = ev.dict.Term(id)
				if !pred.IsIRI() {
					continue
				}
			default:
				continue
			}
			obj, ok := ev.instantiateNode(tp.O, s)
			if !ok {
				continue
			}
			out = append(out, rdf.T(subj, pred, obj))
		}
	}
	rdf.SortTriples(out)
	out = rdf.DedupTriples(out)
	return &Result{Triples: out}, nil
}

func (ev *evaluator) instantiateNode(n NodePattern, s env) (rdf.Term, bool) {
	if !n.IsVar() {
		return n.Term, true
	}
	id, ok := s[n.Var]
	if !ok {
		return rdf.Term{}, false
	}
	return ev.dict.Term(id), true
}

// project applies grouping, aggregation, DISTINCT, ORDER BY, and
// LIMIT/OFFSET, producing the final result table.
func (ev *evaluator) project(q *Query, sols []env) (*Result, error) {
	items := q.Select
	if len(items) == 0 {
		// SELECT *: project every variable seen in any solution.
		seen := map[string]bool{}
		var vars []string
		for _, s := range sols {
			for v := range s {
				if !seen[v] {
					seen[v] = true
					vars = append(vars, v)
				}
			}
		}
		sort.Strings(vars)
		for _, v := range vars {
			items = append(items, SelectItem{Var: v})
		}
	}

	hasAgg := false
	for _, it := range items {
		if it.Agg != nil {
			hasAgg = true
		}
	}

	var rows []Binding
	var vars []string
	for _, it := range items {
		if it.Agg != nil {
			vars = append(vars, it.Agg.As)
		} else {
			vars = append(vars, it.Var)
		}
	}

	if hasAgg || len(q.GroupBy) > 0 {
		rows = ev.aggregate(q, items, sols)
	} else {
		for _, s := range sols {
			b := make(Binding, len(items))
			for _, it := range items {
				if id, ok := s[it.Var]; ok {
					b[it.Var] = ev.dict.Term(id)
				}
			}
			rows = append(rows, b)
		}
	}

	if q.Distinct {
		rows = distinctRows(vars, rows)
	}
	if len(q.OrderBy) > 0 {
		sortRows(q.OrderBy, rows)
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Result{Vars: vars, Rows: rows}, nil
}

func (ev *evaluator) aggregate(q *Query, items []SelectItem, sols []env) []Binding {
	type groupState struct {
		rep     env
		members []env
	}
	groups := map[string]*groupState{}
	var order []string
	for _, s := range sols {
		var key strings.Builder
		for _, gv := range q.GroupBy {
			fmt.Fprintf(&key, "%d|", s[gv])
		}
		k := key.String()
		g, ok := groups[k]
		if !ok {
			g = &groupState{rep: s}
			groups[k] = g
			order = append(order, k)
		}
		g.members = append(g.members, s)
	}
	// With no solutions and no GROUP BY, aggregates still yield one row.
	if len(order) == 0 && len(q.GroupBy) == 0 {
		groups[""] = &groupState{rep: env{}}
		order = append(order, "")
	}

	var rows []Binding
	for _, k := range order {
		g := groups[k]
		b := Binding{}
		for _, it := range items {
			if it.Agg == nil {
				if id, ok := g.rep[it.Var]; ok {
					b[it.Var] = ev.dict.Term(id)
				}
				continue
			}
			n := 0
			switch {
			case it.Agg.Var == "":
				n = len(g.members)
			case it.Agg.Distinct:
				seen := map[store.ID]bool{}
				for _, m := range g.members {
					if id, ok := m[it.Agg.Var]; ok && !seen[id] {
						seen[id] = true
						n++
					}
				}
			default:
				for _, m := range g.members {
					if _, ok := m[it.Agg.Var]; ok {
						n++
					}
				}
			}
			b[it.Agg.As] = rdf.Integer(int64(n))
		}
		rows = append(rows, b)
	}
	return rows
}

// rowKey serializes a row's projected values into a dedup key.
func rowKey(vars []string, r Binding) string {
	var key strings.Builder
	for _, v := range vars {
		if t, ok := r[v]; ok {
			key.WriteString(t.String())
		}
		key.WriteByte('\x00')
	}
	return key.String()
}

func distinctRows(vars []string, rows []Binding) []Binding {
	seen := map[string]bool{}
	var out []Binding
	for _, r := range rows {
		k := rowKey(vars, r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func sortRows(conds []OrderCond, rows []Binding) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range conds {
			a, aok := rows[i][c.Var]
			b, bok := rows[j][c.Var]
			var cmp int
			switch {
			case !aok && !bok:
				cmp = 0
			case !aok:
				cmp = -1
			case !bok:
				cmp = 1
			default:
				if n, err := compareTerms(a, b); err == nil {
					cmp = n
				} else {
					cmp = rdf.Compare(a, b)
				}
			}
			if cmp != 0 {
				if c.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
}
