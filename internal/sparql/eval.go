package sparql

import (
	"fmt"
	"sort"
	"strings"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// Result is the outcome of query execution.
type Result struct {
	// Vars lists the projected variable names in order.
	Vars []string
	// Rows holds one binding per solution. Unbound projected variables
	// (possible under OPTIONAL) are absent from the map.
	Rows []Binding
	// Ask holds the result of an ASK query.
	Ask bool
	// Triples holds the graph produced by a CONSTRUCT query, sorted and
	// deduplicated.
	Triples []rdf.Triple
}

// Exec runs the query against a triple source. The dict must be the
// dictionary underlying the source's models.
func (q *Query) Exec(src store.Source, dict *store.Dict) (*Result, error) {
	ev := &evaluator{src: src, dict: dict}
	sols, err := ev.group(q.Where, []env{{}})
	if err != nil {
		return nil, err
	}
	if q.Kind == AskQuery {
		return &Result{Ask: len(sols) > 0}, nil
	}
	if q.Kind == ConstructQuery {
		return ev.construct(q, sols)
	}
	return ev.project(q, sols)
}

// env is a variable assignment at the dictionary-ID level.
type env map[string]store.ID

func (e env) clone() env {
	c := make(env, len(e)+2)
	for k, v := range e {
		c[k] = v
	}
	return c
}

type evaluator struct {
	src  store.Source
	dict *store.Dict
}

// group evaluates a group pattern against the given input solutions.
// Per SPARQL semantics, FILTERs constrain the whole group regardless of
// their position inside it.
func (ev *evaluator) group(g *GroupPattern, input []env) ([]env, error) {
	sols := input
	var filters []*Filter
	var existsFilters []*ExistsFilter
	i := 0
	for i < len(g.Elements) {
		switch el := g.Elements[i].(type) {
		case *TriplePattern:
			// Gather the contiguous run of triple patterns into one
			// basic graph pattern so it can be join-ordered.
			var block []*TriplePattern
			for i < len(g.Elements) {
				tp, ok := g.Elements[i].(*TriplePattern)
				if !ok {
					break
				}
				block = append(block, tp)
				i++
			}
			var err error
			sols, err = ev.bgp(block, sols)
			if err != nil {
				return nil, err
			}
			continue
		case *Filter:
			filters = append(filters, el)
		case *ExistsFilter:
			existsFilters = append(existsFilters, el)
		case *Optional:
			var out []env
			for _, s := range sols {
				extended, err := ev.group(el.Pattern, []env{s})
				if err != nil {
					return nil, err
				}
				if len(extended) == 0 {
					out = append(out, s)
				} else {
					out = append(out, extended...)
				}
			}
			sols = out
		case *Union:
			left, err := ev.group(el.Left, sols)
			if err != nil {
				return nil, err
			}
			right, err := ev.group(el.Right, sols)
			if err != nil {
				return nil, err
			}
			sols = append(left, right...)
		case *GroupPattern:
			var err error
			sols, err = ev.group(el, sols)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sparql: unknown group element %T", el)
		}
		i++
	}
	for _, f := range filters {
		var kept []env
		for _, s := range sols {
			ok, err := ev.filterHolds(f.Expr, s)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, s)
			}
		}
		sols = kept
	}
	for _, ef := range existsFilters {
		var kept []env
		for _, s := range sols {
			matches, err := ev.group(ef.Pattern, []env{s})
			if err != nil {
				return nil, err
			}
			if (len(matches) > 0) != ef.Negated {
				kept = append(kept, s)
			}
		}
		sols = kept
	}
	return sols, nil
}

// filterHolds evaluates a filter under SPARQL error semantics: an
// evaluation error (e.g. unbound variable) makes the filter false.
func (ev *evaluator) filterHolds(e Expr, s env) (bool, error) {
	b := ev.decodeEnv(s)
	v, err := e.Eval(b)
	if err != nil {
		return false, nil
	}
	t, err := v.Truth()
	if err != nil {
		return false, nil
	}
	return t, nil
}

func (ev *evaluator) decodeEnv(s env) Binding {
	b := make(Binding, len(s))
	for k, id := range s {
		b[k] = ev.dict.Term(id)
	}
	return b
}

// bgp evaluates a basic graph pattern with greedy join ordering: patterns
// with more constant positions run first, and complex property paths run
// last so their endpoints are as bound as possible.
func (ev *evaluator) bgp(block []*TriplePattern, sols []env) ([]env, error) {
	ordered := make([]*TriplePattern, len(block))
	copy(ordered, block)
	sort.SliceStable(ordered, func(i, j int) bool {
		return patternScore(ordered[i]) > patternScore(ordered[j])
	})
	var err error
	for _, tp := range ordered {
		sols, err = ev.triple(tp, sols)
		if err != nil {
			return nil, err
		}
		if len(sols) == 0 {
			return nil, nil
		}
	}
	return sols, nil
}

func patternScore(tp *TriplePattern) int {
	score := 0
	if !tp.S.IsVar() {
		score += 4
	}
	if !tp.O.IsVar() {
		score += 3
	}
	switch tp.P.(type) {
	case PathIRI:
		score += 2
	case PathVar:
		// neutral: cheaper than a closure, less selective than a constant
	default:
		score -= 4 // paths are expensive; defer them
	}
	return score
}

func (ev *evaluator) triple(tp *TriplePattern, sols []env) ([]env, error) {
	if iri, ok := IsSimple(tp.P); ok {
		return ev.simpleTriple(tp, iri, sols)
	}
	if pv, ok := tp.P.(PathVar); ok {
		return ev.varPredTriple(tp, pv.Name, sols)
	}
	return ev.pathTriple(tp, sols)
}

// varPredTriple matches a pattern whose predicate is a variable.
func (ev *evaluator) varPredTriple(tp *TriplePattern, pvar string, sols []env) ([]env, error) {
	var out []env
	for _, s := range sols {
		sid, svar, ok := ev.resolveNode(tp.S, s)
		if !ok {
			continue
		}
		oid, ovar, ok := ev.resolveNode(tp.O, s)
		if !ok {
			continue
		}
		pid := store.Wildcard
		if bound, isBound := s[pvar]; isBound {
			pid = bound
		}
		ev.src.ForEach(sid, pid, oid, func(t store.ETriple) bool {
			ns := s.clone()
			if svar != "" {
				ns[svar] = t.S
			}
			ns[pvar] = t.P
			if ovar != "" {
				if prev, exists := ns[ovar]; exists && prev != t.O {
					return true
				}
				ns[ovar] = t.O
			}
			// Shared variables across positions must agree.
			if svar != "" && svar == pvar && t.S != t.P {
				return true
			}
			if ovar != "" && ovar == pvar && t.O != t.P {
				return true
			}
			out = append(out, ns)
			return true
		})
	}
	return out, nil
}

// resolveNode turns a node pattern into (boundID, varName). boundID is
// Wildcard when the node is an unbound variable; ok is false when the
// node is a constant unknown to the dictionary (no match possible).
func (ev *evaluator) resolveNode(n NodePattern, s env) (id store.ID, varName string, ok bool) {
	if n.IsVar() {
		if v, bound := s[n.Var]; bound {
			return v, "", true
		}
		return store.Wildcard, n.Var, true
	}
	id, found := ev.dict.Lookup(n.Term)
	if !found {
		return 0, "", false
	}
	return id, "", true
}

func (ev *evaluator) simpleTriple(tp *TriplePattern, predIRI string, sols []env) ([]env, error) {
	pid, found := ev.dict.Lookup(rdf.IRI(predIRI))
	if !found {
		return nil, nil
	}
	var out []env
	for _, s := range sols {
		sid, svar, ok := ev.resolveNode(tp.S, s)
		if !ok {
			continue
		}
		oid, ovar, ok := ev.resolveNode(tp.O, s)
		if !ok {
			continue
		}
		ev.src.ForEach(sid, pid, oid, func(t store.ETriple) bool {
			ns := s
			if svar != "" || ovar != "" {
				ns = s.clone()
				if svar != "" {
					ns[svar] = t.S
				}
				if ovar != "" {
					// Same variable in subject and object positions must
					// agree.
					if svar == ovar && ns[svar] != t.O {
						return true
					}
					ns[ovar] = t.O
				}
			}
			out = append(out, ns)
			return true
		})
	}
	return out, nil
}

func (ev *evaluator) pathTriple(tp *TriplePattern, sols []env) ([]env, error) {
	var out []env
	for _, s := range sols {
		sid, svar, ok := ev.resolveNode(tp.S, s)
		if !ok {
			continue
		}
		oid, ovar, ok := ev.resolveNode(tp.O, s)
		if !ok {
			continue
		}
		pairs := ev.evalPath(tp.P, sid, oid)
		for _, pr := range pairs {
			ns := s
			if svar != "" || ovar != "" {
				ns = s.clone()
				if svar != "" {
					ns[svar] = pr[0]
				}
				if ovar != "" {
					if svar == ovar && pr[0] != pr[1] {
						continue
					}
					ns[ovar] = pr[1]
				}
			}
			out = append(out, ns)
		}
	}
	return out, nil
}

// construct instantiates the CONSTRUCT template once per solution.
// Instantiations with unbound variables or a literal subject are skipped,
// per the SPARQL specification.
func (ev *evaluator) construct(q *Query, sols []env) (*Result, error) {
	var out []rdf.Triple
	for _, s := range sols {
		for _, tp := range q.Template {
			subj, ok := ev.instantiateNode(tp.S, s)
			if !ok || subj.IsLiteral() {
				continue
			}
			var pred rdf.Term
			switch p := tp.P.(type) {
			case PathIRI:
				pred = rdf.IRI(p.IRI)
			case PathVar:
				id, bound := s[p.Name]
				if !bound {
					continue
				}
				pred = ev.dict.Term(id)
				if !pred.IsIRI() {
					continue
				}
			default:
				continue
			}
			obj, ok := ev.instantiateNode(tp.O, s)
			if !ok {
				continue
			}
			out = append(out, rdf.T(subj, pred, obj))
		}
	}
	rdf.SortTriples(out)
	out = rdf.DedupTriples(out)
	return &Result{Triples: out}, nil
}

func (ev *evaluator) instantiateNode(n NodePattern, s env) (rdf.Term, bool) {
	if !n.IsVar() {
		return n.Term, true
	}
	id, ok := s[n.Var]
	if !ok {
		return rdf.Term{}, false
	}
	return ev.dict.Term(id), true
}

// project applies grouping, aggregation, DISTINCT, ORDER BY, and
// LIMIT/OFFSET, producing the final result table.
func (ev *evaluator) project(q *Query, sols []env) (*Result, error) {
	items := q.Select
	if len(items) == 0 {
		// SELECT *: project every variable seen in any solution.
		seen := map[string]bool{}
		var vars []string
		for _, s := range sols {
			for v := range s {
				if !seen[v] {
					seen[v] = true
					vars = append(vars, v)
				}
			}
		}
		sort.Strings(vars)
		for _, v := range vars {
			items = append(items, SelectItem{Var: v})
		}
	}

	hasAgg := false
	for _, it := range items {
		if it.Agg != nil {
			hasAgg = true
		}
	}

	var rows []Binding
	var vars []string
	for _, it := range items {
		if it.Agg != nil {
			vars = append(vars, it.Agg.As)
		} else {
			vars = append(vars, it.Var)
		}
	}

	if hasAgg || len(q.GroupBy) > 0 {
		rows = ev.aggregate(q, items, sols)
	} else {
		for _, s := range sols {
			b := make(Binding, len(items))
			for _, it := range items {
				if id, ok := s[it.Var]; ok {
					b[it.Var] = ev.dict.Term(id)
				}
			}
			rows = append(rows, b)
		}
	}

	if q.Distinct {
		rows = distinctRows(vars, rows)
	}
	if len(q.OrderBy) > 0 {
		sortRows(q.OrderBy, rows)
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Result{Vars: vars, Rows: rows}, nil
}

func (ev *evaluator) aggregate(q *Query, items []SelectItem, sols []env) []Binding {
	type groupState struct {
		rep     env
		members []env
	}
	groups := map[string]*groupState{}
	var order []string
	for _, s := range sols {
		var key strings.Builder
		for _, gv := range q.GroupBy {
			fmt.Fprintf(&key, "%d|", s[gv])
		}
		k := key.String()
		g, ok := groups[k]
		if !ok {
			g = &groupState{rep: s}
			groups[k] = g
			order = append(order, k)
		}
		g.members = append(g.members, s)
	}
	// With no solutions and no GROUP BY, aggregates still yield one row.
	if len(order) == 0 && len(q.GroupBy) == 0 {
		groups[""] = &groupState{rep: env{}}
		order = append(order, "")
	}

	var rows []Binding
	for _, k := range order {
		g := groups[k]
		b := Binding{}
		for _, it := range items {
			if it.Agg == nil {
				if id, ok := g.rep[it.Var]; ok {
					b[it.Var] = ev.dict.Term(id)
				}
				continue
			}
			n := 0
			switch {
			case it.Agg.Var == "":
				n = len(g.members)
			case it.Agg.Distinct:
				seen := map[store.ID]bool{}
				for _, m := range g.members {
					if id, ok := m[it.Agg.Var]; ok && !seen[id] {
						seen[id] = true
						n++
					}
				}
			default:
				for _, m := range g.members {
					if _, ok := m[it.Agg.Var]; ok {
						n++
					}
				}
			}
			b[it.Agg.As] = rdf.Integer(int64(n))
		}
		rows = append(rows, b)
	}
	return rows
}

func distinctRows(vars []string, rows []Binding) []Binding {
	seen := map[string]bool{}
	var out []Binding
	for _, r := range rows {
		var key strings.Builder
		for _, v := range vars {
			if t, ok := r[v]; ok {
				key.WriteString(t.String())
			}
			key.WriteByte('\x00')
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func sortRows(conds []OrderCond, rows []Binding) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range conds {
			a, aok := rows[i][c.Var]
			b, bok := rows[j][c.Var]
			var cmp int
			switch {
			case !aok && !bok:
				cmp = 0
			case !aok:
				cmp = -1
			case !bok:
				cmp = 1
			default:
				if n, err := compareTerms(a, b); err == nil {
					cmp = n
				} else {
					cmp = rdf.Compare(a, b)
				}
			}
			if cmp != 0 {
				if c.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
}
