package sparql

import (
	"testing"

	"mdw/internal/rdf"
)

// nested combinator coverage: OPTIONAL inside OPTIONAL, UNION inside
// OPTIONAL, and filters scoped to inner groups.

func TestOptionalInsideOptional(t *testing.T) {
	st := fixtureStore(t, []rdf.Triple{
		rdf.T(rdf.IRI("http://t/a"), rdf.IRI("http://t/p"), rdf.IRI("http://t/b")),
		rdf.T(rdf.IRI("http://t/b"), rdf.IRI("http://t/q"), rdf.IRI("http://t/c")),
		rdf.T(rdf.IRI("http://t/c"), rdf.IRI("http://t/r"), rdf.IRI("http://t/d")),
		rdf.T(rdf.IRI("http://t/x"), rdf.IRI("http://t/p"), rdf.IRI("http://t/y")),
	})
	q := MustParse(`SELECT ?s ?c ?d WHERE {
		?s <http://t/p> ?b .
		OPTIONAL {
			?b <http://t/q> ?c .
			OPTIONAL { ?c <http://t/r> ?d }
		}
	}`)
	res, err := q.Exec(st.ViewOf("m"), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		switch rdf.LocalName(r["s"].Value) {
		case "a":
			if rdf.LocalName(r["c"].Value) != "c" || rdf.LocalName(r["d"].Value) != "d" {
				t.Errorf("a row = %v", r)
			}
		case "x":
			if _, ok := r["c"]; ok {
				t.Errorf("x row should have no ?c: %v", r)
			}
		}
	}
}

func TestUnionInsideOptional(t *testing.T) {
	st := fixtureStore(t, []rdf.Triple{
		rdf.T(rdf.IRI("http://t/a"), rdf.IRI("http://t/p"), rdf.IRI("http://t/b")),
		rdf.T(rdf.IRI("http://t/b"), rdf.IRI("http://t/q1"), rdf.Literal("via q1")),
		rdf.T(rdf.IRI("http://t/b"), rdf.IRI("http://t/q2"), rdf.Literal("via q2")),
		rdf.T(rdf.IRI("http://t/z"), rdf.IRI("http://t/p"), rdf.IRI("http://t/w")),
	})
	q := MustParse(`SELECT ?s ?v WHERE {
		?s <http://t/p> ?b .
		OPTIONAL {
			{ ?b <http://t/q1> ?v } UNION { ?b <http://t/q2> ?v }
		}
	}`)
	res, err := q.Exec(st.ViewOf("m"), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	// a matches both union branches (2 rows); z keeps one unbound row.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFilterScopedToInnerGroup(t *testing.T) {
	st := fixtureStore(t, []rdf.Triple{
		rdf.T(rdf.IRI("http://t/a"), rdf.IRI("http://t/len"), rdf.Integer(5)),
		rdf.T(rdf.IRI("http://t/b"), rdf.IRI("http://t/len"), rdf.Integer(50)),
	})
	// The filter inside OPTIONAL prunes the optional part only; the outer
	// solution survives.
	q := MustParse(`SELECT ?s ?l WHERE {
		?s <http://t/len> ?x .
		OPTIONAL { ?s <http://t/len> ?l . FILTER (?l > 10) }
	}`)
	res, err := q.Exec(st.ViewOf("m"), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	bound := 0
	for _, r := range res.Rows {
		if _, ok := r["l"]; ok {
			bound++
		}
	}
	if bound != 1 {
		t.Errorf("bound optional rows = %d, want 1", bound)
	}
}

func TestChainedUnions(t *testing.T) {
	st := fixtureStore(t, []rdf.Triple{
		rdf.T(rdf.IRI("http://t/a"), rdf.IRI("http://t/p1"), rdf.Literal("1")),
		rdf.T(rdf.IRI("http://t/b"), rdf.IRI("http://t/p2"), rdf.Literal("2")),
		rdf.T(rdf.IRI("http://t/c"), rdf.IRI("http://t/p3"), rdf.Literal("3")),
	})
	q := MustParse(`SELECT ?s WHERE {
		{ ?s <http://t/p1> ?v } UNION { ?s <http://t/p2> ?v } UNION { ?s <http://t/p3> ?v }
	}`)
	res, err := q.Exec(st.ViewOf("m"), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
