package sparql

import (
	"strings"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// planFixture builds a model with a skewed predicate distribution:
// t:common has 50 triples, t:rare has 3. Statistics-driven ordering must
// start from the rare predicate.
func planFixture() (*store.Store, store.Source, *store.Dict) {
	st := store.New()
	var ts []rdf.Triple
	for i := 0; i < 50; i++ {
		ts = append(ts, rdf.T(
			rdf.IRI("http://t/s"+string(rune('A'+i%26))+string(rune('a'+i/26))),
			rdf.IRI("http://t/common"),
			rdf.IRI("http://t/o"+string(rune('A'+i%26))+string(rune('a'+i/26)))))
	}
	for _, s := range []string{"sA", "sB", "sC"} {
		ts = append(ts, rdf.T(
			rdf.IRI("http://t/"+s), rdf.IRI("http://t/rare"), rdf.IRI("http://t/r")))
	}
	st.AddAll("m", ts)
	return st, st.ViewOf("m"), st.Dict()
}

func TestPlanStatsJoinOrder(t *testing.T) {
	_, src, dict := planFixture()
	q := MustParse(`SELECT ?y ?z WHERE {
		?x <http://t/common> ?y .
		?x <http://t/rare> ?z .
	}`)
	out := q.Plan(src, dict).String()
	rare := strings.Index(out, "<http://t/rare>")
	common := strings.Index(out, "<http://t/common>")
	if rare < 0 || common < 0 || rare > common {
		t.Errorf("statistics should order the rare predicate first:\n%s", out)
	}
	if !strings.Contains(out, "[est ") {
		t.Errorf("plan against a source must show estimates:\n%s", out)
	}
}

func TestPlanHeuristicFallbackWithoutSource(t *testing.T) {
	q := MustParse(`SELECT ?y WHERE {
		?x <http://t/common> ?y .
		<http://t/sA> <http://t/rare> ?x .
	}`)
	out := q.Plan(nil, nil).String()
	// Without statistics the constant-subject pattern is the selective one.
	first := strings.Index(out, "<http://t/sA>")
	second := strings.Index(out, "<http://t/common>")
	if first < 0 || second < 0 || first > second {
		t.Errorf("heuristic order wrong:\n%s", out)
	}
	if strings.Contains(out, "[est ") {
		t.Errorf("plan without a source must not print estimates:\n%s", out)
	}
}

func TestPlanFilterResidualForOptionalVar(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE {
		?x <http://t/rare> ?y .
		OPTIONAL { ?x <http://t/common> ?z }
		FILTER (?z != <http://t/o>)
	}`)
	out := q.Explain()
	if !strings.Contains(out, "FILTER ?z != <http://t/o> (applied at group end") {
		t.Errorf("filter on an optionally-bound variable must stay residual:\n%s", out)
	}
}

func TestPlanFastPathEquality(t *testing.T) {
	_, src, dict := planFixture()
	q := MustParse(`SELECT ?x WHERE {
		?x <http://t/rare> ?y .
		FILTER (?x = <http://t/sA>)
	}`)
	if out := q.Plan(src, dict).String(); !strings.Contains(out, "ID fast path") {
		t.Errorf("IRI equality should use the ID fast path:\n%s", out)
	}
	res, err := q.Exec(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want exactly sA, got %d rows", len(res.Rows))
	}

	// != keeps everything except sA.
	qn := MustParse(`SELECT ?x WHERE {
		?x <http://t/rare> ?y .
		FILTER (?x != <http://t/sA>)
	}`)
	res, err = qn.Exec(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want sB and sC, got %d rows", len(res.Rows))
	}

	// Equality against an IRI the dictionary has never seen matches nothing;
	// inequality matches everything.
	qu := MustParse(`SELECT ?x WHERE {
		?x <http://t/rare> ?y .
		FILTER (?x = <http://t/never-seen>)
	}`)
	res, err = qu.Exec(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("unknown IRI equality must match nothing, got %d rows", len(res.Rows))
	}
	qun := MustParse(`SELECT ?x WHERE {
		?x <http://t/rare> ?y .
		FILTER (?x != <http://t/never-seen>)
	}`)
	res, err = qun.Exec(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("unknown IRI inequality must keep all rows, got %d", len(res.Rows))
	}
}

func TestPlanWarningsCartesian(t *testing.T) {
	q := MustParse(`SELECT ?a WHERE {
		?a <http://t/p> ?b .
		?c <http://t/q> ?d .
	}`)
	w := q.Plan(nil, nil).Warnings()
	if len(w) != 1 || !strings.Contains(w[0], "cartesian product") {
		t.Errorf("disconnected BGP must warn, got %v", w)
	}
	connected := MustParse(`SELECT ?a WHERE {
		?a <http://t/p> ?b .
		?b <http://t/q> ?d .
	}`)
	if w := connected.Plan(nil, nil).Warnings(); len(w) != 0 {
		t.Errorf("connected BGP must not warn, got %v", w)
	}
	// Constant-only patterns do not form a product.
	constOnly := MustParse(`ASK {
		<http://t/a> <http://t/p> <http://t/b> .
		?x <http://t/q> ?y .
	}`)
	if w := constOnly.Plan(nil, nil).Warnings(); len(w) != 0 {
		t.Errorf("single variable component must not warn, got %v", w)
	}
}

func TestPlanExecWithoutSource(t *testing.T) {
	q := MustParse(`ASK { ?s ?p ?o }`)
	if _, err := q.Plan(nil, nil).Exec(); err == nil {
		t.Fatal("executing a source-free plan must error")
	}
}

// countingSource counts index callbacks to observe early termination.
type countingSource struct {
	store.Source
	calls int
}

func (c *countingSource) ForEach(s, p, o store.ID, fn func(store.ETriple) bool) {
	c.Source.ForEach(s, p, o, func(t store.ETriple) bool {
		c.calls++
		return fn(t)
	})
}

func TestAskStopsAtFirstSolution(t *testing.T) {
	_, src, dict := planFixture()
	cs := &countingSource{Source: src}
	q := MustParse(`ASK { ?x <http://t/common> ?y }`)
	res, err := q.Exec(cs, dict)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ask {
		t.Fatal("expected true")
	}
	if cs.calls != 1 {
		t.Errorf("ASK scanned %d triples; must stop at the first", cs.calls)
	}
}

func TestLimitStreamsEarly(t *testing.T) {
	_, src, dict := planFixture()
	cs := &countingSource{Source: src}
	q := MustParse(`SELECT ?x WHERE { ?x <http://t/common> ?y } LIMIT 3`)
	res, err := q.Exec(cs, dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(res.Rows))
	}
	if cs.calls > 4 {
		t.Errorf("LIMIT 3 scanned %d of 50 triples; must stop early", cs.calls)
	}
	// ORDER BY disables streaming: every solution must be seen.
	cs.calls = 0
	qo := MustParse(`SELECT ?x WHERE { ?x <http://t/common> ?y } ORDER BY ASC(?x) LIMIT 3`)
	if _, err := qo.Exec(cs, dict); err != nil {
		t.Fatal(err)
	}
	if cs.calls != 50 {
		t.Errorf("ORDER BY query scanned %d triples, want all 50", cs.calls)
	}
}

// TestPlanCacheRevalidation exercises the memoized-plan staleness rule:
// a plan holding a constant the dictionary did not know must be rebuilt
// once the dictionary grows.
func TestPlanCacheRevalidation(t *testing.T) {
	st := store.New()
	st.AddAll("m", []rdf.Triple{
		rdf.T(rdf.IRI("http://t/a"), rdf.IRI("http://t/p"), rdf.IRI("http://t/b")),
	})
	src, dict := st.ViewOf("m"), st.Dict()
	q := MustParse(`SELECT ?x WHERE { ?x <http://t/p> <http://t/late> }`)
	res, err := q.Exec(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("object not in data yet, got %d rows", len(res.Rows))
	}
	// The object IRI appears later; the same parsed query must see it.
	st.AddAll("m", []rdf.Triple{
		rdf.T(rdf.IRI("http://t/c"), rdf.IRI("http://t/p"), rdf.IRI("http://t/late")),
	})
	res, err = q.Exec(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("stale plan: new triple invisible, got %d rows", len(res.Rows))
	}

	// A fully resolved cached plan keeps seeing live data without replan.
	q2 := MustParse(`SELECT ?x WHERE { ?x <http://t/p> ?y }`)
	if res, _ := q2.Exec(src, dict); len(res.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(res.Rows))
	}
	st.AddAll("m", []rdf.Triple{
		rdf.T(rdf.IRI("http://t/d"), rdf.IRI("http://t/p"), rdf.IRI("http://t/b")),
	})
	if res, _ := q2.Exec(src, dict); len(res.Rows) != 3 {
		t.Fatalf("cached plan must read live indexes, got %d rows", len(res.Rows))
	}
}

func TestExplainOnShowsEstimates(t *testing.T) {
	_, src, dict := planFixture()
	q := MustParse(`SELECT ?x WHERE { ?x <http://t/rare> ?y }`)
	out := q.ExplainOn(src, dict)
	if !strings.Contains(out, "[est 3]") {
		t.Errorf("ExplainOn must render real cardinalities:\n%s", out)
	}
}
