package sparql_test

// Analyze-mode parity harness: EXPLAIN ANALYZE must be pure
// observation. Every random query runs twice over the same plan options
// — once plain, once with stats collection — and the solution multisets
// must be identical, at serial parallelism and at GOMAXPROCS with the
// parallel thresholds floored so morsel / parallel-UNION / frontier-BFS
// paths all execute instrumented. Run with -race, the shared stats
// record (atomics updated from worker goroutines) gets hunted too.

import (
	"math/rand"
	"runtime"
	"testing"

	"mdw/internal/sparql"
)

// checkStatsTree asserts well-formedness of an analyzed execution's
// operator tree: a root is present, counters are non-negative, and
// ratios only appear on operators that ran.
func checkStatsTree(t *testing.T, tag, query string, stats *sparql.ExecStats, rows int) {
	t.Helper()
	if stats == nil || stats.Root == nil {
		t.Fatalf("[%s] no stats tree for %q", tag, query)
	}
	if stats.Rows != rows {
		t.Errorf("[%s] stats.Rows=%d result rows=%d for %q", tag, stats.Rows, rows, query)
	}
	if stats.Strategy == "" {
		t.Errorf("[%s] empty strategy for %q", tag, query)
	}
	var walk func(ops []*sparql.OpStats)
	walk = func(ops []*sparql.OpStats) {
		for _, op := range ops {
			if op.Op == "" {
				t.Errorf("[%s] unnamed operator in tree for %q", tag, query)
			}
			if op.Rows < 0 || op.Loops < 0 || op.Time < 0 {
				t.Errorf("[%s] negative counters on %s %q in %q", tag, op.Op, op.Detail, query)
			}
			if op.Loops == 0 && op.Rows != 0 {
				t.Errorf("[%s] %s %q produced %d rows without running in %q", tag, op.Op, op.Detail, op.Rows, query)
			}
			if op.Ratio != 0 && op.Ratio < 1 {
				t.Errorf("[%s] %s %q has ratio %v < 1 in %q", tag, op.Op, op.Detail, op.Ratio, query)
			}
			walk(op.Children)
		}
	}
	walk(stats.Root.Children)
}

// TestDifferentialAnalyze sweeps ~300 random queries (both fixtures,
// paths included) comparing analyzed and plain execution of identical
// plans, serial and parallel.
func TestDifferentialAnalyze(t *testing.T) {
	levels := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		levels = append(levels, n)
	} else {
		levels = append(levels, 4)
	}
	rng := rand.New(rand.NewSource(99))
	fixtures := []diffFixture{simpleFixture(rng), entailedFixture(rng)}
	const perFixture = 150
	for _, fx := range fixtures {
		g := &queryGen{rng: rng, fx: fx, paths: true}
		for i := 0; i < perFixture; i++ {
			full, unlimited := g.query()
			q, err := sparql.Parse(full)
			if err != nil {
				t.Fatalf("[%s #%d] generator emitted unparsable query %q: %v", fx.name, i, full, err)
			}
			for _, workers := range levels {
				opts := sparql.ParOptions{
					MaxWorkers:        workers,
					MorselSize:        4,
					SerialThreshold:   1,
					FrontierThreshold: 1,
				}
				plain, err := q.PlanOpts(fx.src, fx.dict, opts).Exec()
				if err != nil {
					t.Fatalf("[%s #%d w=%d] plain exec failed for %q: %v", fx.name, i, workers, full, err)
				}
				res, stats, err := q.PlanOpts(fx.src, fx.dict, opts).ExecAnalyze()
				if err != nil {
					t.Fatalf("[%s #%d w=%d] analyzed exec failed for %q: %v", fx.name, i, workers, full, err)
				}
				rows := len(res.Rows)
				if q.Kind == sparql.AskQuery {
					rows = 1
					if res.Ask != plain.Ask {
						t.Errorf("[%s #%d w=%d] ASK divergence on %q: analyzed=%v plain=%v",
							fx.name, i, workers, full, res.Ask, plain.Ask)
					}
				} else if unlimited != "" {
					// LIMIT without ORDER BY: row counts must agree, the
					// specific rows may legitimately differ between runs.
					if len(res.Rows) != len(plain.Rows) {
						t.Errorf("[%s #%d w=%d] LIMIT row count diverged on %q: analyzed=%d plain=%d",
							fx.name, i, workers, full, len(res.Rows), len(plain.Rows))
					}
				} else if ak, pk := rowKeys(res), rowKeys(plain); !sameMultiset(ak, pk) {
					t.Errorf("[%s #%d w=%d] divergence on %q:\nanalyzed (%d): %v\nplain    (%d): %v",
						fx.name, i, workers, full, len(ak), ak, len(pk), pk)
				}
				checkStatsTree(t, fx.name, full, stats, rows)
			}
		}
	}
}
