package sparql

import (
	"strings"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/rescache"
	"mdw/internal/store"
)

func rcTestStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	st.Add("m", rdf.T(rdf.IRI("http://x/a"), rdf.IRI("http://x/p"), rdf.IRI("http://x/b")))
	st.Add("m", rdf.T(rdf.IRI("http://x/b"), rdf.IRI("http://x/p"), rdf.IRI("http://x/c")))
	st.Add("m", rdf.T(rdf.IRI("http://x/a"), rdf.IRI("http://x/q"), rdf.IRI("http://x/c")))
	return st
}

func mustParse(t *testing.T, s string) *Query {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestResultsCacheHitAndInvalidation: a repeat on an unchanged model is
// served from the cache; one mutation makes the key stale and the next
// execution recomputes (and re-caches under the new generation).
func TestResultsCacheHitAndInvalidation(t *testing.T) {
	c := rescache.Enable(0, 0)
	defer rescache.Enable(0, 0)
	st := rcTestStore(t)
	m := st.ViewOf("m")
	q := mustParse(t, `SELECT ?s ?o WHERE { ?s <http://x/p> ?o }`)

	r1, err := q.Exec(m, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 0 || got.Misses != 1 || got.Entries != 1 {
		t.Fatalf("after first exec: %+v", got)
	}
	r2, err := q.Exec(m, st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("repeat was not a hit: %+v", got)
	}
	if len(r2.Rows) != len(r1.Rows) {
		t.Fatalf("cached rows = %d, want %d", len(r2.Rows), len(r1.Rows))
	}

	// A single mutation bumps the generation: stale key never matches.
	st.Add("m", rdf.T(rdf.IRI("http://x/z"), rdf.IRI("http://x/p"), rdf.IRI("http://x/w")))
	r3, err := q.Exec(st.ViewOf("m"), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 || got.Misses != 2 {
		t.Fatalf("post-mutation exec should miss: %+v", got)
	}
	if len(r3.Rows) != len(r1.Rows)+1 {
		t.Fatalf("post-mutation rows = %d, want %d", len(r3.Rows), len(r1.Rows)+1)
	}
}

// TestResultsCacheViewKeysEveryMember: with a (base, index) view, a
// mutation to either member model invalidates.
func TestResultsCacheViewKeysEveryMember(t *testing.T) {
	c := rescache.Enable(0, 0)
	defer rescache.Enable(0, 0)
	st := rcTestStore(t)
	st.Add("m$IDX", rdf.T(rdf.IRI("http://x/a"), rdf.IRI("http://x/p"), rdf.IRI("http://x/c")))
	q := mustParse(t, `ASK { <http://x/a> <http://x/p> ?o }`)

	if _, err := q.Exec(st.ViewOf("m", "m$IDX"), st.Dict()); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Exec(st.ViewOf("m", "m$IDX"), st.Dict()); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("view repeat was not a hit: %+v", got)
	}
	// Mutate only the index member.
	st.Add("m$IDX", rdf.T(rdf.IRI("http://x/n"), rdf.IRI("http://x/p"), rdf.IRI("http://x/o2")))
	if _, err := q.Exec(st.ViewOf("m", "m$IDX"), st.Dict()); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("index-member mutation did not invalidate: %+v", got)
	}
}

// TestResultsCacheCloneDoesNotAlias is the divergence regression of the
// fresh-generation scheme end to end: cache an answer over the source,
// clone it, mutate the source — the clone's cached/queried results must
// be unaffected in both directions.
func TestResultsCacheCloneDoesNotAlias(t *testing.T) {
	c := rescache.Enable(0, 0)
	defer rescache.Enable(0, 0)
	st := rcTestStore(t)
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://x/p> ?o }`)

	if err := st.CloneModel("m", "m2"); err != nil {
		t.Fatal(err)
	}
	rSrc, _ := q.Exec(st.ViewOf("m"), st.Dict())
	rClone, err := q.Exec(st.ViewOf("m2"), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 0 || got.Misses != 2 {
		t.Fatalf("clone must not share the source's cache entries: %+v", got)
	}
	if len(rClone.Rows) != len(rSrc.Rows) {
		t.Fatalf("clone rows = %d, want %d", len(rClone.Rows), len(rSrc.Rows))
	}
	// Diverge the source; the clone's entry stays valid and correct.
	st.Add("m", rdf.T(rdf.IRI("http://x/new"), rdf.IRI("http://x/p"), rdf.IRI("http://x/v")))
	rClone2, err := q.Exec(st.ViewOf("m2"), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("clone repeat after source mutation should hit: %+v", got)
	}
	if len(rClone2.Rows) != len(rClone.Rows) {
		t.Fatalf("source mutation changed clone's cached answer: %d != %d", len(rClone2.Rows), len(rClone.Rows))
	}
}

// TestResultsCacheBypasses: non-deterministic and non-SELECT/ASK shapes
// never enter the cache.
func TestResultsCacheBypasses(t *testing.T) {
	c := rescache.Enable(0, 0)
	defer rescache.Enable(0, 0)
	st := rcTestStore(t)
	m := st.ViewOf("m")

	for _, tc := range []struct {
		name, q string
	}{
		{"limit without order", `SELECT ?s WHERE { ?s ?p ?o } LIMIT 1`},
		{"offset without order", `SELECT ?s WHERE { ?s ?p ?o } OFFSET 1`},
		{"construct", `CONSTRUCT { ?s <http://x/p2> ?o } WHERE { ?s <http://x/p> ?o }`},
	} {
		q := mustParse(t, tc.q)
		if _, err := q.Exec(m, st.Dict()); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, err := q.Exec(m, st.Dict()); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
	if got := c.Stats(); got.Hits != 0 || got.Misses != 0 || got.Entries != 0 {
		t.Fatalf("bypassed shapes touched the cache: %+v", got)
	}
	// LIMIT with a full ORDER BY is deterministic and cacheable.
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://x/p> ?o } ORDER BY ?s LIMIT 1`)
	q.Exec(m, st.Dict())
	q.Exec(m, st.Dict())
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("ordered LIMIT should cache: %+v", got)
	}
	// Disabled cache: everything executes, nothing caches.
	rescache.Disable()
	q2 := mustParse(t, `SELECT ?o WHERE { ?s <http://x/q> ?o }`)
	if _, err := q2.Exec(m, st.Dict()); err != nil {
		t.Fatal(err)
	}
	if rescache.Default() != nil {
		t.Fatal("Disable did not stick")
	}
}

// TestExplainAnnotatesCacheHit: once an entry exists at the current
// generations, ExplainOn appends the results-cache line; a mutation
// removes it. The Peek must not skew hit/miss counters.
func TestExplainAnnotatesCacheHit(t *testing.T) {
	c := rescache.Enable(0, 0)
	defer rescache.Enable(0, 0)
	st := rcTestStore(t)
	m := st.ViewOf("m")
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://x/p> ?o }`)

	if out := q.ExplainOn(m, st.Dict()); strings.Contains(out, "results cache") {
		t.Fatalf("explain annotated before any execution:\n%s", out)
	}
	if _, err := q.Exec(m, st.Dict()); err != nil {
		t.Fatal(err)
	}
	if out := q.ExplainOn(m, st.Dict()); !strings.Contains(out, "results cache: HIT") {
		t.Fatalf("explain missing cache annotation:\n%s", out)
	}
	misses := c.Stats().Misses
	st.Add("m", rdf.T(rdf.IRI("http://x/z2"), rdf.IRI("http://x/p"), rdf.IRI("http://x/w2")))
	if out := q.ExplainOn(st.ViewOf("m"), st.Dict()); strings.Contains(out, "results cache: HIT") {
		t.Fatalf("explain still annotated after mutation:\n%s", out)
	}
	if c.Stats().Misses != misses {
		t.Error("ExplainOn's Peek counted a miss")
	}
}
