package sparql

// WalkIRIs calls fn for every IRI mentioned by the query: constant
// subjects and objects, predicate paths (including every step of
// sequence/alternative/closure paths), typed-literal datatypes, and the
// CONSTRUCT template. Prefixed names were already expanded by the
// parser, so fn always receives full IRIs. Static checkers use this to
// validate query vocabulary against the ontology.
func WalkIRIs(q *Query, fn func(iri string)) {
	if q == nil {
		return
	}
	for _, tp := range q.Template {
		walkTripleIRIs(&tp, fn)
	}
	walkGroupIRIs(q.Where, fn)
}

// WalkExprVars calls fn for every variable reference in a filter
// expression, including the arguments of BOUND and the string builtins.
// A variable mentioned several times is reported each time; callers
// needing a set should deduplicate. The planner uses this to decide the
// earliest point a FILTER can run.
func WalkExprVars(e Expr, fn func(name string)) {
	switch x := e.(type) {
	case varExpr:
		fn(x.name)
	case constExpr:
		// no variables
	case notExpr:
		WalkExprVars(x.e, fn)
	case andExpr:
		WalkExprVars(x.l, fn)
		WalkExprVars(x.r, fn)
	case orExpr:
		WalkExprVars(x.l, fn)
		WalkExprVars(x.r, fn)
	case cmpExpr:
		WalkExprVars(x.l, fn)
		WalkExprVars(x.r, fn)
	case regexExpr:
		WalkExprVars(x.text, fn)
	case boundExpr:
		fn(x.name)
	case strFuncExpr:
		WalkExprVars(x.arg, fn)
	case binStrFuncExpr:
		WalkExprVars(x.a, fn)
		WalkExprVars(x.b, fn)
	}
}

func walkGroupIRIs(g *GroupPattern, fn func(string)) {
	if g == nil {
		return
	}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case *TriplePattern:
			walkTripleIRIs(e, fn)
		case *Filter:
			// Filter expressions hold variables and literals only in the
			// supported subset; nothing to do.
		case *ExistsFilter:
			walkGroupIRIs(e.Pattern, fn)
		case *Optional:
			walkGroupIRIs(e.Pattern, fn)
		case *Union:
			walkGroupIRIs(e.Left, fn)
			walkGroupIRIs(e.Right, fn)
		case *GroupPattern:
			walkGroupIRIs(e, fn)
		}
	}
}

func walkTripleIRIs(tp *TriplePattern, fn func(string)) {
	walkNodeIRIs(tp.S, fn)
	walkPathIRIs(tp.P, fn)
	walkNodeIRIs(tp.O, fn)
}

func walkNodeIRIs(n NodePattern, fn func(string)) {
	if n.IsVar() {
		return
	}
	if n.Term.IsIRI() {
		fn(n.Term.Value)
	} else if n.Term.IsLiteral() && n.Term.Datatype != "" {
		fn(n.Term.Datatype)
	}
}

func walkPathIRIs(p Path, fn func(string)) {
	switch pp := p.(type) {
	case PathIRI:
		fn(pp.IRI)
	case PathSeq:
		for _, part := range pp.Parts {
			walkPathIRIs(part, fn)
		}
	case PathAlt:
		for _, part := range pp.Parts {
			walkPathIRIs(part, fn)
		}
	case PathInverse:
		walkPathIRIs(pp.P, fn)
	case PathRepeat:
		walkPathIRIs(pp.P, fn)
	}
}
