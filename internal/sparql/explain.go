package sparql

import (
	"fmt"
	"strings"

	"mdw/internal/rdf"
	"mdw/internal/rescache"
	"mdw/internal/store"
)

// Explain renders the evaluation plan of the query as indented text.
// Without a data source it plans from static selectivity heuristics;
// pass the actual source via ExplainOn to see the statistics-driven
// order with estimated cardinalities. Either way the rendering comes
// from the same Plan structure Exec runs, so it can never drift from
// the evaluator.
func (q *Query) Explain() string {
	return q.Plan(nil, nil).String()
}

// ExplainOn renders the plan the query would execute against src: the
// statistics-driven join order annotated with the cardinality estimate
// that selected each pattern. When the results cache holds an entry for
// the query at the source's current generations, a trailing line says
// so — execution would not run this plan at all. The probe is a Peek,
// so explaining never skews the cache's hit/miss statistics.
func (q *Query) ExplainOn(src store.Source, dict *store.Dict) string {
	s := q.Plan(src, dict).String()
	if rc := rescache.Default(); rc != nil && q.resultsCacheable() {
		if genKey, ok := sourceGenKey(src); ok && rc.Peek(q.resultCacheKey(genKey)) {
			s += "results cache: HIT — served without execution at current generations\n"
		}
	}
	return s
}

func explainNode(n NodePattern) string {
	if n.IsVar() {
		return "?" + n.Var
	}
	if n.Term.IsIRI() {
		return rdf.QName(n.Term.Value)
	}
	return n.Term.String()
}

func explainPath(p Path) string {
	switch pp := p.(type) {
	case PathIRI:
		return rdf.QName(pp.IRI)
	case PathVar:
		return "?" + pp.Name
	case PathInverse:
		return "^" + explainPath(pp.P)
	case PathSeq:
		parts := make([]string, len(pp.Parts))
		for i, part := range pp.Parts {
			parts[i] = explainPath(part)
		}
		return strings.Join(parts, "/")
	case PathAlt:
		parts := make([]string, len(pp.Parts))
		for i, part := range pp.Parts {
			parts[i] = explainPath(part)
		}
		return "(" + strings.Join(parts, "|") + ")"
	case PathRepeat:
		switch {
		case pp.Min == 0 && pp.Max == -1:
			return explainPath(pp.P) + "*"
		case pp.Min == 1 && pp.Max == -1:
			return explainPath(pp.P) + "+"
		case pp.Min == 0 && pp.Max == 1:
			return explainPath(pp.P) + "?"
		default:
			return fmt.Sprintf("%s{%d,%d}", explainPath(pp.P), pp.Min, pp.Max)
		}
	default:
		return "?"
	}
}

// exprString renders a filter expression for plan output.
func exprString(e Expr) string {
	switch x := e.(type) {
	case varExpr:
		return "?" + x.name
	case constExpr:
		if x.term.IsIRI() {
			return rdf.QName(x.term.Value)
		}
		return x.term.String()
	case notExpr:
		return "!" + exprString(x.e)
	case andExpr:
		return "(" + exprString(x.l) + " && " + exprString(x.r) + ")"
	case orExpr:
		return "(" + exprString(x.l) + " || " + exprString(x.r) + ")"
	case cmpExpr:
		return exprString(x.l) + " " + x.op + " " + exprString(x.r)
	case regexExpr:
		return fmt.Sprintf("REGEX(%s, %q)", exprString(x.text), x.re.String())
	case boundExpr:
		return "BOUND(?" + x.name + ")"
	case strFuncExpr:
		return x.fn + "(" + exprString(x.arg) + ")"
	case binStrFuncExpr:
		return x.fn + "(" + exprString(x.a) + ", " + exprString(x.b) + ")"
	default:
		return "<expr>"
	}
}
