package sparql

import (
	"fmt"
	"sort"
	"strings"

	"mdw/internal/rdf"
)

// Explain renders the evaluation plan of the query as indented text: the
// group structure, the greedy join order chosen for each basic graph
// pattern, and the filters applied at each group boundary. It mirrors
// exactly what the evaluator does, so it is the first tool to reach for
// when a query is slow or returns nothing.
func (q *Query) Explain() string {
	var b strings.Builder
	switch q.Kind {
	case AskQuery:
		b.WriteString("ASK\n")
	case ConstructQuery:
		fmt.Fprintf(&b, "CONSTRUCT (%d template triples)\n", len(q.Template))
	default:
		b.WriteString("SELECT")
		if q.Distinct {
			b.WriteString(" DISTINCT")
		}
		if len(q.Select) == 0 {
			b.WriteString(" *")
		}
		for _, it := range q.Select {
			if it.Agg != nil {
				fmt.Fprintf(&b, " (%s(...) AS ?%s)", it.Agg.Func, it.Agg.As)
			} else {
				fmt.Fprintf(&b, " ?%s", it.Var)
			}
		}
		b.WriteByte('\n')
	}
	explainGroup(&b, q.Where, 1)
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&b, "GROUP BY ?%s\n", strings.Join(q.GroupBy, " ?"))
	}
	for _, oc := range q.OrderBy {
		dir := "ASC"
		if oc.Desc {
			dir = "DESC"
		}
		fmt.Fprintf(&b, "ORDER BY %s(?%s)\n", dir, oc.Var)
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, "LIMIT %d\n", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, "OFFSET %d\n", q.Offset)
	}
	return b.String()
}

func explainGroup(b *strings.Builder, g *GroupPattern, depth int) {
	pad := strings.Repeat("  ", depth)
	i := 0
	for i < len(g.Elements) {
		switch el := g.Elements[i].(type) {
		case *TriplePattern:
			// Reproduce the evaluator's BGP blocking and join order.
			var block []*TriplePattern
			for i < len(g.Elements) {
				tp, ok := g.Elements[i].(*TriplePattern)
				if !ok {
					break
				}
				block = append(block, tp)
				i++
			}
			ordered := make([]*TriplePattern, len(block))
			copy(ordered, block)
			sort.SliceStable(ordered, func(x, y int) bool {
				return patternScore(ordered[x]) > patternScore(ordered[y])
			})
			fmt.Fprintf(b, "%sBGP (%d patterns, join order):\n", pad, len(ordered))
			for n, tp := range ordered {
				fmt.Fprintf(b, "%s  %d. %s %s %s  [score %d]\n", pad, n+1,
					explainNode(tp.S), explainPath(tp.P), explainNode(tp.O), patternScore(tp))
			}
			continue
		case *Filter:
			fmt.Fprintf(b, "%sFILTER (applied at group end)\n", pad)
		case *ExistsFilter:
			neg := ""
			if el.Negated {
				neg = "NOT "
			}
			fmt.Fprintf(b, "%sFILTER %sEXISTS (per-solution subquery):\n", pad, neg)
			explainGroup(b, el.Pattern, depth+1)
		case *Optional:
			fmt.Fprintf(b, "%sOPTIONAL (left join):\n", pad)
			explainGroup(b, el.Pattern, depth+1)
		case *Union:
			fmt.Fprintf(b, "%sUNION left:\n", pad)
			explainGroup(b, el.Left, depth+1)
			fmt.Fprintf(b, "%sUNION right:\n", pad)
			explainGroup(b, el.Right, depth+1)
		case *GroupPattern:
			fmt.Fprintf(b, "%sGROUP:\n", pad)
			explainGroup(b, el, depth+1)
		}
		i++
	}
}

func explainNode(n NodePattern) string {
	if n.IsVar() {
		return "?" + n.Var
	}
	if n.Term.IsIRI() {
		return rdf.QName(n.Term.Value)
	}
	return n.Term.String()
}

func explainPath(p Path) string {
	switch pp := p.(type) {
	case PathIRI:
		return rdf.QName(pp.IRI)
	case PathVar:
		return "?" + pp.Name
	case PathInverse:
		return "^" + explainPath(pp.P)
	case PathSeq:
		parts := make([]string, len(pp.Parts))
		for i, part := range pp.Parts {
			parts[i] = explainPath(part)
		}
		return strings.Join(parts, "/")
	case PathAlt:
		parts := make([]string, len(pp.Parts))
		for i, part := range pp.Parts {
			parts[i] = explainPath(part)
		}
		return "(" + strings.Join(parts, "|") + ")"
	case PathRepeat:
		switch {
		case pp.Min == 0 && pp.Max == -1:
			return explainPath(pp.P) + "*"
		case pp.Min == 1 && pp.Max == -1:
			return explainPath(pp.P) + "+"
		case pp.Min == 0 && pp.Max == 1:
			return explainPath(pp.P) + "?"
		default:
			return fmt.Sprintf("%s{%d,%d}", explainPath(pp.P), pp.Min, pp.Max)
		}
	default:
		return "?"
	}
}
