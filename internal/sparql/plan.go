package sparql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// Plan is the executable, explainable evaluation plan of a query: the
// single source of truth for join order, filter placement, and early
// termination. Exec executes it; String renders it. Both views therefore
// can never drift apart.
//
// A Plan is bound to the (source, dict) pair it was built against: the
// join order is chosen from that source's statistics and constant terms
// are resolved against that dictionary. Build with Query.Plan; a nil
// source falls back to static selectivity heuristics (used by Explain
// without data and by static checkers), in which case the plan can be
// rendered but not executed.
type Plan struct {
	query    *Query
	root     *planGroup
	src      store.Source
	dict     *store.Dict
	warnings []string

	// Cache-revalidation state. A plan resolves constant terms against
	// the dictionary once at build time; the dictionary is append-only,
	// so a plan whose constants all resolved stays valid forever. A plan
	// with an unresolved constant (treated as zero matches) is only valid
	// while the dictionary has not grown, because the term may have been
	// interned since.
	unresolved bool
	dictLen    int

	// planDur is how long planning took; cached plans keep reporting the
	// original cost in the slow-query log's stage breakdown.
	planDur time.Duration

	// par is the parallel-execution decision taken at plan time from the
	// same cardinality estimates that chose the join order. The zero
	// value (parNone) means serial execution.
	par parDecision

	// nstats is the number of operator stat slots assignStatSlots handed
	// out; analyzed executions allocate one opStats per slot.
	nstats int
}

// planGroup is the planned form of a GroupPattern: an ordered step
// pipeline with filters assigned to the earliest step where their
// variables are certainly bound.
type planGroup struct {
	steps []planStep
}

type planStep interface{ planStep() }

// bgpStep is one basic graph pattern in chosen join order.
type bgpStep struct {
	patterns []*patternPlan
}

// patternPlan is one triple pattern plus the constraints pushed to run
// immediately after it binds its variables.
type patternPlan struct {
	tp *TriplePattern
	// est is the cardinality estimated when the pattern was chosen,
	// under the variables bound by the preceding steps.
	est float64
	// pushed constraints run on every solution this pattern emits.
	pushed []*plannedConstraint
	// Terms resolved against the plan's dictionary once at plan time, so
	// the executor never repeats a dictionary lookup per solution. Only
	// filled when the plan was built with a dictionary (executable plans
	// always are).
	s, o nodeRef
	pk   pathKind
	pid  store.ID // pk == pkSimple: the predicate's ID
	pvar string   // pk == pkVar: the predicate variable's name
	// si is the operator's stat slot (assignStatSlots).
	si int
}

// nodeRef is a subject/object position resolved at plan time: either a
// variable (name != "") or a constant with its dictionary ID.
type nodeRef struct {
	name  string   // variable name; "" for constants
	id    store.ID // constant's ID (meaningless for variables)
	known bool     // constant exists in the dictionary
}

type pathKind int

const (
	pkSimple pathKind = iota // single forward predicate IRI
	pkVar                    // variable predicate
	pkPath                   // composite property path
)

// filterStep applies a constraint between pipeline steps (either pushed
// to an early position or residual at group end).
type filterStep struct {
	c *plannedConstraint
}

type optionalStep struct {
	group *planGroup
	si    int // stat slot (assignStatSlots)
}

type unionStep struct {
	left, right *planGroup
	si          int // stat slot (assignStatSlots)
}

type groupStep struct {
	group *planGroup
	si    int // stat slot (assignStatSlots)
}

func (*bgpStep) planStep()      {}
func (*filterStep) planStep()   {}
func (*optionalStep) planStep() {}
func (*unionStep) planStep()    {}
func (*groupStep) planStep()    {}

// plannedConstraint is a FILTER or FILTER (NOT) EXISTS with its
// placement metadata resolved at plan time.
type plannedConstraint struct {
	filter *Filter       // plain filter (nil when exists is set)
	exists *ExistsFilter // (NOT) EXISTS constraint
	group  *planGroup    // planned body of the exists pattern
	// vars lists every variable the filter expression references; the
	// executor decodes exactly these (through its term cache) instead of
	// rebuilding a full Binding per solution.
	vars []string
	// need lists the variables that must be bound before the constraint
	// may run (variables the enclosing group can still bind later).
	need []string
	// pushed records whether the constraint runs before group end.
	pushed bool
	// ID-level equality fast path for ?x = <iri> / ?x != <iri>: when
	// fastVar is non-empty the constraint compares dictionary IDs and
	// skips term decoding entirely.
	fastVar   string
	fastID    store.ID
	fastKnown bool // constant IRI exists in the dictionary
	fastNeg   bool // != instead of =
	// si is the operator's stat slot (assignStatSlots).
	si int
}

// varset tracks variables certainly bound at a point in the pipeline.
type varset map[string]bool

func (vs varset) clone() varset {
	c := make(varset, len(vs))
	for v := range vs {
		c[v] = true
	}
	return c
}

func (vs varset) hasAll(names []string) bool {
	for _, n := range names {
		if !vs[n] {
			return false
		}
	}
	return true
}

// Plan builds the evaluation plan for the query against src. Pass the
// source and dictionary the query will execute against so the planner
// can use real cardinalities; a nil src yields a statistics-free plan
// (static heuristics) good only for rendering and analysis.
func (q *Query) Plan(src store.Source, dict *store.Dict) *Plan {
	return q.PlanOpts(src, dict, DefaultParOptions())
}

// PlanOpts is Plan with explicit parallelism options: the worker cap,
// morsel size, and serial-fallback thresholds the plan's parallel
// decision uses. Tests force tiny thresholds through it; production
// callers want Plan.
func (q *Query) PlanOpts(src store.Source, dict *store.Dict, par ParOptions) *Plan {
	t0 := time.Now()
	p := &Plan{query: q, src: src, dict: dict}
	if dict != nil {
		p.dictLen = dict.Len()
	}
	pl := &planner{src: src, dict: dict, plan: p}
	p.root, _ = pl.group(q.Where, varset{})
	p.decidePar(par)
	p.assignStatSlots()
	p.planDur = obsPlanHist.ObserveSince(t0)
	return p
}

// Warnings returns structural problems the planner noticed — currently
// disconnected basic graph patterns (cartesian products). Static
// checkers surface these at lint time.
func (p *Plan) Warnings() []string { return p.warnings }

type planner struct {
	src  store.Source
	dict *store.Dict
	plan *Plan
}

// group plans one GroupPattern under the given certainly-bound variable
// set and returns the planned group plus the certain set at its end.
//
// Filter placement rule: a FILTER (or (NOT) EXISTS) constrains the whole
// group regardless of position, so it may be evaluated early only once
// every variable it mentions that the group can still bind is certainly
// bound. Variables bound outside the group (or only optionally) cannot
// change during the group, so they never delay placement.
func (pl *planner) group(g *GroupPattern, certainIn varset) (*planGroup, varset) {
	pg := &planGroup{}
	certain := certainIn.clone()

	// Gather the group's constraints with their placement requirements.
	// The bindable set is only materialized when the group actually has
	// constraints: filter-free queries (the common case) plan without it.
	var pending []*plannedConstraint
	var bindable varset
	for _, el := range g.Elements {
		switch e := el.(type) {
		case *Filter:
			if bindable == nil {
				bindable = varset{}
				collectBindableVars(g, bindable)
			}
			c := &plannedConstraint{filter: e, vars: exprVars(e.Expr)}
			for _, v := range c.vars {
				if bindable[v] {
					c.need = append(c.need, v)
				}
			}
			pl.detectFastPath(c)
			pending = append(pending, c)
		case *ExistsFilter:
			if bindable == nil {
				bindable = varset{}
				collectBindableVars(g, bindable)
			}
			c := &plannedConstraint{exists: e}
			mentioned := varset{}
			collectGroupVars(e.Pattern, mentioned)
			for v := range mentioned {
				if bindable[v] {
					c.need = append(c.need, v)
				}
			}
			sort.Strings(c.need)
			pending = append(pending, c)
		}
	}
	// Constraints already satisfiable on the input solutions (constant
	// expressions, or variables bound entirely by the enclosing scope)
	// run before anything else.
	pending = pl.attachReady(pending, certain, pg, nil)

	i := 0
	for i < len(g.Elements) {
		switch el := g.Elements[i].(type) {
		case *TriplePattern:
			// Collect the run of triple patterns into one BGP. Filters
			// and EXISTS constraints are group-scoped and do not bind
			// variables, so they do not break the run.
			var block []*TriplePattern
			for i < len(g.Elements) {
				switch e := g.Elements[i].(type) {
				case *TriplePattern:
					block = append(block, e)
				case *Filter, *ExistsFilter:
					// transparent
				default:
					goto blockDone
				}
				i++
			}
		blockDone:
			pl.checkConnected(block)
			bgp := &bgpStep{}
			remaining := block // freshly built above; safe to consume
			for len(remaining) > 0 {
				best, bestEst := 0, math.Inf(1)
				for j, tp := range remaining {
					if est := pl.estimate(tp, certain); est < bestEst {
						best, bestEst = j, est
					}
				}
				tp := remaining[best]
				remaining = append(remaining[:best], remaining[best+1:]...)
				pp := &patternPlan{tp: tp, est: bestEst}
				pl.resolvePattern(pp)
				bgp.patterns = append(bgp.patterns, pp)
				if tp.S.IsVar() {
					certain[tp.S.Var] = true
				}
				if pv, ok := tp.P.(PathVar); ok {
					certain[pv.Name] = true
				}
				if tp.O.IsVar() {
					certain[tp.O.Var] = true
				}
				pending = pl.attachReady(pending, certain, pg, pp)
			}
			pg.steps = append(pg.steps, bgp)
			continue
		case *Filter, *ExistsFilter:
			// already collected
		case *Optional:
			sub, _ := pl.group(el.Pattern, certain)
			pg.steps = append(pg.steps, &optionalStep{group: sub})
		case *Union:
			left, lOut := pl.group(el.Left, certain)
			right, rOut := pl.group(el.Right, certain)
			pg.steps = append(pg.steps, &unionStep{left: left, right: right})
			// A variable certain in both branches is certain after.
			for v := range lOut {
				if rOut[v] {
					certain[v] = true
				}
			}
		case *GroupPattern:
			sub, out := pl.group(el, certain)
			pg.steps = append(pg.steps, &groupStep{group: sub})
			certain = out
		default:
			// Unknown elements surface at execution time.
		}
		pending = pl.attachReady(pending, certain, pg, nil)
		i++
	}
	// Residual constraints: variables only optionally bound (or never
	// bound) keep them at group end, exactly like the naive evaluator.
	for _, c := range pending {
		c.pushed = false
		if c.exists != nil && c.group == nil {
			c.group, _ = pl.group(c.exists.Pattern, certain)
		}
		pg.steps = append(pg.steps, &filterStep{c})
	}
	return pg, certain
}

// attachReady moves every pending constraint whose needed variables are
// now certain into the plan — onto pp's pushed list when a pattern was
// just chosen, otherwise as a filter step of pg — and returns the
// constraints still waiting.
func (pl *planner) attachReady(pending []*plannedConstraint, certain varset, pg *planGroup, pp *patternPlan) []*plannedConstraint {
	if len(pending) == 0 {
		return pending
	}
	kept := pending[:0]
	for _, c := range pending {
		if !certain.hasAll(c.need) {
			kept = append(kept, c)
			continue
		}
		c.pushed = true
		if c.exists != nil && c.group == nil {
			c.group, _ = pl.group(c.exists.Pattern, certain)
		}
		if pp != nil {
			pp.pushed = append(pp.pushed, c)
		} else {
			pg.steps = append(pg.steps, &filterStep{c})
		}
	}
	return kept
}

// resolvePattern resolves the pattern's constant terms and predicate
// against the dictionary once, at plan time.
func (pl *planner) resolvePattern(pp *patternPlan) {
	tp := pp.tp
	resolve := func(n NodePattern) nodeRef {
		if n.IsVar() {
			return nodeRef{name: n.Var}
		}
		if pl.dict == nil {
			return nodeRef{}
		}
		id, ok := pl.dict.Lookup(n.Term)
		if !ok {
			pl.plan.unresolved = true
		}
		return nodeRef{id: id, known: ok}
	}
	pp.s = resolve(tp.S)
	pp.o = resolve(tp.O)
	switch p := tp.P.(type) {
	case PathIRI:
		pp.pk = pkSimple
		if pl.dict != nil {
			if id, ok := pl.dict.Lookup(rdf.IRI(p.IRI)); ok {
				pp.pid = id
			} else {
				pl.plan.unresolved = true
			}
		}
	case PathVar:
		pp.pk = pkVar
		pp.pvar = p.Name
	default:
		pp.pk = pkPath
	}
}

// detectFastPath recognizes ?x = <iri> and ?x != <iri> (either operand
// order) and resolves the constant to a dictionary ID. Only IRI
// constants qualify: IRI equality is term identity, so ID comparison is
// exact; numeric literals compare by value and must take the slow path.
func (pl *planner) detectFastPath(c *plannedConstraint) {
	if pl.dict == nil {
		return
	}
	cmp, ok := c.filter.Expr.(cmpExpr)
	if !ok || (cmp.op != "=" && cmp.op != "!=") {
		return
	}
	v, vok := cmp.l.(varExpr)
	k, kok := cmp.r.(constExpr)
	if !vok || !kok {
		v, vok = cmp.r.(varExpr)
		k, kok = cmp.l.(constExpr)
	}
	if !vok || !kok || !k.term.IsIRI() {
		return
	}
	c.fastVar = v.name
	c.fastNeg = cmp.op == "!="
	c.fastID, c.fastKnown = pl.dict.Lookup(k.term)
	if !c.fastKnown {
		pl.plan.unresolved = true
	}
}

// checkConnected records a warning when a BGP of two or more patterns
// falls apart into independent variable components — a cartesian product
// no join order can save.
func (pl *planner) checkConnected(block []*TriplePattern) {
	if len(block) < 2 {
		return
	}
	// Union-find over patterns linked by shared variables.
	parent := make([]int, len(block))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byVar := map[string]int{}
	for i, tp := range block {
		eachPatternVar(tp, func(v string) {
			if j, ok := byVar[v]; ok {
				parent[find(i)] = find(j)
			} else {
				byVar[v] = i
			}
		})
	}
	withVars := map[int]bool{}
	for i, tp := range block {
		hasVar := false
		eachPatternVar(tp, func(string) { hasVar = true })
		if hasVar {
			withVars[find(i)] = true
		}
	}
	if len(withVars) > 1 {
		pl.plan.warnings = append(pl.plan.warnings, fmt.Sprintf(
			"basic graph pattern of %d triples splits into %d components sharing no variables (cartesian product)",
			len(block), len(withVars)))
	}
}

// ---------------------------------------------------------------------
// Cardinality estimation.

// estimate predicts the number of solutions one application of tp will
// produce given the certainly-bound variables. With statistics (src !=
// nil) it starts from Source counts with constants in place and divides
// by per-predicate distinct counts for positions held by bound
// variables; without a source it falls back to fixed selectivity
// weights that reproduce the old static heuristic's ordering.
func (pl *planner) estimate(tp *TriplePattern, certain varset) float64 {
	if pl.src == nil || pl.dict == nil {
		return pl.heuristicEstimate(tp, certain)
	}
	sID, sConst, sBound, sKnown := pl.resolvePlanNode(tp.S, certain)
	oID, oConst, oBound, oKnown := pl.resolvePlanNode(tp.O, certain)
	if !sKnown || !oKnown {
		return 0 // constant unknown to the dictionary: no match possible
	}

	switch p := tp.P.(type) {
	case PathIRI:
		pid, ok := pl.dict.Lookup(rdf.IRI(p.IRI))
		if !ok {
			return 0
		}
		raw := float64(pl.estCount(sID, pid, oID))
		if raw == 0 {
			return 0
		}
		if stats, ok := pl.src.(store.StatsSource); ok && (sBound || oBound) {
			ps := stats.PredStats(pid)
			if sBound && !sConst {
				raw /= math.Max(1, float64(ps.DistinctSubjects))
			}
			if oBound && !oConst {
				raw /= math.Max(1, float64(ps.DistinctObjects))
			}
			return raw
		}
		// No statistics: a bound position still shrinks the result.
		if sBound && !sConst {
			raw = math.Sqrt(raw)
		}
		if oBound && !oConst {
			raw = math.Sqrt(raw)
		}
		return raw
	case PathVar:
		pid := store.Wildcard
		if certain[p.Name] {
			// The predicate value is unknown at plan time; treat the
			// bound position like any other and damp the raw count.
			return math.Sqrt(float64(pl.estCount(sID, store.Wildcard, oID)))
		}
		raw := float64(pl.estCount(sID, pid, oID))
		if sBound && !sConst {
			raw = math.Sqrt(raw)
		}
		if oBound && !oConst {
			raw = math.Sqrt(raw)
		}
		return raw
	default:
		// Composite property paths (sequences, closures, inverses):
		// their cost is graph traversal, not an index probe. Run them
		// once an endpoint is fixed; defer them as long as both ends
		// are open.
		total := float64(pl.estCount(store.Wildcard, store.Wildcard, store.Wildcard))
		sFixed := sConst || sBound
		oFixed := oConst || oBound
		switch {
		case sFixed && oFixed:
			return 1
		case sFixed || oFixed:
			return math.Max(4, math.Sqrt(total))
		default:
			return total * total
		}
	}
}

// resolvePlanNode classifies a node pattern at plan time: its constant
// ID (Wildcard for any variable), whether it is a constant, whether it
// is a bound variable, and whether a constant term is known to the
// dictionary.
func (pl *planner) resolvePlanNode(n NodePattern, certain varset) (id store.ID, isConst, isBound, known bool) {
	if n.IsVar() {
		return store.Wildcard, false, certain[n.Var], true
	}
	id, ok := pl.dict.Lookup(n.Term)
	if !ok {
		return store.Wildcard, true, false, false
	}
	return id, true, false, true
}

func (pl *planner) estCount(s, p, o store.ID) int {
	if ce, ok := pl.src.(store.CardEstimator); ok {
		return ce.EstCount(s, p, o)
	}
	return pl.src.Count(s, p, o)
}

// heuristicEstimate mirrors the retired patternScore ordering with fixed
// pseudo-cardinalities: constants shrink the estimate, subjects more
// than objects, and composite paths sort last until an endpoint is
// bound.
func (pl *planner) heuristicEstimate(tp *TriplePattern, certain varset) float64 {
	fixed := func(n NodePattern) bool { return !n.IsVar() || certain[n.Var] }
	switch tp.P.(type) {
	case PathIRI, PathVar:
		est := 1e6
		if !tp.S.IsVar() {
			est /= 1000
		} else if certain[tp.S.Var] {
			est /= 100
		}
		if !tp.O.IsVar() {
			est /= 300
		} else if certain[tp.O.Var] {
			est /= 30
		}
		if _, ok := tp.P.(PathIRI); ok {
			est /= 10
		}
		return est
	default:
		switch {
		case fixed(tp.S) && fixed(tp.O):
			return 1
		case fixed(tp.S) || fixed(tp.O):
			return 1e4
		default:
			return 1e9
		}
	}
}

// ---------------------------------------------------------------------
// Variable walkers.

// eachPatternVar calls fn for every variable a triple pattern binds.
// A callback (rather than a returned slice) keeps the planner's hot
// loops allocation-free; planning runs on every Exec, so its constant
// cost is visible on small queries.
func eachPatternVar(tp *TriplePattern, fn func(string)) {
	if tp.S.IsVar() {
		fn(tp.S.Var)
	}
	if pv, ok := tp.P.(PathVar); ok {
		fn(pv.Name)
	}
	if tp.O.IsVar() {
		fn(tp.O.Var)
	}
}

// collectBindableVars adds every variable the group can bind — triple
// pattern variables at any nesting depth, including OPTIONAL and UNION
// branches but excluding EXISTS bodies (whose bindings never escape).
func collectBindableVars(g *GroupPattern, into varset) {
	if g == nil {
		return
	}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case *TriplePattern:
			eachPatternVar(e, func(v string) { into[v] = true })
		case *Optional:
			collectBindableVars(e.Pattern, into)
		case *Union:
			collectBindableVars(e.Left, into)
			collectBindableVars(e.Right, into)
		case *GroupPattern:
			collectBindableVars(e, into)
		}
	}
}

// collectGroupVars adds every variable a group mentions: triple pattern
// variables plus filter expression variables, at any depth.
func collectGroupVars(g *GroupPattern, into varset) {
	if g == nil {
		return
	}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case *TriplePattern:
			eachPatternVar(e, func(v string) { into[v] = true })
		case *Filter:
			for _, v := range exprVars(e.Expr) {
				into[v] = true
			}
		case *ExistsFilter:
			collectGroupVars(e.Pattern, into)
		case *Optional:
			collectGroupVars(e.Pattern, into)
		case *Union:
			collectGroupVars(e.Left, into)
			collectGroupVars(e.Right, into)
		case *GroupPattern:
			collectGroupVars(e, into)
		}
	}
}

// exprVars returns the distinct variables an expression references, in
// first-use order.
func exprVars(e Expr) []string {
	seen := map[string]bool{}
	var out []string
	WalkExprVars(e, func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	})
	return out
}

// ---------------------------------------------------------------------
// Rendering. Plan.String is what Explain prints: the same structures
// Exec runs, annotated with the estimates that chose the order.

// String renders the plan as indented text: the group structure, the
// join order chosen for each basic graph pattern with the cardinality
// estimates that drove it, and where each filter was placed.
//
// Concurrency contract: a Plan is immutable once published (stored in
// Query.cachedPlan or handed to obs.Statements.Record) — every field
// String reads is written during PlanOpts, never after. Statements
// renders memoized plans outside its lock, and revalidation builds a
// fresh Plan rather than touching the cached one, so rendering may run
// concurrently with Record, Snapshot, and replanning. The -race test
// TestConcurrentRecordSnapshotReplan enforces this; keep any new Plan
// field construction-only or the statement table will race.
func (p *Plan) String() string { return p.render(nil) }

// render is String with an optional execution record: when rec is
// non-nil (EXPLAIN ANALYZE, ExecStats.String) every operator line gains
// its actual row count, loop count, and time next to the estimate.
func (p *Plan) render(rec *execStatsRec) string {
	var b strings.Builder
	q := p.query
	switch q.Kind {
	case AskQuery:
		b.WriteString("ASK (stops at first solution)\n")
	case ConstructQuery:
		fmt.Fprintf(&b, "CONSTRUCT (%d template triples)\n", len(q.Template))
	default:
		b.WriteString("SELECT")
		if q.Distinct {
			b.WriteString(" DISTINCT")
		}
		if len(q.Select) == 0 {
			b.WriteString(" *")
		}
		for _, it := range q.Select {
			if it.Agg != nil {
				fmt.Fprintf(&b, " (%s(...) AS ?%s)", it.Agg.Func, it.Agg.As)
			} else {
				fmt.Fprintf(&b, " ?%s", it.Var)
			}
		}
		b.WriteByte('\n')
	}
	switch p.par.strategy {
	case parMorsel:
		fmt.Fprintf(&b, "PARALLEL morsel scan: up to %d workers, %d-triple morsels (first step est %.0f rows)\n",
			p.par.workers, p.par.morsel, p.par.est)
	case parUnion:
		fmt.Fprintf(&b, "PARALLEL UNION: branches evaluated concurrently (est %.0f rows)\n", p.par.est)
	case parPath:
		fmt.Fprintf(&b, "PARALLEL path BFS: up to %d workers on frontiers >= %d (est %.0f edges)\n",
			p.par.workers, p.par.frontierMin, p.par.est)
	}
	p.renderGroup(&b, p.root, 1, rec)
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&b, "GROUP BY ?%s\n", strings.Join(q.GroupBy, " ?"))
	}
	for _, oc := range q.OrderBy {
		dir := "ASC"
		if oc.Desc {
			dir = "DESC"
		}
		fmt.Fprintf(&b, "ORDER BY %s(?%s)\n", dir, oc.Var)
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, "LIMIT %d", q.Limit)
		if q.streamable() {
			b.WriteString(" (streamed: stops early)")
		}
		b.WriteByte('\n')
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, "OFFSET %d\n", q.Offset)
	}
	return b.String()
}

func (p *Plan) renderGroup(b *strings.Builder, g *planGroup, depth int, rec *execStatsRec) {
	pad := strings.Repeat("  ", depth)
	for _, st := range g.steps {
		switch s := st.(type) {
		case *bgpStep:
			fmt.Fprintf(b, "%sBGP (%d patterns, join order):\n", pad, len(s.patterns))
			for n, pp := range s.patterns {
				fmt.Fprintf(b, "%s  %d. %s %s %s%s\n", pad, n+1,
					explainNode(pp.tp.S), explainPath(pp.tp.P), explainNode(pp.tp.O),
					p.patternLabel(pp, rec))
				for _, c := range pp.pushed {
					p.renderConstraint(b, c, depth+2, rec)
				}
			}
		case *filterStep:
			p.renderConstraint(b, s.c, depth, rec)
		case *optionalStep:
			fmt.Fprintf(b, "%sOPTIONAL (left join)%s:\n", pad, stepLabel(s.si, rec))
			p.renderGroup(b, s.group, depth+1, rec)
		case *unionStep:
			fmt.Fprintf(b, "%sUNION%s left:\n", pad, stepLabel(s.si, rec))
			p.renderGroup(b, s.left, depth+1, rec)
			fmt.Fprintf(b, "%sUNION right:\n", pad)
			p.renderGroup(b, s.right, depth+1, rec)
		case *groupStep:
			fmt.Fprintf(b, "%sGROUP%s:\n", pad, stepLabel(s.si, rec))
			p.renderGroup(b, s.group, depth+1, rec)
		}
	}
}

func (p *Plan) renderConstraint(b *strings.Builder, c *plannedConstraint, depth int, rec *execStatsRec) {
	pad := strings.Repeat("  ", depth)
	where := "applied at group end"
	if c.pushed {
		where = "pushed down"
	}
	if c.exists != nil {
		neg := ""
		if c.exists.Negated {
			neg = "NOT "
		}
		fmt.Fprintf(b, "%sFILTER %sEXISTS (%s, per-solution subquery)%s:\n", pad, neg, where, constraintLabel(c.si, rec))
		p.renderGroup(b, c.group, depth+1, rec)
		return
	}
	note := ""
	if c.fastVar != "" {
		note = ", ID fast path"
	}
	fmt.Fprintf(b, "%sFILTER %s (%s%s)%s\n", pad, exprString(c.filter.Expr), where, note, constraintLabel(c.si, rec))
}

// patternLabel annotates a triple pattern with its estimate and, in
// analyze mode, the per-loop actual row count with the misestimation
// ratio — the estimate and the actual compare per application of the
// pattern, which is exactly what the planner's estimate models.
func (p *Plan) patternLabel(pp *patternPlan, rec *execStatsRec) string {
	if rec == nil {
		return p.estLabel(pp.est)
	}
	op := &rec.ops[pp.si]
	loops, rows := op.loops.Load(), op.rows.Load()
	est := "-"
	if p.src != nil {
		est = fmtCount(pp.est)
	}
	if loops == 0 {
		return fmt.Sprintf("  [estimated=%s actual=(never executed)]", est)
	}
	actual := float64(rows) / float64(loops)
	label := fmt.Sprintf("  [estimated=%s actual=%s", est, fmtCount(actual))
	if p.src != nil {
		label += fmt.Sprintf(" (x%.1f)", misestRatio(pp.est, actual))
	}
	return label + fmt.Sprintf(" loops=%d time=%s]", loops, fmtDur(time.Duration(op.durNs.Load())))
}

// constraintLabel annotates a FILTER with tested/passed counts in
// analyze mode.
func constraintLabel(si int, rec *execStatsRec) string {
	if rec == nil {
		return ""
	}
	op := &rec.ops[si]
	return fmt.Sprintf(" [in=%d actual=%d time=%s]",
		op.loops.Load(), op.rows.Load(), fmtDur(time.Duration(op.durNs.Load())))
}

// stepLabel annotates a structural step (OPTIONAL/UNION/GROUP) with its
// input and output solution counts in analyze mode.
func stepLabel(si int, rec *execStatsRec) string {
	if rec == nil {
		return ""
	}
	op := &rec.ops[si]
	return fmt.Sprintf(" [in=%d actual=%d]", op.loops.Load(), op.rows.Load())
}

func (p *Plan) estLabel(est float64) string {
	if p.src == nil {
		return ""
	}
	if est == math.Trunc(est) && est < 1e15 {
		return fmt.Sprintf("  [est %d]", int64(est))
	}
	return fmt.Sprintf("  [est %.2g]", est)
}

// streamable reports whether the query can stop as soon as enough rows
// are produced: a plain SELECT with explicit projection and no ordering
// or aggregation.
func (q *Query) streamable() bool {
	if q.Kind != SelectQuery || len(q.Select) == 0 || len(q.GroupBy) > 0 || len(q.OrderBy) > 0 || q.Limit < 0 {
		return false
	}
	for _, it := range q.Select {
		if it.Agg != nil {
			return false
		}
	}
	return true
}
