// Package history implements the full historization mechanism of
// Section III.A: "each meta-data graph is historized completely into a
// dedicated set of historization tables. ... The number of versions is
// following the release cycles of the major Credit Suisse applications,
// i.e. up to eight versions in one year."
//
// A Historian snapshots the current model into a per-version historization
// model, tracks release metadata, computes diffs between versions, and
// answers as-of queries by exposing any version as a read view.
package history

import (
	"fmt"
	"sort"
	"time"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// Version describes one historized release of the meta-data graph.
type Version struct {
	// Number is the 1-based release number.
	Number int
	// Tag is the release label, e.g. "2009-R3".
	Tag string
	// At is the release timestamp.
	At time.Time
	// Triples is the size of the historized graph.
	Triples int
	// Model is the historization model holding the snapshot.
	Model string
	// Pruned records that the version's historization model was dropped
	// by Prune: the metadata survives for stable numbering, but the
	// triples are gone and as-of views/diffs must refuse it.
	Pruned bool
}

// Historian manages the versions of one base model.
type Historian struct {
	st       *store.Store
	base     string
	versions []Version
}

// NewHistorian returns a historian for the named base model of st.
func NewHistorian(st *store.Store, baseModel string) *Historian {
	return &Historian{st: st, base: baseModel}
}

// Base returns the base model name.
func (h *Historian) Base() string { return h.base }

// histModel names the historization model for version n.
func (h *Historian) histModel(n int) string {
	return fmt.Sprintf("%s$HIST%04d", h.base, n)
}

// Snapshot historizes the current contents of the base model as a new
// version with the given tag and timestamp. Timestamps must be
// monotonic: AsOf binary-searches over them, so a snapshot dated before
// the latest version would silently corrupt every as-of answer — it is
// rejected instead. Equal timestamps are allowed (the newer version
// wins in AsOf).
func (h *Historian) Snapshot(tag string, at time.Time) (Version, error) {
	if last := len(h.versions); last > 0 && at.Before(h.versions[last-1].At) {
		return Version{}, fmt.Errorf("history: snapshot %q at %s predates version %d (%s); timestamps must not go backwards",
			tag, at.Format(time.RFC3339), h.versions[last-1].Number, h.versions[last-1].At.Format(time.RFC3339))
	}
	n := len(h.versions) + 1
	model := h.histModel(n)
	if err := h.st.CloneModel(h.base, model); err != nil {
		return Version{}, fmt.Errorf("history: snapshot: %w", err)
	}
	v := Version{
		Number:  n,
		Tag:     tag,
		At:      at,
		Triples: h.st.Len(model),
		Model:   model,
	}
	h.versions = append(h.versions, v)
	return v, nil
}

// Restore replaces the historian's version records, e.g. after loading a
// store dump whose historization models are already present. Versions
// must be ordered oldest first with contiguous numbers starting at 1 and
// non-decreasing timestamps (the invariant AsOf depends on).
func (h *Historian) Restore(versions []Version) error {
	for i, v := range versions {
		if v.Number != i+1 {
			return fmt.Errorf("history: restore: version %d out of order (number %d)", i+1, v.Number)
		}
		if i > 0 && v.At.Before(versions[i-1].At) {
			return fmt.Errorf("history: restore: version %d timestamp %s predates version %d",
				v.Number, v.At.Format(time.RFC3339), versions[i-1].Number)
		}
		if !v.Pruned && !h.st.HasModel(v.Model) {
			return fmt.Errorf("history: restore: historization model %q missing", v.Model)
		}
	}
	h.versions = append([]Version(nil), versions...)
	return nil
}

// Versions returns all versions, oldest first.
func (h *Historian) Versions() []Version {
	out := make([]Version, len(h.versions))
	copy(out, h.versions)
	return out
}

// Version returns the metadata for release n.
func (h *Historian) Version(n int) (Version, error) {
	if n < 1 || n > len(h.versions) {
		return Version{}, fmt.Errorf("history: no version %d (have %d)", n, len(h.versions))
	}
	return h.versions[n-1], nil
}

// AsOf returns the newest version at or before t.
func (h *Historian) AsOf(t time.Time) (Version, error) {
	idx := sort.Search(len(h.versions), func(i int) bool {
		return h.versions[i].At.After(t)
	})
	if idx == 0 {
		return Version{}, fmt.Errorf("history: no version at or before %s", t.Format(time.RFC3339))
	}
	return h.versions[idx-1], nil
}

// ViewOf returns a read view over the historized graph of version n.
// A pruned version has no triples left to view, so it is an error — not
// an empty view.
func (h *Historian) ViewOf(n int) (*store.View, error) {
	v, err := h.Version(n)
	if err != nil {
		return nil, err
	}
	if v.Pruned {
		return nil, fmt.Errorf("history: version %d (%s) pruned; its historized graph is gone", v.Number, v.Tag)
	}
	return h.st.ViewOf(v.Model), nil
}

// Diff describes the triple-level changes between two versions.
type Diff struct {
	From, To int
	Added    []rdf.Triple
	Removed  []rdf.Triple
}

// DiffVersions computes the triples added and removed between versions a
// and b (a < b is conventional but not required). Diffing against a
// pruned version is an error: its model is empty, so the "diff" would
// claim every triple of the other side was added or removed.
func (h *Historian) DiffVersions(a, b int) (*Diff, error) {
	va, err := h.Version(a)
	if err != nil {
		return nil, err
	}
	vb, err := h.Version(b)
	if err != nil {
		return nil, err
	}
	if va.Pruned {
		return nil, fmt.Errorf("history: version %d (%s) pruned; cannot diff", va.Number, va.Tag)
	}
	if vb.Pruned {
		return nil, fmt.Errorf("history: version %d (%s) pruned; cannot diff", vb.Number, vb.Tag)
	}
	d := &Diff{From: a, To: b}
	h.st.ForEach(vb.Model, rdf.Term{}, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
		if !h.st.Contains(va.Model, t) {
			d.Added = append(d.Added, t)
		}
		return true
	})
	h.st.ForEach(va.Model, rdf.Term{}, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
		if !h.st.Contains(vb.Model, t) {
			d.Removed = append(d.Removed, t)
		}
		return true
	})
	rdf.SortTriples(d.Added)
	rdf.SortTriples(d.Removed)
	return d, nil
}

// GrowthReport summarizes how the graph grows across versions — the
// paper estimates "about 20 to 30% every year" on top of the release
// cadence.
type GrowthReport struct {
	Versions []Version
	// Growth[i] is the relative size change from version i to i+1.
	Growth []float64
}

// Growth computes the per-release growth factors.
func (h *Historian) Growth() GrowthReport {
	r := GrowthReport{Versions: h.Versions()}
	for i := 1; i < len(h.versions); i++ {
		prev := float64(h.versions[i-1].Triples)
		cur := float64(h.versions[i].Triples)
		if prev > 0 {
			r.Growth = append(r.Growth, cur/prev-1)
		} else {
			r.Growth = append(r.Growth, 0)
		}
	}
	return r
}

// Prune removes the historization models of all versions older than
// keep (the most recent `keep` versions are retained); version records
// stay so numbering is stable, but their models are dropped and the
// records are marked Pruned so ViewOf/DiffVersions refuse them instead
// of silently answering from an empty model.
func (h *Historian) Prune(keep int) int {
	if keep < 0 {
		keep = 0
	}
	dropped := 0
	for i := 0; i < len(h.versions)-keep; i++ {
		if h.st.DropModel(h.versions[i].Model) {
			dropped++
		}
		h.versions[i].Pruned = true
	}
	return dropped
}
