package history

import (
	"testing"
	"time"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

func iri(s string) rdf.Term { return rdf.IRI("http://t/" + s) }

func day(n int) time.Time {
	return time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestSnapshotAndVersions(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("b")))
	h := NewHistorian(st, "base")

	v1, err := h.Snapshot("2009-R1", day(0))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Number != 1 || v1.Triples != 1 {
		t.Errorf("v1 = %+v", v1)
	}
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("c")))
	v2, err := h.Snapshot("2009-R2", day(45))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Number != 2 || v2.Triples != 2 {
		t.Errorf("v2 = %+v", v2)
	}
	if len(h.Versions()) != 2 {
		t.Errorf("versions = %v", h.Versions())
	}
	// Snapshots are isolated from later base mutations.
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("d")))
	if st.Len(v1.Model) != 1 || st.Len(v2.Model) != 2 {
		t.Error("snapshot contents drifted")
	}
}

func TestVersionLookupErrors(t *testing.T) {
	h := NewHistorian(store.New(), "missing")
	if _, err := h.Snapshot("r1", day(0)); err == nil {
		t.Error("snapshot of missing base should fail")
	}
	if _, err := h.Version(1); err == nil {
		t.Error("missing version lookup should fail")
	}
	if _, err := h.AsOf(day(10)); err == nil {
		t.Error("AsOf with no versions should fail")
	}
	if _, err := h.ViewOf(3); err == nil {
		t.Error("ViewOf missing version should fail")
	}
}

func TestAsOf(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("b")))
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("c")))
	h.Snapshot("r2", day(60))

	v, err := h.AsOf(day(30))
	if err != nil {
		t.Fatal(err)
	}
	if v.Number != 1 {
		t.Errorf("AsOf(day30) = v%d, want v1", v.Number)
	}
	v, err = h.AsOf(day(60))
	if err != nil {
		t.Fatal(err)
	}
	if v.Number != 2 {
		t.Errorf("AsOf(day60) = v%d, want v2 (inclusive)", v.Number)
	}
	if _, err := h.AsOf(day(-1)); err == nil {
		t.Error("AsOf before first release should fail")
	}
}

func TestAsOfQueryOnOldVersion(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("x"), rdf.Type, iri("Old")))
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))
	st.Remove("base", rdf.T(iri("x"), rdf.Type, iri("Old")))
	st.Add("base", rdf.T(iri("x"), rdf.Type, iri("New")))
	h.Snapshot("r2", day(30))

	view1, err := h.ViewOf(1)
	if err != nil {
		t.Fatal(err)
	}
	d := st.Dict()
	typeID, _ := d.Lookup(rdf.Type)
	oldID, _ := d.Lookup(iri("Old"))
	if got := view1.Subjects(typeID, oldID); len(got) != 1 {
		t.Errorf("old version lost the Old typing: %v", got)
	}
}

func TestDiff(t *testing.T) {
	st := store.New()
	keep := rdf.T(iri("k"), iri("p"), iri("v"))
	gone := rdf.T(iri("g"), iri("p"), iri("v"))
	st.AddAll("base", []rdf.Triple{keep, gone})
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))

	st.Remove("base", gone)
	added := rdf.T(iri("n"), iri("p"), iri("v"))
	st.Add("base", added)
	h.Snapshot("r2", day(30))

	d, err := h.DiffVersions(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0] != added {
		t.Errorf("Added = %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != gone {
		t.Errorf("Removed = %v", d.Removed)
	}
	// Reverse diff swaps the sets.
	rd, err := h.DiffVersions(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Added) != 1 || rd.Added[0] != gone {
		t.Errorf("reverse Added = %v", rd.Added)
	}
	if _, err := h.DiffVersions(1, 9); err == nil {
		t.Error("diff against missing version should fail")
	}
}

func TestGrowth(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v0")))
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v1")))
	h.Snapshot("r2", day(45))

	g := h.Growth()
	if len(g.Growth) != 1 {
		t.Fatalf("growth = %v", g.Growth)
	}
	if g.Growth[0] < 0.99 || g.Growth[0] > 1.01 {
		t.Errorf("growth[0] = %f, want 1.0 (doubled)", g.Growth[0])
	}
}

func TestReleaseCadence(t *testing.T) {
	// Up to eight versions in one year (Section III.A).
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v")))
	h := NewHistorian(st, "base")
	for i := 0; i < 8; i++ {
		if _, err := h.Snapshot("2009-R"+string(rune('1'+i)), day(i*45)); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.Versions()) != 8 {
		t.Errorf("versions = %d", len(h.Versions()))
	}
}

func TestPrune(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v")))
	h := NewHistorian(st, "base")
	for i := 0; i < 4; i++ {
		h.Snapshot("r", day(i))
	}
	if n := h.Prune(2); n != 2 {
		t.Errorf("Prune dropped %d, want 2", n)
	}
	if st.HasModel(h.histModel(1)) || st.HasModel(h.histModel(2)) {
		t.Error("old historization models still present")
	}
	if !st.HasModel(h.histModel(3)) || !st.HasModel(h.histModel(4)) {
		t.Error("recent historization models dropped")
	}
	// Version records survive pruning.
	if len(h.Versions()) != 4 {
		t.Error("version records lost")
	}
	if n := h.Prune(10); n != 0 {
		t.Errorf("second Prune dropped %d, want 0", n)
	}
}

// TestSnapshotRejectsBackwardsTimestamp is the regression test for the
// non-monotonic-timestamp bug: AsOf binary-searches versions[i].At, so a
// snapshot dated before its predecessor used to silently corrupt as-of
// answers. It must be rejected instead; equal timestamps stay legal.
func TestSnapshotRejectsBackwardsTimestamp(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("b")))
	h := NewHistorian(st, "base")
	if _, err := h.Snapshot("r1", day(10)); err != nil {
		t.Fatal(err)
	}
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("c")))
	if _, err := h.Snapshot("r0", day(5)); err == nil {
		t.Fatal("snapshot with timestamp before the last version must be rejected")
	}
	// The rejected snapshot must not have left a version record or a
	// half-made historization model behind.
	if len(h.Versions()) != 1 {
		t.Fatalf("rejected snapshot left a version record: %v", h.Versions())
	}
	if st.HasModel(h.histModel(2)) {
		t.Fatal("rejected snapshot left its historization model behind")
	}
	// Equal timestamps are fine, and AsOf prefers the newer version.
	if _, err := h.Snapshot("r2", day(10)); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
	v, err := h.AsOf(day(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.Number != 2 {
		t.Errorf("AsOf(equal ts) = v%d, want the newer v2", v.Number)
	}
	// AsOf keeps answering correctly afterwards.
	if v, _ := h.AsOf(day(300)); v.Number != 2 {
		t.Errorf("AsOf(later) = v%d, want v2", v.Number)
	}
}

// TestRestoreRejectsNonMonotonicTimestamps: Restore re-establishes the
// invariant Snapshot enforces, so out-of-order records must fail too.
func TestRestoreRejectsNonMonotonicTimestamps(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("b")))
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))
	h.Snapshot("r2", day(30))
	vs := h.Versions()
	vs[1].At = day(-5)
	if err := h.Restore(vs); err == nil {
		t.Fatal("Restore must reject non-monotonic timestamps")
	}
}

// TestPruneBlocksViewAndDiff is the regression test for the
// silent-wrong-results-after-prune bug: ViewOf on a pruned version used
// to return an empty view, and DiffVersions used to report every triple
// of the live side as added/removed. Both must now error.
func TestPruneBlocksViewAndDiff(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v1")))
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v2")))
	h.Snapshot("r2", day(30))
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v3")))
	h.Snapshot("r3", day(60))

	if n := h.Prune(2); n != 1 {
		t.Fatalf("Prune dropped %d, want 1", n)
	}
	v1, err := h.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Pruned {
		t.Fatal("version 1 not marked pruned")
	}

	if _, err := h.ViewOf(1); err == nil {
		t.Fatal("ViewOf(pruned) must error, not return an empty view")
	}
	if _, err := h.DiffVersions(1, 3); err == nil {
		t.Fatal("DiffVersions(pruned, live) must error, not claim everything added")
	}
	if _, err := h.DiffVersions(3, 1); err == nil {
		t.Fatal("DiffVersions(live, pruned) must error, not claim everything removed")
	}

	// Un-pruned versions keep working.
	if _, err := h.ViewOf(2); err != nil {
		t.Fatalf("ViewOf(live) failed: %v", err)
	}
	d, err := h.DiffVersions(2, 3)
	if err != nil {
		t.Fatalf("DiffVersions(live, live) failed: %v", err)
	}
	if len(d.Added) != 1 || len(d.Removed) != 0 {
		t.Errorf("diff = %+v, want exactly one addition", d)
	}
}
