package history

import (
	"testing"
	"time"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

func iri(s string) rdf.Term { return rdf.IRI("http://t/" + s) }

func day(n int) time.Time {
	return time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestSnapshotAndVersions(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("b")))
	h := NewHistorian(st, "base")

	v1, err := h.Snapshot("2009-R1", day(0))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Number != 1 || v1.Triples != 1 {
		t.Errorf("v1 = %+v", v1)
	}
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("c")))
	v2, err := h.Snapshot("2009-R2", day(45))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Number != 2 || v2.Triples != 2 {
		t.Errorf("v2 = %+v", v2)
	}
	if len(h.Versions()) != 2 {
		t.Errorf("versions = %v", h.Versions())
	}
	// Snapshots are isolated from later base mutations.
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("d")))
	if st.Len(v1.Model) != 1 || st.Len(v2.Model) != 2 {
		t.Error("snapshot contents drifted")
	}
}

func TestVersionLookupErrors(t *testing.T) {
	h := NewHistorian(store.New(), "missing")
	if _, err := h.Snapshot("r1", day(0)); err == nil {
		t.Error("snapshot of missing base should fail")
	}
	if _, err := h.Version(1); err == nil {
		t.Error("missing version lookup should fail")
	}
	if _, err := h.AsOf(day(10)); err == nil {
		t.Error("AsOf with no versions should fail")
	}
	if _, err := h.ViewOf(3); err == nil {
		t.Error("ViewOf missing version should fail")
	}
}

func TestAsOf(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("b")))
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("c")))
	h.Snapshot("r2", day(60))

	v, err := h.AsOf(day(30))
	if err != nil {
		t.Fatal(err)
	}
	if v.Number != 1 {
		t.Errorf("AsOf(day30) = v%d, want v1", v.Number)
	}
	v, err = h.AsOf(day(60))
	if err != nil {
		t.Fatal(err)
	}
	if v.Number != 2 {
		t.Errorf("AsOf(day60) = v%d, want v2 (inclusive)", v.Number)
	}
	if _, err := h.AsOf(day(-1)); err == nil {
		t.Error("AsOf before first release should fail")
	}
}

func TestAsOfQueryOnOldVersion(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("x"), rdf.Type, iri("Old")))
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))
	st.Remove("base", rdf.T(iri("x"), rdf.Type, iri("Old")))
	st.Add("base", rdf.T(iri("x"), rdf.Type, iri("New")))
	h.Snapshot("r2", day(30))

	view1, err := h.ViewOf(1)
	if err != nil {
		t.Fatal(err)
	}
	d := st.Dict()
	typeID, _ := d.Lookup(rdf.Type)
	oldID, _ := d.Lookup(iri("Old"))
	if got := view1.Subjects(typeID, oldID); len(got) != 1 {
		t.Errorf("old version lost the Old typing: %v", got)
	}
}

func TestDiff(t *testing.T) {
	st := store.New()
	keep := rdf.T(iri("k"), iri("p"), iri("v"))
	gone := rdf.T(iri("g"), iri("p"), iri("v"))
	st.AddAll("base", []rdf.Triple{keep, gone})
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))

	st.Remove("base", gone)
	added := rdf.T(iri("n"), iri("p"), iri("v"))
	st.Add("base", added)
	h.Snapshot("r2", day(30))

	d, err := h.DiffVersions(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0] != added {
		t.Errorf("Added = %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != gone {
		t.Errorf("Removed = %v", d.Removed)
	}
	// Reverse diff swaps the sets.
	rd, err := h.DiffVersions(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Added) != 1 || rd.Added[0] != gone {
		t.Errorf("reverse Added = %v", rd.Added)
	}
	if _, err := h.DiffVersions(1, 9); err == nil {
		t.Error("diff against missing version should fail")
	}
}

func TestGrowth(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v0")))
	h := NewHistorian(st, "base")
	h.Snapshot("r1", day(0))
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v1")))
	h.Snapshot("r2", day(45))

	g := h.Growth()
	if len(g.Growth) != 1 {
		t.Fatalf("growth = %v", g.Growth)
	}
	if g.Growth[0] < 0.99 || g.Growth[0] > 1.01 {
		t.Errorf("growth[0] = %f, want 1.0 (doubled)", g.Growth[0])
	}
}

func TestReleaseCadence(t *testing.T) {
	// Up to eight versions in one year (Section III.A).
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v")))
	h := NewHistorian(st, "base")
	for i := 0; i < 8; i++ {
		if _, err := h.Snapshot("2009-R"+string(rune('1'+i)), day(i*45)); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.Versions()) != 8 {
		t.Errorf("versions = %d", len(h.Versions()))
	}
}

func TestPrune(t *testing.T) {
	st := store.New()
	st.Add("base", rdf.T(iri("a"), iri("p"), iri("v")))
	h := NewHistorian(st, "base")
	for i := 0; i < 4; i++ {
		h.Snapshot("r", day(i))
	}
	if n := h.Prune(2); n != 2 {
		t.Errorf("Prune dropped %d, want 2", n)
	}
	if st.HasModel(h.histModel(1)) || st.HasModel(h.histModel(2)) {
		t.Error("old historization models still present")
	}
	if !st.HasModel(h.histModel(3)) || !st.HasModel(h.histModel(4)) {
		t.Error("recent historization models dropped")
	}
	// Version records survive pruning.
	if len(h.Versions()) != 4 {
		t.Error("version records lost")
	}
	if n := h.Prune(10); n != 0 {
		t.Errorf("second Prune dropped %d, want 0", n)
	}
}
