// Package semmatch emulates the Oracle SEM_MATCH table function through
// which the paper issues its queries (Listings 1 and 2). A call names a
// SPARQL graph pattern, the RDF models to query (SEM_MODELS), the
// entailment rulebases to include (SEM_RULEBASES), and namespace aliases
// (SEM_ALIASES).
//
// Execution semantics follow Section III.B: without a rulebase only the
// base model facts are visible; naming OWLPRIME unions each model with
// its materialized index model (materializing it on first use).
package semmatch

import (
	"context"
	"fmt"
	"strings"

	"mdw/internal/obs"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/sparql"
	"mdw/internal/store"
)

// Request is a structured SEM_MATCH invocation.
type Request struct {
	// Pattern is the graph pattern, with or without enclosing braces.
	Pattern string
	// Models lists the RDF models to query (SEM_MODELS).
	Models []string
	// Rulebases lists entailment rulebases (SEM_RULEBASES); only
	// "OWLPRIME" is supported.
	Rulebases []string
	// Aliases maps prefixes to namespaces (SEM_ALIASES). The well-known
	// prefixes of package rdf are always available.
	Aliases map[string]string
	// Filter is an optional boolean condition appended as a FILTER,
	// playing the role of the enclosing SQL WHERE clause in the listings.
	Filter string
	// Select lists the projected variables; empty projects everything.
	Select []string
	// GroupBy lists grouping variables (the listings' GROUP BY).
	GroupBy []string
	// Distinct requests duplicate elimination.
	Distinct bool
}

// Exec runs the request against st. Index models for requested rulebases
// are materialized on demand.
func (r Request) Exec(st *store.Store) (*sparql.Result, error) {
	return r.ExecCtx(context.Background(), st)
}

// ExecCtx is Exec carrying a request context: the call runs under a
// "semmatch" span — nested in the request's trace when ctx carries one,
// the root of a new trace otherwise — with the SPARQL parse/plan/exec
// spans below it.
func (r Request) ExecCtx(ctx context.Context, st *store.Store) (*sparql.Result, error) {
	sp, ctx := obs.StartChildCtx(ctx, "semmatch")
	defer sp.Finish()
	src, err := r.source(st)
	if err != nil {
		return nil, err
	}
	q, err := sparql.ParseCtx(ctx, r.QueryText())
	if err != nil {
		return nil, err
	}
	return q.ExecCtx(ctx, src, st.Dict())
}

// ExecAnalyze is ExecAnalyzeCtx with a background context.
func (r Request) ExecAnalyze(st *store.Store) (*sparql.Result, *sparql.ExecStats, error) {
	return r.ExecAnalyzeCtx(context.Background(), st)
}

// ExecAnalyzeCtx is ExecCtx with operator-level instrumentation: the
// returned ExecStats carries actual rows, loops, and wall time for every
// operator of the plan the call executed (EXPLAIN ANALYZE).
func (r Request) ExecAnalyzeCtx(ctx context.Context, st *store.Store) (*sparql.Result, *sparql.ExecStats, error) {
	sp, ctx := obs.StartChildCtx(ctx, "semmatch")
	defer sp.Finish()
	src, err := r.source(st)
	if err != nil {
		return nil, nil, err
	}
	q, err := sparql.ParseCtx(ctx, r.QueryText())
	if err != nil {
		return nil, nil, err
	}
	return q.ExecAnalyzeCtx(ctx, src, st.Dict())
}

// Explain renders the evaluation plan the request would execute —
// the statistics-driven join order with estimated cardinalities against
// the request's model view. It is the same Plan structure Exec runs.
// Index models are materialized on demand exactly as Exec would, so the
// explained plan sees the statistics execution would see.
func (r Request) Explain(st *store.Store) (string, error) {
	src, err := r.source(st)
	if err != nil {
		return "", err
	}
	q, err := sparql.Parse(r.QueryText())
	if err != nil {
		return "", err
	}
	return q.ExplainOn(src, st.Dict()), nil
}

// source resolves the request's SEM_MODELS/SEM_RULEBASES combination to
// the union view execution runs against, materializing index models on
// demand.
func (r Request) source(st *store.Store) (store.Source, error) {
	if len(r.Models) == 0 {
		return nil, fmt.Errorf("semmatch: no models given")
	}
	for _, rb := range r.Rulebases {
		if rb != reason.RulebaseOWLPrime {
			return nil, fmt.Errorf("semmatch: unsupported rulebase %q", rb)
		}
	}
	names := make([]string, 0, len(r.Models)*2)
	for _, m := range r.Models {
		if !st.HasModel(m) {
			return nil, fmt.Errorf("semmatch: no such model %q", m)
		}
		names = append(names, m)
		for _, rb := range r.Rulebases {
			idx := reason.IndexModelName(m, rb)
			if !st.HasModel(idx) {
				if _, _, err := reason.NewEngine(st).Materialize(m); err != nil {
					return nil, fmt.Errorf("semmatch: materializing %s: %w", idx, err)
				}
			}
			names = append(names, idx)
		}
	}
	return st.ViewOf(names...), nil
}

// QueryText assembles the SPARQL text the request executes. It is
// exported so static checkers (mdwlint's sparqlcheck) can validate
// constant SEM_MATCH calls with exactly the text Exec would parse.
func (r Request) QueryText() string {
	var b strings.Builder
	for p, ns := range r.Aliases {
		fmt.Fprintf(&b, "PREFIX %s: <%s>\n", p, ns)
	}
	b.WriteString("SELECT ")
	if r.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(r.Select) == 0 {
		b.WriteString("*")
	} else {
		for i, v := range r.Select {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteByte('?')
			b.WriteString(strings.TrimPrefix(v, "?"))
		}
	}
	pattern := strings.TrimSpace(r.Pattern)
	pattern = strings.TrimPrefix(pattern, "{")
	pattern = strings.TrimSuffix(pattern, "}")
	b.WriteString(" WHERE {\n")
	b.WriteString(pattern)
	if r.Filter != "" {
		b.WriteString("\nFILTER (")
		b.WriteString(r.Filter)
		b.WriteString(")")
	}
	b.WriteString("\n}")
	if len(r.GroupBy) > 0 {
		b.WriteString(" GROUP BY")
		for _, v := range r.GroupBy {
			b.WriteString(" ?")
			b.WriteString(strings.TrimPrefix(v, "?"))
		}
	}
	return b.String()
}

// Exec parses a textual SEM_MATCH call and runs it. The accepted syntax
// is the argument list of the listings:
//
//	SEM_MATCH(
//	  {?s dt:isMappedTo ?t . ...},
//	  SEM_MODELS('DWH_CURR'),
//	  SEM_RULEBASES('OWLPRIME'),
//	  SEM_ALIASES(SEM_ALIAS('dm', 'http://...'), SEM_ALIAS('dt', 'http://...')),
//	  null)
//
// with an optional leading "SEM_MATCH(" and trailing ")".
func Exec(st *store.Store, call string) (*sparql.Result, error) {
	return ExecCtx(context.Background(), st, call)
}

// ExecCtx is Exec carrying a request context (see Request.ExecCtx).
func ExecCtx(ctx context.Context, st *store.Store, call string) (*sparql.Result, error) {
	req, err := ParseCall(call)
	if err != nil {
		return nil, err
	}
	return req.ExecCtx(ctx, st)
}

// ExecAnalyzeCtx parses a textual SEM_MATCH call and runs it analyzed
// (see Request.ExecAnalyzeCtx).
func ExecAnalyzeCtx(ctx context.Context, st *store.Store, call string) (*sparql.Result, *sparql.ExecStats, error) {
	req, err := ParseCall(call)
	if err != nil {
		return nil, nil, err
	}
	return req.ExecAnalyzeCtx(ctx, st)
}

// ParseCall parses the textual SEM_MATCH argument list into a Request.
func ParseCall(call string) (*Request, error) {
	s := strings.TrimSpace(call)
	if i := strings.Index(s, "SEM_MATCH"); i >= 0 {
		s = strings.TrimSpace(s[i+len("SEM_MATCH"):])
		if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("semmatch: malformed SEM_MATCH call")
		}
		s = s[1 : len(s)-1]
	}
	// The graph pattern is the first balanced {...} block.
	open := strings.IndexByte(s, '{')
	if open < 0 {
		return nil, fmt.Errorf("semmatch: missing graph pattern")
	}
	depth := 0
	closeIdx := -1
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				closeIdx = i
			}
		}
		if closeIdx >= 0 {
			break
		}
	}
	if closeIdx < 0 {
		return nil, fmt.Errorf("semmatch: unbalanced graph pattern braces")
	}
	req := &Request{Pattern: s[open : closeIdx+1], Aliases: map[string]string{}}
	rest := s[closeIdx+1:]

	models, err := argList(rest, "SEM_MODELS")
	if err != nil {
		return nil, err
	}
	req.Models = models
	rulebases, err := argList(rest, "SEM_RULEBASES")
	if err != nil {
		return nil, err
	}
	req.Rulebases = rulebases
	aliases, err := aliasList(rest)
	if err != nil {
		return nil, err
	}
	for p, ns := range aliases {
		req.Aliases[p] = ns
	}
	if len(req.Models) == 0 {
		return nil, fmt.Errorf("semmatch: SEM_MODELS clause missing or empty")
	}
	return req, nil
}

// argList extracts the quoted strings of fn('a','b',...) from s; a
// missing clause yields an empty list.
func argList(s, fn string) ([]string, error) {
	i := strings.Index(s, fn+"(")
	if i < 0 {
		return nil, nil
	}
	body, err := balancedParens(s[i+len(fn):])
	if err != nil {
		return nil, fmt.Errorf("semmatch: %s: %w", fn, err)
	}
	return quotedStrings(body), nil
}

// aliasList extracts SEM_ALIAS('prefix','ns') pairs inside SEM_ALIASES.
func aliasList(s string) (map[string]string, error) {
	i := strings.Index(s, "SEM_ALIASES(")
	if i < 0 {
		return nil, nil
	}
	body, err := balancedParens(s[i+len("SEM_ALIASES"):])
	if err != nil {
		return nil, fmt.Errorf("semmatch: SEM_ALIASES: %w", err)
	}
	out := map[string]string{}
	rest := body
	for {
		j := strings.Index(rest, "SEM_ALIAS(")
		if j < 0 {
			break
		}
		inner, err := balancedParens(rest[j+len("SEM_ALIAS"):])
		if err != nil {
			return nil, fmt.Errorf("semmatch: SEM_ALIAS: %w", err)
		}
		parts := quotedStrings(inner)
		if len(parts) != 2 {
			return nil, fmt.Errorf("semmatch: SEM_ALIAS wants 2 arguments, got %d", len(parts))
		}
		out[parts[0]] = parts[1]
		rest = rest[j+len("SEM_ALIAS")+len(inner)+2:]
	}
	return out, nil
}

// balancedParens returns the contents of the leading "(...)" of s.
func balancedParens(s string) (string, error) {
	if !strings.HasPrefix(s, "(") {
		return "", fmt.Errorf("expected '('")
	}
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return s[1:i], nil
			}
		}
	}
	return "", fmt.Errorf("unbalanced parentheses")
}

// quotedStrings returns all '...'-quoted substrings of s.
func quotedStrings(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '\'')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(s[i+1:], '\'')
		if j < 0 {
			return out
		}
		out = append(out, s[i+1:i+1+j])
		s = s[i+j+2:]
	}
}

// Vocabulary aliases matching the listings: dm and dt as declared in the
// paper's SEM_ALIASES calls.
func PaperAliases() map[string]string {
	return map[string]string{
		"dm":  rdf.DMNS,
		"dt":  rdf.DTNS,
		"owl": rdf.OWLNS,
	}
}
