package semmatch

import "testing"

// Golden plans for the paper's two listings. The rendering comes from
// the same Plan structure Exec runs, so these tests pin down the
// planner's observable decisions: Listing 1 must start from the
// hasName pattern with the regex filter pushed immediately behind it,
// and Listing 2 must start from the constant-class rdf:type pattern.

func TestListing1Plan(t *testing.T) {
	st := fixture()
	req := Request{
		Pattern: `?object rdf:type ?c .
	?c rdfs:label ?class .
	?object dm:hasName ?term`,
		Models:    []string{"DWH_CURR"},
		Rulebases: []string{"OWLPRIME"},
		Aliases:   PaperAliases(),
		Filter:    `regex(?term, "customer", "i")`,
		Select:    []string{"class", "object"},
		GroupBy:   []string{"class", "object"},
	}
	got, err := req.Explain(st)
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT ?class ?object
  BGP (3 patterns, join order):
    1. ?object dm:hasName ?term  [est 1]
      FILTER REGEX(?term, "(?i)customer") (pushed down)
    2. ?object rdf:type ?c  [est 2]
    3. ?c rdfs:label ?class  [est 1]
GROUP BY ?class ?object
`
	if got != want {
		t.Errorf("Listing 1 plan drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestListing2Plan(t *testing.T) {
	st := fixture()
	req := Request{
		Pattern: `?source_id dt:isMappedTo ?target_id .
	?target_id rdf:type dm:Application1_View_Column .
	?target_id dm:hasName ?target_name`,
		Models:    []string{"DWH_CURR"},
		Rulebases: []string{"OWLPRIME"},
		Aliases:   PaperAliases(),
		Select:    []string{"source_id", "target_id", "target_name"},
	}
	got, err := req.Explain(st)
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT ?source_id ?target_id ?target_name
  BGP (3 patterns, join order):
    1. ?target_id rdf:type dm:Application1_View_Column  [est 1]
    2. ?source_id dt:isMappedTo ?target_id  [est 1]
    3. ?target_id dm:hasName ?target_name  [est 1]
`
	if got != want {
		t.Errorf("Listing 2 plan drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExplainErrors(t *testing.T) {
	st := fixture()
	if _, err := (Request{Pattern: "?s ?p ?o"}).Explain(st); err == nil {
		t.Error("no models should error")
	}
	if _, err := (Request{Pattern: "?s ?p ?o", Models: []string{"nope"}}).Explain(st); err == nil {
		t.Error("missing model should error")
	}
}
