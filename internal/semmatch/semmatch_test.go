package semmatch

import (
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

func fixture() *store.Store {
	st := store.New()
	inst := func(s string) rdf.Term { return rdf.IRI(rdf.InstNS + s) }
	dm := func(s string) rdf.Term { return rdf.IRI(rdf.DMNS + s) }
	st.AddAll("DWH_CURR", []rdf.Triple{
		rdf.T(inst("client_information_id"), rdf.IsMappedTo, inst("partner_id")),
		rdf.T(inst("partner_id"), rdf.IsMappedTo, inst("customer_id")),
		rdf.T(inst("customer_id"), rdf.Type, dm("Application1_View_Column")),
		rdf.T(inst("customer_id"), rdf.HasName, rdf.Literal("customer_id")),
		rdf.T(dm("Application1_View_Column"), rdf.SubClassOf, dm("Attribute")),
		rdf.T(dm("Application1_View_Column"), rdf.Label, rdf.Literal("Application1 View Column")),
		rdf.T(dm("Attribute"), rdf.Label, rdf.Literal("Attribute")),
	})
	return st
}

func TestRequestWithoutRulebaseSeesOnlyFacts(t *testing.T) {
	st := fixture()
	req := Request{
		Pattern: `?x rdf:type dm:Attribute`,
		Models:  []string{"DWH_CURR"},
		Aliases: PaperAliases(),
	}
	res, err := req.Exec(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("without OWLPRIME rows = %d, want 0 (no inferred types)", len(res.Rows))
	}
}

func TestRequestWithRulebaseSeesInferred(t *testing.T) {
	st := fixture()
	req := Request{
		Pattern:   `?x rdf:type dm:Attribute`,
		Models:    []string{"DWH_CURR"},
		Rulebases: []string{"OWLPRIME"},
		Aliases:   PaperAliases(),
	}
	res, err := req.Exec(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("with OWLPRIME rows = %d, want 1", len(res.Rows))
	}
	if rdf.LocalName(res.Rows[0]["x"].Value) != "customer_id" {
		t.Errorf("x = %v", res.Rows[0]["x"])
	}
}

func TestRequestErrors(t *testing.T) {
	st := fixture()
	if _, err := (Request{Pattern: "?s ?p ?o"}).Exec(st); err == nil {
		t.Error("no models should error")
	}
	if _, err := (Request{Pattern: "?s ?p ?o", Models: []string{"nope"}}).Exec(st); err == nil {
		t.Error("missing model should error")
	}
	if _, err := (Request{Pattern: "?s ?p ?o", Models: []string{"DWH_CURR"}, Rulebases: []string{"RDFS"}}).Exec(st); err == nil {
		t.Error("unsupported rulebase should error")
	}
}

// TestListing1 runs the paper's Listing 1 SEM_MATCH call (the search for
// 'customer') nearly verbatim.
func TestListing1(t *testing.T) {
	st := fixture()
	call := `SEM_MATCH(
		{?object rdf:type ?c .
		 ?c rdfs:label ?class .
		 ?object dm:hasName ?term},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'),
		            SEM_ALIAS('owl', 'http://www.w3.org/2002/07/owl#')),
		null)`
	req, err := ParseCall(call)
	if err != nil {
		t.Fatal(err)
	}
	req.Filter = `regex(?term, "customer", "i")`
	req.Select = []string{"class", "object"}
	req.GroupBy = []string{"class", "object"}
	res, err := req.Exec(st)
	if err != nil {
		t.Fatal(err)
	}
	// customer_id is an Application1_View_Column and, via OWLPRIME, an
	// Attribute: two (class, object) groups.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	classes := map[string]bool{}
	for _, r := range res.Rows {
		classes[r["class"].Value] = true
	}
	if !classes["Application1 View Column"] || !classes["Attribute"] {
		t.Errorf("classes = %v", classes)
	}
}

// TestListing2 runs the paper's Listing 2 lineage call.
func TestListing2(t *testing.T) {
	st := fixture()
	call := `SEM_MATCH(
		{?source_id dt:isMappedTo ?target_id .
		 ?target_id rdf:type dm:Application1_View_Column .
		 ?target_id dm:hasName ?target_name},
		SEM_MODELS('DWH_CURR'),
		SEM_RULEBASES('OWLPRIME'),
		SEM_ALIASES(
			SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'),
			SEM_ALIAS('dt', 'http://www.credit-suisse.com/dwh/mdm/data_transfer#')),
		null)`
	req, err := ParseCall(call)
	if err != nil {
		t.Fatal(err)
	}
	req.Select = []string{"source_id", "target_id", "target_name"}
	res, err := req.Exec(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if rdf.LocalName(r["source_id"].Value) != "partner_id" || r["target_name"].Value != "customer_id" {
		t.Errorf("row = %v", r)
	}
}

func TestParseCallErrors(t *testing.T) {
	bad := []string{
		`SEM_MATCH no parens`,
		`SEM_MATCH(no pattern, SEM_MODELS('m'))`,
		`SEM_MATCH({?s ?p ?o, SEM_MODELS('m'))`, // unbalanced braces
		`SEM_MATCH({?s ?p ?o})`,                 // no models
		`SEM_MATCH({?s ?p ?o}, SEM_MODELS('m'), SEM_ALIASES(SEM_ALIAS('only-one')))`,
	}
	for _, c := range bad {
		if _, err := ParseCall(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestParseCallWithoutWrapper(t *testing.T) {
	req, err := ParseCall(`{?s ?p ?o}, SEM_MODELS('A','B')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Models) != 2 || req.Models[0] != "A" || req.Models[1] != "B" {
		t.Errorf("models = %v", req.Models)
	}
}

func TestDistinctProjection(t *testing.T) {
	st := fixture()
	req := Request{
		Pattern:  `?x dt:isMappedTo ?y`,
		Models:   []string{"DWH_CURR"},
		Aliases:  PaperAliases(),
		Select:   []string{"?y"},
		Distinct: true,
	}
	res, err := req.Exec(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}
