package goroleak_test

import (
	"testing"

	"mdw/internal/analysis/framework/analysistest"
	"mdw/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, ".", goroleak.Analyzer, "a", "b")
}
