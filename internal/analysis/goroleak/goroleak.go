// Package goroleak demands that every goroutine launched by library
// code is tied to a shutdown path. The warehouse runs as a long-lived
// daemon: a `go` statement with no WaitGroup, no context/quit-channel
// receive, and no channel range is a goroutine that outlives Close,
// keeps sampling/flushing/ticking against freed state, and shows up as
// a monotonically climbing mdw_runtime_goroutines gauge in production.
//
// A goroutine counts as tied when the function it runs (a literal's
// body, or the declaration of a named function/method, followed one
// static call deep) contains any of:
//
//   - a channel receive (<-ch) — covers ctx.Done(), quit channels, and
//     signal channels, wherever they appear, including select cases;
//   - a range over a channel — draining until close IS the shutdown;
//   - a niladic .Done() call — the sync.WaitGroup handshake.
//
// Anything else is reported at the `go` statement.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/framework/callgraph"
)

// Analyzer is the goroleak framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name: "goroleak",
	Doc: "goroutines must be tied to a shutdown path\n\n" +
		"Every `go` statement in non-test code must hand the goroutine a way\n" +
		"to stop: a WaitGroup Done, a receive on a context/quit channel, or\n" +
		"a range over a closable channel.",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(pass, gs.Call)
			if body == nil {
				pass.Reportf(gs.Pos(), "goroutine target is not statically resolvable; tie it to a shutdown path (WaitGroup, context, or quit channel) where it is defined")
				return true
			}
			if hasShutdownTie(pass, body, 2) {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine has no shutdown tie (no WaitGroup Done, channel receive, or channel range); it outlives Close and leaks")
			return true
		})
	}
	return nil
}

// goroutineBody resolves the body the goroutine will execute: the
// literal's own body, or the declaration of the named function/method.
func goroutineBody(pass *framework.Pass, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if node := calleeNode(pass, call); node != nil && node.Decl != nil {
		return node.Decl.Body
	}
	return nil
}

// calleeNode resolves a call to its callgraph node, when static.
func calleeNode(pass *framework.Pass, call *ast.CallExpr) *callgraph.Node {
	g := callgraph.Of(pass)
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return g.Node(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return g.Node(fn)
			}
		}
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return g.Node(fn)
		}
	}
	return nil
}

// hasShutdownTie scans a body for a termination signal, following
// statically resolvable calls up to depth levels deep (the goroutine
// body itself is depth 1; `go m.run()` where run delegates the loop to
// a helper is depth 2).
func hasShutdownTie(pass *framework.Pass, body *ast.BlockStmt, depth int) bool {
	if body == nil || depth == 0 {
		return false
	}
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				tied = true
			}
		case *ast.RangeStmt:
			if t, ok := pass.TypesInfo.Types[n.X]; ok && t.Type != nil {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					tied = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(n.Args) == 0 {
				// <-ctx.Done() is caught by the receive case; a bare
				// x.Done() statement is the WaitGroup handshake.
				tied = true
				return false
			}
			if depth > 1 {
				if node := calleeNode(pass, n); node != nil && node.Decl != nil && node.Decl.Body != nil {
					if hasShutdownTie(pass, node.Decl.Body, depth-1) {
						tied = true
					}
				}
			}
		}
		return !tied
	})
	return tied
}
