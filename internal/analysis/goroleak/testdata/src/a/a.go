// Package a exercises goroleak diagnostics: untied loops, dynamic
// goroutine targets, and untied literals.
package a

type Sampler struct{ n int }

// loop spins forever with no way to stop it.
func (s *Sampler) loop() {
	for {
		s.n++
	}
}

func (s *Sampler) Start() {
	go s.loop() // want `goroutine has no shutdown tie`
}

// Fire launches a caller-supplied function: nothing ties it down, and
// the target cannot even be inspected.
func Fire(fn func()) {
	go fn() // want `goroutine target is not statically resolvable`
}

func Inline(s *Sampler) {
	go func() { // want `goroutine has no shutdown tie`
		for {
			s.n++
		}
	}()
}
