// Package b holds goroutines goroleak must accept: quit-channel
// receives, WaitGroup handshakes, channel ranges, and a shutdown tie
// one static call below the go statement.
package b

import "sync"

type Worker struct {
	quit chan struct{}
	jobs chan int
	wg   sync.WaitGroup
}

// run drains jobs until quit closes.
func (w *Worker) run() {
	for {
		select {
		case <-w.quit:
			return
		case j := <-w.jobs:
			_ = j
		}
	}
}

func (w *Worker) Start() {
	go w.run()
}

// Spawn uses the WaitGroup handshake.
func (w *Worker) Spawn(job func()) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		job()
	}()
}

// Consume ranges over a channel: draining until close IS the shutdown.
func Consume(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// StartIndirect ties the goroutine one call deeper: outer delegates to
// run, which receives.
func (w *Worker) StartIndirect() {
	go w.outer()
}

func (w *Worker) outer() { w.run() }
