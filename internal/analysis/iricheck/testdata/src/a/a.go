// Package a exercises iricheck diagnostics: typo'd terms in closed
// namespaces, as plain constants and inside query strings.
package a

import (
	"mdw/internal/rdf"
	"mdw/internal/sparql"
)

// Typo'd prefixed name: Customer misspelled.
const badPName = "dm:Custmer" // want `unknown term dm:Custmer.*did you mean dm:Customer`

// Typo'd full IRI built from the namespace constant.
const badIRI = rdf.DMNS + "hasNam" // want `unknown term <http://www.credit-suisse.com/dwh/mdm/data_modeling#hasNam>.*did you mean dm:hasName`

// Typo'd standard-vocabulary term.
const badRDFS = "rdfs:subClasOf" // want `unknown term rdfs:subClasOf`

// typoQuery misspells dt:isMappedTo inside an otherwise valid query.
const typoQuery = `
PREFIX dt: <http://www.credit-suisse.com/dwh/mdm/data_transfer#>
SELECT ?src WHERE { ?src dt:isMapedTo+ ?tgt . }
`

func useTypoQuery() {
	_ = sparql.MustParse(typoQuery) // want `mentions unknown term <http://www.credit-suisse.com/dwh/mdm/data_transfer#isMapedTo>`
}

var keep = []string{badPName, badIRI, badRDFS}
