// Package b holds well-formed vocabulary references: iricheck must
// stay silent.
package b

import (
	"mdw/internal/rdf"
	"mdw/internal/sparql"
)

// Known terms, as prefixed names and as full IRIs.
const (
	goodPName = "dm:Customer"
	goodProp  = "dt:isMappedTo"
	goodIRI   = rdf.DMNS + "Table_Column"
	goodRDFS  = "rdfs:subClassOf"
)

// Open namespaces are not checked: instances and DBpedia resources are
// minted freely at load time.
const (
	instanceIRI = rdf.InstNS + "app1/db1/schema1/t1/c1"
	dbpediaIRI  = "http://dbpedia.org/resource/Customer_relationship"
)

// Colon-bearing strings that are not prefixed names must not trip the
// checker.
const (
	clock    = "12:30"
	errLabel = "mdw: load failed"
	urlConst = "http://example.com/x"
)

// goodQuery uses only defined vocabulary.
const goodQuery = `
PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
SELECT ?i WHERE { ?i a dm:Customer ; dm:hasName ?n . }
`

func use() *sparql.Query {
	_ = []string{goodPName, goodProp, goodIRI, goodRDFS, instanceIRI, dbpediaIRI, clock, errLabel, urlConst}
	return sparql.MustParse(goodQuery)
}
