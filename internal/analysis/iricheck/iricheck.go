// Package iricheck validates hand-typed ontology IRIs. The dm:, dt:,
// mdw:, and the standard RDF/RDFS/OWL/XSD namespaces are closed worlds
// in this repository — their vocabulary is exactly rdf.Vocabulary()
// plus the classes and properties of ontology.DWH() — so a constant
// string naming a term in one of them that the vocabulary does not
// define is a typo: at runtime it would not fail, it would just match
// nothing (the "silently returns empty results" failure mode).
//
// Checked forms:
//   - full IRIs in Go string constants ("http://...data_modeling#Custmer")
//   - prefixed names in Go string constants ("dm:Custmer")
//   - every IRI mentioned by a constant query string handed to one of
//     the query entry points (see queryutil), after parsing it with the
//     repository's SPARQL parser.
//
// Open namespaces (instance data under inst:, DBpedia resources under
// dbp:) are deliberately not checked.
package iricheck

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/queryutil"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/semmatch"
	"mdw/internal/sparql"
)

// Analyzer is the iricheck framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name: "iricheck",
	Doc: "validate constant ontology IRIs and prefixed names\n\n" +
		"Terms in the closed dm:/dt:/mdw:/rdf:/rdfs:/owl:/xsd: namespaces must\n" +
		"be part of rdf.Vocabulary() or ontology.DWH(); anything else is a typo\n" +
		"that would silently match nothing at runtime.",
	Run: run,
}

// closedNamespaces are the namespaces whose term sets are fully known.
var closedNamespaces = []string{
	rdf.RDFNS, rdf.RDFSNS, rdf.OWLNS, rdf.XSDNS,
	rdf.DMNS, rdf.DTNS, rdf.MDWNS,
}

// knownTerms is the union of the rdf vocabulary constants and the DWH
// ontology's classes and properties.
var knownTerms = func() map[string]bool {
	m := map[string]bool{}
	for _, iri := range rdf.Vocabulary() {
		m[iri] = true
	}
	dwh := ontology.DWH()
	for _, iri := range dwh.Classes() {
		m[iri] = true
	}
	for _, iri := range dwh.Properties() {
		m[iri] = true
	}
	return m
}()

// prefixedName matches candidate "prefix:Local" strings.
var prefixedName = regexp.MustCompile(`^([A-Za-z][A-Za-z0-9]*):([A-Za-z_][A-Za-z0-9_]*)$`)

func run(pass *framework.Pass) error {
	// Query strings get the precise treatment: parse, then walk IRIs.
	queryArgs := map[ast.Expr]bool{}
	queryutil.ConstQueryCalls(pass, func(site queryutil.CallSite) {
		queryArgs[site.Arg] = true
		var q *sparql.Query
		switch site.Kind {
		case queryutil.KindSPARQL:
			q, _ = sparql.Parse(site.Text)
		case queryutil.KindSemMatch:
			if req, err := semmatch.ParseCall(site.Text); err == nil {
				q, _ = sparql.Parse(req.QueryText())
			}
		}
		if q == nil {
			return // sparqlcheck owns the syntax diagnostic
		}
		sparql.WalkIRIs(q, func(iri string) {
			if msg, bad := checkIRI(iri); bad {
				pass.Reportf(site.Arg.Pos(), "query passed to %s mentions %s", site.Fn, msg)
			}
		})
	}, nil)

	for _, f := range pass.Files {
		// covered spans suppress re-reporting the constant parts of an
		// already-checked constant expression (preorder walk: parents
		// first).
		var covered []ast.Expr
		ast.Inspect(f, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if queryArgs[expr] {
				return false // handled above, including its sub-expressions
			}
			for _, c := range covered {
				if expr.Pos() >= c.Pos() && expr.End() <= c.End() {
					return true
				}
			}
			// Only expressions that spell the term out in this file are
			// checked: a bare identifier or selector referencing a
			// constant defined elsewhere is reported at its definition,
			// not at every use.
			if !containsStringLit(expr) {
				return true
			}
			v, ok := pass.ConstString(expr)
			if !ok {
				return true
			}
			covered = append(covered, expr)
			if msg, bad := checkConstString(v); bad {
				pass.Reportf(expr.Pos(), "%s", msg)
			}
			return true
		})
	}
	return nil
}

// containsStringLit reports whether expr lexically contains a string
// literal.
func containsStringLit(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			found = true
		}
		return !found
	})
	return found
}

// checkConstString validates a Go string constant: a full IRI in a
// closed namespace, or a well-known prefixed name.
func checkConstString(v string) (string, bool) {
	for _, ns := range closedNamespaces {
		if strings.HasPrefix(v, ns) && v != ns {
			return checkIRI(v)
		}
	}
	m := prefixedName.FindStringSubmatch(v)
	if m == nil {
		return "", false
	}
	ns, ok := rdf.WellKnownPrefixes[m[1]]
	if !ok || !isClosed(ns) {
		return "", false
	}
	if iri := ns + m[2]; !knownTerms[iri] {
		return "unknown term " + v + " (expands to <" + iri + ">)" + suggest(iri), true
	}
	return "", false
}

// checkIRI validates one full IRI against the closed namespaces.
func checkIRI(iri string) (string, bool) {
	for _, ns := range closedNamespaces {
		if !strings.HasPrefix(iri, ns) || iri == ns {
			continue
		}
		local := iri[len(ns):]
		if strings.ContainsAny(local, "#/") {
			return "", false // a longer URL sharing the host, not a term
		}
		if !knownTerms[iri] {
			return "unknown term <" + iri + "> in closed namespace " + ns + suggest(iri), true
		}
		return "", false
	}
	return "", false
}

func isClosed(ns string) bool {
	for _, c := range closedNamespaces {
		if ns == c {
			return true
		}
	}
	return false
}

// suggest names the closest known term in the same namespace when the
// edit distance is small enough to smell like a typo.
func suggest(iri string) string {
	ns, local := rdf.Namespace(iri), rdf.LocalName(iri)
	best, bestDist := "", 3
	var candidates []string
	for term := range knownTerms {
		if strings.HasPrefix(term, ns) {
			candidates = append(candidates, term)
		}
	}
	sort.Strings(candidates) // deterministic tie-breaking
	for _, term := range candidates {
		if d := editDistance(local, rdf.LocalName(term), bestDist); d < bestDist {
			best, bestDist = term, d
		}
	}
	if best == "" {
		return ""
	}
	return " (did you mean " + rdf.QName(best) + "?)"
}

// editDistance is Levenshtein with a cutoff: any value >= max means
// "too far".
func editDistance(a, b string, max int) int {
	if abs(len(a)-len(b)) >= max {
		return max
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin >= max {
			return max
		}
		prev, cur = cur, prev
	}
	return min(prev[len(b)], max)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
