package iricheck_test

import (
	"testing"

	"mdw/internal/analysis/framework/analysistest"
	"mdw/internal/analysis/iricheck"
)

func TestIricheck(t *testing.T) {
	analysistest.Run(t, ".", iricheck.Analyzer, "a", "b")
}
