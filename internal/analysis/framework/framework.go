// Package framework is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer holds a
// name, documentation, and a Run function; a Pass hands the Run function
// one type-checked package at a time and collects diagnostics.
//
// The x/tools module is deliberately not vendored — the warehouse builds
// offline — so this package supplies the small subset the mdwlint
// analyzers need: a source loader for the repository's own module (see
// load.go), positional diagnostics, and per-line suppression comments.
// Analyzers written against it look exactly like go/analysis analyzers
// and could be ported to the real framework by swapping the import.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//mdwlint:allow <name>" suppression comments.
	Name string
	// Doc is the help text shown by cmd/mdwlint.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer run and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path (or a synthetic path for
	// directory loads in tests).
	Path string

	diags *[]Diagnostic
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ConstString returns the constant string value of expr, if the
// type-checker folded it to one (string literals, concatenations of
// constants, references to string constants).
func (p *Pass) ConstString(expr ast.Expr) (string, bool) {
	return constString(p.TypesInfo, expr)
}

// Run applies the analyzers to every loaded package and returns all
// diagnostics sorted by position. Suppressed diagnostics (see
// suppressed) are dropped.
func Run(pkgs []*Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = filterSuppressed(diags, pkg)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// filterSuppressed drops diagnostics whose source line (or the line
// directly above it) carries a "//mdwlint:allow <analyzer> <reason>"
// comment. The reason is mandatory by convention: a bare allow reads as
// an unexplained override in review.
func filterSuppressed(diags []Diagnostic, pkg *Package) []Diagnostic {
	// file -> set of (analyzer, line) suppressions.
	type key struct {
		analyzer string
		line     int
	}
	allow := map[string]map[key]bool{}
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "mdwlint:allow ") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "mdwlint:allow "))
				if len(fields) == 0 {
					continue
				}
				if allow[fname] == nil {
					allow[fname] = map[key]bool{}
				}
				line := pkg.Fset.Position(c.Pos()).Line
				// The comment suppresses its own line and the next: a
				// trailing comment covers its statement, a standalone
				// comment covers the statement below it.
				allow[fname][key{fields[0], line}] = true
				allow[fname][key{fields[0], line + 1}] = true
			}
		}
	}
	if len(allow) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if allow[d.Pos.Filename][key{d.Analyzer, d.Pos.Line}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
