// Package framework is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer holds a
// name, documentation, and a Run function; a Pass hands the Run function
// one type-checked package at a time and collects diagnostics.
//
// The x/tools module is deliberately not vendored — the warehouse builds
// offline — so this package supplies the small subset the mdwlint
// analyzers need: a source loader for the repository's own module (see
// load.go), positional diagnostics, per-line suppression comments,
// cross-package analyzer facts (see facts.go), and a whole-program
// Finish hook for analyses — like lock-order cycle detection — whose
// verdict only exists once every package has been visited. Analyzers
// written against it look exactly like go/analysis analyzers and could
// be ported to the real framework by swapping the import.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//mdwlint:allow <name>" suppression comments.
	Name string
	// Doc is the help text shown by cmd/mdwlint.
	Doc string
	// Run applies the analyzer to one package. Packages arrive in
	// dependency order (imports before importers), so facts exported
	// while analyzing a package are visible to every downstream pass.
	Run func(*Pass) error
	// Finish, if non-nil, runs once after Run has been applied to every
	// package. The Pass it receives has Prog, Fset, and Reportf wired but
	// no current package (Pkg, Files, TypesInfo are nil). Whole-program
	// analyses report their verdicts here.
	Finish func(*Pass) error
	// Requires lists analyzers that must run before this one (their
	// facts are consumed). The closure is expanded and ordered by Run.
	Requires []*Analyzer
	// FactTypes declares the fact types this analyzer exports; a fact
	// type must be registered here before ExportObjectFact accepts it.
	FactTypes []Fact
}

// Program is the whole set of packages being analyzed by one Run, in
// dependency order. Whole-program analyzers reach sibling packages —
// and share expensive derived structures like the call graph — through
// the Pass's Prog field.
type Program struct {
	Fset *token.FileSet
	// Packages holds the loaded packages topologically sorted: a package
	// precedes everything that imports it.
	Packages []*Package

	facts map[factKey]Fact
	memo  map[string]any
}

// Memo returns the cached value for key, building it on first use. The
// callgraph package uses it so that one Run builds at most one call
// graph no matter how many analyzers ask for it.
func (prog *Program) Memo(key string, build func() any) any {
	if v, ok := prog.memo[key]; ok {
		return v
	}
	v := build()
	prog.memo[key] = v
	return v
}

// Package returns the loaded package with the given import path, or nil.
func (prog *Program) Package(path string) *Package {
	for _, p := range prog.Packages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// Pass is the interface between one analyzer run and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path (or a synthetic path for
	// directory loads in tests).
	Path string
	// Prog is the whole program being analyzed.
	Prog *Program

	diags *[]Diagnostic
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// LoaderAnalyzerName labels diagnostics produced by the loader itself:
// packages that failed to parse, and type errors not attributable to the
// loader's deliberate stubbing of external imports. They are emitted by
// every Run regardless of the analyzer selection — a package that did
// not load was not analyzed, and silence would hide that.
const LoaderAnalyzerName = "loader"

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ConstString returns the constant string value of expr, if the
// type-checker folded it to one (string literals, concatenations of
// constants, references to string constants).
func (p *Pass) ConstString(expr ast.Expr) (string, bool) {
	return constString(p.TypesInfo, expr)
}

// Allow is one "//mdwlint:allow <analyzer> <reason>" comment found in
// the analyzed sources.
type Allow struct {
	Pos      token.Position
	Analyzer string
	// Used reports whether the comment suppressed at least one
	// diagnostic in this run. An unused allow is stale — it documents an
	// exemption that no longer exists — unless the analyzer it names was
	// excluded from the run.
	Used bool
}

// Result is the full outcome of one RunAll.
type Result struct {
	Diagnostics []Diagnostic
	// Allows lists every suppression comment seen, with usage marks, so
	// callers running the complete analyzer set can audit stale allows.
	Allows []Allow
}

// Run applies the analyzers to every loaded package and returns all
// diagnostics sorted by position. Suppressed diagnostics (see
// filterSuppressed) are dropped.
func Run(pkgs []*Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	res, err := RunAll(pkgs, analyzers...)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunAll is Run plus the suppression-comment audit trail.
//
// Packages are visited in dependency order and analyzers in Requires
// order, so facts flow from defining packages and required analyzers to
// their consumers. Packages that failed to load are reported under the
// "loader" pseudo-analyzer and skipped.
func RunAll(pkgs []*Package, analyzers ...*Analyzer) (*Result, error) {
	ordered, err := expandRequires(analyzers)
	if err != nil {
		return nil, err
	}
	sorted := topoPackages(pkgs)
	var fset *token.FileSet
	for _, p := range sorted {
		if p.Fset != nil {
			fset = p.Fset
			break
		}
	}
	prog := &Program{
		Fset:     fset,
		Packages: sorted,
		facts:    map[factKey]Fact{},
		memo:     map[string]any{},
	}

	var diags []Diagnostic
	for _, pkg := range sorted {
		diags = append(diags, loaderDiagnostics(pkg)...)
	}
	for _, a := range ordered {
		for _, pkg := range sorted {
			if pkg.LoadError != nil || pkg.Types == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				Prog:      prog,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		if a.Finish != nil {
			pass := &Pass{Analyzer: a, Fset: prog.Fset, Prog: prog, diags: &diags}
			if err := a.Finish(pass); err != nil {
				return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
			}
		}
	}

	diags, allows := filterSuppressed(diags, sorted)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return &Result{Diagnostics: diags, Allows: allows}, nil
}

// expandRequires returns the analyzers plus their transitive Requires,
// ordered so every analyzer follows everything it requires.
func expandRequires(analyzers []*Analyzer) ([]*Analyzer, error) {
	var ordered []*Analyzer
	state := map[*Analyzer]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("framework: analyzer requirement cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		ordered = append(ordered, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// topoPackages orders packages so that every package precedes the
// packages importing it; ties (and packages outside the set) keep their
// relative input order, which the loader already sorts by path.
func topoPackages(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var out []*Package
	state := map[*Package]int{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				if dep, ok := byPath[imp.Path()]; ok {
					visit(dep)
				}
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// loaderDiagnostics converts a package's load failures into ordinary
// diagnostics: the parse error that prevented loading, or type errors
// the stub classifier (see load.go) deems real. At most a handful per
// package — a genuinely broken file cascades.
func loaderDiagnostics(pkg *Package) []Diagnostic {
	const maxPerPackage = 5
	var out []Diagnostic
	if pkg.LoadError != nil {
		pos := token.Position{Filename: pkg.Dir}
		if pkg.LoadErrorPos.IsValid() || pkg.LoadErrorPos.Filename != "" {
			pos = pkg.LoadErrorPos
		}
		out = append(out, Diagnostic{
			Analyzer: LoaderAnalyzerName,
			Pos:      pos,
			Message:  fmt.Sprintf("package %s failed to load: %v", pkg.Path, pkg.LoadError),
		})
		return out
	}
	for _, err := range pkg.RealTypeErrors() {
		if len(out) >= maxPerPackage {
			out = append(out, Diagnostic{
				Analyzer: LoaderAnalyzerName,
				Pos:      out[len(out)-1].Pos,
				Message:  fmt.Sprintf("package %s: further type errors omitted", pkg.Path),
			})
			break
		}
		pos := token.Position{Filename: pkg.Dir}
		msg := err.Error()
		if te, ok := err.(types.Error); ok {
			pos = te.Fset.Position(te.Pos)
			msg = te.Msg
		}
		out = append(out, Diagnostic{
			Analyzer: LoaderAnalyzerName,
			Pos:      pos,
			Message:  fmt.Sprintf("package %s does not type-check: %s", pkg.Path, msg),
		})
	}
	return out
}

// filterSuppressed drops diagnostics whose source line (or the line
// directly above it) carries a "//mdwlint:allow <analyzer> <reason>"
// comment, and returns every allow comment seen with a mark recording
// whether it suppressed anything. The reason is mandatory by
// convention: a bare allow reads as an unexplained override in review.
func filterSuppressed(diags []Diagnostic, pkgs []*Package) ([]Diagnostic, []Allow) {
	type key struct {
		analyzer string
		line     int
	}
	// file -> (analyzer, line) -> index into allows.
	table := map[string]map[key]int{}
	var allows []Allow
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fname := pkg.Fset.Position(f.Pos()).Filename
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "mdwlint:allow ") {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, "mdwlint:allow "))
					if len(fields) == 0 {
						continue
					}
					if table[fname] == nil {
						table[fname] = map[key]int{}
					}
					pos := pkg.Fset.Position(c.Pos())
					allows = append(allows, Allow{Pos: pos, Analyzer: fields[0]})
					idx := len(allows) - 1
					// The comment suppresses its own line and the next: a
					// trailing comment covers its statement, a standalone
					// comment covers the statement below it.
					table[fname][key{fields[0], pos.Line}] = idx
					table[fname][key{fields[0], pos.Line + 1}] = idx
				}
			}
		}
	}
	if len(allows) == 0 {
		return diags, nil
	}
	out := diags[:0]
	for _, d := range diags {
		if idx, ok := table[d.Pos.Filename][key{d.Analyzer, d.Pos.Line}]; ok {
			allows[idx].Used = true
			continue
		}
		out = append(out, d)
	}
	return out, allows
}
