package callgraph_test

import (
	"go/types"
	"testing"

	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/framework/callgraph"
)

// buildShape loads the known-shape fixture module and builds its graph.
func buildShape(t *testing.T) (*callgraph.Graph, []*framework.Package) {
	t.Helper()
	l, err := framework.NewLoader("testdata/src/shape")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want shape and shape/sub", len(pkgs))
	}
	return callgraph.Build(pkgs), pkgs
}

// lookupFunc finds a package-level function or a named type's method.
func lookupFunc(t *testing.T, pkgs []*framework.Package, pkgPath, typeName, funcName string) *types.Func {
	t.Helper()
	for _, p := range pkgs {
		if p.Path != pkgPath {
			continue
		}
		scope := p.Types.Scope()
		if typeName == "" {
			if fn, ok := scope.Lookup(funcName).(*types.Func); ok {
				return fn
			}
			t.Fatalf("%s.%s not found", pkgPath, funcName)
		}
		named, ok := scope.Lookup(typeName).Type().(*types.Named)
		if !ok {
			t.Fatalf("%s.%s is not a named type", pkgPath, typeName)
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == funcName {
				return named.Method(i)
			}
		}
		t.Fatalf("method %s.%s.%s not found", pkgPath, typeName, funcName)
	}
	t.Fatalf("package %s not loaded", pkgPath)
	return nil
}

// callees maps each out-edge of a node to its callee's full name.
func callees(n *callgraph.Node) map[string]bool {
	out := map[string]bool{}
	for _, e := range n.Out {
		out[e.Callee.Func.FullName()] = true
	}
	return out
}

func TestCallgraphShape(t *testing.T) {
	g, pkgs := buildShape(t)

	helper := lookupFunc(t, pkgs, "shape", "", "helper")
	dispatch := lookupFunc(t, pkgs, "shape", "", "Dispatch")
	direct := lookupFunc(t, pkgs, "shape", "", "Direct")
	wrapper := lookupFunc(t, pkgs, "shape", "", "Wrapper")
	use := lookupFunc(t, pkgs, "shape/sub", "", "Use")
	aRun := lookupFunc(t, pkgs, "shape", "A", "Run")

	// Direct: one static method call, one function call.
	got := callees(g.Node(direct))
	for _, want := range []string{"(*shape.A).Run", "shape.helper"} {
		if !got[want] {
			t.Errorf("Direct is missing edge to %s (has %v)", want, got)
		}
	}

	// Dispatch: dynamic edges to every Runner implementation, and only
	// those.
	dn := g.Node(dispatch)
	got = callees(dn)
	for _, want := range []string{"(*shape.A).Run", "(shape.B).Run"} {
		if !got[want] {
			t.Errorf("Dispatch is missing dynamic edge to %s (has %v)", want, got)
		}
	}
	if len(dn.Out) != 2 {
		t.Errorf("Dispatch has %d out-edges, want exactly the 2 implementations", len(dn.Out))
	}
	for _, e := range dn.Out {
		if !e.Dynamic {
			t.Errorf("Dispatch edge to %s is not marked Dynamic", e.Callee.Func.FullName())
		}
	}

	// Calls inside a function literal are attributed to the enclosing
	// declaration.
	if got := callees(g.Node(wrapper)); !got["shape.helper"] {
		t.Errorf("Wrapper's literal call to helper not attributed to Wrapper (has %v)", got)
	}

	// Cross-package qualified call.
	if got := callees(g.Node(use)); !got["shape.Direct"] {
		t.Errorf("sub.Use is missing the cross-package edge to shape.Direct (has %v)", got)
	}

	// In-edges: helper is called from A.Run, Direct, and Wrapper's
	// literal.
	hn := g.Node(helper)
	if len(hn.In) != 3 {
		t.Errorf("helper has %d in-edges, want 3 (A.Run, Direct, Wrapper)", len(hn.In))
	}

	// Method node resolution matches the scope lookup.
	if g.Node(aRun) == nil {
		t.Error("no node for (*A).Run")
	}
}

func TestCallgraphDeterministicNodes(t *testing.T) {
	g, _ := buildShape(t)
	first := g.Nodes()
	second := g.Nodes()
	if len(first) != len(second) {
		t.Fatalf("node count changed between calls: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("node order not deterministic at %d: %s vs %s",
				i, first[i].Func.FullName(), second[i].Func.FullName())
		}
	}
}
