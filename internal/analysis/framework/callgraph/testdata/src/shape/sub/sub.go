// Package sub adds a cross-package edge into the shape module.
package sub

import "shape"

func Use() { shape.Direct() }
