module shape

go 1.21
