// Package shape is a module with a known call-graph shape; the
// callgraph unit tests assert its exact nodes and edges.
package shape

type Runner interface{ Run() }

type A struct{}

func (a *A) Run() { helper() }

type B struct{}

func (b B) Run() {}

func helper() {}

// Dispatch calls through the interface: one dynamic edge per
// implementation.
func Dispatch(r Runner) { r.Run() }

// Direct calls a concrete method and a function.
func Direct() {
	var a A
	a.Run()
	helper()
}

// Wrapper calls through a literal; the call inside it is attributed to
// Wrapper.
func Wrapper() {
	f := func() { helper() }
	f()
}
