// Package callgraph builds a static call graph over the packages loaded
// by the framework loader: one node per function or method declared in
// the module, one edge per resolvable call site.
//
// Resolution covers three call shapes:
//
//   - direct calls to package-level functions, both unqualified (f())
//     and qualified (pkg.F());
//   - method calls on concrete receivers (x.M() where x has a named
//     module type), including methods promoted from embedded types;
//   - method calls through interfaces: an edge is added to the matching
//     method of every named module type whose method set implements the
//     interface (the "implementation set"), marked Dynamic.
//
// Calls through plain function values (callbacks, stored closures) are
// inherently dynamic and produce no edge; analyzers that care (locksafe
// does) handle them separately. Calls appearing inside a function
// literal are attributed to the enclosing declared function — a
// conservative over-approximation that suits may-analyses like lock
// ordering.
//
// The loader stubs external imports, so calls into the standard library
// have no node and interfaces declared outside the module resolve to no
// implementations. Everything declared inside the module resolves.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"

	"mdw/internal/analysis/framework"
)

// Graph is the whole-program call graph.
type Graph struct {
	nodes map[*types.Func]*Node
	decls map[*ast.FuncDecl]*Node
}

// Node is one declared function or method.
type Node struct {
	Func *types.Func
	// Decl is the declaration with body; nil for interface methods.
	Decl *ast.FuncDecl
	Pkg  *framework.Package
	// Out lists calls made by this function, In the calls targeting it.
	Out []*Edge
	In  []*Edge
}

// Edge is one resolved call site.
type Edge struct {
	Caller *Node
	Callee *Node
	Site   *ast.CallExpr
	// Dynamic marks edges resolved through an interface's
	// implementation set rather than a static callee.
	Dynamic bool
}

// Node returns the node for fn, or nil if fn was not declared in the
// loaded packages.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return g.nodes[fn]
}

// NodeForDecl returns the node for a declaration in the loaded files.
func (g *Graph) NodeForDecl(d *ast.FuncDecl) *Node { return g.decls[d] }

// Nodes returns every node, ordered by position for determinism.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func.Pos() != out[j].Func.Pos() {
			return out[i].Func.Pos() < out[j].Func.Pos()
		}
		return out[i].Func.Id() < out[j].Func.Id()
	})
	return out
}

// Of returns the call graph for the pass's whole program, building it
// on first use and caching it on the Program so every analyzer in one
// run shares a single graph.
func Of(pass *framework.Pass) *Graph {
	return pass.Prog.Memo("callgraph", func() any {
		return Build(pass.Prog.Packages)
	}).(*Graph)
}

// Build constructs the call graph for the given packages.
func Build(pkgs []*framework.Package) *Graph {
	g := &Graph{nodes: map[*types.Func]*Node{}, decls: map[*ast.FuncDecl]*Node{}}

	// Pass 1: nodes for every declared function/method, and the set of
	// named types for interface resolution.
	var named []*types.Named
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &Node{Func: obj, Decl: fd, Pkg: pkg}
				g.nodes[obj] = n
				g.decls[fd] = n
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if nt, ok := tn.Type().(*types.Named); ok {
				named = append(named, nt)
			}
		}
	}

	// Pass 2: edges.
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := g.decls[fd]
				if caller == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					g.addCall(caller, call, pkg, named)
					return true
				})
			}
		}
	}

	// Deterministic edge order.
	for _, n := range g.nodes {
		sortEdges(n.Out)
		sortEdges(n.In)
	}
	return g
}

func sortEdges(es []*Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Site.Pos() != es[j].Site.Pos() {
			return es[i].Site.Pos() < es[j].Site.Pos()
		}
		return es[i].Callee.Func.Id() < es[j].Callee.Func.Id()
	})
}

// addCall resolves one call site and appends the resulting edges.
func (g *Graph) addCall(caller *Node, call *ast.CallExpr, pkg *framework.Package, named []*types.Named) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// f() — package-level function or a conversion/builtin (skipped:
		// their Uses object is not a *types.Func).
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			g.edge(caller, fn, call, false)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			recv := sel.Recv()
			if types.IsInterface(recv) {
				g.interfaceEdges(caller, recv, fn, call, named)
				return
			}
			g.edge(caller, fn, call, false)
			return
		}
		// pkg.F() — qualified call; also catches method expressions of
		// the form T.M used as a direct call.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				g.interfaceEdges(caller, sig.Recv().Type(), fn, call, named)
				return
			}
			g.edge(caller, fn, call, false)
		}
	}
}

// interfaceEdges adds one dynamic edge per named module type whose
// method set implements the interface the call goes through, targeting
// that type's own method (possibly promoted from an embedded type).
func (g *Graph) interfaceEdges(caller *Node, recv types.Type, ifaceMethod *types.Func, call *ast.CallExpr, named []*types.Named) {
	iface, _ := recv.Underlying().(*types.Interface)
	if iface == nil || iface.Empty() {
		return
	}
	name := ifaceMethod.Name()
	for _, nt := range named {
		if types.IsInterface(nt) {
			continue
		}
		var impl types.Type
		if types.Implements(nt, iface) {
			impl = nt
		} else if p := types.NewPointer(nt); types.Implements(p, iface) {
			impl = p
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, ifaceMethod.Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			g.edge(caller, m, call, true)
		}
	}
}

// edge appends a caller→callee edge, materializing the callee node if
// the function is known but was declared without a body in the loaded
// set (interface methods).
func (g *Graph) edge(caller *Node, callee *types.Func, call *ast.CallExpr, dynamic bool) {
	if o := callee.Origin(); o != nil {
		callee = o
	}
	cn := g.nodes[callee]
	if cn == nil {
		// Method of a stubbed external type, or an interface method: no
		// body to analyze, but keep the node so In edges are queryable.
		if callee.Pkg() == nil {
			return
		}
		cn = &Node{Func: callee}
		g.nodes[callee] = cn
	}
	e := &Edge{Caller: caller, Callee: cn, Site: call, Dynamic: dynamic}
	caller.Out = append(caller.Out, e)
	cn.In = append(cn.In, e)
}
