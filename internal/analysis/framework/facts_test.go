package framework

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"
)

// markFact marks a function object for the facts round-trip test.
type markFact struct{ Seen int }

func (*markFact) AFact() {}

// loadFactsModule loads the two-package facts fixture in REVERSE
// dependency order, so the test also proves RunAll's topological
// reordering (facts must flow lo → hi regardless of input order).
func loadFactsModule(t *testing.T) []*Package {
	t.Helper()
	l, err := NewLoader("testdata/src/facts")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("facts/hi", "facts/lo")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 || pkgs[0].Path != "facts/hi" {
		t.Fatalf("loaded %d packages, want hi then lo as input order", len(pkgs))
	}
	return pkgs
}

func factAnalyzers() (*Analyzer, *Analyzer) {
	def := &Analyzer{
		Name:      "factdef",
		Doc:       "exports a fact on every function named Target",
		FactTypes: []Fact{(*markFact)(nil)},
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Name.Name != "Target" {
						continue
					}
					obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					fact := &markFact{}
					pass.ImportObjectFact(obj, fact)
					fact.Seen++
					pass.ExportObjectFact(obj, fact)
				}
			}
			return nil
		},
	}
	use := &Analyzer{
		Name:     "factuse",
		Doc:      "reports calls to fact-marked functions",
		Requires: []*Analyzer{def},
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
					if !ok {
						return true
					}
					if pass.ImportObjectFact(fn, &markFact{}) {
						pass.Reportf(call.Pos(), "call to marked function %s", fn.Name())
					}
					return true
				})
			}
			return nil
		},
	}
	return def, use
}

func TestFactsFlowAcrossPackages(t *testing.T) {
	pkgs := loadFactsModule(t)
	_, use := factAnalyzers()

	// Passing only `use`: the Requires expansion must pull in factdef and
	// run it first.
	res, err := RunAll(pkgs, use)
	if err != nil {
		t.Fatal(err)
	}

	var hits []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Analyzer == "factuse" {
			hits = append(hits, d)
		}
	}
	// Two lo.Target() call sites in hi; one is suppressed by an allow.
	if len(hits) != 1 {
		t.Fatalf("got %d factuse diagnostics, want 1 (one suppressed): %v", len(hits), hits)
	}
	if !strings.Contains(hits[0].Message, "Target") {
		t.Errorf("diagnostic %q does not name the marked function", hits[0].Message)
	}

	// Allow audit: one allow consumed a diagnostic, one is stale.
	var used, stale int
	for _, a := range res.Allows {
		if a.Analyzer != "factuse" {
			continue
		}
		if a.Used {
			used++
		} else {
			stale++
		}
	}
	if used != 1 || stale != 1 {
		t.Fatalf("allow audit: used=%d stale=%d, want 1 and 1 (%+v)", used, stale, res.Allows)
	}
}

func TestAllObjectFacts(t *testing.T) {
	pkgs := loadFactsModule(t)
	def, _ := factAnalyzers()

	var all []ObjectFact
	def.Finish = func(pass *Pass) error {
		all = pass.AllObjectFacts((*markFact)(nil))
		return nil
	}
	defer func() { def.Finish = nil }()
	if _, err := RunAll(pkgs, def); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("AllObjectFacts returned %d facts, want exactly lo.Target", len(all))
	}
	if all[0].Object.Name() != "Target" {
		t.Errorf("fact on %s, want Target", all[0].Object.Name())
	}
	if all[0].Fact.(*markFact).Seen != 1 {
		t.Errorf("fact Seen = %d, want 1", all[0].Fact.(*markFact).Seen)
	}
}

func TestExportFactUnregisteredPanics(t *testing.T) {
	pkgs := loadFactsModule(t)
	bad := &Analyzer{
		Name: "bad",
		Doc:  "exports a fact type it never registered",
		Run: func(pass *Pass) error {
			obj := pass.Pkg.Scope().Lookup("Target")
			if obj == nil {
				return nil // the fixture package without Target
			}
			defer func() {
				if recover() == nil {
					t.Error("ExportObjectFact on an unregistered fact type did not panic")
				}
			}()
			pass.ExportObjectFact(obj, &markFact{})
			return nil
		},
	}
	if _, err := RunAll(pkgs, bad); err != nil {
		t.Fatal(err)
	}
}
