package framework

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a datum an analyzer attaches to a types.Object (a function, a
// struct field, …) while analyzing the package that can observe it, for
// consumption by later passes — of the same analyzer visiting a
// downstream package, or of another analyzer that Requires this one.
// Mirrors go/analysis: fact types must be pointers and must be
// registered in the exporting Analyzer's FactTypes.
type Fact interface {
	// AFact is a marker method; it does nothing.
	AFact()
}

// ObjectFact pairs an object with one fact attached to it.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

type factKey struct {
	obj types.Object
	t   reflect.Type
}

// ExportObjectFact attaches fact to obj for downstream passes. The
// dynamic type of fact must be a pointer registered in the analyzer's
// FactTypes; exporting twice for the same (object, type) overwrites.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic(fmt.Sprintf("%s: ExportObjectFact with nil object", p.Analyzer.Name))
	}
	p.checkFactType(fact)
	p.Prog.facts[factKey{obj, reflect.TypeOf(fact)}] = fact
}

// ImportObjectFact copies into fact the fact of fact's type previously
// exported for obj, reporting whether one existed. fact must be a
// pointer of a registered fact type.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	p.checkFactType(fact)
	stored, ok := p.Prog.facts[factKey{obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// AllObjectFacts returns every exported fact whose type matches
// sample's, ordered by object position for determinism.
func (p *Pass) AllObjectFacts(sample Fact) []ObjectFact {
	t := reflect.TypeOf(sample)
	var out []ObjectFact
	for k, f := range p.Prog.facts {
		if k.t == t {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object.Pos() != out[j].Object.Pos() {
			return out[i].Object.Pos() < out[j].Object.Pos()
		}
		return out[i].Object.Id() < out[j].Object.Id()
	})
	return out
}

// checkFactType enforces the go/analysis fact contract: pointer type,
// declared in FactTypes of the analyzer (or one it requires — a
// consumer may import facts produced by a required analyzer).
func (p *Pass) checkFactType(fact Fact) {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("%s: fact type %T is not a pointer", p.Analyzer.Name, fact))
	}
	if p.declaresFact(t, map[*Analyzer]bool{}) {
		return
	}
	panic(fmt.Sprintf("%s: fact type %T not registered in FactTypes", p.Analyzer.Name, fact))
}

func (p *Pass) declaresFact(t reflect.Type, seen map[*Analyzer]bool) bool {
	var search func(a *Analyzer) bool
	search = func(a *Analyzer) bool {
		if seen[a] {
			return false
		}
		seen[a] = true
		for _, ft := range a.FactTypes {
			if reflect.TypeOf(ft) == t {
				return true
			}
		}
		for _, req := range a.Requires {
			if search(req) {
				return true
			}
		}
		return false
	}
	return search(p.Analyzer)
}
