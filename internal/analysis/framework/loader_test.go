package framework

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one testdata package through the module loader.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("testdata/src/"+name, "fixture/"+name)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.LoadError != nil {
		t.Fatalf("fixture %s failed to load: %v", name, pkg.LoadError)
	}
	if errs := pkg.RealTypeErrors(); len(errs) > 0 {
		t.Fatalf("fixture %s has real type errors: %v", name, errs)
	}
	return pkg
}

// TestLoaderErrorsBecomeDiagnostics pins the contract that a package
// that fails to load is REPORTED, not silently skipped: a real type
// error and a parse error must each surface as a "loader" diagnostic
// and therefore fail the lint run.
func TestLoaderErrorsBecomeDiagnostics(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("testdata/src/broken", "fixture/broken")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.RealTypeErrors()) == 0 {
		t.Fatal("broken fixture produced no real type errors")
	}
	res, err := RunAll([]*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) == 0 {
		t.Fatal("type-broken package produced no diagnostics")
	}
	for _, d := range res.Diagnostics {
		if d.Analyzer != LoaderAnalyzerName {
			t.Errorf("unexpected analyzer %q on loader diagnostic %v", d.Analyzer, d)
		}
	}
	if !strings.Contains(res.Diagnostics[0].Message, "undefinedIdent") {
		t.Errorf("diagnostic %q does not name the undefined identifier", res.Diagnostics[0].Message)
	}
}

func TestParseErrorsBecomeDiagnostics(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package bad\n\nfunc {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "fixture/bad")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.LoadError == nil {
		t.Fatal("parse-broken package has no LoadError")
	}
	res, err := RunAll([]*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Analyzer != LoaderAnalyzerName {
		t.Fatalf("diagnostics = %v, want one loader diagnostic", res.Diagnostics)
	}
	if res.Diagnostics[0].Pos.Filename == "" {
		t.Error("parse diagnostic has no file position")
	}
}

func TestLoaderGenerics(t *testing.T) {
	pkg := loadFixture(t, "generics")

	sum, ok := pkg.Types.Scope().Lookup("Sum").(*types.Func)
	if !ok {
		t.Fatal("generics.Sum not found")
	}
	sig := sum.Type().(*types.Signature)
	if sig.TypeParams() == nil || sig.TypeParams().Len() != 1 {
		t.Fatalf("Sum signature %v: want one type parameter", sig)
	}

	// The instantiated call inside Use must resolve back to the generic
	// origin — that is what callgraph.Build relies on.
	var instantiated *types.Func
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "Sum" {
				instantiated, _ = pkg.Info.Uses[id].(*types.Func)
			}
			return true
		})
	}
	if instantiated == nil {
		t.Fatal("no resolved use of Sum found")
	}
	if got := instantiated.Origin(); got != sum {
		t.Fatalf("instantiated Sum origin = %v, want %v", got, sum)
	}

	// Methods on generic types must be present on the named type.
	pair, ok := pkg.Types.Scope().Lookup("Pair").(*types.TypeName)
	if !ok {
		t.Fatal("generics.Pair not found")
	}
	named := pair.Type().(*types.Named)
	if named.NumMethods() != 1 || named.Method(0).Name() != "Swap" {
		t.Fatalf("Pair methods = %d, want the single Swap method", named.NumMethods())
	}
}

func TestLoaderEmbeddedInterfaces(t *testing.T) {
	pkg := loadFixture(t, "embedded")
	scope := pkg.Types.Scope()

	rc := scope.Lookup("ReadCloser").Type().Underlying().(*types.Interface)
	if rc.NumMethods() != 2 {
		t.Fatalf("ReadCloser has %d methods after embedding, want 2", rc.NumMethods())
	}
	file := scope.Lookup("File").Type()
	if !types.Implements(types.NewPointer(file), rc) {
		t.Fatal("*File must implement the embedded ReadCloser interface")
	}
	// Logged embeds *File; promotion must carry the implementation.
	logged := scope.Lookup("Logged").Type()
	if !types.Implements(types.NewPointer(logged), rc) {
		t.Fatal("*Logged must implement ReadCloser via the promoted methods")
	}

	// The promoted call l.Read() must resolve through Selections to the
	// original (*File).Read.
	var promoted *types.Func
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Read" {
				return true
			}
			if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if fn, ok := s.Obj().(*types.Func); ok && fn.FullName() == "(*fixture/embedded.File).Read" {
					promoted = fn
				}
			}
			return true
		})
	}
	if promoted == nil {
		t.Fatal("promoted l.Read() did not resolve to (*File).Read")
	}
}
