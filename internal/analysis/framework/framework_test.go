package framework

import (
	"go/ast"
	"strings"
	"testing"
)

func TestLoaderModulePackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "mdw" {
		t.Fatalf("module path = %q, want mdw", l.ModulePath)
	}
	pkgs, err := l.Load("mdw/internal/rdf")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "rdf" {
		t.Fatalf("loaded %+v, want package rdf", pkgs)
	}
	// The vocabulary constants must fold to their full IRI values.
	sc := pkgs[0].Types.Scope()
	obj := sc.Lookup("RDFType")
	if obj == nil {
		t.Fatal("rdf.RDFType not found in package scope")
	}
}

func TestLoaderConstantFolding(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// semmatch concatenates rdf constants into query text; folding those
	// is what sparqlcheck depends on.
	pkgs, err := l.Load("mdw/internal/ontology")
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]
	found := false
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if v, ok := constString(pkg.Info, e); ok && strings.Contains(v, "#") {
					found = true
				}
			}
			return true
		})
	}
	if !found {
		t.Fatal("no folded constant strings containing a namespace found in ontology package")
	}
}

func TestLoadAllPackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from ./..., expected the whole tree", len(pkgs))
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		if seen[p.Path] {
			t.Errorf("package %s loaded twice", p.Path)
		}
		seen[p.Path] = true
	}
	for _, want := range []string{"mdw/internal/store", "mdw/internal/sparql", "mdw/cmd/mdw"} {
		if !seen[want] {
			t.Errorf("missing package %s", want)
		}
	}
}
