// Package analysistest runs a framework.Analyzer over fixture packages
// and checks its diagnostics against "// want" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line expects diagnostics by carrying a trailing comment of
// the form
//
//	// want "regexp" `another regexp`
//
// Every diagnostic reported on that line must match one of the regexps,
// and every regexp must be matched by exactly one diagnostic. Lines
// without a want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mdw/internal/analysis/framework"
)

// Run loads each named fixture directory (resolved relative to
// dir/testdata/src) as one package, applies the analyzer, and reports
// mismatches through t.
func Run(t *testing.T, dir string, a *framework.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fx := range fixtures {
		runOne(t, filepath.Join(dir, "testdata", "src", fx), fx, a)
	}
}

func runOne(t *testing.T, fxDir, fxName string, a *framework.Analyzer) {
	t.Helper()
	loader, err := framework.NewLoader(fxDir)
	if err != nil {
		t.Fatalf("%s: %v", fxName, err)
	}
	pkg, err := loader.LoadDir(fxDir, "fixture/"+fxName)
	if err != nil {
		t.Fatalf("%s: loading fixture: %v", fxName, err)
	}
	checkFixture(t, fxName, a, []*framework.Package{pkg})
}

// RunModule loads each named fixture directory as a complete module —
// the fixture contains its own go.mod and one subdirectory per package
// — applies the analyzer to all packages together, and checks "want"
// comments across the whole module. This is how analyzers that pass
// facts between packages (syncerr) or build whole-program structures
// (lockorder) are tested.
func RunModule(t *testing.T, dir string, a *framework.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fx := range fixtures {
		fxDir := filepath.Join(dir, "testdata", "src", fx)
		loader, err := framework.NewLoader(fxDir)
		if err != nil {
			t.Fatalf("%s: %v", fx, err)
		}
		pkgs, err := loader.Load("./...")
		if err != nil {
			t.Fatalf("%s: loading fixture module: %v", fx, err)
		}
		checkFixture(t, fx, a, pkgs)
	}
}

func checkFixture(t *testing.T, fxName string, a *framework.Analyzer, pkgs []*framework.Package) {
	t.Helper()
	diags, err := framework.Run(pkgs, a)
	if err != nil {
		t.Fatalf("%s: running %s: %v", fxName, a.Name, err)
	}
	ws := &wantSet{}
	for _, pkg := range pkgs {
		if err := collectWants(pkg, ws); err != nil {
			t.Fatalf("%s: %v", fxName, err)
		}
	}
	for _, d := range diags {
		if !ws.match(d) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", fxName, filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range ws.unmatched() {
		t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", fxName, w.re.String(), filepath.Base(w.file), w.line)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

func (ws *wantSet) match(d framework.Diagnostic) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

func collectWants(pkg *framework.Package, ws *wantSet) error {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(rest)
				if err != nil {
					return fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, p, err)
					}
					ws.wants = append(ws.wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return nil
}

// splitPatterns parses a sequence of "..." or `...` quoted regexps.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want patterns must be quoted with \" or `, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
