// Package lo defines the function the facts test marks.
package lo

func Target() {}

func Plain() {}
