// Package hi calls into lo; the facts test expects the fact exported on
// lo.Target to be visible here.
package hi

import "facts/lo"

func CallMarked() {
	lo.Target()
}

func CallPlain() {
	lo.Plain()
}

func CallSuppressed() {
	lo.Target() //mdwlint:allow factuse covered by integration test
}

//mdwlint:allow factuse this allow is stale on purpose
func Stale() {
	lo.Plain()
}
