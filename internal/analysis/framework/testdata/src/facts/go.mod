module facts

go 1.21
