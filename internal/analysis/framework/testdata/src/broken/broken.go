// Package broken does not type-check: the loader-diagnostics test
// asserts the failure surfaces as a "loader" finding, not silence.
package broken

var oops = undefinedIdent
