// Package generics gives the loader a workout on type parameters:
// constraint interfaces, generic functions, generic types with methods,
// and instantiations — all of which must type-check offline.
package generics

type Number interface{ ~int | ~float64 }

func Sum[T Number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

type Pair[K comparable, V any] struct {
	Key K
	Val V
}

func (p Pair[K, V]) Swap() (V, K) { return p.Val, p.Key }

func Use() int {
	p := Pair[string, int]{Key: "a", Val: 1}
	v, k := p.Swap()
	_ = v
	_ = k
	return Sum([]int{1, 2, 3})
}
