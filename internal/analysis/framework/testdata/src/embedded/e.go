// Package embedded exercises interface embedding and method promotion
// through embedded struct pointers.
package embedded

type Reader interface{ Read() int }

type Closer interface{ Close() error }

type ReadCloser interface {
	Reader
	Closer
}

type File struct{ n int }

func (f *File) Read() int    { return f.n }
func (f *File) Close() error { return nil }

type Logged struct {
	*File
	tag string
}

func Use(rc ReadCloser) int { return rc.Read() }

func Promote(l *Logged) (int, error) {
	n := l.Read()
	return n, l.Close()
}
