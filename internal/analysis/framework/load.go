package framework

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path string
	Name string
	Dir  string
	// ModulePath is the path of the module the loader resolved
	// module-internal imports against.
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints. Imports of packages
	// outside the module are stubbed out (the loader works offline and
	// does not compile the standard library), so analyzers must expect
	// partial type information and must not treat these as fatal.
	// RealTypeErrors filters out the complaints the stubbing provokes.
	TypeErrors []error
	// LoadError is set when the package could not be loaded at all
	// (unreadable directory, parse failure). Such a package has no Files
	// or Types; framework.Run reports it under the "loader"
	// pseudo-analyzer instead of silently skipping it.
	LoadError error
	// LoadErrorPos locates LoadError when it has a source position
	// (parse errors do; directory errors do not).
	LoadErrorPos token.Position
}

// RealTypeErrors returns the type errors that are NOT explained by the
// loader's stubbing of external imports — errors a real compiler would
// also report. The stub noise has two shapes, verified against the full
// healthy tree: "undefined: q.Name" where q locally names a stubbed
// (non-module) import of the erroring file, and `"path" imported and
// not used` for a stubbed import whose every selection failed.
// Everything else — undefined bare identifiers, module-internal import
// failures, mismatched types between module types — is real.
func (p *Package) RealTypeErrors() []error {
	if len(p.TypeErrors) == 0 {
		return nil
	}
	// file -> local names of stubbed imports in that file.
	stubImports := map[string]map[string]bool{}
	isModule := func(path string) bool {
		return p.ModulePath != "" && (path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/"))
	}
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		names := map[string]bool{}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || isModule(path) {
				continue
			}
			name := path
			if i := strings.LastIndexByte(name, '/'); i >= 0 {
				name = name[i+1:]
			}
			if imp.Name != nil {
				name = imp.Name.Name
			}
			names[name] = true
		}
		stubImports[fname] = names
	}
	var real []error
	for _, err := range p.TypeErrors {
		te, ok := err.(types.Error)
		if !ok {
			real = append(real, err)
			continue
		}
		msg := te.Msg
		fname := te.Fset.Position(te.Pos).Filename
		if rest, ok := strings.CutPrefix(msg, "undefined: "); ok {
			if q, _, found := strings.Cut(rest, "."); found && stubImports[fname][q] {
				continue // selection into a stubbed import
			}
		}
		if strings.HasSuffix(msg, "imported and not used") {
			if q, _, found := strings.Cut(msg, `"`); found && q == "" {
				if path, _, ok := strings.Cut(msg[1:], `"`); ok && !isModule(path) {
					continue // stubbed import whose every selection failed
				}
			}
		}
		real = append(real, err)
	}
	return real
}

// Loader parses and type-checks packages of one Go module from source.
//
// External imports (the standard library and any other module) resolve
// to empty placeholder packages: selections into them fail to
// type-check, which the loader tolerates. Everything defined inside the
// module — constants, functions, methods — gets real types.Info entries,
// including folded constant values, which is all the mdwlint analyzers
// need.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	pkgs    map[string]*Package // by import path, only module-internal
	stubs   map[string]*types.Package
	loading map[string]bool
}

// NewLoader locates the enclosing module by walking up from dir to the
// nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			modPath := modulePath(string(data))
			if modPath == "" {
				return nil, fmt.Errorf("framework: %s/go.mod: no module directive", root)
			}
			return &Loader{
				Fset:       token.NewFileSet(),
				ModuleRoot: root,
				ModulePath: modPath,
				pkgs:       map[string]*Package{},
				stubs:      map[string]*types.Package{},
				loading:    map[string]bool{},
			}, nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("framework: no go.mod found above %s", dir)
		}
		root = parent
	}
}

func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load resolves the given patterns to packages. Supported patterns:
// "./..." (every package under the module root), a relative directory
// ("./internal/store"), or a module import path ("mdw/internal/store").
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var out []*Package
	seen := map[string]bool{}
	add := func(p *Package) {
		if p != nil && !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.walkPackageDirs(l.ModuleRoot)
			if err != nil {
				return nil, err
			}
			for _, dir := range dirs {
				p, err := l.loadDir(dir, l.importPathFor(dir))
				if err != nil {
					return nil, err
				}
				add(p)
			}
		case strings.HasPrefix(pat, l.ModulePath+"/") || pat == l.ModulePath:
			p, err := l.importModulePackage(pat)
			if err != nil {
				return nil, err
			}
			add(p)
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			}
			p, err := l.loadDir(dir, l.importPathFor(dir))
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return out, nil
}

// LoadDir loads the .go files of one directory as a package with a
// synthetic import path — how the analysistest harness loads fixtures
// that live outside the module's package tree.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.loadDir(dir, asPath)
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// loadDir parses and type-checks the package in dir under the given
// import path, caching by path. Load failures (unreadable directory,
// parse errors, no Go files) do not abort the load: they produce a
// Package whose LoadError is set, so one broken package surfaces as a
// diagnostic instead of hiding every other package's findings.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("framework: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	fail := func(err error, pos token.Position) (*Package, error) {
		p := &Package{Path: path, Dir: dir, ModulePath: l.ModulePath, Fset: l.Fset, LoadError: err, LoadErrorPos: pos}
		l.pkgs[path] = p
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fail(err, token.Position{})
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pos := token.Position{Filename: filepath.Join(dir, name)}
			if el, ok := err.(scanner.ErrorList); ok && len(el) > 0 {
				pos = el[0].Pos
				err = fmt.Errorf("%s", el[0].Msg)
			}
			return fail(fmt.Errorf("parse: %w", err), pos)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return fail(fmt.Errorf("no Go files in %s", dir), token.Position{})
	}

	// Load module-internal imports first (depth-first topological order).
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if l.isModulePath(ipath) {
				if _, err := l.importModulePackage(ipath); err != nil {
					return nil, err
				}
			}
		}
	}

	pkg := &Package{
		Path:       path,
		Name:       files[0].Name.Name,
		Dir:        dir,
		ModulePath: l.ModulePath,
		Fset:       l.Fset,
		Files:      files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer:         (*loaderImporter)(l),
		Error:            func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		IgnoreFuncBodies: false,
	}
	tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info) // errors recorded via conf.Error
	if tpkg == nil {
		return nil, fmt.Errorf("framework: type-checking %s produced no package", path)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) isModulePath(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// importModulePackage maps an import path inside the module to its
// directory and loads it.
func (l *Loader) importModulePackage(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	return l.loadDir(dir, path)
}

// loaderImporter adapts the loader to the go/types Importer interface.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		p, err := l.importModulePackage(path)
		if err != nil {
			return nil, err
		}
		if p.LoadError != nil {
			// Propagate so the importing package records a "could not
			// import" type error pointing at the broken dependency.
			return nil, p.LoadError
		}
		return p.Types, nil
	}
	// Stub: an empty, complete package. Selections into it fail to
	// type-check; the per-package Error handler swallows that.
	if s, ok := l.stubs[path]; ok {
		return s, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	s := types.NewPackage(path, name)
	s.MarkComplete()
	l.stubs[path] = s
	return s, nil
}

// constString extracts a folded constant string value.
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
