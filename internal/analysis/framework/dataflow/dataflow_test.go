package dataflow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"mdw/internal/analysis/framework/dataflow"
)

// The test source needs no imports, so it type-checks self-contained.
// assignedUnused and overwritten intentionally leave err unread; the
// resulting "declared and not used" complaints are soft errors that do
// not stop Info collection.
const src = `package p

func fail() error { return nil }

func sink(err error) {}

func discarded() {
	fail()
}

func blank() {
	_ = fail()
}

func assignedUnused() {
	err := fail()
}

func overwritten() error {
	err := fail()
	err = nil
	return nil
}

func consumedCheck() {
	if err := fail(); err != nil {
		return
	}
}

func consumedReturn() error {
	return fail()
}

func consumedArg() {
	sink(fail())
}

func consumedLater() error {
	err := fail()
	sink(err)
	return err
}

func deferred() {
	defer fail()
}
`

var want = map[string]dataflow.Verdict{
	"discarded":      dataflow.Discarded,
	"blank":          dataflow.Discarded,
	"assignedUnused": dataflow.AssignedUnused,
	"overwritten":    dataflow.AssignedUnused,
	"consumedCheck":  dataflow.Consumed,
	"consumedReturn": dataflow.Consumed,
	"consumedArg":    dataflow.Consumed,
	"consumedLater":  dataflow.Consumed,
	"deferred":       dataflow.Discarded,
}

func TestErrResult(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: map[*ast.Ident]types.Object{},
		Uses: map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		// Soft errors (unused variables) are expected; Info is complete.
		t.Logf("type check: %v (continuing)", err)
	}

	checked := 0
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		expect, ok := want[fd.Name.Name]
		if !ok {
			continue
		}
		call := findCall(fd.Body, "fail")
		if call == nil {
			t.Errorf("%s: no call to fail found", fd.Name.Name)
			continue
		}
		path := dataflow.Path(fd.Body, call)
		if path == nil {
			t.Errorf("%s: Path did not locate the call", fd.Name.Name)
			continue
		}
		if got := dataflow.ErrResult(info, fd.Body, path, call); got != expect {
			t.Errorf("%s: verdict = %v, want %v", fd.Name.Name, got, expect)
		}
		checked++
	}
	if checked != len(want) {
		t.Fatalf("checked %d functions, want %d", checked, len(want))
	}
}

func TestPathMissingTarget(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	decls := f.Decls
	first, second := decls[2].(*ast.FuncDecl), decls[3].(*ast.FuncDecl)
	call := findCall(second.Body, "fail")
	if call == nil {
		t.Fatal("no call in second function")
	}
	if got := dataflow.Path(first.Body, call); got != nil {
		t.Fatalf("Path found a target outside its root: %v", got)
	}
}

func findCall(body *ast.BlockStmt, callee string) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == callee {
				out = call
				return false
			}
		}
		return true
	})
	return out
}
