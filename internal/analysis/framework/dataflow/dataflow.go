// Package dataflow answers one intraprocedural question for analyzers
// like syncerr: given a call whose last result is an error, does that
// value observably reach anything — a condition, a return, another
// call, a field — or is it dropped on the floor?
//
// The walk is a reaching-values approximation, deliberately biased
// toward NOT flagging: any read of the assigned variable positioned
// after the assignment counts as consumption, without modeling control
// flow between the two points. That keeps every report trustworthy
// ("this error is never looked at") at the cost of missing convoluted
// cases — the right trade for a linter that gates CI.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Verdict classifies how a call's error result is consumed.
type Verdict int

const (
	// Consumed: the error flows somewhere observable (checked, returned,
	// passed along, stored in a field, …).
	Consumed Verdict = iota
	// Discarded: the call is a bare statement (or assigns the error to
	// the blank identifier) — the error can never be observed.
	Discarded
	// AssignedUnused: the error lands in a variable that is never read
	// afterwards, which is a discard with extra steps.
	AssignedUnused
)

func (v Verdict) String() string {
	switch v {
	case Consumed:
		return "consumed"
	case Discarded:
		return "discarded"
	case AssignedUnused:
		return "assigned but never read"
	default:
		return "verdict?"
	}
}

// ErrResult traces the last (by convention the error) result of call
// inside the enclosing function body. The path must lead from body to
// the call (innermost last), as produced by Path.
func ErrResult(info *types.Info, body *ast.BlockStmt, path []ast.Node, call *ast.CallExpr) Verdict {
	// Find the node directly above the call in the path.
	parentIdx := -1
	for i, n := range path {
		if n == call {
			parentIdx = i - 1
			break
		}
	}
	if parentIdx < 0 {
		return Consumed // call not found or is the root: assume the best
	}
	parent := path[parentIdx]

	switch p := parent.(type) {
	case *ast.ExprStmt:
		return Discarded
	case *ast.GoStmt, *ast.DeferStmt:
		// The result of a go/defer call is unobservable by construction;
		// callers decide whether that is acceptable (syncerr exempts
		// defers explicitly before asking).
		return Discarded
	case *ast.AssignStmt:
		// x, err := f(...) — only when the call is the sole RHS does the
		// last LHS receive the error.
		if len(p.Rhs) != 1 || p.Rhs[0] != call || len(p.Lhs) == 0 {
			return Consumed
		}
		last := p.Lhs[len(p.Lhs)-1]
		id, ok := last.(*ast.Ident)
		if !ok {
			return Consumed // field or index target: stored somewhere real
		}
		if id.Name == "_" {
			return Discarded
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return Consumed
		}
		if UsedAfter(info, body, v, p.End()) {
			return Consumed
		}
		return AssignedUnused
	default:
		// Argument position, return statement, condition, composite
		// literal, channel send, … — the value flows onward.
		return Consumed
	}
}

// UsedAfter reports whether variable v is read at any position after
// pos inside body. Appearances as a plain assignment target (`v = …`)
// do not count — overwriting is not reading — but compound uses on a
// RHS, in conditions, returns, or arguments do.
func UsedAfter(info *types.Info, body *ast.BlockStmt, v *types.Var, pos token.Pos) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
			// Walk RHS and non-ident LHS only; a bare `v = x` target is
			// an overwrite, not a read.
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok && info.Uses[id] == v {
					continue
				}
				if inspectUse(info, l, v, pos) {
					used = true
				}
			}
			for _, r := range as.Rhs {
				if inspectUse(info, r, v, pos) {
					used = true
				}
			}
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Pos() > pos && info.Uses[id] == v {
			used = true
		}
		return true
	})
	return used
}

func inspectUse(info *types.Info, e ast.Expr, v *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Pos() > pos && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// Path returns the chain of AST nodes from root down to target
// (inclusive at both ends), or nil if target is not under root.
func Path(root ast.Node, target ast.Node) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			found = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return found
}
