// Package syncerr guards the durability contract: an fsync error that
// nobody looks at is silent data loss. The WAL promises that an
// acknowledged mutation survives a crash — but only if every error from
// Write/WriteString/Sync/Flush/Close on the files underneath it is
// checked and propagated. POSIX makes this unforgiving: a failed fsync
// may drop the dirty pages, so the NEXT fsync can succeed while the
// data is already gone. The one place the failure is observable is the
// return value at the call site.
//
// Two layers of checking:
//
//   - Primitive sinks. A call to Write/WriteString/Sync/Flush/Close on
//     a value syncerr can trace to an *os.File or *bufio.Writer
//     (declared type, or assigned from os.Open/Create/OpenFile/
//     CreateTemp/NewFile or bufio.NewWriter*) must consume its error.
//   - Propagated errors. A module function whose returned error can
//     carry a sink failure is marked with the DurableErr object fact;
//     the fact flows through the call graph bottom-up (helpers in the
//     same package, then across packages in import order), and every
//     call to a marked function must consume its error too. This is
//     how `wal.sync()` inside internal/durable obligates
//     `Manager.Sync()` callers in cmd/mdwd.
//
// Consumption is judged by the framework's reaching-values walk
// (internal/analysis/framework/dataflow). Two idioms are exempt:
// discards anywhere under a defer (deferred cleanup has no error path
// of its own), and a discarded Close immediately followed by a return
// that already carries an error (closing a temp file on the failure
// path — the original error is the one that matters).
package syncerr

import (
	"go/ast"
	"go/types"
	"strings"

	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/framework/dataflow"
)

// Analyzer is the syncerr framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name: "syncerr",
	Doc: "errors from durable Write/Sync/Close/Flush must be checked\n\n" +
		"Discarding the error of a file write, fsync, flush, or close —\n" +
		"directly or through a function that propagates one — is silent\n" +
		"durability loss.",
	Run:       run,
	FactTypes: []framework.Fact{(*DurableErr)(nil)},
}

// DurableErr marks a function whose returned error can carry a failed
// durable write/sync/flush/close.
type DurableErr struct{}

// AFact marks DurableErr as a framework fact.
func (*DurableErr) AFact() {}

// sinkOps are the io methods whose errors carry durability failures.
var sinkOps = map[string]bool{
	"Write": true, "WriteString": true, "Sync": true, "Flush": true, "Close": true,
}

func run(pass *framework.Pass) error {
	fileFields := collectFileFields(pass)

	type funcInfo struct {
		decl  *ast.FuncDecl
		obj   *types.Func
		sinks []*ast.CallExpr
		calls []*ast.CallExpr // calls to module functions, for fact propagation & checking
	}
	var funcs []*funcInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fi := &funcInfo{decl: fd, obj: obj}
			fileVars := collectFileVars(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isSinkCall(pass, call, fileVars, fileFields) {
					fi.sinks = append(fi.sinks, call)
				} else if callee := moduleCallee(pass, call); callee != nil {
					fi.calls = append(fi.calls, call)
				}
				return true
			})
			funcs = append(funcs, fi)
		}
	}

	// Fact fixpoint within the package: a function returning an error
	// that contains a sink — or a call to an already-marked function —
	// carries DurableErr. Facts from imported packages are already in
	// the store (packages run in dependency order).
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.obj == nil || !returnsError(pass, fi.decl) {
				continue
			}
			if pass.ImportObjectFact(fi.obj, &DurableErr{}) {
				continue
			}
			durable := len(fi.sinks) > 0
			if !durable {
				for _, call := range fi.calls {
					if callee := moduleCallee(pass, call); callee != nil && pass.ImportObjectFact(callee, &DurableErr{}) {
						durable = true
						break
					}
				}
			}
			if durable {
				pass.ExportObjectFact(fi.obj, &DurableErr{})
				changed = true
			}
		}
	}

	// Check consumption at every sink and every durable-function call.
	for _, fi := range funcs {
		for _, call := range fi.sinks {
			checkCall(pass, fi.decl, call, calleeName(call))
		}
		for _, call := range fi.calls {
			callee := moduleCallee(pass, call)
			if callee == nil || !pass.ImportObjectFact(callee, &DurableErr{}) {
				continue
			}
			checkCall(pass, fi.decl, call, callee.Name())
		}
	}
	return nil
}

// checkCall reports the call if its error result is discarded.
func checkCall(pass *framework.Pass, fd *ast.FuncDecl, call *ast.CallExpr, name string) {
	path := dataflow.Path(fd.Body, call)
	if path == nil || underDefer(path) {
		return
	}
	verdict := dataflow.ErrResult(pass.TypesInfo, fd.Body, path, call)
	if verdict == dataflow.Consumed {
		return
	}
	if isCloseOnErrorPath(path, call, name) {
		return
	}
	pass.Reportf(call.Pos(), "error from %s is %s; a dropped durable-write error is silent data loss — check and propagate it",
		name, verdict)
}

// underDefer reports whether any ancestor of the call is a defer — the
// deferred-cleanup exemption.
func underDefer(path []ast.Node) bool {
	for _, n := range path {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// isCloseOnErrorPath recognizes `f.Close(); return …, err`: discarding
// a Close error while already returning one is sanctioned cleanup.
func isCloseOnErrorPath(path []ast.Node, call *ast.CallExpr, name string) bool {
	if op, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); !ok || op.Sel.Name != "Close" {
		if !strings.EqualFold(name, "Close") {
			return false
		}
	}
	// Locate the statement holding the call and its enclosing block.
	var stmt ast.Stmt
	var block *ast.BlockStmt
	for i := len(path) - 1; i >= 0; i-- {
		if s, ok := path[i].(ast.Stmt); ok && stmt == nil {
			if _, isBlock := s.(*ast.BlockStmt); !isBlock {
				stmt = s
				continue
			}
		}
		if b, ok := path[i].(*ast.BlockStmt); ok && stmt != nil {
			block = b
			break
		}
	}
	if stmt == nil || block == nil {
		return false
	}
	for i, s := range block.List {
		if s != stmt || i+1 >= len(block.List) {
			continue
		}
		ret, ok := block.List[i+1].(*ast.ReturnStmt)
		if !ok {
			return false
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok && id.Name != "nil" {
				return true
			}
		}
		return false
	}
	return false
}

// returnsError reports whether the function's last result is the
// builtin error type (syntactically — reliable even where stub types
// leave the signature partially invalid).
func returnsError(pass *framework.Pass, fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	last := res.List[len(res.List)-1].Type
	id, ok := last.(*ast.Ident)
	return ok && id.Name == "error"
}

// moduleCallee resolves a call to a function or method declared in the
// module (nil for stubs, builtins, conversions, function values).
func moduleCallee(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			obj = sel.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// collectFileFields returns the objects of struct fields declared in
// this package with a file-like type (*os.File, *bufio.Writer, …).
func collectFileFields(pass *framework.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !isFileType(pass, field.Type) {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
	}
	return out
}

// collectFileVars returns the objects of parameters and locals of fd
// that hold file-like values: declared with a file-like type, or
// assigned from a file-producing constructor.
func collectFileVars(pass *framework.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if !isFileType(pass, field.Type) {
				continue
			}
			for _, name := range field.Names {
				mark(name)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// f, err := os.OpenFile(...) — first LHS is the file.
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isFileConstructor(pass, call) {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						mark(id)
					}
				}
			}
		case *ast.ValueSpec:
			if isFileType(pass, n.Type) {
				for _, name := range n.Names {
					mark(name)
				}
			}
		}
		return true
	})
	return out
}

// isFileType matches the syntactic types (*)os.File and (*)bufio.Writer
// (plus bufio.ReadWriter), verified against the real import paths.
func isFileType(pass *framework.Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "os":
		return sel.Sel.Name == "File"
	case "bufio":
		return sel.Sel.Name == "Writer" || sel.Sel.Name == "ReadWriter"
	}
	return false
}

// isFileConstructor matches os.Open/OpenFile/Create/CreateTemp/NewFile
// and bufio.NewWriter/NewWriterSize.
func isFileConstructor(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "os":
		switch sel.Sel.Name {
		case "Open", "OpenFile", "Create", "CreateTemp", "NewFile":
			return true
		}
	case "bufio":
		switch sel.Sel.Name {
		case "NewWriter", "NewWriterSize":
			return true
		}
	}
	return false
}

// isSinkCall matches <filelike>.Write/WriteString/Sync/Flush/Close().
func isSinkCall(pass *framework.Pass, call *ast.CallExpr, fileVars, fileFields map[types.Object]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sinkOps[sel.Sel.Name] {
		return false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[recv]
		return obj != nil && fileVars[obj]
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[recv.Sel]
		return obj != nil && fileFields[obj]
	}
	return false
}
