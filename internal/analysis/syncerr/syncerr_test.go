package syncerr_test

import (
	"testing"

	"mdw/internal/analysis/framework/analysistest"
	"mdw/internal/analysis/syncerr"
)

func TestSyncerr(t *testing.T) {
	analysistest.RunModule(t, ".", syncerr.Analyzer, "propagate")
}
