// Package app consumes the DurableErr fact exported while analyzing
// package wal: dropping the propagated error is the same bug one level
// up.
package app

import "propagate/wal"

// Persist discards a durability error received through the fact.
func Persist(l *wal.Log, rec []byte) {
	l.Flush() // want `error from Flush is discarded`
}

// Run propagates properly.
func Run(l *wal.Log) error {
	return l.Flush()
}
