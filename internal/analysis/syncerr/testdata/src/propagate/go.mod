module propagate

go 1.21
