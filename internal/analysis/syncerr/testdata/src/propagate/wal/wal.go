// Package wal exercises direct sink checking: discarded writes are
// reported, checked ones are not, and the defer / close-on-error-path
// idioms are exempt.
package wal

import (
	"bufio"
	"os"
)

type Log struct {
	f  *os.File
	bw *bufio.Writer
}

// Append drops the buffered write's error on the floor.
func (l *Log) Append(rec []byte) {
	l.bw.Write(rec) // want `error from Write is discarded`
}

// Flush checks everything and so becomes a DurableErr carrier.
func (l *Log) Flush() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Write closes on the error path while returning the original error —
// the sanctioned cleanup shape.
func (l *Log) Write(rec []byte) error {
	if _, err := l.bw.Write(rec); err != nil {
		l.f.Close()
		return err
	}
	return nil
}

// CloseQuietly discards under defer, which is exempt by rule.
func (l *Log) CloseQuietly() {
	defer l.f.Close()
}

// Drop assigns the close error to the blank identifier.
func (l *Log) Drop() {
	_ = l.f.Close() // want `error from Close is discarded`
}

// Snapshot tracks locals assigned from os constructors.
func Snapshot(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Write(data) // want `error from f.Write is discarded`
	return f.Close()
}
