package locksafe_test

import (
	"testing"

	"mdw/internal/analysis/framework/analysistest"
	"mdw/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, ".", locksafe.Analyzer, "a", "b")
}
