// Package locksafe guards the repository's coarse-grained locking
// style. Store, textindex.Manager, and friends each protect their state
// with a single sync.Mutex/sync.RWMutex field and take it at the top of
// every exported method. That style has one classic failure mode: while
// holding the lock, control reaches back into an exported method of the
// same receiver (directly, or through a caller-supplied callback), which
// tries to take the lock again. sync.RWMutex is not reentrant — a
// recursive RLock can deadlock against a writer queued in between, and a
// recursive Lock always deadlocks.
//
// For every method of a mutex-bearing struct, locksafe computes whether
// it may acquire the receiver's mutex (directly or transitively through
// same-receiver calls) and then, inside each method's locked region,
// reports:
//
//   - calls to same-receiver methods that may acquire the mutex again
//   - calls through function values (callbacks) — the callee is outside
//     this package's control and may re-enter the receiver
//   - channel sends — they block for an unbounded time with the lock held
//
// Intentional callback-under-lock APIs (e.g. Store.ForEach, whose
// contract documents the held read lock) are suppressed at the call
// site with //mdwlint:allow locksafe <reason>.
package locksafe

import (
	"go/ast"
	"go/types"

	"mdw/internal/analysis/framework"
)

// Analyzer is the locksafe framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name: "locksafe",
	Doc: "flag lock re-entry hazards in mutex-bearing structs\n\n" +
		"Reports same-receiver calls that can re-acquire the held mutex,\n" +
		"callback invocations under the lock, and channel sends under the lock.",
	Run: run,
}

// mutexField captures "this struct type has a mutex field named mu".
type mutexField struct {
	typeName string // struct type name
	field    string // mutex field name
}

// method is one FuncDecl on a mutex-bearing receiver.
type method struct {
	decl     *ast.FuncDecl
	typeName string
	recvName string // receiver identifier, "" if anonymous
}

func run(pass *framework.Pass) error {
	mutexes := map[string][]string{} // type name -> mutex field names
	var methods []method
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				for _, mf := range structMutexFields(d) {
					mutexes[mf.typeName] = append(mutexes[mf.typeName], mf.field)
				}
			case *ast.FuncDecl:
				if m, ok := receiverOf(d); ok {
					methods = append(methods, m)
				}
			}
		}
	}
	if len(mutexes) == 0 {
		return nil
	}

	// mayLock[type][method] — the method can acquire a receiver mutex,
	// directly or through same-receiver calls. Fixed point over the
	// call graph restricted to same-receiver edges.
	mayLock := map[string]map[string]bool{}
	for t := range mutexes {
		mayLock[t] = map[string]bool{}
	}
	for _, m := range methods {
		fields := mutexes[m.typeName]
		if len(fields) == 0 {
			continue
		}
		if len(lockCalls(m, fields, false)) > 0 {
			mayLock[m.typeName][m.decl.Name.Name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			tbl := mayLock[m.typeName]
			if tbl == nil || tbl[m.decl.Name.Name] {
				continue
			}
			for _, callee := range sameReceiverCalls(m) {
				if tbl[callee.name] {
					tbl[m.decl.Name.Name] = true
					changed = true
					break
				}
			}
		}
	}

	for _, m := range methods {
		fields := mutexes[m.typeName]
		if len(fields) == 0 {
			continue
		}
		checkMethod(pass, m, fields, mayLock[m.typeName])
	}
	return nil
}

// structMutexFields scans a type declaration for sync.Mutex /
// sync.RWMutex fields (value or pointer). Detection is syntactic: the
// analysis loader stubs the sync package, so the field's type object
// carries no usable information.
func structMutexFields(d *ast.GenDecl) []mutexField {
	var out []mutexField
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, f := range st.Fields.List {
			if !isMutexType(f.Type) {
				continue
			}
			for _, name := range f.Names {
				out = append(out, mutexField{typeName: ts.Name.Name, field: name.Name})
			}
		}
	}
	return out
}

func isMutexType(e ast.Expr) bool {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "sync" {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

func receiverOf(d *ast.FuncDecl) (method, bool) {
	if d.Recv == nil || len(d.Recv.List) != 1 || d.Body == nil {
		return method{}, false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return method{}, false
	}
	m := method{decl: d, typeName: id.Name}
	if names := d.Recv.List[0].Names; len(names) == 1 {
		m.recvName = names[0].Name
	}
	return m, ok
}

// lockCall is one recv.mu.Lock()/RLock()/Unlock()/RUnlock() call.
type lockCall struct {
	call     *ast.CallExpr
	op       string // Lock, RLock, Unlock, RUnlock
	deferred bool
}

// lockCalls finds calls on the receiver's mutex fields inside the
// method body. With unlocks=true it returns the releases instead of the
// acquisitions.
func lockCalls(m method, fields []string, unlocks bool) []lockCall {
	if m.recvName == "" {
		return nil
	}
	var out []lockCall
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[ds.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := mutexOp(call, m.recvName, fields)
		if !ok {
			return true
		}
		isUnlock := op == "Unlock" || op == "RUnlock"
		if isUnlock == unlocks {
			out = append(out, lockCall{call: call, op: op, deferred: deferredCalls[call]})
		}
		return true
	})
	return out
}

// mutexOp matches recv.<field>.<op>() and returns the op name.
func mutexOp(call *ast.CallExpr, recvName string, fields []string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "RLock" && op != "Unlock" && op != "RUnlock" {
		return "", false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv, ok := inner.X.(*ast.Ident)
	if !ok || recv.Name != recvName {
		return "", false
	}
	for _, f := range fields {
		if inner.Sel.Name == f {
			return op, true
		}
	}
	return "", false
}

// callee is a same-receiver method call site.
type callee struct {
	name string
	call *ast.CallExpr
}

// sameReceiverCalls finds recv.Method(...) calls in the method body,
// excluding mutex operations.
func sameReceiverCalls(m method) []callee {
	if m.recvName == "" {
		return nil
	}
	var out []callee
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok || recv.Name != m.recvName {
			return true
		}
		out = append(out, callee{name: sel.Sel.Name, call: call})
		return true
	})
	return out
}

// checkMethod reports hazards inside the method's locked region: from
// the first mutex acquisition to the first explicit (non-deferred)
// release, or the end of the body when the release is deferred.
func checkMethod(pass *framework.Pass, m method, fields []string, mayLock map[string]bool) {
	acquires := lockCalls(m, fields, false)
	if len(acquires) == 0 {
		return
	}
	start := acquires[0].call.End()
	end := m.decl.Body.End()
	for _, rel := range lockCalls(m, fields, true) {
		if !rel.deferred && rel.call.Pos() > start && rel.call.Pos() < end {
			end = rel.call.Pos()
		}
	}
	lockName := m.recvName + "." + fields[0]

	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		if n == nil || n.Pos() < start || n.Pos() >= end {
			return true
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while %s holds %s; the send can block indefinitely with the lock held", m.decl.Name.Name, lockName)
		case *ast.CallExpr:
			if _, isMu := mutexOp(n, m.recvName, fields); isMu {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if recv, ok := sel.X.(*ast.Ident); ok && recv.Name == m.recvName && mayLock[sel.Sel.Name] {
					pass.Reportf(n.Pos(), "%s calls %s.%s while holding %s; %s acquires the same mutex and can self-deadlock",
						m.decl.Name.Name, m.recvName, sel.Sel.Name, lockName, sel.Sel.Name)
				}
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && isFuncValue(pass, id) {
				pass.Reportf(n.Pos(), "%s invokes callback %s while holding %s; the callback can re-enter the receiver and deadlock", m.decl.Name.Name, id.Name, lockName)
			}
		}
		return true
	})
}

// isFuncValue reports whether the identifier names a function-valued
// variable (parameter, local, closure capture) rather than a declared
// function, builtin, or type.
func isFuncValue(pass *framework.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	_, ok := obj.(*types.Var)
	return ok
}
