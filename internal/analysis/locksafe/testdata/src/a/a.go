// Package a exercises locksafe diagnostics: lock re-entry through a
// same-receiver call (direct and transitive), a callback invoked under
// the lock, and a channel send under the lock.
package a

import "sync"

type Reg struct {
	mu   sync.RWMutex
	vals map[string]int
}

func (r *Reg) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.vals[k]
}

// Sum re-enters Get while already holding the read lock: an RLock held
// twice deadlocks as soon as a writer queues between the two.
func (r *Reg) Sum(ks []string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, k := range ks {
		total += r.Get(k) // want `Sum calls r.Get while holding r.mu`
	}
	return total
}

// doubled takes no lock itself but calls Get, so it may lock
// transitively.
func (r *Reg) doubled(k string) int {
	return 2 * r.Get(k)
}

func (r *Reg) Both(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doubled(k) // want `Both calls r.doubled while holding r.mu`
}

// Each hands control to an arbitrary callback while the lock is held.
func (r *Reg) Each(fn func(string, int) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, v := range r.vals {
		if !fn(k, v) { // want `Each invokes callback fn while holding r.mu`
			return
		}
	}
}

// Publish blocks on an unbuffered channel with the write lock held.
func (r *Reg) Publish(ch chan string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.vals {
		ch <- k // want `channel send while Publish holds r.mu`
	}
}
