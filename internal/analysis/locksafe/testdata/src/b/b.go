// Package b holds lock usage that locksafe must accept: non-locking
// helpers under the lock, locking calls after an explicit unlock, a
// waived callback contract, and mutex-free types.
package b

import "sync"

type Reg struct {
	mu   sync.Mutex
	vals map[string]int
}

// get never touches the mutex; calling it under the lock is the
// intended "Locked helper" pattern.
func (r *Reg) get(k string) int { return r.vals[k] }

func (r *Reg) Get(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(k)
}

// Snapshot releases explicitly before returning; nothing after the
// Unlock is in the locked region.
func (r *Reg) Snapshot() map[string]int {
	r.mu.Lock()
	out := make(map[string]int, len(r.vals))
	for k, v := range r.vals {
		out[k] = v
	}
	r.mu.Unlock()
	return out
}

// GetTwice calls the locking Get only after the explicit Unlock.
func (r *Reg) GetTwice(k string) int {
	r.mu.Lock()
	v := r.vals[k]
	r.mu.Unlock()
	return v + r.Get(k)
}

// Each documents its callback-under-lock contract and waives the
// diagnostic explicitly.
func (r *Reg) Each(fn func(string, int) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.vals {
		if !fn(k, v) { //mdwlint:allow locksafe documented contract: fn must not call Reg methods
			return
		}
	}
}

// plain has no mutex field; its callback use is nobody's business.
type plain struct{ vals []int }

func (p *plain) Sum(fn func(int) int) int {
	t := 0
	for _, v := range p.vals {
		t += fn(v)
	}
	return t
}
