// Package a exercises sparqlcheck diagnostics: malformed constant
// queries at every entry point.
package a

import (
	"mdw/internal/core"
	"mdw/internal/semmatch"
	"mdw/internal/sparql"
	"mdw/internal/store"
)

// brokenListing2 is the paper's Listing 2 lineage query with the
// closing brace of the group pattern dropped — the typo class
// sparqlcheck exists to catch.
const brokenListing2 = `
PREFIX dt: <http://www.credit-suisse.com/dwh/mdm/data_transfer#>
SELECT ?src
WHERE {
  ?src dt:isMappedTo+ ?tgt .
`

// brokenSemMatch drops the object of the second triple pattern.
const brokenSemMatch = `SEM_MATCH(
  {?s dt:isMappedTo ?t . ?t dm:hasName },
  SEM_MODELS('DWH_CURR'),
  SEM_RULEBASES('OWLPRIME'),
  null)`

// noPatternCall has no {...} graph pattern at all.
const noPatternCall = `SEM_MATCH(SEM_MODELS('DWH_CURR'), null)`

func useBroken() {
	_ = sparql.MustParse(brokenListing2) // want `unterminated group pattern`
}

func unboundPrefix() (*sparql.Query, error) {
	return sparql.Parse(`SELECT ?x WHERE { ?x foo:bar ?y }`) // want `unknown prefix`
}

func badKeyword() {
	_, _ = sparql.Parse("SELECTT ?x WHERE { ?x ?p ?o }") // want `unexpected identifier`
}

func badSemMatch(st *store.Store) {
	_, _ = semmatch.Exec(st, brokenSemMatch) // want `does not parse`
}

func noPattern() {
	_, _ = semmatch.ParseCall(noPatternCall) // want `missing graph pattern`
}

func facadeBroken(w *core.Warehouse) {
	_, _ = w.Query(`SELECT ?x WHERE { ?x `) // want `does not parse`
}

// cartesianQuery joins two patterns sharing no variable: a cartesian
// product no join order can avoid.
const cartesianQuery = `
PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
SELECT ?a ?c
WHERE {
  ?a dm:hasName ?b .
  ?c dm:hasDataType ?d .
}
`

func cartesian() {
	_ = sparql.MustParse(cartesianQuery) // want `cartesian product`
}

// cartesianSemMatchCall joins two patterns sharing no variable inside a
// SEM_MATCH graph pattern.
const cartesianSemMatchCall = `SEM_MATCH(
	{?s dt:isMappedTo ?t . ?x dm:hasName ?n},
	SEM_MODELS('DWH_CURR'),
	SEM_RULEBASES('OWLPRIME'),
	null)`

func cartesianSemMatch(st *store.Store) {
	_, _ = semmatch.Exec(st, cartesianSemMatchCall) // want `cartesian product`
}
