// Package b holds well-formed queries: sparqlcheck must stay silent.
package b

import (
	"mdw/internal/semmatch"
	"mdw/internal/sparql"
	"mdw/internal/store"
)

// listing1 mirrors the paper's search query: concept members by name.
const listing1 = `
PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
SELECT ?item
WHERE {
  ?item a dm:Customer .
  ?item dm:hasName ?name .
  FILTER (CONTAINS(LCASE(?name), "customer"))
}
`

// listing2 mirrors the paper's lineage query with a property-path
// closure over dt:isMappedTo.
const listing2 = `
PREFIX dt: <http://www.credit-suisse.com/dwh/mdm/data_transfer#>
SELECT DISTINCT ?src
WHERE {
  ?src dt:isMappedTo+ ?tgt .
}
`

// paperCall is a SEM_MATCH invocation in the listings' style.
const paperCall = `SEM_MATCH(
  {?s dt:isMappedTo ?t . ?s dm:hasName ?n},
  SEM_MODELS('DWH_CURR'),
  SEM_RULEBASES('OWLPRIME'),
  SEM_ALIASES(SEM_ALIAS('dm', 'http://www.credit-suisse.com/dwh/mdm/data_modeling#'),
              SEM_ALIAS('dt', 'http://www.credit-suisse.com/dwh/mdm/data_transfer#')),
  null)`

func good() {
	_ = sparql.MustParse(listing1)
	_ = sparql.MustParse(listing2)
}

func goodSemMatch(st *store.Store) {
	_, _ = semmatch.Exec(st, paperCall)
}

// dynamic queries are out of sparqlcheck's reach and must not be
// reported (mustparse polices the MustParse case separately).
func dynamic(q string) (*sparql.Query, error) {
	return sparql.Parse(q)
}
