// Package sparqlcheck validates the constant query strings the
// warehouse embeds in Go source. Every constant argument of a query
// entry point — sparql.Parse, sparql.MustParse, the semmatch
// SEM_MATCH front ends, and the core.Warehouse façade methods — is
// parsed at lint time with the repository's own SPARQL parser, so a
// malformed Listing 1/2 query or an unbound prefix fails the build
// instead of the first production request that reaches it.
package sparqlcheck

import (
	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/queryutil"
	"mdw/internal/semmatch"
	"mdw/internal/sparql"
)

// Analyzer is the sparqlcheck framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name: "sparqlcheck",
	Doc: "parse constant SPARQL queries and SEM_MATCH calls at lint time\n\n" +
		"Constant strings passed to sparql.Parse/MustParse, semmatch.Exec/ParseCall,\n" +
		"and Warehouse.Query/QueryFacts/SemMatch are parsed with internal/sparql;\n" +
		"syntax errors and unbound prefixes become diagnostics. Queries that parse\n" +
		"are planned, and structural problems the planner notices — basic graph\n" +
		"patterns that fall apart into variable-disjoint components (cartesian\n" +
		"products) — are reported too.",
	Run: run,
}

func run(pass *framework.Pass) error {
	queryutil.ConstQueryCalls(pass, func(site queryutil.CallSite) {
		switch site.Kind {
		case queryutil.KindSPARQL:
			q, err := sparql.Parse(site.Text)
			if err != nil {
				pass.Reportf(site.Arg.Pos(), "constant query passed to %s does not parse: %v", site.Fn, err)
				return
			}
			reportPlanWarnings(pass, site, q)
		case queryutil.KindSemMatch:
			req, err := semmatch.ParseCall(site.Text)
			if err != nil {
				pass.Reportf(site.Arg.Pos(), "constant SEM_MATCH call passed to %s is malformed: %v", site.Fn, err)
				return
			}
			q, err := sparql.Parse(req.QueryText())
			if err != nil {
				pass.Reportf(site.Arg.Pos(), "graph pattern of SEM_MATCH call passed to %s does not parse: %v", site.Fn, err)
				return
			}
			reportPlanWarnings(pass, site, q)
		}
	}, nil)
	return nil
}

// reportPlanWarnings plans the query without data (static heuristics)
// and surfaces the planner's structural warnings at the call site.
func reportPlanWarnings(pass *framework.Pass, site queryutil.CallSite, q *sparql.Query) {
	for _, w := range q.Plan(nil, nil).Warnings() {
		pass.Reportf(site.Arg.Pos(), "constant query passed to %s: %s", site.Fn, w)
	}
}
