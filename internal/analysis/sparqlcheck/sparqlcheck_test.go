package sparqlcheck_test

import (
	"testing"

	"mdw/internal/analysis/framework/analysistest"
	"mdw/internal/analysis/sparqlcheck"
)

func TestSparqlcheck(t *testing.T) {
	analysistest.Run(t, ".", sparqlcheck.Analyzer, "a", "b")
}
