// Package base releases Store.mu before notifying, so the only
// cross-lock edge in this module points one way.
package base

import "sync"

type Notifier interface{ Notify() }

type Store struct {
	mu sync.Mutex
	n  Notifier
}

func (s *Store) Put(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.n.Notify()
}

func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 0
}
