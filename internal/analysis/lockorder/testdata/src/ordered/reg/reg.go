// Package reg acquires Registry.mu before Store.mu everywhere; a
// consistent order is exactly what lockorder wants to see. initMu
// exercises package-level mutex vars.
package reg

import (
	"sync"

	"ordered/base"
)

var initMu sync.Mutex

func Init() {
	initMu.Lock()
	defer initMu.Unlock()
}

type Registry struct {
	mu sync.Mutex
	s  *base.Store
}

// Notify implements base.Notifier without touching Registry.mu.
func (r *Registry) Notify() {}

func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s.Len()
}
