module ordered

go 1.21
