// Package base holds Store.mu and fires a Notifier while holding it —
// one half of a cross-package lock cycle closed in package reg through
// the interface dispatch.
package base

import "sync"

type Notifier interface{ Notify() }

type Store struct {
	mu sync.Mutex
	n  Notifier
}

func (s *Store) Put(v int) {
	s.mu.Lock()
	s.n.Notify() // want `lock ordering cycle`
	s.mu.Unlock()
}

func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 0
}
