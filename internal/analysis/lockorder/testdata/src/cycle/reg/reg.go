// Package reg closes the cycle: Size holds Registry.mu while calling
// Store.Len (which takes Store.mu), and Notify — reached from
// Store.Put under Store.mu — takes Registry.mu.
package reg

import (
	"sync"

	"cycle/base"
)

type Registry struct {
	mu sync.Mutex
	s  *base.Store
}

// Notify implements base.Notifier.
func (r *Registry) Notify() {
	r.mu.Lock()
	defer r.mu.Unlock()
}

func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s.Len()
}
