module cycle

go 1.21
