package lockorder_test

import (
	"testing"

	"mdw/internal/analysis/framework/analysistest"
	"mdw/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.RunModule(t, ".", lockorder.Analyzer, "cycle", "ordered")
}
