// Package lockorder checks that the program's mutexes are always
// acquired in one global order. locksafe (same-receiver re-entry) and
// lockorder split the deadlock space between them: locksafe owns "this
// lock taken twice", lockorder owns "lock A held while taking lock B,
// elsewhere B held while taking A" — the classic cross-component
// deadlock that needs two goroutines and is invisible to any
// single-package analysis.
//
// Mechanics: each package run records (1) every sync.Mutex/RWMutex
// field and package-level mutex var (syntactic — the loader stubs
// sync), (2) every acquire/release on a resolvable mutex owner, keyed
// by a program-wide lock identity (owner package, type, field), and
// (3) the locked regions (acquire to first non-deferred release of the
// same lock, else end of body). The Finish hook then computes, over the
// shared call graph, the may-acquire set of every function (direct
// acquires plus everything reachable callees may take, interface
// dispatch included), projects each locked region onto the calls it
// contains to produce held→taken edges, and reports every strongly
// connected component of two or more locks as an ordering cycle, once,
// at the first edge that closes it.
//
// Re-acquiring the SAME lock is deliberately not reported here — that
// is locksafe's finding, with receiver-level precision this
// whole-program pass cannot match.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/framework/callgraph"
)

// Analyzer is the lockorder framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "mutexes must be acquired in a consistent global order\n\n" +
		"Builds the program-wide held-while-acquiring graph from locked\n" +
		"regions and the call graph; any cycle between distinct locks is a\n" +
		"potential deadlock.",
	Run:    run,
	Finish: finish,
}

// lockID names one mutex program-wide: the package and type that own
// the field, or just the package for a package-level mutex var.
type lockID struct {
	pkg   string
	typ   string // "" for a package-level var
	field string
}

func (id lockID) String() string {
	pkg := id.pkg
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	if id.typ == "" {
		return pkg + "." + id.field
	}
	return pkg + "." + id.typ + "." + id.field
}

// acquire is one Lock/RLock call on a resolved mutex.
type acquire struct {
	id       lockID
	call     *ast.CallExpr
	deferred bool
}

// region is one locked span inside a function body.
type region struct {
	id         lockID
	start, end token.Pos
	fn         *ast.FuncDecl
}

type state struct {
	// declared mutexes: validated against in Finish so a stray
	// x.y.Lock() on a non-mutex never becomes a lock node.
	mutexes map[lockID]bool
	// direct acquires per declaring function (may-acquire seeds).
	acquires map[*ast.FuncDecl][]acquire
	regions  []region
}

func getState(pass *framework.Pass) *state {
	return pass.Prog.Memo("lockorder.state", func() any {
		return &state{mutexes: map[lockID]bool{}, acquires: map[*ast.FuncDecl][]acquire{}}
	}).(*state)
}

func run(pass *framework.Pass) error {
	st := getState(pass)

	// Mutex declarations: struct fields and package-level vars.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st_, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st_.Fields.List {
						if !isMutexType(field.Type) {
							continue
						}
						for _, name := range field.Names {
							st.mutexes[lockID{pass.Path, spec.Name.Name, name.Name}] = true
						}
					}
				case *ast.ValueSpec:
					if !isMutexType(spec.Type) {
						continue
					}
					for _, name := range spec.Names {
						st.mutexes[lockID{pass.Path, "", name.Name}] = true
					}
				}
			}
		}
	}

	// Acquires, releases, and locked regions per function.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var acqs []acquire
			type release struct {
				id  lockID
				pos token.Pos
			}
			var rels []release
			deferred := map[*ast.CallExpr]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if ds, ok := n.(*ast.DeferStmt); ok {
					deferred[ds.Call] = true
					return true
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, op, ok := lockTarget(pass, call)
				if !ok {
					return true
				}
				switch op {
				case "Lock", "RLock":
					acqs = append(acqs, acquire{id: id, call: call, deferred: deferred[call]})
				case "Unlock", "RUnlock":
					if !deferred[call] {
						rels = append(rels, release{id: id, pos: call.Pos()})
					}
				}
				return true
			})
			if len(acqs) == 0 {
				continue
			}
			st.acquires[fd] = acqs
			for _, a := range acqs {
				if a.deferred {
					continue
				}
				end := fd.Body.End()
				for _, r := range rels {
					if r.id == a.id && r.pos > a.call.End() && r.pos < end {
						end = r.pos
					}
				}
				st.regions = append(st.regions, region{id: a.id, start: a.call.End(), end: end, fn: fd})
			}
		}
	}
	return nil
}

// lockTarget matches <expr>.<field>.<op>() and <mutexVar>.<op>() where
// op is Lock/RLock/Unlock/RUnlock, and resolves the owner to a lockID.
// Validity (is that field really a mutex?) is checked in Finish against
// the declaration table, so resolution here can be generous.
func lockTarget(pass *framework.Pass, call *ast.CallExpr) (lockID, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockID{}, "", false
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "RLock" && op != "Unlock" && op != "RUnlock" {
		return lockID{}, "", false
	}
	switch owner := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// x.mu.Lock(): the owner is the type of x, which is a module type
		// and therefore fully resolved even under import stubbing.
		tv, ok := pass.TypesInfo.Types[owner.X]
		if !ok || tv.Type == nil {
			return lockID{}, "", false
		}
		t := tv.Type
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return lockID{}, "", false
		}
		return lockID{named.Obj().Pkg().Path(), named.Obj().Name(), owner.Sel.Name}, op, true
	case *ast.Ident:
		// mu.Lock() on a package-level mutex var.
		obj := pass.TypesInfo.Uses[owner]
		if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return lockID{}, "", false
		}
		return lockID{obj.Pkg().Path(), "", obj.Name()}, op, true
	}
	return lockID{}, "", false
}

// isMutexType matches (*)sync.Mutex / (*)sync.RWMutex syntactically.
func isMutexType(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "sync" {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

// lockEdge is one observed "held id held while acquiring taken".
type lockEdge struct {
	held, taken lockID
	pos         token.Pos
	via         string // how the taken lock is reached (callee name or "directly")
}

func finish(pass *framework.Pass) error {
	st := getState(pass)
	g := callgraph.Of(pass)

	// may-acquire fixpoint over the call graph.
	may := map[*callgraph.Node]map[lockID]bool{}
	for fd, acqs := range st.acquires {
		node := g.NodeForDecl(fd)
		if node == nil {
			continue
		}
		set := map[lockID]bool{}
		for _, a := range acqs {
			if st.mutexes[a.id] {
				set[a.id] = true
			}
		}
		may[node] = set
	}
	for changed := true; changed; {
		changed = false
		for _, node := range g.Nodes() {
			for _, e := range node.Out {
				for id := range may[e.Callee] {
					if may[node] == nil {
						may[node] = map[lockID]bool{}
					}
					if !may[node][id] {
						may[node][id] = true
						changed = true
					}
				}
			}
		}
	}

	// Project each locked region onto the acquires and calls inside it.
	edges := map[lockID]map[lockID]lockEdge{}
	addEdge := func(held, taken lockID, pos token.Pos, via string) {
		if held == taken { // same-lock re-entry is locksafe's finding
			return
		}
		if edges[held] == nil {
			edges[held] = map[lockID]lockEdge{}
		}
		if prev, ok := edges[held][taken]; !ok || pos < prev.pos {
			edges[held][taken] = lockEdge{held, taken, pos, via}
		}
	}
	for _, r := range st.regions {
		if !st.mutexes[r.id] {
			continue
		}
		for _, a := range st.acquires[r.fn] {
			if !a.deferred && st.mutexes[a.id] && a.call.Pos() >= r.start && a.call.Pos() < r.end {
				addEdge(r.id, a.id, a.call.Pos(), "directly")
			}
		}
		caller := g.NodeForDecl(r.fn)
		if caller == nil {
			continue
		}
		for _, e := range caller.Out {
			if e.Site.Pos() < r.start || e.Site.Pos() >= r.end {
				continue
			}
			for id := range may[e.Callee] {
				addEdge(r.id, id, e.Site.Pos(), "via "+e.Callee.Func.Name())
			}
		}
	}

	// Cycle detection: report each SCC of ≥2 locks once.
	for _, scc := range stronglyConnected(edges) {
		if len(scc) < 2 {
			continue
		}
		sort.Slice(scc, func(i, j int) bool { return scc[i].String() < scc[j].String() })
		inSCC := map[lockID]bool{}
		for _, id := range scc {
			inSCC[id] = true
		}
		var first *lockEdge
		for _, id := range scc {
			for taken, e := range edges[id] {
				if !inSCC[taken] {
					continue
				}
				e := e
				if first == nil || e.pos < first.pos {
					first = &e
				}
			}
		}
		if first == nil {
			continue
		}
		names := make([]string, len(scc))
		for i, id := range scc {
			names[i] = id.String()
		}
		pass.Reportf(first.pos, "lock ordering cycle among {%s}: %s is acquired (%s) while %s is held, and the reverse order also occurs; two goroutines can deadlock — pick one global order",
			strings.Join(names, ", "), first.taken, first.via, first.held)
	}
	return nil
}

// stronglyConnected runs Tarjan's algorithm over the lock graph.
func stronglyConnected(edges map[lockID]map[lockID]lockEdge) [][]lockID {
	nodes := map[lockID]bool{}
	for held, m := range edges {
		nodes[held] = true
		for taken := range m {
			nodes[taken] = true
		}
	}
	ordered := make([]lockID, 0, len(nodes))
	for id := range nodes {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return fmt.Sprint(ordered[i]) < fmt.Sprint(ordered[j]) })

	index := map[lockID]int{}
	low := map[lockID]int{}
	onStack := map[lockID]bool{}
	var stack []lockID
	var sccs [][]lockID
	next := 0

	var strongconnect func(v lockID)
	strongconnect = func(v lockID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		var succs []lockID
		for w := range edges[v] {
			succs = append(succs, w)
		}
		sort.Slice(succs, func(i, j int) bool { return fmt.Sprint(succs[i]) < fmt.Sprint(succs[j]) })
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}

		if low[v] == index[v] {
			var scc []lockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range ordered {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
