package ctxflow_test

import (
	"testing"

	"mdw/internal/analysis/ctxflow"
	"mdw/internal/analysis/framework/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ".", ctxflow.Analyzer, "a", "b", "c")
}
