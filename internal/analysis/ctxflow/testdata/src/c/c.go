// Package main owns the process root, so context.Background() is
// allowed — but context.TODO() is a placeholder and stays banned.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return nil }

func stub() {
	_ = context.TODO() // want `context.TODO\(\) orphans the request trace`
}
