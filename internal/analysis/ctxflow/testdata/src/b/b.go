// Package b holds context usage ctxflow must accept: forwarding,
// wrapped forwarding, shims, and calls with no Ctx variant.
package b

import "context"

type Client struct{}

func (c *Client) Query(q string) error { return c.QueryCtx(context.Background(), q) }

func (c *Client) QueryCtx(ctx context.Context, q string) error { return nil }

// Handle forwards its context.
func (c *Client) Handle(ctx context.Context, q string) error {
	return c.QueryCtx(ctx, q)
}

// A wrapped context still counts as forwarding.
func Wrapped(ctx context.Context, c *Client) error {
	return c.QueryCtx(wrap(ctx), "q")
}

func wrap(ctx context.Context) context.Context { return ctx }

// Calling something without a Ctx variant needs no context.
func Plain(ctx context.Context) int { return add(1, 2) }

func add(a, b int) int { return a + b }

// ParseCtx IS the Ctx variant of Parse: opening the span and delegating
// to the base implementation is how variants are written, not a
// dropped context.
func ParseCtx(ctx context.Context, q string) error {
	_ = ctx
	return Parse(q)
}

func Parse(q string) error { return nil }
