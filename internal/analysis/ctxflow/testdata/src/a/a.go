// Package a exercises ctxflow diagnostics: a dropped context where a
// Ctx variant exists, and library code conjuring root contexts.
package a

import "context"

type Client struct{}

// Query is a sanctioned compatibility shim: its whole body delegates to
// QueryCtx starting from context.Background().
func (c *Client) Query(q string) error { return c.QueryCtx(context.Background(), q) }

func (c *Client) QueryCtx(ctx context.Context, q string) error { return nil }

// Handle holds a context but calls the context-free variant, so the
// callee's trace is orphaned.
func (c *Client) Handle(ctx context.Context, q string) error {
	return c.Query(q) // want `Handle receives a context but calls c.Query, which has the context-aware variant QueryCtx`
}

func Lookup(name string) error { return LookupCtx(context.Background(), name) }

func LookupCtx(ctx context.Context, name string) error { return nil }

func Relay(ctx context.Context, name string) error {
	return Lookup(name) // want `Relay receives a context but calls Lookup, which has the context-aware variant LookupCtx`
}

// Serve invents a root context outside main and outside any shim.
func Serve(cl *Client) error {
	ctx := context.Background() // want `context.Background\(\) orphans the request trace`
	return cl.QueryCtx(ctx, "x")
}

func Stash(cl *Client) error {
	return cl.QueryCtx(context.TODO(), "x") // want `context.TODO\(\) orphans the request trace`
}
