// Package ctxflow guards the warehouse's end-to-end tracing contract.
// PR 5 threaded context propagation through every service so one HTTP
// request yields ONE hierarchical trace; that property dies silently
// whenever a function that already holds a context calls the
// context-free variant of an API that has a context-aware one (the
// callee falls back to context.Background() and the child span is
// orphaned from its trace).
//
// ctxflow reports, for every function with a context.Context parameter,
// calls to a function or method N for which a sibling NCtx exists (same
// package or same receiver type, first parameter a context.Context)
// when no argument of the call carries the context.
//
// It also bans context.Background() and context.TODO() outside package
// main: a library that conjures a root context detaches everything
// below it from the caller's trace. The one sanctioned shape is the
// compatibility shim — a function whose entire body is a single
// delegation to its own Ctx variant with context.Background() — which
// is how the context-free API surface is kept alive.
package ctxflow

import (
	"go/ast"
	"go/types"

	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/framework/callgraph"
)

// Analyzer is the ctxflow framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "forward contexts to context-aware callees\n\n" +
		"A function that receives a context.Context must pass it to callees\n" +
		"that have a Ctx variant, and context.Background()/TODO() is banned\n" +
		"outside package main and single-statement compatibility shims —\n" +
		"both patterns orphan the request trace.",
	Run: run,
}

func run(pass *framework.Pass) error {
	isMain := false
	for _, f := range pass.Files {
		if f.Name.Name == "main" {
			isMain = true
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, isMain)
		}
	}
	return nil
}

// checkFunc applies both rules to one declared function.
func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, isMain bool) {
	ctxParams := contextParams(pass, fd)
	shimDelegate := shimDelegation(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := contextRootCall(pass, call); ok {
			allowed := isMain && name == "Background"
			if !allowed && name == "Background" && call == shimDelegate {
				allowed = true
			}
			if !allowed {
				pass.Reportf(call.Pos(), "context.%s() orphans the request trace; accept a context.Context and propagate it (only package main and single-statement compatibility shims may start from context.%s())", name, name)
			}
			return true
		}
		if len(ctxParams) == 0 {
			return true
		}
		variant := ctxVariantOf(pass, call)
		if variant == "" || callCarriesContext(pass, call, ctxParams) {
			return true
		}
		if variant == fd.Name.Name {
			// The caller IS the Ctx variant delegating to the base
			// implementation (ParseCtx opens the span, then calls Parse) —
			// the standard way to implement the variant, not a dropped
			// context.
			return true
		}
		pass.Reportf(call.Pos(), "%s receives a context but calls %s, which has the context-aware variant %s; forward the context or the callee's spans are orphaned from the trace",
			fd.Name.Name, calleeLabel(call), variant)
		return true
	})
}

// contextParams returns the objects of fd's context.Context parameters.
func contextParams(pass *framework.Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// isContextType matches the syntactic type context.Context, verifying
// that the qualifier really is the imported "context" package (the
// loader stubs it, but the import resolution is intact).
func isContextType(pass *framework.Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	return isPackageIdent(pass, sel.X, "context")
}

func isPackageIdent(pass *framework.Pass, e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// contextRootCall matches context.Background() / context.TODO().
func contextRootCall(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return "", false
	}
	if !isPackageIdent(pass, sel.X, "context") {
		return "", false
	}
	return sel.Sel.Name, true
}

// shimDelegation recognizes the compatibility-shim shape: the entire
// body of function N is one statement delegating to NCtx — either
// `return x.NCtx(context.Background(), …)` or a bare call for void
// functions — and returns that delegating call (nil otherwise).
func shimDelegation(pass *framework.Pass, fd *ast.FuncDecl) *ast.CallExpr {
	if len(fd.Body.List) != 1 {
		return nil
	}
	var call *ast.CallExpr
	switch stmt := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(stmt.Results) != 1 {
			return nil
		}
		call, _ = stmt.Results[0].(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = stmt.X.(*ast.CallExpr)
	}
	if call == nil || len(call.Args) == 0 {
		return nil
	}
	if calleeName(call) != fd.Name.Name+"Ctx" {
		return nil
	}
	// The delegation must start from context.Background() in the first
	// argument — that is what makes it a sanctioned shim.
	first, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if name, ok := contextRootCall(pass, first); !ok || name != "Background" {
		return nil
	}
	return first
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func calleeLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "the callee"
}

// ctxVariantOf returns the name of the context-aware variant of the
// call's target ("" when none exists). A variant is a function or
// method named <callee>+"Ctx" in the same lookup scope whose first
// parameter is a context.Context.
func ctxVariantOf(pass *framework.Pass, call *ast.CallExpr) string {
	name := calleeName(call)
	if name == "" || len(name) >= 3 && name[len(name)-3:] == "Ctx" {
		return ""
	}
	want := name + "Ctx"
	var variant *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, ok := pass.TypesInfo.Uses[fun].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		variant, _ = obj.Pkg().Scope().Lookup(want).(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, pass.Pkg, want)
			variant, _ = obj.(*types.Func)
			break
		}
		if x, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName); ok {
				variant, _ = pn.Imported().Scope().Lookup(want).(*types.Func)
			}
		}
	}
	if variant == nil {
		return ""
	}
	// Verify the variant really takes a context first — by declaration,
	// since the loader's stubbing leaves context.Context untyped.
	node := callgraph.Of(pass).Node(variant)
	if node == nil || node.Decl == nil || node.Decl.Type.Params == nil || len(node.Decl.Type.Params.List) == 0 {
		return ""
	}
	declPass := pass
	if node.Pkg != nil {
		declPass = &framework.Pass{TypesInfo: node.Pkg.Info, Pkg: node.Pkg.Types}
	}
	if !isContextType(declPass, node.Decl.Type.Params.List[0].Type) {
		return ""
	}
	return want
}

// callCarriesContext reports whether any argument of the call mentions
// one of the caller's context parameters (directly, or wrapped as in
// obs.ChildCtx(ctx)).
func callCarriesContext(pass *framework.Pass, call *ast.CallExpr, ctxParams []types.Object) bool {
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if use := pass.TypesInfo.Uses[id]; use != nil {
					for _, p := range ctxParams {
						if use == p {
							found = true
						}
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
