// Package mustparse restricts sparql.MustParse to constant arguments.
// MustParse panics on malformed input, which is the right contract for
// query literals baked into the binary (sparqlcheck proves those parse
// at lint time) and the wrong one for anything assembled at runtime: a
// user-supplied or concatenated query reaching MustParse turns a bad
// request into a process crash. Non-constant queries must go through
// sparql.Parse and handle the error.
//
// Test files are exempt — panicking on a malformed literal inside a
// test is just a test failure.
package mustparse

import (
	"go/ast"

	"mdw/internal/analysis/framework"
	"mdw/internal/analysis/queryutil"
)

// Analyzer is the mustparse framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name: "mustparse",
	Doc: "forbid sparql.MustParse on non-constant queries\n\n" +
		"MustParse panics on malformed input; runtime-assembled query text\n" +
		"must use sparql.Parse and handle the error.",
	Run: run,
}

func run(pass *framework.Pass) error {
	queryutil.ConstQueryCalls(pass, func(queryutil.CallSite) {}, func(fn string, call *ast.CallExpr, arg ast.Expr) {
		if fn != "sparql.MustParse" {
			return
		}
		pass.Reportf(arg.Pos(), "non-constant query passed to sparql.MustParse, which panics on malformed input; use sparql.Parse and handle the error")
	})
	return nil
}
