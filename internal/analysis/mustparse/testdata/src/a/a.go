// Package a exercises mustparse: runtime-assembled query text handed to
// the panicking entry point.
package a

import (
	"mdw/internal/sparql"
)

const prefix = "PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>\n"

func fromUser(input string) *sparql.Query {
	return sparql.MustParse(input) // want `non-constant query passed to sparql.MustParse`
}

func concatenated(cls string) *sparql.Query {
	q := prefix + "SELECT ?i WHERE { ?i a " + cls + " . }"
	return sparql.MustParse(q) // want `non-constant query passed to sparql.MustParse`
}
