// Package b holds the accepted MustParse shape — constant query text —
// plus runtime text routed through the error-returning Parse.
package b

import (
	"mdw/internal/sparql"
)

const listing1 = `
PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>
SELECT ?i WHERE { ?i a dm:Customer . }
`

var compiled = sparql.MustParse(listing1)

func dynamic(input string) (*sparql.Query, error) {
	return sparql.Parse(input)
}
