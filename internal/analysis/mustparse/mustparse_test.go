package mustparse_test

import (
	"testing"

	"mdw/internal/analysis/framework/analysistest"
	"mdw/internal/analysis/mustparse"
)

func TestMustparse(t *testing.T) {
	analysistest.Run(t, ".", mustparse.Analyzer, "a", "b")
}
