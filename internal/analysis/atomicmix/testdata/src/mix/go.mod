module mix

go 1.21
