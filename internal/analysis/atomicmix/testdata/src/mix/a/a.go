// Package a makes Stats.Hits atomic; the fact must taint package b.
package a

import "sync/atomic"

type Stats struct{ Hits uint64 }

func (s *Stats) Incr() {
	atomic.AddUint64(&s.Hits, 1)
}
