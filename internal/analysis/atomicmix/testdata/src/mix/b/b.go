// Package b reads a.Stats.Hits plainly; the atomic accesses live in
// the defining package, so only the cross-package fact catches this.
package b

import "mix/a"

func Report(s *a.Stats) uint64 {
	return s.Hits // want `field Hits is accessed with sync/atomic`
}
