// Package a mixes atomic and plain access to the same field.
package a

import "sync/atomic"

type Counter struct {
	hits  uint64
	total uint64
}

func (c *Counter) Incr() {
	atomic.AddUint64(&c.hits, 1)
}

// Read does a plain load of a field the Incr above updates atomically.
func (c *Counter) Read() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic`
}

// total is accessed atomically everywhere — no findings.
func (c *Counter) Total() uint64 {
	return atomic.LoadUint64(&c.total)
}

func (c *Counter) Bump() {
	atomic.AddUint64(&c.total, 1)
}
