// Package b holds atomic usage atomicmix must accept: typed atomics
// (immune by construction) and fields that are atomic everywhere.
package b

import "sync/atomic"

type Gauge struct {
	val atomic.Int64
	max int64
}

// val is a typed atomic: every access goes through its methods, and
// max is never touched atomically, so plain access is fine.
func (g *Gauge) Set(v int64) {
	g.val.Store(v)
	if v > g.max {
		g.max = v
	}
}

type Counter struct{ n uint64 }

func (c *Counter) Incr() uint64 { return atomic.AddUint64(&c.n, 1) }

func (c *Counter) Get() uint64 { return atomic.LoadUint64(&c.n) }
