// Package atomicmix enforces the first rule of sync/atomic: a memory
// location is either always accessed atomically or never. A struct
// field that one goroutine updates through atomic.AddUint64 and another
// reads with a plain load is a data race the race detector only catches
// when the schedule cooperates; the mix is wrong even when it happens
// to survive.
//
// The analyzer records every field passed by address to a sync/atomic
// operation as an object fact (so a field made atomic in its defining
// package taints uses in every downstream package), then reports every
// plain read or write of such a field anywhere in the program. Fields
// of the typed atomic.Int64/Uint64/… family are immune by construction
// and are ignored.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mdw/internal/analysis/framework"
)

// Analyzer is the atomicmix framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name: "atomicmix",
	Doc: "no plain access to fields that are accessed atomically\n\n" +
		"A struct field passed to sync/atomic functions anywhere must be\n" +
		"read and written through sync/atomic everywhere; mixing in plain\n" +
		"accesses races with the atomic ones.",
	Run:       run,
	Finish:    finish,
	FactTypes: []framework.Fact{(*AtomicField)(nil)},
}

// AtomicField marks a struct field as atomically accessed somewhere in
// the program.
type AtomicField struct {
	// Ops counts the atomic operations observed on the field.
	Ops int
}

// AFact marks AtomicField as a framework fact.
func (*AtomicField) AFact() {}

// access is one plain (non-atomic) appearance of a candidate field.
type access struct {
	obj types.Object
	pos token.Pos
	pkg string
}

type state struct {
	plain []access
}

func getState(pass *framework.Pass) *state {
	return pass.Prog.Memo("atomicmix.state", func() any { return &state{} }).(*state)
}

func run(pass *framework.Pass) error {
	st := getState(pass)

	// First pass over the files: find atomic operations and remember the
	// exact &field argument nodes so the access scan below can skip them.
	atomicArgs := map[ast.Expr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicOp(pass, call) || len(call.Args) == 0 {
				return true
			}
			unary, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			target := ast.Unparen(unary.X)
			obj := fieldObject(pass, target)
			if obj == nil {
				return true
			}
			atomicArgs[target] = true
			fact := &AtomicField{}
			pass.ImportObjectFact(obj, fact)
			fact.Ops++
			pass.ExportObjectFact(obj, fact)
			return true
		})
	}

	// Second pass: every other appearance of any struct field is a
	// candidate plain access; Finish filters them against the facts so
	// cross-package ordering does not matter.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if atomicArgs[e] {
				return false // the sanctioned &field of an atomic op
			}
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obj := fieldObject(pass, sel); obj != nil {
				st.plain = append(st.plain, access{obj: obj, pos: sel.Pos(), pkg: pass.Path})
			}
			return true
		})
	}
	return nil
}

func finish(pass *framework.Pass) error {
	st := getState(pass)
	facts := pass.AllObjectFacts((*AtomicField)(nil))
	atomic := map[types.Object]int{}
	for _, of := range facts {
		atomic[of.Object] = of.Fact.(*AtomicField).Ops
	}
	var hits []access
	for _, a := range st.plain {
		if _, ok := atomic[a.obj]; ok {
			hits = append(hits, a)
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	for _, a := range hits {
		pass.Reportf(a.pos, "field %s is accessed with sync/atomic (%d atomic ops elsewhere); this plain access races with them — use atomic loads/stores everywhere or a typed atomic",
			a.obj.Name(), atomic[a.obj])
	}
	return nil
}

// isAtomicOp matches calls to the func-style sync/atomic API that take
// an address: Add*, Load*, Store*, Swap*, CompareAndSwap*.
func isAtomicOp(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	name := sel.Sel.Name
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// fieldObject resolves a selector (or bare identifier) to a struct
// field object, or nil.
func fieldObject(pass *framework.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}
