package atomicmix_test

import (
	"testing"

	"mdw/internal/analysis/atomicmix"
	"mdw/internal/analysis/framework/analysistest"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, ".", atomicmix.Analyzer, "a", "b")
}

func TestAtomicmixCrossPackage(t *testing.T) {
	analysistest.RunModule(t, ".", atomicmix.Analyzer, "mix")
}
