// Package queryutil locates the repository's query entry points in
// analyzed source: calls that hand a SPARQL query or SEM_MATCH call
// string to the warehouse. sparqlcheck, iricheck, and mustparse share
// this discovery so they agree on what counts as a query call site.
package queryutil

import (
	"go/ast"
	"go/types"

	"mdw/internal/analysis/framework"
)

// Kind discriminates what language the string argument is written in.
type Kind int

const (
	// KindSPARQL marks arguments that are complete SPARQL queries.
	KindSPARQL Kind = iota
	// KindSemMatch marks arguments that are SEM_MATCH call texts
	// (Listings 1 and 2 of the paper).
	KindSemMatch
)

// entryPoint is one function or method that receives query text.
type entryPoint struct {
	pkg  string // defining package import path
	name string // function name, or method name for recvPkg methods
	arg  int    // index of the query-text argument
	kind Kind
}

var entryPoints = []entryPoint{
	{"mdw/internal/sparql", "Parse", 0, KindSPARQL},
	{"mdw/internal/sparql", "MustParse", 0, KindSPARQL},
	{"mdw/internal/semmatch", "Exec", 1, KindSemMatch},
	{"mdw/internal/semmatch", "ParseCall", 0, KindSemMatch},
	// Warehouse façade methods forward verbatim to the parsers above.
	{"mdw/internal/core", "Query", 0, KindSPARQL},
	{"mdw/internal/core", "QueryFacts", 0, KindSPARQL},
	{"mdw/internal/core", "SemMatch", 0, KindSemMatch},
}

// CallSite is one discovered query call with a constant argument.
type CallSite struct {
	Call *ast.CallExpr
	// Arg is the query-text argument expression (report position).
	Arg ast.Expr
	// Text is the folded constant value of Arg.
	Text string
	Kind Kind
	// Fn names the entry point, e.g. "sparql.MustParse".
	Fn string
}

// Callee resolves the called function or method of call, returning its
// defining package path and name. It handles plain calls
// (sparql.Parse(...)), and method calls through typed receivers
// (w.Query(...)).
func Callee(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, found := info.Selections[fun]; found {
			obj = sel.Obj()
		} else {
			// Package-qualified call: the Sel identifier resolves
			// directly to the function object.
			obj = info.Uses[fun.Sel]
		}
	default:
		return "", "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// ConstQueryCalls walks the pass's files and yields every entry-point
// call whose query argument folds to a constant string. Calls with
// non-constant arguments are reported through nonConst (may be nil),
// which mustparse uses to police sparql.MustParse.
func ConstQueryCalls(pass *framework.Pass, yield func(CallSite), nonConst func(fn string, call *ast.CallExpr, arg ast.Expr)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := Callee(pass.TypesInfo, call)
			if !ok {
				return true
			}
			for _, ep := range entryPoints {
				if ep.pkg != pkgPath || ep.name != name || ep.arg >= len(call.Args) {
					continue
				}
				arg := call.Args[ep.arg]
				fn := shortPkg(ep.pkg) + "." + ep.name
				if text, isConst := pass.ConstString(arg); isConst {
					yield(CallSite{Call: call, Arg: arg, Text: text, Kind: ep.kind, Fn: fn})
				} else if nonConst != nil {
					nonConst(fn, call, arg)
				}
				break
			}
			return true
		})
	}
}

func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
