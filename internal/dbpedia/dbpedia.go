// Package dbpedia provides the synonym and homonym meta-data collections
// that the warehouse integrates per Section III.B: "The Credit Suisse
// meta-data warehouse incorporates meta-data collections from the DBpedia
// project ... That additional meta-data is used to derive additional
// edges between synonyms and homonyms in the meta-data graph."
//
// The real DBpedia dumps are external downloads; this package ships a
// synthetic banking-domain extract in the same RDF shape (redirect links
// for synonyms, disambiguation links for homonyms) and a Thesaurus that
// the search service uses to expand terms — the "semantic search" lesson
// of Section V.
package dbpedia

import (
	"sort"
	"strings"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// DBpedia-style link properties.
const (
	// Redirects marks synonym links (wiki redirects point alternate
	// titles at the canonical article).
	Redirects = "http://dbpedia.org/ontology/wikiPageRedirects"
	// Disambiguates marks homonym links (a disambiguation page lists the
	// different meanings of one term).
	Disambiguates = "http://dbpedia.org/ontology/wikiPageDisambiguates"
)

func res(name string) rdf.Term { return rdf.IRI(rdf.DBPNS + name) }

// Banking returns the synthetic banking-domain DBpedia extract: synonym
// clusters around the paper's running example (customer / client /
// partner) plus common financial vocabulary, and homonym links for
// ambiguous terms.
func Banking() []rdf.Triple {
	var out []rdf.Triple
	link := func(p string, a, b string) {
		out = append(out, rdf.T(res(a), rdf.IRI(p), res(b)))
	}
	label := func(a string) {
		out = append(out, rdf.T(res(a), rdf.Label, rdf.Literal(strings.ReplaceAll(a, "_", " "))))
	}
	syn := func(names ...string) {
		canonical := names[0]
		label(canonical)
		for _, n := range names[1:] {
			label(n)
			link(Redirects, n, canonical)
		}
	}
	hom := func(page string, meanings ...string) {
		label(page)
		for _, m := range meanings {
			label(m)
			link(Disambiguates, page, m)
		}
	}

	// Synonym clusters. The first name is the canonical article.
	syn("customer", "client", "patron", "account_holder")
	syn("partner", "counterparty", "business_partner")
	syn("transaction", "payment", "transfer")
	syn("account", "bank_account", "ledger_account")
	syn("instrument", "security", "financial_instrument")
	syn("portfolio", "holdings")
	syn("trade", "deal")
	syn("address", "domicile")
	syn("branch", "subsidiary", "office")
	syn("loan", "credit", "lending")
	syn("fee", "charge", "commission")
	syn("rating", "score")

	// Homonyms: the same surface term with different meanings.
	hom("interest", "interest_rate", "interest_stake")
	hom("position", "position_trading", "position_job")
	hom("margin", "margin_finance", "margin_profit")
	hom("security", "security_finance", "security_protection")

	return out
}

// Thesaurus answers synonym and homonym questions for plain terms.
type Thesaurus struct {
	syn map[string]map[string]bool
	hom map[string]map[string]bool
}

// FromTriples builds a thesaurus from a DBpedia-style extract. Synonymy
// is the symmetric-transitive closure of redirect links; homonymy links
// a disambiguation term to its meanings.
func FromTriples(ts []rdf.Triple) *Thesaurus {
	t := &Thesaurus{
		syn: map[string]map[string]bool{},
		hom: map[string]map[string]bool{},
	}
	// Union-find over redirect clusters.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	for _, tr := range ts {
		switch tr.P.Value {
		case Redirects:
			union(termOf(tr.S), termOf(tr.O))
		case Disambiguates:
			a, b := termOf(tr.S), termOf(tr.O)
			addPair(t.hom, a, b)
			addPair(t.hom, b, a)
		}
	}
	clusters := map[string][]string{}
	for x := range parent {
		r := find(x)
		clusters[r] = append(clusters[r], x)
	}
	for _, members := range clusters {
		for _, a := range members {
			for _, b := range members {
				if a != b {
					addPair(t.syn, a, b)
				}
			}
		}
	}
	return t
}

func termOf(t rdf.Term) string {
	return strings.ReplaceAll(strings.ToLower(rdf.LocalName(t.Value)), "_", " ")
}

func addPair(m map[string]map[string]bool, a, b string) {
	set, ok := m[a]
	if !ok {
		set = map[string]bool{}
		m[a] = set
	}
	set[b] = true
}

// Synonyms returns the synonyms of term (term itself excluded), sorted.
func (t *Thesaurus) Synonyms(term string) []string {
	return sorted(t.syn[normalize(term)])
}

// Homonyms returns the alternative meanings linked to term, sorted.
func (t *Thesaurus) Homonyms(term string) []string {
	return sorted(t.hom[normalize(term)])
}

// Expand returns the search expansion of term: the term itself plus all
// synonyms.
func (t *Thesaurus) Expand(term string) []string {
	out := []string{normalize(term)}
	return append(out, t.Synonyms(term)...)
}

func normalize(term string) string {
	return strings.ReplaceAll(strings.ToLower(strings.TrimSpace(term)), "_", " ")
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Integrate loads the extract into the named model of st and derives the
// warehouse's own synonym/homonym edges (mdw:synonymOf, mdw:homonymOf)
// between the DBpedia resource nodes, increasing graph density exactly as
// Section III.B describes. It returns the number of triples added.
func Integrate(st *store.Store, model string, extract []rdf.Triple) int {
	n := st.AddAll(model, extract)
	th := FromTriples(extract)
	for term, syns := range th.syn {
		for s := range syns {
			n += boolToInt(st.Add(model, rdf.T(resFor(term), rdf.IRI(rdf.MDWSynonymOf), resFor(s))))
		}
	}
	for term, homs := range th.hom {
		for h := range homs {
			n += boolToInt(st.Add(model, rdf.T(resFor(term), rdf.IRI(rdf.MDWHomonymOf), resFor(h))))
		}
	}
	return n
}

func resFor(term string) rdf.Term {
	return res(strings.ReplaceAll(term, " ", "_"))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
