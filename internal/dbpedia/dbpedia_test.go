package dbpedia

import (
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

func TestBankingExtractShape(t *testing.T) {
	ts := Banking()
	if len(ts) == 0 {
		t.Fatal("empty extract")
	}
	redirects, disamb, labels := 0, 0, 0
	for _, tr := range ts {
		switch tr.P.Value {
		case Redirects:
			redirects++
		case Disambiguates:
			disamb++
		case rdf.RDFSLabel:
			labels++
		default:
			t.Errorf("unexpected predicate %s", tr.P)
		}
	}
	if redirects == 0 || disamb == 0 || labels == 0 {
		t.Errorf("redirects=%d disamb=%d labels=%d", redirects, disamb, labels)
	}
}

func TestSynonymClosure(t *testing.T) {
	th := FromTriples(Banking())
	// client redirects to customer; patron redirects to customer; so
	// client and patron are synonyms of each other too.
	syns := th.Synonyms("client")
	want := map[string]bool{"customer": false, "patron": false, "account holder": false}
	for _, s := range syns {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for w, found := range want {
		if !found {
			t.Errorf("missing synonym %q of client (got %v)", w, syns)
		}
	}
	// Symmetry.
	found := false
	for _, s := range th.Synonyms("customer") {
		if s == "client" {
			found = true
		}
	}
	if !found {
		t.Error("synonymy not symmetric")
	}
	// No self-loop.
	for _, s := range th.Synonyms("customer") {
		if s == "customer" {
			t.Error("term is its own synonym")
		}
	}
}

func TestHomonyms(t *testing.T) {
	th := FromTriples(Banking())
	homs := th.Homonyms("interest")
	if len(homs) != 2 {
		t.Errorf("Homonyms(interest) = %v", homs)
	}
	// Reverse direction also linked.
	if len(th.Homonyms("interest rate")) == 0 {
		t.Error("homonym reverse link missing")
	}
}

func TestExpand(t *testing.T) {
	th := FromTriples(Banking())
	exp := th.Expand("Customer")
	if exp[0] != "customer" {
		t.Errorf("Expand first element = %q", exp[0])
	}
	if len(exp) < 3 {
		t.Errorf("Expand = %v", exp)
	}
	// Unknown terms expand to themselves only.
	if got := th.Expand("zzz"); len(got) != 1 || got[0] != "zzz" {
		t.Errorf("Expand(zzz) = %v", got)
	}
}

func TestIntegrate(t *testing.T) {
	st := store.New()
	n := Integrate(st, "aux", Banking())
	if n == 0 {
		t.Fatal("nothing integrated")
	}
	// Derived synonym edges exist in the model.
	synEdges := st.CountPattern("aux", rdf.Term{}, rdf.IRI(rdf.MDWSynonymOf), rdf.Term{})
	if synEdges == 0 {
		t.Error("no synonymOf edges derived")
	}
	homEdges := st.CountPattern("aux", rdf.Term{}, rdf.IRI(rdf.MDWHomonymOf), rdf.Term{})
	if homEdges == 0 {
		t.Error("no homonymOf edges derived")
	}
	// Integration is idempotent in triple count terms.
	if again := Integrate(st, "aux", Banking()); again != 0 {
		t.Errorf("second Integrate added %d triples", again)
	}
}

func TestNormalization(t *testing.T) {
	th := FromTriples(Banking())
	a := th.Synonyms("ACCOUNT_holder")
	if len(a) == 0 {
		t.Error("case/underscore normalization failed")
	}
}
