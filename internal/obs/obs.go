// Package obs is the warehouse's observability substrate: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms), lightweight span tracing feeding a
// bounded ring of recent traces, and a slow-query log that captures the
// query text, the rendered evaluation plan, and per-stage timings of any
// query over a configurable threshold.
//
// The paper's warehouse is an operational system: §III.B's load pipeline
// and §IV's services ran against ~1.2M-edge releases, where "how long
// did this query take and why" is a production question. Every service
// package instruments its hot paths against the shared default instances
// below; the HTTP API exposes them as GET /api/metrics (Prometheus text
// exposition) and GET /api/traces, and `mdw metrics` pretty-prints them.
//
// Design constraints, in order:
//
//   - zero dependencies (standard library only);
//   - negligible overhead on instrumented hot paths: metric handles are
//     resolved once into package-level variables and updated with single
//     atomic operations, never map lookups or allocation;
//   - safe for concurrent use throughout.
package obs

import "time"

// Shared default instances. Instrumented packages resolve their metric
// handles against Default() once at init time; the HTTP API and the CLI
// read all three.
var (
	defaultRegistry   = NewRegistry()
	defaultTracer     = NewTracer(DefaultTraceCapacity)
	defaultSlowLog    = NewSlowLog(DefaultSlowLogCapacity, DefaultSlowQueryThreshold)
	defaultStatements = NewStatements(DefaultStatementCapacity)
	defaultMisest     = NewMisestLog(DefaultMisestimateCapacity)
)

func init() {
	defaultRegistry.SetHelp("mdw_trace_spans_dropped_total",
		"Spans discarded because they finished after their trace's root span had published the trace.")
	defaultTracer.dropCounter = defaultRegistry.Counter("mdw_trace_spans_dropped_total")
}

// Default returns the process-wide metrics registry.
func Default() *Registry { return defaultRegistry }

// DefaultStatements returns the process-wide statement-statistics table
// (per-fingerprint query aggregates, pg_stat_statements-style).
func DefaultStatements() *Statements { return defaultStatements }

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// DefaultSlowLog returns the process-wide slow-query log.
func DefaultSlowLog() *SlowLog { return defaultSlowLog }

// DefaultMisestimates returns the process-wide planner-misestimation log
// (GET /api/misestimates, `mdw top -misest`).
func DefaultMisestimates() *MisestLog { return defaultMisest }

// StartSpan starts a root span of a new trace on the default tracer.
func StartSpan(name string) *Span { return defaultTracer.Start(name) }

// Since returns the elapsed time since t0 — sugar that keeps
// instrumentation call sites one line.
func Since(t0 time.Time) time.Duration { return time.Since(t0) }
