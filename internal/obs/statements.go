package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultStatementCapacity bounds the default statement table: the
// top-N-by-total-time fingerprints survive; beyond that, recording a new
// fingerprint evicts the entry with the least accumulated time
// (pg_stat_statements' dealloc policy).
const DefaultStatementCapacity = 512

// StatementStat is one aggregated row of the statement table: every
// execution of queries sharing a fingerprint (the query text with
// literals and constant subjects/objects normalized away), folded into
// call/row counts and a latency summary.
type StatementStat struct {
	Fingerprint string        `json:"fingerprint"`
	Query       string        `json:"query"` // example text: first execution seen
	Calls       int64         `json:"calls"`
	Rows        int64         `json:"rows"`
	Total       time.Duration `json:"totalNs"`
	Min         time.Duration `json:"minNs"`
	Max         time.Duration `json:"maxNs"`
	Mean        time.Duration `json:"meanNs"`
	LastPlan    string        `json:"lastPlan,omitempty"`
	LastSeen    time.Time     `json:"lastSeen"`
	// Parallelism is the degree of parallelism of the last recorded plan
	// (1 = serial; 0 = the plan did not report one).
	Parallelism int `json:"parallelism,omitempty"`
	// Resource accounting, accumulated from analyzed executions only
	// (AnalyzedCalls of the Calls): index triples scanned and dictionary
	// terms decoded on behalf of the statement.
	RowsScanned   int64 `json:"rowsScanned,omitempty"`
	TermDecodes   int64 `json:"termDecodes,omitempty"`
	AnalyzedCalls int64 `json:"analyzedCalls,omitempty"`
}

// ParallelPlan is optionally implemented by recorded plans that carry a
// degree of parallelism (the SPARQL Plan does); Record captures it so
// `mdw top` can show which statements fan out.
type ParallelPlan interface {
	Parallelism() int
}

// stmtEntry is the mutable accumulator behind one StatementStat. The
// plan is kept as a Stringer and only rendered at Snapshot time, so the
// per-execution cost is a map probe and a few adds — never a plan
// rendering.
type stmtEntry struct {
	query    string
	calls    int64
	rows     int64
	total    time.Duration
	min, max time.Duration
	lastPlan fmt.Stringer
	lastPar  int
	lastSeen time.Time
	scanned  int64
	decodes  int64
	analyzed int64
}

// Statements is a bounded fingerprint → statistics table, safe for
// concurrent use.
type Statements struct {
	mu      sync.Mutex
	cap     int
	m       map[string]*stmtEntry
	evicted int64
}

// NewStatements returns a table retaining at most cap fingerprints
// (cap <= 0 selects DefaultStatementCapacity).
func NewStatements(cap int) *Statements {
	if cap <= 0 {
		cap = DefaultStatementCapacity
	}
	return &Statements{cap: cap, m: make(map[string]*stmtEntry)}
}

// Record folds one execution into the fingerprint's row: query is the
// raw statement text (kept as the example on first sight), rows the
// solutions produced, d the execution latency, and plan the evaluation
// plan (rendered lazily at Snapshot; nil keeps the previous one).
func (s *Statements) Record(fp, query string, rows int, d time.Duration, plan fmt.Stringer) {
	if fp == "" {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[fp]
	if !ok {
		if len(s.m) >= s.cap {
			s.evictLocked()
		}
		e = &stmtEntry{query: query, min: d}
		s.m[fp] = e
	}
	e.calls++
	e.rows += int64(rows)
	e.total += d
	if d < e.min {
		e.min = d
	}
	if d > e.max {
		e.max = d
	}
	if plan != nil {
		e.lastPlan = plan
		if pp, ok := plan.(ParallelPlan); ok {
			e.lastPar = pp.Parallelism()
		}
	}
	e.lastSeen = now
}

// AddResources folds one analyzed execution's resource counters into the
// fingerprint's row. Only analyzed executions pay the per-triple counting,
// so the sums are a sample, not a census — AnalyzedCalls says how big.
// A fingerprint not in the table is ignored: Record creates rows,
// AddResources only annotates existing ones.
func (s *Statements) AddResources(fp string, scanned, decodes int64) {
	if fp == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[fp]
	if !ok {
		return
	}
	e.scanned += scanned
	e.decodes += decodes
	e.analyzed++
}

// evictLocked removes the entry with the least total time. Called with
// s.mu held, and only when a new fingerprint arrives at capacity, so the
// O(len) scan is off the steady-state path.
func (s *Statements) evictLocked() {
	var victim string
	var least time.Duration
	first := true
	for fp, e := range s.m {
		if first || e.total < least {
			victim, least, first = fp, e.total, false
		}
	}
	if victim != "" {
		delete(s.m, victim)
		s.evicted++
	}
}

// Evicted returns the number of fingerprints dropped at capacity.
func (s *Statements) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Len returns the number of retained fingerprints.
func (s *Statements) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Reset clears the table (mdw top -reset, tests). The eviction counter
// belongs to the table contents, so it resets too — otherwise a reset
// table reports phantom evictions that never happened to any row it
// holds.
func (s *Statements) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string]*stmtEntry)
	s.evicted = 0
}

// Snapshot returns the table sorted by total time, highest first. Plans
// are rendered here — outside the lock, from the values copied under it
// — so readers, not query executions, pay the rendering.
func (s *Statements) Snapshot() []StatementStat {
	type pending struct {
		stat StatementStat
		plan fmt.Stringer
	}
	s.mu.Lock()
	rows := make([]pending, 0, len(s.m))
	for fp, e := range s.m {
		st := StatementStat{
			Fingerprint: fp,
			Query:       e.query,
			Calls:       e.calls,
			Rows:        e.rows,
			Total:       e.total,
			Min:         e.min,
			Max:         e.max,
			LastSeen:    e.lastSeen,
			Parallelism: e.lastPar,

			RowsScanned:   e.scanned,
			TermDecodes:   e.decodes,
			AnalyzedCalls: e.analyzed,
		}
		if e.calls > 0 {
			st.Mean = e.total / time.Duration(e.calls)
		}
		rows = append(rows, pending{stat: st, plan: e.lastPlan})
	}
	s.mu.Unlock()
	out := make([]StatementStat, 0, len(rows))
	for _, p := range rows {
		if p.plan != nil {
			p.stat.LastPlan = p.plan.String()
		}
		out = append(out, p.stat)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}
