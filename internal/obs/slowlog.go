package obs

import (
	"sync"
	"time"
)

// Defaults for the slow-query log. The threshold default is deliberately
// high enough to stay silent on paper-scale workloads unless a query is
// genuinely pathological; services lower it via SetThreshold (mdwd's
// -slow-query flag, tests set 0 to log everything).
const (
	DefaultSlowLogCapacity    = 128
	DefaultSlowQueryThreshold = 250 * time.Millisecond
)

// Stage is one named phase of a logged query (parse, plan, exec).
type Stage struct {
	Name string        `json:"name"`
	D    time.Duration `json:"durationNs"`
}

// SlowQuery is one slow-query log entry.
type SlowQuery struct {
	When  time.Time     `json:"when"`
	Query string        `json:"query"`          // SPARQL text as submitted
	Plan  string        `json:"plan,omitempty"` // rendered evaluation plan
	Rows  int           `json:"rows"`
	Total time.Duration `json:"totalNs"`
	// Analyzed marks entries whose Plan carries EXPLAIN ANALYZE
	// annotations (actual rows and operator timings) rather than the
	// estimate-only rendering — the engine re-runs a slow fingerprint
	// once with stats collection armed to capture them.
	Analyzed bool    `json:"analyzed,omitempty"`
	Stages   []Stage `json:"stages,omitempty"`
}

// SlowLog is a bounded ring of the most recent queries whose total
// duration met the threshold. A threshold of zero logs every query.
type SlowLog struct {
	mu        sync.Mutex
	ring      []SlowQuery
	next      int
	filled    bool
	cap       int
	threshold time.Duration
	recorded  int64
}

// NewSlowLog returns a log retaining the last cap entries at or over
// threshold (cap <= 0 selects DefaultSlowLogCapacity).
func NewSlowLog(cap int, threshold time.Duration) *SlowLog {
	if cap <= 0 {
		cap = DefaultSlowLogCapacity
	}
	return &SlowLog{ring: make([]SlowQuery, cap), cap: cap, threshold: threshold}
}

// Threshold returns the current logging threshold.
func (l *SlowLog) Threshold() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold
}

// SetThreshold replaces the logging threshold. Zero logs everything; a
// negative value disables the log.
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.threshold = d
}

// ShouldLog reports whether a query of duration d would be recorded.
// Hot paths check this before rendering a plan string, so the rendering
// cost is only paid for queries that will actually be kept.
func (l *SlowLog) ShouldLog(d time.Duration) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold >= 0 && d >= l.threshold
}

// Record appends an entry if its Total meets the threshold, evicting the
// oldest entry once the ring is full. It reports whether the entry was
// kept.
func (l *SlowLog) Record(e SlowQuery) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.threshold < 0 || e.Total < l.threshold {
		return false
	}
	if e.When.IsZero() {
		e.When = time.Now()
	}
	l.ring[l.next] = e
	l.next++
	if l.next == l.cap {
		l.next = 0
		l.filled = true
	}
	l.recorded++
	return true
}

// Recorded returns the number of entries ever kept (including evicted
// ones).
func (l *SlowLog) Recorded() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recorded
}

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = l.cap
	}
	out := make([]SlowQuery, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + l.cap) % l.cap
		out = append(out, l.ring[idx])
	}
	return out
}
