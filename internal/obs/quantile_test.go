package obs

import (
	"math"
	"testing"
)

// TestQuantileEdgeCases pins the estimator's boundary behavior: empty
// histograms, a single sample, the extreme quantiles, out-of-range q,
// and malformed input. The headline cases are q=0 over empty leading
// buckets (the 0-quantile is the lower edge of the first bucket that
// holds an observation, not bound 0 of the histogram) and the
// length-mismatch guard (NaN, never a panic).
func TestQuantileEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	std := []float64{0.01, 0.1, 1, inf}
	tests := []struct {
		name   string
		bounds []float64
		cum    []int64
		q      float64
		want   float64 // math.NaN() for "must be NaN"
	}{
		{"empty histogram", std, []int64{0, 0, 0, 0}, 0.5, math.NaN()},
		{"nil slices", nil, nil, 0.5, math.NaN()},
		{"length mismatch long bounds", std, []int64{1, 1}, 0.5, math.NaN()},
		{"length mismatch short bounds", []float64{0.01}, []int64{1, 2, 3}, 0.5, math.NaN()},

		// One observation in (0.01, 0.1]: every quantile interpolates
		// inside that bucket; q=0 anchors at its lower edge, q=1 at its
		// upper edge.
		{"single sample q=0", std, []int64{0, 1, 1, 1}, 0, 0.01},
		{"single sample q=0.5", std, []int64{0, 1, 1, 1}, 0.5, 0.055},
		{"single sample q=1", std, []int64{0, 1, 1, 1}, 1, 0.1},

		// q=0 must skip empty leading buckets, landing on the lower edge
		// of the first populated one — not on the histogram's origin.
		{"q=0 skips empty buckets", std, []int64{0, 0, 10, 10}, 0, 0.1},
		{"q=0 first bucket populated", std, []int64{5, 10, 10, 10}, 0, 0},

		// q=1 lands on the populated extreme, and clamps to the last
		// finite bound when the max lives in +Inf.
		{"q=1 full histogram", std, []int64{50, 90, 100, 100}, 1, 1},
		{"q=1 in +Inf bucket", std, []int64{50, 90, 100, 110}, 1, 1},

		// Out-of-range and NaN q clamp instead of corrupting the rank.
		{"q below range", std, []int64{0, 1, 1, 1}, -3, 0.01},
		{"q above range", std, []int64{0, 1, 1, 1}, 7, 0.1},
		{"q NaN", std, []int64{0, 1, 1, 1}, math.NaN(), 0.01},

		// Interior sanity (the documented interpolation model).
		{"median interpolates", std, []int64{50, 90, 100, 100}, 0.5, 0.01},
		{"p95 interpolates", std, []int64{50, 90, 100, 100}, 0.95, 0.55},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Quantile(tc.bounds, tc.cum, tc.q)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("Quantile(%v, %v, %v) = %v, want NaN", tc.bounds, tc.cum, tc.q, got)
				}
				return
			}
			if math.IsNaN(got) || math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Quantile(%v, %v, %v) = %v, want %v", tc.bounds, tc.cum, tc.q, got, tc.want)
			}
		})
	}
}

// TestQuantileMonotone: for a fixed histogram, the estimate must be
// non-decreasing in q — the property the search predicate's extra
// conjunct must not break.
func TestQuantileMonotone(t *testing.T) {
	bounds := []float64{0.005, 0.01, 0.05, 0.1, 1, math.Inf(1)}
	cum := []int64{0, 3, 3, 40, 41, 41}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := Quantile(bounds, cum, q)
		if math.IsNaN(got) {
			t.Fatalf("q=%v: NaN on a populated histogram", q)
		}
		if got < prev {
			t.Fatalf("q=%v: estimate %v below previous %v", q, got, prev)
		}
		prev = got
	}
}
