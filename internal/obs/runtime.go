package obs

import (
	"runtime"
	"sync"
	"time"
)

// DefaultRuntimeSampleInterval is how often the background sampler
// refreshes the runtime gauges.
const DefaultRuntimeSampleInterval = 10 * time.Second

// SampleRuntime reads the Go runtime's self-description — scheduler,
// heap, and garbage collector — into gauges of r. One call is one
// consistent sample; the background sampler (StartRuntimeSampler) calls
// it on a ticker, and `mdw metrics` calls it once before dumping so a
// one-shot process still exports its runtime state.
//
// GC cycle and pause totals are monotonic in the runtime but exported as
// gauges: a gauge Set is idempotent under re-sampling, while a counter
// would need delta tracking for no benefit.
func SampleRuntime(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.SetHelp("mdw_runtime_goroutines", "Live goroutines (runtime.NumGoroutine).")
	r.Gauge("mdw_runtime_goroutines").Set(int64(runtime.NumGoroutine()))
	r.SetHelp("mdw_runtime_heap_alloc_bytes", "Bytes of allocated heap objects (MemStats.HeapAlloc).")
	r.Gauge("mdw_runtime_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.SetHelp("mdw_runtime_heap_inuse_bytes", "Bytes in in-use heap spans (MemStats.HeapInuse).")
	r.Gauge("mdw_runtime_heap_inuse_bytes").Set(int64(ms.HeapInuse))
	r.SetHelp("mdw_runtime_heap_objects", "Live heap objects (MemStats.HeapObjects).")
	r.Gauge("mdw_runtime_heap_objects").Set(int64(ms.HeapObjects))
	r.SetHelp("mdw_runtime_gc_cycles_total", "Completed GC cycles (MemStats.NumGC).")
	r.Gauge("mdw_runtime_gc_cycles_total").Set(int64(ms.NumGC))
	r.SetHelp("mdw_runtime_gc_pause_ns_total", "Cumulative GC stop-the-world pause (MemStats.PauseTotalNs).")
	r.Gauge("mdw_runtime_gc_pause_ns_total").Set(int64(ms.PauseTotalNs))
	r.SetHelp("mdw_runtime_next_gc_bytes", "Heap size target of the next GC cycle (MemStats.NextGC).")
	r.Gauge("mdw_runtime_next_gc_bytes").Set(int64(ms.NextGC))
}

// StartRuntimeSampler samples the runtime into the default registry now
// and then every interval (<= 0 selects DefaultRuntimeSampleInterval)
// until the returned stop function is called. Stop is idempotent.
func StartRuntimeSampler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultRuntimeSampleInterval
	}
	SampleRuntime(defaultRegistry)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				SampleRuntime(defaultRegistry)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
