package obs

import "runtime"

// Version identifies the build. Release builds stamp it at link time:
//
//	go build -ldflags "-X mdw/internal/obs.Version=$(git describe --always)"
//
// and plain `go build` keeps the "dev" default. The value is exported as
// the constant-1 gauge mdw_build_info with the version and Go toolchain
// as labels — the Prometheus convention for joining "what is deployed
// where" against every other series.
var Version = "dev"

func init() {
	defaultRegistry.SetHelp("mdw_build_info",
		"Build metadata as labels; the value is always 1.")
	defaultRegistry.Gauge("mdw_build_info",
		"version", Version, "goversion", runtime.Version()).Set(1)
}
