package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultMisestimateCapacity bounds the default misestimation log: the
// worst offenders by ratio survive; at capacity a new fingerprint evicts
// the entry with the smallest maximum ratio.
const DefaultMisestimateCapacity = 128

// Misestimate is one planner blind spot: a statement whose analyzed
// execution found an operator estimate off by at least the reporting
// threshold, keyed by fingerprint and folded across executions.
type Misestimate struct {
	Fingerprint string `json:"fingerprint"`
	Query       string `json:"query"` // example text: first misestimated execution seen
	// Count is how many analyzed executions of the fingerprint crossed
	// the threshold.
	Count int64 `json:"count"`
	// Ratio is the latest worst per-operator estimate/actual factor;
	// MaxRatio the largest ever seen for the fingerprint.
	Ratio    float64 `json:"ratio"`
	MaxRatio float64 `json:"maxRatio"`
	// WorstOp names the operator (rendered pattern) of the worst
	// misestimation, with the analyzed plan it came from.
	WorstOp  string    `json:"worstOp"`
	Plan     string    `json:"plan,omitempty"`
	LastSeen time.Time `json:"lastSeen"`
}

// MisestLog is a bounded fingerprint → misestimation table, safe for
// concurrent use.
type MisestLog struct {
	mu  sync.Mutex
	cap int
	m   map[string]*Misestimate
}

// NewMisestLog returns a log retaining at most cap fingerprints
// (cap <= 0 selects DefaultMisestimateCapacity).
func NewMisestLog(cap int) *MisestLog {
	if cap <= 0 {
		cap = DefaultMisestimateCapacity
	}
	return &MisestLog{cap: cap, m: make(map[string]*Misestimate)}
}

// Record folds one threshold-crossing execution into the fingerprint's
// entry. The worst-offender operator and plan are kept from the largest
// ratio seen, so the entry always explains its MaxRatio.
func (l *MisestLog) Record(m Misestimate) {
	if m.Fingerprint == "" {
		return
	}
	if m.LastSeen.IsZero() {
		m.LastSeen = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.m[m.Fingerprint]
	if !ok {
		if len(l.m) >= l.cap {
			l.evictLocked()
		}
		m.Count = 1
		m.MaxRatio = m.Ratio
		l.m[m.Fingerprint] = &m
		return
	}
	e.Count++
	e.Ratio = m.Ratio
	e.LastSeen = m.LastSeen
	if m.Ratio > e.MaxRatio {
		e.MaxRatio = m.Ratio
		e.WorstOp = m.WorstOp
		e.Plan = m.Plan
	}
}

// evictLocked removes the entry with the smallest maximum ratio. Called
// with l.mu held, only when a new fingerprint arrives at capacity.
func (l *MisestLog) evictLocked() {
	var victim string
	least := 0.0
	first := true
	for fp, e := range l.m {
		if first || e.MaxRatio < least {
			victim, least, first = fp, e.MaxRatio, false
		}
	}
	if victim != "" {
		delete(l.m, victim)
	}
}

// Len returns the number of retained fingerprints.
func (l *MisestLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// Reset clears the log (tests, mdw top -reset).
func (l *MisestLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m = make(map[string]*Misestimate)
}

// Snapshot returns the log sorted by maximum ratio, worst first.
func (l *MisestLog) Snapshot() []Misestimate {
	l.mu.Lock()
	out := make([]Misestimate, 0, len(l.m))
	for _, e := range l.m {
		out = append(out, *e)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxRatio != out[j].MaxRatio {
			return out[i].MaxRatio > out[j].MaxRatio
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}
