package obs

import "context"

// Request-scoped span propagation. One HTTP request (or CLI invocation)
// carries its active span through context.Context, so every layer it
// crosses — httpapi handler, warehouse method, service, query engine —
// attaches its spans to the same trace instead of starting disjoint
// roots. The pattern is the usual one:
//
//	sp, ctx := obs.StartChildCtx(ctx, "search")   // child, or new root
//	defer sp.Finish()
//	... pass ctx down ...
//
// and on hot paths that should only pay for tracing when the request is
// actually traced:
//
//	sp, ctx := obs.ChildCtx(ctx, "sparql exec")   // nil span when untraced
//	defer sp.Finish()                             // nil-safe
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span. A nil span
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil when there is
// none (or ctx is nil).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartChildCtx starts a span named name as a child of the span carried
// by ctx, or as the root of a new trace on the default tracer when ctx
// carries none. It returns the span and a context carrying it; service
// entry points use this so a standalone call still yields a trace while
// a call inside a traced request nests under it.
func StartChildCtx(ctx context.Context, name string) (*Span, context.Context) {
	var sp *Span
	if parent := SpanFromContext(ctx); parent != nil {
		sp = parent.Child(name)
	} else {
		sp = defaultTracer.Start(name)
	}
	return sp, ContextWithSpan(ctx, sp)
}

// ChildCtx starts a child span of the span carried by ctx. When ctx
// carries no span it returns (nil, ctx): the caller's SetLabel/Finish
// calls are nil-safe no-ops, so untraced executions pay only this
// context lookup. Hot paths (per-query engine internals) use this so
// benchmarks and untraced service calls do not allocate spans.
func ChildCtx(ctx context.Context, name string) (*Span, context.Context) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	sp := parent.Child(name)
	return sp, ContextWithSpan(ctx, sp)
}
