package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric updated with single
// atomic operations.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, cache sizes).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds — the usual two-five-ten ladder from 100µs to 10s, wide enough
// for both index probes and paper-scale bulk loads.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observations land in
// the first bucket whose upper bound is >= the value; an implicit +Inf
// bucket catches the rest. All updates are single atomic adds.
type Histogram struct {
	bounds []float64      // ascending upper bounds (seconds)
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sumNs  atomic.Int64 // sum of observations in nanoseconds
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// ObserveSince records the time elapsed since t0 and returns it.
func (h *Histogram) ObserveSince(t0 time.Time) time.Duration {
	d := time.Since(t0)
	h.Observe(d)
	return d
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Buckets returns the bucket upper bounds and their cumulative counts
// (the +Inf bucket is the final entry, equal to Count up to racing
// writers).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append(bounds, h.bounds...)
	bounds = append(bounds, math.Inf(1))
	cumulative = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observations
// summarized by cumulative histogram buckets, in the bounds' unit
// (seconds for latency histograms). The estimate interpolates linearly
// inside the bucket the quantile falls in — the same model Prometheus's
// histogram_quantile uses — with the first bucket anchored at 0. A
// quantile landing in the +Inf bucket clamps to the highest finite
// bound; an empty histogram or mismatched slice lengths yield NaN.
func Quantile(bounds []float64, cumulative []int64, q float64) float64 {
	n := len(cumulative)
	if n == 0 || len(bounds) != n || cumulative[n-1] == 0 {
		return math.NaN()
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := float64(cumulative[n-1])
	rank := q * total
	// The extra cumulative[i] > 0 conjunct keeps q=0 (rank 0) out of
	// empty leading buckets: the 0-quantile is the lower edge of the
	// first bucket that actually holds an observation, not bound 0 of a
	// histogram whose observations all live further right. Both
	// conjuncts are monotone over the cumulative counts, so the search
	// invariant holds.
	i := sort.Search(n, func(i int) bool {
		return cumulative[i] > 0 && float64(cumulative[i]) >= rank
	})
	if i >= n {
		i = n - 1
	}
	if i == n-1 || math.IsInf(bounds[i], 1) {
		// +Inf bucket: no width to interpolate in. Clamp to the highest
		// finite bound (the largest value the histogram can still name).
		for j := len(bounds) - 1; j >= 0; j-- {
			if !math.IsInf(bounds[j], 1) {
				return bounds[j]
			}
		}
		return math.NaN()
	}
	lo := 0.0
	var below int64
	if i > 0 {
		lo = bounds[i-1]
		below = cumulative[i-1]
	}
	inBucket := float64(cumulative[i] - below)
	if inBucket == 0 {
		return bounds[i]
	}
	return lo + (bounds[i]-lo)*(rank-float64(below))/inBucket
}

// Quantile estimates the q-quantile of the histogram's observations in
// seconds. See the package-level Quantile for the estimation model.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum := h.Buckets()
	return Quantile(bounds, cum, q)
}

// metricKind discriminates registry entries for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one registered time series: a family name plus an optional
// rendered label set.
type series struct {
	family string
	labels string // `k="v",k2="v2"` (sorted), "" when unlabelled
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a named collection of metrics. Lookup methods create on
// first use and return the same handle thereafter; instrumented packages
// resolve handles once into package variables, so steady-state updates
// never touch the registry lock.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
	help   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series), help: make(map[string]string)}
}

// L renders label key/value pairs for the registry lookup methods.
// Pairs are sorted by key so equivalent label sets share one series.
func L(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	n := len(kv) / 2 * 2 // ignore a dangling key
	type pair struct{ k, v string }
	pairs := make([]pair, 0, n/2)
	for i := 0; i+1 < n; i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

func (r *Registry) lookup(family, labels string, kind metricKind, bounds []float64) *series {
	key := family + "{" + labels + "}"
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.series[key]; ok {
		return s
	}
	s = &series{family: family, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(bounds)
	}
	r.series[key] = s
	return s
}

// Counter returns the counter for the family name and optional label
// pairs, creating it on first use. A series registered under one kind
// must not be re-requested under another (the first registration wins
// and mismatched lookups return an inert handle).
func (r *Registry) Counter(name string, kv ...string) *Counter {
	s := r.lookup(name, L(kv...), kindCounter, nil)
	if s.c == nil {
		return &Counter{} // kind clash: inert, never exported
	}
	return s.c
}

// Gauge returns the gauge for the family name and optional label pairs.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	s := r.lookup(name, L(kv...), kindGauge, nil)
	if s.g == nil {
		return &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for the family name and optional label
// pairs, creating it with the given bucket bounds (nil selects
// DefBuckets). Bounds are fixed at first registration.
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	s := r.lookup(name, L(kv...), kindHistogram, bounds)
	if s.h == nil {
		return newHistogram(bounds)
	}
	return s.h
}

// SetHelp records the HELP text emitted for a metric family.
func (r *Registry) SetHelp(family, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[family] = text
}

// SeriesValue is a point-in-time reading of one series, as returned by
// Snapshot — the shape the CLI pretty-printer and tests consume.
type SeriesValue struct {
	Family string
	Labels string
	Kind   string // "counter", "gauge", "histogram"
	Value  int64  // counter/gauge value; histogram observation count
	Sum    float64
	Bounds []float64
	Counts []int64 // cumulative, parallel to Bounds (+Inf last)
}

// Snapshot returns a sorted, consistent-enough reading of every series
// (individual values are atomic; the set is whatever was registered when
// the lock was taken).
func (r *Registry) Snapshot() []SeriesValue {
	r.mu.RLock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.RUnlock()
	out := make([]SeriesValue, 0, len(all))
	for _, s := range all {
		sv := SeriesValue{Family: s.family, Labels: s.labels}
		switch s.kind {
		case kindCounter:
			sv.Kind, sv.Value = "counter", s.c.Value()
		case kindGauge:
			sv.Kind, sv.Value = "gauge", s.g.Value()
		case kindHistogram:
			sv.Kind, sv.Value, sv.Sum = "histogram", s.h.Count(), s.h.Sum()
			sv.Bounds, sv.Counts = s.h.Buckets()
		}
		out = append(out, sv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family followed by
// its series; histograms expand into cumulative _bucket series plus
// _sum and _count. The registry lock is not held while writing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	r.mu.RLock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	var b strings.Builder
	lastFamily := ""
	for _, sv := range snap {
		if sv.Family != lastFamily {
			lastFamily = sv.Family
			if h := help[sv.Family]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", sv.Family, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", sv.Family, sv.Kind)
		}
		switch sv.Kind {
		case "counter", "gauge":
			b.WriteString(sv.Family)
			if sv.Labels != "" {
				b.WriteString("{" + sv.Labels + "}")
			}
			fmt.Fprintf(&b, " %d\n", sv.Value)
		case "histogram":
			for i, bound := range sv.Bounds {
				le := "+Inf"
				if !math.IsInf(bound, 1) {
					le = formatBound(bound)
				}
				labels := sv.Labels
				if labels != "" {
					labels += ","
				}
				fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", sv.Family, labels, le, sv.Counts[i])
			}
			suffix := ""
			if sv.Labels != "" {
				suffix = "{" + sv.Labels + "}"
			}
			fmt.Fprintf(&b, "%s_sum%s %g\n", sv.Family, suffix, sv.Sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", sv.Family, suffix, sv.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatBound renders a bucket bound the way Prometheus clients expect:
// shortest decimal form, no exponent for the usual latency range.
func formatBound(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}
