package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the size of the default tracer's ring of
// recent traces.
const DefaultTraceCapacity = 64

// Label is one key/value annotation on a span.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is the exported record of one finished (or still-open) span.
type SpanData struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"` // 0 for the root
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"durationNs"`
	Labels []Label       `json:"labels,omitempty"`
}

// Trace is one finished trace: a root span plus its descendants, in
// start order.
type Trace struct {
	ID    uint64        `json:"id"`
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"durationNs"`
	Spans []SpanData    `json:"spans"`
}

// traceRec accumulates the spans of one in-flight trace.
type traceRec struct {
	mu    sync.Mutex
	id    uint64
	name  string
	start time.Time
	spans []SpanData
	// published flips when the root span finishes and the trace is
	// copied into the ring; children finishing after that are dropped
	// (and counted — see Tracer.Dropped).
	published bool
}

// Span is one timed region. Spans are created from a Tracer (root spans)
// or from a parent span (children); Finish records the duration, and
// finishing the root publishes the whole trace into the tracer's ring.
// All methods are nil-safe so conditional instrumentation ("span only
// when the request is traced") needs no call-site guards.
type Span struct {
	tr     *Tracer
	rec    *traceRec
	id     uint64
	parent uint64
	name   string
	start  time.Time
	labels []Label
	done   atomic.Bool
}

// Tracer collects recent traces in a bounded ring: the last cap finished
// traces are retained, oldest evicted first.
type Tracer struct {
	mu      sync.Mutex
	ring    []Trace
	next    int
	filled  bool
	cap     int
	ids     atomic.Uint64
	started atomic.Int64
	dropped atomic.Int64
	// dropCounter, when set, mirrors dropped-span increments into a
	// metrics registry (wired up for the default tracer in obs.go).
	dropCounter *Counter
}

// NewTracer returns a tracer retaining the last cap traces (cap <= 0
// selects DefaultTraceCapacity).
func NewTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Trace, cap), cap: cap}
}

// Start begins a new trace and returns its root span. The trace record
// and the root span share one timestamp, so the published trace's Start
// always equals its root span's Start.
func (t *Tracer) Start(name string) *Span {
	id := t.ids.Add(1)
	t.started.Add(1)
	now := time.Now()
	return &Span{
		tr:    t,
		rec:   &traceRec{id: id, name: name, start: now},
		id:    id,
		name:  name,
		start: now,
	}
}

// Started returns the number of traces ever started.
func (t *Tracer) Started() int64 { return t.started.Load() }

// Dropped returns the number of spans discarded because they finished
// after their trace's root span had already published the trace.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Child starts a nested span with this span as parent. On a nil span it
// returns nil (which is itself safe to use).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tr:     s.tr,
		rec:    s.rec,
		id:     s.tr.ids.Add(1),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// TraceID returns the ID of the trace this span belongs to (the root
// span's ID), or 0 on a nil span.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.id
}

// SetLabel annotates the span. Not safe for concurrent use on one span
// (spans are single-goroutine by construction). No-op on a nil span.
func (s *Span) SetLabel(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.labels = append(s.labels, Label{Key: key, Value: value})
	return s
}

// Finish records the span's duration and returns it. Finishing the root
// span publishes the trace; Finish is idempotent, and children finished
// after their root are dropped and counted (Tracer.Dropped plus the
// mdw_trace_spans_dropped_total counter for the default tracer).
func (s *Span) Finish() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if !s.done.CompareAndSwap(false, true) {
		return d
	}
	sd := SpanData{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Dur: d, Labels: s.labels,
	}
	s.rec.mu.Lock()
	if s.rec.published {
		// The root already published this trace; the span can no longer
		// be attached. Count it instead of losing it silently.
		s.rec.mu.Unlock()
		s.tr.dropped.Add(1)
		if s.tr.dropCounter != nil {
			s.tr.dropCounter.Inc()
		}
		return d
	}
	s.rec.spans = append(s.rec.spans, sd)
	var tr *Trace
	if s.parent == 0 {
		s.rec.published = true
		spans := make([]SpanData, len(s.rec.spans))
		copy(spans, s.rec.spans)
		tr = &Trace{ID: s.rec.id, Name: s.rec.name, Start: s.rec.start, Dur: d, Spans: spans}
	}
	s.rec.mu.Unlock()
	if tr != nil {
		s.tr.publish(*tr)
	}
	return d
}

func (t *Tracer) publish(tr Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = tr
	t.next++
	if t.next == t.cap {
		t.next = 0
		t.filled = true
	}
}

// Recent returns the retained traces, newest first.
func (t *Tracer) Recent() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.filled {
		n = t.cap
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + t.cap) % t.cap
		out = append(out, t.ring[idx])
	}
	return out
}

// Get returns the retained trace with the given ID. It reports false
// when the trace never existed, has been evicted from the ring, or has
// not finished yet (a trace publishes when its root span finishes).
func (t *Tracer) Get(id uint64) (Trace, bool) {
	if id == 0 {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.filled {
		n = t.cap
	}
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + t.cap) % t.cap
		if t.ring[idx].ID == id {
			return t.ring[idx], true
		}
	}
	return Trace{}, false
}
