package obs

import (
	"fmt"
	"testing"
)

func TestMisestLogMergeAndEvict(t *testing.T) {
	l := NewMisestLog(3)
	l.Record(Misestimate{Fingerprint: "a", Query: "qa", Ratio: 10, WorstOp: "op-a1", Plan: "plan-a1"})
	l.Record(Misestimate{Fingerprint: "a", Query: "qa", Ratio: 4, WorstOp: "op-a2", Plan: "plan-a2"})
	got := l.Snapshot()
	if len(got) != 1 {
		t.Fatalf("snapshot has %d entries, want 1", len(got))
	}
	e := got[0]
	// The fold keeps the worst observation's explanation but tracks the
	// latest ratio.
	if e.Count != 2 || e.MaxRatio != 10 || e.Ratio != 4 || e.WorstOp != "op-a1" || e.Plan != "plan-a1" {
		t.Fatalf("bad folded entry: %+v", e)
	}

	l.Record(Misestimate{Fingerprint: "b", Ratio: 2})
	l.Record(Misestimate{Fingerprint: "c", Ratio: 50})
	// At capacity: a new fingerprint evicts the smallest MaxRatio ("b").
	l.Record(Misestimate{Fingerprint: "d", Ratio: 7})
	got = l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot has %d entries, want 3 (bounded)", len(got))
	}
	order := []string{got[0].Fingerprint, got[1].Fingerprint, got[2].Fingerprint}
	if order[0] != "c" || order[1] != "a" || order[2] != "d" {
		t.Fatalf("snapshot order %v, want worst-first [c a d]", order)
	}

	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset left entries behind")
	}
	// Ignored inputs must not allocate rows.
	l.Record(Misestimate{Fingerprint: "", Ratio: 99})
	if l.Len() != 0 {
		t.Fatal("empty fingerprint was recorded")
	}
}

func TestMisestLogDefaultCapacity(t *testing.T) {
	l := NewMisestLog(0)
	for i := 0; i < DefaultMisestimateCapacity+10; i++ {
		l.Record(Misestimate{Fingerprint: fmt.Sprintf("fp%d", i), Ratio: float64(i + 2)})
	}
	if l.Len() != DefaultMisestimateCapacity {
		t.Fatalf("len = %d, want %d", l.Len(), DefaultMisestimateCapacity)
	}
	// The survivors are the worst offenders: the lowest ratios were evicted.
	for _, e := range l.Snapshot() {
		if e.Ratio < 12 {
			t.Fatalf("low-ratio entry %+v survived eviction", e)
		}
	}
}
