package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mdw_test_total")
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (negative deltas ignored)", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	// Exactly on a bound lands in that bucket (le semantics: v <= bound).
	h.Observe(1 * time.Millisecond)   // == 0.001 -> bucket 0
	h.Observe(500 * time.Microsecond) // < 0.001  -> bucket 0
	h.Observe(2 * time.Millisecond)   // -> bucket 1 (0.01)
	h.Observe(10 * time.Millisecond)  // == 0.01  -> bucket 1
	h.Observe(50 * time.Millisecond)  // -> bucket 2 (0.1)
	h.Observe(2 * time.Second)        // -> +Inf
	bounds, cum := h.Buckets()
	if len(bounds) != 4 || len(cum) != 4 {
		t.Fatalf("got %d bounds / %d counts, want 4/4", len(bounds), len(cum))
	}
	want := []int64{2, 4, 5, 6} // cumulative
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (bounds %v, cum %v)", i, cum[i], w, bounds, cum)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	wantSum := 0.001 + 0.0005 + 0.002 + 0.01 + 0.05 + 2
	if diff := h.Sum() - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mdw_test_seconds", nil)
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

func TestRegistrySameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("mdw_x_total", "op", "add")
	b := r.Counter("mdw_x_total", "op", "add")
	if a != b {
		t.Fatal("same family+labels must return the same handle")
	}
	c := r.Counter("mdw_x_total", "op", "del")
	if a == c {
		t.Fatal("different labels must return distinct handles")
	}
	// Label order must not matter.
	d1 := r.Gauge("mdw_y", "a", "1", "b", "2")
	d2 := r.Gauge("mdw_y", "b", "2", "a", "1")
	if d1 != d2 {
		t.Fatal("label order must not create a new series")
	}
}

func TestRegistryKindClashInert(t *testing.T) {
	r := NewRegistry()
	r.Counter("mdw_clash")
	g := r.Gauge("mdw_clash") // wrong kind: inert handle, no panic
	g.Set(42)
	for _, sv := range r.Snapshot() {
		if sv.Family == "mdw_clash" && sv.Kind != "counter" {
			t.Fatalf("clash series exported as %s, want counter", sv.Kind)
		}
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("mdw_store_triples", "Triples in the current model.")
	r.Gauge("mdw_store_triples").Set(1200000)
	r.SetHelp("mdw_query_total", "Queries executed.")
	r.Counter("mdw_query_total", "kind", "select").Add(3)
	r.Counter("mdw_query_total", "kind", "ask").Add(1)
	r.SetHelp("mdw_query_seconds", "Query latency.")
	h := r.Histogram("mdw_query_seconds", []float64{0.005, 0.05})
	h.Observe(time.Millisecond)
	h.Observe(10 * time.Millisecond)
	h.Observe(100 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP mdw_query_seconds Query latency.
# TYPE mdw_query_seconds histogram
mdw_query_seconds_bucket{le="0.005"} 1
mdw_query_seconds_bucket{le="0.05"} 2
mdw_query_seconds_bucket{le="+Inf"} 3
mdw_query_seconds_sum 0.111
mdw_query_seconds_count 3
# HELP mdw_query_total Queries executed.
# TYPE mdw_query_total counter
mdw_query_total{kind="ask"} 1
mdw_query_total{kind="select"} 3
# HELP mdw_store_triples Triples in the current model.
# TYPE mdw_store_triples gauge
mdw_store_triples 1200000
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	if l.Record(SlowQuery{Query: "fast", Total: time.Millisecond}) {
		t.Fatal("entry under threshold must not be recorded")
	}
	if !l.Record(SlowQuery{Query: "slow", Total: 20 * time.Millisecond}) {
		t.Fatal("entry over threshold must be recorded")
	}
	// Threshold zero logs everything — the acceptance-test configuration.
	l.SetThreshold(0)
	if !l.Record(SlowQuery{Query: "any", Total: 0}) {
		t.Fatal("threshold 0 must log every query")
	}
	// Negative threshold disables the log.
	l.SetThreshold(-1)
	if l.Record(SlowQuery{Query: "off", Total: time.Hour}) {
		t.Fatal("negative threshold must disable logging")
	}
	es := l.Entries()
	if len(es) != 2 || es[0].Query != "any" || es[1].Query != "slow" {
		t.Fatalf("entries = %+v, want [any slow] newest-first", es)
	}
}

func TestSlowLogRingEviction(t *testing.T) {
	l := NewSlowLog(3, 0)
	for i := 0; i < 5; i++ {
		l.Record(SlowQuery{Query: fmt.Sprintf("q%d", i), Total: time.Second})
	}
	es := l.Entries()
	if len(es) != 3 {
		t.Fatalf("len = %d, want capacity 3", len(es))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if es[i].Query != want {
			t.Fatalf("entries[%d] = %q, want %q (newest first)", i, es[i].Query, want)
		}
	}
	if l.Recorded() != 5 {
		t.Fatalf("recorded = %d, want 5", l.Recorded())
	}
}

func TestTracerSpansAndRing(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 3; i++ {
		root := tr.Start(fmt.Sprintf("req%d", i))
		child := root.Child("exec").SetLabel("rows", "7")
		child.Finish()
		child.Finish() // idempotent
		root.Finish()
	}
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring len = %d, want 2", len(recent))
	}
	if recent[0].Name != "req2" || recent[1].Name != "req1" {
		t.Fatalf("ring order = [%s %s], want [req2 req1]", recent[0].Name, recent[1].Name)
	}
	got := recent[0]
	if len(got.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (child + root)", len(got.Spans))
	}
	child, root := got.Spans[0], got.Spans[1]
	if child.Parent != root.ID {
		t.Fatalf("child.Parent = %d, want root ID %d", child.Parent, root.ID)
	}
	if root.Parent != 0 {
		t.Fatalf("root.Parent = %d, want 0", root.Parent)
	}
	if len(child.Labels) != 1 || child.Labels[0] != (Label{"rows", "7"}) {
		t.Fatalf("child labels = %+v", child.Labels)
	}
	if tr.Started() != 3 {
		t.Fatalf("started = %d, want 3", tr.Started())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := tr.Start(fmt.Sprintf("g%d", i))
				s.Child("work").Finish()
				s.Finish()
			}
		}(i)
	}
	wg.Wait()
	if got := len(tr.Recent()); got != 16 {
		t.Fatalf("ring len = %d, want 16", got)
	}
	if tr.Started() != 400 {
		t.Fatalf("started = %d, want 400", tr.Started())
	}
}
