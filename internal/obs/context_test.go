package obs

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestStartSharesOneTimestamp(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("root")
	if !sp.start.Equal(sp.rec.start) {
		t.Fatalf("root span start %v != trace record start %v", sp.start, sp.rec.start)
	}
	sp.Finish()
	got, ok := tr.Get(sp.TraceID())
	if !ok {
		t.Fatal("published trace not found")
	}
	if !got.Start.Equal(got.Spans[0].Start) {
		t.Fatalf("published trace start %v != root span start %v", got.Start, got.Spans[0].Start)
	}
}

func TestLateChildFinishIsDroppedAndCounted(t *testing.T) {
	tr := NewTracer(4)
	var c Counter
	tr.dropCounter = &c
	root := tr.Start("root")
	late := root.Child("late")
	early := root.Child("early")
	early.Finish()
	root.Finish()
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("Dropped = %d before any late finish", d)
	}
	late.Finish()
	if d := tr.Dropped(); d != 1 {
		t.Fatalf("Dropped = %d, want 1", d)
	}
	if v := c.Value(); v != 1 {
		t.Fatalf("drop counter = %d, want 1", v)
	}
	got, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not published")
	}
	if len(got.Spans) != 2 {
		t.Fatalf("published trace has %d spans, want 2 (late child dropped)", len(got.Spans))
	}
	for _, s := range got.Spans {
		if s.Name == "late" {
			t.Fatal("late child leaked into published trace")
		}
	}
}

func TestTracerGet(t *testing.T) {
	tr := NewTracer(2)
	first := tr.Start("first")
	first.Finish()
	if _, ok := tr.Get(0); ok {
		t.Fatal("Get(0) reported a trace")
	}
	if _, ok := tr.Get(999); ok {
		t.Fatal("Get of unknown ID reported a trace")
	}
	got, ok := tr.Get(first.TraceID())
	if !ok || got.Name != "first" {
		t.Fatalf("Get(first) = %+v, %v", got, ok)
	}
	// Overflow the 2-slot ring; the first trace must be evicted.
	for i := 0; i < 2; i++ {
		tr.Start("later").Finish()
	}
	if _, ok := tr.Get(first.TraceID()); ok {
		t.Fatal("evicted trace still retrievable")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(4)
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatalf("SpanFromContext(empty) = %v", got)
	}
	if got := SpanFromContext(nil); got != nil { //nolint:staticcheck // nil-safety is the contract under test
		t.Fatalf("SpanFromContext(nil) = %v", got)
	}

	// ChildCtx without a parent must not start a trace.
	sp, ctx := ChildCtx(context.Background(), "hot")
	if sp != nil {
		t.Fatalf("ChildCtx without parent returned span %v", sp)
	}
	sp.SetLabel("k", "v") // nil-safe
	sp.Finish()
	if SpanFromContext(ctx) != nil {
		t.Fatal("ChildCtx without parent attached a span to ctx")
	}

	// A root attached to ctx makes both StartChildCtx and ChildCtx nest.
	root := tr.Start("root")
	ctx = ContextWithSpan(context.Background(), root)
	if SpanFromContext(ctx) != root {
		t.Fatal("ContextWithSpan/SpanFromContext round trip failed")
	}
	child, ctx2 := StartChildCtx(ctx, "mid")
	if child == nil || child.parent != root.id {
		t.Fatalf("StartChildCtx did not nest under root: %+v", child)
	}
	leaf, _ := ChildCtx(ctx2, "leaf")
	if leaf == nil || leaf.parent != child.id {
		t.Fatalf("ChildCtx did not nest under mid: %+v", leaf)
	}
	if leaf.TraceID() != root.TraceID() {
		t.Fatalf("leaf trace ID %d != root trace ID %d", leaf.TraceID(), root.TraceID())
	}
	leaf.Finish()
	child.Finish()
	root.Finish()
	got, ok := tr.Get(root.TraceID())
	if !ok || len(got.Spans) != 3 {
		t.Fatalf("trace = %+v, %v; want 3 spans", got, ok)
	}
}

func TestStartChildCtxRootFallback(t *testing.T) {
	sp, ctx := StartChildCtx(context.Background(), "standalone")
	if sp == nil || sp.parent != 0 {
		t.Fatalf("StartChildCtx without parent did not start a root: %+v", sp)
	}
	if SpanFromContext(ctx) != sp {
		t.Fatal("returned ctx does not carry the new root")
	}
	sp.Finish()
	if _, ok := DefaultTracer().Get(sp.TraceID()); !ok {
		t.Fatal("root fallback trace not published to default tracer")
	}
}

func TestStatementsRecordAndSnapshot(t *testing.T) {
	s := NewStatements(8)
	s.Record("", "ignored", 1, time.Second, nil) // empty fingerprint: dropped
	if s.Len() != 0 {
		t.Fatalf("empty fingerprint recorded; len = %d", s.Len())
	}
	s.Record("fpA", "SELECT a", 3, 30*time.Millisecond, stringerFunc("plan-a1"))
	s.Record("fpA", "SELECT a variant", 5, 10*time.Millisecond, stringerFunc("plan-a2"))
	s.Record("fpB", "SELECT b", 1, 25*time.Millisecond, nil)
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	a := snap[0]
	if a.Fingerprint != "fpA" {
		t.Fatalf("snapshot not sorted by total time: first = %q", a.Fingerprint)
	}
	if a.Query != "SELECT a" {
		t.Fatalf("example query = %q, want first-seen text", a.Query)
	}
	if a.Calls != 2 || a.Rows != 8 {
		t.Fatalf("calls/rows = %d/%d, want 2/8", a.Calls, a.Rows)
	}
	if a.Total != 40*time.Millisecond || a.Min != 10*time.Millisecond ||
		a.Max != 30*time.Millisecond || a.Mean != 20*time.Millisecond {
		t.Fatalf("latency summary = total %v min %v max %v mean %v", a.Total, a.Min, a.Max, a.Mean)
	}
	if a.LastPlan != "plan-a2" {
		t.Fatalf("last plan = %q, want plan-a2", a.LastPlan)
	}
	if snap[1].LastPlan != "" {
		t.Fatalf("fpB plan = %q, want empty (never set)", snap[1].LastPlan)
	}
}

func TestStatementsEviction(t *testing.T) {
	s := NewStatements(2)
	s.Record("cheap", "q1", 0, 1*time.Millisecond, nil)
	s.Record("costly", "q2", 0, 100*time.Millisecond, nil)
	s.Record("new", "q3", 0, 50*time.Millisecond, nil)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if s.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", s.Evicted())
	}
	for _, st := range s.Snapshot() {
		if st.Fingerprint == "cheap" {
			t.Fatal("least-total entry survived eviction")
		}
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("len after Reset = %d", s.Len())
	}
	// Regression: Reset must clear the eviction counter with the table —
	// a reset table reporting phantom evictions misled `mdw top -reset`.
	if s.Evicted() != 0 {
		t.Fatalf("evicted after Reset = %d, want 0", s.Evicted())
	}
}

type stringerFunc string

func (s stringerFunc) String() string { return string(s) }

func TestQuantile(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1, math.Inf(1)}
	// 100 observations: 50 in (0,10ms], 40 in (10ms,100ms], 10 in (100ms,1s].
	cum := []int64{50, 90, 100, 100}
	if got := Quantile(bounds, cum, 0.5); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.01", got)
	}
	// p95: rank 95 falls in the third bucket (90..100 over 0.1..1):
	// 0.1 + 0.9*(95-90)/10 = 0.55.
	if got := Quantile(bounds, cum, 0.95); math.Abs(got-0.55) > 1e-9 {
		t.Fatalf("p95 = %v, want 0.55", got)
	}
	// A quantile landing in the +Inf bucket clamps to the last finite bound.
	cumInf := []int64{0, 0, 0, 10}
	if got := Quantile(bounds, cumInf, 0.5); got != 1 {
		t.Fatalf("+Inf bucket quantile = %v, want 1", got)
	}
	if got := Quantile(bounds, []int64{0, 0, 0, 0}, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %v, want NaN", got)
	}
	if got := Quantile(nil, nil, 0.5); !math.IsNaN(got) {
		t.Fatalf("nil histogram quantile = %v, want NaN", got)
	}

	h := NewRegistry().Histogram("h", nil)
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if math.IsNaN(p50) || p50 <= 0 || p50 > 0.01 {
		t.Fatalf("histogram p50 = %v, want within (0, 0.01]", p50)
	}
}

func TestSampleRuntime(t *testing.T) {
	r := NewRegistry()
	SampleRuntime(r)
	if v := r.Gauge("mdw_runtime_goroutines").Value(); v < 1 {
		t.Fatalf("goroutines gauge = %d", v)
	}
	if v := r.Gauge("mdw_runtime_heap_alloc_bytes").Value(); v <= 0 {
		t.Fatalf("heap alloc gauge = %d", v)
	}
	stop := StartRuntimeSampler(time.Hour)
	stop()
	stop() // idempotent
	if v := Default().Gauge("mdw_runtime_goroutines").Value(); v < 1 {
		t.Fatalf("default registry goroutines gauge = %d after sampler start", v)
	}
}
