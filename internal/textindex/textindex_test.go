package textindex

import (
	"fmt"
	"reflect"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"customer_id", []string{"customer", "id"}},
		{"v_customer", []string{"v", "customer"}},
		{"TCD100", []string{"TCD100"}},
		{"  spaced  out ", []string{"spaced", "out"}},
		{"___", nil},
		{"", nil},
		{"a", []string{"a"}},
		{"dup dup dup", []string{"dup", "dup", "dup"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// fixture builds a store with a handful of named (and described)
// subjects and returns the index over it.
func fixture(t *testing.T) (*store.Store, *Index) {
	t.Helper()
	st := store.New()
	add := func(path, name, desc string) {
		s := rdf.IRI(rdf.InstNS + path)
		st.Add("m", rdf.T(s, rdf.HasName, rdf.Literal(name)))
		if desc != "" {
			st.Add("m", rdf.T(s, rdf.IRI(rdf.RDFSComment), rdf.Literal(desc)))
		}
	}
	add("t1", "customer_id", "")
	add("t2", "Customer Account", "primary account holder")
	add("t3", "v_customer", "")
	add("t4", "TCD100", "customer segment marker")
	add("t5", "partner_id", "")
	ix := Build("m", st.Generation("m"), st.ViewOf("m"), st.Dict(), Config{})
	return st, ix
}

func subjectsOf(st *store.Store, ps []Posting) []string {
	var out []string
	for _, p := range ps {
		out = append(out, st.Dict().Term(p.Subject).Value)
	}
	return out
}

func TestSearchFoldedSubstring(t *testing.T) {
	st, ix := fixture(t)

	for _, term := range []string{"customer", "CUSTOMER", "stome"} {
		got := subjectsOf(st, ix.Search(term, FieldName))
		if len(got) != 3 {
			t.Errorf("Search(%q) names = %v, want 3 subjects", term, got)
		}
	}
	// Tokens-spanning term: "r_i" occurs in "customer_id" and
	// "partner_id" across the token boundary and must still be found.
	if got := ix.Search("r_i", FieldName); len(got) != 2 {
		t.Errorf("Search(r_i) = %v, want customer_id and partner_id", subjectsOf(st, got))
	}
	// "r i" (space, not underscore) occurs in neither literal.
	if got := ix.Search("r i", FieldName); len(got) != 0 {
		t.Errorf("Search(\"r i\") = %v, want none", subjectsOf(st, got))
	}
	// Descriptions are a separate field.
	if got := ix.Search("customer", FieldDescription); len(got) != 1 {
		t.Errorf("Search(customer, desc) = %v, want TCD100's comment", subjectsOf(st, got))
	}
	// A separator-only term matches no literal but must not panic (its
	// candidate set is the whole field).
	if got := ix.Search("###", FieldName); len(got) != 0 {
		t.Errorf("Search(###) = %v, want none", subjectsOf(st, got))
	}
}

func TestVocabularyLookups(t *testing.T) {
	_, ix := fixture(t)
	if got := ix.TokensWithPrefix("cust"); !reflect.DeepEqual(got, []string{"customer"}) {
		t.Errorf("TokensWithPrefix(cust) = %v", got)
	}
	if got := ix.TokensWithPrefix("CUST"); !reflect.DeepEqual(got, []string{"customer"}) {
		t.Errorf("TokensWithPrefix folds its argument: %v", got)
	}
	got := ix.TokensContaining("ccoun")
	if !reflect.DeepEqual(got, []string{"account"}) {
		t.Errorf("TokensContaining(ccoun) = %v", got)
	}
	if got := ix.TokensWithPrefix("zzz"); len(got) != 0 {
		t.Errorf("TokensWithPrefix(zzz) = %v", got)
	}
}

func TestSearchAnyAttributesFirstTerm(t *testing.T) {
	st, ix := fixture(t)
	ms := ix.SearchAny([]string{"partner", "customer"}, FieldName)
	if len(ms) != 4 {
		t.Fatalf("SearchAny = %v", ms)
	}
	for _, m := range ms {
		subj := st.Dict().Term(m.Subject).Value
		wantTerm := 1
		if subj == rdf.InstNS+"t5" {
			wantTerm = 0
		}
		if m.Term != wantTerm {
			t.Errorf("%s attributed to term %d, want %d", subj, m.Term, wantTerm)
		}
	}
}

func TestUpdateIsIncrementalAndImmutable(t *testing.T) {
	st, ix := fixture(t)
	before := ix.Stats()

	// Add a new literal and remove one.
	s6 := rdf.IRI(rdf.InstNS + "t6")
	st.Add("m", rdf.T(s6, rdf.HasName, rdf.Literal("customer_flag")))
	st.Remove("m", rdf.T(rdf.IRI(rdf.InstNS+"t5"), rdf.HasName, rdf.Literal("partner_id")))

	next, added, removed := ix.Update(st.ViewOf("m"), st.Generation("m"))
	if added != 1 || removed != 1 {
		t.Fatalf("Update added=%d removed=%d, want 1/1", added, removed)
	}
	if next.Gen() != st.Generation("m") {
		t.Errorf("updated index gen = %d, want %d", next.Gen(), st.Generation("m"))
	}
	// The predecessor still answers from its old state.
	if got := ix.Search("partner", FieldName); len(got) != 1 {
		t.Errorf("old index lost partner_id: %v", subjectsOf(st, got))
	}
	if got := ix.Stats(); got != before {
		t.Errorf("old index stats changed: %+v -> %+v", before, got)
	}
	// The successor reflects both changes.
	if got := next.Search("partner", FieldName); len(got) != 0 {
		t.Errorf("new index still has partner_id: %v", subjectsOf(st, got))
	}
	if got := next.Search("customer", FieldName); len(got) != 4 {
		t.Errorf("new index missing customer_flag: %v", subjectsOf(st, got))
	}

	// A no-op update shares everything and reports no changes.
	same, a, r := next.Update(st.ViewOf("m"), st.Generation("m"))
	if a != 0 || r != 0 {
		t.Errorf("no-op update added=%d removed=%d", a, r)
	}
	if same.Stats().Literals != next.Stats().Literals {
		t.Errorf("no-op update changed literal count")
	}
}

// TestUpdateLearnsLateConfiguredPredicate is the regression test for the
// frozen-field-map bug: an index built before ANY triple of a configured
// predicate exists (so the predicate was not even interned at build
// time) must still pick that predicate's triples up through delta
// updates, not only through a full rebuild.
func TestUpdateLearnsLateConfiguredPredicate(t *testing.T) {
	st := store.New()
	s1 := rdf.IRI(rdf.InstNS + "t1")
	st.Add("m", rdf.T(s1, rdf.HasName, rdf.Literal("tcd100")))
	ix := Build("m", st.Generation("m"), st.ViewOf("m"), st.Dict(), Config{})

	// First description ever, added after the build.
	st.Add("m", rdf.T(s1, rdf.IRI(rdf.RDFSComment), rdf.Literal("customer segment marker")))
	next, added, removed := ix.Update(st.ViewOf("m"), st.Generation("m"))
	if added != 1 || removed != 0 {
		t.Fatalf("Update added=%d removed=%d, want 1/0", added, removed)
	}
	if got := next.Search("marker", FieldDescription); len(got) != 1 {
		t.Errorf("description added after build: %d indexed matches, want 1", len(got))
	}

	// Same for the first rdfs:label.
	st.Add("m", rdf.T(s1, rdf.Label, rdf.Literal("Segment Marker Column")))
	next2, _, _ := next.Update(st.ViewOf("m"), st.Generation("m"))
	if got := next2.Search("segment", FieldName); len(got) != 1 {
		t.Errorf("label added after build: %d indexed matches, want 1", len(got))
	}
}

func TestFoldUnicode(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Customer_ID", "customer_id"},
		{"plain ascii", "plain ascii"},
		{"ſecret", "secret"}, // long s — plain ToLower misses this
		{"Kelvin", "kelvin"}, // Kelvin sign
	}
	for _, c := range cases {
		if got := Fold(c.in); got != c.want {
			t.Errorf("Fold(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Index and query sides fold identically: a literal spelled with the
	// Kelvin sign is found by its ASCII spelling.
	st := store.New()
	st.Add("m", rdf.T(rdf.IRI(rdf.InstNS+"k"), rdf.HasName, rdf.Literal("temp_K_sensor")))
	ix := Build("m", st.Generation("m"), st.ViewOf("m"), st.Dict(), Config{})
	if got := ix.Search("K_sensor", FieldName); len(got) != 1 {
		t.Errorf("Search(K_sensor) = %d matches, want 1", len(got))
	}
}

func TestManagerCachesPerGeneration(t *testing.T) {
	st, _ := fixture(t)
	m := NewManager(Config{})

	gen := st.Generation("m")
	ix := m.Refresh("m", gen, st.ViewOf("m"), st.Dict())
	if got, ok := m.Get("m", gen); !ok || got != ix {
		t.Fatal("Get after Refresh missed")
	}
	// Same generation: Refresh returns the cached value.
	if again := m.Refresh("m", gen, st.ViewOf("m"), st.Dict()); again != ix {
		t.Error("Refresh rebuilt an up-to-date index")
	}
	// New generation: the old key no longer answers, Refresh updates.
	st.Add("m", rdf.T(rdf.IRI(rdf.InstNS+"t9"), rdf.HasName, rdf.Literal("fresh")))
	if _, ok := m.Get("m", st.Generation("m")); ok {
		t.Error("Get hit for a generation never indexed")
	}
	next := m.Refresh("m", st.Generation("m"), st.ViewOf("m"), st.Dict())
	if next == ix {
		t.Error("Refresh did not advance the index")
	}
	if m.Cached("m") != next {
		t.Error("Cached should return the latest index")
	}

	stats := m.StatsAll()
	if len(stats) != 1 || stats[0].Model != "m" || stats[0].Gen != st.Generation("m") {
		t.Errorf("StatsAll = %+v", stats)
	}
	m.Drop("m")
	if m.Cached("m") != nil {
		t.Error("Drop left a cached index")
	}
}

func TestStatsCounters(t *testing.T) {
	_, ix := fixture(t)
	st := ix.Stats()
	if st.Literals != 7 { // 5 names + 2 descriptions
		t.Errorf("Literals = %d, want 7", st.Literals)
	}
	// Every configured predicate is interned up front — including
	// rdfs:label, which has no triples in the fixture — so that triples
	// using it later are picked up by delta updates.
	if st.Predicates != 3 { // dm:hasName + rdfs:label + rdfs:comment
		t.Errorf("Predicates = %d, want 3", st.Predicates)
	}
	if st.Tokens == 0 || st.Postings < st.Literals {
		t.Errorf("Stats = %+v", st)
	}
}

// TestBuildMatchesScanOnRandomishCorpus cross-checks Search against a
// brute-force fold+contains scan over a generated corpus of literals.
func TestBuildMatchesScanOnRandomishCorpus(t *testing.T) {
	st := store.New()
	words := []string{"customer", "client", "partner", "account", "tcd100", "v", "id", "flag", "segment"}
	var texts []string
	for i := 0; i < 120; i++ {
		text := fmt.Sprintf("%s_%s_%d", words[i%len(words)], words[(i*7+3)%len(words)], i%10)
		texts = append(texts, text)
		st.Add("m", rdf.T(rdf.IRI(fmt.Sprintf("%sc%d", rdf.InstNS, i)), rdf.HasName, rdf.Literal(text)))
	}
	ix := Build("m", st.Generation("m"), st.ViewOf("m"), st.Dict(), Config{})
	for _, term := range []string{"customer", "CUST", "0_cl", "d_1", "tcd", "nope", "t_1", "1"} {
		want := 0
		for _, text := range texts {
			if containsFolded(text, term) {
				want++
			}
		}
		if got := len(ix.Search(term, FieldName)); got != want {
			t.Errorf("Search(%q) = %d matches, scan says %d", term, got, want)
		}
	}
}

func containsFolded(text, term string) bool {
	f, ft := Fold(text), Fold(term)
	for i := 0; i+len(ft) <= len(f); i++ {
		if f[i:i+len(ft)] == ft {
			return true
		}
	}
	return false
}
