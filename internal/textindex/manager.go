package textindex

import (
	"sort"
	"sync"

	"mdw/internal/store"
)

// Manager caches one Index per model, keyed by the model generation it
// was built from. It is the component the search service and the
// warehouse share: the warehouse registers indexes when models load, the
// search service asks for the index matching the generation it observed
// and refreshes it when the model has moved on.
//
// Manager methods are safe for concurrent use, and none of them holds
// the manager's lock while tokenizing: a build in progress never makes
// Get callers (i.e. concurrent searches) wait. Returned *Index values
// are immutable, so callers query them outside the manager's lock.
type Manager struct {
	mu  sync.Mutex
	cfg Config
	idx map[string]*Index      // model -> latest index
	bld map[string]*sync.Mutex // model -> build lock (single-flight)
}

// NewManager returns a manager building indexes with cfg (zero-valued
// slices in cfg select the defaults).
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg: cfg.withDefaults(),
		idx: make(map[string]*Index),
		bld: make(map[string]*sync.Mutex),
	}
}

// Config returns the predicate configuration the manager builds with.
func (m *Manager) Config() Config { return m.cfg }

// Fields interns the manager's configured predicates and returns the
// predicate → field map (see Config.Fields).
func (m *Manager) Fields(dict *store.Dict) map[store.ID]Field {
	return m.cfg.Fields(dict)
}

// Get returns the cached index for model if it matches generation gen.
func (m *Manager) Get(model string, gen uint64) (*Index, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ix, ok := m.idx[model]
	if !ok || ix.gen != gen {
		return nil, false
	}
	return ix, true
}

// Cached returns the latest cached index for model regardless of its
// generation (nil when none exists) — the best-effort answer when a
// fresh index cannot be obtained.
func (m *Manager) Cached(model string) *Index {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.idx[model]
}

// BuildLock returns the per-model mutex that single-flights index
// construction: builders take it (Lock to wait, TryLock to fall back to
// scanning instead) around the Collect → BuildPostings/UpdateWith →
// Install sequence so at most one goroutine tokenizes a model at a time.
func (m *Manager) BuildLock(model string) *sync.Mutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	bm, ok := m.bld[model]
	if !ok {
		bm = &sync.Mutex{}
		m.bld[model] = bm
	}
	return bm
}

// Install publishes ix as the latest index for its model and returns the
// cached value: ix itself, or the already-installed index when one of
// the same generation is present (so equal-generation callers observe a
// stable pointer). Later installs win otherwise — generations are
// monotonic per model, and builders are serialized by BuildLock.
func (m *Manager) Install(ix *Index) *Index {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.idx[ix.model]; ok && cur.gen == ix.gen {
		return cur
	}
	m.idx[ix.model] = ix
	return ix
}

// Refresh returns an index for model at generation gen, building or
// delta-updating as needed and caching the result. The view must be a
// consistent snapshot of the model (plus its entailment index) at gen
// for the whole call; callers obtain one via store.ReadView. Callers
// that cannot afford tokenization under the store's read lock split the
// work themselves (Collect under the lock, BuildPostings/UpdateWith and
// Install outside it) — that is what the search service does.
func (m *Manager) Refresh(model string, gen uint64, v *store.View, dict *store.Dict) *Index {
	if ix, ok := m.Get(model, gen); ok {
		return ix
	}
	field := m.Fields(dict)
	posts := Collect(v, field)
	var ix *Index
	if prev := m.Cached(model); prev != nil {
		ix, _, _ = prev.UpdateWith(gen, field, posts)
	} else {
		ix = BuildPostings(model, gen, dict, field, posts)
	}
	return m.Install(ix)
}

// Drop forgets the cached index for model (e.g. when the model is
// dropped or bulk-replaced and a delta update would be wasteful).
func (m *Manager) Drop(model string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.idx, model)
}

// StatsAll reports the stats of every cached index, sorted by model.
func (m *Manager) StatsAll() []Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Stats, 0, len(m.idx))
	for _, ix := range m.idx {
		out = append(out, ix.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}
