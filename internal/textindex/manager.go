package textindex

import (
	"sort"
	"sync"

	"mdw/internal/store"
)

// Manager caches one Index per model, keyed by the model generation it
// was built from. It is the component the search service and the
// warehouse share: the warehouse registers indexes when models load, the
// search service asks for the index matching the generation it observed
// and refreshes it when the model has moved on.
//
// Manager methods are safe for concurrent use. Returned *Index values
// are immutable, so callers query them outside the manager's lock.
type Manager struct {
	mu  sync.Mutex
	cfg Config
	idx map[string]*Index // model -> latest index
}

// NewManager returns a manager building indexes with cfg (zero-valued
// slices in cfg select the defaults).
func NewManager(cfg Config) *Manager {
	return &Manager{cfg: cfg.withDefaults(), idx: make(map[string]*Index)}
}

// Config returns the predicate configuration the manager builds with.
func (m *Manager) Config() Config { return m.cfg }

// Get returns the cached index for model if it matches generation gen.
func (m *Manager) Get(model string, gen uint64) (*Index, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ix, ok := m.idx[model]
	if !ok || ix.gen != gen {
		return nil, false
	}
	return ix, true
}

// Cached returns the latest cached index for model regardless of its
// generation (nil when none exists) — the best-effort answer when a
// fresh index cannot be obtained.
func (m *Manager) Cached(model string) *Index {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.idx[model]
}

// Refresh returns an index for model at generation gen, building or
// delta-updating as needed and caching the result. The view must be a
// consistent snapshot of the model (plus its entailment index) at gen;
// callers obtain one via store.ReadView. Concurrent Refresh calls for
// the same model serialize on the manager's lock; whichever finishes
// last wins the cache slot, and every caller gets an index valid for the
// generation it presented.
func (m *Manager) Refresh(model string, gen uint64, v *store.View, dict *store.Dict) *Index {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ix, ok := m.idx[model]; ok {
		if ix.gen == gen {
			return ix
		}
		next, _, _ := ix.Update(v, gen)
		m.idx[model] = next
		return next
	}
	ix := Build(model, gen, v, dict, m.cfg)
	m.idx[model] = ix
	return ix
}

// Drop forgets the cached index for model (e.g. when the model is
// dropped or bulk-replaced and a delta update would be wasteful).
func (m *Manager) Drop(model string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.idx, model)
}

// StatsAll reports the stats of every cached index, sorted by model.
func (m *Manager) StatsAll() []Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Stats, 0, len(m.idx))
	for _, ix := range m.idx {
		out = append(out, ix.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}
