package textindex

import "mdw/internal/obs"

// Metric handles, resolved once at package init.
var (
	obsBuildHist = obs.Default().Histogram("mdw_textindex_build_seconds", nil, "kind", "full")
	obsDeltaHist = obs.Default().Histogram("mdw_textindex_build_seconds", nil, "kind", "delta")
	obsSearches  = obs.Default().Counter("mdw_textindex_searches_total")
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_textindex_build_seconds", "Full-text index construction latency by kind (full tokenization vs delta update).")
	r.SetHelp("mdw_textindex_searches_total", "Token lookups against built indexes (Search and SearchAny).")
}
