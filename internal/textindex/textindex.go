// Package textindex implements the inverted full-text index that powers
// the search service of Section IV.A at scale.
//
// The paper's Listing 1 matches search terms against item names with
// regexp_like(name, term, 'i') — an O(total triples) scan per query. An
// enterprise meta-data warehouse cannot serve heavy search traffic that
// way; SODA (Blunschi et al., the follow-on system by the same group)
// and comparable metadata search engines instead maintain a dedicated
// inverted index over the graph's labels. This package is that index:
//
//   - the literal objects of a configurable set of predicates (item
//     names, labels, and descriptions by default) are tokenized and
//     case-folded into a token → posting-list map keyed by dictionary
//     IDs, so a posting costs three words;
//   - a sorted token list supports prefix and substring vocabulary
//     lookups, which is what makes the paper's *substring* match
//     semantics answerable from an index at all;
//   - queries are multi-term OR lookups (the synonym-expansion path of
//     Section V) whose candidates are verified against the original
//     literal text, so results are exactly those of the regexp scan;
//   - every index is keyed to a (model, generation) pair. The store
//     counts model mutations; when the underlying model has moved, the
//     index is rebuilt or delta-updated to the new generation, so the
//     current model and each historized release (internal/history) get
//     their own consistent index.
//
// Index values are immutable once published: Update returns a new Index
// sharing unchanged posting lists with its predecessor, so readers can
// keep querying an old generation lock-free while a writer installs the
// next one.
package textindex

import (
	"sort"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// Field classifies an indexed predicate: names are always matched,
// descriptions only when the caller opts in (Options.MatchDescriptions
// in the search service).
type Field uint8

const (
	// FieldName marks predicates carrying item names and labels.
	FieldName Field = iota
	// FieldDescription marks predicates carrying descriptive text.
	FieldDescription
)

// Config selects the predicates whose objects are indexed.
type Config struct {
	// NamePredicates are the literal-valued predicates carrying item
	// names (FieldName). Empty slices select the defaults.
	NamePredicates []rdf.Term
	// DescriptionPredicates carry descriptive text (FieldDescription).
	DescriptionPredicates []rdf.Term
}

// DefaultConfig indexes dm:hasName and rdfs:label as names and
// rdfs:comment as descriptions.
func DefaultConfig() Config {
	return Config{
		NamePredicates:        []rdf.Term{rdf.HasName, rdf.Label},
		DescriptionPredicates: []rdf.Term{rdf.IRI(rdf.RDFSComment)},
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.NamePredicates == nil {
		c.NamePredicates = d.NamePredicates
	}
	if c.DescriptionPredicates == nil {
		c.DescriptionPredicates = d.DescriptionPredicates
	}
	return c
}

// Fields resolves the configured predicates to their dictionary IDs and
// returns the predicate → field map an index is built around. The
// predicates are interned, not looked up: a configured predicate with no
// triples yet (e.g. rdfs:comment before the first description is loaded)
// must still get an ID, otherwise it would be frozen out of the field
// map and every later delta update would silently skip its triples.
// Name predicates win when a predicate is configured as both.
func (c Config) Fields(dict *store.Dict) map[store.ID]Field {
	c = c.withDefaults()
	field := make(map[store.ID]Field, len(c.NamePredicates)+len(c.DescriptionPredicates))
	for _, p := range c.NamePredicates {
		field[dict.Intern(p)] = FieldName
	}
	for _, p := range c.DescriptionPredicates {
		id := dict.Intern(p)
		if _, taken := field[id]; !taken {
			field[id] = FieldDescription
		}
	}
	return field
}

// Posting locates one indexed literal: the subject carrying the text,
// the predicate it is attached with, and the literal's dictionary ID.
// A Posting identifies the literal occurrence, so it doubles as the
// document key of the index.
type Posting struct {
	Subject store.ID
	Pred    store.ID
	Object  store.ID
}

// Match is one OR-query result: the posting plus the index (into the
// query's term list) of the first term that matched it.
type Match struct {
	Posting
	Term int
}

// Index is an immutable inverted full-text index over one model
// generation.
type Index struct {
	model string
	gen   uint64
	dict  *store.Dict
	field map[store.ID]Field   // indexed predicate -> field
	post  map[string][]Posting // token -> postings, sorted
	lits  map[Posting]struct{} // every indexed literal occurrence
	ftext map[store.ID]string  // literal ID -> folded text (verification)
	toks  []string             // sorted distinct tokens
}

// Fold canonicalizes text for matching. ASCII (the overwhelmingly
// common case for warehouse identifiers) is lowercased directly;
// anything else takes full Unicode case folding approximated as
// upper-then-lower, which sends the special casings plain lowercasing
// misses — ſ (U+017F) → s, the Kelvin sign K (U+212A) → k — to the same
// representative on both the index and the query side. Both the index
// and the retained scan path fold with this exact function, which is
// what guarantees result parity between them.
func Fold(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return strings.ToLower(strings.ToUpper(s))
		}
	}
	return strings.ToLower(s)
}

// Tokenize splits folded text into its maximal letter/digit runs, in
// order and with duplicates preserved.
func Tokenize(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

func uniqueTokens(toks []string) []string {
	if len(toks) < 2 {
		return toks
	}
	seen := make(map[string]bool, len(toks))
	out := toks[:0]
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Build indexes the configured predicates of the view, which must
// represent the named model (plus its entailment index) at generation
// gen. The caller is responsible for excluding writers while Build reads
// the view (store.ReadView does exactly that). Callers that must not
// hold the store's read lock for the whole O(all literals) tokenization
// use the two-phase form instead: Collect under the lock, then
// BuildPostings outside it.
func Build(model string, gen uint64, v *store.View, dict *store.Dict, cfg Config) *Index {
	field := cfg.Fields(dict)
	return BuildPostings(model, gen, dict, field, Collect(v, field))
}

// Collect gathers every (subject, predicate, object) occurrence of a
// field predicate in the view — possibly with duplicates when the view
// spans overlapping models; indexing is idempotent per occurrence.
// Objects are collected by their term value whatever their kind —
// exactly the text the scan path matches against — though in a
// well-formed warehouse they are literals. This is the only part of
// index construction that must run while the view is protected against
// writers (store.ReadView); the expensive tokenization (BuildPostings,
// UpdateWith) works from the returned slice and needs no store lock.
func Collect(v *store.View, field map[store.ID]Field) []Posting {
	var out []Posting
	for predID := range field {
		v.ForEach(store.Wildcard, predID, store.Wildcard, func(t store.ETriple) bool {
			out = append(out, Posting{Subject: t.S, Pred: t.P, Object: t.O})
			return true
		})
	}
	return out
}

// BuildPostings tokenizes the collected occurrences into a fresh index.
// It reads only dict (which has its own lock) and its arguments, so it
// is safe to run outside any store lock.
func BuildPostings(model string, gen uint64, dict *store.Dict, field map[store.ID]Field, posts []Posting) *Index {
	defer obsBuildHist.ObserveSince(time.Now())
	ix := &Index{
		model: model,
		gen:   gen,
		dict:  dict,
		field: field,
		post:  map[string][]Posting{},
		lits:  map[Posting]struct{}{},
		ftext: map[store.ID]string{},
	}
	for _, p := range posts {
		ix.add(p)
	}
	ix.rebuildTokens()
	ix.sortPostings(nil)
	return ix
}

// add inserts one literal occurrence (idempotent).
func (ix *Index) add(p Posting) {
	if _, dup := ix.lits[p]; dup {
		return
	}
	ix.lits[p] = struct{}{}
	folded := Fold(ix.dict.Term(p.Object).Value)
	ix.ftext[p.Object] = folded
	for _, tok := range uniqueTokens(Tokenize(folded)) {
		ix.post[tok] = append(ix.post[tok], p)
	}
}

// remove deletes one literal occurrence. Affected posting lists must be
// private to ix (Update copies them before calling remove). The ftext
// entry is kept: a dictionary ID never changes its term, so the cached
// folded text stays correct even if another posting still references it.
func (ix *Index) remove(p Posting) {
	delete(ix.lits, p)
	for _, tok := range uniqueTokens(Tokenize(Fold(ix.dict.Term(p.Object).Value))) {
		list := ix.post[tok]
		for i, q := range list {
			if q == p {
				list = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(ix.post, tok)
		} else {
			ix.post[tok] = list
		}
	}
}

func (ix *Index) rebuildTokens() {
	ix.toks = make([]string, 0, len(ix.post))
	for t := range ix.post {
		ix.toks = append(ix.toks, t)
	}
	sort.Strings(ix.toks)
}

// sortPostings orders the posting lists of the given tokens (all tokens
// when nil) by (Subject, Pred, Object) for deterministic query output.
func (ix *Index) sortPostings(tokens map[string]bool) {
	if tokens == nil {
		for _, list := range ix.post {
			sortPostingList(list)
		}
		return
	}
	for t := range tokens {
		if list, ok := ix.post[t]; ok {
			sortPostingList(list)
		}
	}
}

// Update returns an index over the view's current state at generation
// gen, reusing the receiver's postings for unchanged literals — the
// incremental maintenance path for the additive growth the paper
// describes (§III.A: meta-data only ever accumulates between releases).
// The receiver is not modified; in-flight queries against it stay valid.
// It also reports how many literal occurrences were added and removed.
// Like Build it runs entirely under the caller's view protection; the
// lock-splitting form is Collect + UpdateWith.
func (ix *Index) Update(v *store.View, gen uint64) (*Index, int, int) {
	return ix.UpdateWith(gen, ix.field, Collect(v, ix.field))
}

// UpdateWith is the tokenization half of an incremental update: cur is
// the complete occurrence set of the field predicates, as returned by
// Collect under the store's read lock; UpdateWith itself needs no store
// lock. field becomes the successor's predicate map (it may be a
// superset of the receiver's — predicates configured but unseen when the
// receiver was built).
func (ix *Index) UpdateWith(gen uint64, field map[store.ID]Field, posts []Posting) (*Index, int, int) {
	defer obsDeltaHist.ObserveSince(time.Now())
	cur := make(map[Posting]struct{}, len(posts))
	for _, p := range posts {
		cur[p] = struct{}{}
	}

	var added, removed []Posting
	for p := range cur {
		if _, ok := ix.lits[p]; !ok {
			added = append(added, p)
		}
	}
	for p := range ix.lits {
		if _, ok := cur[p]; !ok {
			removed = append(removed, p)
		}
	}

	next := &Index{model: ix.model, gen: gen, dict: ix.dict, field: field}
	if len(added) == 0 && len(removed) == 0 {
		next.post, next.lits, next.ftext, next.toks = ix.post, ix.lits, ix.ftext, ix.toks
		return next, 0, 0
	}

	// Copy the containers; copy each touched posting list once, so the
	// untouched majority stays shared with the predecessor.
	next.lits = make(map[Posting]struct{}, len(ix.lits))
	for p := range ix.lits {
		next.lits[p] = struct{}{}
	}
	next.ftext = make(map[store.ID]string, len(ix.ftext))
	for id, f := range ix.ftext {
		next.ftext[id] = f
	}
	next.post = make(map[string][]Posting, len(ix.post))
	for t, list := range ix.post {
		next.post[t] = list
	}
	touched := map[string]bool{}
	copyTouched := func(p Posting) {
		for _, tok := range uniqueTokens(Tokenize(Fold(ix.dict.Term(p.Object).Value))) {
			if !touched[tok] {
				touched[tok] = true
				next.post[tok] = append([]Posting(nil), next.post[tok]...)
			}
		}
	}
	for _, p := range removed {
		copyTouched(p)
		next.remove(p)
	}
	for _, p := range added {
		copyTouched(p)
		next.add(p)
	}
	next.rebuildTokens()
	next.sortPostings(touched)
	return next, len(added), len(removed)
}

// Model returns the base model the index covers.
func (ix *Index) Model() string { return ix.model }

// Gen returns the model generation the index was built from.
func (ix *Index) Gen() uint64 { return ix.gen }

// TokensWithPrefix returns the indexed tokens starting with prefix
// (folded), in sorted order — the prefix-lookup path over the sorted
// vocabulary.
func (ix *Index) TokensWithPrefix(prefix string) []string {
	prefix = Fold(prefix)
	i := sort.SearchStrings(ix.toks, prefix)
	var out []string
	for ; i < len(ix.toks) && strings.HasPrefix(ix.toks[i], prefix); i++ {
		out = append(out, ix.toks[i])
	}
	return out
}

// TokensContaining returns the indexed tokens containing sub (folded) as
// a substring, in sorted order. This vocabulary scan — over tens of
// thousands of distinct tokens rather than millions of triples — is what
// turns the paper's substring semantics into an index lookup.
func (ix *Index) TokensContaining(sub string) []string {
	sub = Fold(sub)
	var out []string
	for _, t := range ix.toks {
		if strings.Contains(t, sub) {
			out = append(out, t)
		}
	}
	return out
}

// Search returns the postings of the given field whose literal text
// contains term under case-folded substring semantics — exactly the
// matches of the paper's regexp_like(text, term, 'i') scan. Results are
// sorted by (Subject, Pred, Object).
func (ix *Index) Search(term string, field Field) []Posting {
	obsSearches.Inc()
	folded := Fold(term)
	if toks := uniqueTokens(Tokenize(folded)); len(toks) == 1 && toks[0] == folded {
		// Fast path: the term is one pure letter/digit run. Text tokens
		// are contiguous runs of the folded text, so any posting whose
		// vocabulary token contains the term already contains the term in
		// its text — candidates ARE matches, no verification needed.
		vts := ix.TokensContaining(folded)
		if len(vts) == 1 {
			list := ix.post[vts[0]] // pre-sorted
			out := make([]Posting, 0, len(list))
			for _, p := range list {
				if ix.field[p.Pred] == field {
					out = append(out, p)
				}
			}
			return out
		}
		seen := map[Posting]struct{}{}
		var out []Posting
		for _, vt := range vts {
			for _, p := range ix.post[vt] {
				if ix.field[p.Pred] != field {
					continue
				}
				if _, dup := seen[p]; !dup {
					seen[p] = struct{}{}
					out = append(out, p)
				}
			}
		}
		sortPostingList(out)
		return out
	}
	cands := ix.candidates(folded, field)
	out := cands[:0]
	for _, p := range cands {
		if strings.Contains(ix.ftext[p.Object], folded) {
			out = append(out, p)
		}
	}
	sortPostingList(out)
	return out
}

func sortPostingList(list []Posting) {
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i], list[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		return a.Object < b.Object
	})
}

// candidates returns a superset of the field's postings whose text can
// contain the folded term: when the term occurs in a text, every token
// of the term is a substring of some token of that text, so intersecting
// the token-level candidate sets per term token is complete.
func (ix *Index) candidates(folded string, field Field) []Posting {
	toks := uniqueTokens(Tokenize(folded))
	if len(toks) == 0 {
		// No indexable characters (a term of separators only, or empty):
		// every literal of the field is a candidate.
		var out []Posting
		for p := range ix.lits {
			if ix.field[p.Pred] == field {
				out = append(out, p)
			}
		}
		return out
	}
	var cand map[Posting]struct{}
	for i, tk := range toks {
		set := map[Posting]struct{}{}
		for _, vt := range ix.TokensContaining(tk) {
			for _, p := range ix.post[vt] {
				if ix.field[p.Pred] != field {
					continue
				}
				if i == 0 {
					set[p] = struct{}{}
				} else if _, ok := cand[p]; ok {
					set[p] = struct{}{}
				}
			}
		}
		cand = set
		if len(cand) == 0 {
			return nil
		}
	}
	out := make([]Posting, 0, len(cand))
	for p := range cand {
		out = append(out, p)
	}
	return out
}

// SearchAny runs a multi-term OR query (the synonym-expansion shape of
// Section V): each literal is reported once, attributed to the first
// term in terms order that matches it. Results are ordered by term
// index, then (Subject, Pred, Object).
func (ix *Index) SearchAny(terms []string, field Field) []Match {
	seen := map[Posting]bool{}
	var out []Match
	for i, t := range terms {
		for _, p := range ix.Search(t, field) {
			if !seen[p] {
				seen[p] = true
				out = append(out, Match{Posting: p, Term: i})
			}
		}
	}
	return out
}

// Stats summarizes one index for monitoring (the /api/stats endpoint and
// `mdw index`).
type Stats struct {
	Model      string `json:"model"`
	Gen        uint64 `json:"generation"`
	Predicates int    `json:"predicates"`
	Literals   int    `json:"literals"`
	Tokens     int    `json:"tokens"`
	Postings   int    `json:"postings"`
}

// Stats returns the index's size counters.
func (ix *Index) Stats() Stats {
	n := 0
	for _, list := range ix.post {
		n += len(list)
	}
	return Stats{
		Model:      ix.model,
		Gen:        ix.gen,
		Predicates: len(ix.field),
		Literals:   len(ix.lits),
		Tokens:     len(ix.toks),
		Postings:   n,
	}
}
