// Package rdf defines the core RDF data model used throughout the
// meta-data warehouse: terms (IRIs, literals, blank nodes), triples,
// namespace handling, and the vocabulary constants used by the paper
// ("The Credit Suisse Meta-data Warehouse", ICDE 2012).
//
// The meta-data warehouse stores all business and technical meta-data
// as one large labeled graph; this package is the common currency for
// every other package in the repository.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRIKind identifies an IRI reference term.
	IRIKind TermKind = iota
	// LiteralKind identifies a literal term (plain, typed, or language-tagged).
	LiteralKind
	// BlankKind identifies a blank node term.
	BlankKind
)

// String returns a human-readable name for the kind.
func (k TermKind) String() string {
	switch k {
	case IRIKind:
		return "iri"
	case LiteralKind:
		return "literal"
	case BlankKind:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term. Terms are immutable value types and are comparable,
// so they can be used directly as map keys.
//
// For IRIs, Value holds the full IRI. For blank nodes, Value holds the
// local label (without the "_:" prefix). For literals, Value holds the
// lexical form, Datatype optionally holds the datatype IRI, and Lang
// optionally holds the language tag (only one of Datatype/Lang is set).
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: IRIKind, Value: iri} }

// Blank returns a blank node term with the given label.
func Blank(label string) Term { return Term{Kind: BlankKind, Value: label} }

// Literal returns a plain (untyped) literal term.
func Literal(lexical string) Term { return Term{Kind: LiteralKind, Value: lexical} }

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lexical, datatype string) Term {
	return Term{Kind: LiteralKind, Value: lexical, Datatype: datatype}
}

// LangLiteral returns a language-tagged literal.
func LangLiteral(lexical, lang string) Term {
	return Term{Kind: LiteralKind, Value: lexical, Lang: lang}
}

// Integer returns an xsd:integer literal.
func Integer(v int64) Term {
	return TypedLiteral(fmt.Sprintf("%d", v), XSDInteger)
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRIKind }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == LiteralKind }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == BlankKind }

// IsZero reports whether the term is the zero Term (used as a wildcard in
// pattern matching APIs).
func (t Term) IsZero() bool { return t == Term{} }

// String renders the term in N-Triples-like syntax. Literals are quoted,
// IRIs are wrapped in angle brackets, blank nodes get a "_:" prefix.
func (t Term) String() string {
	switch t.Kind {
	case IRIKind:
		return "<" + t.Value + ">"
	case BlankKind:
		return "_:" + t.Value
	case LiteralKind:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(EscapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" && t.Datatype != XSDString {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("?!%d:%s", t.Kind, t.Value)
	}
}

// Local returns the local name of an IRI term: the portion after the last
// '#' or '/'. For non-IRI terms it returns Value unchanged.
func (t Term) Local() string {
	if t.Kind != IRIKind {
		return t.Value
	}
	return LocalName(t.Value)
}

// LocalName returns the fragment after the last '#' or '/' of an IRI.
func LocalName(iri string) string {
	if i := strings.LastIndexByte(iri, '#'); i >= 0 {
		return iri[i+1:]
	}
	if i := strings.LastIndexByte(iri, '/'); i >= 0 {
		return iri[i+1:]
	}
	return iri
}

// Namespace returns the namespace part of an IRI: everything up to and
// including the last '#' or '/'.
func Namespace(iri string) string {
	if i := strings.LastIndexByte(iri, '#'); i >= 0 {
		return iri[:i+1]
	}
	if i := strings.LastIndexByte(iri, '/'); i >= 0 {
		return iri[:i+1]
	}
	return ""
}

// EscapeLiteral escapes the characters that must be escaped inside a
// double-quoted N-Triples literal.
func EscapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	// Byte-wise: every escaped character is ASCII, and copying the rest
	// verbatim keeps even invalid UTF-8 intact (rune iteration would
	// silently replace such bytes with U+FFFD and break round-tripping).
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// UnescapeLiteral reverses EscapeLiteral. Unknown escape sequences are
// preserved verbatim (backslash included) so round-tripping is lossless
// for well-formed input.
func UnescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 >= len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case 'u':
			if i+4 < len(s) {
				var r rune
				if _, err := fmt.Sscanf(s[i+1:i+5], "%04X", &r); err == nil {
					b.WriteRune(r)
					i += 4
					continue
				}
			}
			b.WriteByte('\\')
			b.WriteByte('u')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// Compare orders terms deterministically: first by kind (IRI < blank <
// literal), then by value, datatype, and language. It returns -1, 0, or +1.
func Compare(a, b Term) int {
	ka, kb := kindOrder(a.Kind), kindOrder(b.Kind)
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.Datatype, b.Datatype); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

func kindOrder(k TermKind) int {
	switch k {
	case IRIKind:
		return 0
	case BlankKind:
		return 1
	default:
		return 2
	}
}
