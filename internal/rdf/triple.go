package rdf

import "sort"

// Triple is one RDF statement: subject–predicate–object.
type Triple struct {
	S, P, O Term
}

// T is shorthand for constructing a Triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (without the trailing dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// NTriple renders the triple as a full N-Triples line including the
// terminating " ." marker.
func (t Triple) NTriple() string {
	return t.String() + " ."
}

// CompareTriples orders triples by subject, then predicate, then object.
func CompareTriples(a, b Triple) int {
	if c := Compare(a.S, b.S); c != 0 {
		return c
	}
	if c := Compare(a.P, b.P); c != 0 {
		return c
	}
	return Compare(a.O, b.O)
}

// Quad is a triple placed in a named model (the paper's RDF model tables
// are addressed by model name, e.g. SEM_MODELS('DWH_CURR')).
type Quad struct {
	Model string
	Triple
}

// SortTriples sorts a slice of triples in place into the canonical
// (S, P, O) order used by serializers and diffing.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool { return CompareTriples(ts[i], ts[j]) < 0 })
}

// DedupTriples removes duplicate triples from a sorted slice in place and
// returns the shortened slice.
func DedupTriples(ts []Triple) []Triple {
	if len(ts) < 2 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}
