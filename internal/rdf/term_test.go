package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", IRI("http://example.org/x"), IRIKind, "<http://example.org/x>"},
		{"blank", Blank("b1"), BlankKind, "_:b1"},
		{"plain literal", Literal("hello"), LiteralKind, `"hello"`},
		{"typed literal", TypedLiteral("42", XSDInteger), LiteralKind, `"42"^^<` + XSDInteger + `>`},
		{"lang literal", LangLiteral("Kunde", "de"), LiteralKind, `"Kunde"@de`},
		{"integer", Integer(7), LiteralKind, `"7"^^<` + XSDInteger + `>`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if got := tc.term.String(); got != tc.str {
				t.Errorf("String() = %q, want %q", got, tc.str)
			}
		})
	}
}

func TestTermPredicates(t *testing.T) {
	if !IRI("x").IsIRI() || IRI("x").IsLiteral() || IRI("x").IsBlank() {
		t.Error("IRI predicates wrong")
	}
	if !Literal("x").IsLiteral() {
		t.Error("Literal predicate wrong")
	}
	if !Blank("x").IsBlank() {
		t.Error("Blank predicate wrong")
	}
	if !(Term{}).IsZero() || IRI("x").IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestXSDStringDatatypeSuppressed(t *testing.T) {
	got := TypedLiteral("x", XSDString).String()
	if got != `"x"` {
		t.Errorf("xsd:string literal should render without datatype, got %q", got)
	}
}

func TestLocalAndNamespace(t *testing.T) {
	tests := []struct {
		iri, ns, local string
	}{
		{DMNS + "Customer", DMNS, "Customer"},
		{"http://example.org/a/b", "http://example.org/a/", "b"},
		{"nohash", "", "nohash"},
	}
	for _, tc := range tests {
		if got := Namespace(tc.iri); got != tc.ns {
			t.Errorf("Namespace(%q) = %q, want %q", tc.iri, got, tc.ns)
		}
		if got := LocalName(tc.iri); got != tc.local {
			t.Errorf("LocalName(%q) = %q, want %q", tc.iri, got, tc.local)
		}
	}
	if got := IRI(DMNS + "Customer").Local(); got != "Customer" {
		t.Errorf("Local() = %q", got)
	}
	if got := Literal("v").Local(); got != "v" {
		t.Errorf("Local() on literal = %q", got)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{
		"plain",
		`with "quotes"`,
		"tab\tand\nnewline",
		`back\slash`,
		"",
		"unicode ü ☃",
	}
	for _, c := range cases {
		if got := UnescapeLiteral(EscapeLiteral(c)); got != c {
			t.Errorf("round trip of %q = %q", c, got)
		}
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		return UnescapeLiteral(EscapeLiteral(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnescapeUnicode(t *testing.T) {
	if got := UnescapeLiteral(`snow☃man`); got != "snow☃man" {
		t.Errorf("got %q", got)
	}
}

func TestCompare(t *testing.T) {
	if Compare(IRI("a"), IRI("a")) != 0 {
		t.Error("equal IRIs should compare 0")
	}
	if Compare(IRI("a"), IRI("b")) >= 0 {
		t.Error("a < b expected")
	}
	// Kind ordering: IRI < blank < literal.
	if Compare(IRI("z"), Blank("a")) >= 0 {
		t.Error("IRI should sort before blank")
	}
	if Compare(Blank("z"), Literal("a")) >= 0 {
		t.Error("blank should sort before literal")
	}
	if Compare(Literal("a"), TypedLiteral("a", XSDInteger)) >= 0 {
		t.Error("plain literal sorts before typed with same lexical form")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	gen := func(k uint8, v string) Term {
		switch k % 3 {
		case 0:
			return IRI(v)
		case 1:
			return Blank(v)
		default:
			return Literal(v)
		}
	}
	f := func(k1, k2 uint8, v1, v2 string) bool {
		a, b := gen(k1, v1), gen(k2, v2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQName(t *testing.T) {
	if got := QName(RDFType); got != "rdf:type" {
		t.Errorf("QName(rdf:type) = %q", got)
	}
	if got := QName(DMNS + "Customer"); got != "dm:Customer" {
		t.Errorf("QName(dm:Customer) = %q", got)
	}
	if got := QName("http://unknown.example/x"); got != "<http://unknown.example/x>" {
		t.Errorf("QName(unknown) = %q", got)
	}
}

func TestExpandQName(t *testing.T) {
	iri, ok := ExpandQName("rdf:type", nil)
	if !ok || iri != RDFType {
		t.Errorf("ExpandQName(rdf:type) = %q, %v", iri, ok)
	}
	custom := map[string]string{"ex": "http://example.org/"}
	iri, ok = ExpandQName("ex:thing", custom)
	if !ok || iri != "http://example.org/thing" {
		t.Errorf("ExpandQName(ex:thing) = %q, %v", iri, ok)
	}
	if _, ok = ExpandQName("nope:thing", nil); ok {
		t.Error("unknown prefix should fail")
	}
	if _, ok = ExpandQName("noprefix", nil); ok {
		t.Error("missing colon should fail")
	}
}

func TestTripleString(t *testing.T) {
	tr := T(IRI("s"), IRI("p"), Literal("o"))
	if got := tr.NTriple(); got != `<s> <p> "o" .` {
		t.Errorf("NTriple = %q", got)
	}
}

func TestSortAndDedupTriples(t *testing.T) {
	a := T(IRI("a"), IRI("p"), IRI("x"))
	b := T(IRI("b"), IRI("p"), IRI("x"))
	c := T(IRI("a"), IRI("q"), IRI("x"))
	ts := []Triple{b, a, c, a, b}
	SortTriples(ts)
	ts = DedupTriples(ts)
	want := []Triple{a, c, b}
	if len(ts) != len(want) {
		t.Fatalf("len = %d, want %d (%v)", len(ts), len(want), ts)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("ts[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestSortTriplesProperty(t *testing.T) {
	f := func(raw [][3]string) bool {
		ts := make([]Triple, len(raw))
		for i, r := range raw {
			ts[i] = T(IRI(r[0]), IRI(r[1]), Literal(r[2]))
		}
		SortTriples(ts)
		for i := 1; i < len(ts); i++ {
			if CompareTriples(ts[i-1], ts[i]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
