package rdf

// Namespace prefixes used throughout the meta-data warehouse. The dm: and
// dt: namespaces are taken verbatim from Listings 1 and 2 of the paper;
// mdw: hosts warehouse-internal labels such as the instance-to-value tags
// that the paper describes as "specific to Credit Suisse".
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"

	// DMNS is the data-modeling namespace of the paper (Listing 1).
	DMNS = "http://www.credit-suisse.com/dwh/mdm/data_modeling#"
	// DTNS is the data-transfer namespace of the paper (Listing 2).
	DTNS = "http://www.credit-suisse.com/dwh/mdm/data_transfer#"
	// MDWNS hosts warehouse-internal vocabulary (tags, synonym edges).
	MDWNS = "http://www.credit-suisse.com/dwh/mdm/warehouse#"
	// InstNS is the namespace for generated instance nodes.
	InstNS = "http://www.credit-suisse.com/dwh/"
	// DBPNS mimics the DBpedia resource namespace for the synonym and
	// homonym collections integrated per Section III.B.
	DBPNS = "http://dbpedia.org/resource/"
)

// Core RDF / RDFS / OWL vocabulary IRIs.
const (
	RDFType     = RDFNS + "type"
	RDFProperty = RDFNS + "Property"
	RDFResource = RDFNS + "resource"

	RDFSSubClassOf    = RDFSNS + "subClassOf"
	RDFSSubPropertyOf = RDFSNS + "subPropertyOf"
	RDFSDomain        = RDFSNS + "domain"
	RDFSRange         = RDFSNS + "range"
	RDFSLabel         = RDFSNS + "label"
	RDFSComment       = RDFSNS + "comment"
	RDFSClass         = RDFSNS + "Class"
	RDFSResource      = RDFSNS + "Resource"

	OWLClass              = OWLNS + "Class"
	OWLObjectProperty     = OWLNS + "ObjectProperty"
	OWLDatatypeProperty   = OWLNS + "DatatypeProperty"
	OWLSymmetricProperty  = OWLNS + "SymmetricProperty"
	OWLTransitiveProperty = OWLNS + "TransitiveProperty"
	OWLInverseOf          = OWLNS + "inverseOf"
	OWLSameAs             = OWLNS + "sameAs"
	OWLEquivalentClass    = OWLNS + "equivalentClass"
	OWLEquivalentProperty = OWLNS + "equivalentProperty"
	OWLThing              = OWLNS + "Thing"

	XSDString  = XSDNS + "string"
	XSDInteger = XSDNS + "integer"
	XSDBoolean = XSDNS + "boolean"
	XSDDecimal = XSDNS + "decimal"
	XSDDouble  = XSDNS + "double"
	XSDDate    = XSDNS + "date"
)

// Warehouse-specific vocabulary. The paper names hasName (Listing 1),
// isMappedTo (Listing 2, the edge that drives lineage), and the free
// instance-to-value tags of Section III.B; synonymOf/homonymOf carry
// the DBpedia-derived relationships, and isRelatedTo is the paper's
// example of a symmetric property.
const (
	MDWHasName     = DMNS + "hasName"
	MDWIsMappedTo  = DTNS + "isMappedTo"
	MDWFeeds       = DTNS + "feeds"
	MDWSynonymOf   = MDWNS + "synonymOf"
	MDWHomonymOf   = MDWNS + "homonymOf"
	MDWIsRelatedTo = MDWNS + "isRelatedTo"
	MDWHasValue    = MDWNS + "hasValue"
	MDWInArea      = DMNS + "inArea"
	MDWInLayer     = DMNS + "inLayer"
	MDWOwnedBy     = DMNS + "ownedBy"
	MDWHasRole     = DMNS + "hasRole"
	MDWPartOf      = DMNS + "partOf"
	MDWHasColumn   = DMNS + "hasColumn"
	MDWHasTable    = DMNS + "hasTable"
	MDWHasSchema   = DMNS + "hasSchema"
	MDWImplements  = DMNS + "implements"
	MDWUsesDB      = DMNS + "usesDatabase"
	MDWConnectsTo  = DTNS + "connectsTo"
	MDWSourceOf    = DTNS + "sourceOf"
	MDWTargetOf    = DTNS + "targetOf"
	// Mapping reification: a dm:Mapping instance records which columns it
	// maps and under which rule condition. The rule condition feeds the
	// filtered-lineage extension of Section V.
	MDWMapsFrom = DTNS + "mapsFrom"
	MDWMapsTo   = DTNS + "mapsTo"
	MDWRuleCond = DTNS + "hasRuleCondition"
	MDWDataType = DMNS + "hasDataType"
	MDWLength   = DMNS + "hasLength"
	MDWUsedBy   = DMNS + "usedBy"
	// MDWTaggedWith is the instance-to-value tag relationship that
	// Section III.B calls out as "specific to Credit Suisse"; governance
	// processes use it to mark items (e.g. "pii", "confidential").
	MDWTaggedWith    = MDWNS + "taggedWith"
	MDWUsesTech      = DMNS + "usesTechnology"
	MDWVersionOfTech = DMNS + "hasVersion"
	MDWHasLogFile    = DMNS + "hasLogFile"
	// Historization metadata (stored in the warehouse's meta model so a
	// dump round-trips release history).
	MDWVersion        = MDWNS + "Version"
	MDWVersionNumber  = MDWNS + "versionNumber"
	MDWVersionTag     = MDWNS + "versionTag"
	MDWVersionAt      = MDWNS + "versionAt"
	MDWVersionModel   = MDWNS + "versionModel"
	MDWVersionTriples = MDWNS + "versionTriples"
	MDWVersionPruned  = MDWNS + "versionPruned"
)

// Convenience Term values for the hottest vocabulary IRIs.
var (
	Type          = IRI(RDFType)
	SubClassOf    = IRI(RDFSSubClassOf)
	SubPropertyOf = IRI(RDFSSubPropertyOf)
	Domain        = IRI(RDFSDomain)
	Range         = IRI(RDFSRange)
	Label         = IRI(RDFSLabel)
	Class         = IRI(OWLClass)
	HasName       = IRI(MDWHasName)
	IsMappedTo    = IRI(MDWIsMappedTo)
)

// Vocabulary returns every vocabulary IRI this package defines: the
// core RDF/RDFS/OWL/XSD terms plus the warehouse-specific dm:/dt:/mdw:
// properties and classes. Static checkers (mdwlint's iricheck) treat
// these namespaces as closed worlds and validate hand-typed IRIs
// against this list, so every constant above must appear here — adding
// a vocabulary constant without extending Vocabulary makes its users
// lint-dirty, which is the reminder to keep the two in sync.
func Vocabulary() []string {
	return []string{
		RDFType, RDFProperty, RDFResource,
		RDFSSubClassOf, RDFSSubPropertyOf, RDFSDomain, RDFSRange,
		RDFSLabel, RDFSComment, RDFSClass, RDFSResource,
		OWLClass, OWLObjectProperty, OWLDatatypeProperty,
		OWLSymmetricProperty, OWLTransitiveProperty, OWLInverseOf,
		OWLSameAs, OWLEquivalentClass, OWLEquivalentProperty, OWLThing,
		XSDString, XSDInteger, XSDBoolean, XSDDecimal, XSDDouble, XSDDate,
		MDWHasName, MDWIsMappedTo, MDWFeeds, MDWSynonymOf, MDWHomonymOf,
		MDWIsRelatedTo, MDWHasValue, MDWInArea, MDWInLayer, MDWOwnedBy,
		MDWHasRole, MDWPartOf, MDWHasColumn, MDWHasTable, MDWHasSchema,
		MDWImplements, MDWUsesDB, MDWConnectsTo, MDWSourceOf, MDWTargetOf,
		MDWMapsFrom, MDWMapsTo, MDWRuleCond, MDWDataType, MDWLength,
		MDWUsedBy, MDWTaggedWith, MDWUsesTech, MDWVersionOfTech,
		MDWHasLogFile, MDWVersion, MDWVersionNumber, MDWVersionTag,
		MDWVersionAt, MDWVersionModel, MDWVersionTriples, MDWVersionPruned,
	}
}

// WellKnownPrefixes maps the conventional short prefixes to their
// namespaces; parsers and serializers use it as the default prefix table.
var WellKnownPrefixes = map[string]string{
	"rdf":  RDFNS,
	"rdfs": RDFSNS,
	"owl":  OWLNS,
	"xsd":  XSDNS,
	"dm":   DMNS,
	"dt":   DTNS,
	"mdw":  MDWNS,
	"inst": InstNS,
	"dbp":  DBPNS,
}

// QName abbreviates an IRI using WellKnownPrefixes, falling back to the
// full bracketed form when no prefix matches.
func QName(iri string) string {
	ns := Namespace(iri)
	for p, n := range WellKnownPrefixes {
		if n == ns {
			return p + ":" + iri[len(ns):]
		}
	}
	return "<" + iri + ">"
}

// ExpandQName resolves a prefixed name such as "rdf:type" against the
// supplied prefix table (WellKnownPrefixes entries are consulted when
// prefixes is nil). The second result reports whether resolution succeeded.
func ExpandQName(qname string, prefixes map[string]string) (string, bool) {
	for i := 0; i < len(qname); i++ {
		if qname[i] == ':' {
			prefix, local := qname[:i], qname[i+1:]
			if prefixes != nil {
				if ns, ok := prefixes[prefix]; ok {
					return ns + local, true
				}
			}
			if ns, ok := WellKnownPrefixes[prefix]; ok {
				return ns + local, true
			}
			return "", false
		}
	}
	return "", false
}
