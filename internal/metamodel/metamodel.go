// Package metamodel implements the organizing taxonomy of the meta-data
// warehouse graph: Table I of the paper. Nodes are classified as Classes,
// Properties, Instances, or Values; edges fall into the three categories
// Facts, Meta-data schema, and Hierarchies.
//
// The paper stresses that the warehouse deliberately has no fixed
// meta-data model — "only the RDF model needs to be followed" — but the
// graph is still *organized* along this taxonomy so queries can navigate
// it. This package recovers that organization from a raw triple source:
// it classifies every node, categorizes every edge, produces the Table I
// census, and validates the conventions the paper relies on.
package metamodel

import (
	"fmt"
	"sort"
	"strings"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

// NodeKind is a Table I node type (the table's x-axis).
type NodeKind int

const (
	// KindUnknown marks nodes that match no convention.
	KindUnknown NodeKind = iota
	// KindClass marks classes (e.g. dm:Customer, dm:Table).
	KindClass
	// KindProperty marks properties (e.g. dm:hasName).
	KindProperty
	// KindInstance marks instances (e.g. a specific column node).
	KindInstance
	// KindValue marks literal values (e.g. "TCD100", 100).
	KindValue
)

// String returns the Table I name of the kind.
func (k NodeKind) String() string {
	switch k {
	case KindClass:
		return "Class"
	case KindProperty:
		return "Property"
	case KindInstance:
		return "Instance"
	case KindValue:
		return "Value"
	default:
		return "Unknown"
	}
}

// EdgeCategory is a Table I edge category (the table's y-axis).
type EdgeCategory int

const (
	// CatUnknown marks edges outside the conventions.
	CatUnknown EdgeCategory = iota
	// CatFact holds instance/value relationships (the bottom layer of
	// Figure 3).
	CatFact
	// CatSchema holds class↔property relationships (rdfs:domain,
	// rdfs:range, class and property declarations).
	CatSchema
	// CatHierarchy holds class-to-class and property-to-property
	// relationships (rdfs:subClassOf, rdfs:subPropertyOf).
	CatHierarchy
)

// String returns the Table I name of the category.
func (c EdgeCategory) String() string {
	switch c {
	case CatFact:
		return "Facts"
	case CatSchema:
		return "Meta-data schema"
	case CatHierarchy:
		return "Hierarchies"
	default:
		return "Unknown"
	}
}

// Classifier assigns Table I node kinds to the nodes of one source.
type Classifier struct {
	dict  *store.Dict
	kinds map[store.ID]NodeKind
}

// Classify scans the source once and derives node kinds from the
// conventions of Section III.B:
//
//   - nodes typed owl:Class, or appearing on either side of
//     rdfs:subClassOf, or as the object of rdf:type or rdfs:domain or
//     rdfs:range, are Classes;
//   - nodes typed rdf:Property / owl:ObjectProperty /
//     owl:DatatypeProperty, appearing on either side of
//     rdfs:subPropertyOf, as the subject of rdfs:domain/range, or in
//     predicate position, are Properties;
//   - literals are Values;
//   - every remaining subject or object is an Instance.
//
// Class/property evidence wins over instance evidence, matching the
// paper's observation that classes are themselves nodes of the graph.
func Classify(src store.Source, dict *store.Dict) *Classifier {
	c := &Classifier{dict: dict, kinds: make(map[store.ID]NodeKind)}

	typeID, _ := dict.Lookup(rdf.Type)
	subClassID, _ := dict.Lookup(rdf.SubClassOf)
	subPropID, _ := dict.Lookup(rdf.SubPropertyOf)
	domainID, _ := dict.Lookup(rdf.Domain)
	rangeID, _ := dict.Lookup(rdf.Range)
	classTypes := map[store.ID]bool{}
	propTypes := map[store.ID]bool{}
	for _, iri := range []string{rdf.OWLClass, rdf.RDFSClass} {
		if id, ok := dict.Lookup(rdf.IRI(iri)); ok {
			classTypes[id] = true
		}
	}
	for _, iri := range []string{rdf.RDFProperty, rdf.OWLObjectProperty, rdf.OWLDatatypeProperty, rdf.OWLSymmetricProperty, rdf.OWLTransitiveProperty} {
		if id, ok := dict.Lookup(rdf.IRI(iri)); ok {
			propTypes[id] = true
		}
	}

	promote := func(id store.ID, k NodeKind) {
		cur := c.kinds[id]
		// Precedence: Value (literals, fixed) > Class > Property > Instance.
		if cur == KindValue {
			return
		}
		switch {
		case cur == KindUnknown:
			c.kinds[id] = k
		case k == KindClass && cur != KindClass:
			c.kinds[id] = KindClass
		case k == KindProperty && cur == KindInstance:
			c.kinds[id] = KindProperty
		}
	}

	src.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t store.ETriple) bool {
		if c.dict.Term(t.O).IsLiteral() {
			c.kinds[t.O] = KindValue
		}
		promote(t.P, KindProperty)
		switch t.P {
		case typeID:
			if classTypes[t.O] {
				promote(t.S, KindClass)
			} else if propTypes[t.O] {
				promote(t.S, KindProperty)
			} else {
				promote(t.S, KindInstance)
				promote(t.O, KindClass)
			}
		case subClassID:
			promote(t.S, KindClass)
			promote(t.O, KindClass)
		case subPropID:
			promote(t.S, KindProperty)
			promote(t.O, KindProperty)
		case domainID, rangeID:
			promote(t.S, KindProperty)
			promote(t.O, KindClass)
		default:
			promote(t.S, KindInstance)
			if !c.dict.Term(t.O).IsLiteral() {
				promote(t.O, KindInstance)
			}
		}
		return true
	})
	return c
}

// KindOfID returns the kind for an encoded node ID.
func (c *Classifier) KindOfID(id store.ID) NodeKind { return c.kinds[id] }

// KindOf returns the kind for a term (KindUnknown when absent).
func (c *Classifier) KindOf(t rdf.Term) NodeKind {
	id, ok := c.dict.Lookup(t)
	if !ok {
		return KindUnknown
	}
	return c.kinds[id]
}

// Nodes returns the IDs of all nodes with the given kind.
func (c *Classifier) Nodes(k NodeKind) []store.ID {
	var out []store.ID
	for id, kind := range c.kinds {
		if kind == k {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CategorizeEdge assigns the Table I edge category given the predicate
// and the kinds of the endpoints.
func CategorizeEdge(pred rdf.Term, sKind, oKind NodeKind) EdgeCategory {
	switch pred.Value {
	case rdf.RDFSSubClassOf, rdf.RDFSSubPropertyOf, rdf.OWLEquivalentClass, rdf.OWLEquivalentProperty:
		return CatHierarchy
	case rdf.RDFSDomain, rdf.RDFSRange, rdf.RDFSLabel, rdf.RDFSComment:
		if sKind == KindClass || sKind == KindProperty {
			return CatSchema
		}
		return CatFact
	case rdf.RDFType:
		switch oKind {
		case KindClass:
			if sKind == KindClass || sKind == KindProperty {
				return CatSchema // declarations like (C, rdf:type, owl:Class)
			}
			return CatFact // instance-to-class membership
		default:
			return CatFact
		}
	}
	if sKind == KindClass && oKind == KindProperty || sKind == KindProperty && oKind == KindClass {
		return CatSchema
	}
	return CatFact
}

// Cell identifies one cell of Table I: an edge category with the node
// kinds of the edge's endpoints.
type Cell struct {
	Category EdgeCategory
	Subject  NodeKind
	Object   NodeKind
}

// String renders the cell as "Facts: Instance→Value".
func (c Cell) String() string {
	return fmt.Sprintf("%s: %s→%s", c.Category, c.Subject, c.Object)
}

// Census is the Table I population count of one graph.
type Census struct {
	Nodes map[NodeKind]int
	Edges map[EdgeCategory]int
	Cells map[Cell]int
	Total int
}

// TakeCensus classifies the source and counts nodes and edges per
// Table I cell.
func TakeCensus(src store.Source, dict *store.Dict) (*Census, *Classifier) {
	cls := Classify(src, dict)
	cs := &Census{
		Nodes: map[NodeKind]int{},
		Edges: map[EdgeCategory]int{},
		Cells: map[Cell]int{},
	}
	for _, kind := range cls.kinds {
		cs.Nodes[kind]++
	}
	src.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t store.ETriple) bool {
		sK, oK := cls.kinds[t.S], cls.kinds[t.O]
		cat := CategorizeEdge(dict.Term(t.P), sK, oK)
		cs.Edges[cat]++
		cs.Cells[Cell{cat, sK, oK}]++
		cs.Total++
		return true
	})
	return cs, cls
}

// NodeTotal returns the total node count.
func (c *Census) NodeTotal() int {
	n := 0
	for _, v := range c.Nodes {
		n += v
	}
	return n
}

// Table1 renders the census in the shape of the paper's Table I: node
// types across the top, edge categories down the side, cell counts in
// the body.
func (c *Census) Table1() string {
	kinds := []NodeKind{KindClass, KindProperty, KindInstance, KindValue}
	cats := []EdgeCategory{CatHierarchy, CatSchema, CatFact}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "")
	for _, k := range kinds {
		fmt.Fprintf(&b, "%12s", k)
	}
	fmt.Fprintf(&b, "%12s\n", "total")
	fmt.Fprintf(&b, "%-18s", "nodes")
	for _, k := range kinds {
		fmt.Fprintf(&b, "%12d", c.Nodes[k])
	}
	fmt.Fprintf(&b, "%12d\n", c.NodeTotal())
	for _, cat := range cats {
		fmt.Fprintf(&b, "%-18s", cat.String())
		for _, k := range kinds {
			// Sum over object kinds for edges whose subject kind is k.
			n := 0
			for cell, cnt := range c.Cells {
				if cell.Category == cat && cell.Subject == k {
					n += cnt
				}
			}
			fmt.Fprintf(&b, "%12d", n)
		}
		fmt.Fprintf(&b, "%12d\n", c.Edges[cat])
	}
	fmt.Fprintf(&b, "%-18s%12s%12s%12s%12s%12d\n", "edges total", "", "", "", "", c.Total)
	return b.String()
}

// Issue is one validation finding.
type Issue struct {
	Code    string
	Subject rdf.Term
	Detail  string
}

func (i Issue) String() string {
	return fmt.Sprintf("%s: %s (%s)", i.Code, i.Subject, i.Detail)
}

// Validate checks the conventions the warehouse relies on and returns
// the violations found:
//
//	untyped-instance  an instance with no rdf:type edge
//	unlabeled-class   a class without an rdfs:label (search groups by label)
//	literal-subject   a literal in subject position
//	dangling-property a property that is never used in a statement
func Validate(src store.Source, dict *store.Dict) []Issue {
	cls := Classify(src, dict)
	var issues []Issue
	typeID, hasType := dict.Lookup(rdf.Type)
	labelID, hasLabel := dict.Lookup(rdf.Label)

	usedPreds := map[store.ID]bool{}
	litSubjects := map[store.ID]bool{}
	src.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t store.ETriple) bool {
		usedPreds[t.P] = true
		if dict.Term(t.S).IsLiteral() {
			litSubjects[t.S] = true
		}
		return true
	})
	for id := range litSubjects {
		issues = append(issues, Issue{"literal-subject", dict.Term(id), "literals must not be subjects"})
	}
	for id, kind := range cls.kinds {
		switch kind {
		case KindInstance:
			if !hasType || src.Count(id, typeID, store.Wildcard) == 0 {
				issues = append(issues, Issue{"untyped-instance", dict.Term(id), "instance has no rdf:type"})
			}
		case KindClass:
			if !hasLabel || src.Count(id, labelID, store.Wildcard) == 0 {
				issues = append(issues, Issue{"unlabeled-class", dict.Term(id), "class has no rdfs:label"})
			}
		case KindProperty:
			if !usedPreds[id] {
				issues = append(issues, Issue{"dangling-property", dict.Term(id), "property never used as predicate"})
			}
		}
	}
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].Code != issues[j].Code {
			return issues[i].Code < issues[j].Code
		}
		return rdf.Compare(issues[i].Subject, issues[j].Subject) < 0
	})
	return issues
}
