package metamodel

import (
	"strings"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

func dm(s string) rdf.Term   { return rdf.IRI(rdf.DMNS + s) }
func inst(s string) rdf.Term { return rdf.IRI(rdf.InstNS + s) }

func fixture() (*store.Store, store.Source) {
	st := store.New()
	st.AddAll("m", []rdf.Triple{
		// Hierarchy.
		rdf.T(dm("Individual"), rdf.SubClassOf, dm("Party")),
		rdf.T(dm("Institution"), rdf.SubClassOf, dm("Party")),
		rdf.T(dm("hasFirstName"), rdf.SubPropertyOf, dm("hasName")),
		// Meta-data schema.
		rdf.T(dm("Individual"), rdf.Type, rdf.Class),
		rdf.T(dm("hasFirstName"), rdf.Domain, dm("Individual")),
		rdf.T(dm("Individual"), rdf.Label, rdf.Literal("Individual")),
		rdf.T(dm("Party"), rdf.Label, rdf.Literal("Party")),
		rdf.T(dm("Institution"), rdf.Label, rdf.Literal("Institution")),
		// Facts.
		rdf.T(inst("john"), rdf.Type, dm("Individual")),
		rdf.T(inst("john"), dm("hasFirstName"), rdf.Literal("John")),
		rdf.T(inst("john"), dm("knows"), inst("jane")),
		rdf.T(inst("jane"), rdf.Type, dm("Individual")),
	})
	return st, st.ViewOf("m")
}

func TestClassification(t *testing.T) {
	st, src := fixture()
	c := Classify(src, st.Dict())
	tests := []struct {
		term rdf.Term
		kind NodeKind
	}{
		{dm("Individual"), KindClass},
		{dm("Party"), KindClass},
		{dm("Institution"), KindClass},
		{dm("hasFirstName"), KindProperty},
		{dm("hasName"), KindProperty},
		{dm("knows"), KindProperty},
		{inst("john"), KindInstance},
		{inst("jane"), KindInstance},
		{rdf.Literal("John"), KindValue},
		{dm("NotInGraph"), KindUnknown},
	}
	for _, tc := range tests {
		if got := c.KindOf(tc.term); got != tc.kind {
			t.Errorf("KindOf(%s) = %v, want %v", tc.term, got, tc.kind)
		}
	}
}

func TestClassBeatsInstanceEvidence(t *testing.T) {
	// A node used both as an instance (subject of a fact) and as a class
	// (object of rdf:type) must classify as Class.
	st := store.New()
	st.AddAll("m", []rdf.Triple{
		rdf.T(inst("x"), rdf.Type, dm("Ambiguous")),
		rdf.T(dm("Ambiguous"), dm("describedBy"), inst("doc1")),
	})
	c := Classify(st.ViewOf("m"), st.Dict())
	if got := c.KindOf(dm("Ambiguous")); got != KindClass {
		t.Errorf("KindOf(Ambiguous) = %v, want Class", got)
	}
}

func TestCategorizeEdge(t *testing.T) {
	tests := []struct {
		pred rdf.Term
		s, o NodeKind
		want EdgeCategory
	}{
		{rdf.SubClassOf, KindClass, KindClass, CatHierarchy},
		{rdf.SubPropertyOf, KindProperty, KindProperty, CatHierarchy},
		{rdf.Domain, KindProperty, KindClass, CatSchema},
		{rdf.Range, KindProperty, KindClass, CatSchema},
		{rdf.Label, KindClass, KindValue, CatSchema},
		{rdf.Label, KindInstance, KindValue, CatFact},
		{rdf.Type, KindInstance, KindClass, CatFact},
		{rdf.Type, KindClass, KindClass, CatSchema},
		{rdf.HasName, KindInstance, KindValue, CatFact},
		{rdf.IsMappedTo, KindInstance, KindInstance, CatFact},
	}
	for _, tc := range tests {
		if got := CategorizeEdge(tc.pred, tc.s, tc.o); got != tc.want {
			t.Errorf("CategorizeEdge(%s, %v, %v) = %v, want %v", tc.pred, tc.s, tc.o, got, tc.want)
		}
	}
}

func TestCensus(t *testing.T) {
	st, src := fixture()
	cs, cls := TakeCensus(src, st.Dict())
	if cs.Nodes[KindClass] != 3 {
		t.Errorf("classes = %d, want 3", cs.Nodes[KindClass])
	}
	if cs.Nodes[KindInstance] != 2 {
		t.Errorf("instances = %d, want 2", cs.Nodes[KindInstance])
	}
	if cs.Edges[CatHierarchy] != 3 {
		t.Errorf("hierarchy edges = %d, want 3", cs.Edges[CatHierarchy])
	}
	if cs.Total != st.Len("m") {
		t.Errorf("total = %d, want %d", cs.Total, st.Len("m"))
	}
	if cls.KindOf(inst("john")) != KindInstance {
		t.Error("classifier from census wrong")
	}
	// Cell-level: instance→value facts exist (hasFirstName).
	if cs.Cells[Cell{CatFact, KindInstance, KindValue}] == 0 {
		t.Error("no instance→value fact cells counted")
	}
	// Node totals are consistent.
	sum := 0
	for _, n := range cs.Nodes {
		sum += n
	}
	if sum != cs.NodeTotal() {
		t.Error("NodeTotal inconsistent")
	}
}

func TestTable1Rendering(t *testing.T) {
	st, src := fixture()
	cs, _ := TakeCensus(src, st.Dict())
	tbl := cs.Table1()
	for _, want := range []string{"Class", "Property", "Instance", "Value", "Facts", "Meta-data schema", "Hierarchies"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table1 missing %q:\n%s", want, tbl)
		}
	}
}

func TestValidateCleanGraph(t *testing.T) {
	st, src := fixture()
	issues := Validate(src, st.Dict())
	for _, is := range issues {
		// The fixture has no violations except hasName, which is declared
		// via subPropertyOf but never used as a predicate.
		if is.Code != "dangling-property" {
			t.Errorf("unexpected issue: %v", is)
		}
	}
}

func TestValidateFindsIssues(t *testing.T) {
	st := store.New()
	st.AddAll("m", []rdf.Triple{
		rdf.T(inst("orphan"), dm("p"), inst("other")),        // both untyped
		rdf.T(dm("C"), rdf.Type, rdf.Class),                  // class without label
		rdf.T(rdf.Literal("bad"), dm("p"), rdf.Literal("v")), // literal subject
	})
	issues := Validate(st.ViewOf("m"), st.Dict())
	codes := map[string]int{}
	for _, is := range issues {
		codes[is.Code]++
	}
	if codes["untyped-instance"] < 2 {
		t.Errorf("untyped-instance = %d, want >= 2 (%v)", codes["untyped-instance"], issues)
	}
	if codes["unlabeled-class"] != 1 {
		t.Errorf("unlabeled-class = %d (%v)", codes["unlabeled-class"], issues)
	}
	if codes["literal-subject"] != 1 {
		t.Errorf("literal-subject = %d (%v)", codes["literal-subject"], issues)
	}
}

func TestNodesByKind(t *testing.T) {
	st, src := fixture()
	c := Classify(src, st.Dict())
	if got := len(c.Nodes(KindClass)); got != 3 {
		t.Errorf("Nodes(Class) = %d", got)
	}
	if got := len(c.Nodes(KindInstance)); got != 2 {
		t.Errorf("Nodes(Instance) = %d", got)
	}
}

func TestKindStrings(t *testing.T) {
	if KindClass.String() != "Class" || CatFact.String() != "Facts" {
		t.Error("String() names wrong")
	}
	if KindUnknown.String() != "Unknown" || CatUnknown.String() != "Unknown" {
		t.Error("unknown names wrong")
	}
	c := Cell{CatFact, KindInstance, KindValue}
	if c.String() != "Facts: Instance→Value" {
		t.Errorf("Cell.String() = %q", c.String())
	}
}
