// Package impact implements the change-management use case the paper
// motivates lineage with: "Information lineage is critical to
// understanding how changes to an application or its interface may
// impact other applications or reports generated from the data
// warehouses."
//
// An analysis takes two historized releases, computes the meta-data
// diff, identifies the changed information items, and follows the data
// flows forward to everything that depends on them — down to the
// affected applications and reports.
package impact

import (
	"fmt"
	"sort"
	"strings"

	"mdw/internal/history"
	"mdw/internal/lineage"
	"mdw/internal/rdf"
	"mdw/internal/reason"
	"mdw/internal/store"
)

// Analysis is the outcome of a release impact analysis.
type Analysis struct {
	From, To history.Version
	// AddedTriples / RemovedTriples are the raw diff sizes.
	AddedTriples, RemovedTriples int
	// Changed lists the information items (instance nodes) whose
	// meta-data changed between the releases.
	Changed []rdf.Term
	// Downstream maps each changed item to the items that transitively
	// depend on it through the data flows.
	Downstream map[rdf.Term][]rdf.Term
	// Applications and Reports are the distinct affected applications
	// and reports (changed items included via their containers).
	Applications []rdf.Term
	Reports      []rdf.Term
}

// Analyzer runs release impact analyses over one base model.
type Analyzer struct {
	st    *store.Store
	model string
	hist  *history.Historian
}

// New returns an analyzer bound to the historian's base model.
func New(st *store.Store, hist *history.Historian) *Analyzer {
	return &Analyzer{st: st, model: hist.Base(), hist: hist}
}

// Analyze compares releases from and to, and reports the downstream
// impact of every changed item, evaluated against the *current* graph
// (which knows the full data-flow topology).
func (a *Analyzer) Analyze(from, to int) (*Analysis, error) {
	vf, err := a.hist.Version(from)
	if err != nil {
		return nil, err
	}
	vt, err := a.hist.Version(to)
	if err != nil {
		return nil, err
	}
	diff, err := a.hist.DiffVersions(from, to)
	if err != nil {
		return nil, err
	}
	an := &Analysis{
		From: vf, To: vt,
		AddedTriples:   len(diff.Added),
		RemovedTriples: len(diff.Removed),
		Downstream:     map[rdf.Term][]rdf.Term{},
	}

	// Changed items: instance subjects of diff triples. Schema nodes
	// (classes, properties) are excluded — hierarchy edits are not data
	// flows.
	changed := map[rdf.Term]bool{}
	note := func(ts []rdf.Triple) {
		for _, t := range ts {
			if t.S.IsIRI() && strings.HasPrefix(t.S.Value, rdf.InstNS) {
				changed[t.S] = true
			}
		}
	}
	note(diff.Added)
	note(diff.Removed)
	for item := range changed {
		an.Changed = append(an.Changed, item)
	}
	sort.Slice(an.Changed, func(i, j int) bool { return rdf.Compare(an.Changed[i], an.Changed[j]) < 0 })

	// Forward lineage from every changed item.
	svc := lineage.New(a.st, a.model)
	affected := map[rdf.Term]bool{}
	for _, item := range an.Changed {
		deps, err := svc.Impact(item, lineage.Options{})
		if err != nil {
			// Items removed in the newer release may be unknown to the
			// current graph; they simply have no remaining dependents.
			continue
		}
		if len(deps) > 0 {
			an.Downstream[item] = deps
		}
		affected[item] = true
		for _, d := range deps {
			affected[d] = true
		}
	}

	// Roll the affected set up to applications and reports.
	view, err := a.indexedView()
	if err != nil {
		return nil, err
	}
	dict := a.st.Dict()
	apps := map[rdf.Term]bool{}
	reports := map[rdf.Term]bool{}
	for item := range affected {
		id, ok := dict.Lookup(item)
		if !ok {
			continue
		}
		if app, ok := containerOfClass(view, dict, id, rdf.DMNS+"Application"); ok {
			apps[app] = true
		}
		// Reports consume items through dm:implements.
		if implID, ok := dict.Lookup(rdf.IRI(rdf.MDWImplements)); ok {
			typeID, _ := dict.Lookup(rdf.Type)
			reportCls, haveReport := dict.Lookup(rdf.IRI(rdf.DMNS + "Report"))
			for _, target := range view.Objects(id, implID) {
				if haveReport && view.Contains(store.ETriple{S: target, P: typeID, O: reportCls}) {
					reports[dict.Term(target)] = true
				}
			}
		}
	}
	for app := range apps {
		an.Applications = append(an.Applications, app)
	}
	for rep := range reports {
		an.Reports = append(an.Reports, rep)
	}
	sort.Slice(an.Applications, func(i, j int) bool { return rdf.Compare(an.Applications[i], an.Applications[j]) < 0 })
	sort.Slice(an.Reports, func(i, j int) bool { return rdf.Compare(an.Reports[i], an.Reports[j]) < 0 })
	return an, nil
}

// containerOfClass walks the transitive dm:partOf closure to a container
// of the given class, or recognizes the node itself.
func containerOfClass(view *store.View, dict *store.Dict, id store.ID, classIRI string) (rdf.Term, bool) {
	typeID, ok := dict.Lookup(rdf.Type)
	if !ok {
		return rdf.Term{}, false
	}
	cls, ok := dict.Lookup(rdf.IRI(classIRI))
	if !ok {
		return rdf.Term{}, false
	}
	if view.Contains(store.ETriple{S: id, P: typeID, O: cls}) {
		return dict.Term(id), true
	}
	partOfID, ok := dict.Lookup(rdf.IRI(rdf.MDWPartOf))
	if !ok {
		return rdf.Term{}, false
	}
	for _, anc := range view.Objects(id, partOfID) {
		if view.Contains(store.ETriple{S: anc, P: typeID, O: cls}) {
			return dict.Term(anc), true
		}
	}
	return rdf.Term{}, false
}

func (a *Analyzer) indexedView() (*store.View, error) {
	idx := reason.IndexModelName(a.model, reason.RulebaseOWLPrime)
	if !a.st.HasModel(idx) {
		if _, _, err := reason.NewEngine(a.st).Materialize(a.model); err != nil {
			return nil, err
		}
	}
	return a.st.ViewOf(a.model, idx), nil
}

// Format renders the analysis for the terminal.
func Format(an *Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "impact of release %s -> %s (+%d / -%d triples)\n",
		an.From.Tag, an.To.Tag, an.AddedTriples, an.RemovedTriples)
	fmt.Fprintf(&b, "  changed items:          %d\n", len(an.Changed))
	withDeps := 0
	for range an.Downstream {
		withDeps++
	}
	fmt.Fprintf(&b, "  items with dependents:  %d\n", withDeps)
	fmt.Fprintf(&b, "  affected applications:  %d\n", len(an.Applications))
	for _, app := range an.Applications {
		fmt.Fprintf(&b, "    %s\n", rdf.LocalName(app.Value))
	}
	fmt.Fprintf(&b, "  affected reports:       %d\n", len(an.Reports))
	for _, rep := range an.Reports {
		fmt.Fprintf(&b, "    %s\n", rdf.LocalName(rep.Value))
	}
	return b.String()
}
