package impact

import (
	"strings"
	"testing"
	"time"

	"mdw/internal/history"
	"mdw/internal/landscape"
	"mdw/internal/ontology"
	"mdw/internal/rdf"
	"mdw/internal/staging"
	"mdw/internal/store"
)

func day(n int) time.Time {
	return time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

// fixture loads Figure 3, snapshots R1, then changes the source column's
// meta-data and snapshots R2.
func fixture(t *testing.T) (*store.Store, *history.Historian) {
	t.Helper()
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(
		[]*staging.Export{landscape.Figure3Export()}, ontology.DWH().Triples()); err != nil {
		t.Fatal(err)
	}
	h := history.NewHistorian(st, "m")
	if _, err := h.Snapshot("R1", day(0)); err != nil {
		t.Fatal(err)
	}
	// Release 2: the source application changes its client_information_id
	// (say, a datatype widening recorded as new meta-data).
	src := staging.InstanceIRI("pb_frontend", "pbdb", "clients", "client_info", "client_information_id")
	st.Add("m", rdf.T(src, rdf.IRI(rdf.MDWLength), rdf.Integer(64)))
	if _, err := h.Snapshot("R2", day(45)); err != nil {
		t.Fatal(err)
	}
	return st, h
}

func TestAnalyzePropagatesDownstream(t *testing.T) {
	st, h := fixture(t)
	an, err := New(st, h).Analyze(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if an.AddedTriples != 1 || an.RemovedTriples != 0 {
		t.Errorf("diff = +%d/-%d", an.AddedTriples, an.RemovedTriples)
	}
	if len(an.Changed) != 1 {
		t.Fatalf("changed = %v", an.Changed)
	}
	src := an.Changed[0]
	deps := an.Downstream[src]
	// The change flows into the whole warehouse chain.
	if len(deps) != 3 {
		t.Fatalf("downstream = %v", deps)
	}
	// Both applications are affected.
	if len(an.Applications) != 2 {
		t.Errorf("applications = %v", an.Applications)
	}
	// The customer concept sits behind a dm:implements edge from
	// customer_id, but it is a Customer, not a Report — so no reports.
	if len(an.Reports) != 0 {
		t.Errorf("reports = %v", an.Reports)
	}
}

func TestAnalyzeFindsAffectedReports(t *testing.T) {
	st, h := fixture(t)
	// Attach a report to the mart column.
	martCol := staging.InstanceIRI("application1", "dwhdb", "mart", "v_customer", "customer_id")
	report := staging.InstanceIRI("concepts", "q3_customer_report")
	st.Add("m", rdf.T(report, rdf.Type, rdf.IRI(rdf.DMNS+"Report")))
	st.Add("m", rdf.T(report, rdf.HasName, rdf.Literal("q3_customer_report")))
	st.Add("m", rdf.T(martCol, rdf.IRI(rdf.MDWImplements), report))
	// The index is stale after this mutation; drop it so the analyzer
	// rebuilds it.
	st.DropModel("m$OWLPRIME")

	an, err := New(st, h).Analyze(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Reports) != 1 || rdf.LocalName(an.Reports[0].Value) != "q3_customer_report" {
		t.Errorf("reports = %v", an.Reports)
	}
}

func TestAnalyzeNoChanges(t *testing.T) {
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(
		[]*staging.Export{landscape.Figure3Export()}, ontology.DWH().Triples()); err != nil {
		t.Fatal(err)
	}
	h := history.NewHistorian(st, "m")
	h.Snapshot("R1", day(0))
	h.Snapshot("R2", day(45))
	an, err := New(st, h).Analyze(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Changed) != 0 || len(an.Applications) != 0 {
		t.Errorf("analysis of identical releases: %+v", an)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	st, h := fixture(t)
	a := New(st, h)
	if _, err := a.Analyze(1, 9); err == nil {
		t.Error("missing release should error")
	}
	if _, err := a.Analyze(7, 2); err == nil {
		t.Error("missing release should error")
	}
}

func TestFormat(t *testing.T) {
	st, h := fixture(t)
	an, err := New(st, h).Analyze(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(an)
	for _, want := range []string{"impact of release R1 -> R2", "changed items:          1", "application1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLandscapeScaleImpact(t *testing.T) {
	// Evolve a landscape across a release and analyze the delta.
	l := landscape.Generate(landscape.Small())
	st := store.New()
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, l.Ontology.Triples()); err != nil {
		t.Fatal(err)
	}
	h := history.NewHistorian(st, "m")
	h.Snapshot("R1", day(0))
	if _, err := landscape.Evolve(l, 2, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := (staging.Pipeline{Store: st, Model: "m"}).Run(l.Exports, nil); err != nil {
		t.Fatal(err)
	}
	h.Snapshot("R2", day(45))

	an, err := New(st, h).Analyze(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Changed) == 0 || len(an.Applications) == 0 {
		t.Errorf("evolution produced no impact: %+v", an)
	}
}
