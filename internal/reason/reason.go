// Package reason implements the entailment component of the meta-data
// warehouse: a forward-chaining materializer for a subset of the OWLPRIME
// rulebase that Oracle's Semantic option applies in the paper
// (SEM_RULEBASES('OWLPRIME') in Listings 1 and 2).
//
// Section III.B describes the mechanism precisely: "indexes read all
// relationships (meta-data schema and hierarchies) and apply them on the
// basic facts. The resulting derived RDF triples ... are included in the
// indexes. In fact, the indexes add additional edges to the meta-data
// graph and therefore increase its density." And crucially: "if a query
// does not explicitly contain a reference to one of these OWL indexes,
// then only the meta-data facts are considered."
//
// Materialize therefore writes derived triples into a *separate* index
// model (named <model>$<rulebase>); queries opt in by unioning the base
// model with its index model, exactly mirroring the paper's semantics.
//
// Supported rules:
//
//	rdfs:subClassOf     transitivity and rdf:type inheritance
//	rdfs:subPropertyOf  transitivity and statement inheritance
//	rdfs:domain         (x p y), (p domain C)  ⇒  (x rdf:type C)
//	rdfs:range          (x p y), (p range C)   ⇒  (y rdf:type C), y non-literal
//	owl:SymmetricProperty, owl:TransitiveProperty
//	owl:inverseOf       including its own symmetry
//	owl:equivalentClass / owl:equivalentProperty (as mutual sub-relations)
//	owl:sameAs          symmetric + transitive closure
package reason

import (
	"fmt"
	"time"

	"mdw/internal/obs"
	"mdw/internal/rdf"
	"mdw/internal/store"
)

// Metric handles, resolved once at package init.
var (
	obsMaterializeHist = obs.Default().Histogram("mdw_reason_materialize_seconds", nil)
	obsDerived         = obs.Default().Counter("mdw_reason_derived_total")
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_reason_materialize_seconds", "Full OWLPRIME materialization latency.")
	r.SetHelp("mdw_reason_derived_total", "Derived triples produced by materializations.")
}

// RulebaseOWLPrime names the default rulebase, matching the paper's
// SEM_RULEBASES('OWLPRIME').
const RulebaseOWLPrime = "OWLPRIME"

// IndexModelName returns the name of the index model holding the derived
// triples for the given base model and rulebase.
func IndexModelName(model, rulebase string) string {
	return model + "$" + rulebase
}

// Engine materializes entailments for models of one Store.
type Engine struct {
	st *store.Store

	// Interned vocabulary IDs, resolved once per engine.
	typeID, subClassID, subPropID store.ID
	domainID, rangeID             store.ID
	symmetricID, transitiveID     store.ID
	inverseID, sameAsID           store.ID
	equivClassID, equivPropID     store.ID
}

// NewEngine returns an engine bound to st.
func NewEngine(st *store.Store) *Engine {
	d := st.Dict()
	return &Engine{
		st:           st,
		typeID:       d.Intern(rdf.IRI(rdf.RDFType)),
		subClassID:   d.Intern(rdf.IRI(rdf.RDFSSubClassOf)),
		subPropID:    d.Intern(rdf.IRI(rdf.RDFSSubPropertyOf)),
		domainID:     d.Intern(rdf.IRI(rdf.RDFSDomain)),
		rangeID:      d.Intern(rdf.IRI(rdf.RDFSRange)),
		symmetricID:  d.Intern(rdf.IRI(rdf.OWLSymmetricProperty)),
		transitiveID: d.Intern(rdf.IRI(rdf.OWLTransitiveProperty)),
		inverseID:    d.Intern(rdf.IRI(rdf.OWLInverseOf)),
		sameAsID:     d.Intern(rdf.IRI(rdf.OWLSameAs)),
		equivClassID: d.Intern(rdf.IRI(rdf.OWLEquivalentClass)),
		equivPropID:  d.Intern(rdf.IRI(rdf.OWLEquivalentProperty)),
	}
}

// Materialize computes the OWLPRIME entailment of the named model and
// stores the *derived-only* triples in the corresponding index model,
// replacing any previous contents. It returns the index model name and
// the number of derived triples.
//
// The closure is computed over a locked snapshot of the base model and
// the finished index model is swapped in atomically, with the base
// generation it was derived from recorded as its basis: concurrent
// writers never race with the rule engine, readers never observe a
// half-built index, and store.Current(model, idxName) reports whether
// the index still reflects the base model.
func (e *Engine) Materialize(model string) (string, int, error) {
	t0 := time.Now()
	idxName := IndexModelName(model, RulebaseOWLPrime)
	// Working closure starts as a detached snapshot of the base model;
	// everything the rules add beyond the base goes to the index model.
	work := e.st.SnapshotModel(model)
	if work == nil {
		return "", 0, fmt.Errorf("reason: no such model %q", model)
	}
	// The snapshot carries its own fresh generation; the base generation
	// it was taken at — the derivation basis — is its Basis.
	basis := work.Basis()
	derived := store.NewModel(idxName)

	var queue []store.ETriple
	work.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t store.ETriple) bool {
		queue = append(queue, t)
		return true
	})

	emit := func(t store.ETriple) {
		if work.Add(t) {
			derived.Add(t)
			queue = append(queue, t)
		}
	}

	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		e.applyRules(work, t, emit)
	}
	derived.SetBasis(basis)
	e.st.InstallModel(derived)
	obsMaterializeHist.ObserveSince(t0)
	obsDerived.Add(int64(derived.Len()))
	return idxName, derived.Len(), nil
}

// applyRules derives the immediate consequences of triple t against the
// current closure and hands each to emit.
func (e *Engine) applyRules(all *store.Model, t store.ETriple, emit func(store.ETriple)) {
	s, p, o := t.S, t.P, t.O

	switch p {
	case e.subClassID:
		// Transitivity, both join directions.
		for _, c := range all.Objects(o, e.subClassID) {
			emit(store.ETriple{S: s, P: e.subClassID, O: c})
		}
		for _, a := range all.Subjects(e.subClassID, s) {
			emit(store.ETriple{S: a, P: e.subClassID, O: o})
		}
		// Type inheritance for existing instances of the subclass.
		for _, x := range all.Subjects(e.typeID, s) {
			emit(store.ETriple{S: x, P: e.typeID, O: o})
		}

	case e.subPropID:
		for _, c := range all.Objects(o, e.subPropID) {
			emit(store.ETriple{S: s, P: e.subPropID, O: c})
		}
		for _, a := range all.Subjects(e.subPropID, s) {
			emit(store.ETriple{S: a, P: e.subPropID, O: o})
		}
		// Statement inheritance: every (x s y) also holds under o.
		all.ForEach(store.Wildcard, s, store.Wildcard, func(st store.ETriple) bool {
			emit(store.ETriple{S: st.S, P: o, O: st.O})
			return true
		})

	case e.typeID:
		// Class membership propagates up the hierarchy.
		for _, c := range all.Objects(o, e.subClassID) {
			emit(store.ETriple{S: s, P: e.typeID, O: c})
		}
		if e.isSchemaPredicate(s) {
			// Declaring a schema predicate symmetric/transitive would
			// corrupt the schema rules themselves; ignore it.
			return
		}
		switch o {
		case e.symmetricID:
			all.ForEach(store.Wildcard, s, store.Wildcard, func(st store.ETriple) bool {
				emit(store.ETriple{S: st.O, P: s, O: st.S})
				return true
			})
		case e.transitiveID:
			all.ForEach(store.Wildcard, s, store.Wildcard, func(st store.ETriple) bool {
				for _, z := range all.Objects(st.O, s) {
					emit(store.ETriple{S: st.S, P: s, O: z})
				}
				return true
			})
		}

	case e.domainID:
		// t = (prop, domain, class): type every existing subject.
		for _, x := range all.SubjectsOf(s) {
			emit(store.ETriple{S: x, P: e.typeID, O: o})
		}

	case e.rangeID:
		all.ForEach(store.Wildcard, s, store.Wildcard, func(st store.ETriple) bool {
			if !e.isLiteral(st.O) {
				emit(store.ETriple{S: st.O, P: e.typeID, O: o})
			}
			return true
		})

	case e.inverseID:
		// t = (p', inverseOf, q): swap all existing statements both ways,
		// and record the symmetric inverse declaration.
		emit(store.ETriple{S: o, P: e.inverseID, O: s})
		all.ForEach(store.Wildcard, s, store.Wildcard, func(st store.ETriple) bool {
			emit(store.ETriple{S: st.O, P: o, O: st.S})
			return true
		})
		all.ForEach(store.Wildcard, o, store.Wildcard, func(st store.ETriple) bool {
			emit(store.ETriple{S: st.O, P: s, O: st.S})
			return true
		})

	case e.equivClassID:
		emit(store.ETriple{S: s, P: e.subClassID, O: o})
		emit(store.ETriple{S: o, P: e.subClassID, O: s})

	case e.equivPropID:
		emit(store.ETriple{S: s, P: e.subPropID, O: o})
		emit(store.ETriple{S: o, P: e.subPropID, O: s})

	case e.sameAsID:
		emit(store.ETriple{S: o, P: e.sameAsID, O: s})
		for _, z := range all.Objects(o, e.sameAsID) {
			if z != s {
				emit(store.ETriple{S: s, P: e.sameAsID, O: z})
			}
		}
	}

	// Generic property-sensitive rules that fire for every statement.
	// Skip the schema predicates already handled above to avoid deriving
	// nonsense like "subClassOf subPropertyOf ...".
	if e.isSchemaPredicate(p) {
		return
	}
	if all.Contains(store.ETriple{S: p, P: e.typeID, O: e.symmetricID}) {
		emit(store.ETriple{S: o, P: p, O: s})
	}
	if all.Contains(store.ETriple{S: p, P: e.typeID, O: e.transitiveID}) {
		for _, z := range all.Objects(o, p) {
			emit(store.ETriple{S: s, P: p, O: z})
		}
		for _, a := range all.Subjects(p, s) {
			emit(store.ETriple{S: a, P: p, O: o})
		}
	}
	for _, q := range all.Objects(p, e.subPropID) {
		emit(store.ETriple{S: s, P: q, O: o})
	}
	for _, q := range all.Objects(p, e.inverseID) {
		emit(store.ETriple{S: o, P: q, O: s})
	}
	for _, q := range all.Subjects(e.inverseID, p) {
		emit(store.ETriple{S: o, P: q, O: s})
	}
	for _, c := range all.Objects(p, e.domainID) {
		emit(store.ETriple{S: s, P: e.typeID, O: c})
	}
	if !e.isLiteral(o) {
		for _, c := range all.Objects(p, e.rangeID) {
			emit(store.ETriple{S: o, P: e.typeID, O: c})
		}
	}
}

func (e *Engine) isSchemaPredicate(p store.ID) bool {
	switch p {
	case e.typeID, e.subClassID, e.subPropID, e.domainID, e.rangeID,
		e.inverseID, e.sameAsID, e.equivClassID, e.equivPropID:
		return true
	}
	return false
}

func (e *Engine) isLiteral(id store.ID) bool {
	return e.st.Dict().Term(id).IsLiteral()
}

// Entail is a convenience for tests and small graphs: it loads ts into a
// scratch store, materializes, and returns base + derived triples.
func Entail(ts []rdf.Triple) ([]rdf.Triple, error) {
	st := store.New()
	st.AddAll("m", ts)
	eng := NewEngine(st)
	idx, _, err := eng.Materialize("m")
	if err != nil {
		return nil, err
	}
	out := st.Triples("m")
	out = append(out, st.Triples(idx)...)
	rdf.SortTriples(out)
	return rdf.DedupTriples(out), nil
}
