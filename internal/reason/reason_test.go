package reason

import (
	"fmt"
	"testing"

	"mdw/internal/rdf"
	"mdw/internal/store"
)

func iri(s string) rdf.Term { return rdf.IRI("http://t/" + s) }

func contains(ts []rdf.Triple, want rdf.Triple) bool {
	for _, t := range ts {
		if t == want {
			return true
		}
	}
	return false
}

func TestSubClassTransitivity(t *testing.T) {
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("Individual"), rdf.SubClassOf, iri("Party")),
		rdf.T(iri("Party"), rdf.SubClassOf, iri("Customer")),
		rdf.T(iri("Customer"), rdf.SubClassOf, iri("Thing")),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []rdf.Triple{
		rdf.T(iri("Individual"), rdf.SubClassOf, iri("Customer")),
		rdf.T(iri("Individual"), rdf.SubClassOf, iri("Thing")),
		rdf.T(iri("Party"), rdf.SubClassOf, iri("Thing")),
	} {
		if !contains(ts, want) {
			t.Errorf("missing %v", want)
		}
	}
}

func TestTypeInheritance(t *testing.T) {
	// The Figure 5 scenario: customer_id is an Application1_View_Column,
	// which is (transitively) an Attribute; search must find it under
	// every ancestor class.
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("customer_id"), rdf.Type, iri("Application1_View_Column")),
		rdf.T(iri("Application1_View_Column"), rdf.SubClassOf, iri("View_Column")),
		rdf.T(iri("View_Column"), rdf.SubClassOf, iri("Attribute")),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range []string{"View_Column", "Attribute"} {
		want := rdf.T(iri("customer_id"), rdf.Type, iri(cls))
		if !contains(ts, want) {
			t.Errorf("customer_id should be inferred as %s", cls)
		}
	}
}

func TestTypeInheritanceOrderIndependence(t *testing.T) {
	// Schema arriving after facts must still trigger inheritance.
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("A"), rdf.SubClassOf, iri("B")),
		rdf.T(iri("x"), rdf.Type, iri("A")),
		rdf.T(iri("B"), rdf.SubClassOf, iri("C")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ts, rdf.T(iri("x"), rdf.Type, iri("C"))) {
		t.Error("x should be a C regardless of triple order")
	}
}

func TestSubPropertyInheritance(t *testing.T) {
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("hasFirstName"), rdf.SubPropertyOf, iri("hasName")),
		rdf.T(iri("john"), iri("hasFirstName"), rdf.Literal("John")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ts, rdf.T(iri("john"), iri("hasName"), rdf.Literal("John"))) {
		t.Error("statement should be inherited by super-property")
	}
}

func TestDomainAndRange(t *testing.T) {
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("hasFirstName"), rdf.Domain, iri("Individual")),
		rdf.T(iri("owns"), rdf.Range, iri("Account")),
		rdf.T(iri("john"), iri("hasFirstName"), rdf.Literal("John")),
		rdf.T(iri("john"), iri("owns"), iri("acct1")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ts, rdf.T(iri("john"), rdf.Type, iri("Individual"))) {
		t.Error("domain rule failed")
	}
	if !contains(ts, rdf.T(iri("acct1"), rdf.Type, iri("Account"))) {
		t.Error("range rule failed")
	}
	// Range must not type literals.
	ts2, err := Entail([]rdf.Triple{
		rdf.T(iri("p"), rdf.Range, iri("C")),
		rdf.T(iri("x"), iri("p"), rdf.Literal("lit")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if contains(ts2, rdf.T(rdf.Literal("lit"), rdf.Type, iri("C"))) {
		t.Error("range rule typed a literal")
	}
}

func TestSymmetricProperty(t *testing.T) {
	// The paper's example: isRelatedTo is symmetric.
	ts, err := Entail([]rdf.Triple{
		rdf.T(rdf.IRI(rdf.MDWIsRelatedTo), rdf.Type, rdf.IRI(rdf.OWLSymmetricProperty)),
		rdf.T(iri("a"), rdf.IRI(rdf.MDWIsRelatedTo), iri("b")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ts, rdf.T(iri("b"), rdf.IRI(rdf.MDWIsRelatedTo), iri("a"))) {
		t.Error("symmetric rule failed")
	}
}

func TestSymmetricDeclaredAfterFacts(t *testing.T) {
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("a"), iri("rel"), iri("b")),
		rdf.T(iri("rel"), rdf.Type, rdf.IRI(rdf.OWLSymmetricProperty)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ts, rdf.T(iri("b"), iri("rel"), iri("a"))) {
		t.Error("symmetric rule must fire when the declaration arrives late")
	}
}

func TestTransitiveProperty(t *testing.T) {
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("feeds"), rdf.Type, rdf.IRI(rdf.OWLTransitiveProperty)),
		rdf.T(iri("a"), iri("feeds"), iri("b")),
		rdf.T(iri("b"), iri("feeds"), iri("c")),
		rdf.T(iri("c"), iri("feeds"), iri("d")),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []rdf.Triple{
		rdf.T(iri("a"), iri("feeds"), iri("c")),
		rdf.T(iri("a"), iri("feeds"), iri("d")),
		rdf.T(iri("b"), iri("feeds"), iri("d")),
	} {
		if !contains(ts, want) {
			t.Errorf("missing transitive edge %v", want)
		}
	}
}

func TestInverseOf(t *testing.T) {
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("feeds"), rdf.IRI(rdf.OWLInverseOf), iri("fedBy")),
		rdf.T(iri("a"), iri("feeds"), iri("b")),
		rdf.T(iri("c"), iri("fedBy"), iri("d")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ts, rdf.T(iri("b"), iri("fedBy"), iri("a"))) {
		t.Error("forward inverse failed")
	}
	if !contains(ts, rdf.T(iri("d"), iri("feeds"), iri("c"))) {
		t.Error("backward inverse failed")
	}
}

func TestEquivalentClass(t *testing.T) {
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("Client"), rdf.IRI(rdf.OWLEquivalentClass), iri("Customer")),
		rdf.T(iri("x"), rdf.Type, iri("Client")),
		rdf.T(iri("y"), rdf.Type, iri("Customer")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ts, rdf.T(iri("x"), rdf.Type, iri("Customer"))) {
		t.Error("equivalentClass →")
	}
	if !contains(ts, rdf.T(iri("y"), rdf.Type, iri("Client"))) {
		t.Error("equivalentClass ←")
	}
}

func TestSameAsClosure(t *testing.T) {
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("a"), rdf.IRI(rdf.OWLSameAs), iri("b")),
		rdf.T(iri("b"), rdf.IRI(rdf.OWLSameAs), iri("c")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(ts, rdf.T(iri("b"), rdf.IRI(rdf.OWLSameAs), iri("a"))) {
		t.Error("sameAs symmetry failed")
	}
	if !contains(ts, rdf.T(iri("a"), rdf.IRI(rdf.OWLSameAs), iri("c"))) {
		t.Error("sameAs transitivity failed")
	}
}

func TestDerivedTriplesSeparateFromBase(t *testing.T) {
	// Section III.B: derived triples exist only in the index model; the
	// base model must stay untouched.
	st := store.New()
	st.AddAll("DWH_CURR", []rdf.Triple{
		rdf.T(iri("x"), rdf.Type, iri("A")),
		rdf.T(iri("A"), rdf.SubClassOf, iri("B")),
	})
	baseLen := st.Len("DWH_CURR")
	eng := NewEngine(st)
	idx, n, err := eng.Materialize("DWH_CURR")
	if err != nil {
		t.Fatal(err)
	}
	if idx != "DWH_CURR$OWLPRIME" {
		t.Errorf("index model name = %q", idx)
	}
	if n == 0 {
		t.Fatal("no derived triples")
	}
	if st.Len("DWH_CURR") != baseLen {
		t.Error("materialization mutated the base model")
	}
	if !st.Contains(idx, rdf.T(iri("x"), rdf.Type, iri("B"))) {
		t.Error("derived triple missing from index model")
	}
	if st.Contains(idx, rdf.T(iri("x"), rdf.Type, iri("A"))) {
		t.Error("base triple duplicated into index model")
	}
}

func TestMaterializeIdempotent(t *testing.T) {
	st := store.New()
	st.AddAll("m", []rdf.Triple{
		rdf.T(iri("x"), rdf.Type, iri("A")),
		rdf.T(iri("A"), rdf.SubClassOf, iri("B")),
	})
	eng := NewEngine(st)
	_, n1, err := eng.Materialize("m")
	if err != nil {
		t.Fatal(err)
	}
	_, n2, err := eng.Materialize("m")
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Errorf("re-materialization changed count: %d vs %d", n1, n2)
	}
}

func TestMaterializeMissingModel(t *testing.T) {
	eng := NewEngine(store.New())
	if _, _, err := eng.Materialize("missing"); err == nil {
		t.Error("expected error for missing model")
	}
}

func TestNoSpuriousSchemaDerivations(t *testing.T) {
	// Even with a symmetric property declared, schema triples themselves
	// must not be flipped.
	ts, err := Entail([]rdf.Triple{
		rdf.T(rdf.SubClassOf, rdf.Type, rdf.IRI(rdf.OWLSymmetricProperty)), // adversarial
		rdf.T(iri("A"), rdf.SubClassOf, iri("B")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if contains(ts, rdf.T(iri("B"), rdf.SubClassOf, iri("A"))) {
		t.Error("schema predicate was flipped by the symmetric rule")
	}
}

func TestDiamondHierarchy(t *testing.T) {
	// Multiple inheritance: the paper notes "most instances are members
	// of several classes due to multiple inheritance in the meta-data
	// hierarchies".
	ts, err := Entail([]rdf.Triple{
		rdf.T(iri("x"), rdf.Type, iri("Bottom")),
		rdf.T(iri("Bottom"), rdf.SubClassOf, iri("Left")),
		rdf.T(iri("Bottom"), rdf.SubClassOf, iri("Right")),
		rdf.T(iri("Left"), rdf.SubClassOf, iri("Top")),
		rdf.T(iri("Right"), rdf.SubClassOf, iri("Top")),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range []string{"Left", "Right", "Top"} {
		if !contains(ts, rdf.T(iri("x"), rdf.Type, iri(cls))) {
			t.Errorf("x should be typed %s", cls)
		}
	}
	// Count x's types: exactly Bottom, Left, Right, Top.
	n := 0
	for _, tr := range ts {
		if tr.S == iri("x") && tr.P == rdf.Type {
			n++
		}
	}
	if n != 4 {
		t.Errorf("x has %d types, want 4", n)
	}
}

func TestChainScaling(t *testing.T) {
	// A deep subclass chain entails the full quadratic closure.
	const depth = 30
	var ts []rdf.Triple
	for i := 0; i < depth; i++ {
		ts = append(ts, rdf.T(iri(fmt.Sprintf("C%d", i)), rdf.SubClassOf, iri(fmt.Sprintf("C%d", i+1))))
	}
	out, err := Entail(ts)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, tr := range out {
		if tr.P == rdf.SubClassOf {
			n++
		}
	}
	want := depth * (depth + 1) / 2
	if n != want {
		t.Errorf("closure has %d subClassOf edges, want %d", n, want)
	}
}
