package reason

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdw/internal/rdf"
)

// genGraph builds a small random graph mixing schema and fact triples
// from a bounded vocabulary, so entailment closures stay small but
// non-trivial.
func genGraph(r *rand.Rand, size int) []rdf.Triple {
	classes := []rdf.Term{iri("A"), iri("B"), iri("C"), iri("D")}
	props := []rdf.Term{iri("p"), iri("q"), iri("r")}
	insts := []rdf.Term{iri("x"), iri("y"), iri("z"), iri("w")}
	var out []rdf.Triple
	for i := 0; i < size; i++ {
		switch r.Intn(6) {
		case 0:
			out = append(out, rdf.T(classes[r.Intn(len(classes))], rdf.SubClassOf, classes[r.Intn(len(classes))]))
		case 1:
			out = append(out, rdf.T(insts[r.Intn(len(insts))], rdf.Type, classes[r.Intn(len(classes))]))
		case 2:
			out = append(out, rdf.T(props[r.Intn(len(props))], rdf.SubPropertyOf, props[r.Intn(len(props))]))
		case 3:
			out = append(out, rdf.T(props[r.Intn(len(props))], rdf.Domain, classes[r.Intn(len(classes))]))
		case 4:
			out = append(out, rdf.T(insts[r.Intn(len(insts))], props[r.Intn(len(props))], insts[r.Intn(len(insts))]))
		default:
			out = append(out, rdf.T(props[r.Intn(len(props))], rdf.Type, rdf.IRI(rdf.OWLSymmetricProperty)))
		}
	}
	return out
}

func asSet(ts []rdf.Triple) map[rdf.Triple]bool {
	m := make(map[rdf.Triple]bool, len(ts))
	for _, t := range ts {
		m[t] = true
	}
	return m
}

// Entailment is idempotent: running the closure on its own output adds
// nothing.
func TestEntailIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := genGraph(r, 3+r.Intn(12))
		once, err := Entail(g)
		if err != nil {
			return false
		}
		twice, err := Entail(once)
		if err != nil {
			return false
		}
		return len(once) == len(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Entailment is monotone: adding triples never removes conclusions.
func TestEntailMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := genGraph(r, 3+r.Intn(10))
		extra := genGraph(r, 1+r.Intn(5))
		small, err := Entail(g)
		if err != nil {
			return false
		}
		big, err := Entail(append(append([]rdf.Triple{}, g...), extra...))
		if err != nil {
			return false
		}
		bigSet := asSet(big)
		for _, tr := range small {
			if !bigSet[tr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Entailment is extensive: the closure contains the input.
func TestEntailExtensiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := genGraph(r, 3+r.Intn(12))
		out, err := Entail(g)
		if err != nil {
			return false
		}
		set := asSet(out)
		for _, tr := range g {
			if !set[tr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Entailment is order-independent: shuffling the input yields the same
// closure.
func TestEntailOrderIndependentProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := genGraph(r, 3+r.Intn(12))
		a, err := Entail(g)
		if err != nil {
			return false
		}
		shuffled := append([]rdf.Triple{}, g...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b, err := Entail(shuffled)
		if err != nil {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] { // both are sorted by Entail
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Type closure matches a reference reachability computation over the
// subclass graph.
func TestTypeClosureMatchesReachabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var g []rdf.Triple
		classes := []rdf.Term{iri("A"), iri("B"), iri("C"), iri("D"), iri("E")}
		edges := map[rdf.Term][]rdf.Term{}
		for i := 0; i < 3+r.Intn(8); i++ {
			a, b := classes[r.Intn(len(classes))], classes[r.Intn(len(classes))]
			g = append(g, rdf.T(a, rdf.SubClassOf, b))
			edges[a] = append(edges[a], b)
		}
		start := classes[r.Intn(len(classes))]
		g = append(g, rdf.T(iri("inst"), rdf.Type, start))

		out, err := Entail(g)
		if err != nil {
			return false
		}
		// Reference: BFS reachability from start.
		want := map[rdf.Term]bool{start: true}
		frontier := []rdf.Term{start}
		for len(frontier) > 0 {
			var next []rdf.Term
			for _, n := range frontier {
				for _, m := range edges[n] {
					if !want[m] {
						want[m] = true
						next = append(next, m)
					}
				}
			}
			frontier = next
		}
		got := map[rdf.Term]bool{}
		for _, tr := range out {
			if tr.S == iri("inst") && tr.P == rdf.Type {
				got[tr.O] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for c := range want {
			if !got[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
