package store

import (
	"sync"
	"sync/atomic"
)

// ETriple is a dictionary-encoded triple.
type ETriple struct {
	S, P, O ID
}

// PredStats holds per-predicate statistics: how many triples carry the
// predicate and how many distinct subjects/objects they touch. The SPARQL
// planner divides pattern counts by the distinct counts to estimate join
// selectivity when a variable position is already bound.
type PredStats struct {
	Triples          int
	DistinctSubjects int
	DistinctObjects  int
}

// StatsSource is optionally implemented by Sources that can provide
// per-predicate statistics for query planning.
type StatsSource interface {
	PredStats(p ID) PredStats
}

// CardEstimator is optionally implemented by Sources that can answer
// pattern-cardinality questions cheaply at the price of precision (an
// upper bound is fine). The SPARQL planner prefers it over Count, whose
// exact de-duplicated answer can cost an enumeration on union views.
type CardEstimator interface {
	EstCount(s, p, o ID) int
}

// Model is one named RDF model: a set of encoded triples maintained under
// three access-path indexes (SPO, POS, OSP) so that any triple pattern can
// be answered with at most one map walk. Model is not itself locked; the
// owning Store serializes mutation (reads of a quiescent model are safe to
// share).
type Model struct {
	name string
	spo  map[ID]map[ID][]ID // subject -> predicate -> objects
	pos  map[ID]map[ID][]ID // predicate -> object -> subjects
	osp  map[ID]map[ID][]ID // object -> subject -> predicates
	size int
	// predSize counts triples per predicate so Count(W, p, W) — the
	// planner's most common statistics probe — is O(1).
	predSize map[ID]int
	// statsMu guards the lazily built per-generation PredStats cache.
	// Reads of a quiescent model stay safe to share: concurrent PredStats
	// callers serialize only on this cache, never on the indexes.
	statsMu   sync.Mutex
	statsGen  uint64
	predStats map[ID]PredStats
	// gen counts successful mutations (Add/Remove). Derived artifacts —
	// the OWLPRIME index models and the full-text indexes — record the
	// base model's gen they were computed from, so stale derivations are
	// detectable without diffing triples. gen starts at 1 so that a zero
	// basis always reads as "never derived".
	gen uint64
	// basis is the generation of the base model this model was derived
	// from (index models and clones; 0 = not a recorded derivation).
	basis uint64
	// ownSPO/ownPOS/ownOSP implement copy-on-write index sharing between
	// a model and its clones. nil means no clone was ever taken: every
	// inner index node is privately owned and mutations touch it in
	// place (the common case pays one nil check). After Clone both sides
	// get empty ownership sets — every inner node is shared — and the
	// first mutation of a shared node copies it (inner map and slices)
	// before writing, marking the node owned. Readers never consult
	// these maps, so reads of a quiescent model stay safe to share.
	ownSPO map[ID]bool
	ownPOS map[ID]bool
	ownOSP map[ID]bool
	// uid identifies this model *instance*, unique across every model
	// ever constructed in the process. Generations alone cannot key a
	// results cache: a dropped-and-recreated model, a reinstalled index
	// model, or a second Store restart from the same state all repeat
	// (name, generation) pairs with possibly different contents. The uid
	// changes with every construction, so a cache key embedding it can
	// never alias across instances. Never persisted — it has no replay
	// meaning.
	uid uint64
}

// modelUIDs allocates Model.uid values.
var modelUIDs atomic.Uint64

// NewModel returns an empty model with the given name.
func NewModel(name string) *Model {
	return &Model{
		name:     name,
		spo:      make(map[ID]map[ID][]ID),
		pos:      make(map[ID]map[ID][]ID),
		osp:      make(map[ID]map[ID][]ID),
		predSize: make(map[ID]int),
		gen:      1,
		uid:      modelUIDs.Add(1),
	}
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// Len returns the number of triples in the model.
func (m *Model) Len() int { return m.size }

// Gen returns the model's mutation generation: it changes on every
// successful Add or Remove, so equality of generations implies equality
// of contents over the model's lifetime.
func (m *Model) Gen() uint64 { return m.gen }

// Basis returns the recorded base generation of a derived model
// (0 when none was recorded).
func (m *Model) Basis() uint64 { return m.basis }

// UID returns the process-unique instance id of this model (see the
// field comment). The results cache keys on (UID, Gen); UID never
// repeats, Gen never repeats within a UID, so a key can never alias two
// different states.
func (m *Model) UID() uint64 { return m.uid }

// SetBasis records the base generation this (derived) model was computed
// from.
func (m *Model) SetBasis(gen uint64) { m.basis = gen }

// SetGen overwrites the model's mutation generation. Only the durable
// recovery path uses it, to restore the generation a snapshot recorded so
// that replayed WAL mutations reproduce the original generation sequence
// (and derived-model bases stay verifiable).
func (m *Model) SetGen(gen uint64) { m.gen = gen }

// Add inserts the encoded triple and reports whether it was newly added.
func (m *Model) Add(t ETriple) bool {
	if m.Contains(t) {
		return false
	}
	m.cowFor(t)
	addIdx(m.spo, t.S, t.P, t.O)
	addIdx(m.pos, t.P, t.O, t.S)
	addIdx(m.osp, t.O, t.S, t.P)
	m.predSize[t.P]++
	m.size++
	m.gen++
	return true
}

// Remove deletes the encoded triple and reports whether it was present.
func (m *Model) Remove(t ETriple) bool {
	if !m.Contains(t) {
		return false
	}
	m.cowFor(t)
	removeIdx(m.spo, t.S, t.P, t.O)
	removeIdx(m.pos, t.P, t.O, t.S)
	removeIdx(m.osp, t.O, t.S, t.P)
	if m.predSize[t.P]--; m.predSize[t.P] == 0 {
		delete(m.predSize, t.P)
	}
	m.size--
	m.gen++
	return true
}

// Contains reports whether the triple is present.
func (m *Model) Contains(t ETriple) bool {
	ps, ok := m.spo[t.S]
	if !ok {
		return false
	}
	for _, o := range ps[t.P] {
		if o == t.O {
			return true
		}
	}
	return false
}

// cowFor makes the three index nodes the triple lands in safe to mutate:
// on a model that shares nodes with a clone (or its source), any node not
// yet owned is copied before addIdx/removeIdx write into it. Models that
// were never cloned have nil ownership sets and return immediately.
func (m *Model) cowFor(t ETriple) {
	if m.ownSPO == nil {
		return
	}
	cowNode(m.spo, m.ownSPO, t.S)
	cowNode(m.pos, m.ownPOS, t.P)
	cowNode(m.osp, m.ownOSP, t.O)
}

// cowNode ensures idx[a] is privately owned, copying the inner map and
// its slices if the node is still shared. Slices must be copied too:
// removeIdx swap-deletes in place, and an append into a shared backing
// array would be visible to the other side.
func cowNode(idx map[ID]map[ID][]ID, own map[ID]bool, a ID) {
	if own[a] {
		return
	}
	own[a] = true
	inner, ok := idx[a]
	if !ok {
		return
	}
	ci := make(map[ID][]ID, len(inner))
	for b, list := range inner {
		cl := make([]ID, len(list))
		copy(cl, list)
		ci[b] = cl
	}
	idx[a] = ci
}

func addIdx(idx map[ID]map[ID][]ID, a, b, c ID) {
	inner, ok := idx[a]
	if !ok {
		inner = make(map[ID][]ID, 1)
		idx[a] = inner
	}
	inner[b] = append(inner[b], c)
}

func removeIdx(idx map[ID]map[ID][]ID, a, b, c ID) {
	inner, ok := idx[a]
	if !ok {
		return
	}
	list := inner[b]
	for i, v := range list {
		if v == c {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			if len(list) == 0 {
				delete(inner, b)
				if len(inner) == 0 {
					delete(idx, a)
				}
			} else {
				inner[b] = list
			}
			return
		}
	}
}

// ForEach streams every triple matching the pattern (Wildcard entries
// match anything) to fn. Iteration stops early when fn returns false.
// The traversal picks the most selective index for the bound positions.
func (m *Model) ForEach(s, p, o ID, fn func(ETriple) bool) {
	switch {
	case s != Wildcard && p != Wildcard && o != Wildcard:
		if m.Contains(ETriple{s, p, o}) {
			fn(ETriple{s, p, o})
		}
	case s != Wildcard && p != Wildcard:
		for _, obj := range m.spo[s][p] {
			if !fn(ETriple{s, p, obj}) {
				return
			}
		}
	case p != Wildcard && o != Wildcard:
		for _, sub := range m.pos[p][o] {
			if !fn(ETriple{sub, p, o}) {
				return
			}
		}
	case s != Wildcard && o != Wildcard:
		for _, pred := range m.osp[o][s] {
			if !fn(ETriple{s, pred, o}) {
				return
			}
		}
	case s != Wildcard:
		for pred, objs := range m.spo[s] {
			for _, obj := range objs {
				if !fn(ETriple{s, pred, obj}) {
					return
				}
			}
		}
	case p != Wildcard:
		for obj, subs := range m.pos[p] {
			for _, sub := range subs {
				if !fn(ETriple{sub, p, obj}) {
					return
				}
			}
		}
	case o != Wildcard:
		for sub, preds := range m.osp[o] {
			for _, pred := range preds {
				if !fn(ETriple{sub, pred, o}) {
					return
				}
			}
		}
	default:
		for sub, ps := range m.spo {
			for pred, objs := range ps {
				for _, obj := range objs {
					if !fn(ETriple{sub, pred, obj}) {
						return
					}
				}
			}
		}
	}
}

// Count returns the number of triples matching the pattern without
// materializing them. Every access path is answered from an index (plus
// the predSize counter for predicate-only patterns), so the planner can
// probe cardinalities freely.
func (m *Model) Count(s, p, o ID) int {
	n := 0
	switch {
	case s != Wildcard && p != Wildcard && o != Wildcard:
		if m.Contains(ETriple{s, p, o}) {
			n = 1
		}
	case s != Wildcard && p != Wildcard:
		n = len(m.spo[s][p])
	case p != Wildcard && o != Wildcard:
		n = len(m.pos[p][o])
	case s != Wildcard && o != Wildcard:
		n = len(m.osp[o][s])
	case p != Wildcard:
		n = m.predSize[p]
	case s != Wildcard:
		for _, objs := range m.spo[s] {
			n += len(objs)
		}
	case o != Wildcard:
		for _, preds := range m.osp[o] {
			n += len(preds)
		}
	default:
		n = m.size
	}
	return n
}

// EstCount implements CardEstimator; a single model's counts are exact
// and cheap, so the estimate is Count itself.
func (m *Model) EstCount(s, p, o ID) int { return m.Count(s, p, o) }

// PredStats returns the per-predicate statistics for p, computed lazily
// and cached per mutation generation. Safe for concurrent readers of a
// quiescent model.
func (m *Model) PredStats(p ID) PredStats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	if m.statsGen != m.gen {
		m.predStats = make(map[ID]PredStats)
		m.statsGen = m.gen
		obsStatsBuild.Inc()
	}
	if ps, ok := m.predStats[p]; ok {
		obsStatsHits.Inc()
		return ps
	}
	obsStatsMiss.Inc()
	ps := PredStats{Triples: m.predSize[p], DistinctObjects: len(m.pos[p])}
	subjects := make(map[ID]struct{})
	for _, subs := range m.pos[p] {
		for _, s := range subs {
			subjects[s] = struct{}{}
		}
	}
	ps.DistinctSubjects = len(subjects)
	m.predStats[p] = ps
	return ps
}

// Subjects returns the distinct subjects of triples matching (p, o).
func (m *Model) Subjects(p, o ID) []ID {
	if p != Wildcard && o != Wildcard {
		out := make([]ID, len(m.pos[p][o]))
		copy(out, m.pos[p][o])
		return out
	}
	seen := make(map[ID]bool)
	var out []ID
	m.ForEach(Wildcard, p, o, func(t ETriple) bool {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		return true
	})
	return out
}

// Objects returns the objects of triples matching (s, p).
func (m *Model) Objects(s, p ID) []ID {
	if s != Wildcard && p != Wildcard {
		out := make([]ID, len(m.spo[s][p]))
		copy(out, m.spo[s][p])
		return out
	}
	seen := make(map[ID]bool)
	var out []ID
	m.ForEach(s, p, Wildcard, func(t ETriple) bool {
		if !seen[t.O] {
			seen[t.O] = true
			out = append(out, t.O)
		}
		return true
	})
	return out
}

// SubjectsOf returns the distinct subjects of statements with predicate p.
func (m *Model) SubjectsOf(p ID) []ID {
	seen := make(map[ID]bool)
	var out []ID
	for _, subs := range m.pos[p] {
		for _, s := range subs {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// Predicates returns the distinct predicates appearing in the model.
func (m *Model) Predicates() []ID {
	out := make([]ID, 0, len(m.pos))
	for p := range m.pos {
		out = append(out, p)
	}
	return out
}

// Clone returns a copy-on-write copy of the model under a new name.
// Historization uses this to snapshot a release before the next one
// mutates it; the reasoner uses it to compute entailment closures off to
// the side. Only the outer index maps are copied — inner nodes are
// shared until either side first mutates them (see cowFor) — so a clone
// costs O(distinct terms), not O(triples).
//
// The copy gets a generation disjoint from the source's: its high word
// is one past the source's, so the two generation sequences can never
// collide after the models diverge. Basis records the source generation
// the copy was taken at, so derivations computed from the clone can
// still be checked against the original. Two standalone clones of the
// same model share a generation sequence; Store.CloneModel and
// Store.SnapshotModel hand out store-wide unique generations instead.
func (m *Model) Clone(name string) *Model {
	return m.cloneAt(name, ((m.gen>>32)+1)<<32+1)
}

// cloneAt is Clone with an explicit generation for the copy.
func (m *Model) cloneAt(name string, gen uint64) *Model {
	c := NewModel(name)
	c.size = m.size
	c.gen = gen
	c.basis = m.gen
	c.spo = copyOuter(m.spo)
	c.pos = copyOuter(m.pos)
	c.osp = copyOuter(m.osp)
	c.predSize = make(map[ID]int, len(m.predSize))
	for p, n := range m.predSize {
		c.predSize[p] = n
	}
	// Every inner node is now shared between m and c: reset ownership on
	// both sides so the first mutation of a node copies it first.
	m.ownSPO, m.ownPOS, m.ownOSP = map[ID]bool{}, map[ID]bool{}, map[ID]bool{}
	c.ownSPO, c.ownPOS, c.ownOSP = map[ID]bool{}, map[ID]bool{}, map[ID]bool{}
	return c
}

// copyOuter copies only the outer map of one index; the inner maps (and
// their slices) stay shared until cowNode copies them on first write.
func copyOuter(idx map[ID]map[ID][]ID) map[ID]map[ID][]ID {
	out := make(map[ID]map[ID][]ID, len(idx))
	for a, inner := range idx {
		out[a] = inner
	}
	return out
}
