package store

import (
	"bytes"
	"testing"

	"mdw/internal/rdf"
)

func TestGenerationCounting(t *testing.T) {
	st := New()
	if g := st.Generation("m"); g != 0 {
		t.Fatalf("generation of missing model = %d, want 0", g)
	}
	st.Add("m", rdf.T(iri("s"), iri("p"), iri("o")))
	g1 := st.Generation("m")
	if g1 == 0 {
		t.Fatal("generation stayed 0 after first add")
	}
	// A duplicate add is a no-op and must not advance the generation.
	st.Add("m", rdf.T(iri("s"), iri("p"), iri("o")))
	if g := st.Generation("m"); g != g1 {
		t.Errorf("duplicate add advanced generation %d -> %d", g1, g)
	}
	st.Add("m", rdf.T(iri("s2"), iri("p"), iri("o")))
	g2 := st.Generation("m")
	if g2 <= g1 {
		t.Errorf("add did not advance generation (%d -> %d)", g1, g2)
	}
	st.Remove("m", rdf.T(iri("s2"), iri("p"), iri("o")))
	if g := st.Generation("m"); g <= g2 {
		t.Errorf("remove did not advance generation (%d -> %d)", g2, g)
	}
	// Removing an absent triple is a no-op.
	g3 := st.Generation("m")
	st.Remove("m", rdf.T(iri("s2"), iri("p"), iri("o")))
	if g := st.Generation("m"); g != g3 {
		t.Errorf("no-op remove advanced generation %d -> %d", g3, g)
	}
}

func TestCurrentAndBasis(t *testing.T) {
	st := New()
	st.Add("base", rdf.T(iri("s"), iri("p"), iri("o")))
	if st.Current("base", "base$IDX") {
		t.Fatal("missing derived model reported current")
	}
	// Derive via the snapshot/install protocol the reasoner uses.
	snap := st.SnapshotModel("base")
	derived := NewModel("base$IDX")
	snap.ForEach(Wildcard, Wildcard, Wildcard, func(e ETriple) bool {
		derived.Add(e)
		return true
	})
	derived.SetBasis(snap.Basis())
	st.InstallModel(derived)
	if !st.Current("base", "base$IDX") {
		t.Fatal("freshly installed derived model not current")
	}
	// Any write to the base invalidates the derivation.
	st.Add("base", rdf.T(iri("s2"), iri("p"), iri("o")))
	if st.Current("base", "base$IDX") {
		t.Error("derived model still current after base write")
	}
	if st.Current("no_base", "base$IDX") {
		t.Error("current with a missing base")
	}
}

func TestSnapshotModelIsDetached(t *testing.T) {
	st := New()
	st.Add("m", rdf.T(iri("s"), iri("p"), iri("o")))
	snap := st.SnapshotModel("m")
	if snap == nil || snap.Len() != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap.Basis() != st.Generation("m") {
		t.Errorf("snapshot basis %d != model gen %d", snap.Basis(), st.Generation("m"))
	}
	// The snapshot's own generation is fresh: it must never alias the
	// source's, no matter how either side mutates from here.
	if snap.Gen() == st.Generation("m") {
		t.Errorf("snapshot kept the source generation %d", snap.Gen())
	}
	// Later store writes do not leak into the snapshot, and snapshot
	// writes do not leak back.
	st.Add("m", rdf.T(iri("s2"), iri("p"), iri("o")))
	if snap.Len() != 1 {
		t.Error("store write visible in snapshot")
	}
	snap.Add(ETriple{S: 91, P: 92, O: 93})
	if st.Len("m") != 2 {
		t.Error("snapshot write visible in store")
	}
	if st.SnapshotModel("missing") != nil {
		t.Error("snapshot of missing model is not nil")
	}
}

func TestReadViewInfos(t *testing.T) {
	st := New()
	st.Add("a", rdf.T(iri("s"), iri("p"), iri("o")))
	st.Add("a", rdf.T(iri("s2"), iri("p"), iri("o")))
	var infos []ModelInfo
	var n int
	st.ReadView(func(v *View, is []ModelInfo) {
		infos = append([]ModelInfo(nil), is...)
		n = v.Len()
	}, "a", "missing")
	if n != 2 {
		t.Errorf("view over a+missing has %d triples, want 2", n)
	}
	if len(infos) != 2 {
		t.Fatalf("infos = %v", infos)
	}
	if !infos[0].Exists || infos[0].Gen != st.Generation("a") || infos[0].Triples != 2 {
		t.Errorf("info[a] = %+v", infos[0])
	}
	if infos[1].Exists || infos[1].Gen != 0 || infos[1].Name != "missing" {
		t.Errorf("info[missing] = %+v", infos[1])
	}
}

// TestDumpAdoptsDerivedBasis checks the load-time adoption rule: a dump
// is written from a consistent store, so "<base>$<rulebase>" models come
// back current without re-entailment.
func TestDumpAdoptsDerivedBasis(t *testing.T) {
	st := New()
	st.Add("m", rdf.T(iri("s"), iri("p"), iri("o")))
	st.Add("m$OWLPRIME", rdf.T(iri("s"), iri("p"), iri("o")))
	st.Add("m$OWLPRIME", rdf.T(iri("s"), iri("p2"), iri("o")))
	st.Add("other", rdf.T(iri("x"), iri("p"), iri("o")))

	var buf bytes.Buffer
	if err := st.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Current("m", "m$OWLPRIME") {
		t.Error("derived model not adopted as current after ReadDump")
	}
	// Non-derived models gain no basis.
	if got.Current("m", "other") {
		t.Error("unrelated model reported current")
	}
	// And the adoption breaks as soon as the base moves on.
	got.Add("m", rdf.T(iri("s9"), iri("p"), iri("o")))
	if got.Current("m", "m$OWLPRIME") {
		t.Error("adopted basis survived a base write")
	}
}
