package store

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"mdw/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.IRI("http://t/" + s) }

func TestDictInternIdempotent(t *testing.T) {
	d := NewDict()
	a := d.Intern(iri("a"))
	b := d.Intern(iri("b"))
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if got := d.Intern(iri("a")); got != a {
		t.Errorf("re-intern gave %d, want %d", got, a)
	}
	if d.Term(a) != iri("a") {
		t.Errorf("Term(%d) = %v", a, d.Term(a))
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup(iri("zzz")); ok {
		t.Error("Lookup of unknown term succeeded")
	}
}

func TestDictNeverAssignsWildcard(t *testing.T) {
	d := NewDict()
	for i := 0; i < 100; i++ {
		if id := d.Intern(iri(fmt.Sprintf("n%d", i))); id == Wildcard {
			t.Fatal("dictionary assigned the wildcard ID")
		}
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	var wg sync.WaitGroup
	ids := make([][]ID, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, 100)
			for i := 0; i < 100; i++ {
				ids[g][i] = d.Intern(iri(fmt.Sprintf("n%d", i)))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got different ID for n%d", g, i)
			}
		}
	}
}

func TestModelAddContainsRemove(t *testing.T) {
	m := NewModel("m")
	tr := ETriple{1, 2, 3}
	if !m.Add(tr) {
		t.Fatal("first Add returned false")
	}
	if m.Add(tr) {
		t.Error("duplicate Add returned true")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
	if !m.Contains(tr) {
		t.Error("Contains = false")
	}
	if !m.Remove(tr) {
		t.Error("Remove returned false")
	}
	if m.Remove(tr) {
		t.Error("second Remove returned true")
	}
	if m.Len() != 0 || m.Contains(tr) {
		t.Error("model not empty after Remove")
	}
}

func TestModelPatternAccessPaths(t *testing.T) {
	m := NewModel("m")
	// Build a small star: s1 -p-> o1,o2 ; s2 -p-> o1 ; s1 -q-> o3.
	data := []ETriple{{1, 10, 100}, {1, 10, 101}, {2, 10, 100}, {1, 11, 102}}
	for _, tr := range data {
		m.Add(tr)
	}
	tests := []struct {
		s, p, o ID
		want    int
	}{
		{1, 10, 100, 1},
		{1, 10, Wildcard, 2},
		{Wildcard, 10, 100, 2},
		{1, Wildcard, 100, 1},
		{1, Wildcard, Wildcard, 3},
		{Wildcard, 10, Wildcard, 3},
		{Wildcard, Wildcard, 100, 2},
		{Wildcard, Wildcard, Wildcard, 4},
		{9, Wildcard, Wildcard, 0},
	}
	for _, tc := range tests {
		n := 0
		m.ForEach(tc.s, tc.p, tc.o, func(tr ETriple) bool {
			// Every reported triple must match the pattern and exist.
			if tc.s != Wildcard && tr.S != tc.s || tc.p != Wildcard && tr.P != tc.p || tc.o != Wildcard && tr.O != tc.o {
				t.Errorf("pattern (%d,%d,%d) returned non-matching %v", tc.s, tc.p, tc.o, tr)
			}
			if !m.Contains(tr) {
				t.Errorf("reported triple %v not in model", tr)
			}
			n++
			return true
		})
		if n != tc.want {
			t.Errorf("pattern (%d,%d,%d): got %d matches, want %d", tc.s, tc.p, tc.o, n, tc.want)
		}
		if c := m.Count(tc.s, tc.p, tc.o); c != tc.want {
			t.Errorf("Count(%d,%d,%d) = %d, want %d", tc.s, tc.p, tc.o, c, tc.want)
		}
	}
}

func TestModelEarlyStop(t *testing.T) {
	m := NewModel("m")
	for i := ID(1); i <= 10; i++ {
		m.Add(ETriple{i, 1, 1})
	}
	n := 0
	m.ForEach(Wildcard, Wildcard, Wildcard, func(ETriple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestModelSubjectsObjects(t *testing.T) {
	m := NewModel("m")
	m.Add(ETriple{1, 10, 100})
	m.Add(ETriple{2, 10, 100})
	m.Add(ETriple{1, 10, 101})
	if got := m.Subjects(10, 100); len(got) != 2 {
		t.Errorf("Subjects = %v", got)
	}
	if got := m.Objects(1, 10); len(got) != 2 {
		t.Errorf("Objects = %v", got)
	}
	if got := m.SubjectsOf(10); len(got) != 2 {
		t.Errorf("SubjectsOf = %v", got)
	}
	if got := m.Predicates(); len(got) != 1 || got[0] != 10 {
		t.Errorf("Predicates = %v", got)
	}
}

func TestModelClone(t *testing.T) {
	m := NewModel("m")
	m.Add(ETriple{1, 2, 3})
	c := m.Clone("c")
	c.Add(ETriple{4, 5, 6})
	if m.Len() != 1 {
		t.Error("clone mutation leaked into original")
	}
	if c.Len() != 2 {
		t.Error("clone missing triples")
	}
	m.Remove(ETriple{1, 2, 3})
	if !c.Contains(ETriple{1, 2, 3}) {
		t.Error("original mutation leaked into clone")
	}
}

func TestStoreBasics(t *testing.T) {
	s := New()
	tr := rdf.T(iri("s"), iri("p"), iri("o"))
	if !s.Add("m", tr) {
		t.Fatal("Add returned false")
	}
	if s.Add("m", tr) {
		t.Error("duplicate Add returned true")
	}
	if !s.Contains("m", tr) {
		t.Error("Contains = false")
	}
	if s.Contains("other", tr) {
		t.Error("triple leaked across models")
	}
	if s.Len("m") != 1 {
		t.Errorf("Len = %d", s.Len("m"))
	}
	if !s.Remove("m", tr) || s.Len("m") != 0 {
		t.Error("Remove failed")
	}
	if s.Remove("m", rdf.T(iri("u"), iri("p"), iri("o"))) {
		t.Error("Remove of unknown-term triple returned true")
	}
}

func TestStoreAddAllAndMatch(t *testing.T) {
	s := New()
	ts := []rdf.Triple{
		rdf.T(iri("s1"), iri("p"), iri("o1")),
		rdf.T(iri("s1"), iri("p"), iri("o2")),
		rdf.T(iri("s2"), iri("p"), iri("o1")),
		rdf.T(iri("s1"), iri("p"), iri("o1")), // dup
	}
	if n := s.AddAll("m", ts); n != 3 {
		t.Errorf("AddAll added %d, want 3", n)
	}
	got := s.Match("m", iri("s1"), rdf.Term{}, rdf.Term{})
	if len(got) != 2 {
		t.Errorf("Match = %v", got)
	}
	if n := s.CountPattern("m", rdf.Term{}, iri("p"), rdf.Term{}); n != 3 {
		t.Errorf("CountPattern = %d", n)
	}
	// Unknown constant in pattern: no matches, no panic.
	if got := s.Match("m", iri("nope"), rdf.Term{}, rdf.Term{}); got != nil {
		t.Errorf("Match with unknown term = %v", got)
	}
}

func TestStoreModelManagement(t *testing.T) {
	s := New()
	s.Add("b", rdf.T(iri("s"), iri("p"), iri("o")))
	s.Add("a", rdf.T(iri("s"), iri("p"), iri("o")))
	if names := s.ModelNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("ModelNames = %v", names)
	}
	if !s.HasModel("a") || s.HasModel("zz") {
		t.Error("HasModel wrong")
	}
	if !s.DropModel("a") || s.DropModel("a") {
		t.Error("DropModel wrong")
	}
}

func TestStoreCloneModel(t *testing.T) {
	s := New()
	s.Add("src", rdf.T(iri("s"), iri("p"), iri("o")))
	if err := s.CloneModel("src", "dst"); err != nil {
		t.Fatal(err)
	}
	if s.Len("dst") != 1 {
		t.Error("clone missing triples")
	}
	if err := s.CloneModel("src", "dst"); err == nil {
		t.Error("clone onto existing model should fail")
	}
	if err := s.CloneModel("missing", "x"); err == nil {
		t.Error("clone of missing model should fail")
	}
}

func TestStoreStats(t *testing.T) {
	s := New()
	s.Add("m", rdf.T(iri("s1"), iri("p"), iri("o1")))
	s.Add("m", rdf.T(iri("s1"), iri("q"), iri("o2")))
	st := s.ModelStats("m")
	if st.Triples != 2 || st.Subjects != 1 || st.Predicates != 2 || st.Objects != 2 {
		t.Errorf("stats = %+v", st)
	}
	if s.ModelStats("none").Triples != 0 {
		t.Error("stats of missing model should be zero")
	}
}

func TestViewUnionDedup(t *testing.T) {
	s := New()
	shared := rdf.T(iri("s"), iri("p"), iri("o"))
	s.Add("base", shared)
	s.Add("base", rdf.T(iri("s"), iri("p"), iri("o2")))
	s.Add("idx", shared) // duplicate across models
	s.Add("idx", rdf.T(iri("s"), iri("p"), iri("o3")))
	v := s.ViewOf("base", "idx")
	if v.Len() != 3 {
		t.Errorf("view Len = %d, want 3 (dedup across models)", v.Len())
	}
	et, _ := s.encodeLookup(shared)
	if !v.Contains(et) {
		t.Error("view Contains = false")
	}
	// Missing models are skipped silently.
	v2 := s.ViewOf("base", "no-such-model")
	if v2.Len() != 2 {
		t.Errorf("view over missing model Len = %d", v2.Len())
	}
}

func TestViewSubjectsObjects(t *testing.T) {
	s := New()
	s.Add("a", rdf.T(iri("s1"), iri("p"), iri("o")))
	s.Add("b", rdf.T(iri("s2"), iri("p"), iri("o")))
	s.Add("b", rdf.T(iri("s1"), iri("p"), iri("o"))) // dup of model a content? no: same triple exists only in b
	v := s.ViewOf("a", "b")
	d := s.Dict()
	p, _ := d.Lookup(iri("p"))
	o, _ := d.Lookup(iri("o"))
	if got := v.Subjects(p, o); len(got) != 2 {
		t.Errorf("view Subjects = %v", got)
	}
	s1, _ := d.Lookup(iri("s1"))
	if got := v.Objects(s1, p); len(got) != 1 {
		t.Errorf("view Objects = %v", got)
	}
	if v.Count(Wildcard, p, Wildcard) != 2 {
		t.Errorf("view Count = %d", v.Count(Wildcard, p, Wildcard))
	}
}

// TestViewPredStats pins the combination rule for planner statistics
// over a multi-model view: triples and distinct objects are summed
// (upper bounds, like EstCount), but distinct subjects take the max
// across members — derived-index members re-state the base model's
// subjects, and summing them would inflate the denominator of the
// planner's per-subject fanout estimate.
func TestViewPredStats(t *testing.T) {
	s := New()
	// base: s1-p->{o1,o2}, s2-p->o1. idx re-states both subjects (the
	// entailment-index overlap case) with one new derived object.
	s.Add("base", rdf.T(iri("s1"), iri("p"), iri("o1")))
	s.Add("base", rdf.T(iri("s1"), iri("p"), iri("o2")))
	s.Add("base", rdf.T(iri("s2"), iri("p"), iri("o1")))
	s.Add("idx", rdf.T(iri("s1"), iri("p"), iri("o3")))
	s.Add("idx", rdf.T(iri("s2"), iri("p"), iri("o3")))
	v := s.ViewOf("base", "idx")
	p, _ := s.Dict().Lookup(iri("p"))
	ps := v.PredStats(p)
	if ps.Triples != 5 {
		t.Errorf("Triples = %d, want 5 (sum of members)", ps.Triples)
	}
	if ps.DistinctSubjects != 2 {
		t.Errorf("DistinctSubjects = %d, want 2 (max, not sum 4)", ps.DistinctSubjects)
	}
	if ps.DistinctObjects != 3 {
		t.Errorf("DistinctObjects = %d, want 3 (sum of {2,1})", ps.DistinctObjects)
	}
	// A predicate absent everywhere yields zeros.
	q, _ := s.Dict().Lookup(iri("o1"))
	if z := v.PredStats(q); z != (PredStats{}) {
		t.Errorf("PredStats of non-predicate = %+v", z)
	}
}

// Property: a model behaves as a set of triples — after adding any
// multiset, Len equals the number of distinct triples and every added
// triple is contained.
func TestModelSetSemanticsProperty(t *testing.T) {
	f := func(raw []struct{ S, P, O uint8 }) bool {
		m := NewModel("m")
		set := map[ETriple]bool{}
		for _, r := range raw {
			tr := ETriple{ID(r.S) + 1, ID(r.P) + 1, ID(r.O) + 1}
			m.Add(tr)
			set[tr] = true
		}
		if m.Len() != len(set) {
			return false
		}
		for tr := range set {
			if !m.Contains(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: removing everything added leaves an empty model with empty
// indexes (no dangling map entries observable through iteration).
func TestModelRemoveAllProperty(t *testing.T) {
	f := func(raw []struct{ S, P, O uint8 }) bool {
		m := NewModel("m")
		set := map[ETriple]bool{}
		for _, r := range raw {
			tr := ETriple{ID(r.S) + 1, ID(r.P) + 1, ID(r.O) + 1}
			m.Add(tr)
			set[tr] = true
		}
		for tr := range set {
			if !m.Remove(tr) {
				return false
			}
		}
		if m.Len() != 0 {
			return false
		}
		n := 0
		m.ForEach(Wildcard, Wildcard, Wildcard, func(ETriple) bool { n++; return true })
		return n == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreConcurrentReadersAndWriters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add("m", rdf.T(iri(fmt.Sprintf("s%d-%d", g, i)), iri("p"), iri("o")))
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.CountPattern("m", rdf.Term{}, iri("p"), rdf.Term{})
			}
		}()
	}
	wg.Wait()
	if s.Len("m") != 800 {
		t.Errorf("Len = %d, want 800", s.Len("m"))
	}
}
