package store

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refModel is a trivially correct reference implementation: a plain set.
type refModel map[ETriple]bool

func (r refModel) match(s, p, o ID) map[ETriple]bool {
	out := map[ETriple]bool{}
	for t := range r {
		if (s == Wildcard || t.S == s) && (p == Wildcard || t.P == p) && (o == Wildcard || t.O == o) {
			out[t] = true
		}
	}
	return out
}

// TestModelAgainstReferenceProperty drives Model and the reference set
// through the same random operation sequence and checks that every
// pattern query agrees afterwards.
func TestModelAgainstReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel("m")
		ref := refModel{}
		id := func() ID { return ID(1 + rng.Intn(6)) }

		for op := 0; op < 150; op++ {
			tr := ETriple{id(), id(), id()}
			switch rng.Intn(3) {
			case 0, 1: // add twice as often as remove
				added := m.Add(tr)
				if added == ref[tr] { // must be newly added iff absent before
					return false
				}
				ref[tr] = true
			case 2:
				removed := m.Remove(tr)
				if removed != ref[tr] {
					return false
				}
				delete(ref, tr)
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		// Check every pattern shape on random probes.
		for probe := 0; probe < 30; probe++ {
			s, p, o := id(), id(), id()
			if rng.Intn(2) == 0 {
				s = Wildcard
			}
			if rng.Intn(2) == 0 {
				p = Wildcard
			}
			if rng.Intn(2) == 0 {
				o = Wildcard
			}
			want := ref.match(s, p, o)
			got := map[ETriple]bool{}
			m.ForEach(s, p, o, func(tr ETriple) bool {
				if got[tr] {
					return false // duplicate emission
				}
				got[tr] = true
				return true
			})
			if len(got) != len(want) {
				return false
			}
			for tr := range want {
				if !got[tr] {
					return false
				}
			}
			if m.Count(s, p, o) != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestViewAgainstReferenceProperty checks the union view's dedup against
// a reference union of two random sets.
func TestViewAgainstReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewModel("a"), NewModel("b")
		ref := refModel{}
		id := func() ID { return ID(1 + rng.Intn(5)) }
		for i := 0; i < 60; i++ {
			tr := ETriple{id(), id(), id()}
			switch rng.Intn(3) {
			case 0:
				a.Add(tr)
			case 1:
				b.Add(tr)
			default:
				a.Add(tr)
				b.Add(tr)
			}
			ref[tr] = true
		}
		v := NewView(a, b)
		if v.Len() != len(ref) {
			return false
		}
		seen := map[ETriple]bool{}
		dup := false
		v.ForEach(Wildcard, Wildcard, Wildcard, func(tr ETriple) bool {
			if seen[tr] {
				dup = true
				return false
			}
			seen[tr] = true
			return true
		})
		return !dup && len(seen) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
