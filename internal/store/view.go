package store

import "sort"

// Source is a read-only triple source addressed by encoded IDs. Model and
// View both implement it; the SPARQL engine executes against a Source.
type Source interface {
	// ForEach streams triples matching the pattern (Wildcard matches
	// anything) until fn returns false.
	ForEach(s, p, o ID, fn func(ETriple) bool)
	// Contains reports whether the triple is present.
	Contains(ETriple) bool
	// Count returns the number of triples matching the pattern.
	Count(s, p, o ID) int
	// Objects returns the objects of triples matching (s, p).
	Objects(s, p ID) []ID
	// Subjects returns the subjects of triples matching (p, o).
	Subjects(p, o ID) []ID
}

// View is the union of several models sharing one dictionary. The paper's
// queries union a base RDF model with its OWLPRIME index model when the
// query names a rulebase (Listings 1 and 2); View implements exactly that
// combination. Triples appearing in multiple member models are reported
// once.
//
// A View reads its member models live and without locking: it is safe
// for any number of concurrent readers, but must not be used while the
// underlying models are being mutated. The warehouse follows a
// load-then-query discipline (bulk load, materialize the index, then
// serve), which guarantees this.
type View struct {
	models []*Model
}

// NewView returns a view over the given models (order defines the dedup
// precedence; contents are read live, not copied).
func NewView(models ...*Model) *View {
	return &View{models: models}
}

// Models returns the member models.
func (v *View) Models() []*Model { return v.models }

// Len returns the number of distinct triples in the view.
func (v *View) Len() int {
	n := 0
	v.ForEach(Wildcard, Wildcard, Wildcard, func(ETriple) bool { n++; return true })
	return n
}

// Contains reports whether any member model holds the triple.
func (v *View) Contains(t ETriple) bool {
	for _, m := range v.models {
		if m.Contains(t) {
			return true
		}
	}
	return false
}

// ForEach streams distinct matching triples across all member models.
func (v *View) ForEach(s, p, o ID, fn func(ETriple) bool) {
	stopped := false
	for i, m := range v.models {
		if stopped {
			return
		}
		m.ForEach(s, p, o, func(t ETriple) bool {
			for _, prev := range v.models[:i] {
				if prev.Contains(t) {
					return true // already reported
				}
			}
			if !fn(t) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// Count returns the number of distinct triples matching the pattern.
// Rather than enumerating every member with per-triple Contains probes
// against every earlier model, it takes the largest member's count for
// free from its index and corrects for overlap by enumerating only the
// smaller members: each distinct triple is attributed to the first model
// (in descending-count order) that holds it, so the sum stays exact
// while the dominant member is never walked.
func (v *View) Count(s, p, o ID) int {
	if len(v.models) == 1 {
		return v.models[0].Count(s, p, o)
	}
	order := make([]int, len(v.models))
	counts := make([]int, len(v.models))
	for i, m := range v.models {
		order[i] = i
		counts[i] = m.Count(s, p, o)
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	total := counts[order[0]]
	for k := 1; k < len(order); k++ {
		if counts[order[k]] == 0 {
			continue
		}
		v.models[order[k]].ForEach(s, p, o, func(t ETriple) bool {
			for j := 0; j < k; j++ {
				if v.models[order[j]].Contains(t) {
					return true // overlap: already attributed
				}
			}
			total++
			return true
		})
	}
	return total
}

// EstCount implements CardEstimator: member counts summed without
// overlap deduplication. The result is an upper bound, which is what the
// query planner wants — cheap and monotone, never an enumeration.
func (v *View) EstCount(s, p, o ID) int {
	n := 0
	for _, m := range v.models {
		n += m.Count(s, p, o)
	}
	return n
}

// PredStats implements StatsSource by combining member statistics.
// Triples and distinct objects are summed (overlaps counted once per
// member — an upper bound, like EstCount). Distinct subjects take the
// MAX across members, not the sum: the typical view stacks a base
// model with indexes derived from it (entailment, inferred labels),
// whose triples re-state the SAME subjects with new predicate values —
// summing would double-count nearly every subject. The planner divides
// triples by distinct subjects to estimate per-subject fanout, and an
// inflated subject count underestimates fanout, the non-conservative
// direction; EXPLAIN ANALYZE flagged exactly this on the paper-scale
// Listing 1 workload. The true union count lies in [max, sum]; max
// keeps the fanout estimate an upper bound. Objects don't share the
// problem — derived triples mint new objects (supertypes, literals),
// so member object sets are largely disjoint and sum tracks the union.
func (v *View) PredStats(p ID) PredStats {
	var ps PredStats
	for _, m := range v.models {
		mp := m.PredStats(p)
		ps.Triples += mp.Triples
		ps.DistinctSubjects = max(ps.DistinctSubjects, mp.DistinctSubjects)
		ps.DistinctObjects += mp.DistinctObjects
	}
	return ps
}

// Objects returns the distinct objects of triples matching (s, p).
func (v *View) Objects(s, p ID) []ID {
	if len(v.models) == 1 {
		return v.models[0].Objects(s, p)
	}
	seen := make(map[ID]bool)
	var out []ID
	v.ForEach(s, p, Wildcard, func(t ETriple) bool {
		if !seen[t.O] {
			seen[t.O] = true
			out = append(out, t.O)
		}
		return true
	})
	return out
}

// Subjects returns the distinct subjects of triples matching (p, o).
func (v *View) Subjects(p, o ID) []ID {
	if len(v.models) == 1 {
		return v.models[0].Subjects(p, o)
	}
	seen := make(map[ID]bool)
	var out []ID
	v.ForEach(Wildcard, p, o, func(t ETriple) bool {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		return true
	})
	return out
}

// ViewOf builds a View over the named models of st; missing models are
// ignored so callers can blindly request "<model>$OWLPRIME".
func (s *Store) ViewOf(names ...string) *View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ms []*Model
	for _, n := range names {
		if m, ok := s.models[n]; ok {
			ms = append(ms, m)
		}
	}
	return NewView(ms...)
}
