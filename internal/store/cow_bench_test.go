package store

import (
	"math/rand"
	"testing"
)

// benchCloneModel builds a model of n random triples over paper-shaped
// pools (many subjects, few predicates) directly at the ID layer, so the
// clone benchmarks measure index copying and nothing else.
func benchCloneModel(n int) *Model {
	rng := rand.New(rand.NewSource(7))
	m := NewModel("bench")
	subjects := n / 8
	if subjects == 0 {
		subjects = 1
	}
	for i := 0; i < n; i++ {
		m.Add(ETriple{
			S: ID(rng.Intn(subjects) + 1),
			P: ID(rng.Intn(16) + 1),
			O: ID(rng.Intn(subjects) + 1),
		})
	}
	return m
}

// deepCloneModel is the pre-copy-on-write Clone implementation — every
// inner map and posting list copied eagerly — retained here as the
// baseline the COW clone is measured against.
func deepCloneModel(m *Model, name string) *Model {
	c := NewModel(name)
	c.size = m.size
	c.gen = m.gen
	c.spo = deepIdx(m.spo)
	c.pos = deepIdx(m.pos)
	c.osp = deepIdx(m.osp)
	c.predSize = make(map[ID]int, len(m.predSize))
	for p, n := range m.predSize {
		c.predSize[p] = n
	}
	return c
}

func deepIdx(idx map[ID]map[ID][]ID) map[ID]map[ID][]ID {
	out := make(map[ID]map[ID][]ID, len(idx))
	for a, inner := range idx {
		ci := make(map[ID][]ID, len(inner))
		for b, list := range inner {
			cl := make([]ID, len(list))
			copy(cl, list)
			ci[b] = cl
		}
		out[a] = ci
	}
	return out
}

// BenchmarkCloneModel compares the copy-on-write clone against the old
// deep copy at two sizes; "paper" approximates the ~1M-triple graph of
// the paper's landscape. The COW variant's cost is O(distinct subjects +
// predicates + objects) outer-map copies, not O(triples).
func BenchmarkCloneModel(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
	}{{"small", 5_000}, {"paper", 1_000_000}} {
		m := benchCloneModel(size.n)
		b.Run("cow/"+size.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = m.Clone("c")
			}
			b.ReportMetric(float64(m.Len()), "triples")
		})
		b.Run("deep/"+size.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = deepCloneModel(m, "c")
			}
			b.ReportMetric(float64(m.Len()), "triples")
		})
	}
}

// BenchmarkCloneFirstWrite prices the copy-on-write tax: the first
// mutation after a clone copies the three touched index nodes. Steady
// state (second write to the same subject) is the plain Add cost.
func BenchmarkCloneFirstWrite(b *testing.B) {
	m := benchCloneModel(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Clone("c")
		c.Add(ETriple{S: 1, P: 1, O: ID(1_000_000 + i)})
	}
}
