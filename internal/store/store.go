package store

import (
	"fmt"
	"sort"
	"sync"

	"mdw/internal/rdf"
)

// Store is the top-level triple storage facility: a shared term dictionary
// plus a set of named models. It corresponds to the Oracle database holding
// the RDF model tables in Figure 4 of the paper.
//
// Store methods are safe for concurrent use: mutations take the write
// lock, queries hold the read lock for their whole duration. Views
// obtained from ViewOf bypass this lock (see View) and follow the
// warehouse's load-then-query discipline instead.
type Store struct {
	mu     sync.RWMutex
	dict   *Dict
	models map[string]*Model
	// hook, when set, observes every committed mutation under the write
	// lock (see CommitHook). The durable write-ahead log attaches here.
	hook CommitHook
	// cloneEpoch is the highest generation salt (high 32 bits) the store
	// has handed to a clone or seen on an installed model. Guarded by mu;
	// it only ratchets up, so a salt is never reused even after the model
	// carrying it is dropped (a reused (name, generation) pair could
	// alias stale results-cache entries).
	cloneEpoch uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{dict: NewDict(), models: make(map[string]*Model)}
}

// Dict exposes the shared term dictionary.
func (s *Store) Dict() *Dict { return s.dict }

// Model returns the named model, creating it if absent.
func (s *Store) Model(name string) *Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.modelLocked(name)
}

func (s *Store) modelLocked(name string) *Model {
	m, ok := s.models[name]
	if !ok {
		m = NewModel(name)
		s.models[name] = m
	}
	return m
}

// HasModel reports whether a model with the given name exists.
func (s *Store) HasModel(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.models[name]
	return ok
}

// Generation returns the mutation generation of the named model (0 if
// the model does not exist; live models start at 1). Two reads returning
// the same generation bracket a span with no writes to the model.
func (s *Store) Generation(model string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if m, ok := s.models[model]; ok {
		return m.gen
	}
	return 0
}

// Current reports whether the derived model idx exists and was computed
// from the present generation of base — i.e. whether the derivation is
// up to date. A derived model that never recorded a basis is never
// current.
func (s *Store) Current(base, idx string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.models[base]
	if !ok {
		return false
	}
	i, ok := s.models[idx]
	return ok && i.basis == b.gen
}

// SnapshotModel returns a copy-on-write copy of the named model (nil if
// absent). The copy is detached: the caller owns it and may read or
// mutate it freely while other goroutines keep writing to the store —
// the safe way to run a long computation over a consistent state. The
// brief write lock covers the ownership bookkeeping on the source; the
// copy itself is O(distinct terms), not O(triples). The snapshot carries
// a fresh generation; the source generation it was taken at is Basis().
func (s *Store) SnapshotModel(model string) *Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[model]
	if !ok {
		return nil
	}
	return m.cloneAt(model, s.nextCloneGenLocked())
}

// nextCloneGenLocked allocates the generation for a fresh clone: low
// word 1 under a salt strictly greater than any salt the store has seen,
// so the clone's generation sequence can never collide with its
// source's — or any other model's — no matter how either side mutates
// afterwards. Caller holds the write lock.
func (s *Store) nextCloneGenLocked() uint64 {
	salt := s.cloneEpoch
	for _, m := range s.models {
		if hi := m.gen >> 32; hi > salt {
			salt = hi
		}
	}
	salt++
	s.cloneEpoch = salt
	return salt<<32 + 1
}

// InstallModel atomically publishes m under its name, replacing any
// existing model. Readers holding a View over the replaced model keep
// seeing the old contents; new Views pick up m. This is how derived
// models (entailment indexes) are swapped in without a window in which
// the model is missing or half-built.
func (s *Store) InstallModel(m *Model) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models[m.name] = m
	if hi := m.gen >> 32; hi > s.cloneEpoch {
		s.cloneEpoch = hi
	}
	obsInstalls.Inc()
	s.commit(Mutation{Op: OpInstall, Model: m.name, Gen: m.gen, Basis: m.basis, Installed: m})
}

// ModelInfo is a point-in-time summary of one model, as observed inside
// a ReadView critical section.
type ModelInfo struct {
	Name    string
	Exists  bool
	Gen     uint64 // mutation generation (0 when absent)
	Basis   uint64 // recorded base generation for derived models
	Triples int
}

// ReadView resolves the named models (missing ones are skipped, as in
// ViewOf) and runs fn with a View over them plus a ModelInfo per
// requested name, holding the store's read lock for the whole call. No
// writer can mutate any model while fn runs, so fn may use the view and
// the infos as one consistent snapshot. fn must not call locking Store
// methods (Add, Model, ViewOf, ...) — that would self-deadlock; the
// shared Dict has its own lock and remains safe to use.
func (s *Store) ReadView(fn func(*View, []ModelInfo), names ...string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]ModelInfo, len(names))
	var ms []*Model
	for i, n := range names {
		infos[i] = ModelInfo{Name: n}
		if m, ok := s.models[n]; ok {
			infos[i].Exists = true
			infos[i].Gen = m.gen
			infos[i].Basis = m.basis
			infos[i].Triples = m.size
			ms = append(ms, m)
		}
	}
	fn(NewView(ms...), infos) //mdwlint:allow locksafe documented contract: fn must not call locking Store methods
}

// DropModel removes the named model and reports whether it existed.
func (s *Store) DropModel(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.models[name]; !ok {
		return false
	}
	delete(s.models, name)
	s.commit(Mutation{Op: OpDrop, Model: name})
	return true
}

// ModelNames returns the sorted names of all models.
func (s *Store) ModelNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.models))
	for n := range s.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Add inserts one triple into the named model and reports whether it was
// newly added.
func (s *Store) Add(model string, t rdf.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.modelLocked(model)
	et := s.encode(t)
	added := m.Add(et)
	if added {
		obsAdds.Inc()
		s.commit(Mutation{Op: OpAdd, Model: model, Triples: []ETriple{et}, Gen: m.gen})
	}
	return added
}

// AddAll bulk-inserts triples into the named model and returns the number
// actually added (duplicates are skipped).
func (s *Store) AddAll(model string, ts []rdf.Triple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.modelLocked(model)
	n := 0
	var added []ETriple
	for _, t := range ts {
		et := s.encode(t)
		if m.Add(et) {
			n++
			if s.hook != nil {
				added = append(added, et)
			}
		}
	}
	obsAdds.Add(int64(n))
	if n > 0 {
		s.commit(Mutation{Op: OpAdd, Model: model, Triples: added, Gen: m.gen})
	}
	return n
}

// Remove deletes one triple from the named model and reports whether it
// was present.
func (s *Store) Remove(model string, t rdf.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[model]
	if !ok {
		return false
	}
	et, ok := s.encodeLookup(t)
	if !ok {
		return false
	}
	removed := m.Remove(et)
	if removed {
		obsRemoves.Inc()
		s.commit(Mutation{Op: OpRemove, Model: model, Triples: []ETriple{et}, Gen: m.gen})
	}
	return removed
}

// Contains reports whether the triple exists in the named model.
func (s *Store) Contains(model string, t rdf.Triple) bool {
	obsLookups.Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[model]
	if !ok {
		return false
	}
	et, ok := s.encodeLookup(t)
	if !ok {
		return false
	}
	return m.Contains(et)
}

// Len returns the number of triples in the named model (0 if absent).
func (s *Store) Len(model string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[model]
	if !ok {
		return 0
	}
	return m.Len()
}

// encode interns the terms of t. Caller must hold the write lock (interning
// itself is thread-safe, but encode is paired with model mutation).
func (s *Store) encode(t rdf.Triple) ETriple {
	return ETriple{
		S: s.dict.Intern(t.S),
		P: s.dict.Intern(t.P),
		O: s.dict.Intern(t.O),
	}
}

// encodeLookup encodes without interning; ok is false when any term is
// unknown (in which case the triple cannot exist in any model).
func (s *Store) encodeLookup(t rdf.Triple) (ETriple, bool) {
	si, ok := s.dict.Lookup(t.S)
	if !ok {
		return ETriple{}, false
	}
	pi, ok := s.dict.Lookup(t.P)
	if !ok {
		return ETriple{}, false
	}
	oi, ok := s.dict.Lookup(t.O)
	if !ok {
		return ETriple{}, false
	}
	return ETriple{si, pi, oi}, true
}

// patID resolves a pattern term: the zero Term is the wildcard; unknown
// terms resolve to an impossible pattern (signalled by ok=false).
func (s *Store) patID(t rdf.Term) (ID, bool) {
	if t.IsZero() {
		return Wildcard, true
	}
	return s.dict.Lookup(t)
}

// Match returns all triples in the named model matching the pattern.
// Zero-valued terms act as wildcards.
func (s *Store) Match(model string, sub, pred, obj rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	s.ForEach(model, sub, pred, obj, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ForEach streams decoded triples matching the pattern to fn; iteration
// stops early when fn returns false. Zero-valued terms act as wildcards.
// The store's read lock is held for the whole iteration, so fn must not
// call mutating Store methods (doing so would deadlock).
func (s *Store) ForEach(model string, sub, pred, obj rdf.Term, fn func(rdf.Triple) bool) {
	obsLookups.Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[model]
	if !ok {
		return
	}
	si, ok := s.patID(sub)
	if !ok {
		return
	}
	pi, ok := s.patID(pred)
	if !ok {
		return
	}
	oi, ok := s.patID(obj)
	if !ok {
		return
	}
	m.ForEach(si, pi, oi, func(et ETriple) bool {
		return fn(rdf.Triple{S: s.dict.Term(et.S), P: s.dict.Term(et.P), O: s.dict.Term(et.O)}) //mdwlint:allow locksafe documented contract: fn must not call mutating Store methods
	})
}

// CountPattern returns the number of triples matching the pattern.
func (s *Store) CountPattern(model string, sub, pred, obj rdf.Term) int {
	obsLookups.Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[model]
	if !ok {
		return 0
	}
	si, ok := s.patID(sub)
	if !ok {
		return 0
	}
	pi, ok := s.patID(pred)
	if !ok {
		return 0
	}
	oi, ok := s.patID(obj)
	if !ok {
		return 0
	}
	return m.Count(si, pi, oi)
}

// Triples returns every triple of the named model in canonical order.
func (s *Store) Triples(model string) []rdf.Triple {
	ts := s.Match(model, rdf.Term{}, rdf.Term{}, rdf.Term{})
	rdf.SortTriples(ts)
	return ts
}

// CloneModel publishes a copy-on-write copy of the src model under the
// dst name. It fails if dst already exists. The clone shares index nodes
// with its source until either side mutates them, so the exclusive lock
// is held for O(distinct terms), not O(triples). The clone's generation
// is fresh (store-wide unique) and its Basis records the source
// generation it was taken at, so no cache key or derivation check can
// alias clone and source after they diverge.
func (s *Store) CloneModel(src, dst string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cloneModelLocked(src, dst, 0)
}

// CloneModelAt is CloneModel with an explicit generation for the copy.
// Only the durable recovery path uses it, to reproduce the generation
// the original CloneModel allocated (and logged) so that replaying the
// same WAL converges on the same generation sequence.
func (s *Store) CloneModelAt(src, dst string, gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hi := gen >> 32; hi > s.cloneEpoch {
		s.cloneEpoch = hi
	}
	return s.cloneModelLocked(src, dst, gen)
}

func (s *Store) cloneModelLocked(src, dst string, gen uint64) error {
	sm, ok := s.models[src]
	if !ok {
		return fmt.Errorf("store: clone: no such model %q", src)
	}
	if _, exists := s.models[dst]; exists {
		return fmt.Errorf("store: clone: model %q already exists", dst)
	}
	if gen == 0 {
		gen = s.nextCloneGenLocked()
	}
	c := sm.cloneAt(dst, gen)
	s.models[dst] = c
	obsClones.Inc()
	s.commit(Mutation{Op: OpClone, Model: dst, Src: src, Gen: c.gen})
	return nil
}

// Stats summarizes one model for monitoring and the paper-scale reports.
type Stats struct {
	Model      string
	Triples    int
	Subjects   int
	Predicates int
	Objects    int
}

// ModelStats computes statistics for the named model.
func (s *Store) ModelStats(model string) Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[model]
	if !ok {
		return Stats{Model: model}
	}
	return Stats{
		Model:      model,
		Triples:    m.Len(),
		Subjects:   len(m.spo),
		Predicates: len(m.pos),
		Objects:    len(m.osp),
	}
}
