package store

import (
	"math/rand"
	"testing"
)

// collectForEach gathers ForEach's stream for comparison with Matches.
func collectForEach(src Source, s, p, o ID) []ETriple {
	var out []ETriple
	src.ForEach(s, p, o, func(t ETriple) bool {
		out = append(out, t)
		return true
	})
	return out
}

func tripleMultiset(ts []ETriple) map[ETriple]int {
	m := make(map[ETriple]int, len(ts))
	for _, t := range ts {
		m[t]++
	}
	return m
}

func sameTriples(a, b []ETriple) bool {
	if len(a) != len(b) {
		return false
	}
	am, bm := tripleMultiset(a), tripleMultiset(b)
	for k, n := range am {
		if bm[k] != n {
			return false
		}
	}
	return true
}

func randomModel(rng *rand.Rand, n int) *Model {
	m := NewModel("m")
	for i := 0; i < n; i++ {
		m.Add(ETriple{
			S: ID(1 + rng.Intn(12)),
			P: ID(100 + rng.Intn(5)),
			O: ID(200 + rng.Intn(16)),
		})
	}
	return m
}

// matchPatterns covers every access path: fully bound, the three
// two-bound slice paths, the three one-bound map walks, and the full
// scan.
func matchPatterns() [][3]ID {
	return [][3]ID{
		{3, 101, 205},
		{3, 101, Wildcard},
		{Wildcard, 101, 205},
		{3, Wildcard, 205},
		{3, Wildcard, Wildcard},
		{Wildcard, 101, Wildcard},
		{Wildcard, Wildcard, 205},
		{Wildcard, Wildcard, Wildcard},
	}
}

func TestModelMatchesAgreesWithForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomModel(rng, 400)
	for _, pat := range matchPatterns() {
		got := m.Matches(pat[0], pat[1], pat[2])
		want := collectForEach(m, pat[0], pat[1], pat[2])
		if !sameTriples(got, want) {
			t.Errorf("Matches(%v) multiset differs from ForEach: got %d triples, want %d",
				pat, len(got), len(want))
		}
		if len(got) != m.Count(pat[0], pat[1], pat[2]) {
			t.Errorf("Matches(%v) length %d != Count %d", pat, len(got), m.Count(pat[0], pat[1], pat[2]))
		}
	}
}

// The slice-backed access paths must preserve ForEach's exact order —
// the morsel scan's deterministic-order guarantee builds on it.
func TestModelMatchesSliceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomModel(rng, 400)
	for _, pat := range [][3]ID{
		{3, 101, Wildcard},
		{Wildcard, 101, 205},
		{3, Wildcard, 205},
	} {
		got := m.Matches(pat[0], pat[1], pat[2])
		want := collectForEach(m, pat[0], pat[1], pat[2])
		if len(got) != len(want) {
			t.Fatalf("Matches(%v) length %d != ForEach %d", pat, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Matches(%v) order diverges from ForEach at %d: %v vs %v",
					pat, i, got[i], want[i])
			}
		}
	}
}

// Map-walked access paths must at least be stable call over call (Go map
// ranges are not), since parallel execution replays them.
func TestModelMatchesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomModel(rng, 400)
	for _, pat := range matchPatterns() {
		a := m.Matches(pat[0], pat[1], pat[2])
		for round := 0; round < 3; round++ {
			b := m.Matches(pat[0], pat[1], pat[2])
			if len(a) != len(b) {
				t.Fatalf("Matches(%v) length varies across calls", pat)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("Matches(%v) order varies across calls at index %d", pat, i)
				}
			}
		}
	}
}

func TestViewMatchesDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m1 := randomModel(rng, 200)
	m2 := randomModel(rng, 200) // same pools: heavy overlap
	v := NewView(m1, m2)
	for _, pat := range matchPatterns() {
		got := v.Matches(pat[0], pat[1], pat[2])
		want := collectForEach(v, pat[0], pat[1], pat[2])
		if !sameTriples(got, want) {
			t.Errorf("View.Matches(%v) multiset differs from View.ForEach: got %d, want %d",
				pat, len(got), len(want))
		}
		seen := make(map[ETriple]bool, len(got))
		for _, tr := range got {
			if seen[tr] {
				t.Fatalf("View.Matches(%v) reported %v twice", pat, tr)
			}
			seen[tr] = true
		}
	}
}
