// Package store implements the RDF storage substrate of the meta-data
// warehouse: a dictionary-encoded, triple-indexed store with named models.
//
// The paper persists its meta-data graph in Oracle's "RDF model tables"
// (Section III.B). This package plays that role: triples live in named
// models (SEM_MODELS('DWH_CURR') in Listing 1 addresses one such model),
// terms are dictionary-encoded once, and each model keeps SPO/POS/OSP
// indexes so that every triple-pattern access path is supported.
package store

import (
	"sync"

	"mdw/internal/rdf"
)

// ID is a dictionary-encoded term identifier. ID 0 is reserved and never
// assigned, which lets 0 double as the wildcard in pattern matching.
type ID uint32

// Wildcard matches any term in pattern lookups.
const Wildcard ID = 0

// Dict interns rdf.Term values to dense integer IDs. It is safe for
// concurrent use. Interning is shared across all models of a Store so a
// term has one identity everywhere, mirroring the single value table
// underneath Oracle's RDF models.
type Dict struct {
	mu    sync.RWMutex
	ids   map[rdf.Term]ID
	terms []rdf.Term // terms[id-1] is the term for id
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[rdf.Term]ID)}
}

// Intern returns the ID for term, assigning a fresh one if necessary.
func (d *Dict) Intern(t rdf.Term) ID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.ids[t]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = ID(len(d.terms))
	d.ids[t] = id
	return id
}

// Lookup returns the ID for term without interning. The second result
// reports whether the term is known.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	return id, ok
}

// Term returns the term for id. It panics if id was never assigned, which
// indicates a logic error in the caller (IDs only come from this Dict).
func (d *Dict) Term(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[id-1]
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Snapshot returns a copy of the term table in ID order: element i is the
// term with ID i+1. The dictionary is append-only, so the copy stays a
// valid prefix of the live dictionary forever — the durable snapshot
// writer persists exactly this table to preserve IDs across a restart.
func (d *Dict) Snapshot() []rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]rdf.Term, len(d.terms))
	copy(out, d.terms)
	return out
}
