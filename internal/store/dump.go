package store

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mdw/internal/ntriples"
	"mdw/internal/rdf"
)

// The dump format is line-oriented: a header line, then per model a
// "@model <name>" marker followed by the model's triples in N-Triples
// syntax. It is the persistence story of the warehouse — the role the
// Oracle database files play in the paper's deployment.
const dumpHeader = "# mdw-store-dump v1"

// WriteDump serializes every model of the store to w.
func (s *Store) WriteDump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, dumpHeader); err != nil {
		return err
	}
	for _, name := range s.ModelNames() {
		if _, err := fmt.Fprintf(bw, "@model %s\n", name); err != nil {
			return err
		}
		var failed error
		s.ForEach(name, rdf.Term{}, rdf.Term{}, rdf.Term{}, func(t rdf.Triple) bool {
			if _, err := bw.WriteString(t.NTriple()); err != nil {
				failed = err
				return false
			}
			if err := bw.WriteByte('\n'); err != nil {
				failed = err
				return false
			}
			return true
		})
		if failed != nil {
			return failed
		}
	}
	return bw.Flush()
}

// ReadDump reconstructs a store from a dump produced by WriteDump.
func ReadDump(r io.Reader) (*Store, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("store: empty dump")
	}
	if strings.TrimSpace(sc.Text()) != dumpHeader {
		return nil, fmt.Errorf("store: not a store dump (bad header %q)", sc.Text())
	}
	st := New()
	var cur *Model
	seen := make(map[string]int)
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.HasPrefix(text, "@model ") {
			name := strings.TrimSpace(strings.TrimPrefix(text, "@model "))
			if name == "" {
				return nil, fmt.Errorf("store: line %d: empty model name", line)
			}
			// A dump writes each model exactly once; a repeated section is
			// a corrupt or hand-edited file and silently merging the two
			// sections would mask the damage.
			if prev, dup := seen[name]; dup {
				return nil, fmt.Errorf("store: line %d: duplicate @model %s (first seen at line %d)", line, name, prev)
			}
			seen[name] = line
			cur = st.Model(name)
			continue
		}
		t, ok, err := ntriples.ParseLine(text)
		if err != nil {
			return nil, fmt.Errorf("store: line %d: %w", line, err)
		}
		if !ok {
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("store: line %d: triple before any @model marker", line)
		}
		cur.Add(ETriple{
			S: st.dict.Intern(t.S),
			P: st.dict.Intern(t.P),
			O: st.dict.Intern(t.O),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// A dump is written from a consistent store, so every derived model
	// (named "<base>$<rulebase>") is adopted as current w.r.t. its base —
	// otherwise the first query after a load would needlessly re-entail.
	for name, m := range st.models {
		if i := strings.IndexByte(name, '$'); i > 0 {
			if base, ok := st.models[name[:i]]; ok {
				m.basis = base.gen
			}
		}
	}
	return st, nil
}
