package store

import "mdw/internal/obs"

// Metric handles, resolved once at package init so the hot paths below
// pay a single atomic add each — never a registry lookup.
var (
	obsAdds       = obs.Default().Counter("mdw_store_adds_total")
	obsRemoves    = obs.Default().Counter("mdw_store_removes_total")
	obsLookups    = obs.Default().Counter("mdw_store_lookups_total")
	obsInstalls   = obs.Default().Counter("mdw_store_installs_total")
	obsStatsHits  = obs.Default().Counter("mdw_store_statscache_total", "result", "hit")
	obsStatsMiss  = obs.Default().Counter("mdw_store_statscache_total", "result", "miss")
	obsStatsBuild = obs.Default().Counter("mdw_store_statscache_rebuilds_total")
	obsClones     = obs.Default().Counter("mdw_store_clones_total")
)

func init() {
	r := obs.Default()
	r.SetHelp("mdw_store_adds_total", "Triples actually added to models (duplicates excluded).")
	r.SetHelp("mdw_store_removes_total", "Triples removed from models.")
	r.SetHelp("mdw_store_lookups_total", "Locked pattern lookups (ForEach/Match/CountPattern/Contains).")
	r.SetHelp("mdw_store_installs_total", "Models atomically published via InstallModel.")
	r.SetHelp("mdw_store_statscache_total", "Per-predicate statistics cache probes by result.")
	r.SetHelp("mdw_store_statscache_rebuilds_total", "Statistics cache resets forced by a new model generation.")
	r.SetHelp("mdw_store_clones_total", "Copy-on-write model clones published via CloneModel.")
}
