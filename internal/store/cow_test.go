package store

import (
	"sync"
	"testing"

	"mdw/internal/rdf"
)

// triples returns every triple of m in a comparable set form.
func modelSet(m *Model) map[ETriple]bool {
	out := make(map[ETriple]bool)
	m.ForEach(Wildcard, Wildcard, Wildcard, func(t ETriple) bool {
		out[t] = true
		return true
	})
	return out
}

// TestCloneFreshGeneration is the divergence regression for the old
// `c.gen = m.gen` behavior: a clone and its source must never share a
// generation, before or after either side mutates.
func TestCloneFreshGeneration(t *testing.T) {
	m := NewModel("m")
	m.Add(ETriple{1, 2, 3})
	m.Add(ETriple{1, 2, 4})
	srcGen := m.Gen()
	c := m.Clone("c")
	if c.Gen() == srcGen {
		t.Fatalf("clone kept source generation %d", srcGen)
	}
	if c.Basis() != srcGen {
		t.Errorf("clone basis = %d, want source generation %d", c.Basis(), srcGen)
	}
	// Mutating the source must not be able to catch up with the clone's
	// generation sequence (they live under different salts).
	for i := ID(10); i < 20; i++ {
		m.Add(ETriple{i, 2, 3})
		if m.Gen() == c.Gen() {
			t.Fatalf("source generation %d collided with clone's", m.Gen())
		}
	}
	// First post-clone write bumps the clone's generation.
	g0 := c.Gen()
	c.Add(ETriple{99, 2, 3})
	if c.Gen() == g0 {
		t.Error("clone write did not advance its generation")
	}
}

// TestStoreCloneGenUnique checks store-level uniqueness: clones of the
// same source, re-clones after drops, and snapshots all get generations
// no live or past model ever carried.
func TestStoreCloneGenUnique(t *testing.T) {
	s := New()
	s.Add("src", rdf.T(iri("s"), iri("p"), iri("o")))
	seen := map[uint64]string{s.Generation("src"): "src"}
	record := func(name string) {
		g := s.Generation(name)
		if prev, dup := seen[g]; dup {
			t.Fatalf("generation %d of %q already used by %q", g, name, prev)
		}
		seen[g] = name
	}
	if err := s.CloneModel("src", "a"); err != nil {
		t.Fatal(err)
	}
	record("a")
	if err := s.CloneModel("src", "b"); err != nil {
		t.Fatal(err)
	}
	record("b")
	// Drop and re-clone under the same name: the old salt must not be
	// reused, or stale (name, gen) cache keys could alias.
	gA := s.Generation("a")
	s.DropModel("a")
	if err := s.CloneModel("src", "a"); err != nil {
		t.Fatal(err)
	}
	if s.Generation("a") == gA {
		t.Fatalf("re-clone of %q reused dropped generation %d", "a", gA)
	}
	record("a")
	snap := s.SnapshotModel("src")
	if _, dup := seen[snap.Gen()]; dup {
		t.Fatalf("snapshot generation %d aliases a model", snap.Gen())
	}
}

// TestCOWIsolation exercises mutation isolation in both directions and
// through both Add and Remove, including the swap-delete path of
// removeIdx that mutates slices in place.
func TestCOWIsolation(t *testing.T) {
	m := NewModel("m")
	// Several objects under one (s, p) so removeIdx swap-deletes inside a
	// shared slice, and several predicates per subject so inner maps have
	// multiple keys.
	for o := ID(100); o < 110; o++ {
		m.Add(ETriple{1, 2, o})
		m.Add(ETriple{1, 3, o})
		m.Add(ETriple{4, 2, o})
	}
	want := modelSet(m)

	c := m.Clone("c")
	// Source-side mutations: in-place slice removal and appends.
	m.Remove(ETriple{1, 2, 105})
	m.Remove(ETriple{4, 2, 100})
	m.Add(ETriple{1, 2, 999})
	if got := modelSet(c); len(got) != len(want) {
		t.Fatalf("source mutations leaked into clone: %d triples, want %d", len(got), len(want))
	}
	for tr := range want {
		if !c.Contains(tr) {
			t.Fatalf("clone lost %v after source mutation", tr)
		}
	}
	// Clone-side mutations must not leak back.
	c.Remove(ETriple{1, 3, 101})
	c.Add(ETriple{7, 7, 7})
	if m.Contains(ETriple{7, 7, 7}) {
		t.Error("clone add leaked into source")
	}
	if !m.Contains(ETriple{1, 3, 101}) {
		t.Error("clone remove leaked into source")
	}
	// Count/Objects/Subjects answer from the indexes; spot-check they
	// agree with the divergence.
	if n := c.Count(1, 2, Wildcard); n != 10 {
		t.Errorf("clone Count(1,2,*) = %d, want 10", n)
	}
	if n := m.Count(1, 2, Wildcard); n != 10 { // -105 +999
		t.Errorf("source Count(1,2,*) = %d, want 10", n)
	}
}

// TestCOWThreeWaySharing: two clones of one source all share nodes;
// each side's mutations stay private.
func TestCOWThreeWaySharing(t *testing.T) {
	m := NewModel("m")
	m.Add(ETriple{1, 2, 3})
	m.Add(ETriple{1, 2, 4})
	a := m.Clone("a")
	b := m.Clone("b")
	m.Remove(ETriple{1, 2, 3})
	a.Add(ETriple{1, 2, 5})
	b.Remove(ETriple{1, 2, 4})
	if !a.Contains(ETriple{1, 2, 3}) || !a.Contains(ETriple{1, 2, 4}) || a.Len() != 3 {
		t.Errorf("clone a diverged wrongly: %v", modelSet(a))
	}
	if !b.Contains(ETriple{1, 2, 3}) || b.Contains(ETriple{1, 2, 4}) || b.Len() != 1 {
		t.Errorf("clone b diverged wrongly: %v", modelSet(b))
	}
	if m.Len() != 1 || !m.Contains(ETriple{1, 2, 4}) {
		t.Errorf("source diverged wrongly: %v", modelSet(m))
	}
}

// TestCloneOfClone chains clones and mutates every layer.
func TestCloneOfClone(t *testing.T) {
	m := NewModel("m")
	m.Add(ETriple{1, 2, 3})
	c1 := m.Clone("c1")
	c1.Add(ETriple{4, 5, 6})
	c1GenAtClone := c1.Gen()
	c2 := c1.Clone("c2")
	c2.Remove(ETriple{1, 2, 3})
	c2.Add(ETriple{7, 8, 9})
	if m.Len() != 1 || c1.Len() != 2 || c2.Len() != 2 {
		t.Fatalf("lens = %d/%d/%d, want 1/2/2", m.Len(), c1.Len(), c2.Len())
	}
	if !c1.Contains(ETriple{1, 2, 3}) {
		t.Error("grandchild remove leaked into child")
	}
	if c1.Gen() == c2.Gen() {
		t.Errorf("clone-of-clone shares generation %d with its source", c2.Gen())
	}
	if c2.Basis() != c1GenAtClone {
		t.Errorf("c2 basis = %d, want c1's generation at clone time %d", c2.Basis(), c1GenAtClone)
	}
}

// TestSnapshotConcurrentWithStoreWrites is the -race proof for the
// reasoner's pattern: a detached snapshot is read and mutated by one
// goroutine while other goroutines keep writing to the source through
// the store (and taking further snapshots).
func TestSnapshotConcurrentWithStoreWrites(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		s.Add("m", rdf.T(iri2("s", i%10), iri2("p", i%3), iri2("o", i)))
	}
	snap := s.SnapshotModel("m")
	wantLen := snap.Len()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // store writer
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Add("m", rdf.T(iri2("s", i%10), iri2("p", i%3), iri2("x", i)))
			if i%7 == 0 {
				s.Remove("m", rdf.T(iri2("s", i%10), iri2("p", i%3), iri2("x", i)))
			}
		}
	}()
	go func() { // snapshot reader + mutator (the reasoner's closure loop)
		defer wg.Done()
		n := 0
		snap.ForEach(Wildcard, Wildcard, Wildcard, func(t ETriple) bool { n++; return true })
		if n != wantLen {
			t.Errorf("snapshot saw %d triples, want %d", n, wantLen)
		}
		for i := 0; i < 200; i++ {
			snap.Add(ETriple{ID(1000 + i), 1, 1})
		}
	}()
	go func() { // concurrent further snapshots
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s2 := s.SnapshotModel("m")
			s2.Add(ETriple{1, 1, ID(i)})
		}
	}()
	wg.Wait()
	if snap.Len() != wantLen+200 {
		t.Errorf("snapshot len = %d, want %d", snap.Len(), wantLen+200)
	}
}

func iri2(prefix string, i int) rdf.Term {
	return iri(prefix + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
}
