package store

import "sort"

// Matcher is optionally implemented by Sources that can materialize every
// triple matching a pattern in one call. The SPARQL engine's morsel-driven
// parallel scan uses it to enumerate the first join step's candidates up
// front, partition them into morsels, and fan them out to workers.
//
// The returned slice is owned by the caller (never an internal index
// slice) and its order is deterministic for a quiescent source: access
// paths answered from an index slice preserve insertion order — the same
// order ForEach streams — and access paths that walk an index map visit
// the walked keys in sorted ID order, so repeated calls always agree.
// (ForEach makes no such promise on map-walked paths: Go randomizes map
// iteration per range statement.)
type Matcher interface {
	Matches(s, p, o ID) []ETriple
}

// Matches implements Matcher for a single model. Capacity comes from
// Count, so the enumeration allocates once.
func (m *Model) Matches(s, p, o ID) []ETriple {
	out := make([]ETriple, 0, m.Count(s, p, o))
	switch {
	case s != Wildcard && p != Wildcard && o != Wildcard:
		if m.Contains(ETriple{s, p, o}) {
			out = append(out, ETriple{s, p, o})
		}
	case s != Wildcard && p != Wildcard:
		for _, obj := range m.spo[s][p] {
			out = append(out, ETriple{s, p, obj})
		}
	case p != Wildcard && o != Wildcard:
		for _, sub := range m.pos[p][o] {
			out = append(out, ETriple{sub, p, o})
		}
	case s != Wildcard && o != Wildcard:
		for _, pred := range m.osp[o][s] {
			out = append(out, ETriple{s, pred, o})
		}
	case s != Wildcard:
		for _, pred := range sortedKeys(m.spo[s]) {
			for _, obj := range m.spo[s][pred] {
				out = append(out, ETriple{s, pred, obj})
			}
		}
	case p != Wildcard:
		for _, obj := range sortedKeys(m.pos[p]) {
			for _, sub := range m.pos[p][obj] {
				out = append(out, ETriple{sub, p, obj})
			}
		}
	case o != Wildcard:
		for _, sub := range sortedKeys(m.osp[o]) {
			for _, pred := range m.osp[o][sub] {
				out = append(out, ETriple{sub, pred, o})
			}
		}
	default:
		for _, sub := range sortedKeys(m.spo) {
			for _, pred := range sortedKeys(m.spo[sub]) {
				for _, obj := range m.spo[sub][pred] {
					out = append(out, ETriple{sub, pred, obj})
				}
			}
		}
	}
	return out
}

// Matches implements Matcher for a view: member models enumerate in
// order, and a triple already present in an earlier member is skipped —
// the same attribution rule ForEach applies, on top of each member's
// deterministic enumeration.
func (v *View) Matches(s, p, o ID) []ETriple {
	if len(v.models) == 1 {
		return v.models[0].Matches(s, p, o)
	}
	var out []ETriple
	for i, m := range v.models {
		for _, t := range m.Matches(s, p, o) {
			dup := false
			for _, prev := range v.models[:i] {
				if prev.Contains(t) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, t)
			}
		}
	}
	return out
}

// sortedKeys returns the map's keys in ascending ID order.
func sortedKeys[V any](m map[ID]V) []ID {
	keys := make([]ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
