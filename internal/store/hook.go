package store

import (
	"sort"

	"mdw/internal/rdf"
)

// Op identifies the kind of a committed store mutation, as observed by a
// CommitHook. The set mirrors the store's mutating entry points: triple
// insertion (Add/AddAll and the staging bulk loads built on them),
// removal, model lifecycle (DropModel/CloneModel), and atomic publication
// of derived models (InstallModel, used by reason.Materialize).
type Op uint8

const (
	// OpAdd records triples newly inserted into a model.
	OpAdd Op = iota + 1
	// OpRemove records a triple deleted from a model.
	OpRemove
	// OpDrop records removal of a whole model.
	OpDrop
	// OpClone records CloneModel(Src, Model).
	OpClone
	// OpInstall records atomic publication of a model via InstallModel.
	OpInstall
)

// String returns the canonical lower-case name of the op.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpDrop:
		return "drop"
	case OpClone:
		return "clone"
	case OpInstall:
		return "install"
	default:
		return "op?"
	}
}

// Mutation describes one committed mutation. It is delivered to the
// commit hook while the store's write lock is still held, so the sequence
// of Mutations a hook observes is exactly the store's serialization
// order — the property a write-ahead log needs.
//
// Triples are dictionary-encoded; the hook decodes them through the
// store's Dict (safe under the write lock: the Dict has its own lock and
// is append-only).
type Mutation struct {
	Op    Op
	Model string // target model (destination for OpClone)
	Src   string // source model (OpClone only)
	// Triples holds the triples actually inserted (OpAdd) or the triple
	// actually removed (OpRemove). Duplicates that changed nothing are
	// never reported.
	Triples []ETriple
	// Gen is the target model's generation after the mutation (the clone's
	// generation for OpClone, the installed model's for OpInstall, 0 for
	// OpDrop). Replaying the same mutations onto the same prior state
	// reproduces these generations exactly, which lets recovery verify
	// convergence record by record.
	Gen uint64
	// Basis is the installed model's recorded derivation basis
	// (OpInstall only).
	Basis uint64
	// Installed is the model just published (OpInstall only). The hook may
	// read it — under the write lock nothing else mutates it — but must
	// not modify or retain it past the call.
	Installed *Model
}

// CommitHook observes committed mutations. It is invoked synchronously
// under the store's write lock, immediately after the mutation applied:
// the hook must be fast, must not block indefinitely, and must not call
// any locking Store method (that would self-deadlock). The durable
// subsystem attaches one to give every engine write-ahead logging for
// free.
type CommitHook func(Mutation)

// SetCommitHook installs hook (nil detaches). Only one hook is supported;
// the durable manager owns it.
func (s *Store) SetCommitHook(hook CommitHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = hook
}

// commit delivers mut to the attached hook. Callers hold the write
// lock, so the CommitHook contract forbids the hook from calling
// locking Store methods — re-entry would self-deadlock.
func (s *Store) commit(mut Mutation) {
	if s.hook != nil {
		s.hook(mut)
	}
}

// ModelState is a consistent point-in-time capture of one model: its
// identity, versioning counters, and full encoded contents in canonical
// (S, P, O) order. CaptureState produces one per model; the durable
// snapshot writer serializes them.
type ModelState struct {
	Name    string
	Gen     uint64
	Basis   uint64
	Triples []ETriple // sorted ascending by (S, P, O)
}

// CaptureState captures every model of the store inside one read-lock
// critical section, so the result is a single consistent cut across all
// models: encoded triples (sorted), generations, and derivation bases,
// plus a dictionary prefix that covers every ID referenced by the
// capture. If observe is non-nil it runs inside the same critical
// section — the durable manager uses it to read the WAL position that
// corresponds exactly to the captured state (no writer, hence no WAL
// append, can run concurrently).
//
// Sorting happens outside the lock; only the O(triples) collection pays
// the read-lock hold time.
func (s *Store) CaptureState(observe func()) ([]ModelState, []rdf.Term) {
	s.mu.RLock()
	states := make([]ModelState, 0, len(s.models))
	for name, m := range s.models {
		ms := ModelState{Name: name, Gen: m.gen, Basis: m.basis, Triples: make([]ETriple, 0, m.size)}
		m.ForEach(Wildcard, Wildcard, Wildcard, func(t ETriple) bool {
			ms.Triples = append(ms.Triples, t)
			return true
		})
		states = append(states, ms)
	}
	if observe != nil {
		observe() //mdwlint:allow locksafe documented contract: observe must not call locking Store methods
	}
	s.mu.RUnlock()
	// The dictionary is append-only and shared; snapshotting it after the
	// models guarantees every captured ID is covered.
	terms := s.dict.Snapshot()
	for i := range states {
		SortETriples(states[i].Triples)
	}
	sort.Slice(states, func(i, j int) bool { return states[i].Name < states[j].Name })
	return states, terms
}

// SortETriples sorts encoded triples ascending by (S, P, O).
func SortETriples(ts []ETriple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
}
