package store

import (
	"bytes"
	"strings"
	"testing"

	"mdw/internal/rdf"
)

func TestDumpRoundTrip(t *testing.T) {
	s := New()
	s.Add("a", rdf.T(iri("s1"), iri("p"), rdf.Literal("value with \"quotes\"")))
	s.Add("a", rdf.T(iri("s1"), iri("p"), rdf.TypedLiteral("5", rdf.XSDInteger)))
	s.Add("b", rdf.T(rdf.Blank("n1"), iri("p"), rdf.LangLiteral("Kunde", "de")))

	var buf bytes.Buffer
	if err := s.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.ModelNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("models = %v", got)
	}
	if back.Len("a") != 2 || back.Len("b") != 1 {
		t.Errorf("sizes = %d, %d", back.Len("a"), back.Len("b"))
	}
	if !back.Contains("a", rdf.T(iri("s1"), iri("p"), rdf.Literal("value with \"quotes\""))) {
		t.Error("literal lost in round trip")
	}
	if !back.Contains("b", rdf.T(rdf.Blank("n1"), iri("p"), rdf.LangLiteral("Kunde", "de"))) {
		t.Error("blank/lang triple lost")
	}
}

func TestReadDumpErrors(t *testing.T) {
	cases := []string{
		"",
		"not a dump\n",
		"# mdw-store-dump v1\n<http://a> <http://b> <http://c> .\n", // triple before @model
		"# mdw-store-dump v1\n@model \n",
		"# mdw-store-dump v1\n@model m\nbroken triple\n",
	}
	for _, c := range cases {
		if _, err := ReadDump(strings.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestDumpEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ModelNames()) != 0 {
		t.Errorf("models = %v", back.ModelNames())
	}
}
