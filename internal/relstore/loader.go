package relstore

import (
	"fmt"

	"mdw/internal/staging"
)

// LoadExports ingests the same XML meta-data exports that feed the graph
// warehouse into the textbook catalog. Concepts have no home in the
// initial schema — the loader returns how many items were dropped, which
// is the point of the E10 ablation: the graph absorbs new kinds of
// meta-data, the fixed schema silently cannot.
func (c *Catalog) LoadExports(exports []*staging.Export) (dropped int, err error) {
	for _, e := range exports {
		for _, app := range e.Applications {
			if err := c.Insert("applications", app.Name, app.Name, app.Owner, app.Area); err != nil {
				return dropped, err
			}
			for _, db := range app.Databases {
				dbID := app.Name + "/" + db.Name
				if err := c.Insert("databases", dbID, app.Name, db.Name); err != nil {
					return dropped, err
				}
				for _, sc := range db.Schemas {
					scID := dbID + "/" + sc.Name
					if err := c.Insert("schemas", scID, dbID, sc.Name, sc.Layer); err != nil {
						return dropped, err
					}
					load := func(rels []staging.TableDoc, kind string) error {
						for _, rel := range rels {
							relID := scID + "/" + rel.Name
							if err := c.Insert("relations", relID, scID, rel.Name, kind); err != nil {
								return err
							}
							for _, col := range rel.Columns {
								colID := relID + "/" + col.Name
								if err := c.Insert("columns", colID, relID, col.Name,
									col.DataType, fmt.Sprintf("%d", col.Length)); err != nil {
									return err
								}
							}
						}
						return nil
					}
					if err := load(sc.Tables, "table"); err != nil {
						return dropped, err
					}
					if err := load(sc.Views, "view"); err != nil {
						return dropped, err
					}
					if err := load(sc.Files, "file"); err != nil {
						return dropped, err
					}
				}
			}
		}
		for _, itf := range e.Interfaces {
			if err := c.Insert("interfaces", itf.Name, itf.From, itf.To); err != nil {
				return dropped, err
			}
		}
		for i, m := range e.Mappings {
			id := m.Name
			if id == "" {
				id = fmt.Sprintf("map%d", i)
			}
			if err := c.Insert("mappings", id, slugPath(m.From), slugPath(m.To), m.Rule); err != nil {
				return dropped, err
			}
		}
		for _, u := range e.Users {
			if err := c.Insert("users", u.Name, u.Name); err != nil {
				return dropped, err
			}
			for _, r := range u.Roles {
				if err := c.Insert("role_assignments", u.Name, r.App, r.Name); err != nil {
					return dropped, err
				}
			}
		}
		// Business concepts do not fit the textbook schema: there is no
		// concepts table until someone runs a migration.
		dropped += len(e.Concepts)
	}
	return dropped, nil
}

// MigrateForConcepts is the schema migration a DBA would have to write
// once business concepts arrive: a new table plus a column on "columns"
// linking them. Returns the DDL statements executed.
func (c *Catalog) MigrateForConcepts() (int, error) {
	before := c.DDLCount
	if err := c.CreateTable("concepts",
		Column{"concept_id", "TEXT"}, Column{"name", "TEXT"}, Column{"class", "TEXT"}); err != nil {
		return 0, err
	}
	if err := c.AddColumn("columns", Column{"concept_id", "TEXT"}, ""); err != nil {
		return 0, err
	}
	return c.DDLCount - before, nil
}

// LoadConcepts ingests concepts after MigrateForConcepts has run.
func (c *Catalog) LoadConcepts(exports []*staging.Export) error {
	for _, e := range exports {
		for _, con := range e.Concepts {
			if err := c.Insert("concepts", con.Name, con.Name, con.Class); err != nil {
				return err
			}
		}
	}
	return nil
}

func slugPath(p string) string {
	out := make([]byte, 0, len(p))
	for i := 0; i < len(p); i++ {
		ch := p[i]
		if ch >= 'A' && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		if ch == ' ' {
			ch = '_'
		}
		out = append(out, ch)
	}
	return string(out)
}
