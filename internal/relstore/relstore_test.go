package relstore

import (
	"strings"
	"testing"

	"mdw/internal/landscape"
	"mdw/internal/staging"
)

func TestCreateInsertSelect(t *testing.T) {
	c := New()
	if err := c.CreateTable("t", Column{"a", "TEXT"}, Column{"b", "INT"}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t"); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := c.CreateTable("empty"); err == nil {
		t.Error("zero-column table should fail")
	}
	if err := c.Insert("t", "x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("t", "only-one"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := c.Insert("missing", "x"); err == nil {
		t.Error("insert into missing table should fail")
	}
	rows, err := c.Select("t", nil)
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, err = %v", rows, err)
	}
	n, err := c.Count("t", func(r []string) bool { return r[0] == "x" })
	if err != nil || n != 1 {
		t.Errorf("Count = %d, %v", n, err)
	}
	if _, err := c.Select("missing", nil); err == nil {
		t.Error("select from missing table should fail")
	}
}

func TestAddColumnRewritesRows(t *testing.T) {
	c := New()
	c.CreateTable("t", Column{"a", "TEXT"})
	c.Insert("t", "1")
	c.Insert("t", "2")
	ddlBefore := c.DDLCount
	if err := c.AddColumn("t", Column{"b", "TEXT"}, "def"); err != nil {
		t.Fatal(err)
	}
	if c.DDLCount != ddlBefore+1 {
		t.Error("DDL not counted")
	}
	if c.RowsRewritten != 2 {
		t.Errorf("RowsRewritten = %d, want 2", c.RowsRewritten)
	}
	rows, _ := c.Select("t", nil)
	for _, r := range rows {
		if len(r) != 2 || r[1] != "def" {
			t.Errorf("row = %v", r)
		}
	}
	if err := c.AddColumn("t", Column{"b", "TEXT"}, ""); err == nil {
		t.Error("duplicate column should fail")
	}
	if err := c.AddColumn("missing", Column{"x", "TEXT"}, ""); err == nil {
		t.Error("missing table should fail")
	}
}

func TestDropTable(t *testing.T) {
	c := New()
	c.CreateTable("t", Column{"a", "TEXT"})
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestTextbookSchema(t *testing.T) {
	c, err := NewTextbook()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"applications", "columns", "databases", "interfaces", "mappings", "relations", "role_assignments", "schemas", "users"}
	got := c.Tables()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("tables = %v", got)
	}
	if c.DDLCount != 0 {
		t.Errorf("initial schema counted as migration: %d", c.DDLCount)
	}
	tbl := c.Table("columns")
	if tbl == nil || tbl.Col("name") != 2 || tbl.Col("nope") != -1 {
		t.Error("column index wrong")
	}
}

func TestLoadExportsDropsConcepts(t *testing.T) {
	c, err := NewTextbook()
	if err != nil {
		t.Fatal(err)
	}
	exports := []*staging.Export{landscape.Figure3Export()}
	dropped, err := c.LoadExports(exports)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1 (the customer concept)", dropped)
	}
	// The structural meta-data landed.
	apps, _ := c.Count("applications", nil)
	if apps != 2 {
		t.Errorf("applications = %d, want 2", apps)
	}
	cols, _ := c.Count("columns", nil)
	if cols != 5 {
		t.Errorf("columns = %d, want 5", cols)
	}
	maps, _ := c.Count("mappings", nil)
	if maps != 3 {
		t.Errorf("mappings = %d, want 3", maps)
	}
}

func TestSearchColumnsIsFlat(t *testing.T) {
	c, err := NewTextbook()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
		t.Fatal(err)
	}
	rows, err := c.SearchColumns("customer")
	if err != nil {
		t.Fatal(err)
	}
	// Only name matches: customer_id and source_customer_id. No inherited
	// grouping, no concept hit — the flat-list limitation.
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestLineageBackward(t *testing.T) {
	c, err := NewTextbook()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadExports([]*staging.Export{landscape.Figure3Export()}); err != nil {
		t.Fatal(err)
	}
	srcs, err := c.LineageBackward("application1/dwhdb/mart/v_customer/customer_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 3 {
		t.Errorf("backward lineage = %v, want 3 ancestors", srcs)
	}
}

func TestConceptMigration(t *testing.T) {
	c, err := NewTextbook()
	if err != nil {
		t.Fatal(err)
	}
	exports := []*staging.Export{landscape.Figure3Export()}
	if _, err := c.LoadExports(exports); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadConcepts(exports); err == nil {
		t.Fatal("loading concepts before migration should fail")
	}
	ddl, err := c.MigrateForConcepts()
	if err != nil {
		t.Fatal(err)
	}
	if ddl != 2 {
		t.Errorf("migration DDL = %d, want 2", ddl)
	}
	if c.RowsRewritten == 0 {
		t.Error("migration rewrote no rows despite existing columns")
	}
	if err := c.LoadConcepts(exports); err != nil {
		t.Fatal(err)
	}
	n, _ := c.Count("concepts", nil)
	if n != 1 {
		t.Errorf("concepts = %d, want 1", n)
	}
}

func TestRowCount(t *testing.T) {
	c, err := NewTextbook()
	if err != nil {
		t.Fatal(err)
	}
	if c.RowCount() != 0 {
		t.Error("fresh catalog not empty")
	}
	c.Insert("users", "u1", "u1")
	if c.RowCount() != 1 {
		t.Errorf("RowCount = %d", c.RowCount())
	}
}
