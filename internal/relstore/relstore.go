// Package relstore implements the baseline the paper argues against: the
// "textbook approach of conceptual data modeling" (Section III), where a
// comprehensive meta-data schema is designed up front and stored in a
// standard relational database. The paper rejects it because "this
// approach is too rigid and it requires a major investment in
// constructing a comprehensive meta-data schema".
//
// This package is a small but honest relational catalog: fixed tables
// with typed columns, arity-checked inserts, scans with predicates, and
// explicit DDL (CreateTable / AddColumn with full-row rewrite) so that
// the cost of evolving the schema is observable. The E10 ablation bench
// loads the same landscape into this catalog and the graph store and
// compares what happens when a brand-new kind of meta-data shows up.
package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column is one typed column of a relational table.
type Column struct {
	Name string
	// Type is informational ("TEXT", "INT"); the store keeps strings.
	Type string
}

// Table is one relational table.
type Table struct {
	Name    string
	Columns []Column
	Rows    [][]string
	colIdx  map[string]int
}

func (t *Table) reindex() {
	t.colIdx = make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		t.colIdx[c.Name] = i
	}
}

// Col returns the index of the named column, or -1.
func (t *Table) Col(name string) int {
	i, ok := t.colIdx[name]
	if !ok {
		return -1
	}
	return i
}

// Catalog is the relational meta-data store.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// DDLCount counts schema-changing operations — the "migration cost"
	// the ablation measures.
	DDLCount int
	// RowsRewritten counts rows physically rewritten by migrations.
	RowsRewritten int
}

// New returns an empty catalog (no schema at all).
func New() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// NewTextbook returns a catalog with the comprehensive schema a textbook
// design for Figure 1 would start from. The error path triggers only if
// the static schema below is edited into an invalid state (say, a
// duplicated table name); callers surface it instead of panicking so
// schema mistakes fail like any other initialization error.
func NewTextbook() (*Catalog, error) {
	c := New()
	var firstErr error
	must := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	must(c.CreateTable("applications", Column{"app_id", "TEXT"}, Column{"name", "TEXT"}, Column{"owner", "TEXT"}, Column{"area", "TEXT"}))
	must(c.CreateTable("databases", Column{"db_id", "TEXT"}, Column{"app_id", "TEXT"}, Column{"name", "TEXT"}))
	must(c.CreateTable("schemas", Column{"schema_id", "TEXT"}, Column{"db_id", "TEXT"}, Column{"name", "TEXT"}, Column{"layer", "TEXT"}))
	must(c.CreateTable("relations", Column{"rel_id", "TEXT"}, Column{"schema_id", "TEXT"}, Column{"name", "TEXT"}, Column{"kind", "TEXT"}))
	must(c.CreateTable("columns", Column{"col_id", "TEXT"}, Column{"rel_id", "TEXT"}, Column{"name", "TEXT"}, Column{"data_type", "TEXT"}, Column{"length", "INT"}))
	must(c.CreateTable("mappings", Column{"map_id", "TEXT"}, Column{"from_col", "TEXT"}, Column{"to_col", "TEXT"}, Column{"rule", "TEXT"}))
	must(c.CreateTable("interfaces", Column{"itf_id", "TEXT"}, Column{"from_app", "TEXT"}, Column{"to_app", "TEXT"}))
	must(c.CreateTable("users", Column{"user_id", "TEXT"}, Column{"name", "TEXT"}))
	must(c.CreateTable("role_assignments", Column{"user_id", "TEXT"}, Column{"app_id", "TEXT"}, Column{"role", "TEXT"}))
	if firstErr != nil {
		return nil, fmt.Errorf("relstore: textbook schema: %w", firstErr)
	}
	c.DDLCount = 0 // initial schema is free; only evolution counts
	return c, nil
}

// CreateTable adds a new table (DDL).
func (c *Catalog) CreateTable(name string, cols ...Column) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[name]; exists {
		return fmt.Errorf("relstore: table %q already exists", name)
	}
	if len(cols) == 0 {
		return fmt.Errorf("relstore: table %q needs at least one column", name)
	}
	t := &Table{Name: name, Columns: cols}
	t.reindex()
	c.tables[name] = t
	c.DDLCount++
	return nil
}

// AddColumn evolves an existing table (DDL): every stored row is
// rewritten with the default value appended.
func (c *Catalog) AddColumn(table string, col Column, defaultValue string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("relstore: no such table %q", table)
	}
	if t.Col(col.Name) >= 0 {
		return fmt.Errorf("relstore: column %q already exists in %q", col.Name, table)
	}
	t.Columns = append(t.Columns, col)
	t.reindex()
	for i := range t.Rows {
		t.Rows[i] = append(t.Rows[i], defaultValue)
	}
	c.DDLCount++
	c.RowsRewritten += len(t.Rows)
	return nil
}

// DropTable removes a table (DDL).
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("relstore: no such table %q", name)
	}
	delete(c.tables, name)
	c.DDLCount++
	return nil
}

// Tables returns the sorted table names.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Insert appends one row; arity must match the table schema exactly —
// this is the rigidity the graph approach avoids.
func (c *Catalog) Insert(table string, values ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("relstore: no such table %q (new meta-data kinds need a migration first)", table)
	}
	if len(values) != len(t.Columns) {
		return fmt.Errorf("relstore: table %q wants %d values, got %d", table, len(t.Columns), len(values))
	}
	t.Rows = append(t.Rows, values)
	return nil
}

// Select scans the table and returns rows satisfying the predicate
// (nil = all rows). The catalog's read lock is held while the predicate
// runs, so where must not call locking Catalog methods (Insert, Select,
// Count, ...) — that would self-deadlock.
func (c *Catalog) Select(table string, where func(row []string) bool) ([][]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[table]
	if !ok {
		return nil, fmt.Errorf("relstore: no such table %q", table)
	}
	var out [][]string
	for _, r := range t.Rows {
		if where == nil || where(r) { //mdwlint:allow locksafe documented contract: where must not call locking Catalog methods
			out = append(out, r)
		}
	}
	return out, nil
}

// Count returns the number of rows satisfying the predicate.
func (c *Catalog) Count(table string, where func(row []string) bool) (int, error) {
	rows, err := c.Select(table, where)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// SearchColumns performs the catalog's keyword search: a LIKE scan over
// column names. Note what is missing compared to the graph: no class
// hierarchy, no grouping under inherited concepts, no synonym expansion —
// the result is a flat list.
func (c *Catalog) SearchColumns(term string) ([][]string, error) {
	needle := strings.ToLower(term)
	return c.Select("columns", func(row []string) bool {
		return strings.Contains(strings.ToLower(row[2]), needle)
	})
}

// LineageBackward follows the mappings table from a column id to its
// transitive sources.
func (c *Catalog) LineageBackward(colID string) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables["mappings"]
	if !ok {
		return nil, fmt.Errorf("relstore: no mappings table")
	}
	fromIdx, toIdx := t.Col("from_col"), t.Col("to_col")
	incoming := map[string][]string{}
	for _, r := range t.Rows {
		incoming[r[toIdx]] = append(incoming[r[toIdx]], r[fromIdx])
	}
	seen := map[string]bool{colID: true}
	frontier := []string{colID}
	var out []string
	for len(frontier) > 0 {
		var next []string
		for _, n := range frontier {
			for _, src := range incoming[n] {
				if !seen[src] {
					seen[src] = true
					out = append(out, src)
					next = append(next, src)
				}
			}
		}
		frontier = next
	}
	sort.Strings(out)
	return out, nil
}

// RowCount returns the total number of rows across all tables.
func (c *Catalog) RowCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, t := range c.tables {
		n += len(t.Rows)
	}
	return n
}
