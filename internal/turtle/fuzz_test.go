package turtle

import (
	"reflect"
	"testing"

	"mdw/internal/rdf"
)

var fuzzDocs = []string{
	`@prefix dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#> .
dm:Customer a dm:Entity ;
    dm:hasName "Customer", "Kunde"@de .`,
	`<http://a> <http://b> <http://c> .
<http://a> <http://b> 42 .`,
	`_:b1 a <http://c> . # comment`,
	`@prefix : bad .`,
	`<http://a> <http://b> "x"^^<http://www.w3.org/2001/XMLSchema#int> .`,
	`<http://a> <http://b> "unterminated`,
	`dm:NoPrefix a dm:Entity .`,
	`<http://a> <http://b> ; .`,
	"",
}

// FuzzUnmarshal asserts the Turtle reader never panics, and that any
// document it accepts survives Marshal→Unmarshal with the same triple
// set (Marshal sorts and dedups, so compare against the canonical form).
func FuzzUnmarshal(f *testing.F) {
	for _, s := range fuzzDocs {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		ts, err := Unmarshal(doc)
		if err != nil {
			return
		}
		want := make([]rdf.Triple, len(ts))
		copy(want, ts)
		rdf.SortTriples(want)
		want = rdf.DedupTriples(want)

		out := Marshal(ts)
		got, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-parsing marshaled document failed: %v\ndoc: %q", err, out)
		}
		rdf.SortTriples(got)
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("round trip changed triples:\n in: %v\nout: %v\nvia: %q", want, got, out)
		}
	})
}
